package scheduler

import (
	"errors"
	"fmt"
	"testing"

	"cicero/internal/openflow"
)

// pathUpdates builds n FlowAdd updates in path order s0 -> s1 -> ... .
func pathUpdates(n int, op openflow.FlowModOp) []Update {
	updates := make([]Update, n)
	for i := range updates {
		sw := fmt.Sprintf("s%d", i)
		updates[i] = Update{
			ID: openflow.MsgID{Origin: "ev1", Seq: uint64(i)},
			Mod: openflow.FlowMod{Op: op, Switch: sw, Rule: openflow.Rule{
				Priority: 1,
				Match:    openflow.Match{Src: "a", Dst: "b"},
				Action:   openflow.Action{Type: openflow.ActionOutput, NextHop: "next"},
			}},
		}
	}
	return updates
}

func TestReversePathAddsDependDownstream(t *testing.T) {
	updates := pathUpdates(3, openflow.FlowAdd)
	plan := ReversePath{}.Schedule(updates)
	if err := Validate(plan); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// s0 depends on s1, s1 on s2, s2 on nothing.
	if len(plan[2].DependsOn) != 0 {
		t.Errorf("downstream-most update has deps %v", plan[2].DependsOn)
	}
	if len(plan[1].DependsOn) != 1 || plan[1].DependsOn[0] != updates[2].ID {
		t.Errorf("middle deps = %v, want [%v]", plan[1].DependsOn, updates[2].ID)
	}
	if len(plan[0].DependsOn) != 1 || plan[0].DependsOn[0] != updates[1].ID {
		t.Errorf("upstream deps = %v, want [%v]", plan[0].DependsOn, updates[1].ID)
	}
}

func TestReversePathDeletesDependUpstream(t *testing.T) {
	updates := pathUpdates(3, openflow.FlowDelete)
	plan := ReversePath{}.Schedule(updates)
	if err := Validate(plan); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(plan[0].DependsOn) != 0 {
		t.Errorf("source-side delete has deps %v", plan[0].DependsOn)
	}
	if len(plan[2].DependsOn) != 1 || plan[2].DependsOn[0] != updates[1].ID {
		t.Errorf("downstream delete deps = %v", plan[2].DependsOn)
	}
}

func TestImmediateHasNoDeps(t *testing.T) {
	plan := Immediate{}.Schedule(pathUpdates(4, openflow.FlowAdd))
	for _, su := range plan {
		if len(su.DependsOn) != 0 {
			t.Fatalf("immediate scheduler produced deps: %v", su.DependsOn)
		}
	}
	groups, err := ParallelGroups(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0]) != 4 {
		t.Fatalf("groups = %d levels, want 1 level of 4", len(groups))
	}
}

func TestStaticScheduler(t *testing.T) {
	updates := pathUpdates(3, openflow.FlowAdd)
	s := Static{Label: "dionysus", Deps: func(us []Update) [][]int {
		// Diamond: 1 and 2 depend on 0.
		return [][]int{nil, {0}, {0}}
	}}
	if s.Name() != "dionysus" {
		t.Errorf("Name = %q", s.Name())
	}
	plan := s.Schedule(updates)
	if err := Validate(plan); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	groups, err := ParallelGroups(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[0]) != 1 || len(groups[1]) != 2 {
		t.Fatalf("unexpected levels: %v", groups)
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	updates := pathUpdates(2, openflow.FlowAdd)
	plan := Plan{
		{Update: updates[0], DependsOn: []openflow.MsgID{updates[1].ID}},
		{Update: updates[1], DependsOn: []openflow.MsgID{updates[0].ID}},
	}
	if err := Validate(plan); !errors.Is(err, ErrCycle) {
		t.Fatalf("expected ErrCycle, got %v", err)
	}
}

func TestValidateDetectsUnknownDependency(t *testing.T) {
	updates := pathUpdates(1, openflow.FlowAdd)
	plan := Plan{{Update: updates[0], DependsOn: []openflow.MsgID{{Origin: "ghost", Seq: 1}}}}
	if err := Validate(plan); !errors.Is(err, ErrUnknownDependency) {
		t.Fatalf("expected ErrUnknownDependency, got %v", err)
	}
}

func TestValidateDetectsDuplicate(t *testing.T) {
	updates := pathUpdates(1, openflow.FlowAdd)
	plan := Plan{{Update: updates[0]}, {Update: updates[0]}}
	if err := Validate(plan); !errors.Is(err, ErrDuplicateUpdate) {
		t.Fatalf("expected ErrDuplicateUpdate, got %v", err)
	}
}

func TestParallelGroupsReversePathIsSequential(t *testing.T) {
	plan := ReversePath{}.Schedule(pathUpdates(5, openflow.FlowAdd))
	groups, err := ParallelGroups(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 5 {
		t.Fatalf("reverse-path over 5 switches should give 5 levels, got %d", len(groups))
	}
	// First level is the downstream-most switch.
	if groups[0][0].Mod.Switch != "s4" {
		t.Errorf("first released switch = %s, want s4", groups[0][0].Mod.Switch)
	}
}

func TestDisjointDependencies(t *testing.T) {
	a := ScheduledUpdate{DependsOn: []openflow.MsgID{{Origin: "e", Seq: 1}}}
	b := ScheduledUpdate{DependsOn: []openflow.MsgID{{Origin: "e", Seq: 2}}}
	c := ScheduledUpdate{DependsOn: []openflow.MsgID{{Origin: "e", Seq: 1}}}
	if !DisjointDependencies(a, b) {
		t.Error("disjoint sets reported as overlapping")
	}
	if DisjointDependencies(a, c) {
		t.Error("overlapping sets reported as disjoint")
	}
}

func TestEngineReleasesInDependencyOrder(t *testing.T) {
	updates := pathUpdates(3, openflow.FlowAdd)
	plan := ReversePath{}.Schedule(updates)
	var released []string
	e := NewEngine(func(su ScheduledUpdate) { released = append(released, su.Mod.Switch) })
	if err := e.Add(plan); err != nil {
		t.Fatalf("Add: %v", err)
	}
	// Only the downstream-most update is released initially.
	if len(released) != 1 || released[0] != "s2" {
		t.Fatalf("initial releases = %v, want [s2]", released)
	}
	e.Ack(updates[2].ID)
	if len(released) != 2 || released[1] != "s1" {
		t.Fatalf("after ack s2: %v, want [s2 s1]", released)
	}
	e.Ack(updates[1].ID)
	if len(released) != 3 || released[2] != "s0" {
		t.Fatalf("after ack s1: %v, want [s2 s1 s0]", released)
	}
	e.Ack(updates[0].ID)
	if e.InFlight() != 0 || e.Waiting() != 0 {
		t.Fatalf("engine not drained: inflight=%d waiting=%d", e.InFlight(), e.Waiting())
	}
}

func TestEngineIndependentPlansProceedInParallel(t *testing.T) {
	planA := ReversePath{}.Schedule(pathUpdates(2, openflow.FlowAdd))
	updatesB := pathUpdates(2, openflow.FlowAdd)
	for i := range updatesB {
		updatesB[i].ID.Origin = "ev2"
		updatesB[i].Mod.Switch = fmt.Sprintf("t%d", i)
	}
	planB := ReversePath{}.Schedule(updatesB)

	var released []string
	e := NewEngine(func(su ScheduledUpdate) { released = append(released, su.Mod.Switch) })
	if err := e.Add(planA); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(planB); err != nil {
		t.Fatal(err)
	}
	// Both plans' downstream updates are immediately in flight — the
	// paper's inter-event parallelism.
	if len(released) != 2 {
		t.Fatalf("initial releases = %v, want both downstream updates", released)
	}
}

func TestEngineDuplicateAckIgnored(t *testing.T) {
	updates := pathUpdates(2, openflow.FlowAdd)
	plan := ReversePath{}.Schedule(updates)
	count := 0
	e := NewEngine(func(ScheduledUpdate) { count++ })
	if err := e.Add(plan); err != nil {
		t.Fatal(err)
	}
	e.Ack(updates[1].ID)
	e.Ack(updates[1].ID)
	if count != 2 {
		t.Fatalf("released %d, want 2", count)
	}
	if e.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", e.InFlight())
	}
}

func TestEngineRejectsDuplicatePlanIDs(t *testing.T) {
	updates := pathUpdates(2, openflow.FlowAdd)
	plan := ReversePath{}.Schedule(updates)
	e := NewEngine(func(ScheduledUpdate) {})
	if err := e.Add(plan); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(plan); !errors.Is(err, ErrDuplicateUpdate) {
		t.Fatalf("expected ErrDuplicateUpdate, got %v", err)
	}
}

func TestEngineAckBeforeAddSatisfiesDependency(t *testing.T) {
	// An ack that arrives before the plan registers (possible when a
	// controller joins mid-stream) still satisfies dependencies.
	updates := pathUpdates(2, openflow.FlowAdd)
	plan := ReversePath{}.Schedule(updates)
	var released []string
	e := NewEngine(func(su ScheduledUpdate) { released = append(released, su.Mod.Switch) })
	e.Ack(updates[1].ID)
	// A plan referencing the acked update as an external dependency is
	// satisfied immediately.
	if err := e.Add(plan[:1]); err != nil {
		t.Fatal(err)
	}
	if len(released) != 1 || released[0] != "s0" {
		t.Fatalf("releases = %v, want [s0]", released)
	}
}

// TestEngineAckBeforePlanStillReleasesPlan covers the harder live-backend
// race: the ack for an update arrives before this controller's BFT
// delivery even creates the plan (the switch applied it via the other
// controllers' quorum). The plan must still be accepted — the decision
// has to reach this replica's audit ledger — and release in topological
// order, with the pre-acked updates counting as instantly satisfied.
func TestEngineAckBeforePlanStillReleasesPlan(t *testing.T) {
	updates := pathUpdates(3, openflow.FlowAdd) // s0 <- s1 <- s2
	plan := ReversePath{}.Schedule(updates)
	var released []string
	e := NewEngine(func(su ScheduledUpdate) { released = append(released, su.Mod.Switch) })
	// Acks for the whole chain land before the plan exists locally.
	e.Ack(updates[2].ID)
	e.Ack(updates[1].ID)
	if err := e.Add(plan); err != nil {
		t.Fatalf("Add after early acks: %v", err)
	}
	// s2 and s1 release immediately (already applied), in canonical order;
	// s0 releases too because both of its ancestors are satisfied.
	want := []string{"s2", "s1", "s0"}
	if len(released) != len(want) {
		t.Fatalf("releases = %v, want %v", released, want)
	}
	for i := range want {
		if released[i] != want[i] {
			t.Fatalf("releases = %v, want %v", released, want)
		}
	}
	if e.InFlight() != 1 || e.Waiting() != 0 {
		t.Fatalf("inflight=%d waiting=%d, want 1/0 (only s0 unacked)", e.InFlight(), e.Waiting())
	}
	e.Ack(updates[0].ID)
	if e.InFlight() != 0 || e.Waiting() != 0 {
		t.Fatalf("engine not drained: inflight=%d waiting=%d", e.InFlight(), e.Waiting())
	}
}

func BenchmarkEngineChain100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		updates := pathUpdates(100, openflow.FlowAdd)
		plan := ReversePath{}.Schedule(updates)
		e := NewEngine(func(ScheduledUpdate) {})
		if err := e.Add(plan); err != nil {
			b.Fatal(err)
		}
		for j := len(updates) - 1; j >= 0; j-- {
			e.Ack(updates[j].ID)
		}
	}
}

// TestEngineEarlyAckDefersToLocalRelease covers the live-backend race: a
// switch applies an update once a quorum of OTHER controllers' shares
// arrives, so this controller can receive the ack for an update it has
// not released yet. The dependent must not jump the queue — release order
// stays a topological order of the plan regardless of ack arrival order.
func TestEngineEarlyAckDefersToLocalRelease(t *testing.T) {
	updates := pathUpdates(3, openflow.FlowAdd) // s0 <- s1 <- s2 (reverse path)
	plan := ReversePath{}.Schedule(updates)
	var released []string
	e := NewEngine(func(su ScheduledUpdate) { released = append(released, su.Mod.Switch) })
	if err := e.Add(plan); err != nil {
		t.Fatalf("Add: %v", err)
	}
	// Acks arrive out of order: the middle update (s1) is acknowledged
	// before this controller has released it. s0 must NOT release yet.
	e.Ack(updates[1].ID)
	if len(released) != 1 {
		t.Fatalf("dependent released on early ack: %v", released)
	}
	// s2's ack releases s1; s1 is already acked, so s0 cascades
	// immediately. Canonical order restored.
	e.Ack(updates[2].ID)
	want := []string{"s2", "s1", "s0"}
	if len(released) != 3 {
		t.Fatalf("releases = %v, want %v", released, want)
	}
	for i := range want {
		if released[i] != want[i] {
			t.Fatalf("releases = %v, want %v", released, want)
		}
	}
	e.Ack(updates[0].ID)
	if e.InFlight() != 0 || e.Waiting() != 0 {
		t.Fatalf("engine not drained: inflight=%d waiting=%d", e.InFlight(), e.Waiting())
	}
}
