// Package scheduler implements Cicero's update scheduling model (§3.1 of
// the paper): a change to data-plane state is a set of updates
// u = (switch, rule), and an update scheduler assigns each update a
// dependence set D of updates that must be applied (and acknowledged)
// before it. Updates with disjoint dependency closures proceed in
// parallel; dependent updates are released as acknowledgements arrive.
//
// The package provides:
//   - ReversePath: the scheduler the paper evaluates — rules for a flow
//     are installed downstream-to-upstream so no packet can travel a hop
//     whose continuation is not yet programmed (and teardowns are removed
//     upstream-to-downstream, draining before unprogramming).
//   - Immediate: no ordering, the inconsistent baseline used as a
//     negative control for the Table 1 scenarios.
//   - Static: caller-specified dependency graphs (Dionysus-style), with
//     DAG validation.
//   - Engine: the runtime dependency tracker each controller runs,
//     releasing updates as acks arrive.
package scheduler

import (
	"errors"
	"fmt"
	"sort"

	"cicero/internal/openflow"
)

// Update is one rule change destined for one switch, with the globally
// unique id used for signing, acking, and dependency tracking.
type Update struct {
	ID  openflow.MsgID
	Mod openflow.FlowMod
}

// ScheduledUpdate is an update plus the ids that must be acknowledged
// before it may be sent.
type ScheduledUpdate struct {
	Update
	DependsOn []openflow.MsgID
}

// Plan is a dependency-ordered set of updates for one event.
type Plan []ScheduledUpdate

// Scheduler assigns dependencies to a path-ordered list of updates.
// Updates must be given in flow-path order (source-side first); the id of
// each produced update is updates[i].ID.
type Scheduler interface {
	// Schedule returns the dependency plan for the given updates.
	Schedule(updates []Update) Plan
	// Name identifies the scheduler in experiment output.
	Name() string
}

// ReversePath is the paper's evaluated scheduler (§5.1): for rule
// installation along a path s1 → s2 → s3, the update to s3 must complete
// before s2's, and s2's before s1's. Deletions order the other way
// (upstream first), so in-flight packets drain before downstream rules
// disappear.
type ReversePath struct{}

var _ Scheduler = ReversePath{}

// Name implements Scheduler.
func (ReversePath) Name() string { return "reverse-path" }

// Schedule implements Scheduler. Additions and deletions are chained
// independently so mixed plans (route replacement: install the new path,
// then retire the old one) stay acyclic:
//
//   - additions chain downstream-to-upstream among themselves: an add
//     depends on the next add in path order;
//   - deletions chain upstream-to-downstream among themselves, and the
//     first deletion additionally depends on the first (ingress) addition
//     — once the ingress forwards onto the new path, the old path only
//     drains, so removing it is safe.
func (ReversePath) Schedule(updates []Update) Plan {
	plan := make(Plan, len(updates))
	var addIdx, delIdx []int
	for i, u := range updates {
		if u.Mod.Op == openflow.FlowDelete {
			delIdx = append(delIdx, i)
		} else {
			addIdx = append(addIdx, i)
		}
		plan[i] = ScheduledUpdate{Update: u}
	}
	for k, i := range addIdx {
		if k+1 < len(addIdx) {
			plan[i].DependsOn = []openflow.MsgID{updates[addIdx[k+1]].ID}
		}
	}
	for k, i := range delIdx {
		switch {
		case k > 0:
			plan[i].DependsOn = []openflow.MsgID{updates[delIdx[k-1]].ID}
		case len(addIdx) > 0:
			plan[i].DependsOn = []openflow.MsgID{updates[addIdx[0]].ID}
		}
	}
	return plan
}

// Immediate applies all updates at once with no ordering. It reproduces
// the transient inconsistencies of Table 1 and exists as a negative
// control; production configurations must not use it.
type Immediate struct{}

var _ Scheduler = Immediate{}

// Name implements Scheduler.
func (Immediate) Name() string { return "immediate" }

// Schedule implements Scheduler.
func (Immediate) Schedule(updates []Update) Plan {
	plan := make(Plan, len(updates))
	for i, u := range updates {
		plan[i] = ScheduledUpdate{Update: u}
	}
	return plan
}

// Static wraps a caller-provided dependency function, supporting
// Dionysus-style externally computed dependency graphs. Deps receives the
// update list and returns, for each position, the positions it depends on.
type Static struct {
	Label string
	Deps  func(updates []Update) [][]int
}

var _ Scheduler = Static{}

// Name implements Scheduler.
func (s Static) Name() string {
	if s.Label == "" {
		return "static"
	}
	return s.Label
}

// Schedule implements Scheduler.
func (s Static) Schedule(updates []Update) Plan {
	deps := s.Deps(updates)
	plan := make(Plan, len(updates))
	for i, u := range updates {
		su := ScheduledUpdate{Update: u}
		if i < len(deps) {
			for _, j := range deps[i] {
				if j >= 0 && j < len(updates) && j != i {
					su.DependsOn = append(su.DependsOn, updates[j].ID)
				}
			}
		}
		plan[i] = su
	}
	return plan
}

// Planned replays externally synthesized dependency graphs (the update
// synthesis engine's output): each event's plan is registered under the
// update origin the control plane will assign its updates, as a
// positional dependency list aligned with the update order the planning
// app emits. Origins without a registered graph fall back to Fallback
// (ReversePath when nil), so a Planned scheduler can serve a mixed
// workload.
type Planned struct {
	Label string
	// ByOrigin maps an update origin ("<event-id>/d<domain>") to the
	// positional dependency lists for that event's updates.
	ByOrigin map[string][][]int
	// Fallback schedules updates whose origin has no registered graph.
	Fallback Scheduler
}

var _ Scheduler = Planned{}

// Name implements Scheduler.
func (p Planned) Name() string {
	if p.Label == "" {
		return "planned"
	}
	return p.Label
}

// Schedule implements Scheduler.
func (p Planned) Schedule(updates []Update) Plan {
	if len(updates) > 0 {
		if deps, ok := p.ByOrigin[updates[0].ID.Origin]; ok {
			return Static{Label: p.Name(), Deps: func([]Update) [][]int { return deps }}.Schedule(updates)
		}
	}
	fb := p.Fallback
	if fb == nil {
		fb = ReversePath{}
	}
	return fb.Schedule(updates)
}

// Errors returned by the package.
var (
	// ErrCycle reports a dependency cycle in a plan.
	ErrCycle = errors.New("scheduler: dependency cycle")
	// ErrUnknownDependency reports a dependency on an id outside the plan.
	ErrUnknownDependency = errors.New("scheduler: dependency on unknown update")
	// ErrDuplicateUpdate reports two plan entries with the same id.
	ErrDuplicateUpdate = errors.New("scheduler: duplicate update id")
)

// Validate checks that a plan is a DAG over its own updates.
func Validate(plan Plan) error {
	index := make(map[openflow.MsgID]int, len(plan))
	for i, su := range plan {
		if _, dup := index[su.ID]; dup {
			return fmt.Errorf("%w: %s", ErrDuplicateUpdate, su.ID)
		}
		index[su.ID] = i
	}
	for _, su := range plan {
		for _, dep := range su.DependsOn {
			if _, ok := index[dep]; !ok {
				return fmt.Errorf("%w: %s depends on %s", ErrUnknownDependency, su.ID, dep)
			}
		}
	}
	// Kahn's algorithm for cycle detection.
	indeg := make([]int, len(plan))
	dependents := make([][]int, len(plan))
	for i, su := range plan {
		indeg[i] = len(su.DependsOn)
		for _, dep := range su.DependsOn {
			j := index[dep]
			dependents[j] = append(dependents[j], i)
		}
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		seen++
		for _, j := range dependents[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if seen != len(plan) {
		return ErrCycle
	}
	return nil
}

// ParallelGroups partitions a plan into topological levels: every update
// in level k depends only on updates in levels < k, so each level can be
// dispatched in parallel once the previous level is acknowledged. It is
// an analysis helper for tests and experiments; the Engine releases
// updates with finer granularity.
func ParallelGroups(plan Plan) ([][]ScheduledUpdate, error) {
	if err := Validate(plan); err != nil {
		return nil, err
	}
	index := make(map[openflow.MsgID]int, len(plan))
	for i, su := range plan {
		index[su.ID] = i
	}
	level := make([]int, len(plan))
	// Longest-path level assignment via repeated relaxation (plans are
	// small; O(V·E) is fine).
	changed := true
	for changed {
		changed = false
		for i, su := range plan {
			for _, dep := range su.DependsOn {
				j := index[dep]
				if level[j]+1 > level[i] {
					level[i] = level[j] + 1
					changed = true
				}
			}
		}
	}
	maxLevel := 0
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	groups := make([][]ScheduledUpdate, maxLevel+1)
	for i, su := range plan {
		groups[level[i]] = append(groups[level[i]], su)
	}
	for _, g := range groups {
		sort.Slice(g, func(a, b int) bool { return g[a].ID.String() < g[b].ID.String() })
	}
	return groups, nil
}

// DisjointDependencies reports whether two scheduled updates may run in
// parallel per the paper's §3.3 criterion: their dependency sets are
// disjoint.
func DisjointDependencies(a, b ScheduledUpdate) bool {
	set := make(map[openflow.MsgID]struct{}, len(a.DependsOn))
	for _, d := range a.DependsOn {
		set[d] = struct{}{}
	}
	for _, d := range b.DependsOn {
		if _, clash := set[d]; clash {
			return false
		}
	}
	return true
}
