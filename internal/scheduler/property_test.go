package scheduler

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"cicero/internal/openflow"
)

// TestEngineRandomDAGProperty drives random DAG plans through the engine
// with a randomized ack schedule and asserts the fundamental invariants:
// every update is released exactly once, and never before all of its
// dependencies were acknowledged.
func TestEngineRandomDAGProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	property := func(seed int64) bool {
		localRng := rand.New(rand.NewSource(seed))
		n := 2 + localRng.Intn(20)
		updates := make([]Update, n)
		for i := range updates {
			updates[i] = Update{
				ID: openflow.MsgID{Origin: "prop", Seq: uint64(i)},
				Mod: openflow.FlowMod{Op: openflow.FlowAdd, Switch: fmt.Sprintf("s%d", i),
					Rule: openflow.Rule{Priority: 1,
						Match:  openflow.Match{Src: "a", Dst: "b"},
						Action: openflow.Action{Type: openflow.ActionOutput, NextHop: "n"}}},
			}
		}
		// Random DAG: each update may depend on a few earlier ones
		// (guaranteeing acyclicity).
		deps := make([][]int, n)
		for i := 1; i < n; i++ {
			k := localRng.Intn(3)
			for j := 0; j < k; j++ {
				deps[i] = append(deps[i], localRng.Intn(i))
			}
		}
		plan := Static{Deps: func([]Update) [][]int { return deps }}.Schedule(updates)
		if err := Validate(plan); err != nil {
			return false
		}

		released := make(map[openflow.MsgID]int)
		acked := make(map[openflow.MsgID]bool)
		var order []openflow.MsgID
		e := NewEngine(func(su ScheduledUpdate) {
			released[su.ID]++
			// Invariant: all dependencies acked before release.
			for _, dep := range su.DependsOn {
				if !acked[dep] {
					t.Errorf("seed %d: %s released before dependency %s acked", seed, su.ID, dep)
				}
			}
			order = append(order, su.ID)
		})
		if err := e.Add(plan); err != nil {
			return false
		}
		// Ack released updates in random order until drained.
		for len(order) > 0 {
			i := localRng.Intn(len(order))
			id := order[i]
			order = append(order[:i], order[i+1:]...)
			acked[id] = true
			e.Ack(id)
		}
		// Every update released exactly once.
		for _, u := range updates {
			if released[u.ID] != 1 {
				return false
			}
		}
		return e.InFlight() == 0 && e.Waiting() == 0
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestReversePathMixedPlanProperty checks the mixed add/delete plans used
// by route replacement: the first delete never releases before the
// ingress add has been acked.
func TestReversePathMixedPlanProperty(t *testing.T) {
	for n := 2; n <= 6; n++ {
		for d := 1; d <= 3; d++ {
			var updates []Update
			for i := 0; i < n; i++ {
				updates = append(updates, Update{
					ID: openflow.MsgID{Origin: "add", Seq: uint64(i)},
					Mod: openflow.FlowMod{Op: openflow.FlowAdd, Switch: fmt.Sprintf("a%d", i),
						Rule: openflow.Rule{Match: openflow.Match{Src: "x", Dst: "y"},
							Action: openflow.Action{Type: openflow.ActionOutput, NextHop: "n"}}},
				})
			}
			for i := 0; i < d; i++ {
				updates = append(updates, Update{
					ID: openflow.MsgID{Origin: "del", Seq: uint64(i)},
					Mod: openflow.FlowMod{Op: openflow.FlowDelete, Switch: fmt.Sprintf("d%d", i),
						Rule: openflow.Rule{Match: openflow.Match{Src: "x", Dst: "y"}}},
				})
			}
			plan := ReversePath{}.Schedule(updates)
			if err := Validate(plan); err != nil {
				t.Fatalf("n=%d d=%d: %v", n, d, err)
			}
			groups, err := ParallelGroups(plan)
			if err != nil {
				t.Fatalf("n=%d d=%d: %v", n, d, err)
			}
			// The first delete's level must be strictly greater than the
			// ingress add's level (ingress add = updates[0], the deepest
			// add in the reverse chain).
			level := make(map[openflow.MsgID]int)
			for l, g := range groups {
				for _, su := range g {
					level[su.ID] = l
				}
			}
			ingress := updates[0].ID
			firstDel := updates[n].ID
			if level[firstDel] <= level[ingress] {
				t.Fatalf("n=%d d=%d: delete at level %d, ingress add at %d",
					n, d, level[firstDel], level[ingress])
			}
		}
	}
}
