package scheduler

import (
	"errors"
	"fmt"
	"sort"

	"cicero/internal/openflow"
)

// This file implements a Dionysus-style capacity-aware migration
// scheduler (Jin et al., SIGCOMM '14 — cited by the paper as a pluggable
// update scheduler). Where ReversePath orders the updates of a single
// flow, ScheduleMigrations orders updates ACROSS flows so that moving a
// set of flows to new paths never over-provisions a link (the paper's
// Fig. 3 congestion-freedom precondition): a flow only moves onto a link
// when the bandwidth it needs has been freed by earlier migrations.
//
// The algorithm plans in waves: a migration is schedulable when every
// link its new path adds has headroom for its bandwidth, assuming the
// flow transiently occupies BOTH paths (make-before-break). Scheduled
// migrations release their old links for the next wave. Each wave's adds
// are gated on the previous wave's deletes through update dependencies,
// so the runtime engine enforces the ordering with acknowledgements. If
// no progress is possible (a capacity deadlock, which Dionysus resolves
// by rate-limiting), ErrDeadlock reports the stuck migrations.

// Migration moves one flow from OldPath to NewPath.
type Migration struct {
	// FlowID identifies the migration in errors.
	FlowID string
	// Bandwidth is the flow's reserved bandwidth (same unit as Capacity).
	Bandwidth float64
	// OldPath and NewPath are node paths (hosts included or not — only
	// pairwise links matter).
	OldPath []string
	NewPath []string
	// AddUpdates install the new path (path order); DelUpdates remove the
	// old one. They are emitted into the plan with cross-flow gating.
	AddUpdates []Update
	DelUpdates []Update
}

// ErrDeadlock reports migrations that cannot proceed without transient
// over-provisioning.
var ErrDeadlock = errors.New("scheduler: capacity deadlock")

// migLink canonicalizes an undirected link.
func migLink(a, b string) [2]string {
	if a < b {
		return [2]string{a, b}
	}
	return [2]string{b, a}
}

// pathLinks returns a path's link set.
func pathLinks(path []string) map[[2]string]bool {
	links := make(map[[2]string]bool, len(path))
	for i := 0; i+1 < len(path); i++ {
		links[migLink(path[i], path[i+1])] = true
	}
	return links
}

// ScheduleMigrations produces a congestion-free plan for a set of flow
// migrations. capacity returns a link's total capacity; usage returns the
// bandwidth currently reserved on it by flows OUTSIDE the migration set
// (the migrating flows' own old-path usage is accounted internally).
func ScheduleMigrations(
	migrations []Migration,
	capacity func(a, b string) float64,
	usage func(a, b string) float64,
) (Plan, error) {
	// Track reserved bandwidth per link: external usage + old paths of
	// not-yet-moved migrations + new paths of moved ones.
	reserved := make(map[[2]string]float64)
	caps := make(map[[2]string]float64)
	touch := func(a, b string) {
		l := migLink(a, b)
		if _, ok := caps[l]; !ok {
			caps[l] = capacity(a, b)
			reserved[l] = usage(a, b)
		}
	}
	for _, m := range migrations {
		for i := 0; i+1 < len(m.OldPath); i++ {
			touch(m.OldPath[i], m.OldPath[i+1])
		}
		for i := 0; i+1 < len(m.NewPath); i++ {
			touch(m.NewPath[i], m.NewPath[i+1])
		}
	}
	for _, m := range migrations {
		for l := range pathLinks(m.OldPath) {
			reserved[l] += m.Bandwidth
		}
	}

	pending := make([]int, len(migrations))
	for i := range pending {
		pending[i] = i
	}
	var plan Plan
	// prevWaveDeletes gate the next wave's adds.
	var prevWaveDeletes []openflow.MsgID

	appendFlowPlan := func(m Migration, gates []openflow.MsgID) []openflow.MsgID {
		// Per-flow ordering: reverse-chained adds, then deletes gated on
		// the ingress add (ReversePath's mixed-plan semantics), with the
		// wave gate on the deepest add.
		updates := append(append([]Update(nil), m.AddUpdates...), m.DelUpdates...)
		sub := ReversePath{}.Schedule(updates)
		if len(m.AddUpdates) > 0 && len(gates) > 0 {
			// The downstream-most add (the first to be released) waits for
			// the previous wave's deletes to free capacity.
			last := len(m.AddUpdates) - 1
			sub[last].DependsOn = append(sub[last].DependsOn, gates...)
		}
		plan = append(plan, sub...)
		ids := make([]openflow.MsgID, 0, len(m.DelUpdates))
		for _, u := range m.DelUpdates {
			ids = append(ids, u.ID)
		}
		if len(ids) == 0 && len(m.AddUpdates) > 0 {
			// No deletes: the final (ingress) add is the completion gate.
			ids = append(ids, m.AddUpdates[0].ID)
		}
		return ids
	}

	for len(pending) > 0 {
		// A migration fits when every link its new path ADDS (not shared
		// with the old path) has headroom for its bandwidth.
		var wave, rest []int
		for _, idx := range pending {
			m := migrations[idx]
			old := pathLinks(m.OldPath)
			fits := true
			for l := range pathLinks(m.NewPath) {
				if old[l] {
					continue // stays on this link: no extra demand
				}
				if reserved[l]+m.Bandwidth > caps[l] {
					fits = false
					break
				}
			}
			if fits {
				wave = append(wave, idx)
			} else {
				rest = append(rest, idx)
			}
		}
		if len(wave) == 0 {
			stuck := make([]string, 0, len(rest))
			for _, idx := range rest {
				stuck = append(stuck, migrations[idx].FlowID)
			}
			sort.Strings(stuck)
			return nil, fmt.Errorf("%w: flows %v cannot move without over-provisioning", ErrDeadlock, stuck)
		}
		// Reserve new paths for the wave, emit plans, then release old
		// paths for the next wave.
		var waveDeletes []openflow.MsgID
		for _, idx := range wave {
			m := migrations[idx]
			old := pathLinks(m.OldPath)
			for l := range pathLinks(m.NewPath) {
				if !old[l] {
					reserved[l] += m.Bandwidth
				}
			}
			waveDeletes = append(waveDeletes, appendFlowPlan(m, prevWaveDeletes)...)
		}
		for _, idx := range wave {
			m := migrations[idx]
			newLinks := pathLinks(m.NewPath)
			for l := range pathLinks(m.OldPath) {
				if !newLinks[l] {
					reserved[l] -= m.Bandwidth
				}
			}
		}
		prevWaveDeletes = waveDeletes
		pending = rest
	}
	if err := Validate(plan); err != nil {
		return nil, fmt.Errorf("scheduler: migration plan invalid: %w", err)
	}
	return plan, nil
}
