package scheduler

import (
	"fmt"
	"sort"

	"cicero/internal/openflow"
)

// Engine is the runtime dependency tracker a controller runs (Fig. 7b of
// the paper): updates whose dependency sets are empty are released
// immediately; as acknowledgements arrive, satisfied dependents are
// released. Updates belonging to different plans (different events) are
// tracked independently and hence proceed in parallel.
//
// A dependency is satisfied only when it is both acknowledged by its
// switch and locally released. The distinction matters on live backends:
// a switch applies an update once a quorum of the other controllers'
// shares arrives, so a lagging controller can receive the ack for a
// dependency it has not dispatched yet. Releasing the dependent at that
// instant would be safe (the switch has applied the dependency) but would
// make the release order — and therefore the audit ledger — depend on ack
// arrival timing; deferring until the dependency is also locally released
// keeps every controller's release order a topological order of the plan
// on every backend.
//
// Engine is not concurrency-safe; each controller owns one engine driven
// from its serial execution context.
type Engine struct {
	// release is invoked for every update the moment it becomes ready.
	release func(ScheduledUpdate)

	waiting    map[openflow.MsgID]*engineEntry
	dependents map[openflow.MsgID][]openflow.MsgID
	// released tracks updates dispatched but not yet acknowledged.
	released map[openflow.MsgID]bool
	acked    map[openflow.MsgID]bool
	inFlight int
}

// engineEntry is an update still blocked on dependencies.
type engineEntry struct {
	update  ScheduledUpdate
	missing map[openflow.MsgID]struct{}
}

// NewEngine creates an engine that calls release for each ready update.
func NewEngine(release func(ScheduledUpdate)) *Engine {
	return &Engine{
		release:    release,
		waiting:    make(map[openflow.MsgID]*engineEntry),
		dependents: make(map[openflow.MsgID][]openflow.MsgID),
		released:   make(map[openflow.MsgID]bool),
		acked:      make(map[openflow.MsgID]bool),
	}
}

// Add registers a plan. Ready updates are released before Add returns —
// in topological order of the plan, so the release sequence is canonical
// even when acks have already arrived for some of the plan (on live
// backends a switch can apply an update via the other controllers' quorum
// before this controller delivers the triggering event). Such pre-acked
// updates are still released (the decision must reach the audit ledger on
// every replica) and count as immediately satisfied. The rest wait for
// Ack calls. Dependencies may reference updates inside the plan or
// updates already acknowledged (e.g. from an earlier partial plan);
// anything else is ErrUnknownDependency.
func (e *Engine) Add(plan Plan) error {
	order, err := e.validate(plan)
	if err != nil {
		return err
	}
	for _, idx := range order {
		su := plan[idx]
		missing := make(map[openflow.MsgID]struct{})
		for _, dep := range su.DependsOn {
			if !e.satisfied(dep) {
				missing[dep] = struct{}{}
				e.dependents[dep] = append(e.dependents[dep], su.ID)
			}
		}
		if len(missing) == 0 {
			e.dispatch(su)
			continue
		}
		e.waiting[su.ID] = &engineEntry{update: su, missing: missing}
	}
	return nil
}

// satisfied reports whether a dependency is acknowledged and no longer
// tracked locally (released, or never part of a local plan).
func (e *Engine) satisfied(dep openflow.MsgID) bool {
	if _, waiting := e.waiting[dep]; waiting {
		return false
	}
	return e.acked[dep]
}

// dispatch releases one ready update. A pre-acked update (the switch
// already applied it via the other controllers' quorum) is satisfied the
// moment it is released, cascading to its dependents; anything else
// becomes in-flight until its ack arrives.
func (e *Engine) dispatch(su ScheduledUpdate) {
	e.release(su)
	if e.acked[su.ID] {
		e.satisfy(su.ID)
		return
	}
	e.released[su.ID] = true
	e.inFlight++
}

// validate is Validate with engine context, returning a topological order
// of the plan (indices into it, plan order as the tie-break). An id that
// is blocked or in flight locally is a duplicate; an id that is merely
// acked is NOT — on live backends the switch can apply an update through
// the other controllers' quorum before this controller plans it, and the
// plan must still be accepted so the decision reaches the local ledger.
// Already-acked out-of-plan dependencies are considered satisfied.
func (e *Engine) validate(plan Plan) ([]int, error) {
	index := make(map[openflow.MsgID]int, len(plan))
	for i, su := range plan {
		if _, dup := index[su.ID]; dup {
			return nil, fmt.Errorf("%w: %s", ErrDuplicateUpdate, su.ID)
		}
		if _, blocked := e.waiting[su.ID]; blocked || e.released[su.ID] {
			return nil, fmt.Errorf("%w: %s", ErrDuplicateUpdate, su.ID)
		}
		index[su.ID] = i
	}
	indeg := make([]int, len(plan))
	dependents := make([][]int, len(plan))
	for i, su := range plan {
		for _, dep := range su.DependsOn {
			j, inPlan := index[dep]
			if !inPlan {
				if e.acked[dep] {
					continue // satisfied externally
				}
				return nil, fmt.Errorf("%w: %s depends on %s", ErrUnknownDependency, su.ID, dep)
			}
			indeg[i]++
			dependents[j] = append(dependents[j], i)
		}
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, len(plan))
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, j := range dependents[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if len(order) != len(plan) {
		return nil, ErrCycle
	}
	return order, nil
}

// Ack records that an update has been applied by its switch, releasing
// any updates whose dependencies are now all satisfied. Duplicate acks
// are ignored. An ack for an update this controller has not released yet
// (quorum formed from the other controllers' shares) is remembered; its
// dependents release once the update itself is released.
func (e *Engine) Ack(id openflow.MsgID) {
	if e.acked[id] {
		return
	}
	e.acked[id] = true
	if e.released[id] {
		delete(e.released, id)
		e.inFlight--
		e.satisfy(id)
	}
	// Otherwise the update is either still blocked locally (satisfied by
	// dispatch when its own release fires) or not planned yet (satisfied
	// by dispatch when the plan arrives).
}

// satisfy propagates a dependency that is now both acked and locally
// released, cascading through pre-acked dependents.
func (e *Engine) satisfy(id openflow.MsgID) {
	for _, depID := range e.dependents[id] {
		entry, ok := e.waiting[depID]
		if !ok {
			continue
		}
		delete(entry.missing, id)
		if len(entry.missing) == 0 {
			delete(e.waiting, depID)
			e.dispatch(entry.update)
		}
	}
	delete(e.dependents, id)
}

// Acked reports whether an update has been acknowledged.
func (e *Engine) Acked(id openflow.MsgID) bool { return e.acked[id] }

// Waiting returns the number of blocked updates.
func (e *Engine) Waiting() int { return len(e.waiting) }

// InFlight returns the number of updates released but not yet
// acknowledged.
func (e *Engine) InFlight() int { return e.inFlight }

// Unacked returns the ids of updates that were released to their switches
// but have not been acknowledged, in deterministic (sorted) order. A
// recovery layer uses this to retransmit in-flight updates after faults:
// the dispatch may have died with a crashed switch or a severed link.
func (e *Engine) Unacked() []openflow.MsgID {
	ids := make([]openflow.MsgID, 0, len(e.released))
	for id := range e.released {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Origin != ids[j].Origin {
			return ids[i].Origin < ids[j].Origin
		}
		return ids[i].Seq < ids[j].Seq
	})
	return ids
}
