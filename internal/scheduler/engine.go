package scheduler

import (
	"fmt"

	"cicero/internal/openflow"
)

// Engine is the runtime dependency tracker a controller runs (Fig. 7b of
// the paper): updates whose dependency sets are empty are released
// immediately; as acknowledgements arrive, satisfied dependents are
// released. Updates belonging to different plans (different events) are
// tracked independently and hence proceed in parallel.
//
// Engine is not concurrency-safe; in the discrete-event simulation each
// controller owns one engine driven from its handlers.
type Engine struct {
	// release is invoked for every update the moment it becomes ready.
	release func(ScheduledUpdate)

	waiting    map[openflow.MsgID]*engineEntry
	dependents map[openflow.MsgID][]openflow.MsgID
	acked      map[openflow.MsgID]bool
	inFlight   int
}

// engineEntry is an update still blocked on dependencies.
type engineEntry struct {
	update  ScheduledUpdate
	missing map[openflow.MsgID]struct{}
}

// NewEngine creates an engine that calls release for each ready update.
func NewEngine(release func(ScheduledUpdate)) *Engine {
	return &Engine{
		release:    release,
		waiting:    make(map[openflow.MsgID]*engineEntry),
		dependents: make(map[openflow.MsgID][]openflow.MsgID),
		acked:      make(map[openflow.MsgID]bool),
	}
}

// Add registers a plan. Ready updates are released before Add returns;
// the rest wait for Ack calls. Dependencies may reference updates inside
// the plan or updates already acknowledged (e.g. from an earlier partial
// plan); anything else is ErrUnknownDependency.
func (e *Engine) Add(plan Plan) error {
	if err := e.validate(plan); err != nil {
		return err
	}
	for _, su := range plan {
		e.inFlight++
		missing := make(map[openflow.MsgID]struct{})
		for _, dep := range su.DependsOn {
			if !e.acked[dep] {
				missing[dep] = struct{}{}
				e.dependents[dep] = append(e.dependents[dep], su.ID)
			}
		}
		if len(missing) == 0 {
			e.release(su)
			continue
		}
		e.waiting[su.ID] = &engineEntry{update: su, missing: missing}
	}
	return nil
}

// validate is Validate with engine context: already-acked dependencies
// are considered satisfied, and ids already tracked are duplicates.
func (e *Engine) validate(plan Plan) error {
	index := make(map[openflow.MsgID]int, len(plan))
	for i, su := range plan {
		if _, dup := index[su.ID]; dup {
			return fmt.Errorf("%w: %s", ErrDuplicateUpdate, su.ID)
		}
		if _, tracked := e.waiting[su.ID]; tracked || e.acked[su.ID] {
			return fmt.Errorf("%w: %s", ErrDuplicateUpdate, su.ID)
		}
		index[su.ID] = i
	}
	indeg := make([]int, len(plan))
	dependents := make([][]int, len(plan))
	for i, su := range plan {
		for _, dep := range su.DependsOn {
			j, inPlan := index[dep]
			if !inPlan {
				if e.acked[dep] {
					continue // satisfied externally
				}
				return fmt.Errorf("%w: %s depends on %s", ErrUnknownDependency, su.ID, dep)
			}
			indeg[i]++
			dependents[j] = append(dependents[j], i)
		}
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		seen++
		for _, j := range dependents[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if seen != len(plan) {
		return ErrCycle
	}
	return nil
}

// Ack records that an update has been applied by its switch, releasing
// any updates whose dependencies are now all satisfied. Duplicate acks
// are ignored.
func (e *Engine) Ack(id openflow.MsgID) {
	if e.acked[id] {
		return
	}
	e.acked[id] = true
	if e.inFlight > 0 {
		e.inFlight--
	}
	for _, depID := range e.dependents[id] {
		entry, ok := e.waiting[depID]
		if !ok {
			continue
		}
		delete(entry.missing, id)
		if len(entry.missing) == 0 {
			delete(e.waiting, depID)
			e.release(entry.update)
		}
	}
	delete(e.dependents, id)
}

// Acked reports whether an update has been acknowledged.
func (e *Engine) Acked(id openflow.MsgID) bool { return e.acked[id] }

// Waiting returns the number of blocked updates.
func (e *Engine) Waiting() int { return len(e.waiting) }

// InFlight returns the number of updates released or blocked but not yet
// acknowledged.
func (e *Engine) InFlight() int { return e.inFlight }
