package scheduler

import (
	"testing"

	"cicero/internal/openflow"
)

func plannedUpdates(origin string, n int) []Update {
	out := make([]Update, n)
	for i := range out {
		out[i] = Update{
			ID: openflow.MsgID{Origin: origin, Seq: uint64(i)},
			Mod: openflow.FlowMod{Op: openflow.FlowAdd, Switch: "s0",
				Rule: openflow.Rule{Priority: 10, Cookie: uint64(i + 1)}},
		}
	}
	return out
}

func TestPlannedRegisteredOrigin(t *testing.T) {
	sched := Planned{ByOrigin: map[string][][]int{
		"ev#1/d0": {nil, {0}, {1}},
	}}
	plan := sched.Schedule(plannedUpdates("ev#1/d0", 3))
	if err := Validate(plan); err != nil {
		t.Fatal(err)
	}
	if len(plan[0].DependsOn) != 0 {
		t.Fatalf("update 0 has deps %v, want none", plan[0].DependsOn)
	}
	for i := 1; i < 3; i++ {
		if len(plan[i].DependsOn) != 1 || plan[i].DependsOn[0] != plan[i-1].ID {
			t.Fatalf("update %d deps %v, want chain on %s", i, plan[i].DependsOn, plan[i-1].ID)
		}
	}
}

func TestPlannedUnknownOriginFallsBack(t *testing.T) {
	sched := Planned{ByOrigin: map[string][][]int{"ev#1/d0": {nil}}}
	updates := plannedUpdates("other#9/d0", 3)
	got := sched.Schedule(updates)
	want := ReversePath{}.Schedule(updates)
	if len(got) != len(want) {
		t.Fatalf("plan lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i].DependsOn) != len(want[i].DependsOn) {
			t.Fatalf("update %d: fallback deps %v, want reverse-path deps %v",
				i, got[i].DependsOn, want[i].DependsOn)
		}
		for j := range got[i].DependsOn {
			if got[i].DependsOn[j] != want[i].DependsOn[j] {
				t.Fatalf("update %d dep %d: %s vs %s", i, j, got[i].DependsOn[j], want[i].DependsOn[j])
			}
		}
	}
	if (Planned{}).Name() != "planned" || (Planned{Label: "x"}).Name() != "x" {
		t.Fatal("Planned.Name mismatch")
	}
}
