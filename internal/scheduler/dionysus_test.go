package scheduler

import (
	"errors"
	"fmt"
	"testing"

	"cicero/internal/openflow"
)

// migrationFor builds a Migration with synthetic updates per path switch.
func migrationFor(flowID string, bw float64, oldPath, newPath []string) Migration {
	m := Migration{FlowID: flowID, Bandwidth: bw, OldPath: oldPath, NewPath: newPath}
	for i, sw := range newPath {
		m.AddUpdates = append(m.AddUpdates, Update{
			ID: openflow.MsgID{Origin: flowID + "/add", Seq: uint64(i)},
			Mod: openflow.FlowMod{Op: openflow.FlowAdd, Switch: sw, Rule: openflow.Rule{
				Priority: 1,
				Match:    openflow.Match{Src: flowID, Dst: "dst"},
				Action:   openflow.Action{Type: openflow.ActionOutput, NextHop: "n"},
			}},
		})
	}
	for i, sw := range oldPath {
		m.DelUpdates = append(m.DelUpdates, Update{
			ID: openflow.MsgID{Origin: flowID + "/del", Seq: uint64(i)},
			Mod: openflow.FlowMod{Op: openflow.FlowDelete, Switch: sw, Rule: openflow.Rule{
				Match: openflow.Match{Src: flowID, Dst: "dst"},
			}},
		})
	}
	return m
}

// uniformCapacity returns constant-capacity / zero-usage functions.
func uniformCapacity(c float64) (func(a, b string) float64, func(a, b string) float64) {
	return func(a, b string) float64 { return c },
		func(a, b string) float64 { return 0 }
}

// replayCapacityCheck executes a plan through the engine, tracking link
// usage as adds/deletes apply; it returns the worst over-provisioning seen.
func replayCapacityCheck(t *testing.T, plan Plan, migrations []Migration, capacity float64) float64 {
	t.Helper()
	// Map update id -> (migration, isAdd).
	type effect struct {
		m     *Migration
		isAdd bool
	}
	effects := make(map[openflow.MsgID]effect)
	for i := range migrations {
		m := &migrations[i]
		for _, u := range m.AddUpdates {
			effects[u.ID] = effect{m: m, isAdd: true}
		}
		for _, u := range m.DelUpdates {
			effects[u.ID] = effect{m: m, isAdd: false}
		}
	}
	reserved := make(map[[2]string]float64)
	for i := range migrations {
		for l := range pathLinks(migrations[i].OldPath) {
			reserved[l] += migrations[i].Bandwidth
		}
	}
	worst := 0.0
	// Adds reserve the whole new path when the flow's FIRST add applies
	// (conservative: traffic may start using partial segments); deletes
	// release the old path when the flow's LAST delete applies.
	addsSeen := make(map[string]int)
	delsSeen := make(map[string]int)
	var order []openflow.MsgID
	e := NewEngine(func(su ScheduledUpdate) { order = append(order, su.ID) })
	if err := e.Add(plan); err != nil {
		t.Fatalf("engine.Add: %v", err)
	}
	for len(order) > 0 {
		id := order[0]
		order = order[1:]
		if eff, ok := effects[id]; ok {
			if eff.isAdd {
				addsSeen[eff.m.FlowID]++
				if addsSeen[eff.m.FlowID] == 1 {
					old := pathLinks(eff.m.OldPath)
					for l := range pathLinks(eff.m.NewPath) {
						if !old[l] {
							reserved[l] += eff.m.Bandwidth
							if reserved[l]-capacity > worst {
								worst = reserved[l] - capacity
							}
						}
					}
				}
			} else {
				delsSeen[eff.m.FlowID]++
				if delsSeen[eff.m.FlowID] == len(eff.m.DelUpdates) {
					newLinks := pathLinks(eff.m.NewPath)
					for l := range pathLinks(eff.m.OldPath) {
						if !newLinks[l] {
							reserved[l] -= eff.m.Bandwidth
						}
					}
				}
			}
		}
		e.Ack(id)
	}
	if e.InFlight() != 0 || e.Waiting() != 0 {
		t.Fatalf("plan did not drain: inflight=%d waiting=%d", e.InFlight(), e.Waiting())
	}
	return worst
}

// TestMigrationSwapRequiresOrdering reproduces the paper's Fig. 3: flow A
// vacates a full link before flow B moves onto it. Unordered application
// would transiently put 10 units on a 5-unit link.
func TestMigrationSwapRequiresOrdering(t *testing.T) {
	// Flow A: l1 -> l2 (frees l1). Flow B: l3 -> l1 (needs l1 free).
	migrations := []Migration{
		migrationFor("A", 5, []string{"x", "y"}, []string{"x", "z", "y"}),
		migrationFor("B", 5, []string{"p", "q"}, []string{"x", "y"}),
	}
	capFn, useFn := uniformCapacity(5)
	plan, err := ScheduleMigrations(migrations, capFn, useFn)
	if err != nil {
		t.Fatalf("ScheduleMigrations: %v", err)
	}
	if over := replayCapacityCheck(t, plan, migrations, 5); over > 0 {
		t.Fatalf("plan over-provisioned by %v", over)
	}
	// B's first add must depend on A's deletes (wave gating).
	index := make(map[openflow.MsgID]ScheduledUpdate, len(plan))
	for _, su := range plan {
		index[su.ID] = su
	}
	bFirstAdd := index[openflow.MsgID{Origin: "B/add", Seq: uint64(len(migrations[1].NewPath) - 1)}]
	gated := false
	for _, dep := range bFirstAdd.DependsOn {
		if dep.Origin == "A/del" {
			gated = true
		}
	}
	if !gated {
		t.Fatalf("B's first add not gated on A's deletes: deps=%v", bFirstAdd.DependsOn)
	}
}

func TestMigrationIndependentFlowsOneWave(t *testing.T) {
	// Disjoint links: both flows move in wave 1, nothing gated cross-flow.
	migrations := []Migration{
		migrationFor("A", 2, []string{"a1", "a2"}, []string{"a1", "a3", "a2"}),
		migrationFor("B", 2, []string{"b1", "b2"}, []string{"b1", "b3", "b2"}),
	}
	capFn, useFn := uniformCapacity(10)
	plan, err := ScheduleMigrations(migrations, capFn, useFn)
	if err != nil {
		t.Fatalf("ScheduleMigrations: %v", err)
	}
	for _, su := range plan {
		for _, dep := range su.DependsOn {
			if su.ID.Origin[:1] != dep.Origin[:1] {
				t.Fatalf("independent flows cross-gated: %s depends on %s", su.ID, dep)
			}
		}
	}
}

func TestMigrationDeadlockDetected(t *testing.T) {
	// A and B swap links with no spare capacity anywhere: a true deadlock
	// (Dionysus resolves this by rate-limiting; we report it).
	migrations := []Migration{
		migrationFor("A", 5, []string{"x", "y"}, []string{"p", "q"}),
		migrationFor("B", 5, []string{"p", "q"}, []string{"x", "y"}),
	}
	capFn, useFn := uniformCapacity(5)
	_, err := ScheduleMigrations(migrations, capFn, useFn)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected ErrDeadlock, got %v", err)
	}
}

func TestMigrationExternalUsageRespected(t *testing.T) {
	// The target link has 3 units of external traffic: a 3-unit flow fits
	// (3+3 <= 6... capacity 5 -> does NOT fit), so it must wait for
	// nothing and instead deadlock since nothing frees the link.
	migrations := []Migration{
		migrationFor("A", 3, []string{"a", "b"}, []string{"x", "y"}),
	}
	capFn := func(a, b string) float64 { return 5 }
	useFn := func(a, b string) float64 {
		if migLink(a, b) == migLink("x", "y") {
			return 3
		}
		return 0
	}
	_, err := ScheduleMigrations(migrations, capFn, useFn)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected ErrDeadlock with external usage, got %v", err)
	}
	// With capacity 6 it fits.
	capFn6 := func(a, b string) float64 { return 6 }
	if _, err := ScheduleMigrations(migrations, capFn6, useFn); err != nil {
		t.Fatalf("should fit with capacity 6: %v", err)
	}
}

func TestMigrationChainAcrossThreeWaves(t *testing.T) {
	// C waits for B which waits for A: a dependency chain of waves.
	// A: l1->free link, B: l2->l1, C: l3->l2.
	migrations := []Migration{
		migrationFor("A", 5, []string{"l1a", "l1b"}, []string{"f1", "f2"}),
		migrationFor("B", 5, []string{"l2a", "l2b"}, []string{"l1a", "l1b"}),
		migrationFor("C", 5, []string{"l3a", "l3b"}, []string{"l2a", "l2b"}),
	}
	capFn, useFn := uniformCapacity(5)
	plan, err := ScheduleMigrations(migrations, capFn, useFn)
	if err != nil {
		t.Fatalf("ScheduleMigrations: %v", err)
	}
	if over := replayCapacityCheck(t, plan, migrations, 5); over > 0 {
		t.Fatalf("chain plan over-provisioned by %v", over)
	}
	groups, err := ParallelGroups(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) < 3 {
		t.Fatalf("expected >= 3 dependency levels for a 3-wave chain, got %d", len(groups))
	}
}

func TestMigrationPlanScalesToManyFlows(t *testing.T) {
	// 30 flows rotating around a ring of 31 links, each full: a long
	// cascade that must schedule without deadlock (one free link).
	const n = 30
	var migrations []Migration
	link := func(i int) []string {
		return []string{fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1000)}
	}
	for i := 0; i < n; i++ {
		migrations = append(migrations, migrationFor(
			fmt.Sprintf("f%02d", i), 5, link(i), link(i+1)))
	}
	// link(n) is free; flow n-1 moves first, then the cascade unwinds.
	capFn, useFn := uniformCapacity(5)
	plan, err := ScheduleMigrations(migrations, capFn, useFn)
	if err != nil {
		t.Fatalf("ScheduleMigrations: %v", err)
	}
	if over := replayCapacityCheck(t, plan, migrations, 5); over > 0 {
		t.Fatalf("cascade over-provisioned by %v", over)
	}
}

func BenchmarkScheduleMigrations30(b *testing.B) {
	const n = 30
	link := func(i int) []string {
		return []string{fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1000)}
	}
	var migrations []Migration
	for i := 0; i < n; i++ {
		migrations = append(migrations, migrationFor(
			fmt.Sprintf("f%02d", i), 5, link(i), link(i+1)))
	}
	capFn, useFn := uniformCapacity(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScheduleMigrations(migrations, capFn, useFn); err != nil {
			b.Fatal(err)
		}
	}
}
