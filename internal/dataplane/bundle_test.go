package dataplane

import (
	"testing"

	"cicero/internal/openflow"
	"cicero/internal/simnet"
)

func bundleID(seq uint64) openflow.MsgID {
	return openflow.MsgID{Origin: "ctl", Seq: seq}
}

func TestBundleCommitAppliesAtomically(t *testing.T) {
	h := newHarness(t, ModeUnsigned, false)
	id := bundleID(1)
	h.sw.HandleMessage("c1", openflow.BundleOpen{Bundle: id})
	h.sw.HandleMessage("c1", openflow.BundleAdd{Bundle: id, Mod: mod("b1")})
	h.sw.HandleMessage("c1", openflow.BundleAdd{Bundle: id, Mod: mod("b2")})
	// Nothing applied before commit.
	if _, ok := h.sw.Lookup("x", "b1"); ok {
		t.Fatal("bundle mod applied before commit")
	}
	h.sw.HandleMessage("c1", openflow.BundleCommit{Bundle: id})
	if _, ok := h.sw.Lookup("x", "b1"); !ok {
		t.Fatal("bundle mod 1 missing after commit")
	}
	if _, ok := h.sw.Lookup("x", "b2"); !ok {
		t.Fatal("bundle mod 2 missing after commit")
	}
	// The committer gets a confirmation.
	if _, err := h.sim.Run(); err != nil {
		t.Fatal(err)
	}
	gotReply := false
	for _, msg := range h.received["c1"] {
		if _, ok := msg.(openflow.BarrierReply); ok {
			gotReply = true
		}
	}
	if !gotReply {
		t.Fatal("no commit confirmation")
	}
}

func TestBundleAddWithoutOpenIgnored(t *testing.T) {
	h := newHarness(t, ModeUnsigned, false)
	h.sw.HandleMessage("c1", openflow.BundleAdd{Bundle: bundleID(9), Mod: mod("bx")})
	h.sw.HandleMessage("c1", openflow.BundleCommit{Bundle: bundleID(9)})
	if _, ok := h.sw.Lookup("x", "bx"); ok {
		t.Fatal("unopened bundle applied")
	}
}

func TestBundleCommitWakesWaiters(t *testing.T) {
	h := newHarness(t, ModeUnsigned, false)
	fired := false
	h.sw.Subscribe("x", "bw", func(simnet.Time) { fired = true })
	id := bundleID(2)
	h.sw.HandleMessage("c1", openflow.BundleOpen{Bundle: id})
	h.sw.HandleMessage("c1", openflow.BundleAdd{Bundle: id, Mod: mod("bw")})
	h.sw.HandleMessage("c1", openflow.BundleCommit{Bundle: id})
	if !fired {
		t.Fatal("bundle apply did not wake waiter")
	}
}

func TestBarrierReply(t *testing.T) {
	h := newHarness(t, ModeUnsigned, false)
	h.sw.HandleMessage("c2", openflow.BarrierRequest{ID: bundleID(3)})
	if _, err := h.sim.Run(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, msg := range h.received["c2"] {
		if reply, ok := msg.(openflow.BarrierReply); ok && reply.ID == bundleID(3) {
			found = true
		}
	}
	if !found {
		t.Fatal("no barrier reply")
	}
}

// TestBundlesAreSingleSwitchOnly documents §2.2: a bundle commits on one
// switch; there is no cross-switch transaction — two switches with open
// bundles commit independently (Cicero's scheduler provides the
// cross-switch ordering instead).
func TestBundlesAreSingleSwitchOnly(t *testing.T) {
	hA := newHarness(t, ModeUnsigned, false)
	// Second switch gets its own harness (independent state).
	hB := newHarness(t, ModeUnsigned, false)
	id := bundleID(4)
	hA.sw.HandleMessage("c1", openflow.BundleOpen{Bundle: id})
	hA.sw.HandleMessage("c1", openflow.BundleAdd{Bundle: id, Mod: mod("cross")})
	hB.sw.HandleMessage("c1", openflow.BundleOpen{Bundle: id})
	hB.sw.HandleMessage("c1", openflow.BundleAdd{Bundle: id, Mod: mod("cross")})
	// Committing on A does nothing for B.
	hA.sw.HandleMessage("c1", openflow.BundleCommit{Bundle: id})
	if _, ok := hA.sw.Lookup("x", "cross"); !ok {
		t.Fatal("A did not commit")
	}
	if _, ok := hB.sw.Lookup("x", "cross"); ok {
		t.Fatal("commit on A leaked to B: bundles must be single-switch")
	}
}
