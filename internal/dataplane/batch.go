// Batch-amortized update verification (the switch half of the
// carrier-scale hot path, see internal/controlplane/batch.go).
//
// A MsgBatchUpdate carries one update plus a Merkle inclusion proof
// against a batch root and a per-batch signature share over the root.
// The switch verifies the proof with pure hashing (cheap, always on),
// collects a quorum of root shares ONCE per batch, and pays the pairing
// check a single time; every other update of the batch rides the cached
// verdict. The root signature amortizes the CRYPTO, not the RELEASE
// DECISION: an update still applies only after quorum-many distinct
// controllers have each sent it (each honest controller dispatches an
// update only when its scheduler released it, dependencies acked), so a
// single Byzantine controller cannot install a quorum-signed batch
// member ahead of its dependency order. Legacy per-update MsgUpdate
// traffic is still accepted concurrently — recovery replays and
// cross-phase retransmissions use it.
package dataplane

import (
	"fmt"
	"sort"
	"time"

	"cicero/internal/fabric"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/merkle"
)

// batchWaiter buffers one proof-checked update until both gates open:
// the batch root is quorum-verified AND quorum-many distinct controllers
// have sent this very update (release attestation, mirroring the legacy
// per-update share quorum).
type batchWaiter struct {
	msg     protocol.MsgBatchUpdate
	senders map[uint32]bool
}

// pendingBatch tracks one batch root's share quorum and the updates that
// wait on it.
type pendingBatch struct {
	phase    uint64
	shares   map[uint32][]byte
	verified bool
	// waiting is keyed by updateKey so retransmissions accumulate senders
	// instead of duplicating entries.
	waiting map[string]*batchWaiter
}

// batchKey identifies one batch root's quorum pool.
func batchKey(root []byte, phase uint64) string {
	return fmt.Sprintf("%x|%d", root, phase)
}

// handleBatchUpdate processes one batch-amortized update: inclusion-proof
// check, then root-share quorum with a single pairing per batch, then a
// per-update sender quorum before the apply decision.
func (s *Switch) handleBatchUpdate(m protocol.MsgBatchUpdate) {
	key := updateKey(m.UpdateID, m.Phase)
	if verdict, decided := s.applied[key]; decided {
		if m.Resend {
			s.sendAck(m.UpdateID, verdict)
		}
		return
	}
	if s.cfg.Mode == ModeUnsigned {
		s.apply(m.UpdateID, m.Phase, m.Mods, true)
		return
	}
	// Inclusion proof first: it binds this update's exact content and
	// position to the root. It is pure hashing, so it runs even when
	// CryptoReal is off — forged content must never reach the quorum pool.
	// verifyBypass (the chaos canary) disables it like every other check.
	if !s.verifyBypass {
		leaf := openflow.CanonicalUpdateBytes(m.UpdateID, m.Phase, m.Mods)
		if !merkle.Verify(m.BatchRoot, leaf, m.LeafIndex, m.LeafCount, m.Proof) {
			// A failed inclusion proof is attacker-controlled input, not a
			// protocol verdict on the update: drop it without deciding so an
			// honest retransmission of the same update can still complete.
			s.UpdatesRejected++
			if s.cfg.BatchApplyHook != nil {
				s.cfg.BatchApplyHook(s.cfg.ID, m, false)
			}
			return
		}
	}
	if m.ShareIndex == 0 {
		return // malformed share
	}
	bk := batchKey(m.BatchRoot, m.Phase)
	pb, ok := s.pendingBatches[bk]
	if !ok {
		pb = &pendingBatch{
			phase:   m.Phase,
			shares:  make(map[uint32][]byte),
			waiting: make(map[string]*batchWaiter),
		}
		s.pendingBatches[bk] = pb
	}
	w, ok := pb.waiting[key]
	if !ok {
		w = &batchWaiter{senders: make(map[uint32]bool)}
		pb.waiting[key] = w
	}
	w.msg = m
	w.senders[m.ShareIndex] = true
	if _, seen := pb.shares[m.ShareIndex]; !seen {
		pb.shares[m.ShareIndex] = m.Share
	}
	if pb.verified {
		// Root already quorum-verified: this update rides the cached batch
		// signature — zero additional pairings — but still waits for its
		// own quorum of distinct senders.
		if len(w.senders) >= s.cfg.Quorum {
			delete(pb.waiting, key)
			s.batchDecide(w.msg, true)
		}
		return
	}
	if len(pb.shares) < s.cfg.Quorum {
		return
	}
	// Root-share quorum reached: one aggregate-and-verify for the whole
	// batch. A failure (Byzantine shares in the mix) keeps the batch
	// pending so later honest shares can still complete it.
	s.cfg.Net.Charge(fabric.NodeID(s.cfg.ID),
		time.Duration(s.cfg.Quorum)*s.cfg.Cost.BLSAggregatePerShare+s.cfg.Cost.BLSVerifyAggregate)
	if s.cfg.CryptoReal && !s.verifyBypass && !s.verifyBatchRoot(pb, m.BatchRoot) {
		s.UpdatesRejected++
		return
	}
	pb.verified = true
	// Release every waiting update that already has its sender quorum, in
	// deterministic order (map iteration is randomized; acks must not be).
	// Sub-quorum waiters stay buffered until more senders arrive.
	keys := make([]string, 0, len(pb.waiting))
	for k := range pb.waiting {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		wk := pb.waiting[k]
		if len(wk.senders) < s.cfg.Quorum {
			continue
		}
		delete(pb.waiting, k)
		if _, decided := s.applied[k]; decided {
			continue // a legacy quorum may have raced ahead
		}
		s.batchDecide(wk.msg, true)
	}
}

// verifyBatchRoot combines the collected root shares and verifies the
// aggregate against the group public key — the batch's one pairing.
func (s *Switch) verifyBatchRoot(pb *pendingBatch, root []byte) bool {
	canonical := protocol.BatchBytes(pb.phase, root)
	shares := make([]bls.SignatureShare, 0, len(pb.shares))
	for idx, raw := range pb.shares {
		pt, err := s.cfg.Scheme.Params.ParsePoint(raw)
		if err != nil {
			continue
		}
		shares = append(shares, bls.SignatureShare{Index: idx, Point: pt})
	}
	_, err := s.cfg.Scheme.CombineVerifiedCached(s.verifyCache, s.cfg.GroupKey, canonical, shares)
	return err == nil
}

// batchDecide applies or rejects a batch update and notifies the batch
// observation hook (the chaos engine's Merkle-proof invariant attaches
// there, alongside the regular ApplyHook fired by apply).
func (s *Switch) batchDecide(m protocol.MsgBatchUpdate, valid bool) {
	if s.cfg.BatchApplyHook != nil {
		s.cfg.BatchApplyHook(s.cfg.ID, m, valid)
	}
	s.apply(m.UpdateID, m.Phase, m.Mods, valid)
}
