// Batch-amortized update verification (the switch half of the
// carrier-scale hot path, see internal/controlplane/batch.go).
//
// A MsgBatchUpdate carries one update plus a Merkle inclusion proof
// against a batch root, a per-batch signature share over the root, and a
// per-update Ed25519 release attestation. The switch verifies the proof
// with pure hashing (cheap, always on), collects a quorum of root shares
// ONCE per batch, and pays the pairing check a single time; every other
// update of the batch rides the cached verdict. The root signature
// amortizes the CRYPTO, not the RELEASE DECISION: an update still applies
// only after quorum-many distinct AUTHENTICATED controllers have each
// attested its release (each honest controller dispatches an update only
// when its scheduler released it, dependencies acked). The attestation is
// the controller's Ed25519 signature over the (update, phase, root)
// triple, verified against the PKI directory — a self-declared share
// index would let a single Byzantine controller, holding the delivered
// batch and thus every member's valid proof, fabricate the whole quorum
// and install a later batch member ahead of its dependency order. Legacy
// per-update MsgUpdate traffic is still accepted concurrently — recovery
// replays and cross-phase retransmissions use it.
package dataplane

import (
	"fmt"
	"sort"
	"time"

	"cicero/internal/fabric"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/merkle"
	"cicero/internal/tcrypto/pki"
)

// maxPendingBatches bounds the root-quorum pool map. Merkle proof
// verification is keyless hashing, so any sender can mint valid
// (root, phase) pairs over self-built trees; without a cap each one would
// allocate a pendingBatch that lives for the switch's lifetime. When the
// cap is hit, the oldest UNVERIFIED entry is evicted first (an attacker
// cannot mint verified entries — those took a quorum of root shares — so
// junk only ever displaces junk before it displaces real state).
const maxPendingBatches = 512

// batchWaiter buffers one proof-checked update until both gates open:
// the batch root is quorum-verified AND quorum-many distinct controllers
// have attested this very update's release (mirroring the legacy
// per-update share quorum).
type batchWaiter struct {
	msg     protocol.MsgBatchUpdate
	senders map[pki.Identity]bool
}

// pendingBatch tracks one batch root's share quorum and the updates that
// wait on it.
type pendingBatch struct {
	phase    uint64
	shares   map[uint32][]byte
	verified bool
	// seq is the arrival order used for eviction when the pool map is
	// full (oldest unverified first).
	seq uint64
	// waiting is keyed by updateKey so retransmissions accumulate senders
	// instead of duplicating entries.
	waiting map[string]*batchWaiter
}

// batchKey identifies one batch root's quorum pool.
func batchKey(root []byte, phase uint64) string {
	return fmt.Sprintf("%x|%d", root, phase)
}

// handleBatchUpdate processes one batch-amortized update: inclusion-proof
// check, release-attestation authentication, then root-share quorum with
// a single pairing per batch and a per-update sender quorum before the
// apply decision.
func (s *Switch) handleBatchUpdate(m protocol.MsgBatchUpdate) {
	key := updateKey(m.UpdateID, m.Phase)
	if verdict, decided := s.applied[key]; decided {
		if m.Resend {
			s.sendAck(m.UpdateID, verdict)
		}
		return
	}
	switch s.cfg.Mode {
	case ModeUnsigned:
		s.apply(m.UpdateID, m.Phase, m.Mods, true)
		return
	case ModeAggregated:
		// Per-share batch traffic is not accepted in aggregated mode; the
		// aggregator must combine shares first (same gate as handleUpdate).
		s.UpdatesRejected++
		return
	}
	// Inclusion proof first: it binds this update's exact content and
	// position to the root. It is pure hashing, so it runs even when
	// CryptoReal is off — forged content must never reach the quorum pool.
	// verifyBypass (the chaos canary) disables it like every other check.
	if !s.verifyBypass {
		leaf := openflow.CanonicalUpdateBytes(m.UpdateID, m.Phase, m.Mods)
		if !merkle.Verify(m.BatchRoot, leaf, m.LeafIndex, m.LeafCount, m.Proof) {
			// A failed inclusion proof is attacker-controlled input, not a
			// protocol verdict on the update: drop it without deciding so an
			// honest retransmission of the same update can still complete.
			s.UpdatesRejected++
			if s.cfg.BatchApplyHook != nil {
				s.cfg.BatchApplyHook(s.cfg.ID, m, false)
			}
			return
		}
	}
	if m.ShareIndex == 0 {
		return // malformed share
	}
	// Release-attestation authentication: the sender quorum below counts
	// identities, so the identity must be one the switch can trust. The
	// claimed controller must be a current member and, under real crypto,
	// must have Ed25519-signed this exact (update, phase, root) release —
	// holding the batch (and thus every member's valid proof) is NOT
	// enough to vouch for a member's release. The bypass canary models a
	// switch with broken verification: it trusts the self-declared share
	// index as the sender, the pre-fix vulnerability the chaos invariants
	// must catch.
	sender := m.From
	if s.verifyBypass {
		sender = pki.Identity(fmt.Sprintf("bypass-%d", m.ShareIndex))
	} else {
		if !s.isController(m.From) {
			s.UpdatesRejected++
			return
		}
		s.cfg.Net.Charge(fabric.NodeID(s.cfg.ID), s.cfg.Cost.Ed25519Verify)
		if s.cfg.CryptoReal {
			release := protocol.BatchReleaseBytes(m.UpdateID, m.Phase, m.BatchRoot)
			if s.cfg.Directory.Verify(m.From, release, m.ReleaseSig) != nil {
				// Like a failed proof: attacker-controlled input, dropped
				// without deciding the update.
				s.UpdatesRejected++
				return
			}
		}
	}
	bk := batchKey(m.BatchRoot, m.Phase)
	pb, ok := s.pendingBatches[bk]
	if !ok {
		s.evictPendingBatch()
		s.batchSeq++
		pb = &pendingBatch{
			phase:   m.Phase,
			shares:  make(map[uint32][]byte),
			seq:     s.batchSeq,
			waiting: make(map[string]*batchWaiter),
		}
		s.pendingBatches[bk] = pb
	}
	w, ok := pb.waiting[key]
	if !ok {
		w = &batchWaiter{senders: make(map[pki.Identity]bool)}
		pb.waiting[key] = w
	}
	w.msg = m
	w.senders[sender] = true
	if pb.verified {
		// Root already quorum-verified: this update rides the cached batch
		// signature — zero additional pairings — but still waits for its
		// own quorum of distinct release attestations.
		if len(w.senders) >= s.cfg.Quorum {
			delete(pb.waiting, key)
			s.batchDecide(w.msg, true)
		}
		return
	}
	// Overwrite on retransmission (same as the legacy per-update pool): a
	// garbage share claiming this index must not permanently shadow the
	// index owner's real share, or a poisoned pool could stall the whole
	// batch until honest retransmissions land.
	pb.shares[m.ShareIndex] = m.Share
	if len(pb.shares) < s.cfg.Quorum {
		return
	}
	// Root-share quorum reached: one aggregate-and-verify for the whole
	// batch. A failure (Byzantine shares in the mix) keeps the batch
	// pending so later honest shares can still complete it.
	s.cfg.Net.Charge(fabric.NodeID(s.cfg.ID),
		time.Duration(s.cfg.Quorum)*s.cfg.Cost.BLSAggregatePerShare+s.cfg.Cost.BLSVerifyAggregate)
	if s.cfg.CryptoReal && !s.verifyBypass && !s.verifyBatchRoot(pb, m.BatchRoot) {
		s.UpdatesRejected++
		return
	}
	pb.verified = true
	pb.shares = nil // quorum served its purpose; later members ride verified
	// Release every waiting update that already has its sender quorum, in
	// deterministic order (map iteration is randomized; acks must not be).
	// Sub-quorum waiters stay buffered until more senders arrive.
	keys := make([]string, 0, len(pb.waiting))
	for k := range pb.waiting {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		wk := pb.waiting[k]
		if len(wk.senders) < s.cfg.Quorum {
			continue
		}
		delete(pb.waiting, k)
		if _, decided := s.applied[k]; decided {
			continue // a legacy quorum may have raced ahead
		}
		s.batchDecide(wk.msg, true)
	}
}

// isController reports whether id is a current control-plane member.
func (s *Switch) isController(id pki.Identity) bool {
	for _, ctl := range s.cfg.Controllers {
		if ctl == id {
			return true
		}
	}
	return false
}

// evictPendingBatch makes room for one new pool entry when the map is at
// capacity: the oldest unverified entry goes first (any sender can mint
// those with self-built trees), then — only if every entry is verified —
// the oldest verified one (its later members would merely re-collect a
// quorum, a liveness cost, never a safety one).
func (s *Switch) evictPendingBatch() {
	if len(s.pendingBatches) < maxPendingBatches {
		return
	}
	victim := ""
	victimVerified := false
	var victimSeq uint64
	for k, pb := range s.pendingBatches {
		better := victim == "" ||
			(victimVerified && !pb.verified) ||
			(victimVerified == pb.verified && pb.seq < victimSeq)
		if better {
			victim, victimVerified, victimSeq = k, pb.verified, pb.seq
		}
	}
	delete(s.pendingBatches, victim)
}

// dropStaleBatches discards pool entries from membership phases before
// the given one; controllers re-sign fresh batches in the new phase and
// retransmit cross-phase updates through the legacy per-update path, so
// stale entries can never complete.
func (s *Switch) dropStaleBatches(phase uint64) {
	for k, pb := range s.pendingBatches {
		if pb.phase < phase {
			delete(s.pendingBatches, k)
		}
	}
}

// verifyBatchRoot combines the collected root shares and verifies the
// aggregate against the group public key — the batch's one pairing.
func (s *Switch) verifyBatchRoot(pb *pendingBatch, root []byte) bool {
	canonical := protocol.BatchBytes(pb.phase, root)
	shares := make([]bls.SignatureShare, 0, len(pb.shares))
	for idx, raw := range pb.shares {
		pt, err := s.cfg.Scheme.Params.ParsePoint(raw)
		if err != nil {
			continue
		}
		shares = append(shares, bls.SignatureShare{Index: idx, Point: pt})
	}
	_, err := s.cfg.Scheme.CombineVerifiedCached(s.verifyCache, s.cfg.GroupKey, canonical, shares)
	return err == nil
}

// batchDecide applies or rejects a batch update and notifies the batch
// observation hook (the chaos engine's Merkle-proof invariant attaches
// there, alongside the regular ApplyHook fired by apply).
func (s *Switch) batchDecide(m protocol.MsgBatchUpdate, valid bool) {
	if s.cfg.BatchApplyHook != nil {
		s.cfg.BatchApplyHook(s.cfg.ID, m, valid)
	}
	s.apply(m.UpdateID, m.Phase, m.Mods, valid)
}
