// Package dataplane implements the Cicero switch runtime (Fig. 6 of the
// paper), the paper's Open vSwitch extension: flow-table forwarding,
// event generation for table misses, quorum collection and threshold-
// signature aggregation/verification of control-plane updates, and signed
// acknowledgements. The runtime is deliberately minimal — the paper's
// design goal is to keep switch instrumentation small.
package dataplane

import (
	"fmt"
	"sort"
	"time"

	"cicero/internal/fabric"
	"cicero/internal/metarepo"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/pki"
)

// Mode selects how the switch authenticates updates.
type Mode int

// Modes. Start at 1 so the zero value is invalid.
const (
	// ModeUnsigned applies the first copy of each update (the centralized
	// and crash-tolerant baselines: no quorum authentication, §6.1).
	ModeUnsigned Mode = iota + 1
	// ModeThreshold collects a quorum of signature shares, aggregates,
	// and verifies against the control plane's threshold public key.
	ModeThreshold
	// ModeAggregated expects pre-aggregated signatures from a designated
	// aggregator controller and only verifies them (§4.2).
	ModeAggregated
)

// Config assembles a switch.
type Config struct {
	ID string
	// Net is the transport seam; the same switch runs on the simulator or
	// the live backends.
	Net  fabric.Fabric
	Cost protocol.CostModel
	Mode Mode

	// Keys signs events and acks; Directory validates peers.
	Keys      *pki.KeyPair
	Directory *pki.Directory

	// Scheme/GroupKey/Quorum configure threshold verification
	// (ModeThreshold and ModeAggregated). The group key's Feldman
	// commitments are public information published by the DKG; holding
	// them lets the switch identify bad shares when an optimistic
	// aggregate fails.
	Scheme   *bls.Scheme
	GroupKey *bls.GroupKey
	Quorum   int

	// Controllers is the domain's control plane membership (identities are
	// also simnet node ids).
	Controllers []pki.Identity

	// CryptoReal executes real BLS/Ed25519 operations. When false only
	// the cost model's time is charged; quorum counting and dedup still
	// run, so protocol structure is identical.
	CryptoReal bool

	// ApplyHook, when set, observes every update apply decision (the chaos
	// engine's invariant checkers attach here). It runs synchronously on
	// the simulator loop after the flow table has been updated.
	ApplyHook func(sw string, id openflow.MsgID, phase uint64, mods []openflow.FlowMod, valid bool)

	// BatchApplyHook, when set, additionally observes batch-amortized
	// update decisions with the full MsgBatchUpdate (root, inclusion
	// proof), letting chaos invariants re-check the Merkle proof
	// independently. ApplyHook still fires for the same decision.
	BatchApplyHook func(sw string, m protocol.MsgBatchUpdate, valid bool)

	// Metadata, when non-nil, enables the trusted-metadata store
	// (requires Scheme and GroupKey; see metadata.go).
	Metadata *MetadataConfig

	// BootEpoch namespaces this instance's event sequence numbers (the
	// high 32 bits). Controllers dedup events by id, so a switch that
	// restarts with a reset counter would collide with its pre-crash ids
	// and its fresh events would be silently dropped — or worse, deliver
	// different content under an already-delivered id. A real switch
	// derives the epoch from a boot counter in stable storage; here the
	// deployment layer's restart path increments it.
	BootEpoch uint32
}

// matchKey dedups pending events per flow endpoints.
type matchKey struct{ src, dst string }

// pendingUpdate buffers an update until its share quorum completes.
type pendingUpdate struct {
	mods   []openflow.FlowMod
	phase  uint64
	shares map[uint32][]byte
}

// waiter observes rule installation (the simulation driver uses it to
// start flows whose rules were missing).
type waiter struct {
	src, dst string
	fn       func(at fabric.Time)
}

// Switch is one data-plane switch.
type Switch struct {
	cfg   Config
	table *openflow.FlowTable

	eventSeq uint64
	// pendingEvents dedups outstanding table-miss events per match.
	pendingEvents map[matchKey]openflow.MsgID
	pending       map[string]*pendingUpdate // keyed by updateID|phase
	// pendingBatches collects root-share quorums for batch-amortized
	// updates, keyed by batchRoot|phase (see batch.go). Bounded by
	// maxPendingBatches; batchSeq orders entries for eviction.
	pendingBatches map[string]*pendingBatch
	batchSeq       uint64
	// applied records the verdict of every decided update (true: applied,
	// false: rejected) so recovery retransmissions can be re-acknowledged
	// with the original outcome.
	applied     map[string]bool
	aggregator  pki.Identity
	configPhase uint64
	waiters     []waiter
	bundles     map[string]*bundleState

	// verifyCache memoizes verified (message, signature) pairs so
	// retransmitted or re-gossiped aggregates skip the pairing entirely.
	// It affects real CPU time only; simulated time is charged via Cost.
	verifyCache *bls.VerifyCache

	// verifyBypass disables update signature verification. It exists ONLY
	// as the chaos engine's canary mutation: a deliberately broken switch
	// that the no-forged-rule invariant must catch.
	verifyBypass bool

	// meta is the trusted-metadata store (nil when disabled); see
	// metadata.go.
	meta *metarepo.Store

	// MetaConfigRejects counts config pushes rejected because the signed
	// policy metadata contradicted them.
	MetaConfigRejects uint64

	// Counters for experiments.
	EventsGenerated uint64
	UpdatesApplied  uint64
	UpdatesRejected uint64
}

var _ fabric.Handler = (*Switch)(nil)

// New creates a switch and registers it on the network.
func New(cfg Config) (*Switch, error) {
	if cfg.ID == "" || cfg.Net == nil || cfg.Keys == nil || cfg.Directory == nil {
		return nil, fmt.Errorf("dataplane: incomplete config for switch %q", cfg.ID)
	}
	if cfg.Mode == ModeThreshold || cfg.Mode == ModeAggregated {
		if cfg.Scheme == nil || cfg.GroupKey == nil || cfg.Quorum < 1 {
			return nil, fmt.Errorf("dataplane: switch %q: threshold mode requires scheme, group key and quorum", cfg.ID)
		}
	}
	s := &Switch{
		cfg:            cfg,
		table:          openflow.NewFlowTable(),
		eventSeq:       uint64(cfg.BootEpoch) << 32,
		pendingEvents:  make(map[matchKey]openflow.MsgID),
		pending:        make(map[string]*pendingUpdate),
		pendingBatches: make(map[string]*pendingBatch),
		applied:        make(map[string]bool),
	}
	if cfg.Scheme != nil {
		s.verifyCache = bls.NewVerifyCache(bls.DefaultVerifyCacheSize)
	}
	if err := s.initMetadata(); err != nil {
		return nil, err
	}
	cfg.Net.Register(fabric.NodeID(cfg.ID), s)
	return s, nil
}

// ID returns the switch's node id.
func (s *Switch) ID() string { return s.cfg.ID }

// Table exposes the flow table (read-mostly; the driver inspects it).
func (s *Switch) Table() *openflow.FlowTable { return s.table }

// SetControllers replaces the control-plane membership view (called on
// membership changes).
func (s *Switch) SetControllers(members []pki.Identity) {
	s.cfg.Controllers = append([]pki.Identity(nil), members...)
}

// SetGroupKey updates the threshold verification parameters (quorum
// changes on membership change; the public key itself never does).
func (s *Switch) SetGroupKey(gk *bls.GroupKey, quorum int) {
	s.cfg.GroupKey = gk
	s.cfg.Quorum = quorum
}

// SetVerifyBypass toggles the canary mutation: with bypass on, the switch
// applies threshold and aggregated updates without checking signatures —
// the exact vulnerability Cicero exists to prevent. Chaos campaigns enable
// it to prove the no-forged-rule invariant has teeth.
func (s *Switch) SetVerifyBypass(on bool) { s.verifyBypass = on }

// Lookup consults the flow table.
func (s *Switch) Lookup(src, dst string) (openflow.Rule, bool) {
	return s.table.Lookup(src, dst)
}

// Subscribe registers fn to run when a FlowAdd rule covering (src, dst)
// is applied. If such a rule already exists, fn runs immediately.
func (s *Switch) Subscribe(src, dst string, fn func(at fabric.Time)) {
	if _, ok := s.table.Lookup(src, dst); ok {
		fn(s.cfg.Net.Now())
		return
	}
	s.waiters = append(s.waiters, waiter{src: src, dst: dst, fn: fn})
}

// PacketArrival models a data-plane packet reaching this switch (Fig. 6a):
// on a table hit it returns the matched rule; on a miss it generates and
// emits a signed table-miss event (deduplicated per flow endpoints) and
// returns ok=false.
func (s *Switch) PacketArrival(src, dst string) (openflow.Rule, bool) {
	if rule, ok := s.table.Lookup(src, dst); ok {
		if rule.Action.Type == openflow.ActionOutput {
			return rule, true
		}
		return rule, true // drop rules are also "handled"
	}
	key := matchKey{src, dst}
	if _, outstanding := s.pendingEvents[key]; outstanding {
		return openflow.Rule{}, false
	}
	s.eventSeq++
	ev := protocol.Event{
		ID:   openflow.MsgID{Origin: s.cfg.ID, Seq: s.eventSeq},
		Kind: protocol.EventFlowRequest,
		Src:  src,
		Dst:  dst,
	}
	s.pendingEvents[key] = ev.ID
	s.EmitEvent(ev)
	return openflow.Rule{}, false
}

// EmitEvent signs and sends an event to the control plane: to the
// aggregator when one is assigned, otherwise to every controller.
func (s *Switch) EmitEvent(ev protocol.Event) {
	s.EventsGenerated++
	s.cfg.Net.Charge(fabric.NodeID(s.cfg.ID), s.cfg.Cost.Ed25519Sign)
	payload := ev.Encode()
	var env pki.Envelope
	if s.cfg.CryptoReal {
		env = s.cfg.Keys.Seal(payload)
	} else {
		env = pki.Envelope{From: s.cfg.Keys.ID, Payload: payload}
	}
	msg := protocol.MsgEvent{Env: env}
	size := len(payload) + 96
	if s.aggregator != "" {
		s.cfg.Net.Send(fabric.NodeID(s.cfg.ID), fabric.NodeID(s.aggregator), msg, size)
		return
	}
	for _, ctl := range s.cfg.Controllers {
		s.cfg.Net.Send(fabric.NodeID(s.cfg.ID), fabric.NodeID(ctl), msg, size)
	}
}

// HandleMessage implements fabric.Handler (Fig. 6b).
func (s *Switch) HandleMessage(from fabric.NodeID, msg fabric.Message) {
	switch m := msg.(type) {
	case protocol.MsgUpdate:
		s.cfg.Net.Charge(fabric.NodeID(s.cfg.ID), s.cfg.Cost.MsgProcess)
		s.handleUpdate(m)
	case protocol.MsgAggUpdate:
		s.cfg.Net.Charge(fabric.NodeID(s.cfg.ID), s.cfg.Cost.MsgProcess)
		s.handleAggUpdate(m)
	case protocol.MsgBatchUpdate:
		s.cfg.Net.Charge(fabric.NodeID(s.cfg.ID), s.cfg.Cost.MsgProcess)
		s.handleBatchUpdate(m)
	case protocol.MsgConfig:
		s.cfg.Net.Charge(fabric.NodeID(s.cfg.ID), s.cfg.Cost.MsgProcess)
		s.handleConfig(m)
	case protocol.MsgMeta:
		s.handleMeta(m)
	case protocol.MsgMetaSet:
		s.handleMetaSet(m)
	case openflow.BundleOpen:
		s.handleBundleOpen(m)
	case openflow.BundleAdd:
		s.handleBundleAdd(m)
	case openflow.BundleCommit:
		s.handleBundleCommit(from, m)
	case openflow.BarrierRequest:
		s.handleBarrier(from, m)
	case openflow.PacketOut:
		// A bare PACKET_OUT reaching the data plane is exactly the attack
		// of §2.2; Cicero switches only honor threshold-authenticated
		// messages, so it is dropped (and counted).
		s.UpdatesRejected++
	}
}

// updateKey builds the pending-map key binding update id and phase.
func updateKey(id openflow.MsgID, phase uint64) string {
	return fmt.Sprintf("%s|%d", id, phase)
}

// handleUpdate processes a per-controller signed update.
func (s *Switch) handleUpdate(m protocol.MsgUpdate) {
	key := updateKey(m.UpdateID, m.Phase)
	if verdict, decided := s.applied[key]; decided {
		// Re-acknowledge recovery retransmissions (a controller that lost
		// the ack in a crash is stuck without it); ordinary late quorum
		// shares stay silent so they do not amplify into ack storms.
		if m.Resend {
			s.sendAck(m.UpdateID, verdict)
		}
		return
	}
	switch s.cfg.Mode {
	case ModeUnsigned:
		// Baselines: first copy wins.
		s.apply(m.UpdateID, m.Phase, m.Mods, true)
	case ModeThreshold:
		pu, ok := s.pending[key]
		if !ok {
			pu = &pendingUpdate{mods: m.Mods, phase: m.Phase, shares: make(map[uint32][]byte)}
			s.pending[key] = pu
		}
		if m.ShareIndex == 0 {
			return // malformed share
		}
		pu.shares[m.ShareIndex] = m.Share
		if len(pu.shares) < s.cfg.Quorum {
			return
		}
		// Quorum reached: aggregate and verify (Fig. 6b). A failed
		// verification (Byzantine shares in the mix) keeps the update
		// pending: later honest shares can still complete it.
		s.cfg.Net.Charge(fabric.NodeID(s.cfg.ID),
			time.Duration(s.cfg.Quorum)*s.cfg.Cost.BLSAggregatePerShare+s.cfg.Cost.BLSVerifyAggregate)
		if s.cfg.CryptoReal && !s.verifyBypass && !s.verifyShares(m.UpdateID, pu) {
			s.UpdatesRejected++
			return
		}
		delete(s.pending, key)
		s.apply(m.UpdateID, m.Phase, pu.mods, true)
	case ModeAggregated:
		// Per-share updates are not accepted in aggregated mode; the
		// aggregator must combine them first.
		s.UpdatesRejected++
	}
}

// verifyShares combines the collected shares and verifies the aggregate
// against the control plane's threshold public key.
func (s *Switch) verifyShares(id openflow.MsgID, pu *pendingUpdate) bool {
	canonical := openflow.CanonicalUpdateBytes(id, pu.phase, pu.mods)
	shares := make([]bls.SignatureShare, 0, len(pu.shares))
	for idx, raw := range pu.shares {
		pt, err := s.cfg.Scheme.Params.ParsePoint(raw)
		if err != nil {
			continue
		}
		shares = append(shares, bls.SignatureShare{Index: idx, Point: pt})
	}
	_, err := s.cfg.Scheme.CombineVerifiedCached(s.verifyCache, s.cfg.GroupKey, canonical, shares)
	return err == nil
}

// handleAggUpdate verifies a pre-aggregated signature and applies.
func (s *Switch) handleAggUpdate(m protocol.MsgAggUpdate) {
	key := updateKey(m.UpdateID, m.Phase)
	if verdict, decided := s.applied[key]; decided {
		if m.Resend {
			s.sendAck(m.UpdateID, verdict)
		}
		return
	}
	if s.cfg.Mode == ModeUnsigned {
		s.apply(m.UpdateID, m.Phase, m.Mods, true)
		return
	}
	s.cfg.Net.Charge(fabric.NodeID(s.cfg.ID), s.cfg.Cost.BLSVerifyAggregate)
	valid := true
	if s.cfg.CryptoReal && !s.verifyBypass {
		canonical := openflow.CanonicalUpdateBytes(m.UpdateID, m.Phase, m.Mods)
		pt, err := s.cfg.Scheme.Params.ParsePoint(m.Signature)
		valid = err == nil && s.cfg.Scheme.VerifyCached(s.verifyCache, s.cfg.GroupKey.PK, canonical, bls.Signature{Point: pt})
	}
	s.apply(m.UpdateID, m.Phase, m.Mods, valid)
}

// handleConfig installs a control-plane configuration (membership,
// quorum, aggregator) after verifying its threshold signature against the
// group public key, which membership changes never alter.
func (s *Switch) handleConfig(m protocol.MsgConfig) {
	if s.configPhase != 0 && m.Phase <= s.configPhase {
		return // stale
	}
	if s.cfg.Mode != ModeUnsigned {
		s.cfg.Net.Charge(fabric.NodeID(s.cfg.ID), s.cfg.Cost.BLSVerifyAggregate)
		if s.cfg.CryptoReal && s.cfg.Scheme != nil {
			canonical := protocol.ConfigBytes(m.Phase, m.Quorum, m.Members, m.Aggregator)
			pt, err := s.cfg.Scheme.Params.ParsePoint(m.Signature)
			if err != nil || !s.cfg.Scheme.VerifyCached(s.verifyCache, s.cfg.GroupKey.PK, canonical, bls.Signature{Point: pt}) {
				s.UpdatesRejected++
				return
			}
		}
	}
	if !s.metaAllowsConfig(m) {
		s.MetaConfigRejects++
		s.UpdatesRejected++
		return
	}
	s.configPhase = m.Phase
	s.cfg.Controllers = append([]pki.Identity(nil), m.Members...)
	// Batch quorum pools from earlier phases can never complete now —
	// controllers re-sign fresh roots in the new phase and retransmit
	// cross-phase updates through the legacy per-update path.
	s.dropStaleBatches(m.Phase)
	if m.Quorum > 0 {
		s.cfg.Quorum = m.Quorum
	}
	if gk, ok := m.GroupKey.(*bls.GroupKey); ok && gk != nil && s.cfg.GroupKey != nil {
		// Only accept key material that preserves the provisioned public
		// key (the membership protocol's core invariant).
		if gk.PK.Point.Equal(s.cfg.GroupKey.PK.Point) {
			s.cfg.GroupKey = gk
		}
	}
	s.aggregator = m.Aggregator
	if s.cfg.Mode != ModeUnsigned {
		if m.Aggregator != "" {
			s.cfg.Mode = ModeAggregated
		} else {
			s.cfg.Mode = ModeThreshold
		}
	}
	// The control plane that should serve outstanding table-miss events
	// may have changed (e.g., a crashed aggregator was replaced), so nudge
	// them again.
	s.ResendPendingEvents()
}

// ResendPendingEvents re-emits every outstanding table-miss event under a
// fresh id. Controllers deduplicate by event id, so a fresh id is the only
// way to push a request whose first emission died with a crashed
// controller or a dropped message. The chaos drain phase calls this to
// re-drive stalled flows; handleConfig calls it after membership changes.
func (s *Switch) ResendPendingEvents() {
	pending := s.pendingEvents
	s.pendingEvents = make(map[matchKey]openflow.MsgID, len(pending))
	keys := make([]matchKey, 0, len(pending))
	for key := range pending {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].dst < keys[j].dst
	})
	for _, key := range keys {
		s.eventSeq++
		ev := protocol.Event{
			ID:   openflow.MsgID{Origin: s.cfg.ID, Seq: s.eventSeq},
			Kind: protocol.EventFlowRequest,
			Src:  key.src,
			Dst:  key.dst,
		}
		s.pendingEvents[key] = ev.ID
		s.EmitEvent(ev)
	}
}

// RequestResync asks every known controller to retransmit the updates
// previously dispatched to this switch. A restarted switch calls it once
// after Bootstrap: its flow table rebuilds through the normal quorum-
// authenticated update path, so resynchronization is exactly as hard to
// forge as a regular update.
func (s *Switch) RequestResync() {
	msg := protocol.MsgResyncRequest{Switch: s.cfg.ID}
	for _, ctl := range s.cfg.Controllers {
		s.cfg.Net.Send(fabric.NodeID(s.cfg.ID), fabric.NodeID(ctl), msg, 64)
	}
}

// Aggregator returns the currently assigned aggregator ("" when events are
// multicast to the whole control plane).
func (s *Switch) Aggregator() pki.Identity { return s.aggregator }

// Bootstrap installs the initial control-plane configuration out-of-band,
// modelling initial provisioning (which also installs the threshold public
// key). Later configuration changes arrive as threshold-signed MsgConfig.
func (s *Switch) Bootstrap(members []pki.Identity, aggregator pki.Identity, quorum int) {
	s.cfg.Controllers = append([]pki.Identity(nil), members...)
	s.aggregator = aggregator
	if quorum > 0 {
		s.cfg.Quorum = quorum
	}
}

// apply installs (or rejects) an update, acknowledges it, and wakes any
// flow waiters whose rules just arrived.
func (s *Switch) apply(id openflow.MsgID, phase uint64, mods []openflow.FlowMod, valid bool) {
	key := updateKey(id, phase)
	s.applied[key] = valid
	if !valid {
		s.UpdatesRejected++
		if s.cfg.ApplyHook != nil {
			s.cfg.ApplyHook(s.cfg.ID, id, phase, mods, false)
		}
		s.sendAck(id, false)
		return
	}
	s.cfg.Net.Charge(fabric.NodeID(s.cfg.ID), s.cfg.Cost.SwitchApply)
	s.UpdatesApplied++
	for _, mod := range mods {
		s.table.Apply(mod)
		if mod.Op == openflow.FlowAdd {
			s.wakeWaiters(mod.Rule)
		}
	}
	if s.cfg.ApplyHook != nil {
		s.cfg.ApplyHook(s.cfg.ID, id, phase, mods, true)
	}
	s.sendAck(id, true)
}

// wakeWaiters fires subscriptions covered by a newly installed rule and
// clears the corresponding pending-event dedup entries.
func (s *Switch) wakeWaiters(rule openflow.Rule) {
	now := s.cfg.Net.Now()
	kept := s.waiters[:0]
	for _, w := range s.waiters {
		if rule.Match.Covers(w.src, w.dst) && rule.Action.Type == openflow.ActionOutput {
			w.fn(now)
			continue
		}
		kept = append(kept, w)
	}
	s.waiters = kept
	for key := range s.pendingEvents {
		if rule.Match.Covers(key.src, key.dst) {
			delete(s.pendingEvents, key)
		}
	}
}

// sendAck signs and sends an acknowledgement to every controller.
func (s *Switch) sendAck(id openflow.MsgID, applied bool) {
	ack := protocol.Ack{UpdateID: id, Switch: s.cfg.ID, Applied: applied}
	s.cfg.Net.Charge(fabric.NodeID(s.cfg.ID), s.cfg.Cost.Ed25519Sign)
	payload := ack.Encode()
	var env pki.Envelope
	if s.cfg.CryptoReal {
		env = s.cfg.Keys.Seal(payload)
	} else {
		env = pki.Envelope{From: s.cfg.Keys.ID, Payload: payload}
	}
	msg := protocol.MsgAck{Env: env}
	for _, ctl := range s.cfg.Controllers {
		s.cfg.Net.Send(fabric.NodeID(s.cfg.ID), fabric.NodeID(ctl), msg, len(payload)+96)
	}
}
