package dataplane

import (
	"cicero/internal/fabric"
	"cicero/internal/openflow"
)

// OpenFlow bundle and barrier support (§2.2 of the paper): bundles give
// transactional application of multiple mods on a SINGLE switch — they
// cannot order updates across switches, which is exactly the gap Cicero's
// update scheduler closes. They are provided for completeness and for the
// baselines; Cicero's own updates arrive through the threshold-signed
// path.

// bundleState accumulates mods for an open bundle.
type bundleState struct {
	mods []openflow.FlowMod
}

// handleBundleOpen starts collecting mods for a bundle id.
func (s *Switch) handleBundleOpen(m openflow.BundleOpen) {
	if s.bundles == nil {
		s.bundles = make(map[string]*bundleState)
	}
	s.bundles[m.Bundle.String()] = &bundleState{}
}

// handleBundleAdd appends a mod to an open bundle; mods for unknown
// bundles are ignored (OpenFlow returns an error; the simulation drops).
func (s *Switch) handleBundleAdd(m openflow.BundleAdd) {
	if b, ok := s.bundles[m.Bundle.String()]; ok {
		b.mods = append(b.mods, m.Mod)
	}
}

// handleBundleCommit atomically applies an open bundle: either every mod
// is applied (all at the same instant of virtual time) or none.
func (s *Switch) handleBundleCommit(from fabric.NodeID, m openflow.BundleCommit) {
	b, ok := s.bundles[m.Bundle.String()]
	if !ok {
		return
	}
	delete(s.bundles, m.Bundle.String())
	s.cfg.Net.Charge(fabric.NodeID(s.cfg.ID), s.cfg.Cost.SwitchApply)
	for _, mod := range b.mods {
		s.table.Apply(mod)
		if mod.Op == openflow.FlowAdd {
			s.wakeWaiters(mod.Rule)
		}
	}
	s.UpdatesApplied++
	// Reply with a barrier-style confirmation to the committer.
	s.cfg.Net.Send(fabric.NodeID(s.cfg.ID), from, openflow.BarrierReply{ID: m.Bundle}, 64)
}

// handleBarrier answers a barrier request once all preceding messages
// have been processed — in the discrete-event model, message handling is
// serial per node, so the reply is immediate after queued work.
func (s *Switch) handleBarrier(from fabric.NodeID, m openflow.BarrierRequest) {
	s.cfg.Net.Send(fabric.NodeID(s.cfg.ID), from, openflow.BarrierReply{ID: m.ID}, 64)
}
