// Switch-side metadata plane: every switch keeps a trusted-metadata
// store (internal/metarepo) seeded from the provisioning root of trust
// and fed by controller pushes. The store verifies role signatures,
// version monotonicity, expiry, and the snapshot/timestamp bindings
// before anything is adopted, so a compromised controller — or the
// distribution path itself — cannot roll the switch back to an old
// policy, freeze it on a stale one, or splice documents from different
// sets. Verified policy metadata also gates configuration adoption:
// once the switch holds a targets document for a membership phase, a
// config push for that phase must agree with it.
package dataplane

import (
	"fmt"

	"cicero/internal/fabric"
	"cicero/internal/metarepo"
	"cicero/internal/protocol"
)

// MetadataConfig enables the trusted-metadata store on a switch.
type MetadataConfig struct {
	// Genesis is the threshold-signed version-1 root (root of trust).
	Genesis protocol.MetaEnvelope
	// InitialSet optionally seeds the store with the provisioning-time
	// signed set.
	InitialSet []protocol.MetaEnvelope
}

// initMetadata builds and seeds the switch's trusted store (called from
// New; requires the threshold scheme and group key).
func (s *Switch) initMetadata() error {
	mc := s.cfg.Metadata
	if mc == nil || s.cfg.Scheme == nil || s.cfg.GroupKey == nil {
		return nil
	}
	store := metarepo.NewStore(s.cfg.Scheme, s.cfg.GroupKey.PK,
		func() int64 { return int64(s.cfg.Net.Now()) })
	if err := store.Apply(mc.Genesis); err != nil {
		return fmt.Errorf("dataplane: switch %q: metadata genesis: %w", s.cfg.ID, err)
	}
	if len(mc.InitialSet) > 0 {
		if err := store.ApplySet(mc.InitialSet); err != nil {
			return fmt.Errorf("dataplane: switch %q: metadata initial set: %w", s.cfg.ID, err)
		}
	}
	s.meta = store
	return nil
}

// MetaStore exposes the switch's trusted-metadata store (nil when the
// metadata plane is disabled).
func (s *Switch) MetaStore() *metarepo.Store { return s.meta }

// handleMeta adopts one pushed metadata envelope through the store.
// Unsigned root proposals are controller-internal traffic and ignored.
func (s *Switch) handleMeta(m protocol.MsgMeta) {
	if s.meta == nil {
		return
	}
	if m.Env.Role == protocol.MetaRoleRoot && len(m.Env.Sigs) == 0 {
		return
	}
	s.cfg.Net.Charge(fabric.NodeID(s.cfg.ID), s.cfg.Cost.Ed25519Verify+s.cfg.Cost.MsgProcess)
	_ = s.meta.Apply(m.Env)
}

// handleMetaSet adopts a pushed metadata set through the store.
func (s *Switch) handleMetaSet(m protocol.MsgMetaSet) {
	if s.meta == nil {
		return
	}
	for range m.Envs {
		s.cfg.Net.Charge(fabric.NodeID(s.cfg.ID), s.cfg.Cost.Ed25519Verify+s.cfg.Cost.MsgProcess)
	}
	_ = s.meta.ApplySet(m.Envs)
}

// RequestMeta asks every known controller for its current verified
// metadata set. A restarted switch calls it alongside RequestResync;
// the store's monotonic-version checks make stale answers harmless.
func (s *Switch) RequestMeta() {
	if s.meta == nil {
		return
	}
	req := protocol.MsgMetaRequest{From: s.cfg.ID}
	for _, ctl := range s.cfg.Controllers {
		s.cfg.Net.Send(fabric.NodeID(s.cfg.ID), fabric.NodeID(ctl), req, 64)
	}
}

// metaAllowsConfig gates configuration adoption on the verified policy
// metadata: if the store holds a targets document at or past the
// config's membership phase, the config's member list must match the
// signed one. A lagging store (metadata phase behind the config) does
// not block — metadata distribution is asynchronous — but it can never
// be used to smuggle in a membership the signed policy contradicts.
func (s *Switch) metaAllowsConfig(m protocol.MsgConfig) bool {
	if s.meta == nil {
		return true
	}
	tg := s.meta.PolicyTargets()
	if tg == nil || tg.Policy.Phase < m.Phase || len(tg.Policy.Members) == 0 {
		return true
	}
	// The signed policy at this phase (or later) names the membership;
	// find the entry for exactly this phase when available, else trust
	// the newer one only for a mismatch in the same phase.
	if tg.Policy.Phase != m.Phase {
		return true
	}
	if len(tg.Policy.Members) != len(m.Members) {
		return false
	}
	for i, id := range m.Members {
		if tg.Policy.Members[i] != string(id) {
			return false
		}
	}
	return true
}
