package dataplane

import (
	"crypto/rand"
	"fmt"
	"testing"

	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/tcrypto/merkle"
	"cicero/internal/tcrypto/pki"
)

// batchHarness extends the switch harness with controller Ed25519 keys so
// batch release attestations can be signed (and forged) in tests.
type batchHarness struct {
	*harness
	ctlKeys map[pki.Identity]*pki.KeyPair
}

func newBatchHarness(t *testing.T, mode Mode, cryptoReal bool) *batchHarness {
	t.Helper()
	h := newHarness(t, mode, cryptoReal)
	bh := &batchHarness{harness: h, ctlKeys: make(map[pki.Identity]*pki.KeyPair)}
	dir := h.sw.cfg.Directory
	for _, id := range controllerIDs {
		kp, err := pki.NewKeyPair(rand.Reader, id)
		if err != nil {
			t.Fatal(err)
		}
		dir.MustRegister(kp)
		bh.ctlKeys[id] = kp
	}
	return bh
}

// twoUpdateBatch builds a two-leaf batch over updates for dst "bA"/"bB".
type testBatch struct {
	ids   [2]openflow.MsgID
	mods  [2]openflow.FlowMod
	tree  *merkle.Tree
	root  []byte
	proof [2][][]byte
}

func makeTestBatch() *testBatch {
	tb := &testBatch{}
	for i, dst := range []string{"bA", "bB"} {
		tb.ids[i] = openflow.MsgID{Origin: "batch", Seq: uint64(i + 1)}
		tb.mods[i] = mod(dst)
	}
	leaves := [][]byte{
		openflow.CanonicalUpdateBytes(tb.ids[0], 0, []openflow.FlowMod{tb.mods[0]}),
		openflow.CanonicalUpdateBytes(tb.ids[1], 0, []openflow.FlowMod{tb.mods[1]}),
	}
	tb.tree = merkle.NewTree(leaves)
	root := tb.tree.Root()
	tb.root = root[:]
	tb.proof[0] = tb.tree.Proof(0)
	tb.proof[1] = tb.tree.Proof(1)
	return tb
}

// batchMsg builds one honest MsgBatchUpdate for batch member `leaf`, sent
// and release-signed by controller `ctl` with its genuine root share.
func (bh *batchHarness) batchMsg(tb *testBatch, leaf, ctl int) protocol.MsgBatchUpdate {
	id := controllerIDs[ctl]
	share := bh.scheme.SignShare(bh.shares[ctl], protocol.BatchBytes(0, tb.root))
	return protocol.MsgBatchUpdate{
		UpdateID:   tb.ids[leaf],
		Mods:       []openflow.FlowMod{tb.mods[leaf]},
		Phase:      0,
		From:       id,
		BatchRoot:  tb.root,
		LeafIndex:  leaf,
		LeafCount:  2,
		Proof:      tb.proof[leaf],
		ShareIndex: bh.shares[ctl].Index,
		Share:      bh.scheme.Params.PointBytes(share.Point),
		ReleaseSig: bh.ctlKeys[id].Sign(protocol.BatchReleaseBytes(tb.ids[leaf], 0, tb.root)),
	}
}

// TestBatchReleaseQuorumCountsIdentities exercises the honest path: two
// distinct controllers attest a member's release, the root verifies once,
// and both members apply as their own quorums complete.
func TestBatchReleaseQuorumCountsIdentities(t *testing.T) {
	bh := newBatchHarness(t, ModeThreshold, true)
	tb := makeTestBatch()
	bh.sw.HandleMessage("c1", bh.batchMsg(tb, 0, 0))
	if bh.sw.UpdatesApplied != 0 {
		t.Fatal("applied below release quorum")
	}
	bh.sw.HandleMessage("c2", bh.batchMsg(tb, 0, 1))
	if bh.sw.UpdatesApplied != 1 {
		t.Fatalf("applied %d after quorum, want 1", bh.sw.UpdatesApplied)
	}
	// Second member rides the verified root but still needs its own quorum.
	bh.sw.HandleMessage("c3", bh.batchMsg(tb, 1, 2))
	if bh.sw.UpdatesApplied != 1 {
		t.Fatal("second member applied with a single release attestation")
	}
	bh.sw.HandleMessage("c4", bh.batchMsg(tb, 1, 3))
	if bh.sw.UpdatesApplied != 2 {
		t.Fatalf("applied %d after both quorums, want 2", bh.sw.UpdatesApplied)
	}
}

// TestBatchEarlyReleaseAttackRejected is the regression test for the
// unauthenticated release quorum: once a batch root is quorum-verified via
// honest traffic for one member, a single Byzantine controller — which
// holds the delivered batch and can compute every member's valid inclusion
// proof — replays another member under fabricated share indexes and forged
// identities. None of that may count as more than one release attestation.
func TestBatchEarlyReleaseAttackRejected(t *testing.T) {
	bh := newBatchHarness(t, ModeThreshold, true)
	tb := makeTestBatch()

	// Honest quorum verifies the root through member 0.
	bh.sw.HandleMessage("c1", bh.batchMsg(tb, 0, 0))
	bh.sw.HandleMessage("c2", bh.batchMsg(tb, 0, 1))
	if bh.sw.UpdatesApplied != 1 {
		t.Fatalf("honest member did not apply (applied=%d)", bh.sw.UpdatesApplied)
	}

	// c1 turns Byzantine and floods member 1 with fabricated share
	// indexes: every copy authenticates as c1 and counts once.
	for idx := uint32(1); idx <= 4; idx++ {
		m := bh.batchMsg(tb, 1, 0)
		m.ShareIndex = idx
		bh.sw.HandleMessage("c1", m)
	}
	if bh.sw.UpdatesApplied != 1 {
		t.Fatalf("early release: fabricated share indexes reached quorum (applied=%d)", bh.sw.UpdatesApplied)
	}

	// Forged identities fail the directory check: c1 cannot sign for c3,
	// and unknown identities are not members.
	m := bh.batchMsg(tb, 1, 0)
	m.From = controllerIDs[2]
	bh.sw.HandleMessage("c1", m)
	m = bh.batchMsg(tb, 1, 0)
	m.From = "intruder"
	bh.sw.HandleMessage("c1", m)
	if bh.sw.UpdatesApplied != 1 {
		t.Fatalf("early release: forged identity accepted (applied=%d)", bh.sw.UpdatesApplied)
	}

	// A genuine second controller completes the quorum.
	bh.sw.HandleMessage("c3", bh.batchMsg(tb, 1, 2))
	if bh.sw.UpdatesApplied != 2 {
		t.Fatalf("honest completion failed (applied=%d)", bh.sw.UpdatesApplied)
	}
}

// TestBatchSharePoisoningHealedByRetransmission covers the share pool's
// overwrite semantics: a garbage share claiming an honest controller's
// index must not permanently block the batch — the index owner's real
// share overwrites it on (re)transmission, exactly like the legacy path.
func TestBatchSharePoisoningHealedByRetransmission(t *testing.T) {
	bh := newBatchHarness(t, ModeThreshold, true)
	tb := makeTestBatch()

	// c1 poisons index 2 (c2's) with garbage before c2's share arrives.
	poison := bh.batchMsg(tb, 0, 0)
	poison.ShareIndex = 2
	poison.Share = []byte("garbage-share")
	bh.sw.HandleMessage("c1", poison)

	// c2's real message lands on the poisoned index and must overwrite;
	// combined with c1's (never-sent) share the pool is still short, so
	// c3 completes the quorum.
	bh.sw.HandleMessage("c2", bh.batchMsg(tb, 0, 1))
	bh.sw.HandleMessage("c3", bh.batchMsg(tb, 0, 2))
	if bh.sw.UpdatesApplied != 1 {
		t.Fatalf("poisoned share pool stalled the batch (applied=%d, rejected=%d)",
			bh.sw.UpdatesApplied, bh.sw.UpdatesRejected)
	}
}

// TestBatchAggregatedModeRejected mirrors the legacy mode gate: per-share
// batch traffic is not accepted in aggregated mode.
func TestBatchAggregatedModeRejected(t *testing.T) {
	bh := newBatchHarness(t, ModeAggregated, false)
	tb := makeTestBatch()
	bh.sw.HandleMessage("c1", bh.batchMsg(tb, 0, 0))
	if bh.sw.UpdatesRejected != 1 || bh.sw.UpdatesApplied != 0 {
		t.Fatalf("batch share in aggregated mode: applied=%d rejected=%d",
			bh.sw.UpdatesApplied, bh.sw.UpdatesRejected)
	}
}

// TestPendingBatchPoolBounded floods the switch with valid-looking
// single-leaf batches under distinct roots (keyless hashing lets any
// sender mint them); the pool must stay capped instead of growing for the
// switch's lifetime.
func TestPendingBatchPoolBounded(t *testing.T) {
	bh := newBatchHarness(t, ModeThreshold, false)
	for i := 0; i < maxPendingBatches+64; i++ {
		id := openflow.MsgID{Origin: "flood", Seq: uint64(i + 1)}
		m := mod(fmt.Sprintf("f%d", i))
		leaf := openflow.CanonicalUpdateBytes(id, 0, []openflow.FlowMod{m})
		root := merkle.LeafHash(leaf)
		bh.sw.HandleMessage("c1", protocol.MsgBatchUpdate{
			UpdateID:   id,
			Mods:       []openflow.FlowMod{m},
			Phase:      0,
			From:       controllerIDs[0],
			BatchRoot:  root[:],
			LeafIndex:  0,
			LeafCount:  1,
			ShareIndex: 1,
			Share:      []byte{1},
		})
	}
	if got := len(bh.sw.pendingBatches); got > maxPendingBatches {
		t.Fatalf("pending batch pool grew to %d, cap is %d", got, maxPendingBatches)
	}
}

// TestBatchStalePhaseDropped checks the config-push cleanup: pool entries
// from earlier membership phases are discarded when a new phase installs.
func TestBatchStalePhaseDropped(t *testing.T) {
	bh := newBatchHarness(t, ModeThreshold, false)
	tb := makeTestBatch()
	bh.sw.HandleMessage("c1", bh.batchMsg(tb, 0, 0))
	if len(bh.sw.pendingBatches) != 1 {
		t.Fatalf("pool has %d entries, want 1", len(bh.sw.pendingBatches))
	}
	bh.sw.dropStaleBatches(1)
	if len(bh.sw.pendingBatches) != 0 {
		t.Fatalf("stale-phase entries survived: %d", len(bh.sw.pendingBatches))
	}
}
