package dataplane

import (
	"crypto/rand"
	"testing"
	"time"

	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/simnet"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/pairing"
	"cicero/internal/tcrypto/pki"
)

// harness wires one switch to a simulator with recording controllers.
type harness struct {
	sim      *simnet.Simulator
	net      *simnet.Network
	sw       *Switch
	scheme   *bls.Scheme
	gk       *bls.GroupKey
	shares   []bls.KeyShare
	received map[pki.Identity][]simnet.Message
}

// controllerIDs are the stub control-plane members.
var controllerIDs = []pki.Identity{"c1", "c2", "c3", "c4"}

// newHarness builds a switch in the given mode (quorum 2 of 4).
func newHarness(t *testing.T, mode Mode, cryptoReal bool) *harness {
	t.Helper()
	h := &harness{
		sim:      simnet.NewSimulator(1),
		received: make(map[pki.Identity][]simnet.Message),
	}
	h.net = simnet.NewNetwork(h.sim, 100*time.Microsecond)
	dir := pki.NewDirectory()
	keys, err := pki.NewKeyPair(rand.Reader, "sw1")
	if err != nil {
		t.Fatal(err)
	}
	dir.MustRegister(keys)
	h.scheme = bls.NewScheme(pairing.Fast254())
	gk, shares, err := h.scheme.Deal(rand.Reader, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.gk, h.shares = gk, shares
	for _, id := range controllerIDs {
		id := id
		h.net.Register(simnet.NodeID(id), simnet.HandlerFunc(func(from simnet.NodeID, msg simnet.Message) {
			h.received[id] = append(h.received[id], msg)
		}))
	}
	sw, err := New(Config{
		ID:          "sw1",
		Net:         h.net,
		Cost:        protocol.Calibrated(),
		Mode:        mode,
		Keys:        keys,
		Directory:   dir,
		Scheme:      h.scheme,
		GroupKey:    gk,
		Quorum:      2,
		Controllers: controllerIDs,
		CryptoReal:  cryptoReal,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.sw = sw
	return h
}

// mod returns a routing rule for dst.
func mod(dst string) openflow.FlowMod {
	return openflow.FlowMod{Op: openflow.FlowAdd, Switch: "sw1", Rule: openflow.Rule{
		Priority: 10,
		Match:    openflow.Match{Src: openflow.Wildcard, Dst: dst},
		Action:   openflow.Action{Type: openflow.ActionOutput, NextHop: "next"},
	}}
}

// shareMsg builds a genuine share message for the harness key.
func (h *harness) shareMsg(t *testing.T, shareIdx int, id openflow.MsgID, m openflow.FlowMod) protocol.MsgUpdate {
	t.Helper()
	canonical := openflow.CanonicalUpdateBytes(id, 0, []openflow.FlowMod{m})
	s := h.scheme.SignShare(h.shares[shareIdx], canonical)
	return protocol.MsgUpdate{
		UpdateID:   id,
		Mods:       []openflow.FlowMod{m},
		From:       controllerIDs[shareIdx],
		ShareIndex: h.shares[shareIdx].Index,
		Share:      h.scheme.Params.PointBytes(s.Point),
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	sim := simnet.NewSimulator(1)
	net := simnet.NewNetwork(sim, time.Millisecond)
	keys, _ := pki.NewKeyPair(rand.Reader, "x")
	dir := pki.NewDirectory()
	if _, err := New(Config{ID: "x", Net: net, Keys: keys, Directory: dir, Mode: ModeThreshold}); err == nil {
		t.Error("threshold mode without key material accepted")
	}
}

func TestUnsignedModeFirstCopyWins(t *testing.T) {
	h := newHarness(t, ModeUnsigned, false)
	id := openflow.MsgID{Origin: "e", Seq: 1}
	m := mod("h7")
	h.sw.HandleMessage("c1", protocol.MsgUpdate{UpdateID: id, Mods: []openflow.FlowMod{m}})
	h.sw.HandleMessage("c2", protocol.MsgUpdate{UpdateID: id, Mods: []openflow.FlowMod{m}})
	if h.sw.UpdatesApplied != 1 {
		t.Fatalf("applied %d, want 1 (dedup)", h.sw.UpdatesApplied)
	}
	if _, ok := h.sw.Lookup("x", "h7"); !ok {
		t.Fatal("rule not installed")
	}
}

func TestThresholdQuorumCountingFastCrypto(t *testing.T) {
	h := newHarness(t, ModeThreshold, false)
	id := openflow.MsgID{Origin: "e", Seq: 1}
	m := mod("h8")
	h.sw.HandleMessage("c1", protocol.MsgUpdate{UpdateID: id, Mods: []openflow.FlowMod{m}, ShareIndex: 1})
	if h.sw.UpdatesApplied != 0 {
		t.Fatal("applied below quorum")
	}
	// Duplicate share index does not advance the quorum.
	h.sw.HandleMessage("c1", protocol.MsgUpdate{UpdateID: id, Mods: []openflow.FlowMod{m}, ShareIndex: 1})
	if h.sw.UpdatesApplied != 0 {
		t.Fatal("duplicate share advanced the quorum")
	}
	h.sw.HandleMessage("c2", protocol.MsgUpdate{UpdateID: id, Mods: []openflow.FlowMod{m}, ShareIndex: 2})
	if h.sw.UpdatesApplied != 1 {
		t.Fatalf("applied %d after quorum, want 1", h.sw.UpdatesApplied)
	}
}

func TestThresholdRealCryptoAppliesAndAcks(t *testing.T) {
	h := newHarness(t, ModeThreshold, true)
	id := openflow.MsgID{Origin: "e", Seq: 1}
	m := mod("h9")
	h.sw.HandleMessage("c1", h.shareMsg(t, 0, id, m))
	h.sw.HandleMessage("c2", h.shareMsg(t, 1, id, m))
	if _, err := h.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if h.sw.UpdatesApplied != 1 {
		t.Fatalf("applied %d, want 1", h.sw.UpdatesApplied)
	}
	// Every controller received a signed ack.
	for _, id := range controllerIDs {
		found := false
		for _, msg := range h.received[id] {
			if _, ok := msg.(protocol.MsgAck); ok {
				found = true
			}
		}
		if !found {
			t.Fatalf("controller %s got no ack", id)
		}
	}
}

func TestThresholdZeroShareIndexIgnored(t *testing.T) {
	h := newHarness(t, ModeThreshold, false)
	id := openflow.MsgID{Origin: "e", Seq: 1}
	m := mod("hz")
	for i := 0; i < 4; i++ {
		h.sw.HandleMessage("c1", protocol.MsgUpdate{UpdateID: id, Mods: []openflow.FlowMod{m}, ShareIndex: 0})
	}
	if h.sw.UpdatesApplied != 0 {
		t.Fatal("malformed shares reached quorum")
	}
}

func TestAggregatedModeRejectsRawShares(t *testing.T) {
	h := newHarness(t, ModeAggregated, false)
	id := openflow.MsgID{Origin: "e", Seq: 1}
	m := mod("ha")
	h.sw.HandleMessage("c1", protocol.MsgUpdate{UpdateID: id, Mods: []openflow.FlowMod{m}, ShareIndex: 1})
	if h.sw.UpdatesRejected != 1 || h.sw.UpdatesApplied != 0 {
		t.Fatalf("raw share in aggregated mode: applied=%d rejected=%d",
			h.sw.UpdatesApplied, h.sw.UpdatesRejected)
	}
}

func TestAggregatedModeVerifiesSignature(t *testing.T) {
	h := newHarness(t, ModeAggregated, true)
	id := openflow.MsgID{Origin: "e", Seq: 2}
	m := mod("hb")
	canonical := openflow.CanonicalUpdateBytes(id, 0, []openflow.FlowMod{m})
	sig, err := h.scheme.Combine(h.gk, []bls.SignatureShare{
		h.scheme.SignShare(h.shares[0], canonical),
		h.scheme.SignShare(h.shares[1], canonical),
	})
	if err != nil {
		t.Fatal(err)
	}
	h.sw.HandleMessage("c1", protocol.MsgAggUpdate{
		UpdateID: id, Mods: []openflow.FlowMod{m},
		Signature: h.scheme.Params.PointBytes(sig.Point),
	})
	if h.sw.UpdatesApplied != 1 {
		t.Fatal("valid aggregate not applied")
	}
	// A forged aggregate is rejected.
	id2 := openflow.MsgID{Origin: "e", Seq: 3}
	h.sw.HandleMessage("c1", protocol.MsgAggUpdate{
		UpdateID: id2, Mods: []openflow.FlowMod{mod("hc")},
		Signature: h.scheme.Params.PointBytes(h.scheme.Params.G),
	})
	if h.sw.UpdatesApplied != 1 || h.sw.UpdatesRejected == 0 {
		t.Fatal("forged aggregate accepted")
	}
}

func TestPacketArrivalDedupsEvents(t *testing.T) {
	h := newHarness(t, ModeThreshold, false)
	if _, ok := h.sw.PacketArrival("a", "b"); ok {
		t.Fatal("empty table matched")
	}
	// Second miss for the same pair must not emit a second event.
	h.sw.PacketArrival("a", "b")
	if h.sw.EventsGenerated != 1 {
		t.Fatalf("generated %d events, want 1", h.sw.EventsGenerated)
	}
	if _, err := h.sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Every controller got exactly one event message.
	for _, id := range controllerIDs {
		events := 0
		for _, msg := range h.received[id] {
			if _, ok := msg.(protocol.MsgEvent); ok {
				events++
			}
		}
		if events != 1 {
			t.Fatalf("controller %s got %d events, want 1", id, events)
		}
	}
}

func TestPacketArrivalHitReturnsRule(t *testing.T) {
	h := newHarness(t, ModeUnsigned, false)
	h.sw.HandleMessage("c1", protocol.MsgUpdate{
		UpdateID: openflow.MsgID{Origin: "e", Seq: 1},
		Mods:     []openflow.FlowMod{mod("hd")},
	})
	rule, ok := h.sw.PacketArrival("x", "hd")
	if !ok || rule.Action.NextHop != "next" {
		t.Fatalf("hit = %v (%v)", rule, ok)
	}
	if h.sw.EventsGenerated != 0 {
		t.Fatal("hit generated an event")
	}
}

func TestSubscribeImmediateWhenRuleExists(t *testing.T) {
	h := newHarness(t, ModeUnsigned, false)
	h.sw.HandleMessage("c1", protocol.MsgUpdate{
		UpdateID: openflow.MsgID{Origin: "e", Seq: 1},
		Mods:     []openflow.FlowMod{mod("he")},
	})
	fired := false
	h.sw.Subscribe("x", "he", func(simnet.Time) { fired = true })
	if !fired {
		t.Fatal("subscription on existing rule did not fire immediately")
	}
}

func TestEventsToAggregatorOnly(t *testing.T) {
	h := newHarness(t, ModeAggregated, false)
	h.sw.Bootstrap(controllerIDs, "c1", 2)
	h.sw.PacketArrival("a", "b")
	if _, err := h.sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, id := range controllerIDs {
		events := 0
		for _, msg := range h.received[id] {
			if _, ok := msg.(protocol.MsgEvent); ok {
				events++
			}
		}
		want := 0
		if id == "c1" {
			want = 1
		}
		if events != want {
			t.Fatalf("controller %s got %d events, want %d", id, events, want)
		}
	}
}

func TestConfigUpdatesMembershipAndQuorum(t *testing.T) {
	h := newHarness(t, ModeThreshold, false)
	h.sw.HandleMessage("c1", protocol.MsgConfig{
		Phase:   1,
		Quorum:  3,
		Members: []pki.Identity{"c1", "c2", "c3", "c4", "c5"},
	})
	// Quorum is now 3: two shares must not apply.
	id := openflow.MsgID{Origin: "e", Seq: 1}
	m := mod("hf")
	h.sw.HandleMessage("c1", protocol.MsgUpdate{UpdateID: id, Phase: 1, Mods: []openflow.FlowMod{m}, ShareIndex: 1})
	h.sw.HandleMessage("c2", protocol.MsgUpdate{UpdateID: id, Phase: 1, Mods: []openflow.FlowMod{m}, ShareIndex: 2})
	if h.sw.UpdatesApplied != 0 {
		t.Fatal("applied below the new quorum")
	}
	h.sw.HandleMessage("c3", protocol.MsgUpdate{UpdateID: id, Phase: 1, Mods: []openflow.FlowMod{m}, ShareIndex: 3})
	if h.sw.UpdatesApplied != 1 {
		t.Fatal("not applied at the new quorum")
	}
	// Stale configs are ignored.
	h.sw.HandleMessage("c1", protocol.MsgConfig{Phase: 1, Quorum: 9})
	id2 := openflow.MsgID{Origin: "e", Seq: 2}
	m2 := mod("hg")
	for i := 1; i <= 3; i++ {
		h.sw.HandleMessage("c1", protocol.MsgUpdate{UpdateID: id2, Phase: 1, Mods: []openflow.FlowMod{m2}, ShareIndex: uint32(i)})
	}
	if h.sw.UpdatesApplied != 2 {
		t.Fatal("stale config changed the quorum")
	}
}

func TestPhaseSeparatesShareBuckets(t *testing.T) {
	h := newHarness(t, ModeThreshold, false)
	id := openflow.MsgID{Origin: "e", Seq: 1}
	m := mod("hh")
	h.sw.HandleMessage("c1", protocol.MsgUpdate{UpdateID: id, Phase: 0, Mods: []openflow.FlowMod{m}, ShareIndex: 1})
	h.sw.HandleMessage("c2", protocol.MsgUpdate{UpdateID: id, Phase: 1, Mods: []openflow.FlowMod{m}, ShareIndex: 2})
	if h.sw.UpdatesApplied != 0 {
		t.Fatal("shares from different phases combined")
	}
}
