package core

import (
	"bytes"
	"testing"
	"time"

	"cicero/internal/audit"
	"cicero/internal/controlplane"
	"cicero/internal/protocol"
	"cicero/internal/simnet"
	"cicero/internal/topology"
)

// Crash/restart recovery on the simulator: a restarted controller must
// rebuild its ledger from peer state transfer, and a restarted switch must
// rebuild its flow table through the resync path — both with no volatile
// state surviving the crash.

// eventRecords filters a ledger down to its KindEvent records.
func eventRecords(recs []audit.Record) []audit.Record {
	var out []audit.Record
	for _, r := range recs {
		if r.Kind == audit.KindEvent {
			out = append(out, r)
		}
	}
	return out
}

func TestControllerCrashRestartRecovers(t *testing.T) {
	n := buildNet(t, Config{
		Graph:             smallPod(t),
		Protocol:          controlplane.ProtoCicero,
		Cost:              protocol.Calibrated(),
		Seed:              47,
		ViewChangeTimeout: 15 * time.Millisecond,
	})
	dom := n.Domains[0]
	slot := 2 // not the view-0 primary: the crash costs no view change
	victim := simnet.NodeID(dom.Members[slot])

	src := topology.HostName(0, 0, 0, 0)
	sw := n.Switches[topology.ToRName(0, 0, 0)]

	// Flow 1 lands while everyone is up.
	sw.Subscribe(src, topology.HostName(0, 0, 1, 0), func(simnet.Time) {})
	sw.PacketArrival(src, topology.HostName(0, 0, 1, 0))

	// Crash the controller, then drive flow 2 entirely inside its outage:
	// the victim must miss those deliveries and recover them from peers.
	n.Sim.Schedule(20*time.Millisecond, func() {
		n.Net.Crash(victim)
	})
	n.Sim.Schedule(25*time.Millisecond, func() {
		sw.PacketArrival(src, topology.HostName(0, 0, 2, 0))
	})
	var restarted *controlplane.Controller
	n.Sim.Schedule(120*time.Millisecond, func() {
		n.Net.Recover(victim)
		ctl, err := n.RestartController(0, slot)
		if err != nil {
			t.Errorf("restart controller: %v", err)
			return
		}
		restarted = ctl
	})
	// Flow 3 lands after the restart; the recovered controller takes part.
	n.Sim.Schedule(200*time.Millisecond, func() {
		sw.PacketArrival(src, topology.HostName(0, 0, 3, 0))
	})
	if _, err := n.Sim.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if restarted == nil {
		t.Fatal("controller was never restarted")
	}
	if !restarted.Recovered() {
		t.Fatal("restarted controller never completed peer state transfer")
	}
	// The rebuilt event ledger must be byte-identical to a never-crashed
	// peer's — including the events delivered during the outage.
	ref := eventRecords(dom.Controllers[0].AuditRecords())
	got := eventRecords(restarted.AuditRecords())
	if len(ref) == 0 {
		t.Fatal("reference controller delivered no events")
	}
	if len(got) != len(ref) {
		t.Fatalf("recovered ledger has %d events, peer has %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i].Subject != ref[i].Subject || !bytes.Equal(got[i].Canonical, ref[i].Canonical) {
			t.Fatalf("recovered ledger diverges at %d: %s vs %s", i, got[i].Subject, ref[i].Subject)
		}
	}
}

func TestSwitchCrashRestartResyncs(t *testing.T) {
	n := buildNet(t, Config{
		Graph:             smallPod(t),
		Protocol:          controlplane.ProtoCicero,
		Cost:              protocol.Calibrated(),
		Seed:              49,
		ViewChangeTimeout: 15 * time.Millisecond,
	})
	swID := topology.ToRName(0, 0, 0)
	victim := simnet.NodeID(swID)
	src := topology.HostName(0, 0, 0, 0)
	dst := topology.HostName(0, 0, 2, 0)

	// Install rules for one flow, then let the network quiesce.
	n.Switches[swID].PacketArrival(src, dst)
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	pre, ok := n.Switches[swID].Lookup(src, dst)
	if !ok {
		t.Fatal("flow rule was never installed")
	}

	// Crash the switch: the replacement process starts with an empty table
	// and must rebuild it from the controllers' logged updates, through the
	// ordinary quorum-authentication path.
	n.Net.Crash(victim)
	n.Net.Recover(victim)
	sw, err := n.RestartSwitch(swID)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sw.Lookup(src, dst); ok {
		t.Fatal("restarted switch still has pre-crash rules (volatile state must not survive)")
	}
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	post, ok := sw.Lookup(src, dst)
	if !ok {
		t.Fatal("restarted switch did not resync the flow rule")
	}
	if post.Action != pre.Action || post.Priority != pre.Priority || post.Match != pre.Match {
		t.Fatalf("resynced rule differs: pre=%+v post=%+v", pre, post)
	}
	// The table object in the network map must be the replacement's.
	if n.Switches[swID] != sw {
		t.Fatal("network map still references the crashed switch instance")
	}
}
