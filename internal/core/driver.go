package core

import (
	"fmt"
	"time"

	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/simnet"
	"cicero/internal/workload"
)

// FlowResult records one flow's measured completion.
type FlowResult struct {
	Flow workload.Flow
	// SetupDelay is the time from arrival until the ingress rule was
	// ready (zero when rules were reused).
	SetupDelay time.Duration
	// Completion is the total flow completion time: setup + path latency
	// + transfer.
	Completion time.Duration
	// RuleReused marks flows that found their route pre-installed.
	RuleReused bool
}

// RunOptions tunes a flow run.
type RunOptions struct {
	// Teardown enables the unamortized setup/teardown mode of §6.2: after
	// each flow completes, its rules are removed via a teardown event.
	Teardown bool
	// ChargeForwarding bills each path switch the data-plane forwarding
	// cost of the flow (CostModel.PacketForwardPerKB); used by CPU
	// utilization measurements.
	ChargeForwarding bool
	// HostGbps caps a single flow's rate at the host NIC.
	HostGbps float64
}

// RunFlows injects the flow trace and runs the simulation to completion,
// returning per-flow results in completion order.
func (n *Network) RunFlows(flows []workload.Flow, opts RunOptions) ([]FlowResult, error) {
	if opts.HostGbps == 0 {
		opts.HostGbps = 10
	}
	n.results = n.results[:0]
	for _, f := range flows {
		f := f
		n.Sim.At(f.Start, func() { n.startFlow(f, opts) })
	}
	if _, err := n.Sim.Run(); err != nil {
		return nil, fmt.Errorf("core: simulation: %w", err)
	}
	return append([]FlowResult(nil), n.results...), nil
}

// startFlow begins one flow: if the ingress switch has a matching rule the
// flow proceeds immediately (rule reuse); otherwise the table miss raises
// an event and the flow starts once the rule is installed. The reverse-
// path scheduler guarantees the ingress rule is installed last, so
// ingress-readiness implies path-readiness.
func (n *Network) startFlow(f workload.Flow, opts RunOptions) {
	path := n.Graph.ShortestPath(f.Src, f.Dst)
	if path == nil {
		n.record(f, 0, 0, false)
		return
	}
	switches := n.Graph.SwitchesOnPath(path)
	start := n.Sim.Now()
	if len(switches) == 0 {
		// Same-host or same-rack short-circuit: no updates needed.
		n.finishFlow(f, start, start, path, true, opts)
		return
	}
	ingress := n.Switches[switches[0]]
	if ingress == nil {
		n.record(f, 0, 0, false)
		return
	}
	if _, ok := ingress.Lookup(f.Src, f.Dst); ok {
		n.finishFlow(f, start, start, path, true, opts)
		return
	}
	ingress.Subscribe(f.Src, f.Dst, func(at simnet.Time) {
		n.finishFlow(f, start, at, path, false, opts)
	})
	ingress.PacketArrival(f.Src, f.Dst)
}

// finishFlow computes the analytic completion: setup delay + path latency
// + serialization at the bottleneck rate.
func (n *Network) finishFlow(f workload.Flow, start, ready simnet.Time, path []string, reused bool, opts RunOptions) {
	setup := ready - start
	var pathLat time.Duration
	if lat, err := n.Graph.PathLatency(path); err == nil {
		pathLat = lat
	}
	rate := opts.HostGbps
	if bottleneck, err := n.Graph.PathMinCapacity(path); err == nil && bottleneck > 0 && bottleneck < rate {
		rate = bottleneck
	}
	transfer := time.Duration(f.SizeKB * 1024 * 8 / (rate * 1e9) * float64(time.Second))
	completion := setup + pathLat + transfer
	n.record(f, setup, completion, reused)

	if opts.ChargeForwarding && n.Cfg.Cost.PacketForwardPerKB > 0 {
		cost := time.Duration(f.SizeKB * float64(n.Cfg.Cost.PacketForwardPerKB))
		for _, sw := range n.Graph.SwitchesOnPath(path) {
			n.Net.Charge(simnet.NodeID(sw), cost)
		}
	}

	if opts.Teardown {
		// Remove the flow's rules once it finishes (§6.2 unamortized).
		done := n.Sim.Now() + pathLat + transfer
		n.Sim.At(done, func() { n.teardownFlow(f, path) })
	}
}

// teardownFlow emits the teardown event from the ingress switch.
func (n *Network) teardownFlow(f workload.Flow, path []string) {
	switches := n.Graph.SwitchesOnPath(path)
	if len(switches) == 0 {
		return
	}
	ingress := n.Switches[switches[0]]
	if ingress == nil {
		return
	}
	n.flowSeq++
	// Cookie 0 deletes the pair's rules regardless of the installing
	// event (table-miss events carry cookie 0).
	ingress.EmitEvent(protocol.Event{
		ID:   openflow.MsgID{Origin: ingress.ID() + "/td", Seq: n.flowSeq},
		Kind: protocol.EventFlowTeardown,
		Src:  f.Src,
		Dst:  f.Dst,
	})
}

// record appends a flow result.
func (n *Network) record(f workload.Flow, setup, completion time.Duration, reused bool) {
	n.results = append(n.results, FlowResult{
		Flow:       f,
		SetupDelay: setup,
		Completion: completion,
		RuleReused: reused,
	})
}

// MeasureUpdateTime emits a single-switch update event and returns the
// time from event emission to rule installation — the metric of Fig. 12a.
// src and dst must be hosts whose path crosses exactly the switches to
// update; the measurement uses the flow machinery with fresh rules.
func (n *Network) MeasureUpdateTime(src, dst string) (time.Duration, error) {
	path := n.Graph.ShortestPath(src, dst)
	if path == nil {
		return 0, fmt.Errorf("core: no path %s -> %s", src, dst)
	}
	switches := n.Graph.SwitchesOnPath(path)
	if len(switches) == 0 {
		return 0, fmt.Errorf("core: no switches between %s and %s", src, dst)
	}
	ingress := n.Switches[switches[0]]
	start := n.Sim.Now()
	var applied simnet.Time
	doneAt := simnet.Time(-1)
	ingress.Subscribe(src, dst, func(at simnet.Time) {
		applied = at
		doneAt = at
	})
	ingress.PacketArrival(src, dst)
	if _, err := n.Sim.Run(); err != nil {
		return 0, err
	}
	if doneAt < 0 {
		return 0, fmt.Errorf("core: update %s -> %s never applied", src, dst)
	}
	return applied - start, nil
}
