package core

import (
	"crypto/rand"
	"fmt"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/dataplane"
	"cicero/internal/fabric"
	"cicero/internal/metarepo"
	"cicero/internal/protocol"
	"cicero/internal/routing"
	"cicero/internal/simnet"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/dkg"
	"cicero/internal/tcrypto/pki"
	"cicero/internal/topology"
)

// Domain is one update domain: a slice of the data plane plus its own
// control plane, atomic-broadcast group, and threshold key.
type Domain struct {
	Index       int
	Members     []pki.Identity
	Controllers []*controlplane.Controller
	GroupKey    *bls.GroupKey
	Shares      []bls.KeyShare
	Switches    []string
	// Aggregator is the designated aggregator identity ("" in
	// switch-aggregation mode).
	Aggregator pki.Identity
	// MetaGenesis is the domain's threshold-signed root of trust (zero
	// value when Config.Metadata is off).
	MetaGenesis protocol.MetaEnvelope
	// Site is the graph node controllers of this domain are co-located
	// with (for latency derivation).
	Site string
}

// Network is an assembled deployment.
type Network struct {
	Cfg Config
	// Fab is the transport every component was built against; it is the
	// simnet Network below or a live backend (Config.Fabric).
	Fab fabric.Fabric
	// Sim and Net are the discrete-event simulator pair; both are nil
	// when the deployment runs on a live fabric.
	Sim       *simnet.Simulator
	Net       *simnet.Network
	Graph     *topology.Graph
	Domains   []*Domain
	Directory *pki.Directory
	Scheme    *bls.Scheme

	Switches map[string]*dataplane.Switch
	// domainOfSwitch caches switch -> domain.
	domainOfSwitch map[string]int
	// site maps every simnet node to its graph location.
	site map[string]string
	// distCache memoizes site-to-site fabric latencies.
	distCache map[[2]string]time.Duration

	// ctlConfigs and swConfigs retain each node's build-time configuration
	// (the durable provisioning: identity keys, threshold share, topology)
	// so RestartController/RestartSwitch can rebuild a crashed node with
	// empty volatile state.
	ctlConfigs map[pki.Identity]controlplane.Config
	swConfigs  map[string]dataplane.Config

	results []FlowResult
	flowSeq uint64
}

// ControllerName returns the canonical controller identity.
func ControllerName(domain, idx int) pki.Identity {
	return pki.Identity(fmt.Sprintf("dom%d/ctl/%d", domain, idx))
}

// Build assembles a deployment from the config.
func Build(cfg Config) (*Network, error) {
	cfg = cfg.Defaulted()
	if cfg.Graph == nil {
		return nil, fmt.Errorf("core: Graph is required")
	}
	if cfg.Protocol == controlplane.ProtoCicero && cfg.ControllersPerDomain < 4 {
		return nil, fmt.Errorf("core: cicero requires >= 4 controllers per domain, got %d", cfg.ControllersPerDomain)
	}
	n := &Network{
		Cfg:            cfg,
		Graph:          cfg.Graph,
		Directory:      pki.NewDirectory(),
		Scheme:         bls.NewScheme(cfg.Params),
		Switches:       make(map[string]*dataplane.Switch),
		domainOfSwitch: make(map[string]int),
		site:           make(map[string]string),
		distCache:      make(map[[2]string]time.Duration),
		ctlConfigs:     make(map[pki.Identity]controlplane.Config),
		swConfigs:      make(map[string]dataplane.Config),
	}
	if cfg.Fabric != nil {
		// Live backend: components construct against the provided fabric;
		// latency and jitter are whatever the real transport imposes.
		n.Fab = cfg.Fabric
	} else {
		sim := simnet.NewSimulator(cfg.Seed)
		net := simnet.NewNetwork(sim, cfg.LANLatency)
		net.Latency = n.latency
		net.JitterFrac = cfg.Jitter
		n.Sim, n.Net, n.Fab = sim, net, net
	}

	// Partition switches into domains.
	domainSwitches := make([][]string, cfg.NumDomains)
	for _, node := range cfg.Graph.Nodes() {
		if node.Kind == topology.KindHost {
			continue
		}
		dom := 0
		if cfg.DomainOf != nil {
			dom = cfg.DomainOf(node)
		}
		if dom < 0 || dom >= cfg.NumDomains {
			return nil, fmt.Errorf("core: DomainOf(%s) = %d out of range 0..%d", node.ID, dom, cfg.NumDomains-1)
		}
		domainSwitches[dom] = append(domainSwitches[dom], node.ID)
		n.domainOfSwitch[node.ID] = dom
		n.site[node.ID] = node.ID
	}

	// Peer-domain controller lists for event forwarding.
	peerDomains := make(map[int][]pki.Identity, cfg.NumDomains)
	for dom := 0; dom < cfg.NumDomains; dom++ {
		members := make([]pki.Identity, cfg.ControllersPerDomain)
		for i := range members {
			members[i] = ControllerName(dom, i+1)
		}
		peerDomains[dom] = members
	}

	domainOfSwitchFn := func(sw string) int { return n.domainOfSwitch[sw] }
	quorum := controlplane.CiceroQuorum(cfg.ControllersPerDomain)

	for dom := 0; dom < cfg.NumDomains; dom++ {
		d := &Domain{Index: dom, Members: peerDomains[dom], Switches: domainSwitches[dom]}
		if len(d.Switches) > 0 {
			d.Site = d.Switches[0]
		}
		// Threshold key material via DKG (no dealer ever knows the key).
		if cfg.Protocol == controlplane.ProtoCicero {
			gk, shares, err := dkg.Run(n.Scheme, rand.Reader, quorum, cfg.ControllersPerDomain)
			if err != nil {
				return nil, fmt.Errorf("core: domain %d DKG: %w", dom, err)
			}
			d.GroupKey = gk
			d.Shares = shares
		}

		// Controllers. Identity keys come first: the metadata genesis root
		// must delegate to every member key before any controller exists.
		var aggregator pki.Identity
		if cfg.Protocol == controlplane.ProtoCicero && cfg.Aggregation == controlplane.AggController {
			aggregator = d.Members[0]
		}
		ctlKeys := make([]*pki.KeyPair, len(d.Members))
		for i, id := range d.Members {
			keys, err := pki.NewKeyPair(rand.Reader, id)
			if err != nil {
				return nil, fmt.Errorf("core: keygen %s: %w", id, err)
			}
			n.Directory.MustRegister(keys)
			n.site[string(id)] = d.Site
			ctlKeys[i] = keys
		}
		if cfg.Metadata && cfg.Protocol == controlplane.ProtoCicero {
			root := metarepo.GenesisRoot(quorum, ctlKeys, int64(n.Fab.Now()), metaTTLNS(cfg))
			env, err := metarepo.SignRootDirect(n.Scheme, d.GroupKey, d.Shares, root)
			if err != nil {
				return nil, fmt.Errorf("core: domain %d metadata genesis: %w", dom, err)
			}
			d.MetaGenesis = env
		}
		for i, id := range d.Members {
			keys := ctlKeys[i]
			ctlCfg := controlplane.Config{
				ID:                id,
				Domain:            dom,
				Members:           d.Members,
				Net:               n.Fab,
				Cost:              cfg.Cost,
				Keys:              keys,
				Directory:         n.Directory,
				Protocol:          cfg.Protocol,
				Aggregation:       cfg.Aggregation,
				App:               n.newApp(),
				Sched:             cfg.Scheduler,
				PeerDomains:       clonePeers(peerDomains),
				Switches:          d.Switches,
				CryptoReal:        cfg.CryptoReal,
				Bootstrap:         i == 0,
				ViewChangeTimeout: cfg.ViewChangeTimeout,
				FailureDetector:   cfg.FailureDetector,
				BatchSize:         cfg.BatchSize,
				BatchDelay:        cfg.BatchDelay,
			}
			if cfg.NumDomains > 1 {
				ctlCfg.DomainOf = domainOfSwitchFn
			}
			if cfg.Protocol == controlplane.ProtoCicero {
				ctlCfg.Scheme = n.Scheme
				ctlCfg.GroupKey = d.GroupKey
				ctlCfg.Share = d.Shares[i]
				if cfg.Metadata {
					ctlCfg.Metadata = &controlplane.MetadataConfig{
						Genesis:         d.MetaGenesis,
						TTL:             cfg.MetadataTTL,
						TimestampTTL:    cfg.MetadataTimestampTTL,
						RefreshInterval: cfg.MetadataRefresh,
						RefreshHorizon:  cfg.MetadataRefreshHorizon,
					}
				}
			}
			ctl, err := controlplane.New(ctlCfg)
			if err != nil {
				return nil, fmt.Errorf("core: controller %s: %w", id, err)
			}
			n.ctlConfigs[id] = ctlCfg
			d.Controllers = append(d.Controllers, ctl)
		}

		// Switches.
		for _, swID := range d.Switches {
			keys, err := pki.NewKeyPair(rand.Reader, pki.Identity(swID))
			if err != nil {
				return nil, fmt.Errorf("core: keygen %s: %w", swID, err)
			}
			n.Directory.MustRegister(keys)
			mode := dataplane.ModeUnsigned
			if cfg.Protocol == controlplane.ProtoCicero {
				if cfg.Aggregation == controlplane.AggController {
					mode = dataplane.ModeAggregated
				} else {
					mode = dataplane.ModeThreshold
				}
			}
			swCfg := dataplane.Config{
				ID:             swID,
				Net:            n.Fab,
				Cost:           cfg.Cost,
				Mode:           mode,
				Keys:           keys,
				Directory:      n.Directory,
				Controllers:    d.Members,
				CryptoReal:     cfg.CryptoReal,
				ApplyHook:      cfg.SwitchApplyHook,
				BatchApplyHook: cfg.SwitchBatchHook,
			}
			if cfg.Protocol == controlplane.ProtoCicero {
				swCfg.Scheme = n.Scheme
				swCfg.GroupKey = d.GroupKey
				swCfg.Quorum = quorum
				if cfg.Metadata {
					swCfg.Metadata = &dataplane.MetadataConfig{Genesis: d.MetaGenesis}
				}
			}
			sw, err := dataplane.New(swCfg)
			if err != nil {
				return nil, fmt.Errorf("core: switch %s: %w", swID, err)
			}
			sw.Bootstrap(d.Members, aggregator, quorum)
			n.swConfigs[swID] = swCfg
			n.Switches[swID] = sw
		}
		d.Aggregator = aggregator
		n.Domains = append(n.Domains, d)
	}
	return n, nil
}

// metaTTLNS is the genesis root lifetime in fabric nanoseconds
// (mirrors the controlplane MetadataConfig default).
func metaTTLNS(cfg Config) int64 {
	if cfg.MetadataTTL > 0 {
		return int64(cfg.MetadataTTL)
	}
	return int64(time.Hour)
}

// newApp builds the routing application for one controller replica. Each
// replica gets its own instance so stateful apps stay replica-local.
func (n *Network) newApp() routing.App {
	if n.Cfg.AppFactory != nil {
		return n.Cfg.AppFactory()
	}
	return &routing.ShortestPath{Graph: n.Graph, PairRules: n.Cfg.PairRules}
}

// clonePeers deep-copies the peer-domain map (each controller mutates its
// own view on membership notices).
func clonePeers(in map[int][]pki.Identity) map[int][]pki.Identity {
	out := make(map[int][]pki.Identity, len(in))
	for k, v := range in {
		out[k] = append([]pki.Identity(nil), v...)
	}
	return out
}

// latency derives one-way message latency from the fabric: co-located
// nodes pay the LAN latency; remote pairs pay the fabric shortest-path
// latency plus the LAN hop.
func (n *Network) latency(from, to simnet.NodeID) time.Duration {
	sa, oka := n.site[string(from)]
	sb, okb := n.site[string(to)]
	if !oka || !okb {
		return -1 // default
	}
	if sa == sb {
		return n.Cfg.LANLatency
	}
	return n.fabricDist(sa, sb) + n.Cfg.LANLatency
}

// fabricDist memoizes shortest-path latency between graph sites.
func (n *Network) fabricDist(a, b string) time.Duration {
	key := [2]string{a, b}
	if a > b {
		key = [2]string{b, a}
	}
	if d, ok := n.distCache[key]; ok {
		return d
	}
	var d time.Duration
	if path := n.Graph.ShortestPath(a, b); path != nil {
		if lat, err := n.Graph.PathLatency(path); err == nil {
			d = lat
		}
	}
	n.distCache[key] = d
	return d
}

// DomainOfSwitch returns a switch's domain index.
func (n *Network) DomainOfSwitch(sw string) int { return n.domainOfSwitch[sw] }

// SwitchCPUTotal sums simulated CPU time charged to all switches.
func (n *Network) SwitchCPUTotal() time.Duration {
	var total time.Duration
	for id := range n.Switches {
		total += n.Fab.BusyTotal(simnet.NodeID(id))
	}
	return total
}
