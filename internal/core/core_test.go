package core

import (
	"testing"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/protocol"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

// smallPod builds a 4-rack pod for fast tests.
func smallPod(t *testing.T) *topology.Graph {
	t.Helper()
	cfg := topology.DefaultFabricConfig()
	cfg.RacksPerPod = 4
	cfg.HostsPerRack = 2
	g, err := topology.BuildSinglePod(cfg)
	if err != nil {
		t.Fatalf("BuildSinglePod: %v", err)
	}
	return g
}

// testFlows produces a deterministic trace.
func testFlows(t *testing.T, g *topology.Graph, count int) []workload.Flow {
	t.Helper()
	flows, err := workload.Generate(g, workload.Config{
		Mix:              workload.HadoopMix(),
		Flows:            count,
		MeanInterarrival: 2 * time.Millisecond,
		Seed:             42,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return flows
}

func buildNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

func TestCentralizedEndToEnd(t *testing.T) {
	g := smallPod(t)
	n := buildNet(t, Config{
		Graph:    g,
		Protocol: controlplane.ProtoCentralized,
		Cost:     protocol.Calibrated(),
		Seed:     1,
	})
	results, err := n.RunFlows(testFlows(t, g, 30), RunOptions{})
	if err != nil {
		t.Fatalf("RunFlows: %v", err)
	}
	if len(results) != 30 {
		t.Fatalf("completed %d flows, want 30", len(results))
	}
	for _, r := range results {
		if r.Completion < 0 {
			t.Fatalf("negative completion for flow %d", r.Flow.ID)
		}
	}
}

func TestCrashTolerantEndToEnd(t *testing.T) {
	g := smallPod(t)
	n := buildNet(t, Config{
		Graph:                g,
		Protocol:             controlplane.ProtoCrash,
		ControllersPerDomain: 3,
		Cost:                 protocol.Calibrated(),
		Seed:                 1,
	})
	results, err := n.RunFlows(testFlows(t, g, 30), RunOptions{})
	if err != nil {
		t.Fatalf("RunFlows: %v", err)
	}
	if len(results) != 30 {
		t.Fatalf("completed %d flows, want 30", len(results))
	}
}

func TestCiceroEndToEnd(t *testing.T) {
	g := smallPod(t)
	n := buildNet(t, Config{
		Graph:    g,
		Protocol: controlplane.ProtoCicero,
		Cost:     protocol.Calibrated(),
		Seed:     1,
	})
	results, err := n.RunFlows(testFlows(t, g, 30), RunOptions{})
	if err != nil {
		t.Fatalf("RunFlows: %v", err)
	}
	if len(results) != 30 {
		t.Fatalf("completed %d flows, want 30", len(results))
	}
	// Every switch that applied updates should have done so exactly once
	// per update (no duplicate application).
	applied := 0
	for _, sw := range n.Switches {
		applied += int(sw.UpdatesApplied)
		if sw.UpdatesRejected != 0 {
			t.Errorf("switch %s rejected %d updates in an honest run", sw.ID(), sw.UpdatesRejected)
		}
	}
	if applied == 0 {
		t.Fatal("no updates applied")
	}
}

func TestCiceroAggregationEndToEnd(t *testing.T) {
	g := smallPod(t)
	n := buildNet(t, Config{
		Graph:       g,
		Protocol:    controlplane.ProtoCicero,
		Aggregation: controlplane.AggController,
		Cost:        protocol.Calibrated(),
		Seed:        1,
	})
	results, err := n.RunFlows(testFlows(t, g, 30), RunOptions{})
	if err != nil {
		t.Fatalf("RunFlows: %v", err)
	}
	if len(results) != 30 {
		t.Fatalf("completed %d flows, want 30", len(results))
	}
}

// TestSetupCostOrdering checks the paper's headline relation on fresh-rule
// setup latency: centralized < crash-tolerant < cicero < cicero-agg.
func TestSetupCostOrdering(t *testing.T) {
	g := smallPod(t)
	setup := func(proto controlplane.Protocol, agg controlplane.Aggregation) time.Duration {
		cfg := Config{Graph: g, Protocol: proto, Aggregation: agg,
			Cost: protocol.Calibrated(), Seed: 7}
		n := buildNet(t, cfg)
		d, err := n.MeasureUpdateTime(topology.HostName(0, 0, 0, 0), topology.HostName(0, 0, 3, 0))
		if err != nil {
			t.Fatalf("MeasureUpdateTime(%v): %v", proto, err)
		}
		return d
	}
	central := setup(controlplane.ProtoCentralized, 0)
	crash := setup(controlplane.ProtoCrash, 0)
	cicero := setup(controlplane.ProtoCicero, controlplane.AggSwitch)
	ciceroAgg := setup(controlplane.ProtoCicero, controlplane.AggController)
	t.Logf("setup: centralized=%v crash=%v cicero=%v cicero-agg=%v", central, crash, cicero, ciceroAgg)
	if !(central < crash && crash < cicero && cicero < ciceroAgg) {
		t.Fatalf("ordering violated: centralized=%v crash=%v cicero=%v cicero-agg=%v",
			central, crash, cicero, ciceroAgg)
	}
}

func TestRuleReuseAmortizesSetup(t *testing.T) {
	g := smallPod(t)
	n := buildNet(t, Config{
		Graph:    g,
		Protocol: controlplane.ProtoCicero,
		Cost:     protocol.Calibrated(),
		Seed:     3,
	})
	flows := testFlows(t, g, 60)
	results, err := n.RunFlows(flows, RunOptions{})
	if err != nil {
		t.Fatalf("RunFlows: %v", err)
	}
	reused := 0
	for _, r := range results {
		if r.RuleReused {
			reused++
			if r.SetupDelay != 0 {
				t.Errorf("reused flow %d has setup delay %v", r.Flow.ID, r.SetupDelay)
			}
		}
	}
	if reused == 0 {
		t.Fatal("no flows reused rules; reuse amortization broken")
	}
}

func TestTeardownModePreventsReuse(t *testing.T) {
	g := smallPod(t)
	n := buildNet(t, Config{
		Graph:     g,
		Protocol:  controlplane.ProtoCicero,
		PairRules: true,
		Cost:      protocol.Calibrated(),
		Seed:      3,
	})
	// Sequential flows between the same pair, far apart in time: with
	// teardown, the second must pay setup again.
	src := topology.HostName(0, 0, 0, 0)
	dst := topology.HostName(0, 0, 2, 0)
	flows := []workload.Flow{
		{ID: 1, Src: src, Dst: dst, SizeKB: 100, Start: 0},
		{ID: 2, Src: src, Dst: dst, SizeKB: 100, Start: 500 * time.Millisecond},
	}
	results, err := n.RunFlows(flows, RunOptions{Teardown: true})
	if err != nil {
		t.Fatalf("RunFlows: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("completed %d, want 2", len(results))
	}
	for _, r := range results {
		if r.RuleReused {
			t.Errorf("flow %d reused rules despite teardown", r.Flow.ID)
		}
		if r.SetupDelay == 0 {
			t.Errorf("flow %d has zero setup in teardown mode", r.Flow.ID)
		}
	}
}

func TestMultiDomainEndToEnd(t *testing.T) {
	cfg := topology.InterconnectPodsConfig{
		Fabric:               topology.DefaultFabricConfig(),
		Pods:                 2,
		InterconnectSwitches: 4,
		EdgeInterconnect:     50 * time.Microsecond,
	}
	cfg.Fabric.RacksPerPod = 3
	cfg.Fabric.HostsPerRack = 1
	g, err := topology.BuildInterconnectedPods(cfg)
	if err != nil {
		t.Fatalf("BuildInterconnectedPods: %v", err)
	}
	n := buildNet(t, Config{
		Graph:      g,
		Protocol:   controlplane.ProtoCicero,
		NumDomains: 3,
		DomainOf:   ByPod(2, 2),
		Cost:       protocol.Calibrated(),
		Seed:       5,
	})
	// A cross-pod flow requires updates in pod-0 domain, pod-1 domain and
	// the interconnect domain, exercising event forwarding.
	src := topology.HostName(0, 0, 0, 0)
	dst := topology.HostName(0, 1, 2, 0)
	results, err := n.RunFlows([]workload.Flow{{ID: 1, Src: src, Dst: dst, SizeKB: 64, Start: 0}}, RunOptions{})
	if err != nil {
		t.Fatalf("RunFlows: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("completed %d, want 1", len(results))
	}
	if results[0].RuleReused || results[0].SetupDelay == 0 {
		t.Fatalf("cross-domain flow should pay setup: %+v", results[0])
	}
	// All three domains must have processed the event.
	for _, d := range n.Domains {
		if d.Controllers[0].EventsDelivered == 0 {
			t.Errorf("domain %d never delivered the event", d.Index)
		}
	}
}

func TestCiceroRealCryptoEndToEnd(t *testing.T) {
	g := smallPod(t)
	n := buildNet(t, Config{
		Graph:      g,
		Protocol:   controlplane.ProtoCicero,
		Cost:       protocol.Calibrated(),
		CryptoReal: true,
		Seed:       9,
	})
	src := topology.HostName(0, 0, 0, 0)
	dst := topology.HostName(0, 0, 3, 0)
	results, err := n.RunFlows([]workload.Flow{{ID: 1, Src: src, Dst: dst, SizeKB: 64, Start: 0}}, RunOptions{})
	if err != nil {
		t.Fatalf("RunFlows: %v", err)
	}
	if len(results) != 1 || results[0].SetupDelay == 0 {
		t.Fatalf("real-crypto flow did not complete properly: %+v", results)
	}
	for _, sw := range n.Switches {
		if sw.UpdatesRejected != 0 {
			t.Errorf("switch %s rejected updates with honest controllers", sw.ID())
		}
	}
}

func TestCiceroRealCryptoAggregatedEndToEnd(t *testing.T) {
	g := smallPod(t)
	n := buildNet(t, Config{
		Graph:       g,
		Protocol:    controlplane.ProtoCicero,
		Aggregation: controlplane.AggController,
		Cost:        protocol.Calibrated(),
		CryptoReal:  true,
		Seed:        9,
	})
	src := topology.HostName(0, 0, 1, 0)
	dst := topology.HostName(0, 0, 2, 1)
	results, err := n.RunFlows([]workload.Flow{{ID: 1, Src: src, Dst: dst, SizeKB: 64, Start: 0}}, RunOptions{})
	if err != nil {
		t.Fatalf("RunFlows: %v", err)
	}
	if len(results) != 1 || results[0].SetupDelay == 0 {
		t.Fatalf("aggregated real-crypto flow failed: %+v", results)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	g := smallPod(t)
	if _, err := Build(Config{Graph: g, Protocol: controlplane.ProtoCicero, ControllersPerDomain: 3}); err == nil {
		t.Error("cicero with 3 controllers accepted")
	}
	bad := Config{Graph: g, NumDomains: 2, DomainOf: func(n *topology.Node) int { return 5 }}
	if _, err := Build(bad); err == nil {
		t.Error("out-of-range DomainOf accepted")
	}
}

func TestDeterministicResults(t *testing.T) {
	g := smallPod(t)
	run := func() []FlowResult {
		n := buildNet(t, Config{Graph: g, Protocol: controlplane.ProtoCicero,
			Cost: protocol.Calibrated(), Seed: 11})
		res, err := n.RunFlows(testFlows(t, g, 25), RunOptions{})
		if err != nil {
			t.Fatalf("RunFlows: %v", err)
		}
		return res
	}
	a := run()
	b := run()
	if len(a) != len(b) {
		t.Fatal("different result counts")
	}
	for i := range a {
		if a[i].Completion != b[i].Completion || a[i].SetupDelay != b[i].SetupDelay {
			t.Fatalf("nondeterministic result at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
