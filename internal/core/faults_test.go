package core

import (
	"testing"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/protocol"
	"cicero/internal/simnet"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

// Fault-injection scenarios beyond single crashes: partitions inside the
// control plane, a crashed-then-healed controller, and the BFT primary
// failing mid-workload.

func TestControlPlanePartitionHealsAndRecovers(t *testing.T) {
	n := buildNet(t, Config{
		Graph:             smallPod(t),
		Protocol:          controlplane.ProtoCicero,
		Cost:              protocol.Calibrated(),
		Seed:              41,
		ViewChangeTimeout: 20 * time.Millisecond,
	})
	dom := n.Domains[0]
	// Partition controller 4 away from the other three: the remaining
	// trio still forms BFT quorums (n=4, f=1) and share quorums (t=2).
	for _, m := range dom.Members[:3] {
		n.Net.Partition(simnet.NodeID(dom.Members[3]), simnet.NodeID(m))
	}
	src := topology.HostName(0, 0, 0, 0)
	dst := topology.HostName(0, 0, 2, 0)
	// A partitioned-but-alive member retries forever (correct liveness
	// behavior), so the simulation never quiesces: drive with deadlines.
	sw := n.Switches[topology.ToRName(0, 0, 0)]
	first := false
	sw.Subscribe(src, dst, func(simnet.Time) { first = true })
	sw.PacketArrival(src, dst)
	if _, err := n.Sim.RunUntil(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !first {
		t.Fatal("flow stalled under partitioned minority (3 of 4 should progress)")
	}
	// Heal; a later flow to a fresh destination also completes.
	for _, m := range dom.Members[:3] {
		n.Net.Heal(simnet.NodeID(dom.Members[3]), simnet.NodeID(m))
	}
	dst2 := topology.HostName(0, 0, 3, 0)
	sw2 := n.Switches[topology.ToRName(0, 0, 0)]
	second := false
	sw2.Subscribe(src, dst2, func(simnet.Time) { second = true })
	sw2.PacketArrival(src, dst2)
	if _, err := n.Sim.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if !second {
		t.Fatal("flow failed after heal")
	}
}

func TestBFTPrimaryCrashMidWorkload(t *testing.T) {
	n := buildNet(t, Config{
		Graph:             smallPod(t),
		Protocol:          controlplane.ProtoCicero,
		Cost:              protocol.Calibrated(),
		Seed:              43,
		ViewChangeTimeout: 15 * time.Millisecond,
	})
	dom := n.Domains[0]
	// The BFT primary of view 0 is the first member. Crash it after the
	// first flow; the view change must keep later flows working. Quorum
	// t=2 is still reachable with 3 live signers.
	n.Sim.Schedule(5*time.Millisecond, func() {
		n.Net.Crash(simnet.NodeID(dom.Members[0]))
		dom.Controllers[0].Stop()
	})
	flows := []workload.Flow{
		{ID: 1, Src: topology.HostName(0, 0, 0, 0), Dst: topology.HostName(0, 0, 1, 0), SizeKB: 16},
		{ID: 2, Src: topology.HostName(0, 0, 2, 0), Dst: topology.HostName(0, 0, 3, 0), SizeKB: 16, Start: 40 * time.Millisecond},
		{ID: 3, Src: topology.HostName(0, 0, 3, 1), Dst: topology.HostName(0, 0, 0, 1), SizeKB: 16, Start: 80 * time.Millisecond},
	}
	results, err := n.RunFlows(flows, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("completed %d flows, want 3 (view change must restore liveness)", len(results))
	}
}

func TestAggregatorCrashWithoutRemovalStallsOnlyNewFlows(t *testing.T) {
	// Controller aggregation with the aggregator crashed and NOT yet
	// removed: flows whose updates need the aggregator stall (liveness
	// hit, §4.2's trade-off) until membership removes it — here we verify
	// the stall is real, then that removal restores service.
	n := buildNet(t, Config{
		Graph:                smallPod(t),
		Protocol:             controlplane.ProtoCicero,
		Aggregation:          controlplane.AggController,
		ControllersPerDomain: 5,
		Cost:                 protocol.Calibrated(),
		Seed:                 45,
		ViewChangeTimeout:    15 * time.Millisecond,
	})
	dom := n.Domains[0]
	n.Net.Crash(simnet.NodeID(dom.Members[0]))
	dom.Controllers[0].Stop()

	src := topology.HostName(0, 0, 0, 0)
	dst := topology.HostName(0, 0, 2, 0)
	sw := n.Switches[topology.ToRName(0, 0, 0)]
	done := false
	sw.Subscribe(src, dst, func(simnet.Time) { done = true })
	sw.PacketArrival(src, dst)
	if _, err := n.Sim.RunUntil(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("update applied despite crashed aggregator (events go only to it)")
	}
	// Remove the aggregator through the membership protocol; the new
	// aggregator takes over and a fresh packet-in succeeds.
	if err := dom.Controllers[1].RequestRemoveController(dom.Members[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	sw.PacketArrival(src, dst)
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("flow still stalled after aggregator failover")
	}
}
