package core

import (
	"testing"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/protocol"
	"cicero/internal/simnet"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

// Longer-horizon control-plane lifecycle scenarios.

// TestReAddAfterRemoval exercises the paper's §4.3 note that previously
// removed controllers can rejoin: a member is removed, then a replacement
// is admitted (identifiers are never reused, so it joins under a fresh
// identity), and the data plane keeps working throughout.
func TestReAddAfterRemoval(t *testing.T) {
	cfg := topology.DefaultFabricConfig()
	cfg.RacksPerPod = 3
	g, err := topology.BuildSinglePod(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(Config{
		Graph:                g,
		Protocol:             controlplane.ProtoCicero,
		ControllersPerDomain: 5,
		Cost:                 protocol.Calibrated(),
		CryptoReal:           true,
		Seed:                 81,
	})
	if err != nil {
		t.Fatal(err)
	}
	dom := n.Domains[0]
	originalPK := dom.GroupKey.PK.Point

	// Phase 1: remove member 5.
	victim := dom.Members[4]
	n.Net.Crash(simnet.NodeID(victim))
	dom.Controllers[4].Stop()
	if err := dom.Controllers[1].RequestRemoveController(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(dom.Controllers[0].Members()); got != 4 {
		t.Fatalf("after removal: %d members, want 4", got)
	}

	// Phase 2: admit a replacement under a fresh identifier.
	replacement := addJoiner(t, n, &Domain{
		Index:    dom.Index,
		Members:  dom.Controllers[0].Members(),
		GroupKey: dom.Controllers[0].GroupKey(),
		Switches: dom.Switches,
		Site:     dom.Site,
	}, ControllerName(0, 6))
	if err := dom.Controllers[0].RequestAddController(replacement.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if replacement.Phase() != 2 {
		t.Fatalf("replacement phase = %d, want 2", replacement.Phase())
	}
	if got := len(replacement.Members()); got != 5 {
		t.Fatalf("after re-add: %d members, want 5", got)
	}
	if !replacement.GroupKey().PK.Point.Equal(originalPK) {
		t.Fatal("public key drifted across remove+add")
	}

	// Phase 3: flows still complete with real crypto under the twice-
	// reshared key.
	results, err := n.RunFlows([]workload.Flow{{
		ID: 1, Src: topology.HostName(0, 0, 0, 0), Dst: topology.HostName(0, 0, 2, 0), SizeKB: 32,
	}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].SetupDelay == 0 {
		t.Fatalf("post-lifecycle flow failed: %+v", results)
	}
	for _, sw := range n.Switches {
		if sw.UpdatesRejected != 0 {
			t.Fatalf("switch %s rejected honest updates after lifecycle", sw.ID())
		}
	}
}

// TestLargeControlPlaneEndToEnd runs flows under a 7-member control plane
// (f=2, quorum t=3), the paper's "five nines with 2 concurrent failures"
// configuration, with two members crashed.
func TestLargeControlPlaneEndToEnd(t *testing.T) {
	cfg := topology.DefaultFabricConfig()
	cfg.RacksPerPod = 3
	g, err := topology.BuildSinglePod(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(Config{
		Graph:                g,
		Protocol:             controlplane.ProtoCicero,
		ControllersPerDomain: 7,
		Cost:                 protocol.Calibrated(),
		CryptoReal:           true,
		Seed:                 83,
		ViewChangeTimeout:    20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	dom := n.Domains[0]
	if q := dom.Controllers[0].Quorum(); q != 3 {
		t.Fatalf("quorum = %d, want 3", q)
	}
	// Crash two members (the tolerated maximum), including the primary.
	for _, i := range []int{0, 5} {
		n.Net.Crash(simnet.NodeID(dom.Members[i]))
		dom.Controllers[i].Stop()
	}
	flows := []workload.Flow{
		{ID: 1, Src: topology.HostName(0, 0, 0, 0), Dst: topology.HostName(0, 0, 1, 0), SizeKB: 16},
		{ID: 2, Src: topology.HostName(0, 0, 1, 0), Dst: topology.HostName(0, 0, 2, 0), SizeKB: 16, Start: 60 * time.Millisecond},
	}
	results, err := n.RunFlows(flows, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("completed %d flows under f=2 crashes, want 2", len(results))
	}
}

// TestFig11bSmoke keeps the web-server experiment covered end to end.
func TestFig11bStyleWebWorkload(t *testing.T) {
	g := smallPod(t)
	flows, err := workload.Generate(g, workload.Config{
		Mix:              workload.WebServerMix(),
		Flows:            80,
		MeanInterarrival: time.Millisecond,
		Seed:             85,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range []controlplane.Protocol{controlplane.ProtoCentralized, controlplane.ProtoCicero} {
		ctls := 4
		if proto == controlplane.ProtoCentralized {
			ctls = 1
		}
		n, err := Build(Config{
			Graph:                g,
			Protocol:             proto,
			ControllersPerDomain: ctls,
			Cost:                 protocol.Calibrated(),
			Seed:                 85,
		})
		if err != nil {
			t.Fatal(err)
		}
		results, err := n.RunFlows(flows, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(flows) {
			t.Fatalf("%v: completed %d/%d", proto, len(results), len(flows))
		}
	}
}
