package core

import (
	"testing"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/routing"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

// End-to-end reproduction of the paper's Fig. 2: a link fails, the
// control plane reroutes around it, and the update ordering never creates
// a loop or black hole — the new path is fully programmed before the old
// one is retired.

func TestLinkFailureReroutesWithoutBlackHole(t *testing.T) {
	g := diamondGraph(t)
	var apps []*routing.Rerouter
	n, err := Build(Config{
		Graph:    g,
		Protocol: controlplane.ProtoCicero,
		AppFactory: func() routing.App {
			app := &routing.Rerouter{Inner: &routing.ShortestPath{Graph: g}, Graph: g}
			apps = append(apps, app)
			return app
		},
		Cost: protocol.Calibrated(),
		Seed: 51,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Establish h2 -> h5 over the direct s2-s5 link.
	results, err := n.RunFlows([]workload.Flow{{ID: 1, Src: "h2", Dst: "h5", SizeKB: 16}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatal("initial flow failed")
	}
	if rule, ok := n.Switches["s2"].Lookup("h2", "h5"); !ok || rule.Action.NextHop != "s5" {
		t.Fatalf("expected s2 -> s5 direct route, got %v (ok=%v)", rule, ok)
	}

	// The s2-s5 link fails; the failure event reaches the control plane.
	ev := routing.LinkDownEvent("admin", 1, "s2", "s5")
	n.Domains[0].Controllers[0].InjectEvent(ev)
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}

	// s2 must now forward toward s3 (the detour), and every switch on the
	// new path must carry the rule — no black hole.
	rule, ok := n.Switches["s2"].Lookup("h2", "h5")
	if !ok {
		t.Fatal("ingress lost its route after link failure")
	}
	if rule.Action.NextHop == "s5" {
		t.Fatalf("ingress still forwards into the dead link: %v", rule)
	}
	// Follow next-hops from s2 to h5 and assert loop-freedom.
	visited := map[string]bool{}
	cur := "s2"
	for cur != "h5" {
		if visited[cur] {
			t.Fatalf("forwarding loop at %s", cur)
		}
		visited[cur] = true
		sw, ok := n.Switches[cur]
		if !ok {
			t.Fatalf("path reached unknown switch %s", cur)
		}
		r, ok := sw.Lookup("h2", "h5")
		if !ok {
			t.Fatalf("black hole at %s: no rule for h2->h5", cur)
		}
		cur = r.Action.NextHop
	}
	// A new flow to the same destination reuses the repaired route.
	results, err = n.RunFlows([]workload.Flow{{ID: 2, Src: "h2", Dst: "h5", SizeKB: 16, Start: n.Sim.Now() + time.Millisecond}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].RuleReused {
		t.Fatalf("post-failure flow did not reuse the repaired route: %+v", results)
	}
}

func TestLinkFailureUnreachableDestinationRetiresRoute(t *testing.T) {
	// A topology where a failure disconnects the destination entirely:
	// h1 - s1 - s2 - h2 with a single path.
	g := topology.NewGraph()
	for _, id := range []string{"s1", "s2"} {
		g.AddNode(topology.Node{ID: id, Kind: topology.KindToR})
	}
	g.AddNode(topology.Node{ID: "h1", Kind: topology.KindHost})
	g.AddNode(topology.Node{ID: "h2", Kind: topology.KindHost})
	for _, l := range [][2]string{{"h1", "s1"}, {"s1", "s2"}, {"s2", "h2"}} {
		if err := g.AddLink(l[0], l[1], 100*time.Microsecond, 5); err != nil {
			t.Fatal(err)
		}
	}
	n, err := Build(Config{
		Graph:    g,
		Protocol: controlplane.ProtoCicero,
		AppFactory: func() routing.App {
			return &routing.Rerouter{Inner: &routing.ShortestPath{Graph: g}, Graph: g}
		},
		Cost: protocol.Calibrated(),
		Seed: 53,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunFlows([]workload.Flow{{ID: 1, Src: "h1", Dst: "h2", SizeKB: 8}}, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Switches["s1"].Lookup("h1", "h2"); !ok {
		t.Fatal("route not installed")
	}
	n.Domains[0].Controllers[0].InjectEvent(routing.LinkDownEvent("admin", 1, "s1", "s2"))
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	// The stale rule must be gone: forwarding into a dead link is the
	// Fig. 2 failure mode.
	if r, ok := n.Switches["s1"].Lookup("h1", "h2"); ok {
		t.Fatalf("stale route to unreachable destination survives: %v", r)
	}
}

// TestRerouteOrderingNeverBlackHolesDuringTransition watches every rule
// application during the reroute and asserts the invariant across seeds:
// at the moment the ingress switches to the new path, every downstream
// switch of the new path already has its rule.
func TestRerouteOrderingNeverBlackHolesDuringTransition(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g := diamondGraph(t)
		n, err := Build(Config{
			Graph:    g,
			Protocol: controlplane.ProtoCicero,
			AppFactory: func() routing.App {
				return &routing.Rerouter{Inner: &routing.ShortestPath{Graph: g}, Graph: g}
			},
			Cost:   protocol.Calibrated(),
			Jitter: 0.8,
			Seed:   seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.RunFlows([]workload.Flow{{ID: 1, Src: "h2", Dst: "h5", SizeKB: 8}}, RunOptions{}); err != nil {
			t.Fatal(err)
		}
		// Sample the data plane at 20µs resolution: from the moment the
		// ingress adopts a next hop other than the dead link, the entire
		// replacement path must already be programmed.
		checked := false
		ingress := n.Switches["s2"]
		for probe := time.Duration(0); probe < 60*time.Millisecond; probe += 20 * time.Microsecond {
			n.Sim.At(n.Sim.Now()+probe, func() {
				r, ok := ingress.Lookup("h2", "h5")
				if !ok || r.Action.NextHop == "s5" {
					return // not yet rerouted (pre-repair window)
				}
				checked = true
				cur := r.Action.NextHop
				for cur != "h5" {
					sw, ok := n.Switches[cur]
					if !ok {
						t.Fatalf("seed %d: unknown hop %s", seed, cur)
					}
					rr, ok := sw.Lookup("h2", "h5")
					if !ok {
						t.Fatalf("seed %d: black hole at %s while ingress already rerouted", seed, cur)
					}
					cur = rr.Action.NextHop
				}
			})
		}
		n.Domains[0].Controllers[0].InjectEvent(routing.LinkDownEvent("admin", 1, "s2", "s5"))
		if _, err := n.Sim.Run(); err != nil {
			t.Fatal(err)
		}
		if !checked {
			t.Fatalf("seed %d: ingress never adopted the replacement route", seed)
		}
	}
}

var _ = openflow.FlowAdd // reference for doc clarity
