package core

import (
	"testing"
	"time"

	"cicero/internal/audit"
	"cicero/internal/controlplane"
	"cicero/internal/protocol"
	"cicero/internal/workload"
)

// End-to-end check of the §7 future-work audit mechanism: after a
// workload, the four controllers' decision ledgers verify individually
// and agree with each other; tampering with one ledger is detected.

func TestAuditLedgersAgreeAfterWorkload(t *testing.T) {
	g := smallPod(t)
	n := buildNet(t, Config{
		Graph:    g,
		Protocol: controlplane.ProtoCicero,
		Cost:     protocol.Calibrated(),
		Seed:     61,
	})
	flows, err := workload.Generate(g, workload.Config{
		Mix:              workload.HadoopMix(),
		Flows:            60,
		MeanInterarrival: time.Millisecond,
		Seed:             61,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunFlows(flows, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	ledgers := make(map[string][]audit.Record)
	for _, ctl := range n.Domains[0].Controllers {
		records := ctl.AuditRecords()
		if len(records) == 0 {
			t.Fatalf("%s produced no audit records", ctl.ID())
		}
		if err := audit.Verify(records); err != nil {
			t.Fatalf("%s ledger broken: %v", ctl.ID(), err)
		}
		ledgers[string(ctl.ID())] = records
	}
	if findings := audit.Audit(ledgers); len(findings) != 0 {
		t.Fatalf("honest run produced audit findings: %+v", findings)
	}
}

func TestAuditDetectsTamperedControllerHistory(t *testing.T) {
	g := smallPod(t)
	n := buildNet(t, Config{
		Graph:    g,
		Protocol: controlplane.ProtoCicero,
		Cost:     protocol.Calibrated(),
		Seed:     63,
	})
	flows, err := workload.Generate(g, workload.Config{
		Mix:              workload.HadoopMix(),
		Flows:            30,
		MeanInterarrival: time.Millisecond,
		Seed:             63,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunFlows(flows, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	ledgers := make(map[string][]audit.Record)
	for _, ctl := range n.Domains[0].Controllers {
		ledgers[string(ctl.ID())] = ctl.AuditRecords()
	}
	// A controller rewrites one of its recorded updates post hoc (hiding
	// what it actually signed): the auditor catches the broken chain.
	evil := ledgers["dom0/ctl/3"]
	for i := range evil {
		if evil[i].Kind == audit.KindUpdate {
			evil[i].Canonical = []byte("history rewritten")
			break
		}
	}
	findings := audit.Audit(ledgers)
	if len(findings) == 0 {
		t.Fatal("tampered history not detected")
	}
	found := false
	for _, f := range findings {
		for _, s := range f.Suspects {
			if s == "dom0/ctl/3" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("tampering controller not among suspects: %+v", findings)
	}
}
