// Package core assembles complete Cicero deployments on the simulator:
// topology, domains with their control planes and threshold keys, the
// data-plane switches, and the flow driver that measures the paper's
// metrics (flow completion time, update time, per-domain event counts,
// switch CPU utilization).
//
// It is the implementation behind the repository's public facade (package
// cicero at the module root).
package core

import (
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/fabric"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/routing"
	"cicero/internal/scheduler"
	"cicero/internal/tcrypto/pairing"
	"cicero/internal/topology"
)

// Config assembles a deployment.
type Config struct {
	// Graph is the data-plane topology (required).
	Graph *topology.Graph

	// Protocol selects centralized / crash-tolerant / Cicero.
	Protocol controlplane.Protocol
	// Aggregation selects switch- or controller-side aggregation (§4.2);
	// it only applies to ProtoCicero.
	Aggregation controlplane.Aggregation

	// ControllersPerDomain sizes each domain's control plane (paper: 4;
	// a centralized deployment forces 1).
	ControllersPerDomain int

	// DomainOf maps a topology node to its update domain (§3.3). Nil
	// puts everything in domain 0. Hosts inherit their switch's domain
	// implicitly — only switches matter.
	DomainOf func(n *topology.Node) int
	// NumDomains is the number of domains DomainOf maps onto.
	NumDomains int

	// Scheduler orders updates; nil defaults to the paper's reverse-path
	// scheduler.
	Scheduler scheduler.Scheduler
	// AppFactory overrides the routing application (default: shortest
	// path). It is called once per controller replica so stateful apps
	// stay replica-local.
	AppFactory func() routing.App
	// Jitter adds uniform random latency jitter as a fraction of each
	// link's latency, making transient-inconsistency windows observable.
	Jitter float64
	// PairRules makes the routing app install per-flow-pair rules, needed
	// by the unamortized setup/teardown mode.
	PairRules bool

	// Cost is the simulated-time cost model; zero value charges nothing.
	Cost protocol.CostModel
	// CryptoReal executes real signatures end to end.
	CryptoReal bool
	// Params selects the pairing parameter set; nil defaults to Fast254.
	Params *pairing.Params

	// Seed drives all simulation randomness.
	Seed int64

	// Fabric, when non-nil, is the transport the deployment is assembled
	// on (a live backend from internal/livenet). Nil builds the default
	// deterministic simulator, wired with the topology-derived latency
	// model. Live fabrics ignore Jitter, LANLatency and the simulated
	// parts of Cost (real work takes real time there), and the
	// simulator-bound drivers (RunFlows, MeasureUpdateTime) are
	// unavailable — drive flows through the fabric instead (see
	// internal/experiments/live.go).
	Fabric fabric.Fabric

	// LANLatency is the one-way latency between co-located nodes
	// (controller to controller of one domain, controller to its pod's
	// switches, in addition to fabric path latency).
	LANLatency time.Duration
	// ViewChangeTimeout bounds atomic-broadcast stalls (liveness under
	// controller failure).
	ViewChangeTimeout time.Duration
	// FailureDetector enables heartbeats when non-nil.
	FailureDetector *controlplane.FailureDetectorConfig

	// SwitchApplyHook, when set, is installed on every switch and observes
	// each update apply decision (used by the chaos invariant checkers).
	SwitchApplyHook func(sw string, id openflow.MsgID, phase uint64, mods []openflow.FlowMod, valid bool)
	// SwitchBatchHook, when set, additionally observes batch-amortized
	// update decisions with root and inclusion proof (the chaos engine's
	// Merkle-proof invariant attaches here).
	SwitchBatchHook func(sw string, m protocol.MsgBatchUpdate, valid bool)

	// BatchSize > 1 batches the atomic broadcast and amortizes one
	// threshold signature over each batch's Merkle root (ProtoCicero with
	// switch aggregation). <= 1 keeps the per-update path bit-identically.
	BatchSize int
	// BatchDelay bounds how long a partial batch waits before ordering.
	BatchDelay time.Duration

	// Metadata enables the TUF-style signed-metadata plane (ProtoCicero
	// only): each domain gets a threshold-signed root of trust at build
	// time, controllers publish policy targets/snapshot/timestamp sets
	// through the atomic broadcast, and every controller and switch keeps
	// a trusted store that enforces signatures, version monotonicity, and
	// freshness before config adoption (see internal/metarepo).
	Metadata bool
	// MetadataTTL bounds targets/snapshot lifetime (0: metarepo default).
	MetadataTTL time.Duration
	// MetadataTimestampTTL bounds the freshness proof (0: default).
	MetadataTimestampTTL time.Duration
	// MetadataRefresh is the leader's timestamp re-mint interval
	// (0: half the timestamp TTL).
	MetadataRefresh time.Duration
	// MetadataRefreshHorizon bounds the periodic refresh loop in simulated
	// time: > 0 refreshes until the horizon, < 0 refreshes forever, 0
	// disables the loop (timestamps are still minted per publication).
	MetadataRefreshHorizon time.Duration
}

// Defaulted returns the config with defaults applied.
func (c Config) Defaulted() Config {
	if c.Protocol == 0 {
		c.Protocol = controlplane.ProtoCicero
	}
	if c.Aggregation == 0 {
		c.Aggregation = controlplane.AggSwitch
	}
	if c.ControllersPerDomain == 0 {
		c.ControllersPerDomain = 4
	}
	if c.Protocol == controlplane.ProtoCentralized {
		c.ControllersPerDomain = 1
	}
	if c.NumDomains == 0 {
		c.NumDomains = 1
	}
	if c.Scheduler == nil {
		c.Scheduler = scheduler.ReversePath{}
	}
	if c.Params == nil {
		c.Params = pairing.Fast254()
	}
	if c.LANLatency == 0 {
		c.LANLatency = 100 * time.Microsecond
	}
	if c.ViewChangeTimeout == 0 {
		c.ViewChangeTimeout = 50 * time.Millisecond
	}
	return c
}

// ByPod maps switches to one domain per (dc, pod) pair, the paper's §6.3
// deployment. Fabric-level nodes (spines, interconnects, cores) go to the
// dedicated interconnect domain, which is the last domain index.
func ByPod(podsPerDC, interconnectDomain int) func(n *topology.Node) int {
	return func(n *topology.Node) int {
		if n.Pod < 0 {
			return interconnectDomain
		}
		return n.DC*podsPerDC + n.Pod
	}
}
