package core

import (
	"crypto/rand"
	"math/big"
	"testing"

	"cicero/internal/controlplane"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/simnet"
	"cicero/internal/tcrypto/pki"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

// These tests exercise the paper's threat model (§2.2/§3.2) end to end
// with real cryptography: a malicious controller — even an authenticated
// member of the control plane — cannot make switches apply updates without
// a quorum of t = ⌊(n−1)/3⌋+1 signature shares.

// buildSecure builds a real-crypto Cicero pod.
func buildSecure(t *testing.T, agg controlplane.Aggregation) *Network {
	t.Helper()
	cfg := topology.DefaultFabricConfig()
	cfg.RacksPerPod = 3
	cfg.HostsPerRack = 1
	g, err := topology.BuildSinglePod(cfg)
	if err != nil {
		t.Fatalf("BuildSinglePod: %v", err)
	}
	n, err := Build(Config{
		Graph:       g,
		Protocol:    controlplane.ProtoCicero,
		Aggregation: agg,
		Cost:        protocol.Calibrated(),
		CryptoReal:  true,
		Seed:        21,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

// evilNode is a Byzantine controller implementation used to inject
// forged traffic from a registered network position.
type evilNode struct{}

func (evilNode) HandleMessage(simnet.NodeID, simnet.Message) {}

func TestForgedUpdateRejectedWithoutQuorum(t *testing.T) {
	n := buildSecure(t, controlplane.AggSwitch)
	evil := simnet.NodeID("evil-controller")
	n.Net.Register(evil, evilNode{})

	// The attacker crafts an update installing a malicious route and
	// sends it with a garbage share, then with one replayed-looking share
	// index — never reaching the quorum of 3.
	target := topology.ToRName(0, 0, 0)
	mod := openflow.FlowMod{Op: openflow.FlowAdd, Switch: target, Rule: openflow.Rule{
		Priority: 99,
		Match:    openflow.Match{Src: openflow.Wildcard, Dst: "attacker-sink"},
		Action:   openflow.Action{Type: openflow.ActionOutput, NextHop: "attacker-sink"},
	}}
	id := openflow.MsgID{Origin: "evil", Seq: 1}
	sw := n.Switches[target]
	params := n.Scheme.Params
	junk := params.PointBytes(params.ScalarBaseMul(bigOne()))
	for idx := uint32(1); idx <= 2; idx++ {
		n.Net.Send(evil, simnet.NodeID(target), protocol.MsgUpdate{
			UpdateID:   id,
			Mods:       []openflow.FlowMod{mod},
			Phase:      0,
			From:       "evil",
			ShareIndex: idx,
			Share:      junk,
		}, 256)
	}
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := sw.Lookup("x", "attacker-sink"); ok {
		t.Fatal("switch installed a sub-quorum update")
	}

	// With a third junk share the quorum count is reached, but aggregate
	// verification must fail.
	n.Net.Send(evil, simnet.NodeID(target), protocol.MsgUpdate{
		UpdateID: id, Mods: []openflow.FlowMod{mod}, Phase: 0,
		From: "evil", ShareIndex: 3, Share: junk,
	}, 256)
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := sw.Lookup("x", "attacker-sink"); ok {
		t.Fatal("switch installed an update with forged shares")
	}
	if sw.UpdatesRejected == 0 {
		t.Fatal("forged update was not counted as rejected")
	}
}

// TestCompromisedControllerCannotForgeAlone gives the attacker a REAL key
// share (an insider) — still below the quorum, so its signed-but-lonely
// update must not be applied, while honest traffic continues.
func TestCompromisedControllerCannotForgeAlone(t *testing.T) {
	n := buildSecure(t, controlplane.AggSwitch)
	dom := n.Domains[0]
	insiderShare := dom.Shares[3] // a genuine share

	evil := simnet.NodeID("insider")
	n.Net.Register(evil, evilNode{})

	target := topology.ToRName(0, 0, 1)
	mod := openflow.FlowMod{Op: openflow.FlowAdd, Switch: target, Rule: openflow.Rule{
		Priority: 99,
		Match:    openflow.Match{Src: openflow.Wildcard, Dst: "exfil"},
		Action:   openflow.Action{Type: openflow.ActionOutput, NextHop: "exfil"},
	}}
	id := openflow.MsgID{Origin: "insider", Seq: 1}
	canonical := openflow.CanonicalUpdateBytes(id, 0, []openflow.FlowMod{mod})
	share := n.Scheme.SignShare(insiderShare, canonical)
	raw := n.Scheme.Params.PointBytes(share.Point)
	// The insider replays its single valid share under three different
	// claimed indices; only its own index verifies, and one share < t.
	for idx := uint32(1); idx <= 3; idx++ {
		n.Net.Send(evil, simnet.NodeID(target), protocol.MsgUpdate{
			UpdateID: id, Mods: []openflow.FlowMod{mod}, Phase: 0,
			From: "insider", ShareIndex: idx, Share: raw,
		}, 256)
	}
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Switches[target].Lookup("x", "exfil"); ok {
		t.Fatal("one compromised share sufficed to install an update")
	}
}

func TestPacketOutInjectionDropped(t *testing.T) {
	n := buildSecure(t, controlplane.AggSwitch)
	evil := simnet.NodeID("evil")
	n.Net.Register(evil, evilNode{})
	target := topology.ToRName(0, 0, 0)
	n.Net.Send(evil, simnet.NodeID(target), openflow.PacketOut{
		ID: openflow.MsgID{Origin: "evil", Seq: 1}, Switch: target,
		Src: "a", Dst: "b", Payload: "dos",
	}, 1500)
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Switches[target].UpdatesRejected != 1 {
		t.Fatalf("PACKET_OUT injection not rejected (rejected=%d)",
			n.Switches[target].UpdatesRejected)
	}
}

func TestForgedEventFromUnknownSourceIgnored(t *testing.T) {
	n := buildSecure(t, controlplane.AggSwitch)
	evilKeys, err := pki.NewKeyPair(rand.Reader, "ghost-switch")
	if err != nil {
		t.Fatal(err)
	}
	// NOT registered in the directory.
	evil := simnet.NodeID("ghost-switch")
	n.Net.Register(evil, evilNode{})
	ev := protocol.Event{
		ID:   openflow.MsgID{Origin: "ghost-switch", Seq: 1},
		Kind: protocol.EventFlowRequest,
		Src:  topology.HostName(0, 0, 0, 0),
		Dst:  topology.HostName(0, 0, 2, 0),
	}
	env := evilKeys.Seal(ev.Encode())
	for _, m := range n.Domains[0].Members {
		n.Net.Send(evil, simnet.NodeID(m), protocol.MsgEvent{Env: env}, 256)
	}
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, ctl := range n.Domains[0].Controllers {
		if ctl.EventsDelivered != 0 {
			t.Fatal("event from unregistered source was processed")
		}
	}
}

func TestMasqueradingEventRejected(t *testing.T) {
	n := buildSecure(t, controlplane.AggSwitch)
	// A registered but different identity signs an event claiming to be a
	// switch (the §2.2 masquerading threat).
	evilKeys, err := pki.NewKeyPair(rand.Reader, "evil-member")
	if err != nil {
		t.Fatal(err)
	}
	n.Directory.MustRegister(evilKeys)
	evil := simnet.NodeID("evil-member")
	n.Net.Register(evil, evilNode{})
	ev := protocol.Event{
		ID:   openflow.MsgID{Origin: topology.ToRName(0, 0, 0), Seq: 999},
		Kind: protocol.EventFlowRequest,
		Src:  topology.HostName(0, 0, 0, 0),
		Dst:  topology.HostName(0, 0, 2, 0),
	}
	env := evilKeys.Seal(ev.Encode())
	env.From = pki.Identity(topology.ToRName(0, 0, 0)) // claim switch identity
	for _, m := range n.Domains[0].Members {
		n.Net.Send(evil, simnet.NodeID(m), protocol.MsgEvent{Env: env}, 256)
	}
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, ctl := range n.Domains[0].Controllers {
		if ctl.EventsDelivered != 0 {
			t.Fatal("masqueraded event was processed")
		}
	}
}

// TestByzantineAggregatorCannotForge runs controller aggregation and makes
// the aggregator Byzantine: it forwards a forged aggregate. The switch
// must reject it, and (separately) honest switch-aggregation still works
// for the same update.
func TestByzantineAggregatorCannotForge(t *testing.T) {
	n := buildSecure(t, controlplane.AggController)
	dom := n.Domains[0]
	aggregator := dom.Members[0]
	target := topology.ToRName(0, 0, 2)

	mod := openflow.FlowMod{Op: openflow.FlowAdd, Switch: target, Rule: openflow.Rule{
		Priority: 99,
		Match:    openflow.Match{Src: openflow.Wildcard, Dst: "forged"},
		Action:   openflow.Action{Type: openflow.ActionOutput, NextHop: "forged"},
	}}
	id := openflow.MsgID{Origin: "agg-forge", Seq: 1}
	// The Byzantine aggregator signs with only ITS key share and claims
	// the result is the aggregate.
	canonical := openflow.CanonicalUpdateBytes(id, 0, []openflow.FlowMod{mod})
	lone := n.Scheme.SignShare(dom.Shares[0], canonical)
	n.Net.Send(simnet.NodeID(aggregator), simnet.NodeID(target), protocol.MsgAggUpdate{
		UpdateID: id, Mods: []openflow.FlowMod{mod}, Phase: 0,
		Signature: n.Scheme.Params.PointBytes(lone.Point),
	}, 256)
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Switches[target].Lookup("x", "forged"); ok {
		t.Fatal("switch accepted a single-share 'aggregate'")
	}
	if n.Switches[target].UpdatesRejected == 0 {
		t.Fatal("forged aggregate not rejected")
	}
}

// TestHonestQuorumStillWorksDespiteByzantineShare mixes one corrupted
// share into an otherwise honest switch-aggregation flow: CombineVerified
// filters it and the update applies.
func TestHonestQuorumStillWorksDespiteByzantineShare(t *testing.T) {
	n := buildSecure(t, controlplane.AggSwitch)
	dom := n.Domains[0]
	target := topology.ToRName(0, 0, 0)
	sw := n.Switches[target]

	mod := openflow.FlowMod{Op: openflow.FlowAdd, Switch: target, Rule: openflow.Rule{
		Priority: 10,
		Match:    openflow.Match{Src: openflow.Wildcard, Dst: "legit"},
		Action:   openflow.Action{Type: openflow.ActionOutput, NextHop: topology.EdgeName(0, 0, 0)},
	}}
	id := openflow.MsgID{Origin: "mixed", Seq: 1}
	canonical := openflow.CanonicalUpdateBytes(id, 0, []openflow.FlowMod{mod})

	evil := simnet.NodeID("byz-member")
	n.Net.Register(evil, evilNode{})
	// Byzantine share arrives first (index 1, corrupted).
	junk := n.Scheme.Params.PointBytes(n.Scheme.Params.ScalarBaseMul(bigOne()))
	n.Net.Send(evil, simnet.NodeID(target), protocol.MsgUpdate{
		UpdateID: id, Mods: []openflow.FlowMod{mod}, Phase: 0,
		From: "byz", ShareIndex: 1, Share: junk,
	}, 256)
	// Then three honest shares (indices 2..4).
	for i := 1; i <= 3; i++ {
		share := n.Scheme.SignShare(dom.Shares[i], canonical)
		n.Net.Send(evil, simnet.NodeID(target), protocol.MsgUpdate{
			UpdateID: id, Mods: []openflow.FlowMod{mod}, Phase: 0,
			From: "honest", ShareIndex: dom.Shares[i].Index,
			Share: n.Scheme.Params.PointBytes(share.Point),
		}, 256)
	}
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := sw.Lookup("x", "legit"); !ok {
		t.Fatal("honest quorum failed to install despite Byzantine share")
	}
}

// TestCrashBaselineAcceptsForgedUpdate is the negative control motivating
// Cicero: without quorum authentication, a single malicious controller
// fully controls the data plane.
func TestCrashBaselineAcceptsForgedUpdate(t *testing.T) {
	cfg := topology.DefaultFabricConfig()
	cfg.RacksPerPod = 3
	g, err := topology.BuildSinglePod(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(Config{
		Graph:                g,
		Protocol:             controlplane.ProtoCrash,
		ControllersPerDomain: 4,
		Cost:                 protocol.Calibrated(),
		CryptoReal:           true,
		Seed:                 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	evil := simnet.NodeID("evil")
	n.Net.Register(evil, evilNode{})
	target := topology.ToRName(0, 0, 0)
	mod := openflow.FlowMod{Op: openflow.FlowAdd, Switch: target, Rule: openflow.Rule{
		Priority: 99,
		Match:    openflow.Match{Src: openflow.Wildcard, Dst: "pwned"},
		Action:   openflow.Action{Type: openflow.ActionOutput, NextHop: "pwned"},
	}}
	n.Net.Send(evil, simnet.NodeID(target), protocol.MsgUpdate{
		UpdateID: openflow.MsgID{Origin: "evil", Seq: 1},
		Mods:     []openflow.FlowMod{mod},
	}, 256)
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Switches[target].Lookup("x", "pwned"); !ok {
		t.Fatal("negative control failed: crash baseline should accept unauthenticated updates")
	}
}

// TestCiceroSurvivesControllerCrash crashes one of four controllers and
// verifies flows still complete (t = 2 < remaining 3 signers... the
// quorum is 2 of 4; 3 live members still reach it).
func TestCiceroSurvivesControllerCrash(t *testing.T) {
	n := buildSecure(t, controlplane.AggSwitch)
	dom := n.Domains[0]
	// Crash a non-primary, non-bootstrap member.
	victim := dom.Members[3]
	n.Net.Crash(simnet.NodeID(victim))
	dom.Controllers[3].Stop()

	src := topology.HostName(0, 0, 0, 0)
	dst := topology.HostName(0, 0, 2, 0)
	results, err := n.RunFlows([]workload.Flow{{ID: 1, Src: src, Dst: dst, SizeKB: 64, Start: 0}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].SetupDelay == 0 {
		t.Fatalf("flow did not complete under one controller crash: %+v", results)
	}
}

// bigOne is a tiny helper for building junk points.
func bigOne() *big.Int { return big.NewInt(1) }
