package core

import (
	"crypto/rand"
	"testing"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/protocol"
	"cicero/internal/simnet"
	"cicero/internal/tcrypto/pki"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

// addJoiner constructs a not-yet-member controller that can be admitted
// through the membership protocol.
func addJoiner(t *testing.T, n *Network, dom *Domain, id pki.Identity) *controlplane.Controller {
	t.Helper()
	keys, err := pki.NewKeyPair(rand.Reader, id)
	if err != nil {
		t.Fatal(err)
	}
	n.Directory.MustRegister(keys)
	n.site[string(id)] = dom.Site
	joiner, err := controlplane.New(controlplane.Config{
		ID:         id,
		Domain:     dom.Index,
		Members:    dom.Members, // current membership; joiner is not in it
		Net:        n.Net,
		Cost:       n.Cfg.Cost,
		Keys:       keys,
		Directory:  n.Directory,
		Protocol:   controlplane.ProtoCicero,
		Scheme:     n.Scheme,
		GroupKey:   dom.GroupKey,
		App:        n.newApp(),
		Sched:      n.Cfg.Scheduler,
		Switches:   dom.Switches,
		CryptoReal: n.Cfg.CryptoReal,
	})
	if err != nil {
		t.Fatalf("joiner: %v", err)
	}
	return joiner
}

func TestAddControllerResharesAndKeepsPublicKey(t *testing.T) {
	n := buildSecure(t, controlplane.AggSwitch)
	dom := n.Domains[0]
	originalPK := dom.GroupKey.PK.Point

	joiner := addJoiner(t, n, dom, ControllerName(0, 5))
	if err := dom.Controllers[0].RequestAddController(joiner.ID()); err != nil {
		t.Fatalf("RequestAddController: %v", err)
	}
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Every controller (including the joiner) lands in phase 1 with five
	// members and an unchanged public key.
	all := append(append([]*controlplane.Controller(nil), dom.Controllers...), joiner)
	for _, ctl := range all {
		if ctl.Phase() != 1 {
			t.Fatalf("%s phase = %d, want 1", ctl.ID(), ctl.Phase())
		}
		if got := len(ctl.Members()); got != 5 {
			t.Fatalf("%s sees %d members, want 5", ctl.ID(), got)
		}
		if !ctl.GroupKey().PK.Point.Equal(originalPK) {
			t.Fatalf("%s group public key changed", ctl.ID())
		}
	}
	// n=5 keeps quorum t = floor(4/3)+1 = 2.
	if q := dom.Controllers[0].Quorum(); q != 2 {
		t.Fatalf("quorum = %d, want 2", q)
	}

	// The enlarged control plane must still install flows end to end with
	// real crypto (new shares, same public key on switches).
	src := topology.HostName(0, 0, 0, 0)
	dst := topology.HostName(0, 0, 2, 0)
	results, err := n.RunFlows([]workload.Flow{{ID: 1, Src: src, Dst: dst, SizeKB: 32, Start: 0}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].SetupDelay == 0 {
		t.Fatalf("post-add flow failed: %+v", results)
	}
	for _, sw := range n.Switches {
		if sw.UpdatesRejected != 0 {
			t.Fatalf("switch %s rejected honest post-reshare updates", sw.ID())
		}
	}
}

func TestRemoveControllerReshares(t *testing.T) {
	// Five members so removal keeps n >= 4.
	cfg := topology.DefaultFabricConfig()
	cfg.RacksPerPod = 3
	g, err := topology.BuildSinglePod(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(Config{
		Graph:                g,
		Protocol:             controlplane.ProtoCicero,
		ControllersPerDomain: 5,
		Cost:                 protocol.Calibrated(),
		CryptoReal:           true,
		Seed:                 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	dom := n.Domains[0]
	victim := dom.Members[4]
	n.Net.Crash(simnet.NodeID(victim))
	dom.Controllers[4].Stop()
	if err := dom.Controllers[1].RequestRemoveController(victim); err != nil {
		t.Fatalf("RequestRemoveController: %v", err)
	}
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, ctl := range dom.Controllers[:4] {
		if ctl.Phase() != 1 {
			t.Fatalf("%s phase = %d, want 1", ctl.ID(), ctl.Phase())
		}
		if got := len(ctl.Members()); got != 4 {
			t.Fatalf("%s sees %d members, want 4", ctl.ID(), got)
		}
	}
	// Flows still complete with the shrunken control plane.
	src := topology.HostName(0, 0, 0, 0)
	dst := topology.HostName(0, 0, 1, 0)
	results, err := n.RunFlows([]workload.Flow{{ID: 1, Src: src, Dst: dst, SizeKB: 32, Start: 0}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].SetupDelay == 0 {
		t.Fatalf("post-remove flow failed: %+v", results)
	}
}

func TestRemoveBelowMinimumRefused(t *testing.T) {
	n := buildSecure(t, controlplane.AggSwitch) // n = 4
	dom := n.Domains[0]
	if err := dom.Controllers[0].RequestRemoveController(dom.Members[3]); err != nil {
		t.Fatalf("RequestRemoveController: %v", err)
	}
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	// The change must be refused: the paper requires n >= 4 at all times.
	for _, ctl := range dom.Controllers {
		if ctl.Phase() != 0 || len(ctl.Members()) != 4 {
			t.Fatalf("%s accepted a change shrinking below 4 members", ctl.ID())
		}
	}
}

func TestFailureDetectorRemovesCrashedController(t *testing.T) {
	cfg := topology.DefaultFabricConfig()
	cfg.RacksPerPod = 2
	g, err := topology.BuildSinglePod(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(Config{
		Graph:                g,
		Protocol:             controlplane.ProtoCicero,
		ControllersPerDomain: 5,
		Cost:                 protocol.Calibrated(),
		Seed:                 33,
		FailureDetector: &controlplane.FailureDetectorConfig{
			Interval: 10 * time.Millisecond,
			Timeout:  35 * time.Millisecond,
			Horizon:  300 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dom := n.Domains[0]
	victim := dom.Members[2]
	n.Net.Crash(simnet.NodeID(victim))
	dom.Controllers[2].Stop()
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Surviving members should have detected, agreed on, and executed the
	// removal (phase 1, 4 members).
	for i, ctl := range dom.Controllers {
		if i == 2 {
			continue
		}
		if ctl.Phase() != 1 {
			t.Fatalf("%s phase = %d, want 1 (failure not handled)", ctl.ID(), ctl.Phase())
		}
		members := ctl.Members()
		if len(members) != 4 {
			t.Fatalf("%s sees %d members, want 4", ctl.ID(), len(members))
		}
		for _, m := range members {
			if m == victim {
				t.Fatalf("%s still lists the crashed controller", ctl.ID())
			}
		}
	}
}

func TestAggregatorFailoverAfterRemoval(t *testing.T) {
	// Controller aggregation with the AGGREGATOR removed: the next-lowest
	// member must take over and flows must still complete.
	cfg := topology.DefaultFabricConfig()
	cfg.RacksPerPod = 3
	g, err := topology.BuildSinglePod(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(Config{
		Graph:                g,
		Protocol:             controlplane.ProtoCicero,
		Aggregation:          controlplane.AggController,
		ControllersPerDomain: 5,
		Cost:                 protocol.Calibrated(),
		CryptoReal:           true,
		Seed:                 35,
	})
	if err != nil {
		t.Fatal(err)
	}
	dom := n.Domains[0]
	oldAgg := dom.Members[0]
	n.Net.Crash(simnet.NodeID(oldAgg))
	dom.Controllers[0].Stop()
	if err := dom.Controllers[1].RequestRemoveController(oldAgg); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Switches must have been re-pointed at the new aggregator.
	newAgg := dom.Members[1]
	for _, sw := range n.Switches {
		if sw.Aggregator() != newAgg {
			t.Fatalf("switch %s aggregator = %q, want %q", sw.ID(), sw.Aggregator(), newAgg)
		}
	}
	src := topology.HostName(0, 0, 0, 0)
	dst := topology.HostName(0, 0, 2, 0)
	results, err := n.RunFlows([]workload.Flow{{ID: 1, Src: src, Dst: dst, SizeKB: 32, Start: 0}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].SetupDelay == 0 {
		t.Fatalf("flow failed after aggregator failover: %+v", results)
	}
}

func TestFlowsDuringMembershipChangeEventuallyComplete(t *testing.T) {
	n := buildSecure(t, controlplane.AggSwitch)
	dom := n.Domains[0]
	joiner := addJoiner(t, n, dom, ControllerName(0, 5))

	// Kick off the add and inject flows around it.
	n.Sim.Schedule(0, func() {
		if err := dom.Controllers[0].RequestAddController(joiner.ID()); err != nil {
			t.Errorf("RequestAddController: %v", err)
		}
	})
	flows := []workload.Flow{
		{ID: 1, Src: topology.HostName(0, 0, 0, 0), Dst: topology.HostName(0, 0, 1, 0), SizeKB: 16, Start: 100 * time.Microsecond},
		{ID: 2, Src: topology.HostName(0, 0, 1, 0), Dst: topology.HostName(0, 0, 2, 0), SizeKB: 16, Start: 2 * time.Millisecond},
		{ID: 3, Src: topology.HostName(0, 0, 2, 0), Dst: topology.HostName(0, 0, 0, 0), SizeKB: 16, Start: 60 * time.Millisecond},
	}
	results, err := n.RunFlows(flows, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("completed %d flows, want 3 (events queued during the change must resume)", len(results))
	}
	if joiner.Phase() != 1 {
		t.Fatalf("joiner never completed the membership change")
	}
}
