package core

import (
	"testing"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/routing"
	"cicero/internal/scheduler"
	"cicero/internal/simnet"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

// These tests reproduce the paper's Table 1 scenarios: the transient
// inconsistencies of Figs. 1-3 occur under unordered ("immediate")
// updates and are prevented by Cicero's reverse-path update scheduler.

// diamondGraph is the five-switch topology of Figs. 1-3 with hosts.
func diamondGraph(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph()
	for _, id := range []string{"s1", "s2", "s3", "s4", "s5"} {
		g.AddNode(topology.Node{ID: id, Kind: topology.KindToR})
	}
	for _, id := range []string{"h1", "h2", "h5"} {
		g.AddNode(topology.Node{ID: id, Kind: topology.KindHost})
	}
	links := [][2]string{
		{"s1", "s3"}, {"s2", "s3"}, {"s2", "s5"},
		{"s3", "s4"}, {"s4", "s5"},
		{"h1", "s1"}, {"h2", "s2"}, {"h5", "s5"},
	}
	for _, l := range links {
		if err := g.AddLink(l[0], l[1], 200*time.Microsecond, 5); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// applyOrder drives one flow setup and returns each path switch's rule
// application time.
func applyOrder(t *testing.T, sched scheduler.Scheduler, seed int64) map[string]simnet.Time {
	t.Helper()
	g := diamondGraph(t)
	n, err := Build(Config{
		Graph:     g,
		Protocol:  controlplane.ProtoCicero,
		Scheduler: sched,
		Cost:      protocol.Calibrated(),
		Jitter:    0.8,
		Seed:      seed,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	path := g.ShortestPath("h1", "h5")
	switches := g.SwitchesOnPath(path)
	times := make(map[string]simnet.Time, len(switches))
	for _, sw := range switches {
		sw := sw
		n.Switches[sw].Subscribe("h1", "h5", func(at simnet.Time) { times[sw] = at })
	}
	if _, err := n.RunFlows([]workload.Flow{{ID: 1, Src: "h1", Dst: "h5", SizeKB: 16, Start: 0}}, RunOptions{}); err != nil {
		t.Fatalf("RunFlows: %v", err)
	}
	for _, sw := range switches {
		if _, ok := times[sw]; !ok {
			t.Fatalf("switch %s never applied the rule", sw)
		}
	}
	return times
}

// pathSwitches returns the switch sequence of the h1->h5 route.
func pathSwitches(t *testing.T) []string {
	t.Helper()
	g := diamondGraph(t)
	return g.SwitchesOnPath(g.ShortestPath("h1", "h5"))
}

// TestReversePathNeverBlackHoles (Fig. 2 / Table 1 row 2): under the
// reverse-path scheduler, every switch's rule is applied only after its
// downstream neighbor's, for every seed — no packet can be forwarded
// toward a switch that would drop it.
func TestReversePathNeverBlackHoles(t *testing.T) {
	switches := pathSwitches(t)
	for seed := int64(1); seed <= 10; seed++ {
		times := applyOrder(t, scheduler.ReversePath{}, seed)
		for i := 0; i+1 < len(switches); i++ {
			up, down := switches[i], switches[i+1]
			if times[up] < times[down] {
				t.Fatalf("seed %d: upstream %s applied at %v before downstream %s at %v",
					seed, up, times[up], down, times[down])
			}
		}
	}
}

// TestImmediateSchedulerExhibitsTransientBlackHole is the negative
// control: with unordered updates and link jitter, some seed applies an
// upstream rule before its downstream — the Fig. 2 transient.
func TestImmediateSchedulerExhibitsTransientBlackHole(t *testing.T) {
	switches := pathSwitches(t)
	violated := false
	for seed := int64(1); seed <= 10 && !violated; seed++ {
		times := applyOrder(t, scheduler.Immediate{}, seed)
		for i := 0; i+1 < len(switches); i++ {
			if times[switches[i]] < times[switches[i+1]] {
				violated = true
				break
			}
		}
	}
	if !violated {
		t.Fatal("immediate scheduler never produced an inconsistency window; negative control is broken")
	}
}

// TestFirewallInvariantUnderCicero (Fig. 1 / Table 1 row 1): a firewall
// drop for h1->h5 installs at the ingress before any routing rule lets
// h1's packets through, under every seed. The firewall app emits the
// drop as the only mod, so ordering is trivially safe — the invariant
// checked end to end is that no forwarding rule for the blocked pair ever
// exists anywhere.
func TestFirewallInvariantUnderCicero(t *testing.T) {
	g := diamondGraph(t)
	n, err := Build(Config{
		Graph:    g,
		Protocol: controlplane.ProtoCicero,
		AppFactory: func() routing.App {
			return &routing.Firewall{
				Inner:   &routing.ShortestPath{Graph: g},
				Graph:   g,
				Blocked: []routing.FirewallRule{{Src: "h1", Dst: "h5"}},
			}
		},
		Cost: protocol.Calibrated(),
		Seed: 3,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// The blocked flow must never complete; the allowed flow must.
	flows := []workload.Flow{
		{ID: 1, Src: "h1", Dst: "h5", SizeKB: 16, Start: 0},
		{ID: 2, Src: "h2", Dst: "h5", SizeKB: 16, Start: time.Millisecond},
	}
	results, err := n.RunFlows(flows, RunOptions{})
	if err != nil {
		t.Fatalf("RunFlows: %v", err)
	}
	completedBlocked := false
	completedAllowed := false
	for _, r := range results {
		switch r.Flow.ID {
		case 1:
			completedBlocked = true
		case 2:
			completedAllowed = true
		}
	}
	if completedBlocked {
		t.Fatal("blocked flow completed despite firewall policy")
	}
	if !completedAllowed {
		t.Fatal("allowed flow did not complete")
	}
	// The drop rule must exist at the ingress.
	rule, ok := n.Switches["s1"].Lookup("h1", "h5")
	if !ok || rule.Action.Type != openflow.ActionDrop {
		t.Fatalf("ingress drop rule missing: %v (ok=%v)", rule, ok)
	}
	// And the ingress never forwards the blocked pair.
	if r, ok := n.Switches["s1"].Lookup("h1", "h5"); ok && r.Action.Type != openflow.ActionDrop {
		t.Fatalf("ingress forwards blocked traffic: %v", r)
	}
}

// TestCongestionFreedomWithLoadBalancer (Fig. 3 / Table 1 row 3): moving
// flows with the bandwidth-aware app never reserves more than a link's
// capacity (the app refuses over-provisioned paths when an alternative
// exists).
func TestCongestionFreedomWithLoadBalancer(t *testing.T) {
	g := diamondGraph(t)
	app := &routing.LoadBalancer{Graph: g, GbpsPerFlow: 5}
	// Two concurrent 5 Gbps flows h2 -> h5 on 5 Gbps links: the second
	// must avoid the direct s2-s5 link the first one filled.
	for i := uint64(1); i <= 2; i++ {
		if _, err := app.PlanFlow(protocol.Event{
			ID:   pathMsgID(i),
			Kind: protocol.EventFlowRequest,
			Src:  "h2", Dst: "h5",
		}); err != nil {
			t.Fatalf("PlanFlow %d: %v", i, err)
		}
	}
	// No fabric link over capacity.
	for _, pair := range [][2]string{{"s2", "s5"}, {"s2", "s3"}, {"s3", "s4"}, {"s4", "s5"}, {"s1", "s3"}} {
		if r := app.Reserved(pair[0], pair[1]); r > 5 {
			t.Fatalf("link %s-%s over-provisioned: %v/5", pair[0], pair[1], r)
		}
	}
}

// pathMsgID builds a distinct event id.
func pathMsgID(seq uint64) openflow.MsgID {
	return openflow.MsgID{Origin: "table1", Seq: seq}
}
