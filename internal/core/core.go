package core
