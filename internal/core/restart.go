package core

import (
	"fmt"

	"cicero/internal/controlplane"
	"cicero/internal/dataplane"
	"cicero/internal/fabric"
)

// Crash/restart plumbing for live deployments. The fabric models the
// machine (Crash drops traffic and purges the mailbox; Restart brings the
// machine back); these helpers model the process: they rebuild the node's
// runtime object from its durable provisioning (identity keys, threshold
// share, topology) with empty volatile state, and kick off the protocol's
// recovery path. Call fabric.Restart first so the replacement can talk.

// RestartController replaces a crashed controller with a fresh instance
// and starts crash recovery (peer state transfer + broadcast fast-
// forward; see controlplane/recovery.go). The routing app is rebuilt too,
// so no pre-crash volatile state survives.
func (n *Network) RestartController(dom, slot int) (*controlplane.Controller, error) {
	if dom < 0 || dom >= len(n.Domains) {
		return nil, fmt.Errorf("core: restart controller: domain %d out of range", dom)
	}
	d := n.Domains[dom]
	if slot < 0 || slot >= len(d.Controllers) {
		return nil, fmt.Errorf("core: restart controller: slot %d out of range in domain %d", slot, dom)
	}
	old := d.Controllers[slot]
	id := old.ID()
	cfg, ok := n.ctlConfigs[id]
	if !ok {
		return nil, fmt.Errorf("core: restart controller: no stored config for %s", id)
	}
	// Kill the old instance inside its serial context so any of its timers
	// that survived the crash find it stopped.
	n.Fab.Invoke(fabric.NodeID(id), old.Stop)
	cfg.App = n.newApp()
	cfg.CrashRecovery = true          // born mute until peer state transfer adopts
	ctl, err := controlplane.New(cfg) // re-registers the node's handler
	if err != nil {
		return nil, fmt.Errorf("core: restart controller %s: %w", id, err)
	}
	d.Controllers[slot] = ctl
	n.Fab.Invoke(fabric.NodeID(id), ctl.StartRecovery)
	return ctl, nil
}

// RestartSwitch replaces a crashed switch with a fresh instance (empty
// flow table) and requests a resync: every controller retransmits the
// updates it logged for this switch, and the table rebuilds through the
// ordinary quorum-authentication path.
func (n *Network) RestartSwitch(id string) (*dataplane.Switch, error) {
	cfg, ok := n.swConfigs[id]
	if !ok {
		return nil, fmt.Errorf("core: restart switch: no stored config for %s", id)
	}
	// The replacement instance gets a fresh event-id namespace: a reset
	// sequence counter under the same boot epoch would collide with
	// pre-crash event ids that controllers already dedup on.
	cfg.BootEpoch++
	n.swConfigs[id] = cfg
	dom := n.domainOfSwitch[id]
	d := n.Domains[dom]
	sw, err := dataplane.New(cfg) // re-registers the node's handler
	if err != nil {
		return nil, fmt.Errorf("core: restart switch %s: %w", id, err)
	}
	quorum := controlplane.CiceroQuorum(len(d.Members))
	if n.Cfg.Protocol != controlplane.ProtoCicero {
		quorum = 1
	}
	sw.Bootstrap(d.Members, d.Aggregator, quorum)
	n.Switches[id] = sw
	n.Fab.Invoke(fabric.NodeID(id), sw.RequestResync)
	n.Fab.Invoke(fabric.NodeID(id), sw.RequestMeta) // re-fetch verified metadata (no-op when disabled)
	return sw, nil
}
