package core

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"cicero/internal/audit"
	"cicero/internal/controlplane"
	"cicero/internal/metrics"
	"cicero/internal/protocol"
	"cicero/internal/workload"
)

// tableDigestLines canonicalizes every switch's flow table for comparison
// across runs (rule insertion order may differ; content must not).
func tableDigestLines(t *testing.T, n *Network) []string {
	t.Helper()
	var lines []string
	ids := make([]string, 0, len(n.Switches))
	for id := range n.Switches {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, r := range n.Switches[id].Table().Rules() {
			lines = append(lines, fmt.Sprintf("%s|%d|%s|%s|%d",
				id, r.Priority, r.Match, r.Action, r.Cookie))
		}
	}
	sort.Strings(lines)
	return lines
}

// contentDigests returns each controller's order-insensitive ledger digest.
func contentDigests(n *Network) map[string][32]byte {
	out := make(map[string][32]byte)
	for _, d := range n.Domains {
		for _, ctl := range d.Controllers {
			out[string(ctl.ID())] = audit.ContentDigest(ctl.AuditRecords())
		}
	}
	return out
}

// runBatched assembles a Cicero deployment with the given batch size and
// drives a dense flow trace through it (tight interarrival so the batch
// window actually accumulates more than one event).
func runBatched(t *testing.T, batch, flows int, cryptoReal bool) *Network {
	t.Helper()
	g := smallPod(t)
	n := buildNet(t, Config{
		Graph:      g,
		Protocol:   controlplane.ProtoCicero,
		Cost:       protocol.Calibrated(),
		CryptoReal: cryptoReal,
		Seed:       1,
		BatchSize:  batch,
	})
	trace, err := workload.Generate(g, workload.Config{
		Mix:              workload.HadoopMix(),
		Flows:            flows,
		MeanInterarrival: 200 * time.Microsecond,
		Seed:             42,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	results, err := n.RunFlows(trace, RunOptions{})
	if err != nil {
		t.Fatalf("RunFlows(batch=%d): %v", batch, err)
	}
	if len(results) != flows {
		t.Fatalf("batch=%d completed %d flows, want %d", batch, len(results), flows)
	}
	for _, sw := range n.Switches {
		if sw.UpdatesRejected != 0 {
			t.Errorf("batch=%d: switch %s rejected %d updates in an honest run",
				batch, sw.ID(), sw.UpdatesRejected)
		}
	}
	return n
}

// TestBatchedMatchesUnbatched is the correctness gate of the batching
// layer: a batched run must converge to exactly the same flow tables and
// the same audit-ledger content as the per-update baseline. ChainDigest is
// deliberately not compared — update-record append order depends on ack
// timing, which batching legitimately changes.
func TestBatchedMatchesUnbatched(t *testing.T) {
	ref := runBatched(t, 1, 40, false)
	got := runBatched(t, 8, 40, false)

	refLines := tableDigestLines(t, ref)
	gotLines := tableDigestLines(t, got)
	if len(refLines) == 0 {
		t.Fatal("reference run installed no rules")
	}
	if fmt.Sprint(refLines) != fmt.Sprint(gotLines) {
		t.Fatalf("flow tables diverge: batch=1 has %d rules, batch=8 has %d", len(refLines), len(gotLines))
	}

	refDigests := contentDigests(ref)
	gotDigests := contentDigests(got)
	for id, want := range refDigests {
		if gotDigests[id] != want {
			t.Errorf("controller %s: ledger content digest diverges between batch=1 and batch=8", id)
		}
	}

	var signedBatches uint64
	for _, d := range got.Domains {
		for _, ctl := range d.Controllers {
			signedBatches += ctl.BatchesSigned
		}
	}
	if signedBatches == 0 {
		t.Fatal("batch=8 run signed no batches (batched path never engaged)")
	}
	for _, d := range ref.Domains {
		for _, ctl := range d.Controllers {
			if ctl.BatchesSigned != 0 {
				t.Fatalf("batch=1 run signed %d batches; must stay on the legacy path", ctl.BatchesSigned)
			}
		}
	}
}

// TestBatchedRealCryptoAmortizes runs real BLS end to end and checks the
// whole point of the layer: batched verification performs strictly fewer
// pairing operations than per-update verification, while applying the same
// updates with zero rejections.
func TestBatchedRealCryptoAmortizes(t *testing.T) {
	pairingOps := func() uint64 {
		s := metrics.Crypto.Snapshot()
		return s["pairings"] + s["prepared_pairings"] + s["pairing_products"]
	}

	before := pairingOps()
	ref := runBatched(t, 1, 16, true)
	unbatched := pairingOps() - before

	before = pairingOps()
	got := runBatched(t, 8, 16, true)
	batched := pairingOps() - before

	var refApplied, gotApplied uint64
	for _, sw := range ref.Switches {
		refApplied += sw.UpdatesApplied
	}
	for _, sw := range got.Switches {
		gotApplied += sw.UpdatesApplied
	}
	if refApplied == 0 || refApplied != gotApplied {
		t.Fatalf("applied updates diverge: batch=1 %d, batch=8 %d", refApplied, gotApplied)
	}
	if batched >= unbatched {
		t.Fatalf("batching did not amortize pairings: batch=1 used %d, batch=8 used %d", unbatched, batched)
	}
}
