package core

import (
	"testing"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/protocol"
	"cicero/internal/topology"
)

// TestMembershipChangeNotifiesPeerDomains covers the final step of §4.3:
// after a domain's control plane changes, every other domain's view of it
// is updated so forwarded events keep reaching valid recipients.
func TestMembershipChangeNotifiesPeerDomains(t *testing.T) {
	cfg := topology.InterconnectPodsConfig{
		Fabric:               topology.DefaultFabricConfig(),
		Pods:                 2,
		InterconnectSwitches: 2,
		EdgeInterconnect:     50 * time.Microsecond,
	}
	cfg.Fabric.RacksPerPod = 2
	g, err := topology.BuildInterconnectedPods(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(Config{
		Graph:      g,
		Protocol:   controlplane.ProtoCicero,
		NumDomains: 3,
		DomainOf:   ByPod(2, 2),
		Cost:       protocol.Calibrated(),
		Seed:       71,
	})
	if err != nil {
		t.Fatal(err)
	}
	dom0 := n.Domains[0]
	joiner := addJoiner(t, n, dom0, ControllerName(0, 5))
	if err := dom0.Controllers[0].RequestAddController(joiner.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if joiner.Phase() != 1 {
		t.Fatal("membership change did not complete")
	}
	// Every controller of domains 1 and 2 must now list five members for
	// domain 0, including the joiner.
	for _, dom := range n.Domains[1:] {
		for _, ctl := range dom.Controllers {
			view := ctl.PeerView(0)
			if len(view) != 5 {
				t.Fatalf("%s sees %d members in domain 0, want 5", ctl.ID(), len(view))
			}
			found := false
			for _, m := range view {
				if m == joiner.ID() {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s's view of domain 0 misses the joiner", ctl.ID())
			}
		}
	}
}
