package core

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/protocol"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

// The paper proves (§4.4) that Cicero provides event-linearizability:
// its execution is indistinguishable from a correct sequential execution
// of a single controller enforcing the same updates. This test checks the
// property operationally: the same flow trace run through the replicated
// Byzantine-tolerant deployment and through the sequential centralized
// reference must leave every switch with an equivalent flow table.

// tableFingerprint canonically serializes a switch's rules.
func tableFingerprint(n *Network, sw string) string {
	rules := n.Switches[sw].Table().Rules()
	lines := make([]string, len(rules))
	for i, r := range rules {
		lines[i] = r.String()
	}
	sort.Strings(lines)
	return fmt.Sprint(lines)
}

func TestEventLinearizabilityAgainstSequentialReference(t *testing.T) {
	cfg := topology.DefaultFabricConfig()
	cfg.RacksPerPod = 6
	cfg.HostsPerRack = 2
	g, err := topology.BuildSinglePod(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := workload.Generate(g, workload.Config{
		Mix:              workload.HadoopMix(),
		Flows:            120,
		MeanInterarrival: time.Millisecond,
		Seed:             17,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(proto controlplane.Protocol, agg controlplane.Aggregation, ctls int) *Network {
		n, err := Build(Config{
			Graph:                g,
			Protocol:             proto,
			Aggregation:          agg,
			ControllersPerDomain: ctls,
			Cost:                 protocol.Calibrated(),
			Seed:                 17,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.RunFlows(flows, RunOptions{}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	reference := run(controlplane.ProtoCentralized, 0, 1)
	cicero := run(controlplane.ProtoCicero, controlplane.AggSwitch, 4)
	ciceroAgg := run(controlplane.ProtoCicero, controlplane.AggController, 4)

	for _, node := range g.NodesOfKind(topology.KindToR) {
		want := tableFingerprint(reference, node.ID)
		if got := tableFingerprint(cicero, node.ID); got != want {
			t.Fatalf("switch %s diverged from sequential reference:\nref:    %s\ncicero: %s",
				node.ID, want, got)
		}
		if got := tableFingerprint(ciceroAgg, node.ID); got != want {
			t.Fatalf("switch %s (agg mode) diverged from sequential reference", node.ID)
		}
	}
	for _, node := range g.NodesOfKind(topology.KindEdge) {
		want := tableFingerprint(reference, node.ID)
		if got := tableFingerprint(cicero, node.ID); got != want {
			t.Fatalf("edge switch %s diverged from sequential reference", node.ID)
		}
	}
}

// TestLinearizabilityUnderControllerCrash repeats the check with one of
// the four controllers crashed mid-trace: the surviving quorum must still
// drive the data plane to the reference state.
func TestLinearizabilityUnderControllerCrash(t *testing.T) {
	cfg := topology.DefaultFabricConfig()
	cfg.RacksPerPod = 4
	cfg.HostsPerRack = 1
	g, err := topology.BuildSinglePod(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := workload.Generate(g, workload.Config{
		Mix:              workload.HadoopMix(),
		Flows:            60,
		MeanInterarrival: time.Millisecond,
		Seed:             19,
	})
	if err != nil {
		t.Fatal(err)
	}
	reference, err := Build(Config{
		Graph: g, Protocol: controlplane.ProtoCentralized,
		Cost: protocol.Calibrated(), Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reference.RunFlows(flows, RunOptions{}); err != nil {
		t.Fatal(err)
	}

	crashed, err := Build(Config{
		Graph: g, Protocol: controlplane.ProtoCicero,
		Cost: protocol.Calibrated(), Seed: 19,
		ViewChangeTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Crash a non-primary controller a third of the way in.
	dom := crashed.Domains[0]
	crashed.Sim.Schedule(flows[len(flows)/3].Start, func() {
		crashed.Net.Crash("dom0/ctl/4")
		dom.Controllers[3].Stop()
	})
	if _, err := crashed.RunFlows(flows, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, node := range g.NodesOfKind(topology.KindToR) {
		if tableFingerprint(reference, node.ID) != tableFingerprint(crashed, node.ID) {
			t.Fatalf("switch %s diverged under controller crash", node.ID)
		}
	}
}
