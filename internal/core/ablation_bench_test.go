package core

import (
	"testing"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/protocol"
	"cicero/internal/scheduler"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: what
// each Cicero ingredient costs relative to the alternatives. Run with
//
//	go test ./internal/core -bench=Ablation -benchmem

// benchTopology is a small pod reused across ablations.
func benchTopology(b *testing.B) *topology.Graph {
	b.Helper()
	cfg := topology.DefaultFabricConfig()
	cfg.RacksPerPod = 6
	cfg.HostsPerRack = 2
	g, err := topology.BuildSinglePod(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchFlows generates a short deterministic trace.
func benchFlows(b *testing.B, g *topology.Graph) []workload.Flow {
	b.Helper()
	flows, err := workload.Generate(g, workload.Config{
		Mix:              workload.HadoopMix(),
		Flows:            100,
		MeanInterarrival: time.Millisecond,
		Seed:             5,
	})
	if err != nil {
		b.Fatal(err)
	}
	return flows
}

// runAblation builds and runs one configuration per iteration.
func runAblation(b *testing.B, mutate func(*Config)) {
	b.Helper()
	g := benchTopology(b)
	flows := benchFlows(b, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := Config{
			Graph:    g,
			Protocol: controlplane.ProtoCicero,
			Cost:     protocol.Calibrated(),
			Seed:     5,
		}
		mutate(&cfg)
		n, err := Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := n.RunFlows(flows, RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSchedulerReversePath measures the consistency
// scheduler's cost: dependent updates serialize on acknowledgements.
func BenchmarkAblationSchedulerReversePath(b *testing.B) {
	runAblation(b, func(c *Config) { c.Scheduler = scheduler.ReversePath{} })
}

// BenchmarkAblationSchedulerImmediate is the unordered (inconsistent)
// alternative: all updates in parallel, no ack gating.
func BenchmarkAblationSchedulerImmediate(b *testing.B) {
	runAblation(b, func(c *Config) { c.Scheduler = scheduler.Immediate{} })
}

// BenchmarkAblationAggregationSwitch has switches aggregate shares.
func BenchmarkAblationAggregationSwitch(b *testing.B) {
	runAblation(b, func(c *Config) { c.Aggregation = controlplane.AggSwitch })
}

// BenchmarkAblationAggregationController funnels shares through the
// aggregator controller.
func BenchmarkAblationAggregationController(b *testing.B) {
	runAblation(b, func(c *Config) { c.Aggregation = controlplane.AggController })
}

// BenchmarkAblationOrderingBFT isolates the atomic-broadcast choice: the
// full Byzantine ordering used by Cicero...
func BenchmarkAblationOrderingBFT(b *testing.B) {
	runAblation(b, func(c *Config) { c.Protocol = controlplane.ProtoCicero })
}

// BenchmarkAblationOrderingCrash ...versus crash-tolerant ordering with
// no update authentication (the security ablation).
func BenchmarkAblationOrderingCrash(b *testing.B) {
	runAblation(b, func(c *Config) { c.Protocol = controlplane.ProtoCrash })
}

// BenchmarkAblationRealCrypto prices executing the actual pairing-based
// threshold signatures instead of charging simulated time only.
func BenchmarkAblationRealCrypto(b *testing.B) {
	runAblation(b, func(c *Config) { c.CryptoReal = true })
}

// BenchmarkAblationDomainSplit prices splitting one pod's control plane
// into rack-partitioned domains (intra-pod parallelism).
func BenchmarkAblationDomainSplit(b *testing.B) {
	runAblation(b, func(c *Config) {
		c.NumDomains = 2
		c.DomainOf = func(n *topology.Node) int {
			if n.Kind == topology.KindToR && n.Rack >= 3 {
				return 1
			}
			return 0
		}
	})
}
