// Package fabric defines the narrow transport seam between Cicero's
// protocol components (controllers, switches, BFT replicas) and whatever
// carries their messages. The protocol code is written against the Fabric
// interface only, so the identical controller/switch/BFT logic runs on:
//
//   - simnet: the deterministic discrete-event simulator (virtual time,
//     bit-reproducible runs from a seed) — internal/simnet;
//   - inproc: a live in-process backend (one goroutine mailbox per node,
//     wall-clock timers, channel transport) — internal/livenet;
//   - tcp: a live backend over localhost TCP sockets with length-prefixed
//     frames and per-peer reconnect — internal/livenet.
//
// The seam is deliberately minimal: registration, asynchronous datagram
// sends (delivery is best-effort; protocols must tolerate loss), per-node
// timers, CPU accounting, a clock, and crash/partition queries. Anything
// richer (fault filters, jitter, bandwidth models) stays backend-specific.
package fabric

import "time"

// NodeID names a node on the fabric (switch, controller, host).
type NodeID string

// Message is an opaque protocol message. Handlers type-switch on it. Live
// backends that cross a real wire serialize messages with the wire codec
// (internal/protocol.WireCodec); within a process messages pass by value.
type Message any

// Time is a fabric timestamp: virtual time since simulation start on
// simnet, wall-clock time since fabric creation on live backends.
type Time = time.Duration

// FaultAction tells a backend what to do with one in-flight message. The
// zero value means "deliver normally". Fields compose: a message can be
// replaced, delayed, and duplicated in one action; Drop wins over the rest.
type FaultAction struct {
	// Drop discards the message (counted as an injected drop).
	Drop bool
	// Delay adds extra latency on top of the link's own delay.
	Delay time.Duration
	// Duplicates injects this many extra copies of the message, each
	// delivered independently (so copies may reorder).
	Duplicates int
	// Replace, when non-nil, substitutes the delivered payload (corruption
	// and Byzantine mutation). The original msg is left untouched; filters
	// must deep-copy before mutating shared structures.
	Replace Message
}

// Filter inspects every message that passed the crash/partition checks and
// decides its fate. On simnet it runs synchronously on the simulator loop;
// on live backends it runs on whatever goroutine called Send, so filters
// used live must be safe for concurrent use. A nil filter delivers
// everything normally.
type Filter func(from, to NodeID, msg Message, size int) FaultAction

// FaultInjector is the optional fault plane a fabric may expose: the chaos
// engine installs one Filter that adjudicates every admitted message, the
// same way on simnet and on the live backends.
type FaultInjector interface {
	// SetFilter installs (or, with nil, removes) the message fault filter.
	SetFilter(f Filter)
}

// Handler processes messages delivered to a node. A backend guarantees
// that all deliveries, timer callbacks, and Invoke thunks for one node run
// serially (simnet: the single event loop; livenet: the node's mailbox
// goroutine), so handlers need no internal locking.
type Handler interface {
	HandleMessage(from NodeID, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from NodeID, msg Message)

// HandleMessage calls f.
func (f HandlerFunc) HandleMessage(from NodeID, msg Message) { f(from, msg) }

var _ Handler = (HandlerFunc)(nil)

// Stats summarizes fabric traffic. Dropped is the total; the Dropped*
// fields break it out by cause (crashed destination, partitioned link,
// unregistered destination or transport error, chaos-filter injection).
// All backends track all four.
type Stats struct {
	Sent             uint64
	Delivered        uint64
	Dropped          uint64
	Bytes            uint64
	DroppedCrash     uint64
	DroppedPartition uint64
	DroppedUnknown   uint64
	DroppedInjected  uint64
}

// Fabric carries messages and timers between registered nodes.
type Fabric interface {
	// Register adds a node with its message handler. Registering an
	// existing id replaces its handler (used when a controller restarts).
	Register(id NodeID, h Handler)

	// Send transmits msg of the given estimated wire size from one node to
	// another. It is asynchronous and best-effort: the message is silently
	// dropped if the destination is unknown, crashed, or partitioned
	// (datagram semantics — protocols must tolerate loss). Backends that
	// serialize report actual encoded bytes in Stats; size is the model
	// estimate used where no real wire exists.
	Send(from, to NodeID, msg Message, size int)

	// After schedules fn on a node after delay; it is suppressed if the
	// node is crashed when the timer fires. fn runs in the node's serial
	// execution context.
	After(id NodeID, delay time.Duration, fn func())

	// Invoke runs fn in the node's serial execution context as soon as
	// possible (drivers use it to touch node state — flow tables, counters
	// — without racing the node's handlers). It runs even on crashed
	// nodes. On simnet the thunk is scheduled at the current virtual time
	// and runs during Run.
	Invoke(id NodeID, fn func())

	// Charge accounts cost seconds of CPU work to a node. On simnet this
	// delays the node's subsequent work (the calibrated cost model); live
	// backends only account it (real work already takes real time).
	Charge(id NodeID, cost time.Duration)

	// BusyTotal returns the cumulative CPU time charged to a node.
	BusyTotal(id NodeID) time.Duration

	// Now returns the fabric clock: virtual time on simnet, wall-clock
	// time since creation on live backends.
	Now() Time

	// Crashed reports whether the node is currently failed.
	Crashed(id NodeID) bool

	// Partitioned reports whether messages from -> to are currently
	// blocked.
	Partitioned(from, to NodeID) bool

	// Stats returns a snapshot of traffic counters.
	Stats() Stats
}
