package routing

import (
	"fmt"
	"sort"

	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/topology"
)

// Rerouter wraps a routing app and handles network hardware failures (the
// paper's Fig. 2 scenario): it remembers every destination route it has
// installed, and on an EventLinkDown it removes the failed link from the
// topology and emits loop-free route replacements — new paths installed
// downstream-first, old rules on abandoned switches removed only after
// the ingress forwards onto the new path (the mixed-plan semantics of the
// reverse-path scheduler).
//
// Like every controller application, Rerouter is deterministic: replicas
// processing the same totally-ordered event stream track identical route
// tables and produce identical replacement mods.
type Rerouter struct {
	Inner *ShortestPath
	Graph *topology.Graph

	// routes remembers the installed path per destination.
	routes map[string][]string
}

var _ App = (*Rerouter)(nil)

// Name implements App.
func (a *Rerouter) Name() string { return "rerouter(" + a.Inner.Name() + ")" }

// PlanFlow implements App.
func (a *Rerouter) PlanFlow(ev protocol.Event) ([]openflow.FlowMod, error) {
	if a.routes == nil {
		a.routes = make(map[string][]string)
	}
	switch ev.Kind {
	case protocol.EventLinkDown:
		return a.handleLinkDown(ev)
	case protocol.EventFlowRequest:
		mods, err := a.Inner.PlanFlow(ev)
		if err == nil && len(mods) > 0 {
			if path := a.Graph.ShortestPath(ev.Src, ev.Dst); path != nil {
				a.routes[ev.Dst] = path
			}
		}
		return mods, err
	case protocol.EventFlowTeardown:
		delete(a.routes, ev.Dst)
		return a.Inner.PlanFlow(ev)
	default:
		return a.Inner.PlanFlow(ev)
	}
}

// handleLinkDown severs the link and replaces every route that used it.
func (a *Rerouter) handleLinkDown(ev protocol.Event) ([]openflow.FlowMod, error) {
	// RemoveLink is idempotent: each replica applies it once per event
	// (delivery dedup), and the shared graph tolerates repeats.
	a.Graph.RemoveLink(ev.Src, ev.Dst)

	// Deterministic iteration over affected destinations.
	dsts := make([]string, 0, len(a.routes))
	for dst := range a.routes {
		dsts = append(dsts, dst)
	}
	sort.Strings(dsts)

	var mods []openflow.FlowMod
	for _, dst := range dsts {
		old := a.routes[dst]
		if !pathUsesLink(old, ev.Src, ev.Dst) {
			continue
		}
		src := old[0]
		replacement := a.Graph.ShortestPath(src, dst)
		if replacement == nil {
			// Destination unreachable: retire the dead route entirely.
			for _, sw := range a.Graph.SwitchesOnPath(old) {
				mods = append(mods, a.deleteMod(sw, dst))
			}
			delete(a.routes, dst)
			continue
		}
		// New path first (adds, installed downstream-first by the
		// scheduler), then removals on switches the new path abandons.
		newSwitches := a.Graph.SwitchesOnPath(replacement)
		next := make(map[string]string, len(replacement))
		for i := 0; i+1 < len(replacement); i++ {
			next[replacement[i]] = replacement[i+1]
		}
		onNew := make(map[string]bool, len(newSwitches))
		for _, sw := range newSwitches {
			onNew[sw] = true
			mods = append(mods, openflow.FlowMod{
				Op:     openflow.FlowAdd,
				Switch: sw,
				Rule: openflow.Rule{
					Priority: a.priority(),
					Match:    a.match(dst),
					Action:   openflow.Action{Type: openflow.ActionOutput, NextHop: next[sw]},
				},
			})
		}
		for _, sw := range a.Graph.SwitchesOnPath(old) {
			if !onNew[sw] {
				mods = append(mods, a.deleteMod(sw, dst))
			}
		}
		a.routes[dst] = replacement
	}
	if len(mods) == 0 {
		return nil, nil
	}
	return mods, nil
}

// Routes returns the tracked path for dst (for tests).
func (a *Rerouter) Routes(dst string) []string {
	return append([]string(nil), a.routes[dst]...)
}

// priority mirrors the inner app's rule priority.
func (a *Rerouter) priority() int {
	if a.Inner.Priority != 0 {
		return a.Inner.Priority
	}
	return 10
}

// match mirrors the inner app's match scoping.
func (a *Rerouter) match(dst string) openflow.Match {
	return openflow.Match{Src: openflow.Wildcard, Dst: dst}
}

// deleteMod removes dst's rule on sw.
func (a *Rerouter) deleteMod(sw, dst string) openflow.FlowMod {
	return openflow.FlowMod{
		Op:     openflow.FlowDelete,
		Switch: sw,
		Rule:   openflow.Rule{Match: a.match(dst)},
	}
}

// pathUsesLink reports whether the path crosses the undirected link a-b.
func pathUsesLink(path []string, a, b string) bool {
	for i := 0; i+1 < len(path); i++ {
		if (path[i] == a && path[i+1] == b) || (path[i] == b && path[i+1] == a) {
			return true
		}
	}
	return false
}

// LinkDownEvent builds the administrator event reporting a failed link.
func LinkDownEvent(origin string, seq uint64, a, b string) protocol.Event {
	return protocol.Event{
		ID:   openflow.MsgID{Origin: fmt.Sprintf("%s/linkdown", origin), Seq: seq},
		Kind: protocol.EventLinkDown,
		Src:  a,
		Dst:  b,
	}
}
