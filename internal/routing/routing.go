// Package routing contains controller applications: the components that
// translate network events into flow modifications under network policy.
// Cicero is application-agnostic (§5.1); any App can be plugged into the
// controller runtime. The apps here mirror the paper's evaluation setup —
// shortest-path routing with rule reuse — plus policy apps (firewall,
// bandwidth-aware load balancing) used by the Table 1 scenarios.
//
// Every controller replica runs the same App over the same totally-ordered
// event stream, so App implementations MUST be deterministic: identical
// event histories must yield identical mods on every replica.
package routing

import (
	"errors"
	"fmt"

	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/topology"
)

// Errors returned by apps.
var (
	// ErrNoRoute reports an unreachable destination.
	ErrNoRoute = errors.New("routing: no route")
	// ErrUnsupportedEvent reports an event kind the app does not handle.
	ErrUnsupportedEvent = errors.New("routing: unsupported event kind")
)

// App plans the data-plane changes for an event.
type App interface {
	// Name identifies the application in logs and experiments.
	Name() string
	// PlanFlow returns flow mods in path order (source-side switch first).
	// The update scheduler derives consistency dependencies from this
	// ordering.
	PlanFlow(ev protocol.Event) ([]openflow.FlowMod, error)
}

// ShortestPath is the paper's evaluation application: flows are routed on
// deterministic shortest paths; rules are installed per destination (or
// per flow pair in PairRules mode) and reused by later flows.
type ShortestPath struct {
	Graph *topology.Graph
	// PairRules installs (src, dst)-scoped rules instead of dst-scoped
	// wildcard rules; required by the unamortized setup/teardown mode
	// where each flow's rules are removed at completion.
	PairRules bool
	// Priority of installed rules.
	Priority int
}

var _ App = (*ShortestPath)(nil)

// Name implements App.
func (a *ShortestPath) Name() string { return "shortest-path" }

// PlanFlow implements App.
func (a *ShortestPath) PlanFlow(ev protocol.Event) ([]openflow.FlowMod, error) {
	switch ev.Kind {
	case protocol.EventFlowRequest, protocol.EventFlowTeardown:
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnsupportedEvent, ev.Kind)
	}
	path := a.Graph.ShortestPath(ev.Src, ev.Dst)
	if path == nil {
		return nil, fmt.Errorf("%w: %s -> %s", ErrNoRoute, ev.Src, ev.Dst)
	}
	switches := a.Graph.SwitchesOnPath(path)
	if len(switches) == 0 {
		return nil, nil // same-rack flow: no switch updates needed
	}
	op := openflow.FlowAdd
	if ev.Kind == protocol.EventFlowTeardown {
		op = openflow.FlowDelete
	}
	match := openflow.Match{Src: openflow.Wildcard, Dst: ev.Dst}
	if a.PairRules {
		match.Src = ev.Src
	}
	prio := a.Priority
	if prio == 0 {
		prio = 10
	}
	mods := make([]openflow.FlowMod, 0, len(switches))
	// nextHopAfter maps each switch to its successor node on the path.
	next := make(map[string]string, len(switches))
	for i := 0; i+1 < len(path); i++ {
		next[path[i]] = path[i+1]
	}
	for _, sw := range switches {
		mods = append(mods, openflow.FlowMod{
			Op:     op,
			Switch: sw,
			Rule: openflow.Rule{
				Priority: prio,
				Match:    match,
				Action:   openflow.Action{Type: openflow.ActionOutput, NextHop: next[sw]},
				Cookie:   ev.Cookie,
			},
		})
	}
	return mods, nil
}

// FirewallRule blocks traffic from Src to Dst (either may be a wildcard).
type FirewallRule struct {
	Src string
	Dst string
}

// Firewall wraps another app and enforces block rules: blocked flows get
// a high-priority drop rule at the ingress switch instead of a route, and
// policy-change events install drop rules across the affected switches
// (the Fig. 1 scenario).
type Firewall struct {
	Inner App
	Graph *topology.Graph
	// Blocked lists the firewall policy.
	Blocked []FirewallRule
	// DropPriority is the priority of installed drop rules (must exceed
	// the routing app's priority).
	DropPriority int
}

var _ App = (*Firewall)(nil)

// Name implements App.
func (a *Firewall) Name() string { return "firewall(" + a.Inner.Name() + ")" }

// blockedBy returns the firewall rule covering the pair, if any.
func (a *Firewall) blockedBy(src, dst string) (FirewallRule, bool) {
	for _, r := range a.Blocked {
		srcOK := r.Src == openflow.Wildcard || r.Src == src
		dstOK := r.Dst == openflow.Wildcard || r.Dst == dst
		if srcOK && dstOK {
			return r, true
		}
	}
	return FirewallRule{}, false
}

// PlanFlow implements App.
func (a *Firewall) PlanFlow(ev protocol.Event) ([]openflow.FlowMod, error) {
	if ev.Kind == protocol.EventFlowRequest {
		if _, blocked := a.blockedBy(ev.Src, ev.Dst); blocked {
			// Install a drop at the ingress ToR so the flow dies at the
			// edge instead of mid-network.
			path := a.Graph.ShortestPath(ev.Src, ev.Dst)
			switches := a.Graph.SwitchesOnPath(path)
			if len(switches) == 0 {
				return nil, nil
			}
			prio := a.DropPriority
			if prio == 0 {
				prio = 100
			}
			return []openflow.FlowMod{{
				Op:     openflow.FlowAdd,
				Switch: switches[0],
				Rule: openflow.Rule{
					Priority: prio,
					Match:    openflow.Match{Src: ev.Src, Dst: ev.Dst},
					Action:   openflow.Action{Type: openflow.ActionDrop},
					Cookie:   ev.Cookie,
				},
			}}, nil
		}
	}
	return a.Inner.PlanFlow(ev)
}

// LoadBalancer routes flows congestion-consciously: among the shortest
// paths it deterministically spreads destination rules across the pod's
// edge switches, modelling the bandwidth balancing of the Fig. 3 scenario.
// Reservations are derived purely from the (totally ordered) event
// history, keeping replicas in agreement.
type LoadBalancer struct {
	Graph *topology.Graph
	// GbpsPerFlow is the bandwidth reserved per flow.
	GbpsPerFlow float64
	// Priority of installed rules.
	Priority int

	// reserved tracks per-link reservations (replica-local, rebuilt
	// identically everywhere from the ordered event stream).
	reserved map[[2]string]float64
	// assigned remembers each flow pair's placed path so teardown releases
	// exactly what setup reserved.
	assigned map[string][]string
}

var _ App = (*LoadBalancer)(nil)

// Name implements App.
func (a *LoadBalancer) Name() string { return "load-balancer" }

// PlanFlow implements App.
func (a *LoadBalancer) PlanFlow(ev protocol.Event) ([]openflow.FlowMod, error) {
	switch ev.Kind {
	case protocol.EventFlowRequest, protocol.EventFlowTeardown:
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnsupportedEvent, ev.Kind)
	}
	if a.reserved == nil {
		a.reserved = make(map[[2]string]float64)
	}
	if a.assigned == nil {
		a.assigned = make(map[string][]string)
	}
	pairKey := ev.Src + "|" + ev.Dst
	op := openflow.FlowAdd
	delta := a.GbpsPerFlow
	var path []string
	if ev.Kind == protocol.EventFlowTeardown {
		op = openflow.FlowDelete
		delta = -a.GbpsPerFlow
		// Release exactly the path setup placed.
		path = a.assigned[pairKey]
		if path == nil {
			path = a.Graph.ShortestPath(ev.Src, ev.Dst)
		}
		delete(a.assigned, pairKey)
	} else {
		path = a.bestPath(ev.Src, ev.Dst)
		if path != nil {
			a.assigned[pairKey] = path
		}
	}
	if path == nil {
		return nil, fmt.Errorf("%w: %s -> %s", ErrNoRoute, ev.Src, ev.Dst)
	}
	for i := 0; i+1 < len(path); i++ {
		if a.isHostLink(path[i], path[i+1]) {
			continue // host access links are unavoidable; only fabric links balance
		}
		key := linkKey(path[i], path[i+1])
		a.reserved[key] += delta
		if a.reserved[key] < 0 {
			a.reserved[key] = 0
		}
	}
	switches := a.Graph.SwitchesOnPath(path)
	prio := a.Priority
	if prio == 0 {
		prio = 10
	}
	next := make(map[string]string, len(switches))
	for i := 0; i+1 < len(path); i++ {
		next[path[i]] = path[i+1]
	}
	mods := make([]openflow.FlowMod, 0, len(switches))
	for _, sw := range switches {
		mods = append(mods, openflow.FlowMod{
			Op:     op,
			Switch: sw,
			Rule: openflow.Rule{
				Priority: prio,
				Match:    openflow.Match{Src: ev.Src, Dst: ev.Dst},
				Action:   openflow.Action{Type: openflow.ActionOutput, NextHop: next[sw]},
				Cookie:   ev.Cookie,
			},
		})
	}
	return mods, nil
}

// Reserved returns the current reservation on the a-b link.
func (a *LoadBalancer) Reserved(x, y string) float64 {
	if a.reserved == nil {
		return 0
	}
	return a.reserved[linkKey(x, y)]
}

// linkKey canonicalizes an undirected link.
func linkKey(a, b string) [2]string {
	if a < b {
		return [2]string{a, b}
	}
	return [2]string{b, a}
}

// bestPath enumerates candidate paths — the shortest path plus, for every
// switch v, the concatenation of shortest paths src→v→dst — and picks the
// candidate with the lowest maximum fabric-link reservation, breaking ties
// deterministically by path string (replicas must agree).
func (a *LoadBalancer) bestPath(src, dst string) []string {
	base := a.Graph.ShortestPath(src, dst)
	if base == nil {
		return nil
	}
	candidates := [][]string{base}
	for _, v := range a.Graph.Nodes() {
		if v.Kind == topology.KindHost || v.ID == src || v.ID == dst {
			continue
		}
		head := a.Graph.ShortestPath(src, v.ID)
		if head == nil {
			continue
		}
		tail := a.Graph.ShortestPath(v.ID, dst)
		if tail == nil {
			continue
		}
		cand := append(append([]string(nil), head...), tail[1:]...)
		if validSimplePath(cand) {
			candidates = append(candidates, cand)
		}
	}
	best := candidates[0]
	bestCost := a.pathCost(best)
	for _, cand := range candidates[1:] {
		c := a.pathCost(cand)
		switch {
		case c < bestCost:
			best, bestCost = cand, c
		case c == bestCost && len(cand) < len(best):
			best = cand
		case c == bestCost && len(cand) == len(best) && fmt.Sprint(cand) < fmt.Sprint(best):
			best = cand
		}
	}
	return best
}

// pathCost is the maximum fabric-link reservation along the path (lower
// is better); host access links are excluded as unavoidable.
func (a *LoadBalancer) pathCost(path []string) float64 {
	worst := 0.0
	for i := 0; i+1 < len(path); i++ {
		if a.isHostLink(path[i], path[i+1]) {
			continue
		}
		if r := a.reserved[linkKey(path[i], path[i+1])]; r > worst {
			worst = r
		}
	}
	return worst
}

// isHostLink reports whether either end of a link is a host.
func (a *LoadBalancer) isHostLink(x, y string) bool {
	if n, ok := a.Graph.Node(x); ok && n.Kind == topology.KindHost {
		return true
	}
	if n, ok := a.Graph.Node(y); ok && n.Kind == topology.KindHost {
		return true
	}
	return false
}

// validSimplePath rejects paths that visit a node twice.
func validSimplePath(path []string) bool {
	seen := make(map[string]struct{}, len(path))
	for _, n := range path {
		if _, dup := seen[n]; dup {
			return false
		}
		seen[n] = struct{}{}
	}
	return true
}
