package routing

import (
	"errors"
	"testing"
	"time"

	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/topology"
)

// diamond builds the paper's five-switch example topology (Figs. 1-3):
//
//	s1   s2
//	 \   /|
//	  s3  |     plus hosts h1@s1, h2@s2, h5@s5
//	 /   \|
//	s4 -- s5
func diamond(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph()
	for _, id := range []string{"s1", "s2", "s3", "s4", "s5"} {
		g.AddNode(topology.Node{ID: id, Kind: topology.KindToR})
	}
	for _, id := range []string{"h1", "h2", "h5"} {
		g.AddNode(topology.Node{ID: id, Kind: topology.KindHost})
	}
	links := [][2]string{
		{"s1", "s3"}, {"s2", "s3"}, {"s2", "s5"},
		{"s3", "s4"}, {"s4", "s5"},
		{"h1", "s1"}, {"h2", "s2"}, {"h5", "s5"},
	}
	for _, l := range links {
		if err := g.AddLink(l[0], l[1], time.Millisecond, 5); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestShortestPathPlanFlow(t *testing.T) {
	g := diamond(t)
	app := &ShortestPath{Graph: g}
	mods, err := app.PlanFlow(protocol.Event{
		ID:   openflow.MsgID{Origin: "t", Seq: 1},
		Kind: protocol.EventFlowRequest,
		Src:  "h1", Dst: "h5",
	})
	if err != nil {
		t.Fatalf("PlanFlow: %v", err)
	}
	// h1-s1-s3-s4-s5-h5 or h1-s1-s3-s2-s5-h5 (equal cost); deterministic
	// tie-break picks lexicographically smaller intermediate (s2 < s4).
	if len(mods) != 4 {
		t.Fatalf("mods = %v, want 4 switches", mods)
	}
	if mods[0].Switch != "s1" {
		t.Errorf("first mod on %s, want s1 (path order)", mods[0].Switch)
	}
	// Last switch forwards to the host.
	last := mods[len(mods)-1]
	if last.Switch != "s5" || last.Rule.Action.NextHop != "h5" {
		t.Errorf("egress mod = %v, want s5 -> h5", last)
	}
	// Rules are destination-scoped (reusable) by default.
	for _, m := range mods {
		if m.Rule.Match.Src != openflow.Wildcard || m.Rule.Match.Dst != "h5" {
			t.Errorf("rule match %v, want */h5", m.Rule.Match)
		}
		if m.Op != openflow.FlowAdd {
			t.Errorf("op = %v, want add", m.Op)
		}
	}
}

func TestShortestPathPairRules(t *testing.T) {
	g := diamond(t)
	app := &ShortestPath{Graph: g, PairRules: true}
	mods, err := app.PlanFlow(protocol.Event{
		Kind: protocol.EventFlowRequest, Src: "h1", Dst: "h5",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mods {
		if m.Rule.Match.Src != "h1" {
			t.Errorf("pair rule has src %q, want h1", m.Rule.Match.Src)
		}
	}
}

func TestShortestPathTeardown(t *testing.T) {
	g := diamond(t)
	app := &ShortestPath{Graph: g}
	mods, err := app.PlanFlow(protocol.Event{
		Kind: protocol.EventFlowTeardown, Src: "h1", Dst: "h5",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mods {
		if m.Op != openflow.FlowDelete {
			t.Errorf("teardown op = %v, want delete", m.Op)
		}
	}
}

func TestShortestPathNoRoute(t *testing.T) {
	g := diamond(t)
	g.AddNode(topology.Node{ID: "island", Kind: topology.KindHost})
	app := &ShortestPath{Graph: g}
	_, err := app.PlanFlow(protocol.Event{Kind: protocol.EventFlowRequest, Src: "h1", Dst: "island"})
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("expected ErrNoRoute, got %v", err)
	}
}

func TestShortestPathUnsupportedEvent(t *testing.T) {
	app := &ShortestPath{Graph: diamond(t)}
	_, err := app.PlanFlow(protocol.Event{Kind: protocol.EventMembershipInfo})
	if !errors.Is(err, ErrUnsupportedEvent) {
		t.Fatalf("expected ErrUnsupportedEvent, got %v", err)
	}
}

func TestShortestPathDeterministicAcrossReplicas(t *testing.T) {
	// Two replicas with independent app instances must produce identical
	// mods — the precondition for threshold shares to combine.
	g := diamond(t)
	a := &ShortestPath{Graph: g}
	b := &ShortestPath{Graph: g}
	ev := protocol.Event{Kind: protocol.EventFlowRequest, Src: "h2", Dst: "h5"}
	ma, err := a.PlanFlow(ev)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.PlanFlow(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(ma) != len(mb) {
		t.Fatal("replicas disagree on mod count")
	}
	for i := range ma {
		if ma[i].String() != mb[i].String() {
			t.Fatalf("replicas disagree at %d: %v vs %v", i, ma[i], mb[i])
		}
	}
}

func TestFirewallBlocksAtIngress(t *testing.T) {
	g := diamond(t)
	app := &Firewall{
		Inner:   &ShortestPath{Graph: g},
		Graph:   g,
		Blocked: []FirewallRule{{Src: "h1", Dst: "h5"}},
	}
	mods, err := app.PlanFlow(protocol.Event{Kind: protocol.EventFlowRequest, Src: "h1", Dst: "h5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 1 {
		t.Fatalf("blocked flow should produce 1 drop mod, got %v", mods)
	}
	if mods[0].Switch != "s1" || mods[0].Rule.Action.Type != openflow.ActionDrop {
		t.Fatalf("expected ingress drop at s1, got %v", mods[0])
	}
	if mods[0].Rule.Priority <= 10 {
		t.Error("drop rule must out-prioritize routing rules")
	}
	// Unblocked traffic routes normally.
	mods, err = app.PlanFlow(protocol.Event{Kind: protocol.EventFlowRequest, Src: "h2", Dst: "h5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) < 2 {
		t.Fatalf("unblocked flow should route, got %v", mods)
	}
}

func TestFirewallWildcard(t *testing.T) {
	g := diamond(t)
	app := &Firewall{
		Inner:   &ShortestPath{Graph: g},
		Graph:   g,
		Blocked: []FirewallRule{{Src: openflow.Wildcard, Dst: "h5"}},
	}
	for _, src := range []string{"h1", "h2"} {
		mods, err := app.PlanFlow(protocol.Event{Kind: protocol.EventFlowRequest, Src: src, Dst: "h5"})
		if err != nil {
			t.Fatal(err)
		}
		if len(mods) != 1 || mods[0].Rule.Action.Type != openflow.ActionDrop {
			t.Fatalf("wildcard block missed %s->h5: %v", src, mods)
		}
	}
}

func TestLoadBalancerSpreadsFlows(t *testing.T) {
	g := diamond(t)
	app := &LoadBalancer{Graph: g, GbpsPerFlow: 5}
	// First flow h2 -> h5 takes the direct s2-s5 link (shortest).
	mods1, err := app.PlanFlow(protocol.Event{
		ID: openflow.MsgID{Origin: "e", Seq: 1}, Kind: protocol.EventFlowRequest, Src: "h2", Dst: "h5"})
	if err != nil {
		t.Fatal(err)
	}
	if app.Reserved("s2", "s5") != 5 {
		t.Fatalf("first flow did not reserve s2-s5 (reserved=%v)", app.Reserved("s2", "s5"))
	}
	// Second flow between the same endpoints must avoid the now-loaded
	// direct link (Fig. 3's balancing).
	mods2, err := app.PlanFlow(protocol.Event{
		ID: openflow.MsgID{Origin: "e", Seq: 2}, Kind: protocol.EventFlowRequest, Src: "h2", Dst: "h5"})
	if err == nil && len(mods2) > 0 {
		usedDirect := false
		for _, m := range mods2 {
			if m.Switch == "s2" && m.Rule.Action.NextHop == "s5" {
				usedDirect = true
			}
		}
		if usedDirect && app.Reserved("s2", "s5") >= 10 {
			t.Error("load balancer over-provisioned the direct link")
		}
	}
	_ = mods1
}

func TestLoadBalancerTeardownReleases(t *testing.T) {
	g := diamond(t)
	app := &LoadBalancer{Graph: g, GbpsPerFlow: 5}
	ev := protocol.Event{ID: openflow.MsgID{Origin: "e", Seq: 1},
		Kind: protocol.EventFlowRequest, Src: "h2", Dst: "h5"}
	if _, err := app.PlanFlow(ev); err != nil {
		t.Fatal(err)
	}
	down := ev
	down.Kind = protocol.EventFlowTeardown
	if _, err := app.PlanFlow(down); err != nil {
		t.Fatal(err)
	}
	if r := app.Reserved("s2", "s5"); r != 0 {
		t.Fatalf("reservation not released: %v", r)
	}
}
