package pairing

import "math/big"

// GT is an element of the target group, represented in F_{p^2} as
// A + B·i with i^2 = −1. Elements are immutable: all operations allocate
// fresh results.
type GT struct {
	A, B *big.Int
}

// gtOne returns the multiplicative identity of F_{p^2}.
func gtOne() *GT {
	return &GT{A: big.NewInt(1), B: big.NewInt(0)}
}

// IsOne reports whether g is the multiplicative identity.
func (g *GT) IsOne() bool {
	return g.A.Cmp(big.NewInt(1)) == 0 && g.B.Sign() == 0
}

// Equal reports whether g and o are the same F_{p^2} element.
func (g *GT) Equal(o *GT) bool {
	return g.A.Cmp(o.A) == 0 && g.B.Cmp(o.B) == 0
}

// Bytes returns a fixed-width big-endian encoding of g, suitable for
// hashing and wire transport.
func (p *Params) gtBytes(g *GT) []byte {
	w := (p.P.BitLen() + 7) / 8
	out := make([]byte, 2*w)
	g.A.FillBytes(out[:w])
	g.B.FillBytes(out[w:])
	return out
}

// gtMul returns x·y in F_{p^2} using Karatsuba's three-multiplication
// form: ad + bc = (a+b)(c+d) − ac − bd. Field multiplications dominate
// the Miller loop, so one saved mult per product is ~25% off the loop.
func (p *Params) gtMul(x, y *GT) *GT {
	// (a+bi)(c+di) = (ac − bd) + (ad + bc)i
	ac := new(big.Int).Mul(x.A, y.A)
	bd := new(big.Int).Mul(x.B, y.B)
	xs := new(big.Int).Add(x.A, x.B)
	ys := new(big.Int).Add(y.A, y.B)
	cross := xs.Mul(xs, ys)
	cross.Sub(cross, ac)
	cross.Sub(cross, bd)
	a := ac.Sub(ac, bd)
	p.modP(a)
	p.modP(cross)
	return &GT{A: a, B: cross}
}

// gtSquare returns x² in F_{p^2}.
func (p *Params) gtSquare(x *GT) *GT {
	// (a+bi)^2 = (a−b)(a+b) + 2ab·i
	sum := new(big.Int).Add(x.A, x.B)
	diff := new(big.Int).Sub(x.A, x.B)
	a := sum.Mul(sum, diff)
	p.modP(a)
	b := new(big.Int).Mul(x.A, x.B)
	b.Lsh(b, 1)
	p.modP(b)
	return &GT{A: a, B: b}
}

// gtConj returns the conjugate a − b·i, which equals x^p (the Frobenius).
func (p *Params) gtConj(x *GT) *GT {
	b := new(big.Int).Neg(x.B)
	b.Mod(b, p.P)
	return &GT{A: new(big.Int).Set(x.A), B: b}
}

// gtInv returns x^(−1) in F_{p^2}.
func (p *Params) gtInv(x *GT) *GT {
	// 1/(a+bi) = (a − bi)/(a² + b²)
	norm := new(big.Int).Mul(x.A, x.A)
	bb := new(big.Int).Mul(x.B, x.B)
	norm.Add(norm, bb)
	p.modP(norm)
	norm.ModInverse(norm, p.P)
	a := new(big.Int).Mul(x.A, norm)
	p.modP(a)
	b := new(big.Int).Neg(x.B)
	b.Mul(b, norm)
	p.modP(b)
	return &GT{A: a, B: b}
}

// gtExp returns x^e in F_{p^2} for a non-negative exponent e.
func (p *Params) gtExp(x *GT, e *big.Int) *GT {
	result := gtOne()
	if e.Sign() == 0 {
		return result
	}
	base := &GT{A: new(big.Int).Set(x.A), B: new(big.Int).Set(x.B)}
	for i := e.BitLen() - 1; i >= 0; i-- {
		result = p.gtSquare(result)
		if e.Bit(i) == 1 {
			result = p.gtMul(result, base)
		}
	}
	return result
}

// gtAcc is a mutable F_{p²} accumulator with preallocated scratch. The
// pairing hot loops (PairPrepared, PairProduct, and their shared final
// exponentiation) run thousands of field operations per call; routing
// them through one accumulator instead of the immutable GT helpers
// removes nearly all interior allocations. Not safe for concurrent use;
// each pairing call creates its own.
type gtAcc struct {
	p              *Params
	a, b           *big.Int // the accumulated element a + b·i
	t1, t2, t3, t4 *big.Int // multiplication scratch
	l              *big.Int // line-evaluation scratch
	q              *big.Int // Barrett quotient scratch
}

func newGTAcc(p *Params) *gtAcc {
	return &gtAcc{
		p: p, a: big.NewInt(1), b: big.NewInt(0),
		t1: new(big.Int), t2: new(big.Int), t3: new(big.Int), t4: new(big.Int),
		l: new(big.Int), q: new(big.Int),
	}
}

// reduce is modP with the accumulator's scratch quotient: no allocation.
func (g *gtAcc) reduce(x *big.Int) {
	p := g.p
	if x.Sign() < 0 {
		x.Add(x, p.twoPSquared)
	}
	q := g.q
	q.Rsh(x, p.barrettLo)
	q.Mul(q, p.barrettMu)
	q.Rsh(q, p.barrettHi)
	q.Mul(q, p.P)
	x.Sub(x, q)
	for x.Cmp(p.P) >= 0 {
		x.Sub(x, p.P)
	}
}

// square sets g ← g² (Karatsuba-style two-multiplication squaring).
func (g *gtAcc) square() {
	g.t1.Add(g.a, g.b)
	g.t2.Sub(g.a, g.b)
	g.t3.Mul(g.a, g.b)
	g.a.Mul(g.t1, g.t2)
	g.reduce(g.a)
	g.b.Lsh(g.t3, 1)
	g.reduce(g.b)
}

// mul sets g ← g·(la + lb·i) for reduced la, lb using three
// multiplications.
func (g *gtAcc) mul(la, lb *big.Int) {
	g.t1.Mul(g.a, la) // ac
	g.t2.Mul(g.b, lb) // bd
	g.t3.Add(g.a, g.b)
	g.t4.Add(la, lb)
	g.t3.Mul(g.t3, g.t4)
	g.t3.Sub(g.t3, g.t1) // cross = ad + bc
	g.t3.Sub(g.t3, g.t2)
	g.a.Sub(g.t1, g.t2)
	g.reduce(g.a)
	g.reduce(g.t3)
	g.b, g.t3 = g.t3, g.b
}

// mulReal sets g ← g·la for a reduced real element (vertical lines have
// zero imaginary part, so the full product collapses to two mults).
func (g *gtAcc) mulReal(la *big.Int) {
	g.t1.Mul(g.a, la)
	g.reduce(g.t1)
	g.a, g.t1 = g.t1, g.a
	g.t2.Mul(g.b, la)
	g.reduce(g.t2)
	g.b, g.t2 = g.t2, g.b
}

// mulLine multiplies g by a cached Miller line evaluated at φ(b).
func (g *gtAcc) mulLine(ln *line, xb, yb *big.Int) {
	if ln.lambda == nil {
		g.l.Neg(xb)
		g.l.Sub(g.l, ln.x1)
		g.reduce(g.l)
		g.mulReal(g.l)
		return
	}
	g.l.Add(xb, ln.x1)
	g.l.Mul(g.l, ln.lambda)
	g.l.Sub(g.l, ln.y1)
	g.reduce(g.l)
	g.mul(g.l, yb)
}

// finalExp applies z ↦ z^{(p²−1)/r} to the accumulator and returns the
// result, consuming the accumulator.
func (g *gtAcc) finalExp() *GT {
	p := g.p
	// z^(p−1) = conj(z)/z: one inversion, then an in-place multiply.
	inv := p.gtInv(&GT{A: g.a, B: g.b})
	g.b.Neg(g.b)
	if g.b.Sign() < 0 {
		g.b.Add(g.b, p.P)
	}
	g.mul(inv.A, inv.B)
	// Raise to (p+1)/r = h by square-and-multiply.
	ba := new(big.Int).Set(g.a)
	bb := new(big.Int).Set(g.b)
	for i := p.H.BitLen() - 2; i >= 0; i-- {
		g.square()
		if p.H.Bit(i) == 1 {
			g.mul(ba, bb)
		}
	}
	return &GT{A: g.a, B: g.b}
}

// GTExp returns g^e reduced modulo the group order; it is the scalar action
// on the target group used by tests asserting bilinearity.
func (p *Params) GTExp(g *GT, e *big.Int) *GT {
	re := new(big.Int).Mod(e, p.R)
	return p.gtExp(g, re)
}

// GTMul returns the product of two target-group elements.
func (p *Params) GTMul(x, y *GT) *GT { return p.gtMul(x, y) }

// GTBytes returns a canonical encoding of a target-group element.
func (p *Params) GTBytes(g *GT) []byte { return p.gtBytes(g) }
