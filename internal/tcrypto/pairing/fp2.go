package pairing

import "math/big"

// GT is an element of the target group, represented in F_{p^2} as
// A + B·i with i^2 = −1. Elements are immutable: all operations allocate
// fresh results.
type GT struct {
	A, B *big.Int
}

// gtOne returns the multiplicative identity of F_{p^2}.
func gtOne() *GT {
	return &GT{A: big.NewInt(1), B: big.NewInt(0)}
}

// IsOne reports whether g is the multiplicative identity.
func (g *GT) IsOne() bool {
	return g.A.Cmp(big.NewInt(1)) == 0 && g.B.Sign() == 0
}

// Equal reports whether g and o are the same F_{p^2} element.
func (g *GT) Equal(o *GT) bool {
	return g.A.Cmp(o.A) == 0 && g.B.Cmp(o.B) == 0
}

// Bytes returns a fixed-width big-endian encoding of g, suitable for
// hashing and wire transport.
func (p *Params) gtBytes(g *GT) []byte {
	w := (p.P.BitLen() + 7) / 8
	out := make([]byte, 2*w)
	g.A.FillBytes(out[:w])
	g.B.FillBytes(out[w:])
	return out
}

// gtMul returns x·y in F_{p^2}.
func (p *Params) gtMul(x, y *GT) *GT {
	// (a+bi)(c+di) = (ac − bd) + (ad + bc)i
	ac := new(big.Int).Mul(x.A, y.A)
	bd := new(big.Int).Mul(x.B, y.B)
	ad := new(big.Int).Mul(x.A, y.B)
	bc := new(big.Int).Mul(x.B, y.A)
	a := ac.Sub(ac, bd)
	a.Mod(a, p.P)
	b := ad.Add(ad, bc)
	b.Mod(b, p.P)
	return &GT{A: a, B: b}
}

// gtSquare returns x² in F_{p^2}.
func (p *Params) gtSquare(x *GT) *GT {
	// (a+bi)^2 = (a−b)(a+b) + 2ab·i
	sum := new(big.Int).Add(x.A, x.B)
	diff := new(big.Int).Sub(x.A, x.B)
	a := sum.Mul(sum, diff)
	a.Mod(a, p.P)
	b := new(big.Int).Mul(x.A, x.B)
	b.Lsh(b, 1)
	b.Mod(b, p.P)
	return &GT{A: a, B: b}
}

// gtConj returns the conjugate a − b·i, which equals x^p (the Frobenius).
func (p *Params) gtConj(x *GT) *GT {
	b := new(big.Int).Neg(x.B)
	b.Mod(b, p.P)
	return &GT{A: new(big.Int).Set(x.A), B: b}
}

// gtInv returns x^(−1) in F_{p^2}.
func (p *Params) gtInv(x *GT) *GT {
	// 1/(a+bi) = (a − bi)/(a² + b²)
	norm := new(big.Int).Mul(x.A, x.A)
	bb := new(big.Int).Mul(x.B, x.B)
	norm.Add(norm, bb)
	norm.Mod(norm, p.P)
	norm.ModInverse(norm, p.P)
	a := new(big.Int).Mul(x.A, norm)
	a.Mod(a, p.P)
	b := new(big.Int).Neg(x.B)
	b.Mul(b, norm)
	b.Mod(b, p.P)
	return &GT{A: a, B: b}
}

// gtExp returns x^e in F_{p^2} for a non-negative exponent e.
func (p *Params) gtExp(x *GT, e *big.Int) *GT {
	result := gtOne()
	if e.Sign() == 0 {
		return result
	}
	base := &GT{A: new(big.Int).Set(x.A), B: new(big.Int).Set(x.B)}
	for i := e.BitLen() - 1; i >= 0; i-- {
		result = p.gtSquare(result)
		if e.Bit(i) == 1 {
			result = p.gtMul(result, base)
		}
	}
	return result
}

// GTExp returns g^e reduced modulo the group order; it is the scalar action
// on the target group used by tests asserting bilinearity.
func (p *Params) GTExp(g *GT, e *big.Int) *GT {
	re := new(big.Int).Mod(e, p.R)
	return p.gtExp(g, re)
}

// GTMul returns the product of two target-group elements.
func (p *Params) GTMul(x, y *GT) *GT { return p.gtMul(x, y) }

// GTBytes returns a canonical encoding of a target-group element.
func (p *Params) GTBytes(g *GT) []byte { return p.gtBytes(g) }
