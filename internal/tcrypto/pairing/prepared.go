package pairing

import (
	"math/big"

	"cicero/internal/metrics"
)

// line caches one Miller-loop line function through points of E(F_p),
// ready to be evaluated at a distorted second argument φ(b) = (−x_b, i·y_b).
// A chord/tangent with slope lambda through (x1, y1) evaluates to
// [−y1 + lambda·(x_b + x1)] + y_b·i; a vertical line x = x1 (lambda nil)
// evaluates to (−x_b − x1) + 0·i.
type line struct {
	x1, y1, lambda *big.Int // lambda == nil marks a vertical line
}

// millerStep is one iteration of the Miller loop over the bits of r: an
// implicit squaring of the accumulator, then the doubling line (nil when
// the running point was already at infinity), then the addition line for
// set bits (nil otherwise, or when the step only re-seeds the running
// point).
type millerStep struct {
	dbl *line
	add *line
}

// PreparedPoint caches the Miller-loop line coefficients of f_{r,a} for a
// fixed first pairing argument a. Preparing pays the chord/tangent slope
// inversions once; every subsequent PairPrepared or PairProduct against
// the prepared argument replays the cached lines with a handful of field
// multiplications per step instead of a modular inversion and a point
// update. The generator G and long-lived public keys never change within
// a deployment, which makes their prepared forms the verification hot
// path. Prepared points are immutable and safe for concurrent use.
type PreparedPoint struct {
	a     *Point
	inf   bool
	steps []millerStep
}

// Point returns the prepared argument.
func (pp *PreparedPoint) Point() *Point { return pp.a.Clone() }

// Prepare computes the Miller-loop line coefficients for a fixed first
// pairing argument. The walk mirrors miller() exactly, recording each
// line instead of evaluating it.
func (p *Params) Prepare(a *Point) *PreparedPoint {
	if a.IsInfinity() {
		return &PreparedPoint{a: Infinity(), inf: true}
	}
	metrics.Crypto.PointPrepares.Add(1)
	prep := &PreparedPoint{a: a.Clone(), steps: make([]millerStep, 0, p.R.BitLen()-1)}
	v := a.Clone()

	// tangentAt returns the tangent line at w and the doubled point.
	// Point coordinates are never mutated after creation, so the line may
	// alias them.
	tangentAt := func(w *Point) (*line, *Point) {
		num := new(big.Int).Mul(w.X, w.X)
		num.Mul(num, big.NewInt(3))
		num.Add(num, big.NewInt(1))
		den := new(big.Int).Lsh(w.Y, 1)
		den.Mod(den, p.P)
		den.ModInverse(den, p.P)
		lambda := num.Mul(num, den)
		lambda.Mod(lambda, p.P)
		return &line{x1: w.X, y1: w.Y, lambda: lambda}, p.chord(w, w, lambda)
	}

	for i := p.R.BitLen() - 2; i >= 0; i-- {
		var step millerStep
		// Doubling step.
		if !v.IsInfinity() {
			if v.Y.Sign() == 0 {
				step.dbl = &line{x1: v.X}
				v = Infinity()
			} else {
				step.dbl, v = tangentAt(v)
			}
		}
		// Addition step.
		if p.R.Bit(i) == 1 {
			switch {
			case v.IsInfinity():
				v = a.Clone()
			case v.X.Cmp(a.X) == 0:
				sum := new(big.Int).Add(v.Y, a.Y)
				sum.Mod(sum, p.P)
				if sum.Sign() == 0 {
					step.add = &line{x1: v.X}
					v = Infinity()
				} else {
					step.add, v = tangentAt(v)
				}
			default:
				num := new(big.Int).Sub(a.Y, v.Y)
				den := new(big.Int).Sub(a.X, v.X)
				den.Mod(den, p.P)
				den.ModInverse(den, p.P)
				lambda := num.Mul(num, den)
				lambda.Mod(lambda, p.P)
				step.add = &line{x1: v.X, y1: v.Y, lambda: lambda}
				v = p.chord(v, a, lambda)
			}
		}
		prep.steps = append(prep.steps, step)
	}
	return prep
}

// evalLine evaluates a cached line at φ(b) for b = (xb, yb).
func (p *Params) evalLine(l *line, xb, yb *big.Int) *GT {
	if l.lambda == nil {
		re := new(big.Int).Neg(xb)
		re.Sub(re, l.x1)
		p.modP(re)
		return &GT{A: re, B: big.NewInt(0)}
	}
	re := new(big.Int).Add(xb, l.x1)
	re.Mul(re, l.lambda)
	re.Sub(re, l.y1)
	p.modP(re)
	return &GT{A: re, B: new(big.Int).Set(yb)}
}

// PairPrepared computes e(a, b) for a prepared first argument, replaying
// the cached Miller lines against φ(b). It agrees with Pair(a, b) on all
// inputs while skipping every per-step modular inversion.
func (p *Params) PairPrepared(prep *PreparedPoint, b *Point) *GT {
	if prep.inf || b.IsInfinity() {
		return gtOne()
	}
	metrics.Crypto.PreparedPairings.Add(1)
	acc := newGTAcc(p)
	for i := range prep.steps {
		acc.square()
		st := &prep.steps[i]
		if st.dbl != nil {
			acc.mulLine(st.dbl, b.X, b.Y)
		}
		if st.add != nil {
			acc.mulLine(st.add, b.X, b.Y)
		}
	}
	return acc.finalExp()
}

// ProductTerm is one factor e(first, B) of a pairing product. The first
// argument is the cached Prep when non-nil, otherwise the live point A
// (prepared on the fly). B is the evaluation point.
type ProductTerm struct {
	Prep *PreparedPoint
	A    *Point
	B    *Point
}

// PairProduct computes ∏ᵢ e(aᵢ, bᵢ) with a single shared Miller squaring
// chain and one final exponentiation. Because every Miller loop walks the
// same scalar r, the accumulators satisfy (f₁·f₂)² = f₁²·f₂²: one
// squaring per bit covers all factors, and the final exponentiation —
// roughly a third of a full pairing — is paid once instead of per factor.
//
// The signature-verification equation e(σ, G) == e(H(m), X) becomes the
// single product check e(G, σ)·e(X, −H(m)) == 1 (using symmetry of the
// Type-A pairing), with G and X prepared.
func (p *Params) PairProduct(terms ...ProductTerm) *GT {
	type active struct {
		steps  []millerStep
		xb, yb *big.Int
	}
	acts := make([]active, 0, len(terms))
	for _, t := range terms {
		prep := t.Prep
		if prep == nil {
			prep = p.Prepare(t.A)
		}
		if prep.inf || t.B.IsInfinity() {
			continue // factor is 1
		}
		acts = append(acts, active{steps: prep.steps, xb: t.B.X, yb: t.B.Y})
	}
	if len(acts) == 0 {
		return gtOne()
	}
	metrics.Crypto.PairingProducts.Add(1)
	acc := newGTAcc(p)
	// All prepared points over the same parameters record exactly
	// R.BitLen()-1 steps, so the walks align bit for bit.
	for i := range acts[0].steps {
		acc.square()
		for _, a := range acts {
			st := &a.steps[i]
			if st.dbl != nil {
				acc.mulLine(st.dbl, a.xb, a.yb)
			}
			if st.add != nil {
				acc.mulLine(st.add, a.xb, a.yb)
			}
		}
	}
	return acc.finalExp()
}
