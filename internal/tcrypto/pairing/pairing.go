package pairing

import (
	"crypto/sha256"
	"encoding/binary"
	"math/big"

	"cicero/internal/metrics"
)

// Pair computes the symmetric reduced Tate pairing e(a, b) ∈ GT.
//
// Internally it evaluates the Miller function f_{r,a} at the distorted
// point φ(b) = (−x_b, i·y_b) ∈ E(F_{p^2}) and applies the final
// exponentiation z ↦ z^{(p²−1)/r}. The distortion map guarantees
// non-degeneracy for a, b ∈ G1, yielding a symmetric pairing with
// e(s·a, t·b) = e(a, b)^{s·t}.
func (p *Params) Pair(a, b *Point) *GT {
	if a.IsInfinity() || b.IsInfinity() {
		return gtOne()
	}
	metrics.Crypto.Pairings.Add(1)
	f := p.miller(a, b)
	return p.finalExp(f)
}

// miller runs Miller's algorithm computing f_{r,a}(φ(b)).
//
// Lines through points of E(F_p) are evaluated at φ(b) = (−x_b, i·y_b):
// a chord with slope λ through (x1, y1) evaluates to
//
//	(i·y_b) − y1 − λ(−x_b − x1)  =  [−y1 + λ(x_b + x1)] + y_b·i,
//
// and a vertical line through x1 evaluates to (−x_b − x1) + 0·i.
func (p *Params) miller(a, b *Point) *GT {
	xb := b.X
	yb := b.Y

	f := gtOne()
	v := a.Clone()

	// chordAt evaluates the line with slope lambda through (x1, y1) at φ(b).
	chordAt := func(x1, y1, lambda *big.Int) *GT {
		re := new(big.Int).Add(xb, x1)
		re.Mul(re, lambda)
		re.Sub(re, y1)
		p.modP(re)
		return &GT{A: re, B: new(big.Int).Set(yb)}
	}
	// verticalAt evaluates the vertical line x = x1 at φ(b).
	verticalAt := func(x1 *big.Int) *GT {
		re := new(big.Int).Neg(xb)
		re.Sub(re, x1)
		p.modP(re)
		return &GT{A: re, B: big.NewInt(0)}
	}

	for i := p.R.BitLen() - 2; i >= 0; i-- {
		// Doubling step: f ← f² · l_{v,v}(φ(b)); v ← 2v.
		f = p.gtSquare(f)
		if !v.IsInfinity() {
			if v.Y.Sign() == 0 {
				f = p.gtMul(f, verticalAt(v.X))
				v = Infinity()
			} else {
				num := new(big.Int).Mul(v.X, v.X)
				num.Mul(num, big.NewInt(3))
				num.Add(num, big.NewInt(1))
				den := new(big.Int).Lsh(v.Y, 1)
				den.Mod(den, p.P)
				den.ModInverse(den, p.P)
				lambda := num.Mul(num, den)
				lambda.Mod(lambda, p.P)
				f = p.gtMul(f, chordAt(v.X, v.Y, lambda))
				v = p.chord(v, v, lambda)
			}
		}
		if p.R.Bit(i) == 1 {
			// Addition step: f ← f · l_{v,a}(φ(b)); v ← v + a.
			switch {
			case v.IsInfinity():
				v = a.Clone()
			case v.X.Cmp(a.X) == 0:
				sum := new(big.Int).Add(v.Y, a.Y)
				sum.Mod(sum, p.P)
				if sum.Sign() == 0 {
					f = p.gtMul(f, verticalAt(v.X))
					v = Infinity()
				} else {
					// v == a: tangent line (same as doubling step).
					num := new(big.Int).Mul(v.X, v.X)
					num.Mul(num, big.NewInt(3))
					num.Add(num, big.NewInt(1))
					den := new(big.Int).Lsh(v.Y, 1)
					den.Mod(den, p.P)
					den.ModInverse(den, p.P)
					lambda := num.Mul(num, den)
					lambda.Mod(lambda, p.P)
					f = p.gtMul(f, chordAt(v.X, v.Y, lambda))
					v = p.chord(v, v, lambda)
				}
			default:
				num := new(big.Int).Sub(a.Y, v.Y)
				den := new(big.Int).Sub(a.X, v.X)
				den.Mod(den, p.P)
				den.ModInverse(den, p.P)
				lambda := num.Mul(num, den)
				lambda.Mod(lambda, p.P)
				f = p.gtMul(f, chordAt(v.X, v.Y, lambda))
				v = p.chord(v, a, lambda)
			}
		}
	}
	return f
}

// finalExp raises z to (p²−1)/r = (p−1)·h, mapping Miller-function values
// onto the order-r subgroup of F_{p^2}.
func (p *Params) finalExp(z *GT) *GT {
	// z^(p−1) = conj(z)/z: the Frobenius in F_{p^2} is conjugation.
	t := p.gtMul(p.gtConj(z), p.gtInv(z))
	// Then raise to (p+1)/r = h.
	return p.gtExp(t, p.H)
}

// HashToG1 hashes arbitrary bytes to a point of order r using
// try-and-increment followed by cofactor clearing.
func (p *Params) HashToG1(msg []byte) *Point {
	for ctr := uint32(0); ; ctr++ {
		x := p.hashToField(msg, ctr)
		// y² = x³ + x
		y2 := new(big.Int).Mul(x, x)
		y2.Mul(y2, x)
		y2.Add(y2, x)
		y2.Mod(y2, p.P)
		if y2.Sign() == 0 {
			continue
		}
		// Since p ≡ 3 (mod 4), a square root, if any, is y2^((p+1)/4).
		y := new(big.Int).Exp(y2, p.sqrtExp, p.P)
		check := new(big.Int).Mul(y, y)
		check.Mod(check, p.P)
		if check.Cmp(y2) != 0 {
			continue // not a quadratic residue; try next counter
		}
		pt := p.cofactorMul(&Point{X: x, Y: y})
		if pt.IsInfinity() {
			continue
		}
		return pt
	}
}

// hashToField expands (msg, ctr) into a field element via SHA-256 in
// counter mode, taking enough blocks to cover the field width plus a
// 128-bit reduction margin.
func (p *Params) hashToField(msg []byte, ctr uint32) *big.Int {
	need := (p.P.BitLen()+7)/8 + 16
	var out []byte
	var block uint32
	for len(out) < need {
		h := sha256.New()
		h.Write([]byte("cicero/pairing/h2f"))
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[:4], ctr)
		binary.BigEndian.PutUint32(hdr[4:], block)
		h.Write(hdr[:])
		h.Write(msg)
		out = h.Sum(out)
		block++
	}
	x := new(big.Int).SetBytes(out[:need])
	return x.Mod(x, p.P)
}

// HashToScalar hashes arbitrary bytes to a scalar modulo r.
func (p *Params) HashToScalar(msg []byte) *big.Int {
	need := (p.R.BitLen()+7)/8 + 16
	var out []byte
	var block uint32
	for len(out) < need {
		h := sha256.New()
		h.Write([]byte("cicero/pairing/h2s"))
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], block)
		h.Write(hdr[:])
		h.Write(msg)
		out = h.Sum(out)
		block++
	}
	x := new(big.Int).SetBytes(out[:need])
	return x.Mod(x, p.R)
}
