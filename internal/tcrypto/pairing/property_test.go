package pairing

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests over randomized scalars, complementing the deterministic
// group-law tests in pairing_test.go.

// randScalar derives a group scalar from quick's fuzz input.
func randScalar(p *Params, raw int64) *big.Int {
	s := new(big.Int).SetInt64(raw)
	s.Mod(s, p.R)
	if s.Sign() == 0 {
		s.SetInt64(1)
	}
	return s
}

func TestScalarMulDistributesProperty(t *testing.T) {
	p := Fast254()
	f := func(a, b int64) bool {
		sa := randScalar(p, a)
		sb := randScalar(p, b)
		sum := new(big.Int).Add(sa, sb)
		left := p.ScalarBaseMul(sum)
		right := p.Add(p.ScalarBaseMul(sa), p.ScalarBaseMul(sb))
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestScalarMulAssociatesProperty(t *testing.T) {
	p := Fast254()
	f := func(a, b int64) bool {
		sa := randScalar(p, a)
		sb := randScalar(p, b)
		// (a·b)·G == a·(b·G)
		prod := new(big.Int).Mul(sa, sb)
		left := p.ScalarBaseMul(prod)
		right := p.ScalarMul(p.ScalarBaseMul(sb), sa)
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPointEncodingRoundTripProperty(t *testing.T) {
	p := Fast254()
	f := func(raw int64) bool {
		pt := p.ScalarBaseMul(randScalar(p, raw))
		dec, err := p.ParsePoint(p.PointBytes(pt))
		return err == nil && dec.Equal(pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPointBytesFixedWidthProperty(t *testing.T) {
	p := Fast254()
	want := 1 + 2*p.coordWidth()
	f := func(raw int64) bool {
		pt := p.ScalarBaseMul(randScalar(p, raw))
		return len(p.PointBytes(pt)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHashToG1SubgroupProperty(t *testing.T) {
	p := Fast254()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 25; i++ {
		msg := make([]byte, 1+rng.Intn(64))
		rng.Read(msg)
		pt := p.HashToG1(msg)
		if !p.IsOnCurve(pt) {
			t.Fatalf("hashed point off curve for %x", msg)
		}
		if !p.ScalarMul(pt, p.R).IsInfinity() {
			t.Fatalf("hashed point outside order-r subgroup for %x", msg)
		}
	}
}

func TestPairingBilinearProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("pairing property test skipped in short mode")
	}
	p := Fast254()
	base := p.Pair(p.G, p.G)
	f := func(a, b int64) bool {
		sa := randScalar(p, a)
		sb := randScalar(p, b)
		left := p.Pair(p.ScalarBaseMul(sa), p.ScalarBaseMul(sb))
		right := p.GTExp(base, new(big.Int).Mul(sa, sb))
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
