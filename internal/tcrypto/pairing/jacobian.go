package pairing

import "math/big"

// Jacobian-coordinate scalar multiplication. Affine double-and-add pays
// one modular inversion per scalar bit (the chord/tangent slope); in
// Jacobian projective coordinates (X, Y, Z) ~ (X/Z², Y/Z³) the whole walk
// is inversion-free and a single inversion converts the result back to
// affine. This is the hot path under Combine's Lagrange exponentiation,
// share signing, batched share verification, and hashing to the curve.
//
// Formulas are the standard dbl-2007-bl / madd-2007-bl for
// y² = x³ + a·x with a = 1 (this package's supersingular curve).

// jacPoint is a point in Jacobian coordinates; z == 0 is infinity.
type jacPoint struct {
	x, y, z *big.Int
}

// jacInfinity returns the identity.
func jacInfinity() *jacPoint {
	return &jacPoint{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
}

// fromAffine lifts an affine point to Jacobian coordinates.
func fromAffine(pt *Point) *jacPoint {
	return &jacPoint{x: new(big.Int).Set(pt.X), y: new(big.Int).Set(pt.Y), z: big.NewInt(1)}
}

// toAffine projects back, paying the single inversion.
func (p *Params) toAffine(j *jacPoint) *Point {
	if j.z.Sign() == 0 {
		return Infinity()
	}
	zInv := new(big.Int).ModInverse(j.z, p.P)
	zInv2 := new(big.Int).Mul(zInv, zInv)
	zInv2.Mod(zInv2, p.P)
	x := new(big.Int).Mul(j.x, zInv2)
	x.Mod(x, p.P)
	zInv3 := zInv2.Mul(zInv2, zInv)
	zInv3.Mod(zInv3, p.P)
	y := new(big.Int).Mul(j.y, zInv3)
	y.Mod(y, p.P)
	return &Point{X: x, Y: y}
}

// jacDouble returns 2·j.
func (p *Params) jacDouble(j *jacPoint) *jacPoint {
	if j.z.Sign() == 0 || j.y.Sign() == 0 {
		return jacInfinity()
	}
	xx := new(big.Int).Mul(j.x, j.x)
	xx.Mod(xx, p.P)
	yy := new(big.Int).Mul(j.y, j.y)
	yy.Mod(yy, p.P)
	yyyy := new(big.Int).Mul(yy, yy)
	yyyy.Mod(yyyy, p.P)
	zz := new(big.Int).Mul(j.z, j.z)
	zz.Mod(zz, p.P)
	// S = 2·((X+YY)² − XX − YYYY)
	s := new(big.Int).Add(j.x, yy)
	s.Mul(s, s)
	s.Sub(s, xx)
	s.Sub(s, yyyy)
	s.Lsh(s, 1)
	s.Mod(s, p.P)
	// M = 3·XX + a·ZZ² with a = 1.
	m := new(big.Int).Lsh(xx, 1)
	m.Add(m, xx)
	zz2 := new(big.Int).Mul(zz, zz)
	m.Add(m, zz2)
	m.Mod(m, p.P)
	// X3 = M² − 2·S
	x3 := new(big.Int).Mul(m, m)
	x3.Sub(x3, s)
	x3.Sub(x3, s)
	x3.Mod(x3, p.P)
	// Y3 = M·(S − X3) − 8·YYYY
	y3 := new(big.Int).Sub(s, x3)
	y3.Mul(y3, m)
	y3.Sub(y3, new(big.Int).Lsh(yyyy, 3))
	y3.Mod(y3, p.P)
	// Z3 = (Y+Z)² − YY − ZZ = 2·Y·Z
	z3 := new(big.Int).Add(j.y, j.z)
	z3.Mul(z3, z3)
	z3.Sub(z3, yy)
	z3.Sub(z3, zz)
	z3.Mod(z3, p.P)
	return &jacPoint{x: x3, y: y3, z: z3}
}

// jacAddAffine returns j + pt for an affine pt (mixed addition).
func (p *Params) jacAddAffine(j *jacPoint, pt *Point) *jacPoint {
	if j.z.Sign() == 0 {
		return fromAffine(pt)
	}
	z1z1 := new(big.Int).Mul(j.z, j.z)
	z1z1.Mod(z1z1, p.P)
	u2 := new(big.Int).Mul(pt.X, z1z1)
	u2.Mod(u2, p.P)
	s2 := new(big.Int).Mul(pt.Y, j.z)
	s2.Mul(s2, z1z1)
	s2.Mod(s2, p.P)
	h := new(big.Int).Sub(u2, j.x)
	h.Mod(h, p.P)
	r := new(big.Int).Sub(s2, j.y)
	r.Mod(r, p.P)
	if h.Sign() == 0 {
		if r.Sign() == 0 {
			return p.jacDouble(j)
		}
		return jacInfinity()
	}
	r.Lsh(r, 1)
	r.Mod(r, p.P)
	hh := new(big.Int).Mul(h, h)
	hh.Mod(hh, p.P)
	i := new(big.Int).Lsh(hh, 2)
	i.Mod(i, p.P)
	jj := new(big.Int).Mul(h, i)
	jj.Mod(jj, p.P)
	v := new(big.Int).Mul(j.x, i)
	v.Mod(v, p.P)
	// X3 = r² − J − 2·V
	x3 := new(big.Int).Mul(r, r)
	x3.Sub(x3, jj)
	x3.Sub(x3, v)
	x3.Sub(x3, v)
	x3.Mod(x3, p.P)
	// Y3 = r·(V − X3) − 2·Y1·J
	y3 := new(big.Int).Sub(v, x3)
	y3.Mul(y3, r)
	t := new(big.Int).Mul(j.y, jj)
	t.Lsh(t, 1)
	y3.Sub(y3, t)
	y3.Mod(y3, p.P)
	// Z3 = (Z1+H)² − Z1Z1 − HH = 2·Z1·H
	z3 := new(big.Int).Add(j.z, h)
	z3.Mul(z3, z3)
	z3.Sub(z3, z1z1)
	z3.Sub(z3, hh)
	z3.Mod(z3, p.P)
	return &jacPoint{x: x3, y: y3, z: z3}
}

// naf returns the non-adjacent form of a non-negative k, least
// significant digit first. NAF cuts the expected non-zero digit density
// from 1/2 to 1/3, and the negative digits cost nothing extra because
// negating an affine point is free.
func naf(k *big.Int) []int8 {
	digits := make([]int8, 0, k.BitLen()+1)
	n := new(big.Int).Set(k)
	one := big.NewInt(1)
	for n.Sign() > 0 {
		if n.Bit(0) == 1 {
			if n.Bits()[0]&3 == 1 {
				digits = append(digits, 1)
				n.Sub(n, one)
			} else {
				digits = append(digits, -1)
				n.Add(n, one)
			}
		} else {
			digits = append(digits, 0)
		}
		n.Rsh(n, 1)
	}
	return digits
}

// balancedNAF recodes a scalar already reduced to [0, r) into NAF digits
// of its balanced representative: whichever of kr and kr−r is shorter,
// the latter signalled by flip=true (the caller multiplies the negated
// point instead). Scalars near r — notably Lagrange coefficients of
// consecutive-index quorums, which are small negative integers mod r —
// collapse from full field width to a handful of bits.
func (p *Params) balancedNAF(kr *big.Int) (digits []int8, flip bool) {
	neg := new(big.Int).Sub(p.R, kr)
	if neg.BitLen() < kr.BitLen() {
		return naf(neg), true
	}
	return naf(kr), false
}

// scalarMulDigits walks a signed-digit expansion over pt.
func (p *Params) scalarMulDigits(pt *Point, digits []int8) *Point {
	neg := p.Neg(pt)
	acc := jacInfinity()
	for i := len(digits) - 1; i >= 0; i-- {
		acc = p.jacDouble(acc)
		switch digits[i] {
		case 1:
			acc = p.jacAddAffine(acc, pt)
		case -1:
			acc = p.jacAddAffine(acc, neg)
		}
	}
	return p.toAffine(acc)
}

// scalarMulJacobian computes k·pt (k non-negative, not necessarily below
// the group order — cofactor clearing passes h) via inversion-free signed
// double-and-add.
func (p *Params) scalarMulJacobian(pt *Point, k *big.Int) *Point {
	return p.scalarMulDigits(pt, naf(k))
}

// MultiScalarMul computes Σᵢ kᵢ·ptᵢ with a single shared doubling chain
// (Straus interleaving): one doubling per scalar bit regardless of the
// number of terms, plus sparse NAF additions per term. This is the shape
// of threshold combining (Σ λᵢ·σᵢ) and of random-linear-combination
// batch verification (Σ cᵢ·σᵢ, Σ cᵢ·vkᵢ). Scalars are reduced modulo r.
func (p *Params) MultiScalarMul(points []*Point, scalars []*big.Int) *Point {
	if len(points) != len(scalars) {
		panic("pairing: MultiScalarMul length mismatch")
	}
	type term struct {
		pt, neg *Point
		digits  []int8
	}
	terms := make([]term, 0, len(points))
	maxLen := 0
	for i, pt := range points {
		kr := new(big.Int).Mod(scalars[i], p.R)
		if kr.Sign() == 0 || pt.IsInfinity() {
			continue
		}
		digits, flip := p.balancedNAF(kr)
		t := term{pt: pt, neg: p.Neg(pt), digits: digits}
		if flip {
			t.pt, t.neg = t.neg, t.pt
		}
		if len(t.digits) > maxLen {
			maxLen = len(t.digits)
		}
		terms = append(terms, t)
	}
	if len(terms) == 0 {
		return Infinity()
	}
	acc := jacInfinity()
	for i := maxLen - 1; i >= 0; i-- {
		acc = p.jacDouble(acc)
		for _, t := range terms {
			if i >= len(t.digits) {
				continue
			}
			switch t.digits[i] {
			case 1:
				acc = p.jacAddAffine(acc, t.pt)
			case -1:
				acc = p.jacAddAffine(acc, t.neg)
			}
		}
	}
	return p.toAffine(acc)
}
