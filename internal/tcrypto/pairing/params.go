// Package pairing implements a symmetric (Type-A) bilinear pairing over a
// supersingular elliptic curve, equivalent to the construction used by the
// Pairing-Based Cryptography (PBC) library's default "Type A" parameters
// that the Cicero paper relies on for BLS threshold signatures.
//
// The curve is E: y^2 = x^3 + x over F_p with p ≡ 3 (mod 4), which is
// supersingular with #E(F_p) = p + 1 and embedding degree 2. G1 is the
// order-r subgroup of E(F_p) for a prime r | p+1, and the target group GT
// lives in F_{p^2}. The pairing is the reduced Tate pairing composed with
// the distortion map φ(x, y) = (−x, i·y), which makes it symmetric:
// e: G1 × G1 → GT.
//
// The implementation uses only math/big and crypto stdlib primitives and is
// intended for protocol simulation and reproduction, matching the message
// sizes, flows, and verification semantics of BLS threshold signatures.
package pairing

import (
	"fmt"
	"math/big"
	"sync"
)

// Params describes a Type-A pairing group: a 512-bit (or smaller) base
// field prime p = h·r − 1 with p ≡ 3 (mod 4) and a prime subgroup order r.
type Params struct {
	// P is the base field prime, p ≡ 3 (mod 4).
	P *big.Int
	// R is the prime order of the pairing groups G1 and GT.
	R *big.Int
	// H is the cofactor, with p + 1 = h·r.
	H *big.Int
	// G is the canonical generator of G1, derived by hashing a fixed
	// domain-separation tag to the curve.
	G *Point

	// sqrtExp caches (p+1)/4 for square roots in F_p.
	sqrtExp *big.Int

	// Barrett reduction constants for the base field: mu = ⌊2^(2k)/p⌋ with
	// k = p.BitLen(), and twoPSquared = 2p² for lifting the negative
	// intermediates that gtMul/gtSquare produce into modP's domain.
	barrettMu   *big.Int
	barrettLo   uint // k − 1
	barrettHi   uint // k + 1
	twoPSquared *big.Int
}

// modP reduces x into [0, p) in place and returns x. It is a drop-in,
// bit-identical replacement for x.Mod(x, p.P) on the field hot paths,
// using Barrett reduction (two multiplications and shifts) instead of a
// full division. x must lie in (−2p², 4p²), which covers every product of
// reduced field elements and the small sums/differences the Miller loop
// and F_{p²} arithmetic produce.
func (p *Params) modP(x *big.Int) *big.Int {
	if x.Sign() < 0 {
		x.Add(x, p.twoPSquared)
	}
	q := new(big.Int).Rsh(x, p.barrettLo)
	q.Mul(q, p.barrettMu)
	q.Rsh(q, p.barrettHi)
	q.Mul(q, p.P)
	x.Sub(x, q)
	// The quotient estimate never overshoots, so x ≥ x mod p here; for
	// inputs below 4p² it undershoots by at most a few multiples of p.
	for x.Cmp(p.P) >= 0 {
		x.Sub(x, p.P)
	}
	return x
}

// mustInt parses a base-10 integer literal, panicking on malformed input.
// It is only invoked on compile-time constants below.
func mustInt(s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 10)
	if !ok {
		panic(fmt.Sprintf("pairing: bad integer literal %q", s))
	}
	return v
}

// newParams validates the (p, r, h) triple and derives the generator.
func newParams(p, r, h *big.Int) *Params {
	params := &Params{P: p, R: r, H: h}
	// p ≡ 3 (mod 4) so square roots are x^((p+1)/4).
	if new(big.Int).Mod(p, big.NewInt(4)).Int64() != 3 {
		panic("pairing: p must be ≡ 3 (mod 4)")
	}
	// p + 1 = h·r.
	check := new(big.Int).Mul(h, r)
	check.Sub(check, big.NewInt(1))
	if check.Cmp(p) != 0 {
		panic("pairing: p+1 != h*r")
	}
	params.sqrtExp = new(big.Int).Add(p, big.NewInt(1))
	params.sqrtExp.Rsh(params.sqrtExp, 2)
	k := uint(p.BitLen())
	params.barrettMu = new(big.Int).Lsh(big.NewInt(1), 2*k)
	params.barrettMu.Quo(params.barrettMu, p)
	params.barrettLo = k - 1
	params.barrettHi = k + 1
	params.twoPSquared = new(big.Int).Mul(p, p)
	params.twoPSquared.Lsh(params.twoPSquared, 1)
	params.G = params.HashToG1([]byte("cicero/pairing/type-a/generator/v1"))
	return params
}

// Std512 returns the default 512-bit-field parameter set (≈ PBC Type-A
// defaults: 160-bit group order, 512-bit field). The returned value is
// shared and must be treated as read-only.
var Std512 = sync.OnceValue(func() *Params {
	return newParams(
		mustInt("11344987417620570215211206517385987195581706364720666467356491075591632781812873574295364175073485513830782100353380300285923225305048550682171445884404127"),
		mustInt("1236646420726429853416795733647470359079195292693"),
		mustInt("9173994463960286046443283581208347763186259956673124494950355357547691504353939232280074212440502746219296"),
	)
})

// Fast254 returns a reduced-size parameter set (254-bit field, 80-bit group
// order) used to keep large-scale simulations fast. It provides the same
// algebraic structure with toy security. The returned value is shared and
// must be treated as read-only.
var Fast254 = sync.OnceValue(func() *Params {
	return newParams(
		mustInt("26032073662923519186769407859612151225879900140760191024567837059931701108467"),
		mustInt("1087150122137225958799007"),
		mustInt("23945242826029513411849172299223580994042798784118924"),
	)
})
