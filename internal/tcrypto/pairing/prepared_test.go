package pairing

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func TestPairPreparedMatchesPair(t *testing.T) {
	p := testParams()
	for i := 0; i < 8; i++ {
		ka, _ := p.RandomScalar(rand.Reader)
		kb, _ := p.RandomScalar(rand.Reader)
		a := p.ScalarBaseMul(ka)
		b := p.ScalarBaseMul(kb)
		want := p.Pair(a, b)
		got := p.PairPrepared(p.Prepare(a), b)
		if !got.Equal(want) {
			t.Fatalf("iteration %d: PairPrepared != Pair", i)
		}
	}
}

func TestPairPreparedHashedPoints(t *testing.T) {
	p := testParams()
	hm := p.HashToG1([]byte("prepared/hashed"))
	k, _ := p.RandomScalar(rand.Reader)
	sig := p.ScalarMul(hm, k)
	if !p.PairPrepared(p.Prepare(hm), sig).Equal(p.Pair(hm, sig)) {
		t.Fatal("prepared pairing disagrees on hashed point")
	}
	// Symmetry survives preparation: e(a, b) == e(b, a).
	if !p.PairPrepared(p.Prepare(sig), hm).Equal(p.Pair(hm, sig)) {
		t.Fatal("prepared pairing is not symmetric")
	}
}

func TestPairPreparedInfinity(t *testing.T) {
	p := testParams()
	k, _ := p.RandomScalar(rand.Reader)
	a := p.ScalarBaseMul(k)
	if !p.PairPrepared(p.Prepare(Infinity()), a).IsOne() {
		t.Fatal("e(∞, a) != 1")
	}
	if !p.PairPrepared(p.Prepare(a), Infinity()).IsOne() {
		t.Fatal("e(a, ∞) != 1")
	}
}

func TestPairProductMatchesPairs(t *testing.T) {
	p := testParams()
	for n := 1; n <= 4; n++ {
		terms := make([]ProductTerm, 0, n)
		want := gtOne()
		for i := 0; i < n; i++ {
			ka, _ := p.RandomScalar(rand.Reader)
			kb, _ := p.RandomScalar(rand.Reader)
			a := p.ScalarBaseMul(ka)
			b := p.ScalarBaseMul(kb)
			want = p.gtMul(want, p.Pair(a, b))
			if i%2 == 0 {
				terms = append(terms, ProductTerm{Prep: p.Prepare(a), B: b})
			} else {
				terms = append(terms, ProductTerm{A: a, B: b}) // live term
			}
		}
		got := p.PairProduct(terms...)
		if !got.Equal(want) {
			t.Fatalf("n=%d: PairProduct != ∏ Pair", n)
		}
	}
}

func TestPairProductVerificationEquation(t *testing.T) {
	// The BLS verification identity: for σ = x·H(m) and X = x·G,
	// e(G, σ)·e(X, −H(m)) == 1, and it breaks for any other signature.
	p := testParams()
	x, _ := p.RandomScalar(rand.Reader)
	X := p.ScalarBaseMul(x)
	hm := p.HashToG1([]byte("product/verify"))
	sigma := p.ScalarMul(hm, x)

	prepG := p.Prepare(p.G)
	prepX := p.Prepare(X)
	if !p.PairProduct(
		ProductTerm{Prep: prepG, B: sigma},
		ProductTerm{Prep: prepX, B: p.Neg(hm)},
	).IsOne() {
		t.Fatal("valid signature rejected by product check")
	}
	forged := p.Add(sigma, p.G)
	if p.PairProduct(
		ProductTerm{Prep: prepG, B: forged},
		ProductTerm{Prep: prepX, B: p.Neg(hm)},
	).IsOne() {
		t.Fatal("forged signature accepted by product check")
	}
}

func TestPairProductEmptyAndInfinity(t *testing.T) {
	p := testParams()
	if !p.PairProduct().IsOne() {
		t.Fatal("empty product != 1")
	}
	k, _ := p.RandomScalar(rand.Reader)
	a := p.ScalarBaseMul(k)
	if !p.PairProduct(ProductTerm{A: a, B: Infinity()}).IsOne() {
		t.Fatal("product with infinite evaluation point != 1")
	}
}

func TestStd512PreparedMatchesPair(t *testing.T) {
	if testing.Short() {
		t.Skip("512-bit pairing is slow")
	}
	p := Std512()
	k, _ := p.RandomScalar(rand.Reader)
	a := p.ScalarBaseMul(k)
	b := p.HashToG1([]byte("std512/prepared"))
	if !p.PairPrepared(p.Prepare(a), b).Equal(p.Pair(a, b)) {
		t.Fatal("std512: PairPrepared != Pair")
	}
}

func BenchmarkPrepareStd512(b *testing.B) {
	p := Std512()
	k, _ := p.RandomScalar(rand.Reader)
	a := p.ScalarBaseMul(k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gtSink = p.PairPrepared(p.Prepare(a), p.G)
	}
}

func BenchmarkPairPreparedStd512(b *testing.B) {
	p := Std512()
	k, _ := p.RandomScalar(rand.Reader)
	a := p.ScalarBaseMul(k)
	prep := p.Prepare(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gtSink = p.PairPrepared(prep, p.G)
	}
}

func BenchmarkPairPreparedFast254(b *testing.B) {
	p := Fast254()
	k, _ := p.RandomScalar(rand.Reader)
	a := p.ScalarBaseMul(k)
	prep := p.Prepare(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gtSink = p.PairPrepared(prep, p.G)
	}
}

// BenchmarkPairProductStd512 measures the two-pairing verification shape:
// both first arguments prepared, one shared loop, one final exponentiation.
func BenchmarkPairProductStd512(b *testing.B) {
	p := Std512()
	x, _ := p.RandomScalar(rand.Reader)
	X := p.ScalarBaseMul(x)
	hm := p.HashToG1([]byte("bench/product"))
	sigma := p.ScalarMul(hm, x)
	prepG := p.Prepare(p.G)
	prepX := p.Prepare(X)
	negHm := p.Neg(hm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gtSink = p.PairProduct(
			ProductTerm{Prep: prepG, B: sigma},
			ProductTerm{Prep: prepX, B: negHm},
		)
	}
}

var gtSink *GT

func TestMultiScalarMulMatchesSum(t *testing.T) {
	p := testParams()
	for n := 0; n <= 5; n++ {
		points := make([]*Point, n)
		scalars := make([]*big.Int, n)
		want := Infinity()
		for i := 0; i < n; i++ {
			k, _ := p.RandomScalar(rand.Reader)
			kp, _ := p.RandomScalar(rand.Reader)
			points[i] = p.ScalarBaseMul(kp)
			scalars[i] = k
			want = p.Add(want, p.ScalarMul(points[i], k))
		}
		got := p.MultiScalarMul(points, scalars)
		if !got.Equal(want) {
			t.Fatalf("n=%d: MultiScalarMul != Σ ScalarMul", n)
		}
	}
}

func TestMultiScalarMulEdgeCases(t *testing.T) {
	p := testParams()
	k, _ := p.RandomScalar(rand.Reader)
	a := p.ScalarBaseMul(k)
	// Zero scalar and infinity point contribute nothing.
	got := p.MultiScalarMul(
		[]*Point{a, Infinity(), a},
		[]*big.Int{big.NewInt(0), big.NewInt(5), big.NewInt(3)},
	)
	if !got.Equal(p.ScalarMul(a, big.NewInt(3))) {
		t.Fatal("MultiScalarMul mishandles zero scalar or infinity point")
	}
}
