package pairing

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Point is a point in G1, the order-r subgroup of E(F_p): y² = x³ + x.
// The zero value (nil coordinates) is the point at infinity. Points are
// immutable: all operations allocate fresh results.
type Point struct {
	X, Y *big.Int
}

// Infinity returns the identity element of G1.
func Infinity() *Point { return &Point{} }

// IsInfinity reports whether pt is the identity element.
func (pt *Point) IsInfinity() bool { return pt == nil || pt.X == nil }

// Equal reports whether two points are the same group element.
func (pt *Point) Equal(o *Point) bool {
	if pt.IsInfinity() || o.IsInfinity() {
		return pt.IsInfinity() && o.IsInfinity()
	}
	return pt.X.Cmp(o.X) == 0 && pt.Y.Cmp(o.Y) == 0
}

// Clone returns a deep copy of pt.
func (pt *Point) Clone() *Point {
	if pt.IsInfinity() {
		return Infinity()
	}
	return &Point{X: new(big.Int).Set(pt.X), Y: new(big.Int).Set(pt.Y)}
}

// String renders the point for debugging.
func (pt *Point) String() string {
	if pt.IsInfinity() {
		return "G1(∞)"
	}
	return fmt.Sprintf("G1(%s, %s)", pt.X.Text(16), pt.Y.Text(16))
}

// coordWidth is the byte width of one field element.
func (p *Params) coordWidth() int { return (p.P.BitLen() + 7) / 8 }

// PointSize returns the fixed byte length of a non-infinity point encoding
// (benchmarks use it to meter signature bytes without serializing).
func (p *Params) PointSize() int { return 1 + 2*p.coordWidth() }

// PointBytes returns a canonical encoding of pt: a one-byte tag (0 for
// infinity, 4 for affine) followed by fixed-width X and Y coordinates.
func (p *Params) PointBytes(pt *Point) []byte {
	w := p.coordWidth()
	out := make([]byte, 1+2*w)
	if pt.IsInfinity() {
		return out[:1]
	}
	out[0] = 4
	pt.X.FillBytes(out[1 : 1+w])
	pt.Y.FillBytes(out[1+w:])
	return out
}

// errBadPoint reports a malformed or off-curve encoding.
var errBadPoint = errors.New("pairing: invalid point encoding")

// ParsePoint decodes a point produced by PointBytes, rejecting encodings
// that are malformed or not on the curve.
func (p *Params) ParsePoint(data []byte) (*Point, error) {
	if len(data) == 1 && data[0] == 0 {
		return Infinity(), nil
	}
	w := p.coordWidth()
	if len(data) != 1+2*w || data[0] != 4 {
		return nil, errBadPoint
	}
	x := new(big.Int).SetBytes(data[1 : 1+w])
	y := new(big.Int).SetBytes(data[1+w:])
	pt := &Point{X: x, Y: y}
	if x.Cmp(p.P) >= 0 || y.Cmp(p.P) >= 0 || !p.IsOnCurve(pt) {
		return nil, errBadPoint
	}
	return pt, nil
}

// IsOnCurve reports whether pt satisfies y² = x³ + x over F_p. The point at
// infinity is on the curve.
func (p *Params) IsOnCurve(pt *Point) bool {
	if pt.IsInfinity() {
		return true
	}
	lhs := new(big.Int).Mul(pt.Y, pt.Y)
	lhs.Mod(lhs, p.P)
	rhs := new(big.Int).Mul(pt.X, pt.X)
	rhs.Mul(rhs, pt.X)
	rhs.Add(rhs, pt.X)
	rhs.Mod(rhs, p.P)
	return lhs.Cmp(rhs) == 0
}

// Neg returns −pt.
func (p *Params) Neg(pt *Point) *Point {
	if pt.IsInfinity() {
		return Infinity()
	}
	y := new(big.Int).Neg(pt.Y)
	y.Mod(y, p.P)
	return &Point{X: new(big.Int).Set(pt.X), Y: y}
}

// Add returns a + b in the curve group.
func (p *Params) Add(a, b *Point) *Point {
	if a.IsInfinity() {
		return b.Clone()
	}
	if b.IsInfinity() {
		return a.Clone()
	}
	if a.X.Cmp(b.X) == 0 {
		sum := new(big.Int).Add(a.Y, b.Y)
		sum.Mod(sum, p.P)
		if sum.Sign() == 0 {
			return Infinity()
		}
		return p.Double(a)
	}
	// λ = (y2 − y1)/(x2 − x1)
	num := new(big.Int).Sub(b.Y, a.Y)
	den := new(big.Int).Sub(b.X, a.X)
	den.Mod(den, p.P)
	den.ModInverse(den, p.P)
	lambda := num.Mul(num, den)
	lambda.Mod(lambda, p.P)
	return p.chord(a, b, lambda)
}

// Double returns 2·a.
func (p *Params) Double(a *Point) *Point {
	if a.IsInfinity() || a.Y.Sign() == 0 {
		return Infinity()
	}
	// λ = (3x² + 1)/(2y) for the curve y² = x³ + x.
	num := new(big.Int).Mul(a.X, a.X)
	num.Mul(num, big.NewInt(3))
	num.Add(num, big.NewInt(1))
	den := new(big.Int).Lsh(a.Y, 1)
	den.Mod(den, p.P)
	den.ModInverse(den, p.P)
	lambda := num.Mul(num, den)
	lambda.Mod(lambda, p.P)
	return p.chord(a, a, lambda)
}

// chord completes point addition given the chord/tangent slope.
func (p *Params) chord(a, b *Point, lambda *big.Int) *Point {
	x3 := new(big.Int).Mul(lambda, lambda)
	x3.Sub(x3, a.X)
	x3.Sub(x3, b.X)
	x3.Mod(x3, p.P)
	y3 := new(big.Int).Sub(a.X, x3)
	y3.Mul(y3, lambda)
	y3.Sub(y3, a.Y)
	y3.Mod(y3, p.P)
	return &Point{X: x3, Y: y3}
}

// ScalarMul returns k·pt using inversion-free Jacobian double-and-add
// (see jacobian.go). The scalar is reduced modulo the group order r and
// recoded to its balanced signed representative, so scalars that are
// small negative residues cost as little as small positive ones.
func (p *Params) ScalarMul(pt *Point, k *big.Int) *Point {
	kr := new(big.Int).Mod(k, p.R)
	if kr.Sign() == 0 || pt.IsInfinity() {
		return Infinity()
	}
	digits, flip := p.balancedNAF(kr)
	if flip {
		pt = p.Neg(pt)
	}
	return p.scalarMulDigits(pt, digits)
}

// ScalarBaseMul returns k·G for the canonical generator.
func (p *Params) ScalarBaseMul(k *big.Int) *Point {
	return p.ScalarMul(p.G, k)
}

// cofactorMul multiplies by the cofactor h to force a point of E(F_p) into
// the order-r subgroup. Unlike ScalarMul it does not reduce modulo r.
func (p *Params) cofactorMul(pt *Point) *Point {
	if pt.IsInfinity() {
		return Infinity()
	}
	return p.scalarMulJacobian(pt, p.H)
}

// RandomScalar returns a uniformly random scalar in [1, r−1].
func (p *Params) RandomScalar(rand io.Reader) (*big.Int, error) {
	max := new(big.Int).Sub(p.R, big.NewInt(1))
	for {
		buf := make([]byte, (p.R.BitLen()+15)/8)
		if _, err := io.ReadFull(rand, buf); err != nil {
			return nil, fmt.Errorf("pairing: read random scalar: %w", err)
		}
		k := new(big.Int).SetBytes(buf)
		k.Mod(k, max)
		k.Add(k, big.NewInt(1))
		if k.Sign() > 0 {
			return k, nil
		}
	}
}

// constantTimeByteEq is used by tests to compare encodings without
// early-exit timing artifacts.
func constantTimeByteEq(a, b []byte) bool {
	return len(a) == len(b) && subtle.ConstantTimeCompare(a, b) == 1
}
