package pairing

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

// testParams returns the small parameter set; the heavy 512-bit set is
// exercised separately in TestStd512Bilinear.
func testParams() *Params { return Fast254() }

func TestParamsSanity(t *testing.T) {
	for _, tc := range []struct {
		name   string
		params *Params
	}{
		{"fast254", Fast254()},
		{"std512", Std512()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.params
			if !p.R.ProbablyPrime(32) {
				t.Fatal("r is not prime")
			}
			if !p.P.ProbablyPrime(32) {
				t.Fatal("p is not prime")
			}
			if !p.IsOnCurve(p.G) {
				t.Fatal("generator not on curve")
			}
			if p.G.IsInfinity() {
				t.Fatal("generator is the identity")
			}
			if !p.ScalarMul(p.G, p.R).IsInfinity() {
				t.Fatal("generator order does not divide r")
			}
		})
	}
}

func TestGroupLaws(t *testing.T) {
	p := testParams()
	a, _ := p.RandomScalar(rand.Reader)
	b, _ := p.RandomScalar(rand.Reader)
	A := p.ScalarBaseMul(a)
	B := p.ScalarBaseMul(b)

	// Commutativity.
	if !p.Add(A, B).Equal(p.Add(B, A)) {
		t.Error("addition is not commutative")
	}
	// Associativity with a third point.
	c, _ := p.RandomScalar(rand.Reader)
	C := p.ScalarBaseMul(c)
	if !p.Add(p.Add(A, B), C).Equal(p.Add(A, p.Add(B, C))) {
		t.Error("addition is not associative")
	}
	// Identity.
	if !p.Add(A, Infinity()).Equal(A) {
		t.Error("identity law violated")
	}
	// Inverse.
	if !p.Add(A, p.Neg(A)).IsInfinity() {
		t.Error("inverse law violated")
	}
	// Distributivity of scalar mult: (a+b)G == aG + bG.
	sum := new(big.Int).Add(a, b)
	if !p.ScalarBaseMul(sum).Equal(p.Add(A, B)) {
		t.Error("scalar multiplication does not distribute")
	}
	// Doubling consistency.
	if !p.Double(A).Equal(p.Add(A, A)) {
		t.Error("double != add self")
	}
}

func TestScalarMulEdgeCases(t *testing.T) {
	p := testParams()
	if !p.ScalarBaseMul(big.NewInt(0)).IsInfinity() {
		t.Error("0*G should be infinity")
	}
	if !p.ScalarBaseMul(p.R).IsInfinity() {
		t.Error("r*G should be infinity")
	}
	if !p.ScalarBaseMul(big.NewInt(1)).Equal(p.G) {
		t.Error("1*G should be G")
	}
	// Scalars reduce mod r.
	k := big.NewInt(12345)
	kPlusR := new(big.Int).Add(k, p.R)
	if !p.ScalarBaseMul(k).Equal(p.ScalarBaseMul(kPlusR)) {
		t.Error("scalar multiplication should reduce mod r")
	}
	if !p.ScalarMul(Infinity(), k).IsInfinity() {
		t.Error("k*infinity should be infinity")
	}
}

func TestPointEncodingRoundTrip(t *testing.T) {
	p := testParams()
	k, _ := p.RandomScalar(rand.Reader)
	pt := p.ScalarBaseMul(k)
	enc := p.PointBytes(pt)
	dec, err := p.ParsePoint(enc)
	if err != nil {
		t.Fatalf("ParsePoint: %v", err)
	}
	if !dec.Equal(pt) {
		t.Fatal("round-trip mismatch")
	}
	if !constantTimeByteEq(p.PointBytes(dec), enc) {
		t.Fatal("re-encoding mismatch")
	}

	// Infinity round-trips.
	encInf := p.PointBytes(Infinity())
	decInf, err := p.ParsePoint(encInf)
	if err != nil || !decInf.IsInfinity() {
		t.Fatalf("infinity round-trip failed: %v", err)
	}
}

func TestParsePointRejectsGarbage(t *testing.T) {
	p := testParams()
	cases := [][]byte{
		nil,
		{},
		{1},
		make([]byte, 5),
		make([]byte, 1+2*p.coordWidth()), // tag 0 with trailing bytes
	}
	// Off-curve point: valid structure, wrong Y.
	pt := p.G.Clone()
	pt.Y = new(big.Int).Add(pt.Y, big.NewInt(1))
	bad := p.PointBytes(pt)
	cases = append(cases, bad)
	for i, c := range cases {
		if _, err := p.ParsePoint(c); err == nil {
			t.Errorf("case %d: expected error for invalid encoding", i)
		}
	}
}

func TestPairBilinear(t *testing.T) {
	p := testParams()
	a, _ := p.RandomScalar(rand.Reader)
	b, _ := p.RandomScalar(rand.Reader)

	base := p.Pair(p.G, p.G)
	if base.IsOne() {
		t.Fatal("pairing is degenerate: e(G, G) == 1")
	}

	// e(aG, bG) == e(G, G)^(ab)
	left := p.Pair(p.ScalarBaseMul(a), p.ScalarBaseMul(b))
	ab := new(big.Int).Mul(a, b)
	right := p.GTExp(base, ab)
	if !left.Equal(right) {
		t.Fatal("bilinearity violated: e(aG, bG) != e(G, G)^(ab)")
	}

	// Symmetry: e(P, Q) == e(Q, P).
	P := p.ScalarBaseMul(a)
	Q := p.ScalarBaseMul(b)
	if !p.Pair(P, Q).Equal(p.Pair(Q, P)) {
		t.Fatal("pairing is not symmetric")
	}

	// Linearity in the first argument: e(P+Q, G) == e(P, G)·e(Q, G).
	lhs := p.Pair(p.Add(P, Q), p.G)
	rhs := p.GTMul(p.Pair(P, p.G), p.Pair(Q, p.G))
	if !lhs.Equal(rhs) {
		t.Fatal("pairing is not linear in the first argument")
	}

	// Identity maps to one.
	if !p.Pair(Infinity(), Q).IsOne() {
		t.Fatal("e(∞, Q) != 1")
	}
	if !p.Pair(P, Infinity()).IsOne() {
		t.Fatal("e(P, ∞) != 1")
	}
}

func TestPairWithHashedPoints(t *testing.T) {
	p := testParams()
	// BLS core identity: e(x·H(m), G) == e(H(m), x·G).
	x, _ := p.RandomScalar(rand.Reader)
	hm := p.HashToG1([]byte("network update payload"))
	sig := p.ScalarMul(hm, x)
	pk := p.ScalarBaseMul(x)
	if !p.Pair(sig, p.G).Equal(p.Pair(hm, pk)) {
		t.Fatal("BLS verification identity fails")
	}
}

func TestStd512Bilinear(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 512-bit pairing in short mode")
	}
	p := Std512()
	a := big.NewInt(7919)
	b := big.NewInt(104729)
	left := p.Pair(p.ScalarBaseMul(a), p.ScalarBaseMul(b))
	right := p.GTExp(p.Pair(p.G, p.G), new(big.Int).Mul(a, b))
	if !left.Equal(right) {
		t.Fatal("bilinearity violated on 512-bit parameters")
	}
}

func TestHashToG1Deterministic(t *testing.T) {
	p := testParams()
	a := p.HashToG1([]byte("hello"))
	b := p.HashToG1([]byte("hello"))
	c := p.HashToG1([]byte("world"))
	if !a.Equal(b) {
		t.Fatal("hash-to-curve is not deterministic")
	}
	if a.Equal(c) {
		t.Fatal("distinct messages hashed to the same point")
	}
	if !p.IsOnCurve(a) || !p.ScalarMul(a, p.R).IsInfinity() {
		t.Fatal("hashed point not in the order-r subgroup")
	}
}

func TestHashToScalarRange(t *testing.T) {
	p := testParams()
	cfg := &quick.Config{MaxCount: 64}
	f := func(msg []byte) bool {
		s := p.HashToScalar(msg)
		return s.Sign() >= 0 && s.Cmp(p.R) < 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPairingHomomorphismProperty exercises the algebra the threshold
// scheme rests on: Lagrange combination commutes with the pairing.
func TestPairingHomomorphismProperty(t *testing.T) {
	p := testParams()
	hm := p.HashToG1([]byte("m"))
	x1, _ := p.RandomScalar(rand.Reader)
	x2, _ := p.RandomScalar(rand.Reader)
	// σ = x1·H + x2·H should verify against pk = (x1+x2)·G.
	sigma := p.Add(p.ScalarMul(hm, x1), p.ScalarMul(hm, x2))
	sum := new(big.Int).Add(x1, x2)
	pk := p.ScalarBaseMul(sum)
	if !p.Pair(sigma, p.G).Equal(p.Pair(hm, pk)) {
		t.Fatal("signature shares do not combine homomorphically")
	}
}

func BenchmarkPairFast254(b *testing.B) {
	p := Fast254()
	P := p.ScalarBaseMul(big.NewInt(123456789))
	Q := p.ScalarBaseMul(big.NewInt(987654321))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Pair(P, Q)
	}
}

func BenchmarkPairStd512(b *testing.B) {
	p := Std512()
	P := p.ScalarBaseMul(big.NewInt(123456789))
	Q := p.ScalarBaseMul(big.NewInt(987654321))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Pair(P, Q)
	}
}

func BenchmarkScalarMul(b *testing.B) {
	p := Fast254()
	k, _ := p.RandomScalar(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ScalarBaseMul(k)
	}
}

func BenchmarkHashToG1(b *testing.B) {
	p := Fast254()
	msg := []byte("flow-mod: s17 -> forward port 3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.HashToG1(msg)
	}
}
