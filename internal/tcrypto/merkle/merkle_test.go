package merkle

import (
	"fmt"
	"testing"
)

// batch builds n distinct leaves.
func batch(n int) [][]byte {
	leaves := make([][]byte, n)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf("update|%d|payload", i))
	}
	return leaves
}

// TestProofRoundTrip proves and verifies every leaf for every batch size
// from a single leaf through several non-powers of two.
func TestProofRoundTrip(t *testing.T) {
	for n := 1; n <= 20; n++ {
		leaves := batch(n)
		tree := NewTree(leaves)
		if tree.Len() != n {
			t.Fatalf("n=%d: Len() = %d", n, tree.Len())
		}
		root := tree.Root()
		for i := 0; i < n; i++ {
			proof := tree.Proof(i)
			if !Verify(root[:], leaves[i], i, n, proof) {
				t.Fatalf("n=%d leaf=%d: valid proof rejected", n, i)
			}
		}
	}
}

// TestProofSize checks the path length is ⌈log2 n⌉ for power-of-two sizes
// (the amortization argument: 64-update batches carry 6-hash proofs).
func TestProofSize(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		tree := NewTree(batch(n))
		want := 0
		for 1<<want < n {
			want++
		}
		if got := len(tree.Proof(0)); got != want {
			t.Fatalf("n=%d: proof has %d hashes, want %d", n, got, want)
		}
	}
}

// TestWrongLeafRejected checks a proof never validates different content.
func TestWrongLeafRejected(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 13} {
		leaves := batch(n)
		tree := NewTree(leaves)
		root := tree.Root()
		for i := 0; i < n; i++ {
			proof := tree.Proof(i)
			if Verify(root[:], []byte("forged update"), i, n, proof) {
				t.Fatalf("n=%d leaf=%d: forged leaf accepted", n, i)
			}
		}
	}
}

// TestWrongRootRejected checks a proof never validates against another
// batch's root.
func TestWrongRootRejected(t *testing.T) {
	leaves := batch(9)
	tree := NewTree(leaves)
	other := NewTree(batch(10)).Root()
	for i := range leaves {
		if Verify(other[:], leaves[i], i, 9, tree.Proof(i)) {
			t.Fatalf("leaf %d: proof accepted under a foreign root", i)
		}
	}
	if Verify(nil, leaves[0], 0, 9, tree.Proof(0)) {
		t.Fatal("nil root accepted")
	}
}

// TestWrongPositionRejected checks a proof is bound to its leaf index: a
// valid (leaf, path) pair presented at a different index must fail.
func TestWrongPositionRejected(t *testing.T) {
	leaves := batch(8)
	tree := NewTree(leaves)
	root := tree.Root()
	proof := tree.Proof(3)
	for i := 0; i < 8; i++ {
		if i == 3 {
			continue
		}
		if Verify(root[:], leaves[3], i, 8, proof) {
			t.Fatalf("proof for index 3 accepted at index %d", i)
		}
	}
	if Verify(root[:], leaves[3], 3, 4, proof) {
		t.Fatal("proof accepted under a wrong tree size")
	}
}

// TestMalformedProofRejected checks truncated, extended, and corrupted
// paths all fail, as do out-of-range indices.
func TestMalformedProofRejected(t *testing.T) {
	leaves := batch(6)
	tree := NewTree(leaves)
	root := tree.Root()
	proof := tree.Proof(2)
	if Verify(root[:], leaves[2], 2, 6, proof[:len(proof)-1]) {
		t.Fatal("truncated proof accepted")
	}
	extended := append(append([][]byte(nil), proof...), make([]byte, HashSize))
	if Verify(root[:], leaves[2], 2, 6, extended) {
		t.Fatal("extended proof accepted")
	}
	corrupted := make([][]byte, len(proof))
	for i := range proof {
		corrupted[i] = append([]byte(nil), proof[i]...)
	}
	corrupted[0][0] ^= 0xff
	if Verify(root[:], leaves[2], 2, 6, corrupted) {
		t.Fatal("corrupted proof accepted")
	}
	short := append(append([][]byte(nil), proof[:len(proof)-1]...), proof[len(proof)-1][:HashSize-1])
	if Verify(root[:], leaves[2], 2, 6, short) {
		t.Fatal("short sibling hash accepted")
	}
	if Verify(root[:], leaves[2], -1, 6, proof) || Verify(root[:], leaves[2], 6, 6, proof) {
		t.Fatal("out-of-range index accepted")
	}
	if tree.Proof(-1) != nil || tree.Proof(6) != nil {
		t.Fatal("Proof accepted an out-of-range index")
	}
}

// TestSingleLeaf checks the degenerate tree: root = leaf hash, empty path.
func TestSingleLeaf(t *testing.T) {
	leaves := batch(1)
	tree := NewTree(leaves)
	if root, want := tree.Root(), LeafHash(leaves[0]); root != want {
		t.Fatal("single-leaf root is not the leaf hash")
	}
	proof := tree.Proof(0)
	if len(proof) != 0 {
		t.Fatalf("single-leaf proof has %d hashes", len(proof))
	}
	root := tree.Root()
	if !Verify(root[:], leaves[0], 0, 1, proof) {
		t.Fatal("single-leaf proof rejected")
	}
}

// TestDomainSeparation checks an interior hash cannot masquerade as a
// leaf: a two-leaf tree's root must differ from the leaf hash of the
// concatenated leaf hashes.
func TestDomainSeparation(t *testing.T) {
	leaves := batch(2)
	tree := NewTree(leaves)
	l, r := LeafHash(leaves[0]), LeafHash(leaves[1])
	fake := LeafHash(append(append([]byte(nil), l[:]...), r[:]...))
	if tree.Root() == fake {
		t.Fatal("interior node collides with a leaf hash")
	}
}
