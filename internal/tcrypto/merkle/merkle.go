// Package merkle implements the binary Merkle tree used to amortize one
// threshold signature over a batch of network updates. A controller hashes
// every update in a delivered batch into a tree, threshold-signs only the
// root, and each dispatched update carries a compact inclusion proof; a
// switch verifies the proof with pure hashing and pays the pairing check
// once per batch root instead of once per update.
//
// The construction is RFC 6962's (Certificate Transparency): leaf hashes
// are domain-separated from interior hashes (0x00 vs 0x01 prefixes, so an
// interior node can never be reinterpreted as a leaf and vice versa), and
// a tree over n leaves splits at the largest power of two strictly less
// than n, which handles any leaf count without padding. Proof size is
// ⌈log2 n⌉ hashes.
package merkle

import (
	"bytes"
	"crypto/sha256"
)

// HashSize is the byte length of every node hash.
const HashSize = sha256.Size

// leafPrefix and nodePrefix domain-separate the two hash uses.
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// LeafHash hashes one leaf's content.
func LeafHash(leaf []byte) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(leaf)
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// nodeHash combines two subtree hashes.
func nodeHash(left, right [HashSize]byte) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(left[:])
	h.Write(right[:])
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// splitPoint returns the largest power of two strictly less than n (n >= 2).
func splitPoint(n int) int {
	k := 1
	for k<<1 < n {
		k <<= 1
	}
	return k
}

// Tree is a Merkle tree built once over a batch, answering the root and
// any leaf's inclusion proof without rehashing.
type Tree struct {
	leaves [][HashSize]byte
	root   [HashSize]byte
}

// NewTree hashes the leaves and computes the root. An empty batch has no
// meaningful root; callers must not build trees over zero leaves (the
// batching layer never signs an empty batch).
func NewTree(leaves [][]byte) *Tree {
	t := &Tree{leaves: make([][HashSize]byte, len(leaves))}
	for i, leaf := range leaves {
		t.leaves[i] = LeafHash(leaf)
	}
	if len(t.leaves) > 0 {
		t.root = subtreeRoot(t.leaves)
	}
	return t
}

// subtreeRoot computes the RFC 6962 root of a hashed-leaf range.
func subtreeRoot(hashes [][HashSize]byte) [HashSize]byte {
	if len(hashes) == 1 {
		return hashes[0]
	}
	k := splitPoint(len(hashes))
	return nodeHash(subtreeRoot(hashes[:k]), subtreeRoot(hashes[k:]))
}

// Len returns the leaf count.
func (t *Tree) Len() int { return len(t.leaves) }

// Root returns the tree root.
func (t *Tree) Root() [HashSize]byte { return t.root }

// Proof returns the inclusion proof for leaf index i: the sibling subtree
// hashes from the leaf up to the root. It returns nil when i is out of
// range.
func (t *Tree) Proof(i int) [][]byte {
	if i < 0 || i >= len(t.leaves) {
		return nil
	}
	return proofRange(t.leaves, i)
}

// proofRange builds the audit path of index i within the hashed-leaf range.
func proofRange(hashes [][HashSize]byte, i int) [][]byte {
	if len(hashes) == 1 {
		return [][]byte{}
	}
	k := splitPoint(len(hashes))
	var path [][]byte
	var sibling [HashSize]byte
	if i < k {
		path = proofRange(hashes[:k], i)
		sibling = subtreeRoot(hashes[k:])
	} else {
		path = proofRange(hashes[k:], i-k)
		sibling = subtreeRoot(hashes[:k])
	}
	return append(path, append([]byte(nil), sibling[:]...))
}

// Verify checks an inclusion proof: leaf content, its claimed index, the
// batch leaf count, the audit path, and the expected root. It is the
// switch-side check and uses only hashing. The index/size pair determines
// the left/right orientation at every level (RFC 6962's tree shape), so a
// proof cannot be replayed at a different position, and the path length
// must match the tree's depth at that position exactly.
func Verify(root []byte, leaf []byte, index, size int, path [][]byte) bool {
	if index < 0 || index >= size || size < 1 || len(root) != HashSize {
		return false
	}
	h, ok := proofRoot(LeafHash(leaf), index, size, path)
	return ok && bytes.Equal(h[:], root)
}

// proofRoot recomputes the subtree root from a leaf hash and its audit
// path, mirroring proofRange's shape: the path is ordered leaf to root, so
// the top-level sibling is consumed last.
func proofRoot(h [HashSize]byte, index, size int, path [][]byte) ([HashSize]byte, bool) {
	if size == 1 {
		return h, len(path) == 0
	}
	if len(path) == 0 {
		return h, false // path shorter than the tree is deep
	}
	sib := path[len(path)-1]
	if len(sib) != HashSize {
		return h, false
	}
	var s [HashSize]byte
	copy(s[:], sib)
	k := splitPoint(size)
	if index < k {
		sub, ok := proofRoot(h, index, k, path[:len(path)-1])
		return nodeHash(sub, s), ok
	}
	sub, ok := proofRoot(h, index-k, size-k, path[:len(path)-1])
	return nodeHash(s, sub), ok
}
