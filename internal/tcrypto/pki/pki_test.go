package pki

import (
	"crypto/rand"
	"errors"
	"testing"
)

func TestSealOpenRoundTrip(t *testing.T) {
	dir := NewDirectory()
	kp, err := NewKeyPair(rand.Reader, "dom0/sw/tor-1")
	if err != nil {
		t.Fatalf("NewKeyPair: %v", err)
	}
	dir.MustRegister(kp)

	env := kp.Seal([]byte("packet-in: unroutable dst=h9"))
	payload, err := dir.Open(env)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if string(payload) != "packet-in: unroutable dst=h9" {
		t.Fatalf("payload corrupted: %q", payload)
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	dir := NewDirectory()
	kp, _ := NewKeyPair(rand.Reader, "dom0/ctl/1")
	dir.MustRegister(kp)

	env := kp.Seal([]byte("legitimate event"))
	env.Payload = []byte("forged event")
	if _, err := dir.Open(env); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("expected ErrBadSignature, got %v", err)
	}
}

func TestOpenRejectsUnknownIdentity(t *testing.T) {
	dir := NewDirectory()
	kp, _ := NewKeyPair(rand.Reader, "intruder")
	env := kp.Seal([]byte("event from nowhere"))
	if _, err := dir.Open(env); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("expected ErrUnknownIdentity, got %v", err)
	}
}

func TestOpenRejectsMasquerade(t *testing.T) {
	// A malicious controller masquerading as a switch (the paper's §2.2
	// threat): it signs with its own key but claims a switch identity.
	dir := NewDirectory()
	sw, _ := NewKeyPair(rand.Reader, "dom0/sw/tor-1")
	evil, _ := NewKeyPair(rand.Reader, "dom0/ctl/666")
	dir.MustRegister(sw)
	dir.MustRegister(evil)

	env := evil.Seal([]byte("link down: s4-s5"))
	env.From = sw.ID // claim to be the switch
	if _, err := dir.Open(env); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("expected ErrBadSignature, got %v", err)
	}
}

func TestDuplicateRegistration(t *testing.T) {
	dir := NewDirectory()
	kp, _ := NewKeyPair(rand.Reader, "x")
	if err := dir.Register(kp.ID, kp.Public); err != nil {
		t.Fatalf("first Register: %v", err)
	}
	if err := dir.Register(kp.ID, kp.Public); !errors.Is(err, ErrDuplicateIdentity) {
		t.Fatalf("expected ErrDuplicateIdentity, got %v", err)
	}
}

func TestRemove(t *testing.T) {
	dir := NewDirectory()
	kp, _ := NewKeyPair(rand.Reader, "dom0/ctl/3")
	dir.MustRegister(kp)
	if dir.Len() != 1 {
		t.Fatalf("Len = %d, want 1", dir.Len())
	}
	dir.Remove(kp.ID)
	env := kp.Seal([]byte("m"))
	if _, err := dir.Open(env); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("expected ErrUnknownIdentity after removal, got %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	dir := NewDirectory()
	kp, _ := NewKeyPair(rand.Reader, "shared")
	dir.MustRegister(kp)
	env := kp.Seal([]byte("m"))
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				if _, err := dir.Open(env); err != nil {
					t.Errorf("Open: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

func BenchmarkSeal(b *testing.B) {
	kp, _ := NewKeyPair(rand.Reader, "bench")
	msg := []byte("packet-in: unroutable dst=h9 src=h2 size=1500")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kp.Seal(msg)
	}
}

func BenchmarkOpen(b *testing.B) {
	dir := NewDirectory()
	kp, _ := NewKeyPair(rand.Reader, "bench")
	dir.MustRegister(kp)
	env := kp.Seal([]byte("packet-in: unroutable dst=h9 src=h2 size=1500"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dir.Open(env); err != nil {
			b.Fatal(err)
		}
	}
}
