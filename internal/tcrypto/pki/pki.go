// Package pki provides the public key infrastructure the Cicero paper
// assumes for event authentication: every event source (switch, controller,
// administrator) holds an Ed25519 key pair registered in a directory, and
// all protocol messages that are not threshold-signed travel in signed
// envelopes bound to the sender's identity.
package pki

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Errors returned by the package.
var (
	// ErrUnknownIdentity reports a signature from an unregistered source.
	ErrUnknownIdentity = errors.New("pki: unknown identity")
	// ErrBadSignature reports a failed signature verification.
	ErrBadSignature = errors.New("pki: signature verification failed")
	// ErrDuplicateIdentity reports a second registration of the same name.
	ErrDuplicateIdentity = errors.New("pki: identity already registered")
)

// Identity names a protocol participant, e.g. "dom0/sw/tor-3" or
// "dom1/ctl/2".
type Identity string

// KeyPair is a participant's long-term signing key.
type KeyPair struct {
	ID      Identity
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// NewKeyPair generates a key pair for the given identity.
func NewKeyPair(rand io.Reader, id Identity) (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("pki: generate key for %q: %w", id, err)
	}
	return &KeyPair{ID: id, Public: pub, private: priv}, nil
}

// Seed exports the private key's 32-byte seed, the portable form a
// deployment planner packs into a node's signed provisioning bundle so a
// separate OS process can reconstruct the identical key pair.
func (k *KeyPair) Seed() []byte {
	return append([]byte(nil), k.private.Seed()...)
}

// KeyPairFromSeed rebuilds a key pair from an exported seed.
func KeyPairFromSeed(id Identity, seed []byte) (*KeyPair, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("pki: seed for %q: want %d bytes, got %d", id, ed25519.SeedSize, len(seed))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	pub := priv.Public().(ed25519.PublicKey)
	return &KeyPair{ID: id, Public: pub, private: priv}, nil
}

// Sign signs msg with the participant's private key.
func (k *KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.private, msg)
}

// Envelope is a signed message: the payload, the claimed sender, and the
// sender's signature over the payload.
type Envelope struct {
	From      Identity
	Payload   []byte
	Signature []byte
}

// Seal wraps a payload in a signed envelope.
func (k *KeyPair) Seal(payload []byte) Envelope {
	return Envelope{From: k.ID, Payload: payload, Signature: k.Sign(payload)}
}

// Directory maps identities to public keys. It is safe for concurrent use.
type Directory struct {
	mu   sync.RWMutex
	keys map[Identity]ed25519.PublicKey
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{keys: make(map[Identity]ed25519.PublicKey)}
}

// Register adds an identity's public key. Registering the same identity
// twice is an error (keys are long-term in Cicero; rotation would go
// through the membership protocol).
func (d *Directory) Register(id Identity, pub ed25519.PublicKey) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.keys[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateIdentity, id)
	}
	d.keys[id] = append(ed25519.PublicKey(nil), pub...)
	return nil
}

// MustRegister registers a key pair's public half, panicking on duplicates;
// it is a setup-time convenience for simulation assembly.
func (d *Directory) MustRegister(kp *KeyPair) {
	if err := d.Register(kp.ID, kp.Public); err != nil {
		panic(err)
	}
}

// Lookup returns the public key for an identity.
func (d *Directory) Lookup(id Identity) (ed25519.PublicKey, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	pub, ok := d.keys[id]
	return pub, ok
}

// Remove deletes an identity (e.g., a controller removed from the control
// plane whose event-layer key should no longer be accepted).
func (d *Directory) Remove(id Identity) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.keys, id)
}

// Verify checks msg's signature against the registered key for id.
func (d *Directory) Verify(id Identity, msg, sig []byte) error {
	pub, ok := d.Lookup(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownIdentity, id)
	}
	if !ed25519.Verify(pub, msg, sig) {
		return fmt.Errorf("%w: from %q", ErrBadSignature, id)
	}
	return nil
}

// Open verifies a signed envelope and returns its payload.
func (d *Directory) Open(env Envelope) ([]byte, error) {
	if err := d.Verify(env.From, env.Payload, env.Signature); err != nil {
		return nil, err
	}
	return env.Payload, nil
}

// Len returns the number of registered identities.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.keys)
}
