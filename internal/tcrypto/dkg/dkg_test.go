package dkg

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"

	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/pairing"
)

func testScheme() *bls.Scheme { return bls.NewScheme(pairing.Fast254()) }

func TestRunProducesWorkingThresholdKey(t *testing.T) {
	s := testScheme()
	const threshold, n = 2, 4
	gk, shares, err := Run(s, rand.Reader, threshold, n)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gk.T != threshold || gk.N != n {
		t.Fatalf("group key (t=%d, n=%d), want (%d, %d)", gk.T, gk.N, threshold, n)
	}
	msg := []byte("dkg-generated update")
	sigShares := []bls.SignatureShare{
		s.SignShare(shares[1], msg),
		s.SignShare(shares[3], msg),
	}
	sig, err := s.Combine(gk, sigShares)
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if !s.Verify(gk.PK, msg, sig) {
		t.Fatal("signature from DKG shares failed to verify")
	}
}

func TestSharePublicKeysConsistent(t *testing.T) {
	s := testScheme()
	gk, shares, err := Run(s, rand.Reader, 3, 4)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, share := range shares {
		want := s.Params.ScalarBaseMul(share.Scalar)
		got := s.SharePublicKey(gk, share.Index)
		if !got.Equal(want) {
			t.Fatalf("participant %d: verification key mismatch", share.Index)
		}
	}
}

func TestNoParticipantKnowsGroupSecret(t *testing.T) {
	s := testScheme()
	gk, shares, err := Run(s, rand.Reader, 3, 4)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// No single share scalar is the group secret: the share's public point
	// must differ from the group public key.
	for _, share := range shares {
		if s.Params.ScalarBaseMul(share.Scalar).Equal(gk.PK.Point) {
			t.Fatalf("participant %d's share IS the group secret", share.Index)
		}
	}
}

func TestHandleSubShareDetectsBadDealer(t *testing.T) {
	s := testScheme()
	honest, err := NewParticipant(s, 1, 2, 3)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	if _, _, err := honest.Start(rand.Reader); err != nil {
		t.Fatalf("Start: %v", err)
	}
	evil, err := NewParticipant(s, 2, 2, 3)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	deal, subShares, err := evil.Start(rand.Reader)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := honest.HandleDeal(deal); err != nil {
		t.Fatalf("HandleDeal: %v", err)
	}
	// Corrupt the sub-share destined for participant 1.
	bad := subShares[0]
	bad.Value = new(big.Int).Add(bad.Value, big.NewInt(1))
	if err := honest.HandleSubShare(bad); !errors.Is(err, ErrInvalidSubShare) {
		t.Fatalf("expected ErrInvalidSubShare, got %v", err)
	}
}

func TestHandleSubShareRouting(t *testing.T) {
	s := testScheme()
	p, _ := NewParticipant(s, 1, 2, 3)
	if _, _, err := p.Start(rand.Reader); err != nil {
		t.Fatal(err)
	}
	if err := p.HandleSubShare(SubShare{Dealer: 2, Recipient: 3, Value: big.NewInt(1)}); !errors.Is(err, ErrWrongRecipient) {
		t.Errorf("expected ErrWrongRecipient, got %v", err)
	}
	if err := p.HandleSubShare(SubShare{Dealer: 9, Recipient: 1, Value: big.NewInt(1)}); !errors.Is(err, ErrUnknownDealer) {
		t.Errorf("expected ErrUnknownDealer, got %v", err)
	}
}

func TestFinalizeRequiresQuorumOfDealers(t *testing.T) {
	s := testScheme()
	p, _ := NewParticipant(s, 1, 3, 4)
	if _, _, err := p.Start(rand.Reader); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Finalize([]uint32{1}); !errors.Is(err, ErrTooFewDealers) {
		t.Errorf("expected ErrTooFewDealers, got %v", err)
	}
}

func TestResharePreservesPublicKey(t *testing.T) {
	s := testScheme()
	gk, shares, err := Run(s, rand.Reader, 2, 4)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Grow the control plane: 4 -> 5 members, threshold 2 (paper: add
	// controller triggers DKG with new quorum size).
	newGK, newShares, err := RunReshare(s, rand.Reader, gk, shares, 2, 5)
	if err != nil {
		t.Fatalf("RunReshare: %v", err)
	}
	if !newGK.PK.Point.Equal(gk.PK.Point) {
		t.Fatal("reshare changed the group public key")
	}
	if newGK.N != 5 || len(newShares) != 5 {
		t.Fatalf("expected 5 new shares, got %d", len(newShares))
	}
	// New shares sign; signature verifies under the ORIGINAL public key.
	msg := []byte("post-reshare update")
	sig, err := s.Combine(newGK, []bls.SignatureShare{
		s.SignShare(newShares[0], msg),
		s.SignShare(newShares[4], msg),
	})
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if !s.Verify(gk.PK, msg, sig) {
		t.Fatal("post-reshare signature failed under original public key")
	}
}

func TestReshareShrinkAndThresholdChange(t *testing.T) {
	s := testScheme()
	gk, shares, err := Run(s, rand.Reader, 2, 5)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Remove a controller: 5 -> 4 members, threshold 2.
	newGK, newShares, err := RunReshare(s, rand.Reader, gk, shares, 2, 4)
	if err != nil {
		t.Fatalf("RunReshare: %v", err)
	}
	if !newGK.PK.Point.Equal(gk.PK.Point) {
		t.Fatal("shrinking reshare changed the public key")
	}
	msg := []byte("m")
	sig, err := s.Combine(newGK, []bls.SignatureShare{
		s.SignShare(newShares[1], msg),
		s.SignShare(newShares[2], msg),
	})
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if !s.Verify(gk.PK, msg, sig) {
		t.Fatal("signature after shrink failed")
	}
}

func TestOldSharesUselessAfterReshareWithNewThreshold(t *testing.T) {
	s := testScheme()
	gk, shares, err := Run(s, rand.Reader, 2, 4)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	newGK, newShares, err := RunReshare(s, rand.Reader, gk, shares, 3, 5)
	if err != nil {
		t.Fatalf("RunReshare: %v", err)
	}
	// Mixing an old share with new shares must not produce a valid
	// signature: old and new polynomials are unrelated.
	msg := []byte("m")
	mixed := []bls.SignatureShare{
		s.SignShare(newShares[0], msg),
		s.SignShare(newShares[1], msg),
		s.SignShare(bls.KeyShare{Index: 3, Scalar: shares[2].Scalar}, msg),
	}
	sig, err := s.Combine(newGK, mixed)
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if s.Verify(gk.PK, msg, sig) {
		t.Fatal("stale share combined into a valid new-epoch signature")
	}
}

func TestVerifyReshareDealRejectsForgery(t *testing.T) {
	s := testScheme()
	gk, shares, err := Run(s, rand.Reader, 2, 4)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	dealerSet := []uint32{shares[0].Index, shares[1].Index}
	// A Byzantine dealer tries to reshare a secret of its own choosing
	// instead of its Lagrange-weighted old share.
	forgedShare := bls.KeyShare{Index: shares[0].Index, Scalar: big.NewInt(777)}
	deal, _, err := ReshareDealer(s, rand.Reader, forgedShare, dealerSet, 2, []uint32{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("ReshareDealer: %v", err)
	}
	if err := VerifyReshareDeal(s, gk, deal); !errors.Is(err, ErrBadReshareDeal) {
		t.Fatalf("expected ErrBadReshareDeal, got %v", err)
	}
}

func TestRepeatedResharesKeepKeyStable(t *testing.T) {
	s := testScheme()
	gk, shares, err := Run(s, rand.Reader, 2, 4)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	originalPK := gk.PK.Point
	// Simulate a churny control plane: several successive membership
	// changes (the paper's add/remove flow increments a phase each time).
	sizes := []struct{ t, n int }{{2, 5}, {3, 7}, {2, 4}, {2, 6}}
	for _, size := range sizes {
		gk, shares, err = RunReshare(s, rand.Reader, gk, shares, size.t, size.n)
		if err != nil {
			t.Fatalf("RunReshare(%d,%d): %v", size.t, size.n, err)
		}
		if !gk.PK.Point.Equal(originalPK) {
			t.Fatalf("public key drifted at (t=%d, n=%d)", size.t, size.n)
		}
	}
	msg := []byte("final epoch update")
	sig, err := s.Combine(gk, []bls.SignatureShare{
		s.SignShare(shares[0], msg),
		s.SignShare(shares[3], msg),
	})
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if !s.Verify(bls.PublicKey{Point: originalPK}, msg, sig) {
		t.Fatal("signature after 4 reshares failed under original key")
	}
}

func BenchmarkDKGRun4(b *testing.B) {
	s := testScheme()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(s, rand.Reader, 2, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReshare4to5(b *testing.B) {
	s := testScheme()
	gk, shares, err := Run(s, rand.Reader, 2, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunReshare(s, rand.Reader, gk, shares, 2, 5); err != nil {
			b.Fatal(err)
		}
	}
}
