package dkg

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"

	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/pairing"
	"cicero/internal/tcrypto/shamir"
)

// Resharing transfers an existing (tOld, nOld) sharing to a new group with
// a possibly different (tNew, nNew) while keeping the group public key
// fixed: each dealer i in an old quorum S deals a fresh polynomial g_i with
// g_i(0) = λ_i(S)·d_i (its Lagrange-weighted old share), and a new member
// j's share is Σ_{i∈S} g_i(j) — a share of Σ λ_i d_i = x, the unchanged
// group secret.
//
// Dealers are held accountable: a ReshareDeal's constant-term commitment
// must equal λ_i(S)·(d_i·G), which every verifier derives from the old
// group key's Feldman commitments. Sub-shares are checked against the
// dealer's commitments exactly as in the DKG.

// ErrBadReshareDeal reports a reshare dealing whose constant-term
// commitment is inconsistent with the dealer's old verification key.
var ErrBadReshareDeal = errors.New("dkg: reshare deal inconsistent with old share commitment")

// ReshareDeal is a dealer's public broadcast in the resharing protocol.
type ReshareDeal struct {
	// Dealer is the dealer's index in the OLD group.
	Dealer uint32
	// DealerSet is the quorum S of old-group indices performing the
	// reshare; the Lagrange weight of Dealer is computed over this set.
	DealerSet []uint32
	// Commitments are Feldman commitments to g_i, of length tNew.
	Commitments []*pairing.Point
}

// ReshareDealer produces one old member's contribution to a reshare.
// dealerSet must be the same ordered quorum at every dealer (agreed via
// consensus); share is the dealer's old key share.
func ReshareDealer(
	scheme *bls.Scheme,
	rand io.Reader,
	share bls.KeyShare,
	dealerSet []uint32,
	tNew int,
	newIndices []uint32,
) (*ReshareDeal, []SubShare, error) {
	if tNew < 1 || tNew > len(newIndices) {
		return nil, nil, shamir.ErrThreshold
	}
	pos := -1
	for i, idx := range dealerSet {
		if idx == share.Index {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, nil, fmt.Errorf("dkg: dealer %d not in dealer set", share.Index)
	}
	lambda, err := shamir.LagrangeCoefficient(scheme.Params.R, dealerSet, pos)
	if err != nil {
		return nil, nil, fmt.Errorf("dkg: reshare lagrange: %w", err)
	}
	constant := new(big.Int).Mul(lambda, share.Scalar)
	constant.Mod(constant, scheme.Params.R)
	poly, err := shamir.NewPolynomial(rand, scheme.Params.R, constant, tNew)
	if err != nil {
		return nil, nil, fmt.Errorf("dkg: reshare polynomial: %w", err)
	}
	deal := &ReshareDeal{
		Dealer:      share.Index,
		DealerSet:   append([]uint32(nil), dealerSet...),
		Commitments: make([]*pairing.Point, tNew),
	}
	for j, coeff := range poly.Coeffs {
		deal.Commitments[j] = scheme.Params.ScalarBaseMul(coeff)
	}
	subShares := make([]SubShare, 0, len(newIndices))
	for _, j := range newIndices {
		subShares = append(subShares, SubShare{
			Dealer:    share.Index,
			Recipient: j,
			Value:     poly.Eval(j),
		})
	}
	return deal, subShares, nil
}

// VerifyReshareDeal checks that a dealer's constant-term commitment equals
// its Lagrange-weighted old verification key, binding the reshare to the
// old group key so a Byzantine dealer cannot inject a different secret.
func VerifyReshareDeal(scheme *bls.Scheme, oldGK *bls.GroupKey, deal *ReshareDeal) error {
	pos := -1
	for i, idx := range deal.DealerSet {
		if idx == deal.Dealer {
			pos = i
			break
		}
	}
	if pos < 0 {
		return fmt.Errorf("dkg: dealer %d missing from its own dealer set", deal.Dealer)
	}
	lambda, err := shamir.LagrangeCoefficient(scheme.Params.R, deal.DealerSet, pos)
	if err != nil {
		return fmt.Errorf("dkg: reshare lagrange: %w", err)
	}
	oldVK := scheme.SharePublicKey(oldGK, deal.Dealer)
	want := scheme.Params.ScalarMul(oldVK, lambda)
	if !deal.Commitments[0].Equal(want) {
		return ErrBadReshareDeal
	}
	return nil
}

// ReshareReceiver is a new-group member's state machine collecting reshare
// deals and sub-shares.
type ReshareReceiver struct {
	scheme *bls.Scheme
	oldGK  *bls.GroupKey
	self   uint32
	tNew   int
	nNew   int

	deals     map[uint32]*ReshareDeal
	subShares map[uint32]*big.Int
}

// NewReshareReceiver creates the receiver state for new-group index self.
func NewReshareReceiver(scheme *bls.Scheme, oldGK *bls.GroupKey, self uint32, tNew, nNew int) (*ReshareReceiver, error) {
	if tNew < 1 || tNew > nNew {
		return nil, shamir.ErrThreshold
	}
	if self == 0 || int(self) > nNew {
		return nil, fmt.Errorf("dkg: receiver index %d out of range 1..%d", self, nNew)
	}
	return &ReshareReceiver{
		scheme:    scheme,
		oldGK:     oldGK,
		self:      self,
		tNew:      tNew,
		nNew:      nNew,
		deals:     make(map[uint32]*ReshareDeal),
		subShares: make(map[uint32]*big.Int),
	}, nil
}

// HandleDeal validates and records a dealer's broadcast.
func (r *ReshareReceiver) HandleDeal(deal *ReshareDeal) error {
	if len(deal.Commitments) != r.tNew {
		return fmt.Errorf("dkg: reshare dealer %d sent %d commitments, want %d",
			deal.Dealer, len(deal.Commitments), r.tNew)
	}
	if err := VerifyReshareDeal(r.scheme, r.oldGK, deal); err != nil {
		return err
	}
	r.deals[deal.Dealer] = deal
	return nil
}

// HandleSubShare validates and records a dealer's private sub-share.
func (r *ReshareReceiver) HandleSubShare(ss SubShare) error {
	if ss.Recipient != r.self {
		return ErrWrongRecipient
	}
	deal, ok := r.deals[ss.Dealer]
	if !ok {
		return ErrUnknownDealer
	}
	if !verifySubShare(r.scheme, deal.Commitments, r.self, ss.Value) {
		return ErrInvalidSubShare
	}
	r.subShares[ss.Dealer] = new(big.Int).Set(ss.Value)
	return nil
}

// Finalize combines sub-shares from the agreed dealer set into this
// member's new key share and the new group key. The group public key is
// verified to equal the old one.
func (r *ReshareReceiver) Finalize(dealerSet []uint32) (bls.KeyShare, *bls.GroupKey, error) {
	sorted := append([]uint32(nil), dealerSet...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	shareVal := new(big.Int)
	commitments := make([]*pairing.Point, r.tNew)
	for j := range commitments {
		commitments[j] = pairing.Infinity()
	}
	for _, dealer := range sorted {
		deal, ok := r.deals[dealer]
		if !ok {
			return bls.KeyShare{}, nil, fmt.Errorf("dkg: missing reshare deal from dealer %d", dealer)
		}
		sub, ok := r.subShares[dealer]
		if !ok {
			return bls.KeyShare{}, nil, fmt.Errorf("dkg: missing reshare sub-share from dealer %d", dealer)
		}
		shareVal.Add(shareVal, sub)
		shareVal.Mod(shareVal, r.scheme.Params.R)
		for j := range commitments {
			commitments[j] = r.scheme.Params.Add(commitments[j], deal.Commitments[j])
		}
	}
	if !commitments[0].Equal(r.oldGK.PK.Point) {
		return bls.KeyShare{}, nil, errors.New("dkg: reshare changed the group public key")
	}
	gk := &bls.GroupKey{
		T:           r.tNew,
		N:           r.nNew,
		PK:          bls.PublicKey{Point: commitments[0]},
		Commitments: commitments,
	}
	return bls.KeyShare{Index: r.self, Scalar: shareVal}, gk, nil
}

// RunReshare executes a complete in-memory reshare from the holders of
// oldShares (which must number at least oldGK.T) to a new (tNew, nNew)
// group, returning the new group key (same public key) and new shares.
func RunReshare(
	scheme *bls.Scheme,
	rand io.Reader,
	oldGK *bls.GroupKey,
	oldShares []bls.KeyShare,
	tNew, nNew int,
) (*bls.GroupKey, []bls.KeyShare, error) {
	if len(oldShares) < oldGK.T {
		return nil, nil, ErrTooFewDealers
	}
	dealers := oldShares[:oldGK.T]
	dealerSet := make([]uint32, len(dealers))
	for i, s := range dealers {
		dealerSet[i] = s.Index
	}
	newIndices := make([]uint32, nNew)
	for i := range newIndices {
		newIndices[i] = uint32(i + 1)
	}
	receivers := make([]*ReshareReceiver, nNew)
	for i := range receivers {
		recv, err := NewReshareReceiver(scheme, oldGK, uint32(i+1), tNew, nNew)
		if err != nil {
			return nil, nil, err
		}
		receivers[i] = recv
	}
	for _, dealer := range dealers {
		deal, subShares, err := ReshareDealer(scheme, rand, dealer, dealerSet, tNew, newIndices)
		if err != nil {
			return nil, nil, err
		}
		for i, recv := range receivers {
			if err := recv.HandleDeal(deal); err != nil {
				return nil, nil, err
			}
			if err := recv.HandleSubShare(subShares[i]); err != nil {
				return nil, nil, err
			}
		}
	}
	newShares := make([]bls.KeyShare, nNew)
	var newGK *bls.GroupKey
	for i, recv := range receivers {
		share, gk, err := recv.Finalize(dealerSet)
		if err != nil {
			return nil, nil, err
		}
		newShares[i] = share
		if newGK == nil {
			newGK = gk
		} else if !newGK.PK.Point.Equal(gk.PK.Point) {
			return nil, nil, errors.New("dkg: receivers derived different group keys")
		}
	}
	return newGK, newShares, nil
}
