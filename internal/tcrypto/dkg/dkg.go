// Package dkg implements dealerless distributed key generation and
// proactive resharing for the BLS threshold scheme, following the
// Joint-Feldman construction ("Distributed Key Generation in the Wild",
// Kate, Huang & Goldberg — the library the Cicero paper uses).
//
// Every controller acts as a sub-dealer: it deals a random polynomial to
// the group, broadcasts Feldman commitments, and sends each peer a private
// sub-share. Each participant's key share is the sum of the sub-shares it
// received from qualified dealers, and the group public key is the sum of
// the dealers' constant-term commitments — no single party ever learns the
// group private key.
//
// Resharing (used on every control-plane membership change, Fig. 8 of the
// paper) re-deals existing shares to a new group with a possibly different
// threshold while keeping the group public key fixed, so switches never
// need a key redistribution.
//
// The protocol is exposed as explicit per-participant state machines
// (Participant, ReshareDealer/ReshareReceiver) whose round inputs/outputs
// the caller transports — Cicero drives them over its atomic broadcast —
// plus in-memory orchestrators (Run, RunReshare) for bootstrap and tests.
package dkg

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"

	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/pairing"
	"cicero/internal/tcrypto/shamir"
)

// Errors returned by the package.
var (
	// ErrInvalidSubShare reports a sub-share inconsistent with its dealer's
	// Feldman commitments.
	ErrInvalidSubShare = errors.New("dkg: sub-share fails commitment check")
	// ErrTooFewDealers reports that complaints disqualified so many dealers
	// that the protocol cannot complete safely.
	ErrTooFewDealers = errors.New("dkg: not enough qualified dealers")
	// ErrWrongRecipient reports a sub-share addressed to another participant.
	ErrWrongRecipient = errors.New("dkg: sub-share for a different recipient")
	// ErrUnknownDealer reports a sub-share from a dealer that never
	// announced commitments.
	ErrUnknownDealer = errors.New("dkg: sub-share from unknown dealer")
)

// Deal is a dealer's public broadcast: its Feldman commitments.
type Deal struct {
	Dealer      uint32
	Commitments []*pairing.Point
}

// SubShare is a dealer's private message to one participant.
type SubShare struct {
	Dealer    uint32
	Recipient uint32
	Value     *big.Int
}

// Complaint accuses a dealer of distributing an inconsistent sub-share.
type Complaint struct {
	Accuser uint32
	Dealer  uint32
}

// Participant is one controller's DKG state machine. Create it with
// NewParticipant, transport the outputs of Start to all peers, feed peer
// messages to HandleDeal/HandleSubShare, then call Finalize with the
// qualified dealer set agreed via the surrounding consensus.
type Participant struct {
	scheme *bls.Scheme
	self   uint32
	t      int
	n      int

	poly      *shamir.Polynomial
	deals     map[uint32]*Deal
	subShares map[uint32]*big.Int // accepted sub-share values by dealer
}

// NewParticipant creates the state machine for participant self (1-based)
// in an (t, n) generation.
func NewParticipant(scheme *bls.Scheme, self uint32, t, n int) (*Participant, error) {
	if t < 1 || t > n {
		return nil, shamir.ErrThreshold
	}
	if self == 0 || int(self) > n {
		return nil, fmt.Errorf("dkg: participant index %d out of range 1..%d", self, n)
	}
	return &Participant{
		scheme:    scheme,
		self:      self,
		t:         t,
		n:         n,
		deals:     make(map[uint32]*Deal),
		subShares: make(map[uint32]*big.Int),
	}, nil
}

// Start samples this participant's dealing polynomial and returns the
// broadcast Deal plus one private SubShare per participant (including one
// to itself, which is consumed internally).
func (p *Participant) Start(rand io.Reader) (*Deal, []SubShare, error) {
	secret, err := p.scheme.Params.RandomScalar(rand)
	if err != nil {
		return nil, nil, fmt.Errorf("dkg: sample dealing secret: %w", err)
	}
	poly, err := shamir.NewPolynomial(rand, p.scheme.Params.R, secret, p.t)
	if err != nil {
		return nil, nil, fmt.Errorf("dkg: sample dealing polynomial: %w", err)
	}
	p.poly = poly
	deal := &Deal{Dealer: p.self, Commitments: make([]*pairing.Point, p.t)}
	for j, coeff := range poly.Coeffs {
		deal.Commitments[j] = p.scheme.Params.ScalarBaseMul(coeff)
	}
	shares := make([]SubShare, 0, p.n)
	for i := 1; i <= p.n; i++ {
		shares = append(shares, SubShare{
			Dealer:    p.self,
			Recipient: uint32(i),
			Value:     poly.Eval(uint32(i)),
		})
	}
	// Register our own deal and sub-share.
	p.deals[p.self] = deal
	p.subShares[p.self] = poly.Eval(p.self)
	return deal, shares, nil
}

// HandleDeal records a peer dealer's commitments.
func (p *Participant) HandleDeal(deal *Deal) error {
	if len(deal.Commitments) != p.t {
		return fmt.Errorf("dkg: dealer %d sent %d commitments, want %d",
			deal.Dealer, len(deal.Commitments), p.t)
	}
	p.deals[deal.Dealer] = deal
	return nil
}

// HandleSubShare verifies a private sub-share against the dealer's
// commitments. On inconsistency it returns ErrInvalidSubShare; the caller
// should then broadcast a Complaint against the dealer.
func (p *Participant) HandleSubShare(ss SubShare) error {
	if ss.Recipient != p.self {
		return ErrWrongRecipient
	}
	deal, ok := p.deals[ss.Dealer]
	if !ok {
		return ErrUnknownDealer
	}
	if !verifySubShare(p.scheme, deal.Commitments, p.self, ss.Value) {
		return ErrInvalidSubShare
	}
	p.subShares[ss.Dealer] = new(big.Int).Set(ss.Value)
	return nil
}

// Finalize combines the sub-shares of the qualified dealers into this
// participant's key share and the group key. All correct participants must
// pass the same qualified set (agreed through the atomic broadcast that
// carries deals and complaints).
func (p *Participant) Finalize(qualified []uint32) (bls.KeyShare, *bls.GroupKey, error) {
	if len(qualified) < p.t {
		return bls.KeyShare{}, nil, ErrTooFewDealers
	}
	sorted := append([]uint32(nil), qualified...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	shareVal := new(big.Int)
	commitments := make([]*pairing.Point, p.t)
	for j := range commitments {
		commitments[j] = pairing.Infinity()
	}
	for _, dealer := range sorted {
		deal, ok := p.deals[dealer]
		if !ok {
			return bls.KeyShare{}, nil, fmt.Errorf("dkg: missing deal from qualified dealer %d", dealer)
		}
		sub, ok := p.subShares[dealer]
		if !ok {
			return bls.KeyShare{}, nil, fmt.Errorf("dkg: missing sub-share from qualified dealer %d", dealer)
		}
		shareVal.Add(shareVal, sub)
		shareVal.Mod(shareVal, p.scheme.Params.R)
		for j := range commitments {
			commitments[j] = p.scheme.Params.Add(commitments[j], deal.Commitments[j])
		}
	}
	gk := &bls.GroupKey{
		T:           p.t,
		N:           p.n,
		PK:          bls.PublicKey{Point: commitments[0]},
		Commitments: commitments,
	}
	return bls.KeyShare{Index: p.self, Scalar: shareVal}, gk, nil
}

// verifySubShare checks value·G == Σ_j commitments[j]·index^j.
func verifySubShare(scheme *bls.Scheme, commitments []*pairing.Point, index uint32, value *big.Int) bool {
	left := scheme.Params.ScalarBaseMul(value)
	right := evalCommitments(scheme, commitments, index)
	return left.Equal(right)
}

// evalCommitments evaluates the committed polynomial "in the exponent" at
// the given index.
func evalCommitments(scheme *bls.Scheme, commitments []*pairing.Point, index uint32) *pairing.Point {
	acc := pairing.Infinity()
	xi := new(big.Int).SetUint64(uint64(index))
	pow := big.NewInt(1)
	for _, c := range commitments {
		acc = scheme.Params.Add(acc, scheme.Params.ScalarMul(c, pow))
		pow = new(big.Int).Mul(pow, xi)
		pow.Mod(pow, scheme.Params.R)
	}
	return acc
}

// Run executes a full DKG among n in-memory participants and returns the
// group key and every participant's share. It is the bootstrap/testing
// convenience; the distributed protocol uses the Participant state machine
// directly.
func Run(scheme *bls.Scheme, rand io.Reader, t, n int) (*bls.GroupKey, []bls.KeyShare, error) {
	participants := make([]*Participant, n)
	for i := range participants {
		p, err := NewParticipant(scheme, uint32(i+1), t, n)
		if err != nil {
			return nil, nil, err
		}
		participants[i] = p
	}
	deals := make([]*Deal, n)
	subShares := make([][]SubShare, n)
	for i, p := range participants {
		deal, shares, err := p.Start(rand)
		if err != nil {
			return nil, nil, err
		}
		deals[i] = deal
		subShares[i] = shares
	}
	qualified := make([]uint32, 0, n)
	for i := range participants {
		qualified = append(qualified, uint32(i+1))
	}
	for i, p := range participants {
		for j, deal := range deals {
			if i == j {
				continue
			}
			if err := p.HandleDeal(deal); err != nil {
				return nil, nil, err
			}
		}
		for j := range participants {
			if i == j {
				continue
			}
			if err := p.HandleSubShare(subShares[j][i]); err != nil {
				return nil, nil, err
			}
		}
	}
	shares := make([]bls.KeyShare, n)
	var gk *bls.GroupKey
	for i, p := range participants {
		share, pk, err := p.Finalize(qualified)
		if err != nil {
			return nil, nil, err
		}
		shares[i] = share
		if gk == nil {
			gk = pk
		} else if !gk.PK.Point.Equal(pk.PK.Point) {
			return nil, nil, errors.New("dkg: participants derived different group keys")
		}
	}
	return gk, shares, nil
}
