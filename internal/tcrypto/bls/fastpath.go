package bls

import (
	"crypto/sha256"
	"encoding/binary"
	"math/big"
	"runtime"
	"sync"

	"cicero/internal/metrics"
	"cicero/internal/tcrypto/pairing"
	"cicero/internal/tcrypto/shamir"
)

// Verification fast paths: prepared-pairing caches, memoized Lagrange
// coefficient sets, random-linear-combination batch verification of
// signature shares, and a bounded worker pool for per-share culprit
// identification. Everything here changes only real (wall-clock) cost;
// protocol-visible behavior — which shares are accepted, which signature
// is produced — is bit-for-bit identical to the naive algorithms, so
// simulated virtual time (charged via the protocol cost model) is
// unaffected.

// cacheLimit bounds each internal memoization map. Deployments see a
// handful of group keys (one per epoch/reshare) and quorum shapes, so the
// caps exist only to keep pathological inputs from growing memory without
// bound; when a map fills, it is discarded and rebuilt.
const cacheLimit = 512

// preparedG returns the generator with precomputed Miller-loop lines.
func (s *Scheme) preparedG() *pairing.PreparedPoint {
	s.prepGOnce.Do(func() {
		s.prepG = s.Params.Prepare(s.Params.G)
	})
	return s.prepG
}

// preparedKey returns pk with precomputed Miller-loop lines, memoized by
// the point's canonical encoding. Group public keys are long-lived (they
// change only at DKG/reshare epochs), so the preparation cost — about one
// Miller loop — amortizes across every verification against that key.
func (s *Scheme) preparedKey(pk *pairing.Point) *pairing.PreparedPoint {
	key := string(s.Params.PointBytes(pk))
	s.mu.Lock()
	if prep, ok := s.prepKeys[key]; ok {
		s.mu.Unlock()
		return prep
	}
	s.mu.Unlock()
	prep := s.Params.Prepare(pk)
	s.mu.Lock()
	if s.prepKeys == nil {
		s.prepKeys = make(map[string]*pairing.PreparedPoint)
	}
	if len(s.prepKeys) >= cacheLimit {
		s.prepKeys = make(map[string]*pairing.PreparedPoint)
	}
	s.prepKeys[key] = prep
	s.mu.Unlock()
	return prep
}

// groupKeyDigest identifies a group key by hashing its Feldman commitment
// set. Commitments pin the whole sharing polynomial, so two group keys
// with equal digests derive identical share verification keys.
func (s *Scheme) groupKeyDigest(gk *GroupKey) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte("cicero/bls/gk-digest/v1"))
	for _, c := range gk.Commitments {
		h.Write(s.Params.PointBytes(c))
	}
	var d [sha256.Size]byte
	h.Sum(d[:0])
	return d
}

// shareVKKey is the shareVKs cache key for (group key, share index).
func (s *Scheme) shareVKKey(gk *GroupKey, index uint32) string {
	d := s.groupKeyDigest(gk)
	var idx [4]byte
	binary.BigEndian.PutUint32(idx[:], index)
	return string(d[:]) + string(idx[:])
}

// lagrangeSet returns the interpolation-at-zero weights for a quorum index
// set, memoized: protocols re-form the same quorums (same controller
// subsets) for every update, so the modular inversions are paid once per
// distinct quorum shape.
func (s *Scheme) lagrangeSet(indices []uint32) ([]*big.Int, error) {
	keyBytes := make([]byte, 4*len(indices))
	for i, idx := range indices {
		binary.BigEndian.PutUint32(keyBytes[4*i:], idx)
	}
	key := string(keyBytes)
	s.mu.Lock()
	if set, ok := s.lagrange[key]; ok {
		s.mu.Unlock()
		metrics.Crypto.LagrangeCacheHits.Add(1)
		return set, nil
	}
	s.mu.Unlock()
	metrics.Crypto.LagrangeCacheMisses.Add(1)
	set, err := shamir.LagrangeCoefficients(s.Params.R, indices)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.lagrange == nil {
		s.lagrange = make(map[string][]*big.Int)
	}
	if len(s.lagrange) >= cacheLimit {
		s.lagrange = make(map[string][]*big.Int)
	}
	s.lagrange[key] = set
	s.mu.Unlock()
	return set, nil
}

// BatchVerifySharesDigest checks a whole pool of signature shares with two
// multi-scalar multiplications and a single product pairing, independent
// of the pool size: for Fiat–Shamir coefficients c_i it tests
//
//	e(G, Σ c_i·σ_i) · e(Σ c_i·vk_i, −H(m)) == 1,
//
// which holds iff e(G, σ_i) == e(vk_i, H(m)) for every i, except with
// probability ~2^{-|r|} over the coefficient choice. Coefficients are
// derived deterministically from a transcript hash of the group key, the
// message point, and every share — sound against adversaries who choose
// shares first, and reproducible run-to-run so simulations stay
// deterministic. Returns false if any share is structurally invalid
// (index zero or infinite point).
func (s *Scheme) BatchVerifySharesDigest(gk *GroupKey, hm *pairing.Point, shares []SignatureShare) bool {
	if len(shares) == 0 {
		return true
	}
	metrics.Crypto.BatchVerifies.Add(1)
	transcript := sha256.New()
	transcript.Write([]byte("cicero/bls/batch-verify/v1"))
	d := s.groupKeyDigest(gk)
	transcript.Write(d[:])
	transcript.Write(s.Params.PointBytes(hm))
	for _, sh := range shares {
		if sh.Index == 0 || sh.Point.IsInfinity() {
			return false
		}
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], sh.Index)
		transcript.Write(idx[:])
		transcript.Write(s.Params.PointBytes(sh.Point))
	}
	seed := transcript.Sum(nil)
	sigPoints := make([]*pairing.Point, len(shares))
	vkPoints := make([]*pairing.Point, len(shares))
	coeffs := make([]*big.Int, len(shares))
	for i, sh := range shares {
		var pos [4]byte
		binary.BigEndian.PutUint32(pos[:], uint32(i))
		coeffs[i] = s.Params.HashToScalar(append(append([]byte{}, seed...), pos[:]...))
		sigPoints[i] = sh.Point
		vkPoints[i] = s.SharePublicKey(gk, sh.Index)
	}
	aggSig := s.Params.MultiScalarMul(sigPoints, coeffs)
	aggVK := s.Params.MultiScalarMul(vkPoints, coeffs)
	return s.Params.PairProduct(
		pairing.ProductTerm{Prep: s.preparedG(), B: aggSig},
		pairing.ProductTerm{A: aggVK, B: s.Params.Neg(hm)},
	).IsOne()
}

// FilterVerifiedShares returns the subset of shares that verify against
// the group key for the given message point, preserving order. The happy
// path accepts the whole pool with one batched check (O(1) pairings in the
// pool size); only when the batch fails does it fall back to per-share
// checks — parallelized across cores — to identify the culprits.
func (s *Scheme) FilterVerifiedShares(gk *GroupKey, hm *pairing.Point, shares []SignatureShare) []SignatureShare {
	if s.BatchVerifySharesDigest(gk, hm, shares) {
		return shares
	}
	ok := s.verifySharesParallel(gk, hm, shares)
	valid := make([]SignatureShare, 0, len(shares))
	for i, sh := range shares {
		if ok[i] {
			valid = append(valid, sh)
		}
	}
	return valid
}

// verifySharesParallel runs per-share verification on a bounded worker
// pool and returns positional verdicts. Parallelism here spends real CPU
// only — simulated time is charged separately by the protocol cost model,
// so worker count cannot perturb experiment results.
func (s *Scheme) verifySharesParallel(gk *GroupKey, hm *pairing.Point, shares []SignatureShare) []bool {
	ok := make([]bool, len(shares))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(shares) {
		workers = len(shares)
	}
	if workers <= 1 {
		for i, sh := range shares {
			ok[i] = s.VerifyShareDigest(gk, hm, sh)
		}
		return ok
	}
	// Derive every verification key up front: the first access per index
	// populates the shared cache under the scheme mutex, and warming it
	// serially keeps the workers free of lock contention.
	for _, sh := range shares {
		if sh.Index != 0 {
			s.SharePublicKey(gk, sh.Index)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			for i := start; i < len(shares); i += workers {
				ok[i] = s.VerifyShareDigest(gk, hm, shares[i])
			}
		}(w)
	}
	wg.Wait()
	return ok
}
