package bls

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"sync"

	"cicero/internal/metrics"
	"cicero/internal/tcrypto/pairing"
)

// VerifyCache is a small LRU of verification results keyed by
// (public key, message). BLS group signatures are unique — σ = x·H(m) is
// the only point verifying under X = x·G — so once a signature for a
// message has been verified, any later candidate for the same key and
// message is decided by a byte comparison: equal means verified, different
// means forged. Both directions skip the pairing entirely.
//
// Switches and controllers see the same (configuration, signature) pair
// many times — retransmissions, per-port fan-out of one update, repeated
// acks — which is what makes the cache pay for itself.
type VerifyCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List
	m   map[[sha256.Size]byte]*list.Element
}

// DefaultVerifyCacheSize is the per-node entry cap used when callers pass
// a non-positive capacity.
const DefaultVerifyCacheSize = 256

type verifyEntry struct {
	key [sha256.Size]byte
	sig []byte // canonical encoding of the verified signature
}

// NewVerifyCache returns an LRU holding at most capacity verified
// signatures; capacity <= 0 selects DefaultVerifyCacheSize.
func NewVerifyCache(capacity int) *VerifyCache {
	if capacity <= 0 {
		capacity = DefaultVerifyCacheSize
	}
	return &VerifyCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[[sha256.Size]byte]*list.Element),
	}
}

// cacheKey binds a cache slot to the public key and the exact message.
func (c *VerifyCache) cacheKey(scheme *Scheme, pk *pairing.Point, msg []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte("cicero/bls/verify-cache/v1"))
	h.Write(scheme.Params.PointBytes(pk))
	h.Write(msg)
	var k [sha256.Size]byte
	h.Sum(k[:0])
	return k
}

// lookup returns the verified signature bytes for key, if present,
// promoting the entry to most-recently-used.
func (c *VerifyCache) lookup(key [sha256.Size]byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*verifyEntry).sig, true
}

// store records a verified signature, evicting the least-recently-used
// entry when full.
func (c *VerifyCache) store(key [sha256.Size]byte, sig []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*verifyEntry).sig = sig
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&verifyEntry{key: key, sig: sig})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*verifyEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *VerifyCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// VerifyCached is Verify with memoization through cache. A nil cache
// degrades to plain Verify.
func (s *Scheme) VerifyCached(cache *VerifyCache, pk PublicKey, msg []byte, sig Signature) bool {
	if cache == nil {
		return s.Verify(pk, msg, sig)
	}
	key := cache.cacheKey(s, pk.Point, msg)
	sigBytes := s.Params.PointBytes(sig.Point)
	if cached, ok := cache.lookup(key); ok {
		metrics.Crypto.VerifyCacheHits.Add(1)
		// Uniqueness of BLS signatures: matching bytes is a proof of
		// validity, mismatching bytes a proof of forgery.
		return bytes.Equal(cached, sigBytes)
	}
	metrics.Crypto.VerifyCacheMisses.Add(1)
	if !s.Verify(pk, msg, sig) {
		return false
	}
	cache.store(key, sigBytes)
	return true
}

// CombineVerifiedCached is CombineVerified with memoization through cache:
// a hit returns the previously verified group signature with zero curve
// or pairing work. A nil cache degrades to plain CombineVerified.
func (s *Scheme) CombineVerifiedCached(cache *VerifyCache, gk *GroupKey, msg []byte, shares []SignatureShare) (Signature, error) {
	if cache == nil {
		return s.CombineVerified(gk, msg, shares)
	}
	key := cache.cacheKey(s, gk.PK.Point, msg)
	if cached, ok := cache.lookup(key); ok {
		if pt, err := s.Params.ParsePoint(cached); err == nil {
			metrics.Crypto.VerifyCacheHits.Add(1)
			return Signature{Point: pt}, nil
		}
	}
	metrics.Crypto.VerifyCacheMisses.Add(1)
	sig, err := s.CombineVerified(gk, msg, shares)
	if err != nil {
		return Signature{}, err
	}
	cache.store(key, s.Params.PointBytes(sig.Point))
	return sig, nil
}
