// Package bls implements Boneh–Lynn–Shacham short signatures and their
// (t, n)-threshold variant over the symmetric Type-A pairing in
// internal/tcrypto/pairing, mirroring the PBC-based construction used by
// the Cicero paper for quorum update authentication.
//
// In the threshold scheme a single group public key is installed on every
// switch while each controller holds only a Shamir share of the private
// key. A controller produces a signature share σ_i = d_i·H(m); any t
// shares combine by Lagrange interpolation in the exponent into the unique
// group signature σ = x·H(m), which verifies against the group public key
// with two pairings: e(σ, G) == e(H(m), X).
package bls

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"cicero/internal/metrics"
	"cicero/internal/tcrypto/pairing"
	"cicero/internal/tcrypto/shamir"
)

// Scheme binds the signature algorithms to a pairing parameter set.
//
// A Scheme also owns the verification fast-path caches (prepared pairing
// arguments, derived share verification keys, Lagrange coefficient sets);
// it must be shared by pointer, never copied.
type Scheme struct {
	Params *pairing.Params

	prepGOnce sync.Once
	prepG     *pairing.PreparedPoint

	mu       sync.Mutex
	prepKeys map[string]*pairing.PreparedPoint // group/verification keys, by encoding
	shareVKs map[string]*pairing.Point         // Feldman-derived share VKs, by gk digest ‖ index
	lagrange map[string][]*big.Int             // Lagrange sets, by encoded quorum indices
}

// NewScheme returns a Scheme over the given pairing parameters.
func NewScheme(params *pairing.Params) *Scheme {
	return &Scheme{Params: params}
}

// PrivateKey is a full BLS private key (used by the dealer and by
// non-threshold signers such as event sources when Ed25519 is not in use).
type PrivateKey struct {
	Scalar *big.Int
}

// PublicKey is a BLS public key X = x·G.
type PublicKey struct {
	Point *pairing.Point
}

// Signature is a BLS signature σ = x·H(m), a single G1 point.
type Signature struct {
	Point *pairing.Point
}

// SignatureShare is one controller's contribution σ_i = d_i·H(m).
type SignatureShare struct {
	Index uint32
	Point *pairing.Point
}

// Bytes returns the canonical encoding of the signature.
func (s Signature) Bytes(scheme *Scheme) []byte {
	return scheme.Params.PointBytes(s.Point)
}

// GroupKey is the public description of a (t, n)-threshold key: the group
// public key plus the Feldman commitments to the sharing polynomial, from
// which every share's public key can be derived.
type GroupKey struct {
	T int
	N int
	// PK is the group public key X = x·G. It equals Commitments[0].
	PK PublicKey
	// Commitments are the Feldman commitments A_j = a_j·G to the sharing
	// polynomial coefficients, enabling per-share verification keys.
	Commitments []*pairing.Point
}

// KeyShare is one controller's private share d_i = f(i) of the group key.
type KeyShare struct {
	Index  uint32
	Scalar *big.Int
}

// Errors returned by the package.
var (
	// ErrTooFewShares reports fewer signature shares than the threshold.
	ErrTooFewShares = errors.New("bls: not enough signature shares")
	// ErrDuplicateShare reports two shares with the same index.
	ErrDuplicateShare = errors.New("bls: duplicate share index")
	// ErrInvalidShare reports a signature share failing verification.
	ErrInvalidShare = errors.New("bls: invalid signature share")
)

// GenerateKey samples a fresh full key pair.
func (s *Scheme) GenerateKey(rand io.Reader) (PrivateKey, PublicKey, error) {
	x, err := s.Params.RandomScalar(rand)
	if err != nil {
		return PrivateKey{}, PublicKey{}, fmt.Errorf("bls: generate key: %w", err)
	}
	return PrivateKey{Scalar: x}, PublicKey{Point: s.Params.ScalarBaseMul(x)}, nil
}

// HashToPoint maps a message to the curve; callers signing or verifying
// the same message repeatedly should cache the result.
func (s *Scheme) HashToPoint(msg []byte) *pairing.Point {
	return s.Params.HashToG1(msg)
}

// Sign produces σ = x·H(m).
func (s *Scheme) Sign(sk PrivateKey, msg []byte) Signature {
	return s.SignDigest(sk, s.HashToPoint(msg))
}

// SignDigest signs a pre-hashed message point.
func (s *Scheme) SignDigest(sk PrivateKey, hm *pairing.Point) Signature {
	return Signature{Point: s.Params.ScalarMul(hm, sk.Scalar)}
}

// Verify checks e(σ, G) == e(H(m), X).
func (s *Scheme) Verify(pk PublicKey, msg []byte, sig Signature) bool {
	return s.VerifyDigest(pk, s.HashToPoint(msg), sig)
}

// VerifyDigest checks a signature against a pre-hashed message point.
//
// The check is the product form e(G, σ)·e(X, −H(m)) == 1 with both fixed
// first arguments (the generator and the public key) carrying precomputed
// Miller-loop lines, so the whole verification costs one shared Miller
// evaluation walk and one final exponentiation instead of two full
// pairings.
func (s *Scheme) VerifyDigest(pk PublicKey, hm *pairing.Point, sig Signature) bool {
	if sig.Point.IsInfinity() || pk.Point.IsInfinity() {
		return false
	}
	return s.Params.PairProduct(
		pairing.ProductTerm{Prep: s.preparedG(), B: sig.Point},
		pairing.ProductTerm{Prep: s.preparedKey(pk.Point), B: s.Params.Neg(hm)},
	).IsOne()
}

// Deal splits a fresh group key into n shares with threshold t using a
// trusted dealer; it is used at bootstrap and in tests. Production
// membership changes use the dealerless DKG in internal/tcrypto/dkg.
func (s *Scheme) Deal(rand io.Reader, t, n int) (*GroupKey, []KeyShare, error) {
	if t < 1 || t > n {
		return nil, nil, shamir.ErrThreshold
	}
	x, err := s.Params.RandomScalar(rand)
	if err != nil {
		return nil, nil, fmt.Errorf("bls: deal: %w", err)
	}
	poly, err := shamir.NewPolynomial(rand, s.Params.R, x, t)
	if err != nil {
		return nil, nil, fmt.Errorf("bls: deal: %w", err)
	}
	gk := &GroupKey{T: t, N: n, Commitments: make([]*pairing.Point, t)}
	for j, coeff := range poly.Coeffs {
		gk.Commitments[j] = s.Params.ScalarBaseMul(coeff)
	}
	gk.PK = PublicKey{Point: gk.Commitments[0]}
	shares := make([]KeyShare, n)
	for i := 1; i <= n; i++ {
		shares[i-1] = KeyShare{Index: uint32(i), Scalar: poly.Eval(uint32(i))}
	}
	return gk, shares, nil
}

// SharePublicKey derives the verification key d_i·G for share index i from
// the Feldman commitments: Σ_j A_j·i^j. Derived keys are memoized per
// (group key, index) — commitments are immutable once published, so the
// cache key is a digest of the commitment set.
func (s *Scheme) SharePublicKey(gk *GroupKey, index uint32) *pairing.Point {
	key := s.shareVKKey(gk, index)
	s.mu.Lock()
	if vk, ok := s.shareVKs[key]; ok {
		s.mu.Unlock()
		return vk
	}
	s.mu.Unlock()
	xi := new(big.Int).SetUint64(uint64(index))
	points := make([]*pairing.Point, len(gk.Commitments))
	scalars := make([]*big.Int, len(gk.Commitments))
	pow := big.NewInt(1)
	for j, commitment := range gk.Commitments {
		points[j] = commitment
		scalars[j] = pow
		pow = new(big.Int).Mul(pow, xi)
		pow.Mod(pow, s.Params.R)
	}
	vk := s.Params.MultiScalarMul(points, scalars)
	s.mu.Lock()
	if s.shareVKs == nil {
		s.shareVKs = make(map[string]*pairing.Point)
	}
	if len(s.shareVKs) >= cacheLimit {
		s.shareVKs = make(map[string]*pairing.Point)
	}
	s.shareVKs[key] = vk
	s.mu.Unlock()
	return vk
}

// SignShare produces this controller's signature share on msg.
func (s *Scheme) SignShare(share KeyShare, msg []byte) SignatureShare {
	return s.SignShareDigest(share, s.HashToPoint(msg))
}

// SignShareDigest signs a pre-hashed message point with a key share.
func (s *Scheme) SignShareDigest(share KeyShare, hm *pairing.Point) SignatureShare {
	metrics.Crypto.SignatureBytes.Add(uint64(s.Params.PointSize()))
	return SignatureShare{Index: share.Index, Point: s.Params.ScalarMul(hm, share.Scalar)}
}

// VerifyShare checks a signature share against its derived verification
// key: e(σ_i, G) == e(H(m), d_i·G).
func (s *Scheme) VerifyShare(gk *GroupKey, msg []byte, share SignatureShare) bool {
	return s.VerifyShareDigest(gk, s.HashToPoint(msg), share)
}

// VerifyShareDigest checks a share against a pre-hashed message point,
// using the same prepared product form as VerifyDigest.
func (s *Scheme) VerifyShareDigest(gk *GroupKey, hm *pairing.Point, share SignatureShare) bool {
	if share.Index == 0 || share.Point.IsInfinity() {
		return false
	}
	metrics.Crypto.ShareVerifies.Add(1)
	vk := s.SharePublicKey(gk, share.Index)
	return s.Params.PairProduct(
		pairing.ProductTerm{Prep: s.preparedG(), B: share.Point},
		pairing.ProductTerm{A: vk, B: s.Params.Neg(hm)},
	).IsOne()
}

// Combine aggregates at least t signature shares into the group signature
// by Lagrange interpolation in the exponent. It does not verify shares;
// callers either pre-verify with VerifyShare or verify the aggregate with
// Verify (and fall back to share-level identification on failure).
func (s *Scheme) Combine(gk *GroupKey, shares []SignatureShare) (Signature, error) {
	if len(shares) < gk.T {
		return Signature{}, ErrTooFewShares
	}
	subset := shares[:gk.T]
	indices := make([]uint32, len(subset))
	seen := make(map[uint32]struct{}, len(subset))
	points := make([]*pairing.Point, len(subset))
	for i, sh := range subset {
		if _, dup := seen[sh.Index]; dup {
			return Signature{}, ErrDuplicateShare
		}
		seen[sh.Index] = struct{}{}
		indices[i] = sh.Index
		points[i] = sh.Point
	}
	lambdas, err := s.lagrangeSet(indices)
	if err != nil {
		return Signature{}, fmt.Errorf("bls: combine: %w", err)
	}
	// One interleaved multi-scalar multiplication shares the doubling
	// chain across all t terms instead of t independent exponentiations.
	return Signature{Point: s.Params.MultiScalarMul(points, lambdas)}, nil
}

// CombineVerified aggregates shares into a verified group signature. The
// pool is first deduplicated by index (duplicates would otherwise poison
// the optimistic combine even when every share is honest), then combined
// optimistically and checked against the group key — one product pairing
// in the common all-honest case. On failure, invalid shares are identified
// with FilterVerifiedShares (batched random-linear-combination check, then
// per-share culprit identification) and the survivors are recombined. This
// mirrors the robust combine used on switches/aggregators facing
// potentially Byzantine controllers.
func (s *Scheme) CombineVerified(gk *GroupKey, msg []byte, shares []SignatureShare) (Signature, error) {
	hm := s.HashToPoint(msg)
	deduped := dedupeShares(shares)
	sig, err := s.Combine(gk, deduped)
	if err == nil && s.VerifyDigest(gk.PK, hm, sig) {
		return sig, nil
	}
	if err != nil {
		return Signature{}, err
	}
	// Slow path: some share in the pool is forged. Identify and drop it.
	valid := s.FilterVerifiedShares(gk, hm, deduped)
	if len(valid) < gk.T {
		return Signature{}, ErrInvalidShare
	}
	sig, err = s.Combine(gk, valid)
	if err != nil {
		return Signature{}, err
	}
	if !s.VerifyDigest(gk.PK, hm, sig) {
		return Signature{}, ErrInvalidShare
	}
	return sig, nil
}

// dedupeShares drops shares whose index was already seen, keeping first
// occurrences in order.
func dedupeShares(shares []SignatureShare) []SignatureShare {
	seen := make(map[uint32]struct{}, len(shares))
	out := make([]SignatureShare, 0, len(shares))
	for _, sh := range shares {
		if _, dup := seen[sh.Index]; dup {
			continue
		}
		seen[sh.Index] = struct{}{}
		out = append(out, sh)
	}
	return out
}
