package bls

import (
	"crypto/rand"
	"math/big"
	"testing"

	"cicero/internal/tcrypto/pairing"
)

func testScheme() *Scheme { return NewScheme(pairing.Fast254()) }

func TestSignVerify(t *testing.T) {
	s := testScheme()
	sk, pk, err := s.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	msg := []byte("flow-mod s3: dst=h7 -> output:2")
	sig := s.Sign(sk, msg)
	if !s.Verify(pk, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if s.Verify(pk, []byte("other message"), sig) {
		t.Fatal("signature verified for wrong message")
	}
	_, otherPK, _ := s.GenerateKey(rand.Reader)
	if s.Verify(otherPK, msg, sig) {
		t.Fatal("signature verified under wrong key")
	}
}

func TestVerifyRejectsInfinity(t *testing.T) {
	s := testScheme()
	_, pk, _ := s.GenerateKey(rand.Reader)
	if s.Verify(pk, []byte("m"), Signature{Point: pairing.Infinity()}) {
		t.Fatal("identity-point signature must be rejected")
	}
}

func TestThresholdRoundTrip(t *testing.T) {
	s := testScheme()
	const threshold, n = 3, 4
	gk, shares, err := s.Deal(rand.Reader, threshold, n)
	if err != nil {
		t.Fatalf("Deal: %v", err)
	}
	msg := []byte("update u42")
	sigShares := make([]SignatureShare, n)
	for i, ks := range shares {
		sigShares[i] = s.SignShare(ks, msg)
		if !s.VerifyShare(gk, msg, sigShares[i]) {
			t.Fatalf("share %d failed verification", ks.Index)
		}
	}
	// Any threshold-sized subset combines to the same valid signature.
	ref, err := s.Combine(gk, sigShares[:threshold])
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if !s.Verify(gk.PK, msg, ref) {
		t.Fatal("combined signature invalid")
	}
	other, err := s.Combine(gk, sigShares[1:1+threshold])
	if err != nil {
		t.Fatalf("Combine subset 2: %v", err)
	}
	if !other.Point.Equal(ref.Point) {
		t.Fatal("different share subsets produced different group signatures")
	}
}

func TestSubThresholdCannotForge(t *testing.T) {
	s := testScheme()
	gk, shares, err := s.Deal(rand.Reader, 3, 4)
	if err != nil {
		t.Fatalf("Deal: %v", err)
	}
	msg := []byte("malicious update")
	if _, err := s.Combine(gk, []SignatureShare{
		s.SignShare(shares[0], msg),
		s.SignShare(shares[1], msg),
	}); err != ErrTooFewShares {
		t.Fatalf("expected ErrTooFewShares, got %v", err)
	}
	// Two colluding controllers duplicating a share must also fail.
	dup := []SignatureShare{
		s.SignShare(shares[0], msg),
		s.SignShare(shares[1], msg),
		s.SignShare(shares[1], msg),
	}
	if _, err := s.Combine(gk, dup); err != ErrDuplicateShare {
		t.Fatalf("expected ErrDuplicateShare, got %v", err)
	}
}

func TestTamperedShareDetected(t *testing.T) {
	s := testScheme()
	gk, shares, err := s.Deal(rand.Reader, 3, 4)
	if err != nil {
		t.Fatalf("Deal: %v", err)
	}
	msg := []byte("update u7")
	good := []SignatureShare{
		s.SignShare(shares[0], msg),
		s.SignShare(shares[1], msg),
		s.SignShare(shares[2], msg),
	}
	// A Byzantine controller signs a different message but claims it is
	// a share for msg.
	evil := s.SignShare(shares[2], []byte("drop all firewall rules"))
	if s.VerifyShare(gk, msg, evil) {
		t.Fatal("tampered share passed verification")
	}
	bad := []SignatureShare{good[0], good[1], evil}
	sig, err := s.Combine(gk, bad)
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if s.Verify(gk.PK, msg, sig) {
		t.Fatal("aggregate with tampered share verified")
	}
}

func TestCombineVerifiedFiltersBadShares(t *testing.T) {
	s := testScheme()
	gk, shares, err := s.Deal(rand.Reader, 3, 5)
	if err != nil {
		t.Fatalf("Deal: %v", err)
	}
	msg := []byte("update u9")
	evil := s.SignShare(shares[0], []byte("forged"))
	mixed := []SignatureShare{
		evil,
		s.SignShare(shares[1], msg),
		s.SignShare(shares[2], msg),
		s.SignShare(shares[3], msg),
	}
	sig, err := s.CombineVerified(gk, msg, mixed)
	if err != nil {
		t.Fatalf("CombineVerified: %v", err)
	}
	if !s.Verify(gk.PK, msg, sig) {
		t.Fatal("filtered aggregate invalid")
	}
	// With only t-1 honest shares it must fail.
	tooFew := []SignatureShare{
		evil,
		s.SignShare(shares[1], msg),
		s.SignShare(shares[2], msg),
	}
	if _, err := s.CombineVerified(gk, msg, tooFew); err == nil {
		t.Fatal("expected failure with only t-1 honest shares")
	}
}

func TestSharePublicKeyMatchesScalar(t *testing.T) {
	s := testScheme()
	gk, shares, err := s.Deal(rand.Reader, 2, 3)
	if err != nil {
		t.Fatalf("Deal: %v", err)
	}
	for _, ks := range shares {
		want := s.Params.ScalarBaseMul(ks.Scalar)
		got := s.SharePublicKey(gk, ks.Index)
		if !got.Equal(want) {
			t.Fatalf("share %d: derived verification key mismatch", ks.Index)
		}
	}
}

func TestDealThresholdValidation(t *testing.T) {
	s := testScheme()
	if _, _, err := s.Deal(rand.Reader, 0, 3); err == nil {
		t.Error("t=0 accepted")
	}
	if _, _, err := s.Deal(rand.Reader, 4, 3); err == nil {
		t.Error("t>n accepted")
	}
}

func TestQuorumSizesMatchPaper(t *testing.T) {
	// The paper sets t = floor((n-1)/3)+1 and requires n >= 4.
	for _, tc := range []struct{ n, t int }{{4, 2}, {7, 3}, {10, 4}} {
		s := testScheme()
		gk, shares, err := s.Deal(rand.Reader, tc.t, tc.n)
		if err != nil {
			t.Fatalf("Deal(%d,%d): %v", tc.t, tc.n, err)
		}
		msg := []byte("m")
		sigShares := make([]SignatureShare, tc.t)
		for i := 0; i < tc.t; i++ {
			sigShares[i] = s.SignShare(shares[i], msg)
		}
		sig, err := s.Combine(gk, sigShares)
		if err != nil {
			t.Fatalf("Combine: %v", err)
		}
		if !s.Verify(gk.PK, msg, sig) {
			t.Fatalf("(t=%d, n=%d) aggregate failed", tc.t, tc.n)
		}
	}
}

func BenchmarkSignShare(b *testing.B) {
	s := testScheme()
	_, shares, _ := s.Deal(rand.Reader, 3, 4)
	hm := s.HashToPoint([]byte("msg"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SignShareDigest(shares[0], hm)
	}
}

func BenchmarkCombine(b *testing.B) {
	s := testScheme()
	gk, shares, _ := s.Deal(rand.Reader, 3, 4)
	msg := []byte("msg")
	sigShares := []SignatureShare{
		s.SignShare(shares[0], msg),
		s.SignShare(shares[1], msg),
		s.SignShare(shares[2], msg),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Combine(gk, sigShares); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyAggregate(b *testing.B) {
	s := testScheme()
	gk, shares, _ := s.Deal(rand.Reader, 3, 4)
	msg := []byte("msg")
	sigShares := []SignatureShare{
		s.SignShare(shares[0], msg),
		s.SignShare(shares[1], msg),
		s.SignShare(shares[2], msg),
	}
	sig, _ := s.Combine(gk, sigShares)
	hm := s.HashToPoint(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.VerifyDigest(gk.PK, hm, sig) {
			b.Fatal("verify failed")
		}
	}
}

var benchSink *big.Int

func BenchmarkLagrangeScalar(b *testing.B) {
	// Micro-benchmark of the interpolation weight computation alone.
	s := testScheme()
	for i := 0; i < b.N; i++ {
		x := new(big.Int).Exp(big.NewInt(3), big.NewInt(100), s.Params.R)
		benchSink = x
	}
}
