package bls

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"testing"

	"cicero/internal/metrics"
	"cicero/internal/tcrypto/pairing"
)

// dealShares signs msg with every key share of a fresh (t, n) deal.
func dealShares(t *testing.T, s *Scheme, threshold, n int, msg []byte) (*GroupKey, []SignatureShare) {
	t.Helper()
	gk, keyShares, err := s.Deal(rand.Reader, threshold, n)
	if err != nil {
		t.Fatalf("Deal(%d,%d): %v", threshold, n, err)
	}
	sigShares := make([]SignatureShare, n)
	for i, ks := range keyShares {
		sigShares[i] = s.SignShare(ks, msg)
	}
	return gk, sigShares
}

func TestBatchVerifySharesAcceptsHonest(t *testing.T) {
	s := testScheme()
	msg := []byte("batch/honest")
	gk, shares := dealShares(t, s, 3, 5, msg)
	hm := s.HashToPoint(msg)
	if !s.BatchVerifySharesDigest(gk, hm, shares) {
		t.Fatal("batch verification rejected all-honest share pool")
	}
	if s.BatchVerifySharesDigest(gk, s.HashToPoint([]byte("other")), shares) {
		t.Fatal("batch verification accepted shares for the wrong message")
	}
}

// TestBatchVerifyRejectsForgedShare is the adversarial soundness test: a
// pool containing one forged share must fail the batched check, and the
// per-share fallback must identify exactly the culprit index.
func TestBatchVerifyRejectsForgedShare(t *testing.T) {
	s := testScheme()
	msg := []byte("batch/adversarial")
	gk, shares := dealShares(t, s, 3, 5, msg)
	hm := s.HashToPoint(msg)

	for _, forge := range []struct {
		name   string
		mutate func([]SignatureShare)
	}{
		{"wrong-message share", func(pool []SignatureShare) {
			// Byzantine controller signs a different message under its
			// real key share but claims it is a share for msg.
			evil := s.Params.ScalarMul(s.HashToPoint([]byte("evil")), big3())
			pool[2].Point = evil
		}},
		{"random point", func(pool []SignatureShare) {
			k, _ := s.Params.RandomScalar(rand.Reader)
			pool[2].Point = s.Params.ScalarBaseMul(k)
		}},
		{"offset by generator", func(pool []SignatureShare) {
			pool[2].Point = s.Params.Add(pool[2].Point, s.Params.G)
		}},
	} {
		pool := make([]SignatureShare, len(shares))
		copy(pool, shares)
		forge.mutate(pool)
		if s.BatchVerifySharesDigest(gk, hm, pool) {
			t.Fatalf("%s: batch verification accepted a forged share", forge.name)
		}
		valid := s.FilterVerifiedShares(gk, hm, pool)
		if len(valid) != len(pool)-1 {
			t.Fatalf("%s: expected %d surviving shares, got %d", forge.name, len(pool)-1, len(valid))
		}
		for _, sh := range valid {
			if sh.Index == pool[2].Index {
				t.Fatalf("%s: culprit index %d survived filtering", forge.name, sh.Index)
			}
		}
	}
}

func TestBatchVerifyStructurallyInvalidShares(t *testing.T) {
	s := testScheme()
	msg := []byte("batch/structural")
	gk, shares := dealShares(t, s, 2, 3, msg)
	hm := s.HashToPoint(msg)
	bad := append([]SignatureShare{}, shares...)
	bad[0].Point = pairing.Infinity()
	if s.BatchVerifySharesDigest(gk, hm, bad) {
		t.Fatal("batch verification accepted an infinity share")
	}
	bad = append([]SignatureShare{}, shares...)
	bad[1].Index = 0
	if s.BatchVerifySharesDigest(gk, hm, bad) {
		t.Fatal("batch verification accepted a zero-index share")
	}
	if !s.BatchVerifySharesDigest(gk, hm, nil) {
		t.Fatal("empty pool must batch-verify trivially")
	}
}

// TestBatchVerifyPairingCountConstant pins the O(1)-pairings property:
// the happy-path batched check performs the same number of pairing
// operations regardless of the pool size.
func TestBatchVerifyPairingCountConstant(t *testing.T) {
	msg := []byte("batch/constant")
	pairingsFor := func(threshold, n int) uint64 {
		s := testScheme()
		gk, shares := dealShares(t, s, threshold, n, msg)
		hm := s.HashToPoint(msg)
		before := metrics.Crypto.Pairings.Load() + metrics.Crypto.PairingProducts.Load()
		if !s.BatchVerifySharesDigest(gk, hm, shares) {
			t.Fatalf("(t=%d, n=%d): honest pool rejected", threshold, n)
		}
		return metrics.Crypto.Pairings.Load() + metrics.Crypto.PairingProducts.Load() - before
	}
	small := pairingsFor(2, 3)
	large := pairingsFor(7, 10)
	if small != large {
		t.Fatalf("pairing count grew with pool size: %d at n=3 vs %d at n=10", small, large)
	}
	if small == 0 {
		t.Fatal("batched verification performed no pairing work")
	}
}

// TestCombineVerifiedDedupesBeforeCombine asserts the duplicate-share fix:
// a pool with harmless duplicates of honest shares must take the
// optimistic path (no per-share verification), not the slow path.
func TestCombineVerifiedDedupesBeforeCombine(t *testing.T) {
	s := testScheme()
	msg := []byte("dedupe/optimistic")
	gk, shares := dealShares(t, s, 3, 4, msg)
	// Retransmission-shaped pool: share 1 delivered twice.
	pool := []SignatureShare{shares[0], shares[0], shares[1], shares[2]}
	beforeShare := metrics.Crypto.ShareVerifies.Load()
	beforeBatch := metrics.Crypto.BatchVerifies.Load()
	sig, err := s.CombineVerified(gk, msg, pool)
	if err != nil {
		t.Fatalf("CombineVerified with duplicate share: %v", err)
	}
	if !s.Verify(gk.PK, msg, sig) {
		t.Fatal("aggregate from deduplicated pool invalid")
	}
	if d := metrics.Crypto.ShareVerifies.Load() - beforeShare; d != 0 {
		t.Fatalf("duplicate share forced %d per-share verifications; want 0", d)
	}
	if d := metrics.Crypto.BatchVerifies.Load() - beforeBatch; d != 0 {
		t.Fatalf("duplicate share forced %d batched verifications; want 0", d)
	}
}

func TestFilterVerifiedSharesParallelMatchesSerial(t *testing.T) {
	s := testScheme()
	msg := []byte("filter/parallel")
	gk, shares := dealShares(t, s, 3, 8, msg)
	hm := s.HashToPoint(msg)
	pool := append([]SignatureShare{}, shares...)
	pool[1].Point = s.Params.Add(pool[1].Point, s.Params.G)
	pool[5].Point = s.Params.ScalarBaseMul(big3())
	want := make(map[uint32]bool)
	for _, sh := range pool {
		want[sh.Index] = s.VerifyShareDigest(gk, hm, sh)
	}
	valid := s.FilterVerifiedShares(gk, hm, pool)
	got := make(map[uint32]bool)
	for _, sh := range valid {
		got[sh.Index] = true
	}
	for idx, ok := range want {
		if got[idx] != ok {
			t.Fatalf("index %d: parallel filter verdict %v, serial %v", idx, got[idx], ok)
		}
	}
}

func TestVerifyCachedHitAndForgedMismatch(t *testing.T) {
	s := testScheme()
	sk, pk, _ := s.GenerateKey(rand.Reader)
	msg := []byte("cache/hit")
	sig := s.Sign(sk, msg)
	cache := NewVerifyCache(8)

	if !s.VerifyCached(cache, pk, msg, sig) {
		t.Fatal("first verification (miss) rejected valid signature")
	}
	before := metrics.Crypto.PairingProducts.Load()
	if !s.VerifyCached(cache, pk, msg, sig) {
		t.Fatal("cached verification rejected valid signature")
	}
	if metrics.Crypto.PairingProducts.Load() != before {
		t.Fatal("cache hit still performed pairing work")
	}
	// Uniqueness: a different signature for a cached (pk, msg) is a
	// forgery and must be rejected without pairing work.
	forged := Signature{Point: s.Params.Add(sig.Point, s.Params.G)}
	if s.VerifyCached(cache, pk, msg, forged) {
		t.Fatal("cache accepted forged signature")
	}
	if metrics.Crypto.PairingProducts.Load() != before {
		t.Fatal("forged-signature rejection performed pairing work")
	}
}

// TestVerifyCacheNeverHitsDifferentDigest asserts the cache keying: an
// entry stored for one message must never satisfy a lookup for another.
func TestVerifyCacheNeverHitsDifferentDigest(t *testing.T) {
	s := testScheme()
	sk, pk, _ := s.GenerateKey(rand.Reader)
	cache := NewVerifyCache(64)
	sigA := s.Sign(sk, []byte("message A"))
	if !s.VerifyCached(cache, pk, []byte("message A"), sigA) {
		t.Fatal("valid signature rejected")
	}
	for i := 0; i < 16; i++ {
		msg := []byte(fmt.Sprintf("message B%d", i))
		hits := metrics.Crypto.VerifyCacheHits.Load()
		// sigA is a forgery for msg; a cache hit here would mean the
		// lookup key ignored the message digest.
		if s.VerifyCached(cache, pk, msg, sigA) {
			t.Fatalf("signature for message A verified for %q", msg)
		}
		if metrics.Crypto.VerifyCacheHits.Load() != hits {
			t.Fatalf("cache hit for different message digest %q", msg)
		}
	}
}

func TestVerifyCacheLRUEviction(t *testing.T) {
	s := testScheme()
	sk, pk, _ := s.GenerateKey(rand.Reader)
	cache := NewVerifyCache(2)
	for i := 0; i < 4; i++ {
		msg := []byte(fmt.Sprintf("evict/%d", i))
		if !s.VerifyCached(cache, pk, msg, s.Sign(sk, msg)) {
			t.Fatalf("message %d rejected", i)
		}
	}
	if cache.Len() != 2 {
		t.Fatalf("cache length %d after eviction; want 2", cache.Len())
	}
	// The two oldest entries are gone: re-verifying message 0 is a miss.
	misses := metrics.Crypto.VerifyCacheMisses.Load()
	msg0 := []byte("evict/0")
	if !s.VerifyCached(cache, pk, msg0, s.Sign(sk, msg0)) {
		t.Fatal("re-verification after eviction failed")
	}
	if metrics.Crypto.VerifyCacheMisses.Load() == misses {
		t.Fatal("expected a cache miss after LRU eviction")
	}
}

func TestCombineVerifiedCached(t *testing.T) {
	s := testScheme()
	msg := []byte("combine/cached")
	gk, shares := dealShares(t, s, 3, 4, msg)
	cache := NewVerifyCache(8)
	ref, err := s.CombineVerifiedCached(cache, gk, msg, shares[:3])
	if err != nil {
		t.Fatalf("CombineVerifiedCached (miss): %v", err)
	}
	// A hit must return the identical signature with zero pairing work,
	// even from a different (honest) share subset.
	before := metrics.Crypto.PairingProducts.Load() + metrics.Crypto.Pairings.Load()
	again, err := s.CombineVerifiedCached(cache, gk, msg, shares[1:4])
	if err != nil {
		t.Fatalf("CombineVerifiedCached (hit): %v", err)
	}
	if !again.Point.Equal(ref.Point) {
		t.Fatal("cached combine returned a different signature")
	}
	if metrics.Crypto.PairingProducts.Load()+metrics.Crypto.Pairings.Load() != before {
		t.Fatal("cache hit still performed pairing work")
	}
	// nil cache degrades to plain CombineVerified.
	sig, err := s.CombineVerifiedCached(nil, gk, msg, shares[:3])
	if err != nil || !sig.Point.Equal(ref.Point) {
		t.Fatalf("nil-cache combine: sig mismatch or err %v", err)
	}
}

func TestSharePublicKeyCached(t *testing.T) {
	s := testScheme()
	gk, keyShares, err := s.Deal(rand.Reader, 3, 4)
	if err != nil {
		t.Fatalf("Deal: %v", err)
	}
	for _, ks := range keyShares {
		first := s.SharePublicKey(gk, ks.Index)
		second := s.SharePublicKey(gk, ks.Index)
		if first != second { // pointer identity: second call must be the memo
			t.Fatalf("share %d: verification key not memoized", ks.Index)
		}
		if !first.Equal(s.Params.ScalarBaseMul(ks.Scalar)) {
			t.Fatalf("share %d: cached verification key wrong", ks.Index)
		}
	}
}

func big3() *big.Int { return big.NewInt(3) }

func benchCombineT(b *testing.B, threshold int) {
	s := testScheme()
	msg := []byte("bench/combine")
	gk, keyShares, err := s.Deal(rand.Reader, threshold, threshold+1)
	if err != nil {
		b.Fatalf("Deal: %v", err)
	}
	shares := make([]SignatureShare, threshold)
	for i := 0; i < threshold; i++ {
		shares[i] = s.SignShare(keyShares[i], msg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Combine(gk, shares); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombineT2(b *testing.B) { benchCombineT(b, 2) }
func BenchmarkCombineT4(b *testing.B) { benchCombineT(b, 4) }
func BenchmarkCombineT7(b *testing.B) { benchCombineT(b, 7) }

func BenchmarkCombineVerifiedT4(b *testing.B) {
	s := testScheme()
	msg := []byte("bench/combine-verified")
	gk, keyShares, _ := s.Deal(rand.Reader, 4, 5)
	shares := make([]SignatureShare, 4)
	for i := 0; i < 4; i++ {
		shares[i] = s.SignShare(keyShares[i], msg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.CombineVerified(gk, msg, shares); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchVerifySharesT4(b *testing.B) {
	s := testScheme()
	msg := []byte("bench/batch")
	gk, keyShares, _ := s.Deal(rand.Reader, 4, 5)
	shares := make([]SignatureShare, 4)
	for i := 0; i < 4; i++ {
		shares[i] = s.SignShare(keyShares[i], msg)
	}
	hm := s.HashToPoint(msg)
	s.BatchVerifySharesDigest(gk, hm, shares) // warm VK cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.BatchVerifySharesDigest(gk, hm, shares) {
			b.Fatal("batch verify failed")
		}
	}
}

func BenchmarkVerifyShare(b *testing.B) {
	s := testScheme()
	msg := []byte("bench/share")
	gk, keyShares, _ := s.Deal(rand.Reader, 3, 4)
	sh := s.SignShare(keyShares[0], msg)
	hm := s.HashToPoint(msg)
	s.VerifyShareDigest(gk, hm, sh) // warm VK cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.VerifyShareDigest(gk, hm, sh) {
			b.Fatal("share verify failed")
		}
	}
}

func BenchmarkVerifyCachedHit(b *testing.B) {
	s := testScheme()
	sk, pk, _ := s.GenerateKey(rand.Reader)
	msg := []byte("bench/cache-hit")
	sig := s.Sign(sk, msg)
	cache := NewVerifyCache(8)
	s.VerifyCached(cache, pk, msg, sig)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.VerifyCached(cache, pk, msg, sig) {
			b.Fatal("cached verify failed")
		}
	}
}
