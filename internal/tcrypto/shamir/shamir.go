// Package shamir implements Shamir secret sharing over an arbitrary prime
// field, as introduced in "How to Share a Secret" (Shamir, 1979). It is the
// algebraic foundation for the threshold signatures and distributed key
// generation used by Cicero's control plane: a degree t−1 polynomial f with
// f(0) = secret is evaluated at participant indices, and any t shares
// reconstruct the secret via Lagrange interpolation while t−1 shares reveal
// nothing.
package shamir

import (
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Share is one participant's evaluation of the sharing polynomial.
// Index is the (non-zero) evaluation point x; Value is f(x) mod the field
// modulus.
type Share struct {
	Index uint32
	Value *big.Int
}

// Clone returns a deep copy of the share.
func (s Share) Clone() Share {
	return Share{Index: s.Index, Value: new(big.Int).Set(s.Value)}
}

// Polynomial is a polynomial over a prime field with coefficients in
// ascending degree order: Coeffs[0] is the constant term (the secret).
type Polynomial struct {
	Modulus *big.Int
	Coeffs  []*big.Int
}

// Errors returned by the package.
var (
	// ErrThreshold reports an invalid (t, n) combination.
	ErrThreshold = errors.New("shamir: threshold must satisfy 1 <= t <= n")
	// ErrTooFewShares reports fewer shares than the threshold requires.
	ErrTooFewShares = errors.New("shamir: not enough shares to reconstruct")
	// ErrDuplicateIndex reports two shares claiming the same index.
	ErrDuplicateIndex = errors.New("shamir: duplicate share index")
	// ErrZeroIndex reports a share with the reserved index 0.
	ErrZeroIndex = errors.New("shamir: share index must be non-zero")
)

// NewPolynomial samples a uniformly random degree t−1 polynomial with the
// given constant term over the field of the given modulus.
func NewPolynomial(rand io.Reader, modulus, constant *big.Int, t int) (*Polynomial, error) {
	if t < 1 {
		return nil, ErrThreshold
	}
	coeffs := make([]*big.Int, t)
	coeffs[0] = new(big.Int).Mod(constant, modulus)
	for i := 1; i < t; i++ {
		c, err := randFieldElement(rand, modulus)
		if err != nil {
			return nil, fmt.Errorf("shamir: sample coefficient %d: %w", i, err)
		}
		coeffs[i] = c
	}
	return &Polynomial{Modulus: new(big.Int).Set(modulus), Coeffs: coeffs}, nil
}

// Eval evaluates the polynomial at x using Horner's rule.
func (p *Polynomial) Eval(x uint32) *big.Int {
	bx := new(big.Int).SetUint64(uint64(x))
	acc := new(big.Int)
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		acc.Mul(acc, bx)
		acc.Add(acc, p.Coeffs[i])
		acc.Mod(acc, p.Modulus)
	}
	return acc
}

// Threshold returns the number of shares required for reconstruction.
func (p *Polynomial) Threshold() int { return len(p.Coeffs) }

// ShareAt returns participant index's share of the polynomial's secret.
func (p *Polynomial) ShareAt(index uint32) (Share, error) {
	if index == 0 {
		return Share{}, ErrZeroIndex
	}
	return Share{Index: index, Value: p.Eval(index)}, nil
}

// Split shares secret among n participants with reconstruction threshold t.
// Participant indices are 1..n.
func Split(rand io.Reader, modulus, secret *big.Int, t, n int) ([]Share, error) {
	if t < 1 || t > n {
		return nil, ErrThreshold
	}
	poly, err := NewPolynomial(rand, modulus, secret, t)
	if err != nil {
		return nil, err
	}
	shares := make([]Share, n)
	for i := 1; i <= n; i++ {
		share, err := poly.ShareAt(uint32(i))
		if err != nil {
			return nil, err
		}
		shares[i-1] = share
	}
	return shares, nil
}

// Reconstruct recovers the secret from at least t shares by Lagrange
// interpolation at zero. Extra shares beyond the first t are ignored.
func Reconstruct(modulus *big.Int, shares []Share, t int) (*big.Int, error) {
	if t < 1 {
		return nil, ErrThreshold
	}
	if len(shares) < t {
		return nil, ErrTooFewShares
	}
	subset := shares[:t]
	indices := make([]uint32, t)
	seen := make(map[uint32]struct{}, t)
	for i, s := range subset {
		if s.Index == 0 {
			return nil, ErrZeroIndex
		}
		if _, dup := seen[s.Index]; dup {
			return nil, ErrDuplicateIndex
		}
		seen[s.Index] = struct{}{}
		indices[i] = s.Index
	}
	secret := new(big.Int)
	for i, s := range subset {
		lambda, err := LagrangeCoefficient(modulus, indices, i)
		if err != nil {
			return nil, err
		}
		term := new(big.Int).Mul(s.Value, lambda)
		secret.Add(secret, term)
		secret.Mod(secret, modulus)
	}
	return secret, nil
}

// LagrangeCoefficient computes λ_i = Π_{j≠i} x_j / (x_j − x_i) mod modulus,
// the weight of share indices[i] when interpolating at zero.
func LagrangeCoefficient(modulus *big.Int, indices []uint32, i int) (*big.Int, error) {
	if i < 0 || i >= len(indices) {
		return nil, fmt.Errorf("shamir: coefficient position %d out of range", i)
	}
	xi := new(big.Int).SetUint64(uint64(indices[i]))
	num := big.NewInt(1)
	den := big.NewInt(1)
	for j, idx := range indices {
		if j == i {
			continue
		}
		xj := new(big.Int).SetUint64(uint64(idx))
		num.Mul(num, xj)
		num.Mod(num, modulus)
		diff := new(big.Int).Sub(xj, xi)
		den.Mul(den, diff)
		den.Mod(den, modulus)
	}
	if den.Sign() == 0 {
		return nil, ErrDuplicateIndex
	}
	den.ModInverse(den, modulus)
	lambda := num.Mul(num, den)
	lambda.Mod(lambda, modulus)
	return lambda, nil
}

// LagrangeCoefficients computes every interpolation-at-zero weight for
// the given index set at once, agreeing position-for-position with
// LagrangeCoefficient. All denominators are inverted with a single
// modular inversion (Montgomery batch inversion): the running products
// are accumulated forward, the total is inverted once, and individual
// inverses are unwound backward. Threshold combining calls this on every
// quorum, so the n-fold inversion saving is on the protocol hot path.
func LagrangeCoefficients(modulus *big.Int, indices []uint32) ([]*big.Int, error) {
	n := len(indices)
	if n == 0 {
		return nil, ErrTooFewShares
	}
	nums := make([]*big.Int, n)
	dens := make([]*big.Int, n)
	for i, idx := range indices {
		xi := new(big.Int).SetUint64(uint64(idx))
		num := big.NewInt(1)
		den := big.NewInt(1)
		for j, jdx := range indices {
			if j == i {
				continue
			}
			xj := new(big.Int).SetUint64(uint64(jdx))
			num.Mul(num, xj)
			num.Mod(num, modulus)
			diff := new(big.Int).Sub(xj, xi)
			den.Mul(den, diff)
			den.Mod(den, modulus)
		}
		if den.Sign() == 0 {
			return nil, ErrDuplicateIndex
		}
		nums[i] = num
		dens[i] = den
	}
	// Batch inversion: running[i] = den_0·…·den_i.
	running := make([]*big.Int, n)
	acc := big.NewInt(1)
	for i := 0; i < n; i++ {
		acc = new(big.Int).Mul(acc, dens[i])
		acc.Mod(acc, modulus)
		running[i] = acc
	}
	inv := new(big.Int).ModInverse(running[n-1], modulus)
	out := make([]*big.Int, n)
	for i := n - 1; i >= 0; i-- {
		denInv := inv
		if i > 0 {
			denInv = new(big.Int).Mul(inv, running[i-1])
			denInv.Mod(denInv, modulus)
			inv = new(big.Int).Mul(inv, dens[i])
			inv.Mod(inv, modulus)
		}
		lambda := new(big.Int).Mul(nums[i], denInv)
		lambda.Mod(lambda, modulus)
		out[i] = lambda
	}
	return out, nil
}

// randFieldElement samples a uniform element of [0, modulus).
func randFieldElement(rand io.Reader, modulus *big.Int) (*big.Int, error) {
	byteLen := (modulus.BitLen() + 15) / 8
	buf := make([]byte, byteLen)
	if _, err := io.ReadFull(rand, buf); err != nil {
		return nil, err
	}
	v := new(big.Int).SetBytes(buf)
	return v.Mod(v, modulus), nil
}
