package shamir

import (
	"math/big"
	"testing"
)

func TestLagrangeCoefficientsMatchSingle(t *testing.T) {
	modulus := big.NewInt(2147483647) // 2^31 − 1, prime
	for _, indices := range [][]uint32{
		{1},
		{1, 2},
		{1, 2, 3},
		{2, 5, 9, 11},
		{1, 3, 7, 20, 1000},
		{7, 2, 19, 4, 42, 13, 8},
	} {
		batch, err := LagrangeCoefficients(modulus, indices)
		if err != nil {
			t.Fatalf("indices %v: %v", indices, err)
		}
		for i := range indices {
			single, err := LagrangeCoefficient(modulus, indices, i)
			if err != nil {
				t.Fatalf("indices %v pos %d: %v", indices, i, err)
			}
			if batch[i].Cmp(single) != 0 {
				t.Fatalf("indices %v pos %d: batch %v != single %v", indices, i, batch[i], single)
			}
		}
	}
}

func TestLagrangeCoefficientsErrors(t *testing.T) {
	modulus := big.NewInt(2147483647)
	if _, err := LagrangeCoefficients(modulus, nil); err == nil {
		t.Fatal("empty index set accepted")
	}
	if _, err := LagrangeCoefficients(modulus, []uint32{3, 5, 3}); err != ErrDuplicateIndex {
		t.Fatalf("duplicate index: got %v, want ErrDuplicateIndex", err)
	}
}

func TestLagrangeCoefficientsReconstruct(t *testing.T) {
	// Interpolating the shares of a known polynomial at zero with the
	// batched weights must recover the secret.
	modulus := big.NewInt(2147483647)
	poly := &Polynomial{
		Modulus: modulus,
		Coeffs:  []*big.Int{big.NewInt(424242), big.NewInt(17), big.NewInt(99)},
	}
	indices := []uint32{2, 6, 11}
	lambdas, err := LagrangeCoefficients(modulus, indices)
	if err != nil {
		t.Fatal(err)
	}
	secret := new(big.Int)
	for i, idx := range indices {
		term := new(big.Int).Mul(poly.Eval(idx), lambdas[i])
		secret.Add(secret, term)
		secret.Mod(secret, modulus)
	}
	if secret.Cmp(poly.Coeffs[0]) != 0 {
		t.Fatalf("reconstructed %v, want %v", secret, poly.Coeffs[0])
	}
}
