package shamir

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

// testModulus is a small prime field for fast tests (the P-256 order would
// work identically).
var testModulus = func() *big.Int {
	m, _ := new(big.Int).SetString("1087150122137225958799007", 10)
	return m
}()

func TestSplitReconstructRoundTrip(t *testing.T) {
	secret := big.NewInt(424242)
	shares, err := Split(rand.Reader, testModulus, secret, 3, 5)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if len(shares) != 5 {
		t.Fatalf("expected 5 shares, got %d", len(shares))
	}
	got, err := Reconstruct(testModulus, shares[:3], 3)
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatalf("reconstructed %v, want %v", got, secret)
	}
}

func TestAnyThresholdSubsetReconstructs(t *testing.T) {
	secret := big.NewInt(987654321)
	const threshold, n = 3, 6
	shares, err := Split(rand.Reader, testModulus, secret, threshold, n)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	// Try every 3-subset of the 6 shares.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				subset := []Share{shares[i], shares[j], shares[k]}
				got, err := Reconstruct(testModulus, subset, threshold)
				if err != nil {
					t.Fatalf("Reconstruct(%d,%d,%d): %v", i, j, k, err)
				}
				if got.Cmp(secret) != 0 {
					t.Fatalf("subset (%d,%d,%d) reconstructed %v, want %v", i, j, k, got, secret)
				}
			}
		}
	}
}

func TestTooFewSharesFails(t *testing.T) {
	shares, err := Split(rand.Reader, testModulus, big.NewInt(7), 4, 7)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if _, err := Reconstruct(testModulus, shares[:3], 4); err != ErrTooFewShares {
		t.Fatalf("expected ErrTooFewShares, got %v", err)
	}
}

// TestSubThresholdRevealsNothing checks the hiding property operationally:
// interpolating with t−1 genuine shares plus one adversarial share can
// produce any value, so t−1 shares place no constraint on the secret.
func TestSubThresholdRevealsNothing(t *testing.T) {
	secret := big.NewInt(31337)
	shares, err := Split(rand.Reader, testModulus, secret, 3, 5)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	// Forge the third share; reconstruction must differ from the secret
	// (with overwhelming probability over the forged value).
	forged := shares[2].Clone()
	forged.Value.Add(forged.Value, big.NewInt(1))
	forged.Value.Mod(forged.Value, testModulus)
	got, err := Reconstruct(testModulus, []Share{shares[0], shares[1], forged}, 3)
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	if got.Cmp(secret) == 0 {
		t.Fatal("forged share still reconstructed the true secret")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := Split(rand.Reader, testModulus, big.NewInt(1), 0, 5); err != ErrThreshold {
		t.Errorf("t=0: expected ErrThreshold, got %v", err)
	}
	if _, err := Split(rand.Reader, testModulus, big.NewInt(1), 6, 5); err != ErrThreshold {
		t.Errorf("t>n: expected ErrThreshold, got %v", err)
	}
	shares, _ := Split(rand.Reader, testModulus, big.NewInt(1), 2, 3)
	dup := []Share{shares[0], shares[0]}
	if _, err := Reconstruct(testModulus, dup, 2); err != ErrDuplicateIndex {
		t.Errorf("expected ErrDuplicateIndex, got %v", err)
	}
	zero := []Share{{Index: 0, Value: big.NewInt(1)}, shares[1]}
	if _, err := Reconstruct(testModulus, zero, 2); err != ErrZeroIndex {
		t.Errorf("expected ErrZeroIndex, got %v", err)
	}
}

func TestLagrangeCoefficientsSumToOneOnConstants(t *testing.T) {
	// For any index set, Σ λ_i = 1 (interpolating the constant 1).
	indices := []uint32{1, 4, 9, 12}
	sum := new(big.Int)
	for i := range indices {
		lambda, err := LagrangeCoefficient(testModulus, indices, i)
		if err != nil {
			t.Fatalf("LagrangeCoefficient: %v", err)
		}
		sum.Add(sum, lambda)
		sum.Mod(sum, testModulus)
	}
	if sum.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("Σλ = %v, want 1", sum)
	}
}

// TestQuickRoundTrip property-tests Split/Reconstruct over random secrets,
// thresholds, and share subsets.
func TestQuickRoundTrip(t *testing.T) {
	rng := mrand.New(mrand.NewSource(1))
	f := func(raw int64) bool {
		secret := new(big.Int).SetInt64(raw)
		secret.Mod(secret, testModulus)
		n := 2 + rng.Intn(9)  // 2..10
		th := 1 + rng.Intn(n) // 1..n
		shares, err := Split(rand.Reader, testModulus, secret, th, n)
		if err != nil {
			return false
		}
		// Shuffle and take an arbitrary superset of size >= th.
		rng.Shuffle(len(shares), func(i, j int) { shares[i], shares[j] = shares[j], shares[i] })
		take := th + rng.Intn(n-th+1)
		got, err := Reconstruct(testModulus, shares[:take], th)
		return err == nil && got.Cmp(secret) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPolynomialEval(t *testing.T) {
	// f(x) = 5 + 3x + 2x² over the test field.
	poly := &Polynomial{
		Modulus: testModulus,
		Coeffs:  []*big.Int{big.NewInt(5), big.NewInt(3), big.NewInt(2)},
	}
	if got := poly.Eval(0); got.Cmp(big.NewInt(5)) != 0 {
		t.Errorf("f(0) = %v, want 5", got)
	}
	if got := poly.Eval(2); got.Cmp(big.NewInt(19)) != 0 {
		t.Errorf("f(2) = %v, want 19", got)
	}
	if got := poly.Threshold(); got != 3 {
		t.Errorf("Threshold = %d, want 3", got)
	}
	if _, err := poly.ShareAt(0); err != ErrZeroIndex {
		t.Errorf("ShareAt(0): expected ErrZeroIndex, got %v", err)
	}
}

func BenchmarkSplit(b *testing.B) {
	secret := big.NewInt(123456789)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Split(rand.Reader, testModulus, secret, 4, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct(b *testing.B) {
	shares, _ := Split(rand.Reader, testModulus, big.NewInt(99), 4, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconstruct(testModulus, shares[:4], 4); err != nil {
			b.Fatal(err)
		}
	}
}
