package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunCryptoBench(t *testing.T) {
	if testing.Short() {
		t.Skip("microbenchmarks are wall-clock bound")
	}
	report, err := RunCryptoBench(Options{Quick: true})
	if err != nil {
		t.Fatalf("RunCryptoBench: %v", err)
	}
	want := []string{
		"pair", "pair/prepared", "prepare", "scalar-mul", "hash-to-g1",
		"combine/t=2", "combine/t=4", "combine/t=7",
		"sign/share", "verify/share", "batch-verify/t=4",
		"combine-verified/t=4", "verify/aggregate", "verify/cached-hit",
	}
	got := make(map[string]CryptoBenchOp, len(report.Ops))
	for _, op := range report.Ops {
		got[op.Name] = op
		if op.NsPerOp <= 0 || op.Iterations <= 0 {
			t.Errorf("op %s: non-positive measurement %+v", op.Name, op)
		}
	}
	for _, name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("missing op %q", name)
		}
	}
	// The fast path must beat the naive pairing in the same report.
	if got["pair/prepared"].NsPerOp >= got["pair"].NsPerOp {
		t.Errorf("prepared pairing (%d ns) not faster than plain pairing (%d ns)",
			got["pair/prepared"].NsPerOp, got["pair"].NsPerOp)
	}

	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded CryptoBenchReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(decoded.Ops) != len(report.Ops) {
		t.Fatalf("JSON round-trip lost ops: %d != %d", len(decoded.Ops), len(report.Ops))
	}

	var human bytes.Buffer
	report.Render(&human)
	if !strings.Contains(human.String(), "ns/op") {
		t.Fatal("Render produced no per-op lines")
	}
}
