package experiments

import (
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/core"
	"cicero/internal/metrics"
	"cicero/internal/scheduler"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

// Ablations quantifies what each Cicero ingredient costs, isolating the
// design choices DESIGN.md calls out: consistency scheduling, Byzantine
// ordering, threshold authentication, aggregation placement, and domain
// splitting. Each row reports the single-switch update time and the mean
// completion over a short Hadoop trace for one configuration.
func Ablations(opt Options) (*Result, error) {
	opt = opt.Defaulted()
	fabric := topology.DefaultFabricConfig()
	fabric.RacksPerPod = 6
	fabric.HostsPerRack = 2

	flowsFor := func(g *topology.Graph) ([]workload.Flow, error) {
		return workload.Generate(g, workload.Config{
			Mix:              workload.HadoopMix(),
			Flows:            200,
			MeanInterarrival: 2 * time.Millisecond,
			Seed:             opt.Seed,
		})
	}

	type variant struct {
		name   string
		mutate func(*core.Config)
	}
	variants := []variant{
		{"cicero (baseline: BFT + threshold + reverse-path)", func(c *core.Config) {}},
		{"- consistency (immediate scheduler)", func(c *core.Config) {
			c.Scheduler = scheduler.Immediate{}
		}},
		{"- authentication (crash-tolerant ordering)", func(c *core.Config) {
			c.Protocol = controlplane.ProtoCrash
		}},
		{"- replication (centralized)", func(c *core.Config) {
			c.Protocol = controlplane.ProtoCentralized
		}},
		{"+ controller aggregation", func(c *core.Config) {
			c.Aggregation = controlplane.AggController
		}},
		{"+ rack-split domains (2)", func(c *core.Config) {
			c.NumDomains = 2
			c.DomainOf = func(n *topology.Node) int {
				if n.Rack >= 3 && (n.Kind == topology.KindToR || n.Kind == topology.KindHost) {
					return 1
				}
				return 0
			}
		}},
	}

	tbl := metrics.NewTable("ablations: cost of each design ingredient",
		"configuration", "1-switch update", "mean completion(ms)", "p99(ms)")
	for _, v := range variants {
		g, err := topology.BuildSinglePod(fabric)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			Graph:    g,
			Protocol: controlplane.ProtoCicero,
			Cost:     calibrated,
			Seed:     opt.Seed,
		}
		v.mutate(&cfg)
		n, err := core.Build(cfg)
		if err != nil {
			return nil, err
		}
		update, err := n.MeasureUpdateTime(
			topology.HostName(0, 0, 0, 0), topology.HostName(0, 0, 1, 0))
		if err != nil {
			return nil, err
		}
		// Fresh deployment for the workload (the measurement warmed rules).
		g2, err := topology.BuildSinglePod(fabric)
		if err != nil {
			return nil, err
		}
		cfg2 := core.Config{
			Graph:    g2,
			Protocol: controlplane.ProtoCicero,
			Cost:     calibrated,
			Seed:     opt.Seed,
		}
		v.mutate(&cfg2)
		// Domain mapping was built against g; rebuild against g2.
		n2, err := core.Build(cfg2)
		if err != nil {
			return nil, err
		}
		flows, err := flowsFor(g2)
		if err != nil {
			return nil, err
		}
		results, err := n2.RunFlows(flows, core.RunOptions{})
		if err != nil {
			return nil, err
		}
		var completion metrics.Samples
		for _, r := range results {
			completion.AddDuration(r.Completion)
		}
		tbl.AddRow(v.name, update, completion.Mean(), completion.Percentile(0.99))
	}
	res := &Result{Name: "ablations", Tables: []*metrics.Table{tbl}}
	res.Notes = append(res.Notes,
		note("each ingredient's cost is visible in isolation: dropping consistency or authentication buys latency at the price of Table 1 transients / §2.2 attacks; domains buy parallelism"))
	return res, nil
}
