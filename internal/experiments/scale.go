package experiments

// The carrier-scale throughput sweep (BENCH_scale.json): the concurrent
// update workload executed at increasing batch sizes on the simulator and
// the live backends. Each leg reports updates/sec, latency percentiles,
// pairing operations per update, and signature/wire bytes per update; every
// leg's flow tables and audit-ledger content must be identical to the
// batch=1 simnet reference — batching is a performance layer and must never
// change what the network converges to.

import (
	"encoding/json"
	"fmt"
	"time"

	"cicero/internal/core"
	"cicero/internal/fabric"
	"cicero/internal/metrics"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

// ScaleOptions tunes the batch-size sweep.
type ScaleOptions struct {
	// Backends to sweep; defaults to simnet only under Quick, all three
	// ("simnet", "inproc", "tcp") otherwise.
	Backends []string
	// BatchSizes to sweep (always includes the batch=1 baseline).
	BatchSizes []int
	// Flows is the concurrent update count per leg (0 defaults by Quick).
	Flows int
	// Quick shrinks topology and flow counts for CI-speed runs.
	Quick bool
	// Seed drives pair selection and the reference run.
	Seed int64
	// Timeout bounds each live leg's completion wait (0: 120s).
	Timeout time.Duration
	// BatchDelay bounds how long a partial batch waits (0: bft default).
	BatchDelay time.Duration
}

// Defaulted applies defaults.
func (o ScaleOptions) Defaulted() ScaleOptions {
	if len(o.Backends) == 0 {
		if o.Quick {
			o.Backends = []string{"simnet", "inproc"}
		} else {
			o.Backends = []string{"simnet", "inproc", "tcp"}
		}
	}
	if len(o.BatchSizes) == 0 {
		if o.Quick {
			o.BatchSizes = []int{1, 8, 32}
		} else {
			o.BatchSizes = []int{1, 8, 16, 32, 64}
		}
	}
	if o.Flows == 0 {
		if o.Quick {
			o.Flows = 24
		} else {
			o.Flows = 96
		}
	}
	if o.Seed == 0 {
		o.Seed = 2021
	}
	if o.Timeout == 0 {
		o.Timeout = 120 * time.Second
	}
	return o
}

// ScaleLeg is one (backend, batch size) measurement.
type ScaleLeg struct {
	Backend       string  `json:"backend"`
	BatchSize     int     `json:"batch_size"`
	Updates       uint64  `json:"updates"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	WallMs        float64 `json:"wall_ms"`
	// BatchesSigned counts batch signing ceremonies across controllers
	// (zero on the batch=1 baseline).
	BatchesSigned uint64 `json:"batches_signed"`
	// PairingsPerUpdate is the amortization headline: pairing operations
	// (full + prepared + products) per applied update.
	PairingsPerUpdate float64 `json:"pairings_per_update"`
	SigBytesPerUpdate float64 `json:"sig_bytes_per_update"`
	// WireBytesPerUpdate is bytes on the fabric per applied update (the
	// simulator's model estimate, or real encoded bytes on live legs).
	WireBytesPerUpdate float64 `json:"wire_bytes_per_update"`
	// TableMatch/ContentMatch gate the sweep: every leg must converge to
	// the batch=1 simnet reference's tables and ledger content.
	TableMatch   bool `json:"table_match"`
	ContentMatch bool `json:"content_match"`
}

// ScaleReport is the BENCH_scale.json document.
type ScaleReport struct {
	Quick      bool       `json:"quick"`
	Seed       int64      `json:"seed"`
	Flows      int        `json:"flows"`
	BatchSizes []int      `json:"batch_sizes"`
	Legs       []ScaleLeg `json:"legs"`
}

// JSON renders the report.
func (r *ScaleReport) JSON() []byte {
	b, _ := json.MarshalIndent(r, "", "  ")
	return append(b, '\n')
}

// Passed reports whether every leg reproduced the reference exactly.
func (r *ScaleReport) Passed() bool {
	for _, leg := range r.Legs {
		if !leg.TableMatch || !leg.ContentMatch {
			return false
		}
	}
	return true
}

// Speedup returns the best batched-to-unbatched throughput ratio on the
// named backend (0 when either leg is missing).
func (r *ScaleReport) Speedup(backend string) float64 {
	var base, best float64
	for _, leg := range r.Legs {
		if leg.Backend != backend {
			continue
		}
		if leg.BatchSize <= 1 {
			base = leg.UpdatesPerSec
		} else if leg.UpdatesPerSec > best {
			best = leg.UpdatesPerSec
		}
	}
	if base == 0 {
		return 0
	}
	return best / base
}

// scaleCheck compares a finished leg's tables and ledger content against
// the batch=1 simnet reference. ChainDigest is deliberately out of scope:
// update-record order depends on ack timing, which batching legitimately
// reorders; content and tables must not move.
func scaleCheck(n *core.Network, ref *reference, live bool, timeout time.Duration) (tableMatch, contentMatch bool, err error) {
	tbl, err := networkTableDigest(n, live, timeout)
	if err != nil {
		return false, false, err
	}
	_, content, err := controllerDigests(n, live, timeout)
	if err != nil {
		return false, false, err
	}
	contentMatch = true
	for id, d := range content {
		if d != ref.content[id] {
			contentMatch = false
		}
	}
	return tbl == ref.tableDigest, contentMatch, nil
}

// sumBatchesSigned totals controller batch-signing ceremonies.
func sumBatchesSigned(n *core.Network, live bool, timeout time.Duration) (uint64, error) {
	var total uint64
	for _, d := range n.Domains {
		for _, ctl := range d.Controllers {
			ctl := ctl
			read := func() { total += ctl.BatchesSigned }
			if live {
				if err := invokeWait(n.Fab, fabric.NodeID(ctl.ID()), read, timeout); err != nil {
					return 0, err
				}
			} else {
				read()
			}
		}
	}
	return total, nil
}

// runScaleSimLeg executes one batch size on the simulator: the concurrent
// flow set with tight interarrival (so batch windows actually fill),
// latencies and throughput in simulated time.
func runScaleSimLeg(opt ScaleOptions, g *topology.Graph, pairs [][2]string, ref *reference, batch int) (ScaleLeg, error) {
	leg := ScaleLeg{Backend: "simnet", BatchSize: batch}
	cfg := liveConfig(g, nil, LiveOptions{Seed: opt.Seed, BatchSize: batch, BatchDelay: opt.BatchDelay})
	n, err := core.Build(cfg)
	if err != nil {
		return leg, err
	}
	flows := make([]workload.Flow, len(pairs))
	for i, p := range pairs {
		flows[i] = workload.Flow{
			ID:  uint64(i + 1),
			Src: p[0], Dst: p[1],
			SizeKB: 64,
			// Tight spacing: the whole set lands inside a few batch
			// windows, the regime batching exists for.
			Start: time.Duration(i) * 200 * time.Microsecond,
		}
	}
	mark := markCrypto()
	results, err := n.RunFlows(flows, core.RunOptions{})
	if err != nil {
		return leg, err
	}
	samples := &metrics.Samples{}
	var wall time.Duration
	for _, r := range results {
		samples.Add(float64(r.SetupDelay) / float64(time.Millisecond))
		if end := r.Flow.Start + r.Completion; end > wall {
			wall = end
		}
	}
	updates, err := appliedUpdates(n, false, opt.Timeout)
	if err != nil {
		return leg, err
	}
	crypto := cryptoSince(mark, updates)
	leg.Updates = updates
	leg.P50Ms = samples.Percentile(0.50)
	leg.P95Ms = samples.Percentile(0.95)
	leg.P99Ms = samples.Percentile(0.99)
	leg.WallMs = float64(wall) / float64(time.Millisecond)
	if wall > 0 {
		leg.UpdatesPerSec = float64(updates) / wall.Seconds()
	}
	leg.PairingsPerUpdate = crypto.PairingsPerUpdate
	leg.SigBytesPerUpdate = crypto.SigBytesPerUpdate
	if updates > 0 {
		leg.WireBytesPerUpdate = float64(n.Fab.Stats().Bytes) / float64(updates)
	}
	if leg.BatchesSigned, err = sumBatchesSigned(n, false, opt.Timeout); err != nil {
		return leg, err
	}
	leg.TableMatch, leg.ContentMatch, err = scaleCheck(n, ref, false, opt.Timeout)
	return leg, err
}

// runScaleLiveLeg executes one batch size on a live backend: all flows
// injected concurrently, wall-clock throughput.
func runScaleLiveLeg(opt ScaleOptions, backend string, g *topology.Graph, pairs [][2]string, ref *reference, batch int) (ScaleLeg, error) {
	leg := ScaleLeg{Backend: backend, BatchSize: batch}
	fab, closeFab, err := newLiveFabric(backend)
	if err != nil {
		return leg, err
	}
	defer closeFab()
	lopt := LiveOptions{Seed: opt.Seed, BatchSize: batch, BatchDelay: opt.BatchDelay}
	n, err := core.Build(liveConfig(g, fab, lopt))
	if err != nil {
		return leg, err
	}
	mark := markCrypto()
	wireMark := fab.Stats().Bytes
	samples := &metrics.Samples{}
	wallStart := time.Now()
	starts := make([]time.Time, len(pairs))
	dones := make([]<-chan struct{}, len(pairs))
	for i, p := range pairs {
		starts[i] = time.Now()
		if dones[i], err = driveFlow(n, p); err != nil {
			return leg, err
		}
	}
	for i, done := range dones {
		select {
		case <-done:
			samples.Add(float64(time.Since(starts[i])) / float64(time.Millisecond))
		case <-time.After(opt.Timeout):
			return leg, fmt.Errorf("scale: %s batch=%d flow %v timed out", backend, batch, pairs[i])
		}
	}
	wall := time.Since(wallStart)
	if err := awaitQuiescence(n, opt.Timeout); err != nil {
		return leg, err
	}
	updates, err := appliedUpdates(n, true, opt.Timeout)
	if err != nil {
		return leg, err
	}
	crypto := cryptoSince(mark, updates)
	leg.Updates = updates
	leg.P50Ms = samples.Percentile(0.50)
	leg.P95Ms = samples.Percentile(0.95)
	leg.P99Ms = samples.Percentile(0.99)
	leg.WallMs = float64(wall) / float64(time.Millisecond)
	if wall > 0 {
		leg.UpdatesPerSec = float64(updates) / wall.Seconds()
	}
	leg.PairingsPerUpdate = crypto.PairingsPerUpdate
	leg.SigBytesPerUpdate = crypto.SigBytesPerUpdate
	if updates > 0 {
		leg.WireBytesPerUpdate = float64(fab.Stats().Bytes-wireMark) / float64(updates)
	}
	if leg.BatchesSigned, err = sumBatchesSigned(n, true, opt.Timeout); err != nil {
		return leg, err
	}
	leg.TableMatch, leg.ContentMatch, err = scaleCheck(n, ref, true, opt.Timeout)
	return leg, err
}

// RunScale executes the full batch-size sweep and assembles the
// BENCH_scale.json report.
func RunScale(opt ScaleOptions) (*ScaleReport, error) {
	opt = opt.Defaulted()
	g, err := liveTopology(LiveOptions{Quick: opt.Quick})
	if err != nil {
		return nil, err
	}
	pairs, err := livePairs(g, opt.Flows)
	if err != nil {
		return nil, err
	}
	// The reference everything is measured against: batch=1 on simnet.
	ref, err := runReference(g, pairs, LiveOptions{Seed: opt.Seed, Timeout: opt.Timeout})
	if err != nil {
		return nil, fmt.Errorf("scale: simnet reference: %w", err)
	}
	report := &ScaleReport{
		Quick:      opt.Quick,
		Seed:       opt.Seed,
		Flows:      opt.Flows,
		BatchSizes: opt.BatchSizes,
	}
	for _, backend := range opt.Backends {
		for _, batch := range opt.BatchSizes {
			var leg ScaleLeg
			var err error
			if backend == "simnet" {
				leg, err = runScaleSimLeg(opt, g, pairs, ref, batch)
			} else {
				leg, err = runScaleLiveLeg(opt, backend, g, pairs, ref, batch)
			}
			if err != nil {
				return nil, fmt.Errorf("scale: backend %s batch=%d: %w", backend, batch, err)
			}
			report.Legs = append(report.Legs, leg)
		}
	}
	return report, nil
}
