package experiments

import (
	"fmt"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/core"
	"cicero/internal/metrics"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

// Fig12a reproduces the network-update-time-versus-control-plane-size
// experiment: a single-switch update's latency from event to applied
// rule, for control planes of 1 (centralized) and 4..10 members.
func Fig12a(opt Options) (*Result, error) {
	opt = opt.Defaulted()
	cfg := topology.DefaultFabricConfig()
	cfg.RacksPerPod = 2
	cfg.HostsPerRack = 1

	measure := func(proto controlplane.Protocol, agg controlplane.Aggregation, ctls int) (time.Duration, error) {
		g, err := topology.BuildSinglePod(cfg)
		if err != nil {
			return 0, err
		}
		n, err := core.Build(core.Config{
			Graph:                g,
			Protocol:             proto,
			Aggregation:          agg,
			ControllersPerDomain: ctls,
			Cost:                 calibrated,
			CryptoReal:           opt.CryptoReal,
			Seed:                 opt.Seed,
		})
		if err != nil {
			return 0, err
		}
		return n.MeasureUpdateTime(topology.HostName(0, 0, 0, 0), topology.HostName(0, 0, 1, 0))
	}

	tbl := metrics.NewTable("fig12a: update time vs control-plane size",
		"size", "centralized", "crash-tolerant", "cicero", "cicero-agg")
	central, err := measure(controlplane.ProtoCentralized, 0, 1)
	if err != nil {
		return nil, err
	}
	tbl.AddRow(1, central, "-", "-", "-")
	for n := 4; n <= 10; n++ {
		crash, err := measure(controlplane.ProtoCrash, 0, n)
		if err != nil {
			return nil, err
		}
		cic, err := measure(controlplane.ProtoCicero, controlplane.AggSwitch, n)
		if err != nil {
			return nil, err
		}
		cicAgg, err := measure(controlplane.ProtoCicero, controlplane.AggController, n)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(n, "-", crash, cic, cicAgg)
	}
	res := &Result{Name: "fig12a", Tables: []*metrics.Table{tbl}}
	res.Notes = append(res.Notes,
		note("paper: update time grows with control-plane size; cicero at n=10 is ≈2.5x the centralized baseline; crash-tolerant grows less (no authentication)"),
		quorumLabel(10))
	return res, nil
}

// Fig12b reproduces event locality: the share of the pod's events each
// control plane must process as the pod is divided into 1..10 domains,
// under the Hadoop and web-server mixes. The computation follows the
// paper's locality analysis: a flow event is processed by the domains of
// its endpoints' racks (rack-partitioned domains).
func Fig12b(opt Options) (*Result, error) {
	opt = opt.Defaulted()
	cfg := podConfig(opt)
	g, err := topology.BuildSinglePod(cfg)
	if err != nil {
		return nil, err
	}
	mixes := []workload.Mix{workload.HadoopMix(), workload.WebServerMix()}
	traces := make([][]workload.Flow, len(mixes))
	for i, mix := range mixes {
		flows, err := workload.Generate(g, workload.Config{
			Mix:              mix,
			Flows:            opt.Flows,
			MeanInterarrival: meanInterarrival(opt),
			Seed:             opt.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		traces[i] = flows
	}
	rackOf := func(host string) int {
		node, ok := g.Node(host)
		if !ok {
			return 0
		}
		return node.Rack
	}
	tbl := metrics.NewTable("fig12b: % of events handled per control plane",
		"domains", "single-domain(%)", "md-hadoop(%)", "md-webserver(%)")
	for domains := 1; domains <= 10; domains++ {
		row := []any{domains, 100.0}
		for i := range mixes {
			totalEvents := 0
			perDomain := make([]int, domains)
			for _, f := range traces[i] {
				src := rackOf(f.Src) * domains / cfg.RacksPerPod
				dst := rackOf(f.Dst) * domains / cfg.RacksPerPod
				totalEvents++
				perDomain[src]++
				if dst != src {
					perDomain[dst]++
				}
			}
			// Average share of total events a single control plane sees.
			sum := 0.0
			for _, c := range perDomain {
				sum += float64(c)
			}
			avg := 100 * sum / float64(domains) / float64(totalEvents)
			row = append(row, avg)
		}
		if domains == 1 {
			row[2], row[3] = 100.0, 100.0
		}
		tbl.AddRow(row...)
	}
	res := &Result{Name: "fig12b", Tables: []*metrics.Table{tbl}}
	res.Notes = append(res.Notes,
		note("paper: per-domain share drops sharply with diminishing returns; hadoop (5.8%% multi-domain) drops faster than web (31.6%%)"))
	return res, nil
}

// Fig12c compares one 12-controller domain against three 4-controller
// domains (two pods plus an interconnect domain) on the Hadoop mix.
func Fig12c(opt Options) (*Result, error) {
	opt = opt.Defaulted()
	fabric := podConfig(opt)
	if !opt.Quick {
		// Two full pods with a 12-member control plane is the paper's
		// heaviest single-domain setup; trim racks to keep runtimes sane
		// while preserving the structure.
		fabric.RacksPerPod = 20
	}
	icfg := topology.InterconnectPodsConfig{
		Fabric:               fabric,
		Pods:                 2,
		InterconnectSwitches: 4,
		EdgeInterconnect:     60 * time.Microsecond,
	}
	g, err := topology.BuildInterconnectedPods(icfg)
	if err != nil {
		return nil, err
	}
	flows, err := workload.Generate(g, workload.Config{
		Mix:              workload.HadoopMix(),
		Flows:            opt.Flows,
		MeanInterarrival: meanInterarrival(opt),
		Seed:             opt.Seed,
	})
	if err != nil {
		return nil, err
	}

	type variant struct {
		name    string
		domains int
		ctls    int
		mapFn   func(n *topology.Node) int
		agg     controlplane.Aggregation
	}
	byPod := core.ByPod(2, 2)
	variants := []variant{
		{"cicero (1 domain, 12 ctl)", 1, 12, nil, controlplane.AggSwitch},
		{"cicero-agg (1 domain, 12 ctl)", 1, 12, nil, controlplane.AggController},
		{"cicero MD (3x4 ctl)", 3, 4, byPod, controlplane.AggSwitch},
		{"cicero-agg MD (3x4 ctl)", 3, 4, byPod, controlplane.AggController},
	}
	series := make(map[string]*metrics.Samples)
	var order []string
	for _, v := range variants {
		completion, _, _, err := runWorkloadCompletion(core.Config{
			Graph:                g,
			Protocol:             controlplane.ProtoCicero,
			Aggregation:          v.agg,
			ControllersPerDomain: v.ctls,
			NumDomains:           v.domains,
			DomainOf:             v.mapFn,
			Cost:                 calibrated,
			CryptoReal:           opt.CryptoReal,
			Seed:                 opt.Seed,
		}, flows, core.RunOptions{})
		if err != nil {
			return nil, err
		}
		series[v.name] = completion
		order = append(order, v.name)
	}
	res := &Result{Name: "fig12c"}
	res.Tables = append(res.Tables, cdfTable("fig12c: Hadoop completion, single vs multi-domain", series, order))
	res.Notes = append(res.Notes,
		note("paper: multi-domain (3x4) clearly beats one 12-member control plane thanks to parallel local processing"))
	return res, nil
}

// Fig12d reproduces the multi-data-center experiment on the Deutsche
// Telekom backbone: pods as domains versus one centralized controller for
// the whole network, web-server mix.
func Fig12d(opt Options) (*Result, error) {
	opt = opt.Defaulted()
	mdc := topology.DefaultMultiDCConfig()
	mdc.Fabric.HostsPerRack = 2
	if opt.Quick {
		mdc.Fabric.RacksPerPod = 4
		mdc.Fabric.SpinesPerPlane = 2
		mdc.DataCenters = 3
		mdc.PodsPerDC = 2
	} else {
		mdc.Fabric.RacksPerPod = 8
		mdc.DataCenters = len(topology.TelekomCities)
		mdc.PodsPerDC = 4
	}
	g, err := topology.BuildMultiDC(mdc)
	if err != nil {
		return nil, err
	}
	flows, err := workload.Generate(g, workload.Config{
		Mix:              workload.WebServerMix(),
		Flows:            opt.Flows,
		MeanInterarrival: meanInterarrival(opt),
		Seed:             opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	// One domain per pod plus a WAN/interconnect domain for spines+cores.
	podDomains := mdc.DataCenters * mdc.PodsPerDC
	domainOf := core.ByPod(mdc.PodsPerDC, podDomains)

	type variant struct {
		name    string
		proto   controlplane.Protocol
		agg     controlplane.Aggregation
		domains int
		ctls    int
		mapFn   func(n *topology.Node) int
	}
	variants := []variant{
		{"centralized", controlplane.ProtoCentralized, 0, 1, 1, nil},
		{"cicero MD", controlplane.ProtoCicero, controlplane.AggSwitch, podDomains + 1, 4, domainOf},
		{"cicero-agg MD", controlplane.ProtoCicero, controlplane.AggController, podDomains + 1, 4, domainOf},
	}
	series := make(map[string]*metrics.Samples)
	var order []string
	for _, v := range variants {
		completion, _, _, err := runWorkloadCompletion(core.Config{
			Graph:                g,
			Protocol:             v.proto,
			Aggregation:          v.agg,
			ControllersPerDomain: v.ctls,
			NumDomains:           v.domains,
			DomainOf:             v.mapFn,
			Cost:                 calibrated,
			CryptoReal:           opt.CryptoReal,
			Seed:                 opt.Seed,
		}, flows, core.RunOptions{})
		if err != nil {
			return nil, err
		}
		series[v.name] = completion
		order = append(order, v.name)
	}
	res := &Result{Name: "fig12d"}
	res.Tables = append(res.Tables, cdfTable(
		fmt.Sprintf("fig12d: web-server completion across %d data centers", mdc.DataCenters),
		series, order))
	res.Notes = append(res.Notes,
		note("paper: the centralized controller pays WAN latency on remote flows; cicero's per-pod domains beat it despite BFT+threshold overhead"))
	return res, nil
}
