package experiments

// The tuf experiment exercises the threshold-signed policy metadata
// subsystem (internal/metarepo) end to end: a seeded chaos campaign in
// which a Byzantine attacker replays stale documents, splices snapshots,
// forges role keys, and reuses retired shares against hardened stores; a
// canary leg proving the invariant plane catches stores whose
// verification has been disabled; and a wall-clock microbenchmark of the
// store-side verification cost — most importantly the per-refresh cost a
// switch pays every time the leader re-mints the freshness proof.

import (
	"crypto/rand"
	"fmt"
	"sort"
	"time"

	"cicero/internal/chaos"
	"cicero/internal/metarepo"
	"cicero/internal/metrics"
	"cicero/internal/protocol"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/pairing"
	"cicero/internal/tcrypto/pki"
)

// Tuf runs the metadata campaign and verification-cost benchmark.
func Tuf(o Options) (*Result, error) {
	o = o.Defaulted()
	seeds, canarySeeds := 10, 5
	if o.Quick {
		seeds, canarySeeds = 4, 3
	}

	// Leg 1: hardened stores under metadata attack. Zero violations is
	// the expected result; every attack lands as a classified rejection.
	campaign := chaos.Campaign{Profile: chaos.MetadataProfile(), Seeds: chaos.Seeds(o.Seed, seeds)}.Run()
	var published, refreshes, reshares, stale uint64
	var rootVersion uint64
	rejects := map[string]uint64{}
	for _, sr := range campaign.Results {
		published += sr.MetaPublished
		refreshes += sr.MetaRefreshes
		reshares += sr.MetaReshares
		stale += sr.MetaStaleShares
		if sr.MetaRootVersion > rootVersion {
			rootVersion = sr.MetaRootVersion
		}
		for reason, n := range sr.MetaRejects {
			rejects[reason] += n
		}
	}
	campTbl := metrics.NewTable("tuf metadata chaos campaign (rollback, freeze, splice, forged-key, retired-share attacks)",
		"seeds", "violations", "published", "refreshes", "reshares", "max root ver", "stale shares")
	campTbl.AddRow(seeds, campaign.Violations, published, refreshes, reshares, rootVersion, stale)

	reasons := make([]string, 0, len(rejects))
	for reason := range rejects {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	rejTbl := metrics.NewTable("store rejections by classification", "reason", "count")
	for _, reason := range reasons {
		rejTbl.AddRow(reason, rejects[reason])
	}

	// Leg 2: the bypass canary. The same attacks against stores that
	// skip verification must be caught by the invariant plane — this is
	// the proof the campaign's zero above is load-bearing.
	canaryProfile := chaos.MetadataProfile()
	canaryProfile.CanaryMetaBypass = true
	canary := chaos.Campaign{Profile: canaryProfile, Seeds: chaos.Seeds(o.Seed, canarySeeds)}.Run()
	caught := map[string]int{}
	for _, sr := range canary.Results {
		perSeed := map[string]bool{}
		for _, v := range sr.Violations {
			perSeed[v.Invariant] = true
		}
		for inv := range perSeed {
			caught[inv]++
		}
	}
	canTbl := metrics.NewTable("verification-bypass canary (seeds caught / seeds run)",
		"invariant", "caught")
	for _, inv := range []string{chaos.InvMetaRollback, chaos.InvMetaForged, chaos.InvStalePolicy} {
		canTbl.AddRow(inv, fmt.Sprintf("%d/%d", caught[inv], canarySeeds))
	}

	costTbl, err := tufVerifyCost(o)
	if err != nil {
		return nil, err
	}

	notes := []string{
		note("campaign: %s", campaign.Summary()),
		note("canary: %s", canary.Summary()),
		"verification costs are host wall-clock (like -crypto-bench), not virtual time",
	}
	if campaign.Violations == 0 {
		notes = append(notes, "zero invariant violations with verification on (expected)")
	} else {
		notes = append(notes, fmt.Sprintf("%d INVARIANT VIOLATIONS with verification on — failing seeds %v", campaign.Violations, campaign.FailingSeeds))
	}
	return &Result{
		Name:   "tuf",
		Tables: []*metrics.Table{campTbl, rejTbl, canTbl, costTbl},
		Notes:  notes,
	}, nil
}

// tufVerifyCost measures the real store-side verification cost: adopting
// a full signed set from the root of trust, verifying one timestamp
// refresh (the steady-state per-refresh cost), verifying a root rotation,
// and rejecting a replayed stale proof.
func tufVerifyCost(o Options) (*metrics.Table, error) {
	scheme := bls.NewScheme(pairing.Fast254())
	const n, quorum = 4, 2
	gk, shares, err := scheme.Deal(rand.Reader, quorum, n)
	if err != nil {
		return nil, fmt.Errorf("tuf: deal: %w", err)
	}
	signers := make([]*pki.KeyPair, n)
	keys := make([]metarepo.RoleKey, n)
	for i := range signers {
		kp, err := pki.NewKeyPair(rand.Reader, pki.Identity(fmt.Sprintf("bench/ctl/%d", i)))
		if err != nil {
			return nil, fmt.Errorf("tuf: keypair: %w", err)
		}
		signers[i] = kp
		keys[i] = metarepo.RoleKey{KeyID: string(kp.ID), Pub: append([]byte(nil), kp.Public...)}
	}
	const issued, ttl = int64(1), int64(time.Hour)
	nowFn := func() int64 { return issued }

	rootEnv, err := metarepo.SignRootDirect(scheme, gk, shares[:quorum], metarepo.GenesisRoot(quorum, signers, issued, ttl))
	if err != nil {
		return nil, fmt.Errorf("tuf: sign root: %w", err)
	}
	tg, sn, ts := metarepo.BuildSet(metarepo.Policy{
		Phase:  1,
		Quorum: quorum,
		Flows:  []metarepo.FlowPolicy{{Src: "h1", Dst: "h2", Allow: true}},
	}, 1, issued, ttl, ttl)
	set := metarepo.SignSet(tg, sn, ts, signers[:quorum])

	iters := 400
	rotations := 48
	if o.Quick {
		iters, rotations = 60, 12
	}

	tbl := metrics.NewTable("metadata verification cost (host wall-clock)", "op", "ns/op", "iters")
	timed := func(name string, count int, fn func(i int)) {
		start := time.Now()
		for i := 0; i < count; i++ {
			fn(i)
		}
		tbl.AddRow(name, time.Since(start).Nanoseconds()/int64(count), count)
	}

	// Full-set adoption from only the root of trust: one BLS pairing
	// check plus three delegated-role verifications — the cost a switch
	// pays on (re)provisioning.
	timed("verify/full-set", iters, func(int) {
		st := metarepo.NewStore(scheme, gk.PK, nowFn)
		if err := st.Apply(rootEnv); err != nil {
			panic(err)
		}
		if err := st.ApplySet(set); err != nil {
			panic(err)
		}
	})

	// Steady-state refresh: one Ed25519 verification plus the snapshot
	// binding check per re-minted freshness proof. Envelopes are built
	// outside the timer so only store-side verification is measured.
	st := metarepo.NewStore(scheme, gk.PK, nowFn)
	if err := st.Apply(rootEnv); err != nil {
		return nil, fmt.Errorf("tuf: adopt root: %w", err)
	}
	if err := st.ApplySet(set); err != nil {
		return nil, fmt.Errorf("tuf: adopt set: %w", err)
	}
	refreshes := make([]protocol.MetaEnvelope, iters)
	cur := ts
	for i := range refreshes {
		cur = metarepo.RefreshTimestamp(cur, issued, ttl)
		signed := metarepo.Encode(cur)
		refreshes[i] = protocol.MetaEnvelope{
			Role:   protocol.MetaRoleTimestamp,
			Signed: signed,
			Sigs:   []protocol.MetaSig{metarepo.SignRole(signers[0], protocol.MetaRoleTimestamp, signed)},
		}
	}
	timed("verify/refresh", iters, func(i int) {
		if err := st.Apply(refreshes[i]); err != nil {
			panic(err)
		}
	})

	// Root rotation: threshold group signature verified against the
	// previously trusted root's group key.
	roots := make([]protocol.MetaEnvelope, rotations)
	for i := range roots {
		env, err := metarepo.SignRootDirect(scheme, gk, shares[:quorum],
			metarepo.RootAt(uint64(i+2), quorum, keys, issued, ttl))
		if err != nil {
			return nil, fmt.Errorf("tuf: sign rotation: %w", err)
		}
		roots[i] = env
	}
	timed("verify/root-rotation", rotations, func(i int) {
		if err := st.Apply(roots[i]); err != nil {
			panic(err)
		}
	})

	// Rollback rejection: the fast path every replayed document hits —
	// version comparison before any signature work.
	stale := refreshes[0]
	timed("reject/rollback", iters, func(int) {
		if st.Apply(stale) == nil {
			panic("tuf: stale proof adopted")
		}
	})
	return tbl, nil
}
