package experiments

import (
	"fmt"
	"time"

	"cicero/internal/metrics"
	"cicero/internal/synthesis"
)

// Synthesis runs the randomized update-synthesis sweep: generated
// old/new configuration pairs are synthesized into dependency-ordered
// plans certified by per-node local verification, executed through the
// full BFT + threshold-signature pipeline on the simulator and the live
// in-process fabric, and cross-checked at every observed data-plane
// state by the shared invariant walkers. Each seed also plants a
// bad-ordering canary (one dropped dependency edge) that local
// verification must reject.
func Synthesis(o Options) (*Result, error) {
	o = o.Defaulted()
	seeds := 25
	if o.Quick {
		seeds = 5
	}
	res := synthesis.Sweep(synthesis.SweepOptions{
		Seeds:     seeds,
		StartSeed: o.Seed,
		Backends:  []string{"sim", "inproc"},
		Canary:    true,
		Timeout:   30 * time.Second,
	})

	tbl := metrics.NewTable("update synthesis sweep (generate -> synthesize -> locally verify -> execute under BFT)",
		"backend", "plans executed", "updates applied", "invariant checks", "violations")
	for _, b := range res.Backends() {
		st := res.PerBackend[b]
		tbl.AddRow(b, st.Executed, st.Applied, st.Checks, st.Violations)
	}

	notes := []string{
		fmt.Sprintf("%d seeds (starting at %d): %d plans, %d updates, %d two-phase classes",
			res.Seeds, o.Seed, res.Plans, res.Updates, res.TwoPhase),
		fmt.Sprintf("bad-ordering canaries caught by local verification: %d/%d",
			res.CanaryCaught, res.CanaryTotal),
		fmt.Sprintf("rerun with: cicero-synth -seeds %d -seed %d", seeds, o.Seed),
	}
	switch {
	case len(res.Failures) > 0:
		notes = append(notes, fmt.Sprintf("%d FAILURES — first: %s", len(res.Failures), res.Failures[0]))
	case res.CanaryCaught != res.CanaryTotal:
		notes = append(notes, "CANARY MISSED: a dropped dependency edge passed local verification")
	default:
		notes = append(notes, "every plan verified, executed, and confirmed on both backends; every canary caught (expected)")
	}
	return &Result{Name: "synthesis", Tables: []*metrics.Table{tbl}, Notes: notes}, nil
}
