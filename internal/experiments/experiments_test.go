package experiments

import (
	"fmt"
	"strings"
	"testing"

	"cicero/internal/metrics"
)

// quick returns CI-speed options.
func quick() Options { return Options{Quick: true, Flows: 150, Seed: 7} }

// findTable locates a rendered table by title substring.
func findTable(t *testing.T, res *Result, substr string) *metrics.Table {
	t.Helper()
	for _, tbl := range res.Tables {
		if strings.Contains(tbl.Title, substr) {
			return tbl
		}
	}
	t.Fatalf("result %s has no table matching %q", res.Name, substr)
	return nil
}

// meanSetup extracts the mean fresh-route setup for a framework from the
// setup table (rendered values are strings; re-run via samples instead).
func TestFig11aShape(t *testing.T) {
	res, err := Fig11a(quick())
	if err != nil {
		t.Fatalf("Fig11a: %v", err)
	}
	findTable(t, res, "flow completion")
	setups := setupMeans(t, res)
	// The paper's ordering: centralized < crash < cicero < cicero-agg.
	if !(setups["centralized"] < setups["crash-tolerant"] &&
		setups["crash-tolerant"] < setups["cicero"] &&
		setups["cicero"] < setups["cicero-agg"]) {
		t.Fatalf("setup ordering violated: %v", setups)
	}
}

// setupMeans parses the fresh-route setup table back into numbers.
func setupMeans(t *testing.T, res *Result) map[string]float64 {
	t.Helper()
	tbl := findTable(t, res, "setup delay")
	var sb strings.Builder
	tbl.Render(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	out := make(map[string]float64)
	for _, line := range lines[3:] { // title, header, separator
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		var v float64
		if _, err := sscan(fields[1], &v); err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out
}

// sscan parses one float.
func sscan(s string, v *float64) (int, error) {
	var x float64
	n, err := fmtSscan(s, &x)
	*v = x
	return n, err
}

func TestFig11cUnamortizedOverhead(t *testing.T) {
	res, err := Fig11c(quick())
	if err != nil {
		t.Fatalf("Fig11c: %v", err)
	}
	setups := setupMeans(t, res)
	// Unamortized: every flow pays setup, so cicero must exceed
	// centralized by a visible factor (paper: 16%+ of a ~34ms flow; in
	// setup terms several ms).
	if setups["cicero"] <= setups["centralized"] {
		t.Fatalf("cicero setup %v not above centralized %v", setups["cicero"], setups["centralized"])
	}
}

func TestFig11dCPUOrdering(t *testing.T) {
	res, err := Fig11d(quick())
	if err != nil {
		t.Fatalf("Fig11d: %v", err)
	}
	tbl := findTable(t, res, "CPU utilization")
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	meanLine := lines[len(lines)-1]
	fields := strings.Fields(meanLine)
	if len(fields) != 5 || fields[0] != "mean" {
		t.Fatalf("unexpected mean row: %q", meanLine)
	}
	vals := make([]float64, 4)
	for i := 0; i < 4; i++ {
		if _, err := sscan(fields[i+1], &vals[i]); err != nil {
			t.Fatalf("parse %q: %v", fields[i+1], err)
		}
	}
	centralized, crash, cicero, ciceroAgg := vals[0], vals[1], vals[2], vals[3]
	if !(cicero > crash && crash >= centralized) {
		t.Fatalf("CPU ordering violated: centralized=%.2f crash=%.2f cicero=%.2f", centralized, crash, cicero)
	}
	// Controller aggregation must reduce switch CPU versus switch
	// aggregation (the paper reports roughly halving).
	if ciceroAgg >= cicero {
		t.Fatalf("controller aggregation did not reduce switch CPU: %.2f vs %.2f", ciceroAgg, cicero)
	}
}

func TestFig12aGrowsWithControlPlane(t *testing.T) {
	res, err := Fig12a(quick())
	if err != nil {
		t.Fatalf("Fig12a: %v", err)
	}
	tbl := findTable(t, res, "update time")
	var sb strings.Builder
	tbl.Render(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// Parse cicero column (4th) for sizes 4 and 10.
	var at4, at10 float64
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) != 5 {
			continue
		}
		switch fields[0] {
		case "4":
			at4 = parseMs(t, fields[3])
		case "10":
			at10 = parseMs(t, fields[3])
		}
	}
	if at4 == 0 || at10 == 0 {
		t.Fatalf("missing rows: %s", sb.String())
	}
	if at10 <= at4 {
		t.Fatalf("update time should grow with control plane size: n=4 %.2f, n=10 %.2f", at4, at10)
	}
}

// parseMs parses a "1.234ms" cell.
func parseMs(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "ms")
	var v float64
	if _, err := sscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig12bLocalityDecreases(t *testing.T) {
	res, err := Fig12b(quick())
	if err != nil {
		t.Fatalf("Fig12b: %v", err)
	}
	tbl := findTable(t, res, "events handled")
	var sb strings.Builder
	tbl.Render(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	var hadoop1, hadoop10, web10 float64
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) != 4 {
			continue
		}
		switch fields[0] {
		case "1":
			if _, err := sscan(fields[2], &hadoop1); err != nil {
				t.Fatal(err)
			}
		case "10":
			if _, err := sscan(fields[2], &hadoop10); err != nil {
				t.Fatal(err)
			}
			if _, err := sscan(fields[3], &web10); err != nil {
				t.Fatal(err)
			}
		}
	}
	if hadoop1 != 100 {
		t.Fatalf("single domain should handle 100%%, got %.1f", hadoop1)
	}
	if hadoop10 >= 30 {
		t.Fatalf("hadoop per-domain share at 10 domains = %.1f%%, expected sharp drop", hadoop10)
	}
	// Web's higher multi-domain fraction keeps its share above hadoop's.
	if web10 <= hadoop10 {
		t.Fatalf("web share (%.1f) should exceed hadoop share (%.1f)", web10, hadoop10)
	}
}

func TestFig12cMultiDomainWins(t *testing.T) {
	res, err := Fig12c(quick())
	if err != nil {
		t.Fatalf("Fig12c: %v", err)
	}
	tbl := findTable(t, res, "single vs multi-domain")
	var sb strings.Builder
	tbl.Render(&sb)
	// Mean row: multi-domain cicero should beat the 12-member single
	// domain.
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	meanLine := lines[len(lines)-1]
	fields := strings.Fields(meanLine)
	// columns: label, cicero-1dom, cicero-agg-1dom, cicero-MD, cicero-agg-MD
	if len(fields) < 5 {
		t.Fatalf("unexpected mean row %q", meanLine)
	}
	var single, multi float64
	if _, err := sscan(fields[len(fields)-4], &single); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(fields[len(fields)-2], &multi); err != nil {
		t.Fatal(err)
	}
	if multi >= single {
		t.Fatalf("multi-domain mean %.3f not below single-domain %.3f", multi, single)
	}
}

func TestFig12dCiceroBeatsCentralizedAcrossDCs(t *testing.T) {
	res, err := Fig12d(quick())
	if err != nil {
		t.Fatalf("Fig12d: %v", err)
	}
	tbl := findTable(t, res, "data centers")
	var sb strings.Builder
	tbl.Render(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	meanLine := lines[len(lines)-1]
	fields := strings.Fields(meanLine)
	if len(fields) != 4 {
		t.Fatalf("unexpected mean row %q", meanLine)
	}
	var centralized, ciceroMD float64
	if _, err := sscan(fields[1], &centralized); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(fields[2], &ciceroMD); err != nil {
		t.Fatal(err)
	}
	if ciceroMD >= centralized {
		t.Fatalf("cicero MD mean %.3f should beat centralized %.3f in multi-DC", ciceroMD, centralized)
	}
}

func TestTable1SchedulerEliminatesWindows(t *testing.T) {
	res, err := Table1(quick())
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	if strings.Contains(out, "UNEXPECTED") {
		t.Fatalf("reverse-path scheduler produced violations:\n%s", out)
	}
	// The immediate scheduler must show at least one violation.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "immediate") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[3] == "0" {
				t.Fatalf("negative control shows zero violations:\n%s", out)
			}
		}
	}
}

func TestAblationsOrdering(t *testing.T) {
	res, err := Ablations(quick())
	if err != nil {
		t.Fatalf("Ablations: %v", err)
	}
	tbl := findTable(t, res, "ablations")
	var sb strings.Builder
	tbl.Render(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	update := make(map[string]float64)
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		for _, key := range []string{"cicero", "-", "+"} {
			if strings.HasPrefix(fields[0], key) {
				// The update-time cell is the first one ending in "ms".
				for _, f := range fields[1:] {
					if strings.HasSuffix(f, "ms") {
						update[line[:20]] = parseMs(t, f)
						break
					}
				}
				break
			}
		}
	}
	var baseline, central float64
	for k, v := range update {
		if strings.HasPrefix(k, "cicero (baseline") {
			baseline = v
		}
		if strings.HasPrefix(k, "- replication") {
			central = v
		}
	}
	if baseline == 0 || central == 0 {
		t.Fatalf("missing rows: %v", update)
	}
	if baseline <= central {
		t.Fatalf("baseline cicero (%v) should cost more than centralized (%v)", baseline, central)
	}
}

func TestTable2Renders(t *testing.T) {
	res, err := Table2(Options{})
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Cicero (this repo)", "MORPH", "RoSCo", "Dionysus"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing row %q", want)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	var sb strings.Builder
	if err := Run("table2", Options{}, &sb); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !strings.Contains(sb.String(), "table2") {
		t.Error("Run produced no output")
	}
	if err := Run("nope", Options{}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(Names()) != 15 {
		t.Errorf("Names() = %v, want 15 experiments", Names())
	}
}

// fmtSscan wraps fmt.Sscan to keep the parsing helper tiny.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
