// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): flow-completion CDFs for the Hadoop and web-server
// workloads under four frameworks (Fig. 11a-c), switch CPU utilization
// (Fig. 11d), update time versus control-plane size (Fig. 12a), event
// locality across domains (Fig. 12b), single- versus multi-domain flow
// completion (Fig. 12c), the multi-data-center deployment (Fig. 12d), the
// consistency scenarios of Table 1, and the feature matrix of Table 2.
//
// Absolute times come from the calibrated cost model
// (internal/protocol.Calibrated); the claims under reproduction are the
// relative shapes — who wins, by what factor, where crossovers fall.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/core"
	"cicero/internal/metrics"
	"cicero/internal/protocol"
	"cicero/internal/workload"
)

// Options tunes experiment scale.
type Options struct {
	// Flows per run (paper: 5000).
	Flows int
	// Seed drives all randomness.
	Seed int64
	// Quick shrinks topologies and flow counts for CI-speed runs.
	Quick bool
	// CryptoReal executes real signatures (slow; default is simulated
	// time from the cost model with identical protocol structure).
	CryptoReal bool
}

// Defaulted applies defaults.
func (o Options) Defaulted() Options {
	if o.Flows == 0 {
		if o.Quick {
			o.Flows = 400
		} else {
			o.Flows = 5000
		}
	}
	if o.Seed == 0 {
		o.Seed = 2020
	}
	return o
}

// Result is an experiment's rendered output.
type Result struct {
	Name   string
	Tables []*metrics.Table
	Notes  []string
}

// Render writes the result to w.
func (r *Result) Render(w io.Writer) {
	for _, tbl := range r.Tables {
		tbl.Render(w)
		fmt.Fprintln(w)
	}
	for _, note := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", note)
	}
}

// Runner regenerates one paper artifact.
type Runner func(Options) (*Result, error)

// Registry maps experiment ids to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig11a":    Fig11a,
		"fig11b":    Fig11b,
		"fig11c":    Fig11c,
		"fig11d":    Fig11d,
		"fig12a":    Fig12a,
		"fig12b":    Fig12b,
		"fig12c":    Fig12c,
		"fig12d":    Fig12d,
		"table1":    Table1,
		"table2":    Table2,
		"ablations": Ablations,
		"chaos":     ChaosCampaign,
		"synthesis": Synthesis,
		"distrib":   Distrib,
		"tuf":       Tuf,
	}
}

// Names returns the registered experiment ids in order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Run executes one experiment by id and renders it to w.
func Run(name string, opt Options, w io.Writer) error {
	runner, ok := Registry()[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	res, err := runner(opt)
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", name, err)
	}
	res.Render(w)
	return nil
}

// framework is one compared system configuration.
type framework struct {
	name  string
	proto controlplane.Protocol
	agg   controlplane.Aggregation
	ctls  int
}

// paperFrameworks returns the §6.2 comparison set with n controllers for
// the replicated frameworks.
func paperFrameworks(n int) []framework {
	return []framework{
		{"centralized", controlplane.ProtoCentralized, 0, 1},
		{"crash-tolerant", controlplane.ProtoCrash, 0, n},
		{"cicero", controlplane.ProtoCicero, controlplane.AggSwitch, n},
		{"cicero-agg", controlplane.ProtoCicero, controlplane.AggController, n},
	}
}

// cdfTable renders per-framework completion CDFs side by side at the
// paper's probability levels.
func cdfTable(title string, series map[string]*metrics.Samples, order []string) *metrics.Table {
	headers := []string{"CDF"}
	headers = append(headers, order...)
	tbl := metrics.NewTable(title, headers...)
	levels := []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00}
	for _, p := range levels {
		row := make([]any, 0, len(order)+1)
		row = append(row, fmt.Sprintf("p%02.0f(ms)", p*100))
		for _, name := range order {
			row = append(row, series[name].Percentile(p))
		}
		tbl.AddRow(row...)
	}
	meanRow := make([]any, 0, len(order)+1)
	meanRow = append(meanRow, "mean(ms)")
	for _, name := range order {
		meanRow = append(meanRow, series[name].Mean())
	}
	tbl.AddRow(meanRow...)
	return tbl
}

// runWorkloadCompletion runs one framework over a workload on a graph
// builder and returns the completion-time samples (ms) plus per-flow
// setup samples.
func runWorkloadCompletion(
	cfg core.Config,
	flows []workload.Flow,
	opts core.RunOptions,
) (*metrics.Samples, *metrics.Samples, *core.Network, error) {
	n, err := core.Build(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	results, err := n.RunFlows(flows, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	var completion, setup metrics.Samples
	for _, r := range results {
		completion.AddDuration(r.Completion)
		setup.AddDuration(r.SetupDelay)
	}
	return &completion, &setup, n, nil
}

// meanInterarrival is the Poisson gap used by the flow-completion runs:
// the paper's 5000 flows span a ~30 s workload window.
func meanInterarrival(opt Options) time.Duration {
	if opt.Quick {
		return 2 * time.Millisecond
	}
	return 6 * time.Millisecond
}

// note formats a standard paper-expectation annotation.
func note(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// charge helper for reading protocol cost defaults in notes.
var calibrated = protocol.Calibrated()
