package experiments

// Live runtime benchmarks: the fig-11-style update workloads executed on
// the wall-clock backends (internal/livenet) instead of the simulator,
// with real threshold crypto end to end. Every live run is cross-checked
// against a simnet reference run of the identical flow sequence:
//
//   - installed flow tables must match exactly (canonical sorted-rule
//     digest — rule insertion order varies across backends, content must
//     not);
//   - the single-flow (sequential, quiesced) leg must reproduce the
//     simulator's audit ledgers byte for byte, in order (ChainDigest);
//   - the multi-flow (concurrent) leg must reproduce the same audit
//     content in some order (ContentDigest — the atomic broadcast's total
//     order is backend-dependent under concurrency, its content is not).
//
// The canonical digests depend only on protocol decisions, never on
// signatures, so the reference leg runs with simulated crypto while the
// live legs pay for the real thing.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"cicero/internal/audit"
	"cicero/internal/core"
	"cicero/internal/fabric"
	"cicero/internal/livenet"
	"cicero/internal/metrics"
	"cicero/internal/protocol"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

// LiveOptions tunes a live benchmark run.
type LiveOptions struct {
	// Backend selects "inproc" or "tcp".
	Backend string
	// SingleFlows is the number of sequential, individually-timed updates
	// (0 defaults by Quick).
	SingleFlows int
	// MultiFlows is the number of concurrently-launched updates (0
	// defaults by Quick).
	MultiFlows int
	// Quick shrinks the topology and flow counts for CI-speed runs.
	Quick bool
	// Seed drives pair selection and the simnet reference run.
	Seed int64
	// Timeout bounds each leg's completion wait (0: 60s).
	Timeout time.Duration
	// BatchSize > 1 enables batched ordering and batch-amortized signing
	// (one threshold signature per batch Merkle root) on both the live
	// legs and the simnet reference. <= 1 is the per-update baseline.
	BatchSize int
	// BatchDelay bounds how long a partial batch waits before ordering.
	BatchDelay time.Duration
}

// Defaulted applies defaults.
func (o LiveOptions) Defaulted() LiveOptions {
	if o.Backend == "" {
		o.Backend = "inproc"
	}
	if o.SingleFlows == 0 {
		if o.Quick {
			o.SingleFlows = 6
		} else {
			o.SingleFlows = 25
		}
	}
	if o.MultiFlows == 0 {
		if o.Quick {
			o.MultiFlows = 8
		} else {
			o.MultiFlows = 40
		}
	}
	if o.Seed == 0 {
		o.Seed = 2020
	}
	if o.Timeout == 0 {
		o.Timeout = 60 * time.Second
	}
	return o
}

// LiveLatency summarizes wall-clock update latencies of one leg.
type LiveLatency struct {
	Updates int     `json:"updates"`
	MeanMs  float64 `json:"mean_ms"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MaxMs   float64 `json:"max_ms"`
	// WallMs is the leg's total wall time; UpdatesPerSec derives from it.
	WallMs        float64 `json:"wall_ms"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
}

// LiveWire summarizes one leg's fabric traffic.
type LiveWire struct {
	Sent      uint64 `json:"sent"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	Bytes     uint64 `json:"bytes"`
}

// LiveCrypto reports the cryptographic cost of one leg, normalized per
// applied update. Pairings are the expensive operation batching amortizes
// (full, prepared, and product-of-pairings evaluations all count as one);
// signature bytes meter the shares and aggregates actually produced.
type LiveCrypto struct {
	Updates           uint64  `json:"updates"`
	Pairings          uint64  `json:"pairings"`
	PairingsPerUpdate float64 `json:"pairings_per_update"`
	SignatureBytes    uint64  `json:"signature_bytes"`
	SigBytesPerUpdate float64 `json:"sig_bytes_per_update"`
}

// cryptoMark snapshots the process-wide crypto counters so a leg's delta
// can be attributed (legs run sequentially).
type cryptoMark struct {
	pairings uint64
	sigBytes uint64
}

func markCrypto() cryptoMark {
	s := metrics.Crypto.Snapshot()
	return cryptoMark{
		pairings: s["pairings"] + s["prepared_pairings"] + s["pairing_products"],
		sigBytes: s["signature_bytes"],
	}
}

// cryptoSince builds the per-update crypto report from a mark.
func cryptoSince(mark cryptoMark, updates uint64) LiveCrypto {
	cur := markCrypto()
	out := LiveCrypto{
		Updates:        updates,
		Pairings:       cur.pairings - mark.pairings,
		SignatureBytes: cur.sigBytes - mark.sigBytes,
	}
	if updates > 0 {
		out.PairingsPerUpdate = float64(out.Pairings) / float64(updates)
		out.SigBytesPerUpdate = float64(out.SignatureBytes) / float64(updates)
	}
	return out
}

// appliedUpdates sums switch apply counters (via the fabric's serial
// context on live backends).
func appliedUpdates(n *core.Network, live bool, timeout time.Duration) (uint64, error) {
	var total uint64
	for id, sw := range n.Switches {
		sw := sw
		read := func() { total += sw.UpdatesApplied }
		if live {
			if err := invokeWait(n.Fab, fabric.NodeID(id), read, timeout); err != nil {
				return 0, err
			}
		} else {
			read()
		}
	}
	return total, nil
}

// LiveCrossCheck records the backend-vs-simnet identity checks.
type LiveCrossCheck struct {
	TableDigest        string `json:"table_digest"`
	TableMatch         bool   `json:"table_match"`
	AuditChainMatch    bool   `json:"audit_chain_match"`
	AuditContentDigest string `json:"audit_content_digest"`
	AuditContentMatch  bool   `json:"audit_content_match"`
}

// LiveBackendReport is one backend's full result. The resilience maps
// carry the transport's retry/reconnect/breaker counters per leg under the
// canonical metrics.Counter* names (zero across the board on a healthy
// localhost run — nonzero values flag transport distress behind otherwise
// clean latencies).
type LiveBackendReport struct {
	Backend          string            `json:"backend"`
	SingleFlow       LiveLatency       `json:"single_flow"`
	MultiFlow        LiveLatency       `json:"multi_flow"`
	SingleWire       LiveWire          `json:"single_wire"`
	MultiWire        LiveWire          `json:"multi_wire"`
	SingleCheck      LiveCrossCheck    `json:"single_check"`
	MultiCheck       LiveCrossCheck    `json:"multi_check"`
	SingleCrypto     LiveCrypto        `json:"single_crypto"`
	MultiCrypto      LiveCrypto        `json:"multi_crypto"`
	SingleResilience map[string]uint64 `json:"single_resilience"`
	MultiResilience  map[string]uint64 `json:"multi_resilience"`
}

// resilienceCounters folds a live backend's ResilienceStats into the
// canonical counter names shared with the chaos campaigns.
func resilienceCounters(fab fabric.Fabric) map[string]uint64 {
	r, ok := fab.(interface {
		Resilience() livenet.ResilienceStats
	})
	if !ok {
		return nil
	}
	st := r.Resilience()
	return map[string]uint64{
		metrics.CounterRetry:       st.Retries,
		metrics.CounterReconnect:   st.Reconnects,
		metrics.CounterBreakerTrip: st.BreakerTrips,
		metrics.CounterCrash:       st.Crashes,
		metrics.CounterRestart:     st.Restarts,
	}
}

// LiveReport is the BENCH_live.json document.
type LiveReport struct {
	Quick       bool                `json:"quick"`
	Seed        int64               `json:"seed"`
	SingleFlows int                 `json:"single_flows"`
	MultiFlows  int                 `json:"multi_flows"`
	BatchSize   int                 `json:"batch_size"`
	Backends    []LiveBackendReport `json:"backends"`
}

// JSON renders the report.
func (r *LiveReport) JSON() []byte {
	b, _ := json.MarshalIndent(r, "", "  ")
	return append(b, '\n')
}

// Passed reports whether every cross-check on every backend held.
func (r *LiveReport) Passed() bool {
	for _, b := range r.Backends {
		for _, c := range []LiveCrossCheck{b.SingleCheck, b.MultiCheck} {
			if !c.TableMatch || !c.AuditContentMatch {
				return false
			}
		}
		if !b.SingleCheck.AuditChainMatch {
			return false
		}
	}
	return true
}

// liveTopology is the benchmark data plane: a single pod, shrunk under
// Quick.
func liveTopology(opt LiveOptions) (*topology.Graph, error) {
	cfg := topology.DefaultFabricConfig()
	cfg.HostsPerRack = 2
	if opt.Quick {
		cfg.RacksPerPod = 4
	} else {
		cfg.RacksPerPod = 8
	}
	return topology.BuildSinglePod(cfg)
}

// livePairs picks n deterministic host pairs whose paths cross at least
// one switch. With PairRules every pair triggers its own network update.
func livePairs(g *topology.Graph, n int) ([][2]string, error) {
	var hosts []string
	for _, node := range g.NodesOfKind(topology.KindHost) {
		hosts = append(hosts, node.ID)
	}
	sort.Strings(hosts)
	var pairs [][2]string
	for stride := 1; stride < len(hosts) && len(pairs) < n; stride++ {
		for i := 0; i < len(hosts) && len(pairs) < n; i++ {
			src, dst := hosts[i], hosts[(i+stride)%len(hosts)]
			path := g.ShortestPath(src, dst)
			if path == nil || len(g.SwitchesOnPath(path)) == 0 {
				continue
			}
			pairs = append(pairs, [2]string{src, dst})
		}
	}
	if len(pairs) < n {
		return nil, fmt.Errorf("live: topology yields only %d usable pairs, need %d", len(pairs), n)
	}
	return pairs, nil
}

// liveConfig is the deployment shared by the live legs and the simnet
// reference: Cicero with switch aggregation and per-pair rules. The live
// legs run real crypto on the given fabric; the reference runs simulated
// crypto on the simulator (the canonical digests are crypto-independent).
func liveConfig(g *topology.Graph, fab fabric.Fabric, opt LiveOptions) core.Config {
	return core.Config{
		Graph:      g,
		PairRules:  true,
		Cost:       calibrated,
		Seed:       opt.Seed,
		Fabric:     fab,
		CryptoReal: fab != nil,
		BatchSize:  opt.BatchSize,
		BatchDelay: opt.BatchDelay,
		// Live runs share wall-clock cores with the whole harness (and
		// the race detector in CI); a sub-second view-change timeout
		// would misread scheduling hiccups as a failed primary.
		ViewChangeTimeout: 5 * time.Second,
	}
}

// invokeWait runs fn in the node's serial context and waits for it.
func invokeWait(fab fabric.Fabric, id fabric.NodeID, fn func(), timeout time.Duration) error {
	done := make(chan struct{})
	fab.Invoke(id, func() {
		fn()
		close(done)
	})
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("live: node %s did not run invoke within %v", id, timeout)
	}
}

// digestHex renders a digest for the report.
func digestHex(d [32]byte) string { return hex.EncodeToString(d[:]) }

// digestOfLines sorts and hashes canonical lines (insertion order varies
// across backends; content must not).
func digestOfLines(lines []string) [32]byte {
	sort.Strings(lines)
	h := sha256.New()
	for _, line := range lines {
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// networkTableDigest reads every switch's flow table (via the fabric's
// serial context on live backends) and returns the canonical digest.
func networkTableDigest(n *core.Network, live bool, timeout time.Duration) ([32]byte, error) {
	var lines []string
	ids := make([]string, 0, len(n.Switches))
	for id := range n.Switches {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sw := n.Switches[id]
		read := func() {
			for _, r := range sw.Table().Rules() {
				lines = append(lines, fmt.Sprintf("%s|%d|%s|%s|%d",
					id, r.Priority, r.Match, r.Action, r.Cookie))
			}
		}
		if live {
			if err := invokeWait(n.Fab, fabric.NodeID(id), read, timeout); err != nil {
				return [32]byte{}, err
			}
		} else {
			read()
		}
	}
	return digestOfLines(lines), nil
}

// reference captures the simnet run's canonical results.
type reference struct {
	tableDigest [32]byte
	// chain and content are the per-controller audit digests, keyed by
	// controller identity (all controllers of a correct run agree, but
	// the comparison stays per-controller to catch divergence).
	chain   map[string][32]byte
	content map[string][32]byte
}

// controllerDigests reads every controller's ledger digests.
func controllerDigests(n *core.Network, live bool, timeout time.Duration) (chain, content map[string][32]byte, err error) {
	chain = make(map[string][32]byte)
	content = make(map[string][32]byte)
	for _, d := range n.Domains {
		for _, ctl := range d.Controllers {
			ctl := ctl
			id := string(ctl.ID())
			read := func() {
				records := ctl.AuditRecords()
				chain[id] = audit.ChainDigest(records)
				content[id] = audit.ContentDigest(records)
			}
			if live {
				if err := invokeWait(n.Fab, fabric.NodeID(id), read, timeout); err != nil {
					return nil, nil, err
				}
			} else {
				read()
			}
		}
	}
	return chain, content, nil
}

// runReference executes the flow sequence on the simulator and captures
// the canonical digests the live legs must reproduce.
func runReference(g *topology.Graph, pairs [][2]string, opt LiveOptions) (*reference, error) {
	n, err := core.Build(liveConfig(g, nil, opt))
	if err != nil {
		return nil, err
	}
	flows := make([]workload.Flow, len(pairs))
	for i, p := range pairs {
		flows[i] = workload.Flow{
			ID:  uint64(i + 1),
			Src: p[0], Dst: p[1],
			SizeKB: 64,
			// Wide spacing makes the reference sequential and quiesced
			// between flows, matching the live single-flow leg's order.
			Start: time.Duration(i) * 100 * time.Millisecond,
		}
	}
	if _, err := n.RunFlows(flows, core.RunOptions{}); err != nil {
		return nil, err
	}
	ref := &reference{}
	if ref.tableDigest, err = networkTableDigest(n, false, opt.Timeout); err != nil {
		return nil, err
	}
	if ref.chain, ref.content, err = controllerDigests(n, false, opt.Timeout); err != nil {
		return nil, err
	}
	return ref, nil
}

// newLiveFabric constructs the selected backend. The returned close
// function tears it down.
func newLiveFabric(backend string) (fabric.Fabric, func(), error) {
	codec := protocol.NewWireCodec(nil)
	switch backend {
	case "inproc":
		f := livenet.NewInProc(codec)
		return f, f.Close, nil
	case "tcp":
		f, err := livenet.NewTCP(codec)
		if err != nil {
			return nil, nil, err
		}
		return f, f.Close, nil
	default:
		return nil, nil, fmt.Errorf("live: unknown backend %q (have inproc, tcp)", backend)
	}
}

// driveFlow injects one table-miss update and returns a channel that
// fires when the ingress rule is installed (reverse-path scheduling makes
// ingress-readiness imply path-readiness).
func driveFlow(n *core.Network, pair [2]string) (<-chan struct{}, error) {
	path := n.Graph.ShortestPath(pair[0], pair[1])
	switches := n.Graph.SwitchesOnPath(path)
	if len(switches) == 0 {
		return nil, fmt.Errorf("live: pair %v crosses no switches", pair)
	}
	ingress := n.Switches[switches[0]]
	done := make(chan struct{})
	n.Fab.Invoke(fabric.NodeID(ingress.ID()), func() {
		if _, ok := ingress.Lookup(pair[0], pair[1]); ok {
			close(done)
			return
		}
		ingress.Subscribe(pair[0], pair[1], func(fabric.Time) { close(done) })
		ingress.PacketArrival(pair[0], pair[1])
	})
	return done, nil
}

// awaitQuiescence polls controller ledger lengths until they are stable
// across consecutive polls — trailing BFT deliveries and share traffic on
// the slower replicas drain before digests are read.
func awaitQuiescence(n *core.Network, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var prev []int
	stable := 0
	for time.Now().Before(deadline) {
		var cur []int
		for _, d := range n.Domains {
			for _, ctl := range d.Controllers {
				ctl := ctl
				var ln int
				if err := invokeWait(n.Fab, fabric.NodeID(ctl.ID()), func() {
					ln = len(ctl.AuditRecords())
				}, timeout); err != nil {
					return err
				}
				cur = append(cur, ln)
			}
		}
		same := prev != nil && len(cur) == len(prev)
		if same {
			for i := range cur {
				if cur[i] != prev[i] {
					same = false
					break
				}
			}
		}
		allEqual := true
		for _, ln := range cur {
			if ln != cur[0] {
				allEqual = false
				break
			}
		}
		if same && allEqual {
			stable++
			if stable >= 2 {
				return nil
			}
		} else {
			stable = 0
		}
		prev = cur
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("live: controllers did not quiesce within %v", timeout)
}

// summarize converts raw latency samples into the report block.
func summarize(samples *metrics.Samples, wall time.Duration) LiveLatency {
	out := LiveLatency{
		Updates: samples.Len(),
		MeanMs:  samples.Mean(),
		P50Ms:   samples.Percentile(0.50),
		P95Ms:   samples.Percentile(0.95),
		P99Ms:   samples.Percentile(0.99),
		MaxMs:   samples.Max(),
		WallMs:  float64(wall) / float64(time.Millisecond),
	}
	if wall > 0 {
		out.UpdatesPerSec = float64(samples.Len()) / wall.Seconds()
	}
	return out
}

// wireOf snapshots fabric traffic for the report.
func wireOf(st fabric.Stats) LiveWire {
	return LiveWire{Sent: st.Sent, Delivered: st.Delivered, Dropped: st.Dropped, Bytes: st.Bytes}
}

// crossCheck compares a finished live leg against the reference.
// checkChain is true only for the sequential leg — concurrent legs only
// guarantee content.
func crossCheck(n *core.Network, ref *reference, checkChain bool, timeout time.Duration) (LiveCrossCheck, error) {
	var out LiveCrossCheck
	tbl, err := networkTableDigest(n, true, timeout)
	if err != nil {
		return out, err
	}
	out.TableDigest = digestHex(tbl)
	out.TableMatch = tbl == ref.tableDigest
	chain, content, err := controllerDigests(n, true, timeout)
	if err != nil {
		return out, err
	}
	out.AuditChainMatch = true
	out.AuditContentMatch = true
	for id, d := range content {
		out.AuditContentDigest = digestHex(d)
		if d != ref.content[id] {
			out.AuditContentMatch = false
		}
	}
	for id, d := range chain {
		if d != ref.chain[id] {
			out.AuditChainMatch = false
		}
	}
	if !checkChain {
		// Concurrent leg: chain order is backend-dependent by design;
		// report it but never fail on it.
		out.AuditChainMatch = true
	}
	return out, nil
}

// legResult bundles one live leg's measurements.
type legResult struct {
	lat        LiveLatency
	wire       LiveWire
	check      LiveCrossCheck
	crypto     LiveCrypto
	resilience map[string]uint64
}

// runLiveLeg builds a fresh deployment on the backend, drives the pairs
// (sequentially or concurrently), quiesces, and cross-checks.
func runLiveLeg(opt LiveOptions, g *topology.Graph, pairs [][2]string, ref *reference, concurrent bool) (legResult, error) {
	var res legResult
	fab, closeFab, err := newLiveFabric(opt.Backend)
	if err != nil {
		return res, err
	}
	defer closeFab()
	n, err := core.Build(liveConfig(g, fab, opt))
	if err != nil {
		return res, err
	}
	// Mark after Build: DKG and key provisioning must not count against
	// the steady-state per-update cost.
	mark := markCrypto()
	samples := &metrics.Samples{}
	wallStart := time.Now()
	if concurrent {
		// Inject every flow first (injection order is deterministic per
		// ingress switch, keeping event ids canonical), then wait for all.
		starts := make([]time.Time, len(pairs))
		dones := make([]<-chan struct{}, len(pairs))
		for i, p := range pairs {
			starts[i] = time.Now()
			if dones[i], err = driveFlow(n, p); err != nil {
				return res, err
			}
		}
		for i, done := range dones {
			select {
			case <-done:
				samples.Add(float64(time.Since(starts[i])) / float64(time.Millisecond))
			case <-time.After(opt.Timeout):
				return res, fmt.Errorf("live: %s flow %v timed out", opt.Backend, pairs[i])
			}
		}
	} else {
		for _, p := range pairs {
			start := time.Now()
			done, err := driveFlow(n, p)
			if err != nil {
				return res, err
			}
			select {
			case <-done:
				samples.Add(float64(time.Since(start)) / float64(time.Millisecond))
			case <-time.After(opt.Timeout):
				return res, fmt.Errorf("live: %s flow %v timed out", opt.Backend, p)
			}
			// The sequential leg quiesces between flows so the audit
			// chains record the simulator's canonical order.
			if err := awaitQuiescence(n, opt.Timeout); err != nil {
				return res, err
			}
		}
	}
	wall := time.Since(wallStart)
	if err := awaitQuiescence(n, opt.Timeout); err != nil {
		return res, err
	}
	if res.check, err = crossCheck(n, ref, !concurrent, opt.Timeout); err != nil {
		return res, err
	}
	updates, err := appliedUpdates(n, true, opt.Timeout)
	if err != nil {
		return res, err
	}
	res.crypto = cryptoSince(mark, updates)
	res.lat = summarize(samples, wall)
	res.wire = wireOf(fab.Stats())
	res.resilience = resilienceCounters(fab)
	return res, nil
}

// RunLive executes the full live benchmark for one backend: the simnet
// reference, the sequential single-flow leg, and the concurrent
// multi-flow leg.
func RunLive(opt LiveOptions) (*LiveBackendReport, error) {
	opt = opt.Defaulted()
	g, err := liveTopology(opt)
	if err != nil {
		return nil, err
	}
	nPairs := opt.SingleFlows
	if opt.MultiFlows > nPairs {
		nPairs = opt.MultiFlows
	}
	pairs, err := livePairs(g, nPairs)
	if err != nil {
		return nil, err
	}
	singlePairs := pairs[:opt.SingleFlows]
	multiPairs := pairs[:opt.MultiFlows]

	singleRef, err := runReference(g, singlePairs, opt)
	if err != nil {
		return nil, fmt.Errorf("live: simnet reference (single): %w", err)
	}
	multiRef, err := runReference(g, multiPairs, opt)
	if err != nil {
		return nil, fmt.Errorf("live: simnet reference (multi): %w", err)
	}

	report := &LiveBackendReport{Backend: opt.Backend}
	single, err := runLiveLeg(opt, g, singlePairs, singleRef, false)
	if err != nil {
		return nil, err
	}
	report.SingleFlow, report.SingleWire, report.SingleCheck = single.lat, single.wire, single.check
	report.SingleCrypto, report.SingleResilience = single.crypto, single.resilience
	multi, err := runLiveLeg(opt, g, multiPairs, multiRef, true)
	if err != nil {
		return nil, err
	}
	report.MultiFlow, report.MultiWire, report.MultiCheck = multi.lat, multi.wire, multi.check
	report.MultiCrypto, report.MultiResilience = multi.crypto, multi.resilience
	return report, nil
}

// RunLiveAll runs the benchmark on the requested backends ("all" expands
// to both) and assembles the BENCH_live.json report.
func RunLiveAll(opt LiveOptions, backends []string) (*LiveReport, error) {
	opt = opt.Defaulted()
	report := &LiveReport{
		Quick:       opt.Quick,
		Seed:        opt.Seed,
		SingleFlows: opt.SingleFlows,
		MultiFlows:  opt.MultiFlows,
		BatchSize:   opt.BatchSize,
	}
	for _, backend := range backends {
		o := opt
		o.Backend = backend
		b, err := RunLive(o)
		if err != nil {
			return nil, fmt.Errorf("live: backend %s: %w", backend, err)
		}
		report.Backends = append(report.Backends, *b)
	}
	return report, nil
}
