package experiments

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"cicero/internal/distrib"
	"cicero/internal/metrics"
)

// Distrib runs the multi-process chaos campaigns: one OS process per
// controller and switch (cmd/cicero-node), a fault-free smoke pass and a
// kill -9 pass (SIGKILL a controller and a switch mid-update plus a
// socket-level partition), each gated on the full cross-process
// convergence plane — walk invariants, ledger prefix + content-digest
// agreement, no-forged-rule, the fault-free simnet reference digest, and
// a causally ordered merge of every per-process trace.
func Distrib(o Options) (*Result, error) {
	o = o.Defaulted()
	dir, err := os.MkdirTemp("", "cicero-distrib")
	if err != nil {
		return nil, fmt.Errorf("experiments: distrib workdir: %w", err)
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "cicero-node")
	if out, err := exec.Command("go", "build", "-o", bin, "cicero/cmd/cicero-node").CombinedOutput(); err != nil {
		// No toolchain or no subprocess spawning: report instead of failing
		// the whole experiment sweep.
		return &Result{Name: "distrib", Notes: []string{
			fmt.Sprintf("SKIPPED: cannot build cicero-node (%v: %s)", err, out),
			"run from a checkout with the go toolchain on PATH",
		}}, nil
	}

	runs := []struct {
		name string
		opt  distrib.CampaignOptions
	}{
		{"smoke (no faults)", distrib.CampaignOptions{
			Bin: bin, Flows: 6, Seed: o.Seed, Timeout: 3 * time.Minute,
		}},
		{"kill -9 + partition", distrib.CampaignOptions{
			Bin: bin, Flows: 6, Seed: o.Seed + 1,
			KillController: true, KillSwitch: true, Partition: true,
			Timeout: 4 * time.Minute,
		}},
	}

	tbl := metrics.NewTable("multi-process chaos campaigns (one OS process per controller and switch)",
		"campaign", "flows", "recovered", "ref tables", "ledger agreement", "trace events", "violations")
	notes := []string{
		"faults are real: SIGKILL on live processes, partitions severed at the socket proxies",
		"traces from every process merge into one Lamport-ordered timeline (cmd/cicero-trace)",
	}
	failures := 0
	for _, r := range runs {
		r.opt.Dir = filepath.Join(dir, "campaign-"+fmt.Sprintf("%d", len(notes)))
		if err := os.MkdirAll(r.opt.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("experiments: distrib campaign dir: %w", err)
		}
		res, err := distrib.RunCampaign(r.opt)
		if err != nil {
			return nil, fmt.Errorf("experiments: distrib %s: %w", r.name, err)
		}
		tbl.AddRow(r.name,
			fmt.Sprintf("%d/%d", res.FlowsDone, res.FlowsTotal),
			res.Recovered, res.TableMatch, res.DigestAgreement,
			res.TraceEvents, len(res.Violations))
		if len(res.Violations) > 0 {
			failures++
			notes = append(notes, fmt.Sprintf("%s FAILED — first violation: %s", r.name, res.Violations[0]))
		}
		if res.ProcsLeaked > 0 {
			failures++
			notes = append(notes, fmt.Sprintf("%s leaked %d node processes", r.name, res.ProcsLeaked))
		}
	}
	if failures == 0 {
		notes = append(notes, "both campaigns clean: convergence, digest agreement, causal traces (expected)")
	}
	return &Result{Name: "distrib", Tables: []*metrics.Table{tbl}, Notes: notes}, nil
}
