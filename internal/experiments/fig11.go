package experiments

import (
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/core"
	"cicero/internal/metrics"
	"cicero/internal/simnet"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

// podConfig builds the §6.2 single-pod topology.
func podConfig(opt Options) topology.FabricConfig {
	cfg := topology.DefaultFabricConfig()
	cfg.HostsPerRack = 2
	if opt.Quick {
		cfg.RacksPerPod = 8
	}
	return cfg
}

// singlePodCDF runs the four frameworks on the single-pod topology with
// the given traffic mix and run options.
func singlePodCDF(title string, mix workload.Mix, runOpts core.RunOptions, pairRules bool, opt Options) (*Result, error) {
	opt = opt.Defaulted()
	g, err := topology.BuildSinglePod(podConfig(opt))
	if err != nil {
		return nil, err
	}
	flows, err := workload.Generate(g, workload.Config{
		Mix:              mix,
		Flows:            opt.Flows,
		MeanInterarrival: meanInterarrival(opt),
		Seed:             opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	series := make(map[string]*metrics.Samples)
	setups := make(map[string]*metrics.Samples)
	var order []string
	for _, fw := range paperFrameworks(4) {
		completion, setup, _, err := runWorkloadCompletion(core.Config{
			Graph:                g,
			Protocol:             fw.proto,
			Aggregation:          fw.agg,
			ControllersPerDomain: fw.ctls,
			PairRules:            pairRules,
			Cost:                 calibrated,
			CryptoReal:           opt.CryptoReal,
			Seed:                 opt.Seed,
		}, flows, runOpts)
		if err != nil {
			return nil, err
		}
		series[fw.name] = completion
		setups[fw.name] = setup
		order = append(order, fw.name)
	}
	res := &Result{Name: title}
	res.Tables = append(res.Tables, cdfTable(title+": flow completion time", series, order))

	setupTbl := metrics.NewTable(title+": fresh-route setup delay", "framework", "mean-setup(ms)", "p99-setup(ms)")
	for _, name := range order {
		setupTbl.AddRow(name, setups[name].Mean(), setups[name].Percentile(0.99))
	}
	res.Tables = append(res.Tables, setupTbl)
	return res, nil
}

// Fig11a reproduces the Hadoop flow-completion CDF on a single pod with a
// 4-controller control plane (quorum 3 in the paper's terms: t=2 signers
// out of 4 with f=1).
func Fig11a(opt Options) (*Result, error) {
	res, err := singlePodCDF("fig11a (Hadoop, single pod)", workload.HadoopMix(), core.RunOptions{}, false, opt)
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		note("paper: setup ≈2.9ms centralized, ≈4.3ms crash, ≈8.3ms cicero, ≈11.6ms cicero-agg; amortized CDFs nearly overlap"))
	return res, nil
}

// Fig11b is Fig11a with the web-server mix.
func Fig11b(opt Options) (*Result, error) {
	res, err := singlePodCDF("fig11b (web server, single pod)", workload.WebServerMix(), core.RunOptions{}, false, opt)
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		note("paper: same ordering as fig11a; web mix has less rule reuse so overheads show slightly more"))
	return res, nil
}

// Fig11c reproduces the unamortized setup/teardown run: per-flow-pair
// rules, removed at flow completion, so every flow pays full setup.
func Fig11c(opt Options) (*Result, error) {
	res, err := singlePodCDF("fig11c (Hadoop, unamortized setup/teardown)",
		workload.HadoopMix(), core.RunOptions{Teardown: true}, true, opt)
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		note("paper: Hadoop flows ≈33.6ms mean; cicero ≈16%% overhead with switch aggregation, ≈29%% with controller aggregation"))
	return res, nil
}

// Fig11d reproduces switch CPU utilization during the Hadoop workload:
// the busiest switch's CPU time per one-second window, per framework.
func Fig11d(opt Options) (*Result, error) {
	opt = opt.Defaulted()
	g, err := topology.BuildSinglePod(podConfig(opt))
	if err != nil {
		return nil, err
	}
	// The CPU experiment needs sustained per-flow control work, so it
	// runs the setup/teardown mode at a fixed arrival rate chosen just
	// under the aggregator's saturation point.
	flows, err := workload.Generate(g, workload.Config{
		Mix:              workload.HadoopMix(),
		Flows:            opt.Flows,
		MeanInterarrival: 4 * time.Millisecond,
		Seed:             opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	window := time.Second
	windows := int(flows[len(flows)-1].Start/window) + 2

	type cpuSeries struct {
		name string
		util []float64
	}
	var all []cpuSeries
	for _, fw := range paperFrameworks(4) {
		n, err := core.Build(core.Config{
			Graph:                g,
			Protocol:             fw.proto,
			Aggregation:          fw.agg,
			ControllersPerDomain: fw.ctls,
			PairRules:            true,
			Cost:                 calibrated,
			CryptoReal:           opt.CryptoReal,
			Seed:                 opt.Seed,
		})
		if err != nil {
			return nil, err
		}
		// Sample cumulative busy time per switch at window boundaries.
		samples := make([]map[string]time.Duration, 0, windows)
		for w := 0; w < windows; w++ {
			w := w
			n.Sim.At(time.Duration(w+1)*window, func() {
				snap := make(map[string]time.Duration, len(n.Switches))
				for id := range n.Switches {
					snap[id] = n.Net.BusyTotal(simnet.NodeID(id))
				}
				samples = append(samples, snap)
			})
		}
		if _, err := n.RunFlows(flows, core.RunOptions{Teardown: true, ChargeForwarding: true}); err != nil {
			return nil, err
		}
		// Busiest switch overall defines the plotted line (the paper
		// plots one representative OVS instance).
		busiest := ""
		var max time.Duration
		last := samples[len(samples)-1]
		for id, total := range last {
			if total > max {
				max = total
				busiest = id
			}
		}
		util := make([]float64, len(samples))
		var prev time.Duration
		for i, snap := range samples {
			delta := snap[busiest] - prev
			prev = snap[busiest]
			util[i] = 100 * float64(delta) / float64(window)
		}
		all = append(all, cpuSeries{name: fw.name, util: util})
	}

	headers := []string{"t(s)"}
	for _, s := range all {
		headers = append(headers, s.name+"(%)")
	}
	tbl := metrics.NewTable("fig11d: busiest-switch CPU utilization (Hadoop, setup/teardown)", headers...)
	for w := 0; w < windows; w++ {
		row := []any{w + 1}
		for _, s := range all {
			v := 0.0
			if w < len(s.util) {
				v = s.util[w]
			}
			row = append(row, v)
		}
		tbl.AddRow(row...)
	}
	meanRow := []any{"mean"}
	for _, s := range all {
		sum := 0.0
		nz := 0
		for _, v := range s.util {
			if v > 0 {
				sum += v
				nz++
			}
		}
		if nz > 0 {
			meanRow = append(meanRow, sum/float64(nz))
		} else {
			meanRow = append(meanRow, 0.0)
		}
	}
	tbl.AddRow(meanRow...)
	res := &Result{Name: "fig11d", Tables: []*metrics.Table{tbl}}
	res.Notes = append(res.Notes,
		note("paper: cicero's switch-side verification roughly doubles switch CPU vs controller aggregation; baselines stay low"))
	return res, nil
}

// quorumLabel names the paper's quorum for n controllers.
func quorumLabel(n int) string {
	return note("n=%d (tolerates f=%d, quorum t=%d)", n, (n-1)/3, controlplane.CiceroQuorum(n))
}
