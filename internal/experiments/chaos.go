package experiments

import (
	"fmt"

	"cicero/internal/chaos"
	"cicero/internal/metrics"
)

// ChaosCampaign runs a seeded fault-injection campaign per profile and
// reports invariant violations (the paper's §4-§5 safety claims, checked
// adversarially rather than measured). Zero violations everywhere is the
// expected result; any non-zero count is a reproducible counterexample
// whose seed replays bit-identically via cmd/cicero-chaos.
func ChaosCampaign(o Options) (*Result, error) {
	o = o.Defaulted()
	seeds := 25
	if o.Quick {
		seeds = 8
	}
	profiles := []chaos.Profile{
		chaos.LinksProfile(),
		chaos.CrashProfile(),
		chaos.PartitionsProfile(),
		chaos.ByzantineProfile(),
		chaos.MixedProfile(),
	}
	tbl := metrics.NewTable("chaos campaigns (invariants: consistency, blackhole/loop freedom, agreement, no-forged-rule)",
		"profile", "seeds", "violations", "flows done", "faults injected", "msgs dropped", "updates rejected")
	injected := metrics.NewCounterSet()
	totalViolations := 0
	for _, p := range profiles {
		res := chaos.Campaign{Profile: p, Seeds: chaos.Seeds(o.Seed, seeds)}.Run()
		var dropped, rejected uint64
		for _, sr := range res.Results {
			dropped += sr.Net.DroppedInjected
			rejected += sr.UpdatesRejected
		}
		tbl.AddRow(p.Name, seeds, res.Violations,
			fmt.Sprintf("%d/%d", res.FlowsDone, res.FlowsTotal),
			res.Injected.Total(), dropped, rejected)
		injected.Merge(res.Injected)
		totalViolations += res.Violations
	}
	notes := []string{
		"per-fault injection counts: " + injected.String(),
		fmt.Sprintf("replay any seed with: cicero-chaos -profile <name> -replay <seed> (seeds start at %d)", o.Seed),
	}
	if totalViolations == 0 {
		notes = append(notes, "zero invariant violations across all profiles (expected)")
	} else {
		notes = append(notes, fmt.Sprintf("%d INVARIANT VIOLATIONS detected — see failing seeds above", totalViolations))
	}
	return &Result{Name: "chaos", Tables: []*metrics.Table{tbl}, Notes: notes}, nil
}
