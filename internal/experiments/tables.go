package experiments

import (
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/core"
	"cicero/internal/metrics"
	"cicero/internal/scheduler"
	"cicero/internal/simnet"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

// table1Graph is the five-switch diamond of the paper's Figs. 1-3.
func table1Graph() (*topology.Graph, error) {
	g := topology.NewGraph()
	for _, id := range []string{"s1", "s2", "s3", "s4", "s5"} {
		g.AddNode(topology.Node{ID: id, Kind: topology.KindToR})
	}
	for _, id := range []string{"h1", "h2", "h5"} {
		g.AddNode(topology.Node{ID: id, Kind: topology.KindHost})
	}
	links := [][2]string{
		{"s1", "s3"}, {"s2", "s3"}, {"s2", "s5"},
		{"s3", "s4"}, {"s4", "s5"},
		{"h1", "s1"}, {"h2", "s2"}, {"h5", "s5"},
	}
	for _, l := range links {
		if err := g.AddLink(l[0], l[1], 200*time.Microsecond, 5); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Table1 quantifies the consistency scenarios: how often unordered
// ("immediate") updates produce a transient black-hole window on a route
// installation, versus the reverse-path scheduler, across seeds.
func Table1(opt Options) (*Result, error) {
	opt = opt.Defaulted()
	seeds := 20
	if opt.Quick {
		seeds = 8
	}
	countViolations := func(sched scheduler.Scheduler) (int, time.Duration, error) {
		violations := 0
		var worstWindow time.Duration
		for seed := 0; seed < seeds; seed++ {
			g, err := table1Graph()
			if err != nil {
				return 0, 0, err
			}
			n, err := core.Build(core.Config{
				Graph:     g,
				Protocol:  controlplane.ProtoCicero,
				Scheduler: sched,
				Cost:      calibrated,
				Jitter:    0.8,
				Seed:      opt.Seed + int64(seed),
			})
			if err != nil {
				return 0, 0, err
			}
			path := g.ShortestPath("h1", "h5")
			switches := g.SwitchesOnPath(path)
			times := make(map[string]simnet.Time, len(switches))
			for _, sw := range switches {
				sw := sw
				n.Switches[sw].Subscribe("h1", "h5", func(at simnet.Time) { times[sw] = at })
			}
			if _, err := n.RunFlows([]workload.Flow{{ID: 1, Src: "h1", Dst: "h5", SizeKB: 8}}, core.RunOptions{}); err != nil {
				return 0, 0, err
			}
			bad := false
			for i := 0; i+1 < len(switches); i++ {
				if gap := times[switches[i+1]] - times[switches[i]]; gap > 0 {
					bad = true
					if gap > worstWindow {
						worstWindow = gap
					}
				}
			}
			if bad {
				violations++
			}
		}
		return violations, worstWindow, nil
	}

	immViol, immWindow, err := countViolations(scheduler.Immediate{})
	if err != nil {
		return nil, err
	}
	rpViol, rpWindow, err := countViolations(scheduler.ReversePath{})
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable("table1: transient black-hole windows during route installation",
		"scheduler", "runs", "runs-with-violation", "worst-window")
	tbl.AddRow("immediate (unordered)", seeds, immViol, immWindow)
	tbl.AddRow("reverse-path (cicero)", seeds, rpViol, rpWindow)
	res := &Result{Name: "table1", Tables: []*metrics.Table{tbl}}
	res.Notes = append(res.Notes,
		note("paper Table 1: unordered updates risk firewall bypass, loops/black holes and congestion; Cicero's scheduler preconditions eliminate them (see also TestTable1* and the firewall example)"))
	if rpViol != 0 {
		res.Notes = append(res.Notes, note("UNEXPECTED: reverse-path produced violations"))
	}
	return res, nil
}

// Table2 renders the paper's feature matrix for the systems compared,
// with the row for this implementation backed by the test suite.
func Table2(Options) (*Result, error) {
	tbl := metrics.NewTable("table2: network management solutions",
		"system", "crash-tol", "byzantine-tol", "ctl-auth", "dyn-membership", "upd-consistent", "upd-domains")
	rows := [][]string{
		{"singleton controller", "", "", "", "", "", ""},
		{"singleton w/ TLS", "", "", "✓", "", "", ""},
		{"ONOS", "✓", "", "", "✓", "", ""},
		{"Ravana", "✓", "", "", "", "", ""},
		{"Botelho et al.", "✓", "", "", "", "", ""},
		{"MORPH", "✓", "✓", "", "✓", "", ""},
		{"RoSCo", "✓", "✓", "✓", "", "✓", ""},
		{"NES", "", "", "", "", "✓", ""},
		{"Dionysus", "", "", "", "", "✓", ""},
		{"Optimal Order Updates", "", "", "", "", "✓", ""},
		{"ez-Segway", "", "", "", "", "✓", ""},
		{"Cicero (this repo)", "✓", "✓", "✓", "✓", "✓", "✓"},
	}
	for _, r := range rows {
		cells := make([]any, len(r))
		for i, c := range r {
			cells[i] = c
		}
		tbl.AddRow(cells...)
	}
	res := &Result{Name: "table2", Tables: []*metrics.Table{tbl}}
	res.Notes = append(res.Notes,
		note("this repo's ✓s are executable: crash -> TestCiceroSurvivesControllerCrash; byzantine -> internal/core security tests; ctl-auth -> threshold BLS; dyn-membership -> membership tests; consistency -> Table 1 tests; domains -> multi-domain tests"))
	return res, nil
}
