package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick smoke-tests every registered experiment at
// CI scale: each must run to completion and render at least one table.
func TestAllExperimentsRunQuick(t *testing.T) {
	opt := Options{Quick: true, Flows: 60, Seed: 13}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			var sb strings.Builder
			if err := Run(name, opt, &sb); err != nil {
				t.Fatalf("Run(%s): %v", name, err)
			}
			if !strings.Contains(sb.String(), "==") {
				t.Fatalf("Run(%s) rendered no table:\n%s", name, sb.String())
			}
		})
	}
}

// TestExperimentsDeterministic asserts the reproducibility claim: the same
// experiment with the same seed renders byte-identical output.
func TestExperimentsDeterministic(t *testing.T) {
	opt := Options{Quick: true, Flows: 80, Seed: 17}
	for _, name := range []string{"fig11a", "fig12b", "table1"} {
		var a, b strings.Builder
		if err := Run(name, opt, &a); err != nil {
			t.Fatalf("Run(%s) #1: %v", name, err)
		}
		if err := Run(name, opt, &b); err != nil {
			t.Fatalf("Run(%s) #2: %v", name, err)
		}
		if a.String() != b.String() {
			t.Fatalf("%s is not deterministic across identical runs", name)
		}
	}
}

// TestLiveSmoke runs a miniature live benchmark on the in-process backend
// (real concurrency, wall-clock timers, strict wire codec, real crypto)
// and requires every simnet cross-check to hold. The TCP backend gets the
// same treatment in CI via cmd/cicero-live.
func TestLiveSmoke(t *testing.T) {
	report, err := RunLive(LiveOptions{
		Backend:     "inproc",
		Quick:       true,
		SingleFlows: 2,
		MultiFlows:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	full := LiveReport{Backends: []LiveBackendReport{*report}}
	if !full.Passed() {
		t.Fatalf("live cross-check failed: %+v", report)
	}
	if report.SingleFlow.Updates != 2 || report.MultiFlow.Updates != 3 {
		t.Fatalf("unexpected update counts: %+v", report)
	}
	if report.SingleWire.Bytes == 0 || report.MultiWire.Bytes == 0 {
		t.Fatalf("no wire bytes accounted: %+v", report)
	}
}
