package experiments

// Crypto microbenchmarks for cicero-bench. These are deliberately NOT in
// the experiment Registry: experiments replay the paper's figures in
// deterministic virtual time, while this suite measures real wall-clock
// crypto cost on the host machine and so can never be part of the
// reproducible `-experiment all` output. It exists to start the repo's
// performance trajectory: each run emits a machine-readable report
// (BENCH_crypto.json) that later sessions can diff.

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/pairing"
)

// CryptoBenchOp is one measured operation.
type CryptoBenchOp struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	Iterations  int    `json:"iterations"`
}

// CryptoBenchReport is the full machine-readable benchmark output.
type CryptoBenchReport struct {
	Params string          `json:"params"`
	Ops    []CryptoBenchOp `json:"ops"`
}

// RunCryptoBench measures the cryptographic hot paths — pairing with and
// without precomputation, single and batched verification, and threshold
// combining at the quorum sizes used by the paper's deployments — on the
// Fast254 parameter set (the one every simulation and test uses).
func RunCryptoBench(opt Options) (*CryptoBenchReport, error) {
	params := pairing.Fast254()
	scheme := bls.NewScheme(params)
	report := &CryptoBenchReport{Params: "fast254"}

	ka, err := params.RandomScalar(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("cryptobench: %w", err)
	}
	pt := params.ScalarBaseMul(ka)
	hm := params.HashToG1([]byte("cryptobench/msg"))
	prep := params.Prepare(pt)

	// Each op runs for a target wall-clock window; quick mode shrinks the
	// window (noisier numbers, same shape). Alloc counts come from the
	// runtime's malloc counter, mirroring what testing -benchmem reports.
	target := 300 * time.Millisecond
	if opt.Quick {
		target = 25 * time.Millisecond
	}
	measure := func(name string, fn func()) {
		fn() // warm caches so steady-state cost is measured
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		iters := 0
		start := time.Now()
		var elapsed time.Duration
		for elapsed < target {
			fn()
			iters++
			elapsed = time.Since(start)
		}
		runtime.ReadMemStats(&after)
		report.Ops = append(report.Ops, CryptoBenchOp{
			Name:        name,
			NsPerOp:     elapsed.Nanoseconds() / int64(iters),
			AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
			Iterations:  iters,
		})
	}

	measure("pair", func() { params.Pair(pt, hm) })
	measure("pair/prepared", func() { params.PairPrepared(prep, hm) })
	measure("prepare", func() { params.Prepare(pt) })
	measure("scalar-mul", func() { params.ScalarMul(hm, ka) })
	measure("hash-to-g1", func() { params.HashToG1([]byte("cryptobench/h2g")) })

	msg := []byte("cryptobench/threshold")
	for _, t := range []int{2, 4, 7} {
		gk, keyShares, err := scheme.Deal(rand.Reader, t, t+1)
		if err != nil {
			return nil, fmt.Errorf("cryptobench: deal t=%d: %w", t, err)
		}
		shares := make([]bls.SignatureShare, t)
		for i := 0; i < t; i++ {
			shares[i] = scheme.SignShare(keyShares[i], msg)
		}
		tt := t
		measure(fmt.Sprintf("combine/t=%d", tt), func() {
			if _, err := scheme.Combine(gk, shares); err != nil {
				panic(err)
			}
		})
		if t == 4 {
			hmt := scheme.HashToPoint(msg)
			measure("sign/share", func() { scheme.SignShareDigest(keyShares[0], hmt) })
			measure("verify/share", func() { scheme.VerifyShareDigest(gk, hmt, shares[0]) })
			measure("batch-verify/t=4", func() { scheme.BatchVerifySharesDigest(gk, hmt, shares) })
			measure("combine-verified/t=4", func() {
				if _, err := scheme.CombineVerified(gk, msg, shares); err != nil {
					panic(err)
				}
			})
			sig, err := scheme.Combine(gk, shares)
			if err != nil {
				return nil, fmt.Errorf("cryptobench: combine: %w", err)
			}
			measure("verify/aggregate", func() { scheme.VerifyDigest(gk.PK, hmt, sig) })
			cache := bls.NewVerifyCache(8)
			scheme.VerifyCached(cache, gk.PK, msg, sig)
			measure("verify/cached-hit", func() { scheme.VerifyCached(cache, gk.PK, msg, sig) })
		}
	}
	return report, nil
}

// WriteJSON emits the report as indented JSON.
func (r *CryptoBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render writes a human-readable summary, one op per line.
func (r *CryptoBenchReport) Render(w io.Writer) {
	fmt.Fprintf(w, "crypto microbenchmarks (%s)\n", r.Params)
	for _, op := range r.Ops {
		fmt.Fprintf(w, "%-22s %12d ns/op %8d allocs/op %8d iters\n",
			op.Name, op.NsPerOp, op.AllocsPerOp, op.Iterations)
	}
}
