package topology

import (
	"fmt"
	"time"
)

// FabricConfig parametrizes the Facebook data-center fabric of the paper's
// Fig. 10: server pods of racks whose top-of-rack switches connect to four
// edge switches, with edge switches uplinked to spine planes that
// interconnect pods.
type FabricConfig struct {
	// RacksPerPod is the number of racks (each with one ToR switch) in a
	// server pod. The paper uses 40.
	RacksPerPod int
	// EdgePerPod is the number of edge switches atop each pod (paper: 4).
	EdgePerPod int
	// SpinesPerPlane is the number of spine switches in each spine plane;
	// there are EdgePerPod planes, and pod edge switch k uplinks to every
	// spine in plane k.
	SpinesPerPlane int
	// HostsPerRack is the number of (aggregate) host endpoints attached to
	// each ToR; flows originate and terminate at hosts.
	HostsPerRack int

	// Link latencies.
	HostToR   time.Duration
	ToREdge   time.Duration
	EdgeSpine time.Duration

	// Link capacities in Gbps.
	HostGbps  float64
	ToRGbps   float64
	SpineGbps float64
}

// DefaultFabricConfig mirrors the paper's single-pod setup: 40 racks,
// 4 edge switches, intra-data-center link latencies in the tens of
// microseconds, 10/40 Gbps links.
func DefaultFabricConfig() FabricConfig {
	return FabricConfig{
		RacksPerPod:    40,
		EdgePerPod:     4,
		SpinesPerPlane: 4,
		HostsPerRack:   1,
		HostToR:        20 * time.Microsecond,
		ToREdge:        40 * time.Microsecond,
		EdgeSpine:      60 * time.Microsecond,
		HostGbps:       10,
		ToRGbps:        40,
		SpineGbps:      100,
	}
}

// HostName returns the canonical host id for (dc, pod, rack, host).
func HostName(dc, pod, rack, host int) string {
	return fmt.Sprintf("d%d-p%d-r%d-h%d", dc, pod, rack, host)
}

// ToRName returns the canonical ToR switch id for (dc, pod, rack).
func ToRName(dc, pod, rack int) string {
	return fmt.Sprintf("d%d-p%d-tor%d", dc, pod, rack)
}

// EdgeName returns the canonical edge switch id for (dc, pod, idx).
func EdgeName(dc, pod, idx int) string {
	return fmt.Sprintf("d%d-p%d-edge%d", dc, pod, idx)
}

// SpineName returns the canonical spine switch id for (dc, plane, idx).
func SpineName(dc, plane, idx int) string {
	return fmt.Sprintf("d%d-spine%d-%d", dc, plane, idx)
}

// CoreName returns the canonical WAN core router id for a data center.
func CoreName(dc int) string {
	return fmt.Sprintf("d%d-core", dc)
}

// AddPod adds one server pod (hosts, ToRs, edge switches and their links)
// for data center dc to the graph.
func AddPod(g *Graph, cfg FabricConfig, dc, pod int) error {
	for e := 0; e < cfg.EdgePerPod; e++ {
		g.AddNode(Node{ID: EdgeName(dc, pod, e), Kind: KindEdge, DC: dc, Pod: pod, Rack: -1})
	}
	for r := 0; r < cfg.RacksPerPod; r++ {
		tor := ToRName(dc, pod, r)
		g.AddNode(Node{ID: tor, Kind: KindToR, DC: dc, Pod: pod, Rack: r})
		for h := 0; h < cfg.HostsPerRack; h++ {
			host := HostName(dc, pod, r, h)
			g.AddNode(Node{ID: host, Kind: KindHost, DC: dc, Pod: pod, Rack: r})
			if err := g.AddLink(host, tor, cfg.HostToR, cfg.HostGbps); err != nil {
				return err
			}
		}
		for e := 0; e < cfg.EdgePerPod; e++ {
			if err := g.AddLink(tor, EdgeName(dc, pod, e), cfg.ToREdge, cfg.ToRGbps); err != nil {
				return err
			}
		}
	}
	return nil
}

// BuildSinglePod builds the paper's single-pod evaluation topology.
func BuildSinglePod(cfg FabricConfig) (*Graph, error) {
	g := NewGraph()
	if err := AddPod(g, cfg, 0, 0); err != nil {
		return nil, err
	}
	return g, nil
}

// BuildFabric builds one data center with the given number of pods,
// interconnected by spine planes: pod edge switch k connects to every
// spine switch in plane k.
func BuildFabric(cfg FabricConfig, dc, pods int) (*Graph, error) {
	g := NewGraph()
	if err := AddFabric(g, cfg, dc, pods); err != nil {
		return nil, err
	}
	return g, nil
}

// AddFabric adds a complete data-center fabric (pods + spine planes) to g.
func AddFabric(g *Graph, cfg FabricConfig, dc, pods int) error {
	for plane := 0; plane < cfg.EdgePerPod; plane++ {
		for s := 0; s < cfg.SpinesPerPlane; s++ {
			g.AddNode(Node{ID: SpineName(dc, plane, s), Kind: KindSpine, DC: dc, Pod: -1, Rack: -1})
		}
	}
	for pod := 0; pod < pods; pod++ {
		if err := AddPod(g, cfg, dc, pod); err != nil {
			return err
		}
		for plane := 0; plane < cfg.EdgePerPod; plane++ {
			edge := EdgeName(dc, pod, plane)
			for s := 0; s < cfg.SpinesPerPlane; s++ {
				if err := g.AddLink(edge, SpineName(dc, plane, s), cfg.EdgeSpine, cfg.SpineGbps); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// InterconnectPodsConfig describes the paper's Fig. 12c setup: two (or
// more) pods joined by a small interconnect domain of redundant switches
// instead of a full spine layer.
type InterconnectPodsConfig struct {
	Fabric FabricConfig
	// Pods is the number of pods to join.
	Pods int
	// InterconnectSwitches is the number of redundant interconnect
	// switches (paper: 4).
	InterconnectSwitches int
	// EdgeInterconnect is the latency of pod-edge-to-interconnect links.
	EdgeInterconnect time.Duration
}

// InterconnectName returns the canonical interconnect switch id.
func InterconnectName(dc, idx int) string {
	return fmt.Sprintf("d%d-ix%d", dc, idx)
}

// BuildInterconnectedPods builds N pods joined by a dedicated interconnect
// domain of redundant switches, the multi-domain topology of §6.3.
func BuildInterconnectedPods(cfg InterconnectPodsConfig) (*Graph, error) {
	g := NewGraph()
	const dc = 0
	for i := 0; i < cfg.InterconnectSwitches; i++ {
		g.AddNode(Node{ID: InterconnectName(dc, i), Kind: KindSpine, DC: dc, Pod: -1, Rack: -1})
	}
	for pod := 0; pod < cfg.Pods; pod++ {
		if err := AddPod(g, cfg.Fabric, dc, pod); err != nil {
			return nil, err
		}
		for e := 0; e < cfg.Fabric.EdgePerPod; e++ {
			edge := EdgeName(dc, pod, e)
			for i := 0; i < cfg.InterconnectSwitches; i++ {
				if err := g.AddLink(edge, InterconnectName(dc, i), cfg.EdgeInterconnect, cfg.Fabric.SpineGbps); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}
