// Package topology models the data-plane graphs Cicero is evaluated on:
// generic weighted graphs with deterministic shortest-path routing, the
// Facebook data-center fabric (server pods of top-of-rack and edge
// switches under spine planes, Fig. 10 of the paper), and a multi-data-
// center WAN following Deutsche Telekom's backbone from the Internet
// Topology Zoo.
package topology

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Kind classifies a node's role in the fabric.
type Kind int

// Node kinds. Start at 1 so the zero value is invalid.
const (
	KindHost Kind = iota + 1
	KindToR
	KindEdge
	KindSpine
	KindCore
)

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindToR:
		return "tor"
	case KindEdge:
		return "edge"
	case KindSpine:
		return "spine"
	case KindCore:
		return "core"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is a device in the topology.
type Node struct {
	ID   string
	Kind Kind
	// DC, Pod and Rack locate the node; -1 when not applicable.
	DC   int
	Pod  int
	Rack int
}

// Edge is one direction of a link.
type Edge struct {
	To      string
	Latency time.Duration
	// GbpsCapacity is the link capacity in gigabits per second.
	GbpsCapacity float64
}

// Graph is an undirected multigraph of nodes and links.
type Graph struct {
	nodes map[string]*Node
	adj   map[string][]Edge
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{nodes: make(map[string]*Node), adj: make(map[string][]Edge)}
}

// AddNode inserts a node; adding an existing id is a no-op.
func (g *Graph) AddNode(n Node) {
	if _, ok := g.nodes[n.ID]; ok {
		return
	}
	copied := n
	g.nodes[n.ID] = &copied
}

// AddLink inserts a bidirectional link between existing nodes.
func (g *Graph) AddLink(a, b string, latency time.Duration, gbps float64) error {
	if _, ok := g.nodes[a]; !ok {
		return fmt.Errorf("topology: unknown node %q", a)
	}
	if _, ok := g.nodes[b]; !ok {
		return fmt.Errorf("topology: unknown node %q", b)
	}
	g.adj[a] = append(g.adj[a], Edge{To: b, Latency: latency, GbpsCapacity: gbps})
	g.adj[b] = append(g.adj[b], Edge{To: a, Latency: latency, GbpsCapacity: gbps})
	return nil
}

// RemoveLink severs the link between a and b (both directions); it models
// the hardware failures of the paper's Fig. 2 scenario.
func (g *Graph) RemoveLink(a, b string) {
	filter := func(list []Edge, drop string) []Edge {
		out := list[:0]
		for _, e := range list {
			if e.To != drop {
				out = append(out, e)
			}
		}
		return out
	}
	g.adj[a] = filter(g.adj[a], b)
	g.adj[b] = filter(g.adj[b], a)
}

// Node returns a node by id.
func (g *Graph) Node(id string) (*Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// Neighbors returns the outgoing edges of a node.
func (g *Graph) Neighbors(id string) []Edge {
	return g.adj[id]
}

// Nodes returns all nodes sorted by id for deterministic iteration.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NodesOfKind returns all nodes of the given kind, sorted by id.
func (g *Graph) NodesOfKind(kind Kind) []*Node {
	var out []*Node
	for _, n := range g.Nodes() {
		if n.Kind == kind {
			out = append(out, n)
		}
	}
	return out
}

// Len returns the node count.
func (g *Graph) Len() int { return len(g.nodes) }

// LinkLatency returns the latency of the direct link a->b, or ok=false.
func (g *Graph) LinkLatency(a, b string) (time.Duration, bool) {
	for _, e := range g.adj[a] {
		if e.To == b {
			return e.Latency, true
		}
	}
	return 0, false
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	id   string
	dist time.Duration
	hops int
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	if q[i].hops != q[j].hops {
		return q[i].hops < q[j].hops
	}
	return q[i].id < q[j].id
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath returns the minimum-latency path from src to dst inclusive,
// breaking ties by hop count then lexicographic node id so routing is
// deterministic across runs and controllers (all Cicero controllers must
// compute identical updates for an event). It returns nil if dst is
// unreachable.
func (g *Graph) ShortestPath(src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	type state struct {
		dist time.Duration
		hops int
		prev string
		done bool
	}
	states := map[string]*state{src: {}}
	q := &pq{{id: src}}
	for q.Len() > 0 {
		cur := heap.Pop(q).(pqItem)
		st := states[cur.id]
		if st.done {
			continue
		}
		st.done = true
		if cur.id == dst {
			break
		}
		edges := append([]Edge(nil), g.adj[cur.id]...)
		sort.Slice(edges, func(i, j int) bool { return edges[i].To < edges[j].To })
		for _, e := range edges {
			nd := cur.dist + e.Latency
			nh := cur.hops + 1
			next, ok := states[e.To]
			better := !ok ||
				nd < next.dist ||
				(nd == next.dist && nh < next.hops) ||
				(nd == next.dist && nh == next.hops && cur.id < next.prev)
			if ok && next.done {
				continue
			}
			if better {
				states[e.To] = &state{dist: nd, hops: nh, prev: cur.id}
				heap.Push(q, pqItem{id: e.To, dist: nd, hops: nh})
			}
		}
	}
	end, ok := states[dst]
	if !ok {
		return nil
	}
	var path []string
	for id := dst; ; {
		path = append(path, id)
		if id == src {
			break
		}
		id = states[id].prev
		_ = end
	}
	// Reverse.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// PathLatency sums the link latencies along a path.
func (g *Graph) PathLatency(path []string) (time.Duration, error) {
	var total time.Duration
	for i := 0; i+1 < len(path); i++ {
		lat, ok := g.LinkLatency(path[i], path[i+1])
		if !ok {
			return 0, fmt.Errorf("topology: no link %s-%s", path[i], path[i+1])
		}
		total += lat
	}
	return total, nil
}

// PathMinCapacity returns the bottleneck capacity (Gbps) along a path.
func (g *Graph) PathMinCapacity(path []string) (float64, error) {
	minCap := 0.0
	for i := 0; i+1 < len(path); i++ {
		found := false
		for _, e := range g.adj[path[i]] {
			if e.To == path[i+1] {
				if minCap == 0 || e.GbpsCapacity < minCap {
					minCap = e.GbpsCapacity
				}
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("topology: no link %s-%s", path[i], path[i+1])
		}
	}
	return minCap, nil
}

// SwitchesOnPath filters a host-to-host path down to its switches.
func (g *Graph) SwitchesOnPath(path []string) []string {
	var out []string
	for _, id := range path {
		if n, ok := g.nodes[id]; ok && n.Kind != KindHost {
			out = append(out, id)
		}
	}
	return out
}
