package topology

import (
	"testing"
	"time"
)

func smallFabric() FabricConfig {
	cfg := DefaultFabricConfig()
	cfg.RacksPerPod = 4
	cfg.SpinesPerPlane = 2
	return cfg
}

func TestShortestPathBasics(t *testing.T) {
	g := NewGraph()
	for _, id := range []string{"a", "b", "c", "d"} {
		g.AddNode(Node{ID: id, Kind: KindToR})
	}
	mustLink(t, g, "a", "b", 1*time.Millisecond)
	mustLink(t, g, "b", "c", 1*time.Millisecond)
	mustLink(t, g, "a", "d", 1*time.Millisecond)
	mustLink(t, g, "d", "c", 5*time.Millisecond)

	path := g.ShortestPath("a", "c")
	want := []string{"a", "b", "c"}
	if !equalPath(path, want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	lat, err := g.PathLatency(path)
	if err != nil || lat != 2*time.Millisecond {
		t.Fatalf("latency = %v (%v), want 2ms", lat, err)
	}
}

func TestShortestPathSameNode(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{ID: "x", Kind: KindToR})
	if p := g.ShortestPath("x", "x"); !equalPath(p, []string{"x"}) {
		t.Fatalf("self path = %v", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{ID: "a", Kind: KindToR})
	g.AddNode(Node{ID: "b", Kind: KindToR})
	if p := g.ShortestPath("a", "b"); p != nil {
		t.Fatalf("expected nil path, got %v", p)
	}
}

func TestShortestPathDeterministicTieBreak(t *testing.T) {
	// Two equal-cost paths a-b-d and a-c-d: the lexicographically smaller
	// intermediate (b) must always win.
	g := NewGraph()
	for _, id := range []string{"a", "b", "c", "d"} {
		g.AddNode(Node{ID: id, Kind: KindToR})
	}
	mustLink(t, g, "a", "b", time.Millisecond)
	mustLink(t, g, "b", "d", time.Millisecond)
	mustLink(t, g, "a", "c", time.Millisecond)
	mustLink(t, g, "c", "d", time.Millisecond)
	for i := 0; i < 10; i++ {
		if p := g.ShortestPath("a", "d"); !equalPath(p, []string{"a", "b", "d"}) {
			t.Fatalf("iteration %d: path = %v, want [a b d]", i, p)
		}
	}
}

func TestRemoveLinkForcesReroute(t *testing.T) {
	g := NewGraph()
	for _, id := range []string{"a", "b", "c"} {
		g.AddNode(Node{ID: id, Kind: KindToR})
	}
	mustLink(t, g, "a", "c", time.Millisecond)
	mustLink(t, g, "a", "b", time.Millisecond)
	mustLink(t, g, "b", "c", time.Millisecond)
	if p := g.ShortestPath("a", "c"); len(p) != 2 {
		t.Fatalf("expected direct path, got %v", p)
	}
	g.RemoveLink("a", "c")
	if p := g.ShortestPath("a", "c"); !equalPath(p, []string{"a", "b", "c"}) {
		t.Fatalf("after failure path = %v, want [a b c]", p)
	}
}

func TestBuildSinglePodShape(t *testing.T) {
	cfg := smallFabric()
	g, err := BuildSinglePod(cfg)
	if err != nil {
		t.Fatalf("BuildSinglePod: %v", err)
	}
	tors := g.NodesOfKind(KindToR)
	edges := g.NodesOfKind(KindEdge)
	hosts := g.NodesOfKind(KindHost)
	if len(tors) != cfg.RacksPerPod {
		t.Errorf("ToRs = %d, want %d", len(tors), cfg.RacksPerPod)
	}
	if len(edges) != cfg.EdgePerPod {
		t.Errorf("edges = %d, want %d", len(edges), cfg.EdgePerPod)
	}
	if len(hosts) != cfg.RacksPerPod*cfg.HostsPerRack {
		t.Errorf("hosts = %d, want %d", len(hosts), cfg.RacksPerPod*cfg.HostsPerRack)
	}
	// Every ToR connects to every edge switch.
	for _, tor := range tors {
		seen := 0
		for _, e := range g.Neighbors(tor.ID) {
			if n, _ := g.Node(e.To); n.Kind == KindEdge {
				seen++
			}
		}
		if seen != cfg.EdgePerPod {
			t.Errorf("%s connects to %d edges, want %d", tor.ID, seen, cfg.EdgePerPod)
		}
	}
	// Intra-pod host-to-host path: h - tor - edge - tor - h (5 nodes).
	src := HostName(0, 0, 0, 0)
	dst := HostName(0, 0, 3, 0)
	p := g.ShortestPath(src, dst)
	if len(p) != 5 {
		t.Errorf("intra-pod path %v, want 5 nodes", p)
	}
	if sw := g.SwitchesOnPath(p); len(sw) != 3 {
		t.Errorf("switches on path = %v, want 3", sw)
	}
}

func TestBuildFabricInterPodPath(t *testing.T) {
	cfg := smallFabric()
	g, err := BuildFabric(cfg, 0, 2)
	if err != nil {
		t.Fatalf("BuildFabric: %v", err)
	}
	src := HostName(0, 0, 0, 0)
	dst := HostName(0, 1, 0, 0)
	p := g.ShortestPath(src, dst)
	if p == nil {
		t.Fatal("no inter-pod path")
	}
	// host-tor-edge-spine-edge-tor-host = 7 nodes.
	if len(p) != 7 {
		t.Errorf("inter-pod path has %d nodes (%v), want 7", len(p), p)
	}
	crossedSpine := false
	for _, id := range p {
		if n, _ := g.Node(id); n.Kind == KindSpine {
			crossedSpine = true
		}
	}
	if !crossedSpine {
		t.Error("inter-pod path avoided the spine layer")
	}
}

func TestBuildInterconnectedPods(t *testing.T) {
	cfg := InterconnectPodsConfig{
		Fabric:               smallFabric(),
		Pods:                 2,
		InterconnectSwitches: 4,
		EdgeInterconnect:     50 * time.Microsecond,
	}
	g, err := BuildInterconnectedPods(cfg)
	if err != nil {
		t.Fatalf("BuildInterconnectedPods: %v", err)
	}
	p := g.ShortestPath(HostName(0, 0, 0, 0), HostName(0, 1, 2, 0))
	if p == nil {
		t.Fatal("pods are not connected")
	}
	viaIX := false
	for _, id := range p {
		if n, _ := g.Node(id); n.Kind == KindSpine && n.Pod == -1 {
			viaIX = true
		}
	}
	if !viaIX {
		t.Errorf("inter-pod path %v avoided interconnect switches", p)
	}
}

func TestBuildMultiDC(t *testing.T) {
	cfg := DefaultMultiDCConfig()
	cfg.Fabric = smallFabric()
	cfg.DataCenters = 3
	cfg.PodsPerDC = 2
	g, err := BuildMultiDC(cfg)
	if err != nil {
		t.Fatalf("BuildMultiDC: %v", err)
	}
	// Inter-DC latency must dominate intra-DC latency.
	intra := mustPathLatency(t, g, HostName(0, 0, 0, 0), HostName(0, 1, 0, 0))
	inter := mustPathLatency(t, g, HostName(0, 0, 0, 0), HostName(2, 0, 0, 0))
	if inter < 5*intra {
		t.Errorf("inter-DC latency %v should dominate intra-DC %v", inter, intra)
	}
	if inter < time.Millisecond {
		t.Errorf("inter-DC latency %v suspiciously small", inter)
	}
}

func TestBuildMultiDCValidation(t *testing.T) {
	cfg := DefaultMultiDCConfig()
	cfg.DataCenters = 0
	if _, err := BuildMultiDC(cfg); err == nil {
		t.Error("DataCenters=0 accepted")
	}
	cfg.DataCenters = len(TelekomCities) + 1
	if _, err := BuildMultiDC(cfg); err == nil {
		t.Error("too many data centers accepted")
	}
}

func TestWANLatencyScale(t *testing.T) {
	// Berlin-Muenchen is ~500 km; expect a few ms one-way.
	d := haversineKm(TelekomCities[0], TelekomCities[7])
	if d < 400 || d > 650 {
		t.Errorf("berlin-muenchen distance %.0f km out of expected range", d)
	}
	lat := WANLatency(d)
	if lat < 2*time.Millisecond || lat > 6*time.Millisecond {
		t.Errorf("WAN latency %v out of expected range", lat)
	}
}

func TestTelekomGraphConnected(t *testing.T) {
	cfg := DefaultMultiDCConfig()
	cfg.Fabric = smallFabric()
	cfg.Fabric.RacksPerPod = 1
	cfg.PodsPerDC = 1
	g, err := BuildMultiDC(cfg)
	if err != nil {
		t.Fatalf("BuildMultiDC: %v", err)
	}
	for dc := 1; dc < cfg.DataCenters; dc++ {
		if p := g.ShortestPath(CoreName(0), CoreName(dc)); p == nil {
			t.Errorf("no WAN path from dc0 to dc%d", dc)
		}
	}
}

func TestPathMinCapacity(t *testing.T) {
	g := NewGraph()
	for _, id := range []string{"a", "b", "c"} {
		g.AddNode(Node{ID: id, Kind: KindToR})
	}
	if err := g.AddLink("a", "b", time.Millisecond, 10); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink("b", "c", time.Millisecond, 40); err != nil {
		t.Fatal(err)
	}
	got, err := g.PathMinCapacity([]string{"a", "b", "c"})
	if err != nil || got != 10 {
		t.Fatalf("bottleneck = %v (%v), want 10", got, err)
	}
	if _, err := g.PathMinCapacity([]string{"a", "c"}); err == nil {
		t.Error("missing link accepted")
	}
}

func TestAddLinkUnknownNode(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{ID: "a", Kind: KindToR})
	if err := g.AddLink("a", "ghost", time.Millisecond, 1); err == nil {
		t.Error("link to unknown node accepted")
	}
}

func mustLink(t *testing.T, g *Graph, a, b string, lat time.Duration) {
	t.Helper()
	if err := g.AddLink(a, b, lat, 10); err != nil {
		t.Fatalf("AddLink(%s,%s): %v", a, b, err)
	}
}

func mustPathLatency(t *testing.T, g *Graph, src, dst string) time.Duration {
	t.Helper()
	p := g.ShortestPath(src, dst)
	if p == nil {
		t.Fatalf("no path %s -> %s", src, dst)
	}
	lat, err := g.PathLatency(p)
	if err != nil {
		t.Fatalf("PathLatency: %v", err)
	}
	return lat
}

func equalPath(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkShortestPathPod(b *testing.B) {
	g, err := BuildSinglePod(DefaultFabricConfig())
	if err != nil {
		b.Fatal(err)
	}
	src := HostName(0, 0, 0, 0)
	dst := HostName(0, 0, 39, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.ShortestPath(src, dst) == nil {
			b.Fatal("no path")
		}
	}
}
