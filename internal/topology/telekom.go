package topology

import (
	"fmt"
	"math"
	"time"
)

// The paper's final evaluation (Fig. 12d) places data centers at the nodes
// of Deutsche Telekom's backbone as documented by the Internet Topology
// Zoo. The Topology Zoo distributes GraphML which we cannot fetch in an
// offline build, so the documented city graph is embedded here: the major
// German backbone cities with their coordinates and the ring/mesh links
// between them. Inter-city latency is derived from great-circle distance
// at 2/3 c (propagation in fiber) times a 1.4 route-stretch factor, which
// reproduces the effect the experiment depends on — WAN latency between
// data centers dominating intra-DC latency by 2-3 orders of magnitude.

// City is a Deutsche Telekom backbone point of presence.
type City struct {
	Name string
	Lat  float64
	Lon  float64
}

// TelekomCities lists the backbone PoPs (one data center each).
var TelekomCities = []City{
	{"berlin", 52.52, 13.405},
	{"hamburg", 53.551, 9.994},
	{"hannover", 52.376, 9.732},
	{"dortmund", 51.514, 7.466},
	{"koeln", 50.938, 6.96},
	{"frankfurt", 50.110, 8.682},
	{"stuttgart", 48.776, 9.183},
	{"muenchen", 48.137, 11.575},
	{"nuernberg", 49.453, 11.077},
	{"leipzig", 51.340, 12.375},
}

// telekomLinks is the backbone adjacency (index pairs into TelekomCities).
var telekomLinks = [][2]int{
	{0, 1}, // berlin-hamburg
	{0, 2}, // berlin-hannover
	{0, 9}, // berlin-leipzig
	{1, 2}, // hamburg-hannover
	{2, 3}, // hannover-dortmund
	{2, 5}, // hannover-frankfurt
	{3, 4}, // dortmund-koeln
	{4, 5}, // koeln-frankfurt
	{5, 6}, // frankfurt-stuttgart
	{5, 8}, // frankfurt-nuernberg
	{6, 7}, // stuttgart-muenchen
	{7, 8}, // muenchen-nuernberg
	{8, 9}, // nuernberg-leipzig
	{9, 7}, // leipzig-muenchen
}

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// haversineKm returns the great-circle distance between two cities.
func haversineKm(a, b City) float64 {
	toRad := func(d float64) float64 { return d * math.Pi / 180 }
	dLat := toRad(b.Lat - a.Lat)
	dLon := toRad(b.Lon - a.Lon)
	lat1 := toRad(a.Lat)
	lat2 := toRad(b.Lat)
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(h))
}

// WANLatency converts a fiber distance to one-way propagation latency:
// distance × stretch / (2/3 c).
func WANLatency(distanceKm float64) time.Duration {
	const fiberKmPerMs = 200.0 // 2/3 of c in km per millisecond
	const stretch = 1.4
	ms := distanceKm * stretch / fiberKmPerMs
	return time.Duration(ms * float64(time.Millisecond))
}

// MultiDCConfig parametrizes the multi-data-center topology of Fig. 12d.
type MultiDCConfig struct {
	Fabric FabricConfig
	// DataCenters is how many Telekom cities host a data center
	// (<= len(TelekomCities)).
	DataCenters int
	// PodsPerDC is the number of server pods per data center (paper: 4).
	PodsPerDC int
	// CoreSpine is the latency between a DC's WAN core router and its
	// spine switches.
	CoreSpine time.Duration
	// WANGbps is inter-DC link capacity.
	WANGbps float64
}

// DefaultMultiDCConfig mirrors the paper's Fig. 12d setup.
func DefaultMultiDCConfig() MultiDCConfig {
	return MultiDCConfig{
		Fabric:      DefaultFabricConfig(),
		DataCenters: len(TelekomCities),
		PodsPerDC:   4,
		CoreSpine:   80 * time.Microsecond,
		WANGbps:     100,
	}
}

// BuildMultiDC builds DataCenters fabrics at Telekom cities, each with a
// WAN core router connected to all of its spine switches, and inter-DC
// links following the Telekom backbone with distance-derived latencies.
func BuildMultiDC(cfg MultiDCConfig) (*Graph, error) {
	if cfg.DataCenters < 1 || cfg.DataCenters > len(TelekomCities) {
		return nil, fmt.Errorf("topology: DataCenters must be in 1..%d, got %d",
			len(TelekomCities), cfg.DataCenters)
	}
	g := NewGraph()
	for dc := 0; dc < cfg.DataCenters; dc++ {
		if err := AddFabric(g, cfg.Fabric, dc, cfg.PodsPerDC); err != nil {
			return nil, err
		}
		core := CoreName(dc)
		g.AddNode(Node{ID: core, Kind: KindCore, DC: dc, Pod: -1, Rack: -1})
		for plane := 0; plane < cfg.Fabric.EdgePerPod; plane++ {
			for s := 0; s < cfg.Fabric.SpinesPerPlane; s++ {
				if err := g.AddLink(core, SpineName(dc, plane, s), cfg.CoreSpine, cfg.WANGbps); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, link := range telekomLinks {
		a, b := link[0], link[1]
		if a >= cfg.DataCenters || b >= cfg.DataCenters {
			continue
		}
		lat := WANLatency(haversineKm(TelekomCities[a], TelekomCities[b]))
		if err := g.AddLink(CoreName(a), CoreName(b), lat, cfg.WANGbps); err != nil {
			return nil, err
		}
	}
	return g, nil
}
