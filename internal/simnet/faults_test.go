package simnet

import (
	"testing"
	"time"
)

// collector registers a node that records every delivered message.
func collector(net *Network, id NodeID) *[]Message {
	var got []Message
	net.Register(id, HandlerFunc(func(from NodeID, msg Message) {
		got = append(got, msg)
	}))
	return &got
}

func TestPartitionOneWayIsAsymmetric(t *testing.T) {
	sim := NewSimulator(1)
	net := NewNetwork(sim, time.Millisecond)
	gotA := collector(net, "a")
	gotB := collector(net, "b")

	net.PartitionOneWay("a", "b")
	if !net.Partitioned("a", "b") || net.Partitioned("b", "a") {
		t.Fatalf("one-way partition should block a->b only")
	}
	net.Send("a", "b", "a-to-b", 10)
	net.Send("b", "a", "b-to-a", 10)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*gotB) != 0 {
		t.Errorf("b received %v across a one-way partition", *gotB)
	}
	if len(*gotA) != 1 {
		t.Errorf("a should still receive from b, got %v", *gotA)
	}

	net.HealOneWay("a", "b")
	net.Send("a", "b", "after-heal", 10)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*gotB) != 1 {
		t.Errorf("b should receive after heal, got %v", *gotB)
	}
	st := net.Stats()
	if st.DroppedPartition != 1 || st.Dropped != 1 {
		t.Errorf("stats = %+v, want exactly one partition drop", st)
	}
}

func TestPartitionSetSeversGroupsBothWays(t *testing.T) {
	sim := NewSimulator(1)
	net := NewNetwork(sim, time.Millisecond)
	ids := []NodeID{"a1", "a2", "b1", "b2"}
	got := make(map[NodeID]*[]Message)
	for _, id := range ids {
		got[id] = collector(net, id)
	}
	net.PartitionSet([]NodeID{"a1", "a2"}, []NodeID{"b1", "b2"})

	// Cross-group traffic is blocked in both directions...
	net.Send("a1", "b1", "x", 1)
	net.Send("b2", "a2", "x", 1)
	// ...intra-group traffic still flows.
	net.Send("a1", "a2", "intra-a", 1)
	net.Send("b1", "b2", "intra-b", 1)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got["b1"]) != 0 || len(*got["a2"]) != 1 {
		t.Errorf("cross traffic leaked: b1=%v a2=%v", *got["b1"], *got["a2"])
	}
	if len(*got["b2"]) != 1 {
		t.Errorf("intra-group traffic blocked: b2=%v", *got["b2"])
	}

	net.HealSet([]NodeID{"a1", "a2"}, []NodeID{"b1", "b2"})
	net.Send("a1", "b1", "healed", 1)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got["b1"]) != 1 {
		t.Errorf("heal did not restore cross traffic: b1=%v", *got["b1"])
	}
}

func TestFilterDropDelayDuplicateReplace(t *testing.T) {
	sim := NewSimulator(1)
	net := NewNetwork(sim, time.Millisecond)
	got := collector(net, "dst")
	var arrivals []Time
	net.Register("dst", HandlerFunc(func(from NodeID, msg Message) {
		*got = append(*got, msg)
		arrivals = append(arrivals, sim.Now())
	}))
	net.Register("src", HandlerFunc(func(NodeID, Message) {}))

	net.SetFilter(func(from, to NodeID, msg Message, size int) FaultAction {
		switch msg {
		case "drop-me":
			return FaultAction{Drop: true}
		case "delay-me":
			return FaultAction{Delay: 5 * time.Millisecond}
		case "dup-me":
			return FaultAction{Duplicates: 2}
		case "corrupt-me":
			return FaultAction{Replace: "corrupted"}
		}
		return FaultAction{}
	})

	net.Send("src", "dst", "drop-me", 10)
	net.Send("src", "dst", "delay-me", 10)
	net.Send("src", "dst", "dup-me", 10)
	net.Send("src", "dst", "corrupt-me", 10)
	net.Send("src", "dst", "plain", 10)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}

	count := map[Message]int{}
	for _, m := range *got {
		count[m]++
	}
	if count["drop-me"] != 0 {
		t.Errorf("dropped message was delivered")
	}
	if count["dup-me"] != 3 {
		t.Errorf("duplicated message delivered %d times, want 3", count["dup-me"])
	}
	if count["corrupt-me"] != 0 || count["corrupted"] != 1 {
		t.Errorf("replace failed: %v", count)
	}
	if count["delay-me"] != 1 {
		t.Errorf("delayed message delivered %d times, want 1", count["delay-me"])
	}
	// The delayed message must arrive 5ms after the base link latency.
	var delayedAt Time
	for i, m := range *got {
		if m == "delay-me" {
			delayedAt = arrivals[i]
		}
	}
	if delayedAt != 6*time.Millisecond {
		t.Errorf("delayed arrival %v, want 6ms", delayedAt)
	}

	st := net.Stats()
	if st.DroppedInjected != 1 {
		t.Errorf("DroppedInjected = %d, want 1", st.DroppedInjected)
	}
	// 5 sends + 2 injected duplicates.
	if st.Sent != 7 {
		t.Errorf("Sent = %d, want 7", st.Sent)
	}
	if st.Delivered != 6 {
		t.Errorf("Delivered = %d, want 6", st.Delivered)
	}

	// Removing the filter restores normal delivery.
	net.SetFilter(nil)
	net.Send("src", "dst", "drop-me", 10)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	count = map[Message]int{}
	for _, m := range *got {
		count[m]++
	}
	if count["drop-me"] != 1 {
		t.Errorf("filter removal did not restore delivery")
	}
}

func TestDropCauseCounters(t *testing.T) {
	sim := NewSimulator(1)
	net := NewNetwork(sim, time.Millisecond)
	collector(net, "a")
	collector(net, "b")

	net.Send("a", "ghost", "x", 1) // unknown destination
	net.Partition("a", "b")
	net.Send("a", "b", "x", 1) // partitioned
	net.Heal("a", "b")
	net.Crash("b")
	net.Send("a", "b", "x", 1) // crashed at delivery time
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}

	st := net.Stats()
	if st.DroppedUnknown != 1 || st.DroppedPartition != 1 || st.DroppedCrash != 1 {
		t.Errorf("cause counters = %+v", st)
	}
	if st.Dropped != st.DroppedUnknown+st.DroppedPartition+st.DroppedCrash+st.DroppedInjected {
		t.Errorf("cause counters do not sum to Dropped: %+v", st)
	}
}
