package simnet

import (
	"errors"
	"testing"
	"time"
)

func TestSimulatorOrdersEventsByTime(t *testing.T) {
	sim := NewSimulator(1)
	var order []int
	sim.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	sim.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	sim.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	end, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 30*time.Millisecond {
		t.Errorf("final time %v, want 30ms", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order %v, want [1 2 3]", order)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	sim := NewSimulator(1)
	var order []int
	at := 5 * time.Millisecond
	for i := 0; i < 10; i++ {
		i := i
		sim.Schedule(at, func() { order = append(order, i) })
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	sim := NewSimulator(1)
	var hits []Time
	sim.Schedule(time.Millisecond, func() {
		hits = append(hits, sim.Now())
		sim.Schedule(2*time.Millisecond, func() {
			hits = append(hits, sim.Now())
		})
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0] != time.Millisecond || hits[1] != 3*time.Millisecond {
		t.Fatalf("hits = %v", hits)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	sim := NewSimulator(1)
	ran := 0
	sim.Schedule(time.Millisecond, func() { ran++ })
	sim.Schedule(time.Hour, func() { ran++ })
	now, err := sim.RunUntil(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Errorf("ran %d events, want 1", ran)
	}
	if now != time.Second {
		t.Errorf("now = %v, want 1s", now)
	}
	if sim.Pending() != 1 {
		t.Errorf("pending = %d, want 1", sim.Pending())
	}
}

func TestEventBudget(t *testing.T) {
	sim := NewSimulator(1)
	sim.MaxEvents = 100
	var loop func()
	loop = func() { sim.Schedule(time.Microsecond, loop) }
	loop()
	if _, err := sim.Run(); !errors.Is(err, ErrEventBudget) {
		t.Fatalf("expected ErrEventBudget, got %v", err)
	}
}

func TestNetworkDelivery(t *testing.T) {
	sim := NewSimulator(1)
	net := NewNetwork(sim, 2*time.Millisecond)
	var got []string
	var at Time
	net.Register("a", HandlerFunc(func(from NodeID, msg Message) {}))
	net.Register("b", HandlerFunc(func(from NodeID, msg Message) {
		got = append(got, msg.(string))
		at = sim.Now()
	}))
	net.Send("a", "b", "hello", 100)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("got %v", got)
	}
	if at != 2*time.Millisecond {
		t.Errorf("delivered at %v, want 2ms", at)
	}
}

func TestPerPairLatency(t *testing.T) {
	sim := NewSimulator(1)
	net := NewNetwork(sim, time.Millisecond)
	net.Latency = func(from, to NodeID) time.Duration {
		if from == "a" && to == "c" {
			return 10 * time.Millisecond
		}
		return -1 // fall back to default
	}
	var bAt, cAt Time
	net.Register("a", HandlerFunc(func(NodeID, Message) {}))
	net.Register("b", HandlerFunc(func(NodeID, Message) { bAt = sim.Now() }))
	net.Register("c", HandlerFunc(func(NodeID, Message) { cAt = sim.Now() }))
	net.Send("a", "b", 1, 0)
	net.Send("a", "c", 2, 0)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if bAt != time.Millisecond {
		t.Errorf("b at %v, want 1ms (default)", bAt)
	}
	if cAt != 10*time.Millisecond {
		t.Errorf("c at %v, want 10ms (override)", cAt)
	}
}

func TestBandwidthSerializationDelay(t *testing.T) {
	sim := NewSimulator(1)
	net := NewNetwork(sim, time.Millisecond)
	net.Bandwidth = 1_000_000 // 1 MB/s
	var at Time
	net.Register("a", HandlerFunc(func(NodeID, Message) {}))
	net.Register("b", HandlerFunc(func(NodeID, Message) { at = sim.Now() }))
	net.Send("a", "b", nil, 1_000) // 1 KB -> 1ms serialization
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 2*time.Millisecond {
		t.Errorf("delivered at %v, want 2ms (1ms latency + 1ms serialization)", at)
	}
}

func TestCrashDropsMessagesAndTimers(t *testing.T) {
	sim := NewSimulator(1)
	net := NewNetwork(sim, time.Millisecond)
	delivered := 0
	timerFired := false
	net.Register("a", HandlerFunc(func(NodeID, Message) {}))
	net.Register("b", HandlerFunc(func(NodeID, Message) { delivered++ }))
	net.After("b", 5*time.Millisecond, func() { timerFired = true })
	net.Crash("b")
	net.Send("a", "b", 1, 0)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Error("crashed node received a message")
	}
	if timerFired {
		t.Error("crashed node's timer fired")
	}
	if net.Stats().Dropped == 0 {
		t.Error("drop not accounted")
	}
}

func TestRecoverRestoresDelivery(t *testing.T) {
	sim := NewSimulator(1)
	net := NewNetwork(sim, time.Millisecond)
	delivered := 0
	net.Register("a", HandlerFunc(func(NodeID, Message) {}))
	net.Register("b", HandlerFunc(func(NodeID, Message) { delivered++ }))
	net.Crash("b")
	net.Recover("b")
	net.Send("a", "b", 1, 0)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1", delivered)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	sim := NewSimulator(1)
	net := NewNetwork(sim, time.Millisecond)
	delivered := 0
	net.Register("a", HandlerFunc(func(NodeID, Message) { delivered++ }))
	net.Register("b", HandlerFunc(func(NodeID, Message) { delivered++ }))
	net.Partition("a", "b")
	net.Send("a", "b", 1, 0)
	net.Send("b", "a", 2, 0)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Error("partitioned messages were delivered")
	}
	net.Heal("a", "b")
	net.Send("a", "b", 3, 0)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered after heal = %d, want 1", delivered)
	}
}

func TestChargeDelaysProcessingAndAccumulates(t *testing.T) {
	sim := NewSimulator(1)
	net := NewNetwork(sim, time.Millisecond)
	var deliveredAt []Time
	net.Register("a", HandlerFunc(func(NodeID, Message) {}))
	net.Register("b", HandlerFunc(func(from NodeID, msg Message) {
		deliveredAt = append(deliveredAt, sim.Now())
		net.Charge("b", 5*time.Millisecond)
	}))
	net.Send("a", "b", 1, 0) // arrives at 1ms, charges until 6ms
	net.Send("a", "b", 2, 0) // arrives at 1ms, should process at 6ms
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(deliveredAt) != 2 {
		t.Fatalf("delivered %d, want 2", len(deliveredAt))
	}
	if deliveredAt[0] != time.Millisecond {
		t.Errorf("first at %v, want 1ms", deliveredAt[0])
	}
	if deliveredAt[1] != 6*time.Millisecond {
		t.Errorf("second at %v, want 6ms (queued behind CPU)", deliveredAt[1])
	}
	if got := net.BusyTotal("b"); got != 10*time.Millisecond {
		t.Errorf("BusyTotal = %v, want 10ms", got)
	}
}

func TestBusySenderDelaysEmission(t *testing.T) {
	sim := NewSimulator(1)
	net := NewNetwork(sim, time.Millisecond)
	var at Time
	net.Register("a", HandlerFunc(func(NodeID, Message) {}))
	net.Register("b", HandlerFunc(func(NodeID, Message) { at = sim.Now() }))
	net.Charge("a", 4*time.Millisecond)
	net.Send("a", "b", 1, 0) // departs at 4ms, arrives at 5ms
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*time.Millisecond {
		t.Errorf("delivered at %v, want 5ms", at)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []Time {
		sim := NewSimulator(42)
		net := NewNetwork(sim, time.Millisecond)
		net.JitterFrac = 0.3
		var times []Time
		net.Register("a", HandlerFunc(func(NodeID, Message) {}))
		net.Register("b", HandlerFunc(func(NodeID, Message) { times = append(times, sim.Now()) }))
		for i := 0; i < 20; i++ {
			net.Send("a", "b", i, 100)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return times
	}
	first := run()
	second := run()
	if len(first) != len(second) {
		t.Fatal("different event counts across identical runs")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("nondeterministic delivery time at %d: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestSendToUnknownNodeIsDropped(t *testing.T) {
	sim := NewSimulator(1)
	net := NewNetwork(sim, time.Millisecond)
	net.Register("a", HandlerFunc(func(NodeID, Message) {}))
	net.Send("a", "ghost", 1, 0)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if net.Stats().Dropped != 1 {
		t.Errorf("dropped = %d, want 1", net.Stats().Dropped)
	}
}

func BenchmarkSendDeliver(b *testing.B) {
	sim := NewSimulator(1)
	net := NewNetwork(sim, time.Millisecond)
	net.Register("a", HandlerFunc(func(NodeID, Message) {}))
	net.Register("b", HandlerFunc(func(NodeID, Message) {}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send("a", "b", i, 128)
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
