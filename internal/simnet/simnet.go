// Package simnet is a deterministic discrete-event network simulator. It
// stands in for the paper's DeterLab testbed: protocol components run as
// message handlers on a single virtual-time event loop, links impose
// latency and serialization delay, and nodes account CPU time through a
// charge model, so experiments measure protocol-induced cost (messaging
// rounds, crypto, quorum waits) reproducibly from a seed.
//
// Design notes:
//   - No goroutines in the protocol path: handlers run sequentially in
//     virtual-time order, so runs are bit-for-bit reproducible and tests
//     can assert exact orderings.
//   - Events with equal timestamps are ordered by scheduling sequence
//     number, which makes FIFO per-link delivery the default.
//   - A node that is "busy" (charged CPU time) delays both its handling of
//     arriving messages and the emission of its replies, modelling the
//     switch-CPU effects the paper measures in Fig. 11d.
package simnet

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"cicero/internal/fabric"
)

// Time is virtual time since simulation start.
type Time = time.Duration

// NodeID names a simulated node (switch, controller, host). It is the
// fabric-wide node id: simnet is one fabric.Fabric backend.
type NodeID = fabric.NodeID

// Message is an opaque protocol message. Handlers type-switch on it.
type Message = fabric.Message

// Handler processes messages delivered to a node.
type Handler = fabric.Handler

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc = fabric.HandlerFunc

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// ErrEventBudget reports that Run hit its safety cap, indicating a
// runaway protocol (e.g., a message loop).
var ErrEventBudget = errors.New("simnet: event budget exhausted")

// Simulator is the virtual-time event loop.
type Simulator struct {
	now     Time
	pending eventHeap
	seq     uint64
	rng     *rand.Rand

	// MaxEvents caps a single Run; zero means the default (100M).
	MaxEvents uint64
	processed uint64
}

// NewSimulator creates a simulator whose randomness (jitter, sampling) is
// derived from seed.
func NewSimulator(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand exposes the simulation's deterministic randomness source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Simulator) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.pending, &event{at: t, seq: s.seq, fn: fn})
}

// Schedule schedules fn after the given delay.
func (s *Simulator) Schedule(delay Time, fn func()) {
	s.At(s.now+delay, fn)
}

// MaxTime is the latest representable virtual instant. Passing it to
// RunUntil means "run to completion": no schedulable event can exceed it.
const MaxTime Time = 1<<62 - 1

// Run executes events until the queue is empty, returning the virtual time
// reached. It fails with ErrEventBudget if the cap is exceeded.
func (s *Simulator) Run() (Time, error) {
	return s.RunUntil(MaxTime)
}

// RunUntil executes events with timestamps <= deadline.
func (s *Simulator) RunUntil(deadline Time) (Time, error) {
	budget := s.MaxEvents
	if budget == 0 {
		budget = 100_000_000
	}
	for s.pending.Len() > 0 {
		next := s.pending[0]
		if next.at > deadline {
			s.now = deadline
			return s.now, nil
		}
		heap.Pop(&s.pending)
		s.now = next.at
		s.processed++
		if s.processed > budget {
			return s.now, fmt.Errorf("%w (processed %d)", ErrEventBudget, s.processed)
		}
		next.fn()
	}
	return s.now, nil
}

// Pending returns the number of queued events (for tests).
func (s *Simulator) Pending() int { return s.pending.Len() }
