package simnet

import (
	"fmt"
	"time"

	"cicero/internal/fabric"
)

// Network implements the fabric seam: the same protocol code that runs
// here on virtual time runs on the live backends of internal/livenet.
var _ fabric.Fabric = (*Network)(nil)

// LatencyFunc returns the one-way propagation latency between two nodes.
type LatencyFunc func(from, to NodeID) time.Duration

// FaultAction and Filter are the fabric-level fault-plane types; they are
// aliased here (like NodeID and Message) because the chaos engine was
// originally written against simnet. On simnet the filter runs
// synchronously on the simulator loop, so any randomness it uses must come
// from a deterministic source for runs to stay reproducible.
type (
	FaultAction = fabric.FaultAction
	Filter      = fabric.Filter
)

var _ fabric.FaultInjector = (*Network)(nil)

// Network delivers messages between registered nodes over the simulator,
// imposing latency, serialization delay, jitter, crash faults, and
// partitions, and accounting per-node CPU usage.
type Network struct {
	sim   *Simulator
	nodes map[NodeID]*node

	// Latency computes propagation delay per (from, to) pair; when nil,
	// DefaultLatency applies uniformly.
	Latency LatencyFunc
	// DefaultLatency applies when Latency is nil or returns a negative
	// value for a pair.
	DefaultLatency time.Duration
	// Bandwidth, if non-zero, adds size/Bandwidth serialization delay
	// (bytes per second).
	Bandwidth float64
	// JitterFrac adds uniform random jitter in [0, JitterFrac·latency).
	JitterFrac float64

	// partitioned is directional: partitioned[from][to] blocks messages
	// from -> to only. Partition sets both directions; PartitionOneWay one.
	partitioned map[NodeID]map[NodeID]bool

	// filter, when set, adjudicates every message after the crash and
	// partition checks (the chaos fault plane hooks in here).
	filter Filter

	// Stats
	sent             uint64
	delivered        uint64
	dropped          uint64
	bytes            uint64
	droppedCrash     uint64
	droppedPartition uint64
	droppedUnknown   uint64
	droppedInjected  uint64
}

// node is the per-node bookkeeping.
type node struct {
	id        NodeID
	handler   Handler
	crashed   bool
	busyUntil Time
	busyTotal time.Duration
}

// NewNetwork creates a network on top of sim with a default latency.
func NewNetwork(sim *Simulator, defaultLatency time.Duration) *Network {
	return &Network{
		sim:            sim,
		nodes:          make(map[NodeID]*node),
		DefaultLatency: defaultLatency,
		partitioned:    make(map[NodeID]map[NodeID]bool),
	}
}

// Sim returns the underlying simulator.
func (n *Network) Sim() *Simulator { return n.sim }

// Now returns the current virtual time (fabric clock).
func (n *Network) Now() Time { return n.sim.Now() }

// Invoke schedules fn at the current virtual time on the simulator loop,
// where every node handler also runs. It executes during Run, serially
// with the node's message handling (the fabric contract).
func (n *Network) Invoke(id NodeID, fn func()) {
	n.sim.At(n.sim.Now(), fn)
}

// Register adds a node with its message handler. Registering an existing
// id replaces its handler (used when a controller restarts).
func (n *Network) Register(id NodeID, h Handler) {
	if existing, ok := n.nodes[id]; ok {
		existing.handler = h
		existing.crashed = false
		return
	}
	n.nodes[id] = &node{id: id, handler: h}
}

// Crash marks a node as failed: it no longer receives messages or timers.
func (n *Network) Crash(id NodeID) {
	if nd, ok := n.nodes[id]; ok {
		nd.crashed = true
	}
}

// Recover clears a node's crash flag.
func (n *Network) Recover(id NodeID) {
	if nd, ok := n.nodes[id]; ok {
		nd.crashed = false
	}
}

// Crashed reports whether the node is currently failed.
func (n *Network) Crashed(id NodeID) bool {
	nd, ok := n.nodes[id]
	return ok && nd.crashed
}

// Partition severs the link between a and b in both directions.
func (n *Network) Partition(a, b NodeID) {
	if n.partitioned[a] == nil {
		n.partitioned[a] = make(map[NodeID]bool)
	}
	if n.partitioned[b] == nil {
		n.partitioned[b] = make(map[NodeID]bool)
	}
	n.partitioned[a][b] = true
	n.partitioned[b][a] = true
}

// Heal restores the link between a and b.
func (n *Network) Heal(a, b NodeID) {
	delete(n.partitioned[a], b)
	delete(n.partitioned[b], a)
}

// PartitionOneWay severs only the from -> to direction: from's messages to
// to are dropped while to can still reach from (asymmetric partition).
func (n *Network) PartitionOneWay(from, to NodeID) {
	if n.partitioned[from] == nil {
		n.partitioned[from] = make(map[NodeID]bool)
	}
	n.partitioned[from][to] = true
}

// HealOneWay restores only the from -> to direction.
func (n *Network) HealOneWay(from, to NodeID) {
	delete(n.partitioned[from], to)
}

// PartitionSet severs every link between a node in groupA and a node in
// groupB, in both directions. Links within a group are untouched.
func (n *Network) PartitionSet(groupA, groupB []NodeID) {
	for _, a := range groupA {
		for _, b := range groupB {
			n.Partition(a, b)
		}
	}
}

// HealSet restores every link between the two groups.
func (n *Network) HealSet(groupA, groupB []NodeID) {
	for _, a := range groupA {
		for _, b := range groupB {
			n.Heal(a, b)
		}
	}
}

// Partitioned reports whether messages from -> to are currently blocked.
func (n *Network) Partitioned(from, to NodeID) bool {
	return n.partitioned[from][to]
}

// SetFilter installs (or, with nil, removes) the message fault filter.
func (n *Network) SetFilter(f Filter) { n.filter = f }

// Send transmits msg of the given wire size from one node to another.
// Delivery happens after propagation latency, serialization delay, and
// jitter; it is silently dropped if the destination is crashed or the pair
// is partitioned (datagram semantics — protocols must tolerate loss).
func (n *Network) Send(from, to NodeID, msg Message, size int) {
	n.sent++
	n.bytes += uint64(size)
	dst, ok := n.nodes[to]
	if !ok {
		n.dropped++
		n.droppedUnknown++
		return
	}
	if n.partitioned[from][to] {
		n.dropped++
		n.droppedPartition++
		return
	}
	var extraDelay time.Duration
	copies := 1
	if n.filter != nil {
		act := n.filter(from, to, msg, size)
		if act.Drop {
			n.dropped++
			n.droppedInjected++
			return
		}
		if act.Replace != nil {
			msg = act.Replace
		}
		extraDelay = act.Delay
		if act.Duplicates > 0 {
			copies += act.Duplicates
			n.sent += uint64(act.Duplicates)
			n.bytes += uint64(act.Duplicates) * uint64(size)
		}
	}
	src := n.nodes[from]
	// A busy sender emits after it finishes its current processing.
	depart := n.sim.Now()
	if src != nil && src.busyUntil > depart {
		depart = src.busyUntil
	}
	for i := 0; i < copies; i++ {
		arrive := depart + extraDelay + n.linkDelay(from, to, size)
		n.deliver(dst, from, msg, arrive)
	}
}

// deliver schedules one copy of msg to arrive at dst at the given time,
// honoring crash state and receiver busy-queueing at delivery time.
func (n *Network) deliver(dst *node, from NodeID, msg Message, arrive Time) {
	n.sim.At(arrive, func() {
		if dst.crashed {
			n.dropped++
			n.droppedCrash++
			return
		}
		n.delivered++
		// A busy receiver queues the message until it is free.
		start := n.sim.Now()
		if dst.busyUntil > start {
			n.sim.At(dst.busyUntil, func() {
				if !dst.crashed {
					dst.handler.HandleMessage(from, msg)
				}
			})
			return
		}
		dst.handler.HandleMessage(from, msg)
	})
}

// linkDelay computes propagation + serialization + jitter for a message.
func (n *Network) linkDelay(from, to NodeID, size int) time.Duration {
	lat := n.DefaultLatency
	if n.Latency != nil {
		if l := n.Latency(from, to); l >= 0 {
			lat = l
		}
	}
	if n.Bandwidth > 0 && size > 0 {
		lat += time.Duration(float64(size) / n.Bandwidth * float64(time.Second))
	}
	if n.JitterFrac > 0 && lat > 0 {
		lat += time.Duration(n.sim.rng.Float64() * n.JitterFrac * float64(lat))
	}
	return lat
}

// Charge accounts cost seconds of CPU work to a node, starting no earlier
// than now: subsequent message handling and emissions from that node are
// delayed accordingly, and the time is added to its utilization counter.
func (n *Network) Charge(id NodeID, cost time.Duration) {
	nd, ok := n.nodes[id]
	if !ok || cost <= 0 {
		return
	}
	start := n.sim.Now()
	if nd.busyUntil > start {
		start = nd.busyUntil
	}
	nd.busyUntil = start + cost
	nd.busyTotal += cost
}

// BusyTotal returns the cumulative CPU time charged to a node.
func (n *Network) BusyTotal(id NodeID) time.Duration {
	if nd, ok := n.nodes[id]; ok {
		return nd.busyTotal
	}
	return 0
}

// After schedules fn on a node after delay; it is suppressed if the node
// is crashed when the timer fires.
func (n *Network) After(id NodeID, delay time.Duration, fn func()) {
	n.sim.Schedule(delay, func() {
		if nd, ok := n.nodes[id]; ok && !nd.crashed {
			fn()
		}
	})
}

// Stats summarizes traffic counters. Dropped is the total; the Dropped*
// fields break it out by cause (crashed destination, partitioned link,
// unregistered destination, chaos-filter injection).
type Stats = fabric.Stats

// Stats returns a snapshot of traffic counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:             n.sent,
		Delivered:        n.delivered,
		Dropped:          n.dropped,
		Bytes:            n.bytes,
		DroppedCrash:     n.droppedCrash,
		DroppedPartition: n.droppedPartition,
		DroppedUnknown:   n.droppedUnknown,
		DroppedInjected:  n.droppedInjected,
	}
}

// NodeIDs returns the registered node ids (order unspecified).
func (n *Network) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	return ids
}

// String renders a short traffic summary for logs.
func (n *Network) String() string {
	return fmt.Sprintf("simnet{nodes=%d sent=%d delivered=%d dropped=%d}",
		len(n.nodes), n.sent, n.delivered, n.dropped)
}
