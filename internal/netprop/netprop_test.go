package netprop

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cicero/internal/openflow"
)

// out builds an output rule.
func out(prio int, src, dst, next string) openflow.Rule {
	return openflow.Rule{
		Priority: prio,
		Match:    openflow.Match{Src: src, Dst: dst},
		Action:   openflow.Action{Type: openflow.ActionOutput, NextHop: next},
	}
}

// drop builds a drop rule.
func drop(prio int, src, dst string) openflow.Rule {
	return openflow.Rule{
		Priority: prio,
		Match:    openflow.Match{Src: src, Dst: dst},
		Action:   openflow.Action{Type: openflow.ActionDrop},
	}
}

// tablesOf builds flow tables from switch -> rules.
func tablesOf(rules map[string][]openflow.Rule) map[string]*openflow.FlowTable {
	tables := make(map[string]*openflow.FlowTable, len(rules))
	for sw, rs := range rules {
		t := openflow.NewFlowTable()
		for _, r := range rs {
			t.Add(r)
		}
		tables[sw] = t
	}
	return tables
}

func hostSet(hs ...string) map[string]bool {
	m := make(map[string]bool, len(hs))
	for _, h := range hs {
		m[h] = true
	}
	return m
}

func properties(v []Violation) map[string]int {
	m := make(map[string]int)
	for _, x := range v {
		m[x.Property]++
	}
	return m
}

func TestWalkCleanChain(t *testing.T) {
	tables := tablesOf(map[string][]openflow.Rule{
		"s1": {out(10, "*", "h2", "s2")},
		"s2": {out(10, "*", "h2", "h2")},
	})
	hosts := hostSet("h1", "h2")
	if v := Check(tables, hosts, Properties{}); len(v) != 0 {
		t.Fatalf("clean chain reported violations: %v", v)
	}
	if v := LocalVerify(tables, hosts, Properties{}); len(v) != 0 {
		t.Fatalf("clean chain failed local verification: %v", v)
	}
}

func TestWalkDetectsLoopBlackholeInconsistency(t *testing.T) {
	cases := []struct {
		name  string
		rules map[string][]openflow.Rule
		want  string
	}{
		{
			name: "loop",
			rules: map[string][]openflow.Rule{
				"s1": {out(10, "*", "h2", "s2")},
				"s2": {out(10, "*", "h2", "s1")},
			},
			want: LoopFreedom,
		},
		{
			name: "blackhole-no-rule",
			rules: map[string][]openflow.Rule{
				"s1": {out(10, "*", "h2", "s2")},
				"s2": nil,
			},
			want: BlackholeFreedom,
		},
		{
			name: "blackhole-unknown-node",
			rules: map[string][]openflow.Rule{
				"s1": {out(10, "*", "h2", "nowhere")},
			},
			want: BlackholeFreedom,
		},
		{
			name: "path-inconsistency",
			rules: map[string][]openflow.Rule{
				"s1": {out(10, "*", "h2", "h3")},
			},
			want: PathConsistency,
		},
	}
	hosts := hostSet("h1", "h2", "h3")
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tables := tablesOf(tc.rules)
			v := Check(tables, hosts, Properties{})
			if len(v) == 0 {
				t.Fatalf("expected a %s violation, got none", tc.want)
			}
			if props := properties(v); props[tc.want] == 0 {
				t.Fatalf("expected a %s violation, got %v", tc.want, v)
			}
			lv := LocalVerify(tables, hosts, Properties{})
			if len(lv) == 0 {
				t.Fatalf("local verification missed the %s violation", tc.want)
			}
		})
	}
}

func TestDropIsPolicyNotBlackhole(t *testing.T) {
	tables := tablesOf(map[string][]openflow.Rule{
		"s1": {out(10, "*", "h2", "s2")},
		"s2": {drop(20, "*", "h2")},
	})
	hosts := hostSet("h2")
	if v := Check(tables, hosts, Properties{}); len(v) != 0 {
		t.Fatalf("explicit drop flagged: %v", v)
	}
	if v := LocalVerify(tables, hosts, Properties{}); len(v) != 0 {
		t.Fatalf("explicit drop failed local verification: %v", v)
	}
}

// Regression (multi-waypoint chains): the chaos walker historically only
// modelled a single firewall waypoint; netprop must enforce ordered chains
// of arbitrary length.
func TestWaypointChains(t *testing.T) {
	// Path s1 -> w1 -> w2 -> s4 -> h2.
	chainRules := map[string][]openflow.Rule{
		"s1": {out(10, "h1", "h2", "w1")},
		"w1": {out(10, "h1", "h2", "w2")},
		"w2": {out(10, "h1", "h2", "s4")},
		"s4": {out(10, "h1", "h2", "h2")},
	}
	hosts := hostSet("h1", "h2")
	policy := func(wps ...string) Properties {
		return Properties{Waypoints: []WaypointPolicy{{
			Src: "h1", Dst: "h2", Ingress: "s1", Waypoints: wps,
		}}}
	}

	t.Run("chain-satisfied", func(t *testing.T) {
		tables := tablesOf(chainRules)
		if v := Check(tables, hosts, policy("w1", "w2")); len(v) != 0 {
			t.Fatalf("ordered chain w1,w2 should hold: %v", v)
		}
		if v := LocalVerify(tables, hosts, policy("w1", "w2")); len(v) != 0 {
			t.Fatalf("local verification rejected satisfied chain: %v", v)
		}
	})

	t.Run("chain-order-violated", func(t *testing.T) {
		// The path visits w1 then w2; requiring w2 before w1 must fail.
		tables := tablesOf(chainRules)
		v := Check(tables, hosts, policy("w2", "w1"))
		if props := properties(v); props[WaypointEnforcement] == 0 {
			t.Fatalf("out-of-order chain not flagged: %v", v)
		}
		lv := LocalVerify(tables, hosts, policy("w2", "w1"))
		if props := properties(lv); props[WaypointEnforcement] == 0 {
			t.Fatalf("local verification missed out-of-order chain: %v", lv)
		}
	})

	t.Run("waypoint-bypassed", func(t *testing.T) {
		// Reroute s1 directly to s4: both waypoints bypassed.
		rules := map[string][]openflow.Rule{
			"s1": {out(10, "h1", "h2", "s4")},
			"s4": {out(10, "h1", "h2", "h2")},
		}
		tables := tablesOf(rules)
		v := Check(tables, hosts, policy("w1", "w2"))
		if props := properties(v); props[WaypointEnforcement] == 0 {
			t.Fatalf("bypass not flagged: %v", v)
		}
		lv := LocalVerify(tables, hosts, policy("w1", "w2"))
		if props := properties(lv); props[WaypointEnforcement] == 0 {
			t.Fatalf("local verification missed bypass: %v", lv)
		}
	})

	t.Run("partial-chain-violated", func(t *testing.T) {
		// Visit w1 but route around w2.
		rules := map[string][]openflow.Rule{
			"s1": {out(10, "h1", "h2", "w1")},
			"w1": {out(10, "h1", "h2", "s4")},
			"s4": {out(10, "h1", "h2", "h2")},
		}
		tables := tablesOf(rules)
		v := Check(tables, hosts, policy("w1", "w2"))
		if props := properties(v); props[WaypointEnforcement] == 0 {
			t.Fatalf("partial chain not flagged: %v", v)
		}
		for _, x := range v {
			if x.Property == WaypointEnforcement && !strings.Contains(x.Detail, "w2") {
				t.Fatalf("violation should name the missing waypoint w2: %s", x.Detail)
			}
		}
	})

	t.Run("dropped-flow-vacuous", func(t *testing.T) {
		rules := map[string][]openflow.Rule{
			"s1": {drop(20, "h1", "h2")},
		}
		tables := tablesOf(rules)
		if v := Check(tables, hosts, policy("w1", "w2")); len(v) != 0 {
			t.Fatalf("dropped flow should be vacuously compliant: %v", v)
		}
	})

	t.Run("unprogrammed-flow-vacuous", func(t *testing.T) {
		tables := tablesOf(map[string][]openflow.Rule{"s1": nil})
		if v := Check(tables, hosts, policy("w1")); len(v) != 0 {
			t.Fatalf("unprogrammed flow should be vacuously compliant: %v", v)
		}
	})

	t.Run("wildcard-source-policy", func(t *testing.T) {
		rules := map[string][]openflow.Rule{
			"s1": {out(10, "*", "h2", "s4")},
			"s4": {out(10, "*", "h2", "h2")},
		}
		tables := tablesOf(rules)
		props := Properties{Waypoints: []WaypointPolicy{{
			Src: openflow.Wildcard, Dst: "h2", Ingress: "s1", Waypoints: []string{"w1"},
		}}}
		v := Check(tables, hosts, props)
		if ps := properties(v); ps[WaypointEnforcement] == 0 {
			t.Fatalf("wildcard-source bypass not flagged: %v", v)
		}
	})
}

func TestChainProgress(t *testing.T) {
	cases := []struct {
		chain, visited []string
		want           int
	}{
		{[]string{"a", "b"}, []string{"x", "a", "y", "b"}, 2},
		{[]string{"a", "b"}, []string{"b", "a"}, 1},
		{[]string{"a", "a"}, []string{"a"}, 1},
		{[]string{"a"}, []string{"b"}, 0},
		{nil, []string{"a"}, 0},
	}
	for i, tc := range cases {
		if got := chainProgress(tc.chain, tc.visited); got != tc.want {
			t.Errorf("case %d: chainProgress(%v, %v) = %d, want %d", i, tc.chain, tc.visited, got, tc.want)
		}
	}
}

// TestLocalVerifyMatchesWalks cross-checks the two check styles on
// randomized rule soups: local verification must flag a state as
// (in)consistent exactly when the walk checkers do.
func TestLocalVerifyMatchesWalks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nodes := []string{"s0", "s1", "s2", "s3", "s4"}
	hostsList := []string{"h0", "h1", "h2"}
	hosts := hostSet(hostsList...)
	for iter := 0; iter < 500; iter++ {
		rules := make(map[string][]openflow.Rule)
		for _, sw := range nodes {
			rules[sw] = nil
		}
		nrules := 1 + rng.Intn(8)
		for i := 0; i < nrules; i++ {
			sw := nodes[rng.Intn(len(nodes))]
			src := "*"
			if rng.Intn(2) == 0 {
				src = hostsList[rng.Intn(len(hostsList))]
			}
			dst := hostsList[rng.Intn(len(hostsList))]
			var r openflow.Rule
			if rng.Intn(6) == 0 {
				r = drop(10+rng.Intn(2)*10, src, dst)
			} else {
				next := nodes[rng.Intn(len(nodes))]
				switch rng.Intn(5) {
				case 0:
					next = hostsList[rng.Intn(len(hostsList))]
				case 1:
					next = "unknown"
				}
				r = out(10+rng.Intn(2)*10, src, dst, next)
			}
			rules[sw] = append(rules[sw], r)
		}
		var props Properties
		if rng.Intn(2) == 0 {
			props.Waypoints = []WaypointPolicy{{
				Src:       hostsList[rng.Intn(len(hostsList))],
				Dst:       hostsList[rng.Intn(len(hostsList))],
				Ingress:   nodes[rng.Intn(len(nodes))],
				Waypoints: []string{nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))]},
			}}
		}
		tables := tablesOf(rules)
		walk := Check(tables, hosts, props)
		local := LocalVerify(tables, hosts, props)
		if (len(walk) == 0) != (len(local) == 0) {
			t.Fatalf("iter %d: walk=%v local=%v rules=%v", iter, walk, local, rules)
		}
	}
}

// TestLocalCheckCatchesTamperedCertificates plants a corrupted distance in
// an otherwise valid labeling: the node-local audit must reject it.
func TestLocalCheckCatchesTamperedCertificates(t *testing.T) {
	tables := tablesOf(map[string][]openflow.Rule{
		"s1": {out(10, "*", "h2", "s2")},
		"s2": {out(10, "*", "h2", "h2")},
	})
	hosts := hostSet("h2")
	certs, v := Certify(tables, hosts, Properties{})
	if len(v) != 0 {
		t.Fatalf("setup not clean: %v", v)
	}
	c := certs.Cert(ProbeSrc, "h2", "s1")
	if c == nil {
		t.Fatal("missing certificate at s1")
	}
	c.Dist = 99
	if audit := certs.LocalCheck(tables, hosts, Properties{}); len(audit) == 0 {
		t.Fatal("tampered certificate passed the local audit")
	}
}

func TestTracePathOutcomes(t *testing.T) {
	tables := tablesOf(map[string][]openflow.Rule{
		"s1": {out(10, "*", "h2", "s2")},
		"s2": {out(10, "*", "h2", "h2")},
		"l1": {out(10, "*", "h3", "l2")},
		"l2": {out(10, "*", "h3", "l1")},
	})
	hosts := hostSet("h2", "h3")
	cases := []struct {
		sw, dst string
		outcome Outcome
	}{
		{"s1", "h2", OutcomeDelivered},
		{"l1", "h3", OutcomeLoop},
		{"s1", "h9", OutcomeNoRule},
	}
	for _, tc := range cases {
		tr := TracePath(tables, hosts, tc.sw, ProbeSrc, tc.dst)
		if tr.Outcome != tc.outcome {
			t.Errorf("TracePath(%s, %s) = %v, want %v", tc.sw, tc.dst, tr.Outcome, tc.outcome)
		}
	}
	tr := TracePath(tables, hosts, "s1", ProbeSrc, "h2")
	if fmt.Sprint(tr.Visited) != "[s1 s2]" || tr.To != "h2" {
		t.Errorf("unexpected trace: %+v", tr)
	}
}
