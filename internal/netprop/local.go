package netprop

import (
	"fmt"
	"sort"
	"strings"

	"cicero/internal/openflow"
)

// This file implements certificate-based local verification (Foerster &
// Schmid, "Local Verification for Global Guarantees"): instead of walking
// every forwarding chain end to end, each (packet class, switch) pair is
// labeled with a small certificate — distance to delivery, whether the
// chain delivers, and waypoint-chain progress — such that a purely local
// check of every node against only its own rule and its successor's
// certificate implies the global walk properties:
//
//   - dist(x) = dist(next(x)) + 1 with dist(terminal) = 1 admits a
//     solution only on loop-free chains (a cycle would need an infinite
//     descent), so certifiability <=> loop freedom;
//   - every non-terminal certificate requires the successor to hold a
//     covering rule (or be the class destination), so certifiability
//     <=> blackhole freedom;
//   - delivery terminals certify only when the delivering host is the
//     class destination, so certifiability <=> path consistency;
//   - wpStart(x) = wpStart(next(x)) - [x == chain[wpStart(next(x))-1]]
//     tracks, backward, the smallest chain index whose suffix is
//     traversed from x; a delivering ingress certifies a waypoint policy
//     only when wpStart(ingress) == 0.
//
// The synthesis engine certifies every intermediate state of a plan this
// way before handing the plan to the scheduler.

// class is one packet equivalence class probed by the checkers: a
// concrete (src, dst) pair (src may be the synthetic ProbeSrc for
// wildcard-source rules).
type class struct {
	src, dst string
}

// Certificate labels one (class, switch) with the local evidence that its
// forwarding chain is correct.
type Certificate struct {
	// Drop marks an explicit drop rule (a policy terminal: the chain ends
	// here by intent, no further obligations).
	Drop bool
	// Delivers reports whether the chain from here reaches the class
	// destination (false after a downstream drop).
	Delivers bool
	// Dist is the number of hops to delivery (1 = this switch outputs to
	// the destination host). 0 when Drop or !Delivers.
	Dist int
	// WpStart maps a policy index (into the Properties.Waypoints slice)
	// to the smallest chain index i such that Waypoints[i:] is traversed,
	// in order, by the chain from this switch. len(chain) means no
	// waypoint is visited downstream; 0 at the ingress means the full
	// chain is enforced. Only policies matching the class are present.
	WpStart map[int]int
}

// Certificates is a complete labeling of the reachable (class, switch)
// space for one table state, plus the roots the walk checkers would start
// from (kept so LocalCheck covers exactly what Check covers).
type Certificates struct {
	classes []class
	// roots[c] lists the switches whose own rules probe class c (the walk
	// checkers' start points) — policy ingresses included.
	roots map[class][]string
	// certs[c][sw] is nil when the switch has a covering rule for c but
	// the chain from it admits no certificate (a violation was reported).
	// Switches with no covering rule for c are absent.
	certs map[class]map[string]*Certificate
}

// Cert returns the certificate for (src, dst) at sw, or nil.
func (cs *Certificates) Cert(src, dst, sw string) *Certificate {
	m := cs.certs[class{src, dst}]
	if m == nil {
		return nil
	}
	return m[sw]
}

// certify is the working state of one Certify pass.
type certify struct {
	tables map[string]*openflow.FlowTable
	hosts  map[string]bool
	props  Properties
	out    *Certificates
	rep    *collector

	// state: 0 unvisited, 1 on the DFS stack, 2 done.
	state map[class]map[string]int
}

// classPolicies returns the indices of the policies whose probe matches
// the class.
func classPolicies(props Properties, c class) []int {
	var out []int
	for i, p := range props.Waypoints {
		if len(p.Waypoints) == 0 {
			continue
		}
		if p.probe() == c.src && p.Dst == c.dst {
			out = append(out, i)
		}
	}
	return out
}

// Certify builds local certificates for every chain the walk checkers
// would traverse and returns them with the violations found along the way
// (chains that admit no certificate). An empty violation list means every
// walk property and waypoint policy holds.
func Certify(tables map[string]*openflow.FlowTable, hosts map[string]bool, props Properties) (*Certificates, []Violation) {
	cz := &certify{
		tables: tables,
		hosts:  hosts,
		props:  props,
		out: &Certificates{
			roots: make(map[class][]string),
			certs: make(map[class]map[string]*Certificate),
		},
		rep:   &collector{seen: make(map[string]bool)},
		state: make(map[class]map[string]int),
	}

	// Roots: every installed output rule probes its own class from its own
	// switch (exactly WalkTables' coverage)...
	ids := make([]string, 0, len(tables))
	for id := range tables {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	addRoot := func(c class, sw string) {
		if _, ok := cz.out.certs[c]; !ok {
			cz.out.certs[c] = make(map[string]*Certificate)
			cz.state[c] = make(map[string]int)
			cz.out.classes = append(cz.out.classes, c)
		}
		cz.out.roots[c] = append(cz.out.roots[c], sw)
	}
	for _, swID := range ids {
		for _, rule := range tables[swID].Rules() {
			if rule.Action.Type != openflow.ActionOutput {
				continue
			}
			if rule.Match.Dst == openflow.Wildcard {
				continue
			}
			src := rule.Match.Src
			if src == openflow.Wildcard {
				src = ProbeSrc
			}
			addRoot(class{src, rule.Match.Dst}, swID)
		}
	}
	// ... plus every waypoint policy probes its class from its ingress.
	for _, p := range props.Waypoints {
		if len(p.Waypoints) == 0 {
			continue
		}
		addRoot(class{p.probe(), p.Dst}, p.Ingress)
	}

	for _, c := range cz.out.classes {
		for _, root := range cz.out.roots[c] {
			cz.visit(c, root, root)
		}
	}
	cz.checkPolicies()
	return cz.out, cz.rep.violations
}

// visit certifies (c, sw) by DFS over the chain, memoized. entered names
// the root that first pulled this node in (for violation messages only).
// It returns the certificate, or nil plus ok=false when the switch has no
// covering rule for the class (the obligation then sits with the caller —
// a root walk is vacuous there, a mid-chain hop is a blackhole).
func (cz *certify) visit(c class, sw, entered string) (*Certificate, bool) {
	table := cz.tables[sw]
	if table == nil {
		return nil, false
	}
	if _, ok := table.Lookup(c.src, c.dst); !ok {
		return nil, false
	}
	switch cz.state[c][sw] {
	case 2:
		cert := cz.out.certs[c][sw]
		return cert, true
	case 1:
		// Back edge: the chain re-enters a switch still on the DFS stack.
		cz.rep.report(LoopFreedom, fmt.Sprintf("cert|%s|%s|%s", sw, c.src, c.dst),
			fmt.Sprintf("no loop-free certificate for class %s->%s: chain revisits %s (entered at %s)", c.src, c.dst, sw, entered), c.dst)
		return nil, true // covering rule exists, but no certificate
	}
	cz.state[c][sw] = 1
	cert := cz.certOf(c, sw, entered)
	cz.state[c][sw] = 2
	cz.out.certs[c][sw] = cert
	return cert, true
}

// certOf computes the local certificate of (c, sw) from its own rule and
// its successor's certificate, reporting the violation when none exists.
// The caller guarantees sw has a covering rule for c.
func (cz *certify) certOf(c class, sw, entered string) *Certificate {
	rule, _ := cz.tables[sw].Lookup(c.src, c.dst)
	policies := classPolicies(cz.props, c)
	if rule.Action.Type == openflow.ActionDrop {
		return &Certificate{Drop: true, WpStart: wpBase(cz.props, policies)}
	}
	next := rule.Action.NextHop
	if cz.hosts[next] {
		if next != c.dst {
			cz.rep.report(PathConsistency, fmt.Sprintf("cert|%s|%s|%s", sw, c.src, c.dst),
				fmt.Sprintf("no certificate for class %s->%s: %s delivers to %s (entered at %s)", c.src, c.dst, sw, next, entered), c.dst)
			return nil
		}
		cert := &Certificate{Delivers: true, Dist: 1, WpStart: wpBase(cz.props, policies)}
		advanceWp(cz.props, policies, sw, cert)
		return cert
	}
	if cz.tables[next] == nil {
		cz.rep.report(BlackholeFreedom, fmt.Sprintf("cert|%s|%s|%s", sw, c.src, c.dst),
			fmt.Sprintf("no certificate for class %s->%s: %s forwards to unknown node %s (entered at %s)", c.src, c.dst, sw, next, entered), c.dst)
		return nil
	}
	sub, hasRule := cz.visit(c, next, entered)
	if !hasRule {
		cz.rep.report(BlackholeFreedom, fmt.Sprintf("cert|%s|%s|%s", sw, c.src, c.dst),
			fmt.Sprintf("no certificate for class %s->%s: successor %s has no covering rule (entered at %s)", c.src, c.dst, next, entered), c.dst)
		return nil
	}
	if sub == nil {
		// The successor chain is broken; the violation was reported there.
		return nil
	}
	cert := &Certificate{
		Drop:     false,
		Delivers: sub.Delivers,
		WpStart:  make(map[int]int, len(sub.WpStart)),
	}
	if sub.Delivers {
		cert.Dist = sub.Dist + 1
	}
	for i, s := range sub.WpStart {
		cert.WpStart[i] = s
	}
	advanceWp(cz.props, policies, sw, cert)
	return cert
}

// wpBase returns the terminal waypoint progress: nothing matched yet.
func wpBase(props Properties, policies []int) map[int]int {
	if len(policies) == 0 {
		return nil
	}
	m := make(map[int]int, len(policies))
	for _, i := range policies {
		m[i] = len(props.Waypoints[i].Waypoints)
	}
	return m
}

// advanceWp folds this switch into the backward chain matching: if the
// switch is the chain element just before the already-matched suffix, the
// suffix grows by one.
func advanceWp(props Properties, policies []int, sw string, cert *Certificate) {
	for _, i := range policies {
		chain := props.Waypoints[i].Waypoints
		s := cert.WpStart[i]
		if s > 0 && chain[s-1] == sw {
			cert.WpStart[i] = s - 1
		}
	}
}

// checkPolicies evaluates every waypoint policy against its ingress
// certificate: a delivering ingress whose certificate does not witness the
// full chain is a violation.
func (cz *certify) checkPolicies() {
	for i, p := range cz.props.Waypoints {
		if len(p.Waypoints) == 0 {
			continue
		}
		c := class{p.probe(), p.Dst}
		cert := cz.out.certs[c][p.Ingress]
		if cert == nil || !cert.Delivers {
			continue // vacuous: not programmed, dropped, or already broken
		}
		if s := cert.WpStart[i]; s > 0 {
			cz.rep.report(WaypointEnforcement,
				fmt.Sprintf("cert|%s|%s|%s|%d", p.Ingress, p.Src, p.Dst, i),
				fmt.Sprintf("ingress certificate for %s->%s at %s does not witness waypoint %s (chain %s)",
					p.Src, p.Dst, p.Ingress, p.Waypoints[s-1], strings.Join(p.Waypoints, ",")),
				p.Dst)
		}
	}
}

// LocalCheck revalidates a certificate set node by node: every certified
// (class, switch) is checked purely against its own rule and its
// successor's certificate — no walks. It returns the violations (an
// inconsistent or missing local equation). A clean Certify output always
// passes; the check exists so an independently supplied (or tampered)
// labeling can be audited in O(rules) time.
func (cs *Certificates) LocalCheck(tables map[string]*openflow.FlowTable, hosts map[string]bool, props Properties) []Violation {
	rep := &collector{seen: make(map[string]bool)}
	for _, c := range cs.classes {
		policies := classPolicies(props, c)
		sws := make([]string, 0, len(cs.certs[c]))
		for sw := range cs.certs[c] {
			sws = append(sws, sw)
		}
		sort.Strings(sws)
		for _, sw := range sws {
			cert := cs.certs[c][sw]
			if cert == nil {
				rep.report(localProperty(c), fmt.Sprintf("local|%s|%s|%s", sw, c.src, c.dst),
					fmt.Sprintf("class %s->%s has no certificate at %s", c.src, c.dst, sw), c.dst)
				continue
			}
			want := localRecompute(tables, hosts, props, policies, c, sw, cs)
			if want == nil || !certEqual(cert, want) {
				rep.report(localProperty(c), fmt.Sprintf("local|%s|%s|%s", sw, c.src, c.dst),
					fmt.Sprintf("certificate at %s for class %s->%s fails its local equation", sw, c.src, c.dst), c.dst)
			}
		}
	}
	// Policy condition at the ingresses.
	for i, p := range props.Waypoints {
		if len(p.Waypoints) == 0 {
			continue
		}
		cert := cs.certs[class{p.probe(), p.Dst}][p.Ingress]
		if cert == nil || !cert.Delivers {
			continue
		}
		if s := cert.WpStart[i]; s > 0 {
			rep.report(WaypointEnforcement, fmt.Sprintf("local|%s|%s|%s|%d", p.Ingress, p.Src, p.Dst, i),
				fmt.Sprintf("ingress certificate for %s->%s at %s does not witness waypoint %s",
					p.Src, p.Dst, p.Ingress, p.Waypoints[s-1]), p.Dst)
		}
	}
	return rep.violations
}

// localProperty names the property a missing certificate breaks; without
// replaying the chain the specific cause is unknown, so the generic
// blackhole-freedom label is used (the Certify pass pinpoints it).
func localProperty(class) string { return BlackholeFreedom }

// localRecompute derives the certificate (c, sw) must carry from the
// node-local view: its own rule plus the successor's stored certificate.
func localRecompute(tables map[string]*openflow.FlowTable, hosts map[string]bool, props Properties, policies []int, c class, sw string, cs *Certificates) *Certificate {
	table := tables[sw]
	if table == nil {
		return nil
	}
	rule, ok := table.Lookup(c.src, c.dst)
	if !ok {
		return nil
	}
	if rule.Action.Type == openflow.ActionDrop {
		return &Certificate{Drop: true, WpStart: wpBase(props, policies)}
	}
	next := rule.Action.NextHop
	if hosts[next] {
		if next != c.dst {
			return nil
		}
		cert := &Certificate{Delivers: true, Dist: 1, WpStart: wpBase(props, policies)}
		advanceWp(props, policies, sw, cert)
		return cert
	}
	sub := cs.certs[c][next]
	if sub == nil {
		return nil
	}
	cert := &Certificate{Delivers: sub.Delivers, WpStart: make(map[int]int, len(sub.WpStart))}
	if sub.Delivers {
		cert.Dist = sub.Dist + 1
	}
	for i, s := range sub.WpStart {
		cert.WpStart[i] = s
	}
	advanceWp(props, policies, sw, cert)
	return cert
}

// certEqual compares two certificates field by field.
func certEqual(a, b *Certificate) bool {
	if a.Drop != b.Drop || a.Delivers != b.Delivers || a.Dist != b.Dist || len(a.WpStart) != len(b.WpStart) {
		return false
	}
	for i, s := range a.WpStart {
		if b.WpStart[i] != s {
			return false
		}
	}
	return true
}

// LocalVerify certifies the tables and, when certification succeeds,
// audits the certificates with the node-local check. It returns the
// violations from whichever stage failed; an empty result is a proof that
// all walk properties and waypoint policies hold.
func LocalVerify(tables map[string]*openflow.FlowTable, hosts map[string]bool, props Properties) []Violation {
	certs, violations := Certify(tables, hosts, props)
	if len(violations) > 0 {
		return violations
	}
	return certs.LocalCheck(tables, hosts, props)
}
