// Package netprop checks global data-plane properties — loop freedom,
// blackhole freedom, path consistency, waypoint enforcement — over
// arbitrary sets of flow tables. It is the property engine shared by the
// chaos invariant plane (internal/chaos), which lifted its flow-table
// walkers into this package, and the update-synthesis engine
// (internal/synthesis), which uses the same checkers to validate every
// intermediate state of a candidate update ordering.
//
// Two complementary check styles are provided:
//
//   - Walk checks (WalkTables, CheckWaypoints, Check): follow every
//     installed forwarding chain hop by hop and report violations. These
//     are the original chaos walkers; their violation strings and dedup
//     keys are frozen so chaos campaign traces stay bit-identical.
//   - Local verification (Certify, LocalCheck, LocalVerify): following
//     Foerster & Schmid's local-verification line of work, each
//     (switch, packet class) is assigned a small certificate — distance
//     to delivery plus waypoint progress — such that a purely local check
//     of every node against only its own rule and its successor's
//     certificate implies the global properties. This is what certifies a
//     synthesized update plan without re-walking the world per state.
package netprop

import (
	"fmt"
	"sort"

	"cicero/internal/openflow"
)

// Property names. The walk-property values are frozen: they double as the
// chaos invariant names recorded in campaign traces.
const (
	// BlackholeFreedom: following any installed output rule hop by hop
	// never reaches a switch with no matching rule or an unknown node.
	BlackholeFreedom = "blackhole-freedom"
	// LoopFreedom: no forwarding walk revisits a switch.
	LoopFreedom = "loop-freedom"
	// PathConsistency: a forwarding walk for destination d that reaches a
	// host reaches exactly d.
	PathConsistency = "path-consistency"
	// WaypointEnforcement: a delivered packet traversed its policy's
	// waypoint chain in order.
	WaypointEnforcement = "waypoint-enforcement"
)

// ProbeSrc is the concrete source used to walk wildcard-source rules. The
// value is frozen: it appears in chaos campaign traces.
const ProbeSrc = "chaos-probe"

// ReportFunc records one violation; implementations deduplicate. The
// dedup key is unique per (property, offending location); the trace token
// links the violation to related trace events in the chaos engine.
type ReportFunc func(property, dedupKey, detail, traceToken string)

// Violation is one recorded property breach.
type Violation struct {
	Property string
	DedupKey string
	Detail   string
	Token    string
}

// String renders the violation for reports.
func (v Violation) String() string { return v.Property + ": " + v.Detail }

// WalkTables walks every installed output rule to its destination over the
// given flow tables: each hop must find a covering rule (blackhole
// freedom), never revisit a switch (loop freedom), and terminate at
// exactly the rule's destination (path consistency). The tables may be a
// simulator's own (safe on the sim loop), a quiesced snapshot taken from a
// live fabric, or a synthesis engine's scratch state — every caller shares
// this one walker.
func WalkTables(tables map[string]*openflow.FlowTable, hosts map[string]bool, report ReportFunc) {
	ids := make([]string, 0, len(tables))
	for id := range tables {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, swID := range ids {
		for _, rule := range tables[swID].Rules() {
			if rule.Action.Type != openflow.ActionOutput {
				continue
			}
			dst := rule.Match.Dst
			if dst == openflow.Wildcard {
				continue
			}
			src := rule.Match.Src
			if src == openflow.Wildcard {
				src = ProbeSrc
			}
			WalkTable(tables, hosts, swID, src, dst, report)
		}
	}
}

// WalkTable follows the forwarding chain for (src, dst) starting at sw.
func WalkTable(tables map[string]*openflow.FlowTable, hosts map[string]bool, sw, src, dst string, report ReportFunc) {
	visited := map[string]bool{}
	cur := sw
	for {
		if visited[cur] {
			report(LoopFreedom, fmt.Sprintf("%s|%s|%s", sw, cur, dst),
				fmt.Sprintf("forwarding loop for dst %s revisits %s (entered at %s)", dst, cur, sw), dst)
			return
		}
		visited[cur] = true
		table := tables[cur]
		if table == nil {
			report(BlackholeFreedom, fmt.Sprintf("%s|%s|%s", sw, cur, dst),
				fmt.Sprintf("rule chain for dst %s forwards to unknown node %s (entered at %s)", dst, cur, sw), dst)
			return
		}
		rule, ok := table.Lookup(src, dst)
		if !ok {
			report(BlackholeFreedom, fmt.Sprintf("%s|%s|%s", sw, cur, dst),
				fmt.Sprintf("blackhole: %s has no rule for dst %s (chain entered at %s)", cur, dst, sw), dst)
			return
		}
		if rule.Action.Type == openflow.ActionDrop {
			return // an explicit drop is policy, not a blackhole
		}
		next := rule.Action.NextHop
		if hosts[next] {
			if next != dst {
				report(PathConsistency, fmt.Sprintf("%s|%s|%s", sw, next, dst),
					fmt.Sprintf("packet for %s delivered to %s (chain entered at %s)", dst, next, sw), dst)
			}
			return
		}
		cur = next
	}
}

// Outcome classifies where a forwarding walk ended.
type Outcome int

// Walk outcomes. Start at 1 so the zero value is invalid.
const (
	// OutcomeDelivered: the walk reached a host (To names it).
	OutcomeDelivered Outcome = iota + 1
	// OutcomeDropped: an explicit drop rule terminated the walk.
	OutcomeDropped
	// OutcomeBlackhole: a switch had no covering rule, or the next hop is
	// an unknown node.
	OutcomeBlackhole
	// OutcomeLoop: the walk revisited a switch.
	OutcomeLoop
	// OutcomeNoRule: the starting switch itself has no covering rule (the
	// flow is not programmed from here; vacuous for ingress policies).
	OutcomeNoRule
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeDelivered:
		return "delivered"
	case OutcomeDropped:
		return "dropped"
	case OutcomeBlackhole:
		return "blackhole"
	case OutcomeLoop:
		return "loop"
	case OutcomeNoRule:
		return "no-rule"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Trace is the result of tracing one packet's forwarding chain.
type Trace struct {
	// Visited lists the switches traversed, in order, starting with the
	// entry switch (present even when it has no covering rule).
	Visited []string
	Outcome Outcome
	// To is the delivering host for OutcomeDelivered, the revisited switch
	// for OutcomeLoop, and the ruleless/unknown node for OutcomeBlackhole.
	To string
}

// TracePath follows the forwarding chain for (src, dst) from sw and
// returns the visited switch sequence and how the walk ended. It is the
// collecting sibling of WalkTable, used by the waypoint checker and the
// synthesis engine's certificates.
func TracePath(tables map[string]*openflow.FlowTable, hosts map[string]bool, sw, src, dst string) Trace {
	tr := Trace{}
	visited := map[string]bool{}
	cur := sw
	for {
		if visited[cur] {
			tr.Outcome, tr.To = OutcomeLoop, cur
			return tr
		}
		visited[cur] = true
		tr.Visited = append(tr.Visited, cur)
		table := tables[cur]
		if table == nil {
			tr.Outcome, tr.To = OutcomeBlackhole, cur
			return tr
		}
		rule, ok := table.Lookup(src, dst)
		if !ok {
			if cur == sw {
				tr.Outcome, tr.To = OutcomeNoRule, cur
			} else {
				tr.Outcome, tr.To = OutcomeBlackhole, cur
			}
			return tr
		}
		if rule.Action.Type == openflow.ActionDrop {
			tr.Outcome, tr.To = OutcomeDropped, cur
			return tr
		}
		next := rule.Action.NextHop
		if hosts[next] {
			tr.Outcome, tr.To = OutcomeDelivered, next
			return tr
		}
		cur = next
	}
}

// Properties is a property set to check beyond the three walk invariants
// (which are always on).
type Properties struct {
	Waypoints []WaypointPolicy
}

// Check runs every property checker over the tables and returns the
// deduplicated violations: the three walk invariants plus waypoint
// enforcement for the given policies.
func Check(tables map[string]*openflow.FlowTable, hosts map[string]bool, props Properties) []Violation {
	c := &collector{seen: make(map[string]bool)}
	WalkTables(tables, hosts, c.report)
	CheckWaypoints(tables, hosts, props.Waypoints, c.report)
	return c.violations
}

// collector gathers deduplicated violations behind a ReportFunc.
type collector struct {
	seen       map[string]bool
	violations []Violation
}

func (c *collector) report(property, dedupKey, detail, traceToken string) {
	key := property + "|" + dedupKey
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.violations = append(c.violations, Violation{
		Property: property,
		DedupKey: dedupKey,
		Detail:   detail,
		Token:    traceToken,
	})
}
