package netprop

import (
	"fmt"
	"strings"

	"cicero/internal/openflow"
)

// WaypointPolicy requires packets of one flow to traverse a chain of
// switches in order before delivery. Policies are ingress-scoped: the
// checked walk starts at the switch where the flow enters the network
// (suffix walks past an already-traversed waypoint are legitimately
// waypoint-free, so only the ingress walk is meaningful). The chain is a
// sequence, not a single node: a packet must visit Waypoints[0], then —
// anywhere later on its path — Waypoints[1], and so on. A single-element
// chain reproduces the classic firewall-waypoint property.
type WaypointPolicy struct {
	// Src is the flow's source host, or openflow.Wildcard for any source
	// (checked with the probe source).
	Src string
	// Dst is the flow's destination host.
	Dst string
	// Ingress is the switch where the flow enters the network.
	Ingress string
	// Waypoints is the ordered switch chain the packet must traverse.
	Waypoints []string
}

// String renders the policy for reports.
func (p WaypointPolicy) String() string {
	return fmt.Sprintf("%s->%s via %s from %s", p.Src, p.Dst, strings.Join(p.Waypoints, ","), p.Ingress)
}

// probe returns the concrete source used to walk the policy's flow.
func (p WaypointPolicy) probe() string {
	if p.Src == openflow.Wildcard {
		return ProbeSrc
	}
	return p.Src
}

// chainProgress greedily matches the waypoint chain against a visited
// switch sequence and returns how many chain elements were matched in
// order.
func chainProgress(chain, visited []string) int {
	matched := 0
	for _, sw := range visited {
		if matched < len(chain) && sw == chain[matched] {
			matched++
		}
	}
	return matched
}

// CheckWaypoints verifies every policy over the tables: if the ingress
// walk delivers the packet to the policy's destination, the visited switch
// sequence must contain the full waypoint chain in order. Walks that do
// not deliver (no ingress rule, an explicit drop, a blackhole or loop) are
// vacuously compliant — the packet never bypassed the chain; blackholes
// and loops are the other checkers' findings.
func CheckWaypoints(tables map[string]*openflow.FlowTable, hosts map[string]bool, policies []WaypointPolicy, report ReportFunc) {
	for i, p := range policies {
		if len(p.Waypoints) == 0 {
			continue
		}
		tr := TracePath(tables, hosts, p.Ingress, p.probe(), p.Dst)
		if tr.Outcome != OutcomeDelivered || tr.To != p.Dst {
			continue
		}
		matched := chainProgress(p.Waypoints, tr.Visited)
		if matched < len(p.Waypoints) {
			report(WaypointEnforcement,
				fmt.Sprintf("%s|%s|%s|%d", p.Ingress, p.Src, p.Dst, i),
				fmt.Sprintf("packet %s->%s delivered via %s without traversing waypoint %s (chain %s, matched %d/%d)",
					p.Src, p.Dst, strings.Join(tr.Visited, "->"), p.Waypoints[matched],
					strings.Join(p.Waypoints, ","), matched, len(p.Waypoints)),
				p.Dst)
		}
	}
}
