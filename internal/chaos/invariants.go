package chaos

import (
	"crypto/sha256"
	"fmt"

	"cicero/internal/audit"
	"cicero/internal/controlplane"
	"cicero/internal/netprop"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/simnet"
	"cicero/internal/tcrypto/merkle"
)

// Violation is one invariant breach with the minimal related sub-trace.
type Violation struct {
	Seed      int64
	T         simnet.Time
	Invariant string
	Detail    string
	Trace     []TraceEvent
}

// String renders a violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("seed=%d t=%v %s: %s", v.Seed, v.T, v.Invariant, v.Detail)
}

// Invariant names.
const (
	// InvNoForgedRule: every update a switch applies as valid was
	// committed (ledgered) by at least one honest controller before any
	// share for it could have been sent — threshold-signature safety.
	InvNoForgedRule = "no-forged-rule"
	// InvBlackholeFreedom: following any installed output rule hop by hop
	// never reaches a switch with no matching rule or an unknown node.
	// Checked by the shared property engine (internal/netprop).
	InvBlackholeFreedom = netprop.BlackholeFreedom
	// InvLoopFreedom: no forwarding walk revisits a switch.
	InvLoopFreedom = netprop.LoopFreedom
	// InvPathConsistency: a forwarding walk for destination d that reaches
	// a host reaches exactly d.
	InvPathConsistency = netprop.PathConsistency
	// InvBFTAgreement: honest controllers of a domain deliver the same
	// events in the same order (total-order safety of the atomic
	// broadcast), observed through their hash-chained audit ledgers.
	InvBFTAgreement = "bft-agreement"
	// InvBatchProof: every batch-amortized update a switch applies as
	// valid must carry a Merkle inclusion proof that actually binds the
	// update's content to the claimed batch root. The checker re-runs the
	// proof independently of the switch (so the verification-bypass canary
	// and any forged-root or content-splice mutation surface here).
	InvBatchProof = "forged-batch-proof"
)

// checker evaluates the invariant plane. All its entry points run
// synchronously on the simulator loop.
type checker struct {
	r *run

	// legit holds SHA-256 of every canonical update byte-string ledgered
	// by an honest controller; ledgerPos tracks the incremental scan.
	legit     map[[32]byte]bool
	ledgerPos map[simnet.NodeID]int

	// seen dedups violations so a persistent bad state reports once.
	seen       map[string]bool
	violations []Violation

	// metaSeen tracks each switch store's adopted version vector across
	// sweeps (metadata rollback detection).
	metaSeen map[string]metaVersions

	hosts map[string]bool
}

func newChecker(r *run) *checker {
	ck := &checker{
		r:         r,
		legit:     make(map[[32]byte]bool),
		ledgerPos: make(map[simnet.NodeID]int),
		seen:      make(map[string]bool),
		metaSeen:  make(map[string]metaVersions),
		hosts:     make(map[string]bool, len(r.hosts)),
	}
	for _, h := range r.hosts {
		ck.hosts[h] = true
	}
	return ck
}

// honestControllers returns the domain's controllers excluding the
// designated Byzantine one (its ledger proves nothing and its lies must
// not vouch for forged updates).
func (ck *checker) honestControllers() []*controlplane.Controller {
	dom := ck.r.net.Domains[0]
	out := make([]*controlplane.Controller, 0, len(dom.Controllers))
	for _, c := range dom.Controllers {
		if simnet.NodeID(c.ID()) == ck.r.byz {
			continue
		}
		out = append(out, c)
	}
	return out
}

// report records a deduplicated violation with its related sub-trace.
func (ck *checker) report(invariant, dedupKey, detail, traceToken string) {
	key := invariant + "|" + dedupKey
	if ck.seen[key] {
		return
	}
	ck.seen[key] = true
	now := ck.r.net.Sim.Now()
	ck.r.tr.Add(now, "violation", invariant+": "+detail)
	ck.violations = append(ck.violations, Violation{
		Seed:      ck.r.seed,
		T:         now,
		Invariant: invariant,
		Detail:    detail,
		Trace:     ck.r.tr.Related(traceToken, 12),
	})
}

// onApply observes every switch apply decision (wired through the
// dataplane ApplyHook). Soundness of the forged-rule check: in threshold
// mode an update applies only after quorum-many distinct share indices,
// of which at most f belong to Byzantine controllers, and every honest
// controller appends the update to its ledger before sending its share —
// so by apply time the canonical bytes must already be in some honest
// ledger. A valid apply whose bytes no honest controller ever committed is
// a forged installation.
func (ck *checker) onApply(sw string, id openflow.MsgID, phase uint64, mods []openflow.FlowMod, valid bool) {
	now := ck.r.net.Sim.Now()
	ck.r.tr.Add(now, "apply", fmt.Sprintf("sw=%s update=%s phase=%d mods=%d valid=%v", sw, id, phase, len(mods), valid))
	if !valid {
		return // a rejected update is the protocol working
	}
	ck.refreshLegit()
	digest := sha256.Sum256(openflow.CanonicalUpdateBytes(id, phase, mods))
	if !ck.legit[digest] {
		ck.report(InvNoForgedRule, fmt.Sprintf("%s|%s", sw, id),
			fmt.Sprintf("switch %s applied update %s (phase %d) that no honest controller committed", sw, id, phase),
			id.String())
	}
}

// onBatchApply observes every batch-amortized apply decision (wired
// through the dataplane BatchApplyHook). It re-verifies the Merkle
// inclusion proof with its own hashing — never trusting the switch's
// verdict — so a switch that applied forged batch content (bypassed or
// broken verification) is caught even though the root signature itself
// only covers the root.
func (ck *checker) onBatchApply(sw string, m protocol.MsgBatchUpdate, valid bool) {
	now := ck.r.net.Sim.Now()
	ck.r.tr.Add(now, "batch-apply", fmt.Sprintf("sw=%s update=%s phase=%d leaf=%d/%d valid=%v",
		sw, m.UpdateID, m.Phase, m.LeafIndex, m.LeafCount, valid))
	if !valid {
		return // a rejected batch update is the protocol working
	}
	leaf := openflow.CanonicalUpdateBytes(m.UpdateID, m.Phase, m.Mods)
	if !merkle.Verify(m.BatchRoot, leaf, m.LeafIndex, m.LeafCount, m.Proof) {
		ck.report(InvBatchProof, fmt.Sprintf("%s|%s", sw, m.UpdateID),
			fmt.Sprintf("switch %s applied batched update %s (phase %d) whose inclusion proof does not verify against root %x",
				sw, m.UpdateID, m.Phase, m.BatchRoot),
			m.UpdateID.String())
	}
}

// refreshLegit ingests newly ledgered updates from honest controllers.
func (ck *checker) refreshLegit() {
	for _, c := range ck.honestControllers() {
		recs := c.AuditRecords()
		id := simnet.NodeID(c.ID())
		for _, rec := range recs[ck.ledgerPos[id]:] {
			if rec.Kind == audit.KindUpdate {
				ck.legit[sha256.Sum256(rec.Canonical)] = true
			}
		}
		ck.ledgerPos[id] = len(recs)
	}
}

// probeSrc is the concrete source used to walk wildcard-source rules.
const probeSrc = netprop.ProbeSrc

// reportFn records one violation; implementations deduplicate.
type reportFn func(invariant, dedupKey, detail, traceToken string)

// walkTables walks every installed output rule to its destination over the
// given flow tables. The walker itself lives in internal/netprop (shared
// with the synthesis engine); this shim keeps chaos callers and their
// campaign traces bit-identical.
func walkTables(tables map[string]*openflow.FlowTable, hosts map[string]bool, report reportFn) {
	netprop.WalkTables(tables, hosts, netprop.ReportFunc(report))
}

// walkTable follows the forwarding chain for (src, dst) starting at sw.
func walkTable(tables map[string]*openflow.FlowTable, hosts map[string]bool, sw, src, dst string, report reportFn) {
	netprop.WalkTable(tables, hosts, sw, src, dst, netprop.ReportFunc(report))
}

// checkDataPlane runs the walk invariants over the live simulator tables.
// Under reverse-path scheduling these hold at every instant, not just at
// quiescence: a rule is installed only after its downstream suffix acked.
func (ck *checker) checkDataPlane() {
	tables := make(map[string]*openflow.FlowTable, len(ck.r.switches))
	for _, swID := range ck.r.switches {
		tables[swID] = ck.r.net.Switches[swID].Table()
	}
	walkTables(tables, ck.hosts, ck.report)
}

// ledgerEntry is one KindEvent audit record reduced for comparison.
type ledgerEntry struct {
	subject string
	digest  [32]byte
}

// eventLedger extracts the comparison view of one controller's ledger:
// its KindEvent records, in append (= broadcast delivery) order.
func eventLedger(recs []audit.Record) []ledgerEntry {
	var out []ledgerEntry
	for _, rec := range recs {
		if rec.Kind != audit.KindEvent {
			continue
		}
		out = append(out, ledgerEntry{rec.Subject, sha256.Sum256(rec.Canonical)})
	}
	return out
}

// compareEventLedgers checks pairwise prefix agreement: the shorter ledger
// must be a prefix of the longer (same events, same order). Only KindEvent
// records participate: they are appended in atomic-broadcast delivery
// order, which the protocol totally orders; KindUpdate records interleave
// with ack arrival and legitimately differ across controllers.
func compareEventLedgers(ids []string, ledgers [][]ledgerEntry, report reportFn) {
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := ledgers[i], ledgers[j]
			m := len(a)
			if len(b) < m {
				m = len(b)
			}
			for k := 0; k < m; k++ {
				if a[k] != b[k] {
					report(InvBFTAgreement,
						fmt.Sprintf("%s|%s|%d", ids[i], ids[j], k),
						fmt.Sprintf("controllers %s and %s diverge at delivery %d: %s vs %s",
							ids[i], ids[j], k, a[k].subject, b[k].subject),
						a[k].subject)
					break
				}
			}
		}
	}
}

// checkAgreement compares honest controllers' event ledgers pairwise.
func (ck *checker) checkAgreement() {
	honest := ck.honestControllers()
	ids := make([]string, len(honest))
	ledgers := make([][]ledgerEntry, len(honest))
	for i, c := range honest {
		ids[i] = string(c.ID())
		ledgers[i] = eventLedger(c.AuditRecords())
	}
	compareEventLedgers(ids, ledgers, ck.report)
}
