package chaos

import "testing"

// TestMetadataCampaignNoViolations runs the metadata profile across
// seeds: the Byzantine metadata attacker (rollback replays, withheld
// timestamps, spliced snapshots, forged role keys, retired-share
// signatures) must never produce a violation, and the defenses must
// visibly engage — stores classify and reject the attacks, the root
// collector refuses the retired BLS share, and the mid-run membership
// change completes with a rotated root on every seed.
func TestMetadataCampaignNoViolations(t *testing.T) {
	for _, seed := range Seeds(1, 8) {
		res := RunSeed(fastProfile(MetadataProfile()), seed)
		if res.Err != "" {
			t.Fatalf("seed %d: run error: %s", seed, res.Err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: unexpected violations: %v", seed, res.Violations)
		}
		if res.MetaPublished < 2 {
			t.Errorf("seed %d: %d publications completed, want >= 2 (initial + post-change)", seed, res.MetaPublished)
		}
		if res.MetaRefreshes == 0 {
			t.Errorf("seed %d: timestamp was never refreshed", seed)
		}
		if res.MetaRootVersion < 3 {
			t.Errorf("seed %d: root version %d, want >= 3 (genesis + post-change + mid-run rotation)", seed, res.MetaRootVersion)
		}
		if res.MetaStaleShares == 0 {
			t.Errorf("seed %d: the retired-share signature was never rejected by the root collector", seed)
		}
		if res.MetaRejects["meta-rollback"] == 0 {
			t.Errorf("seed %d: no store ever classified a rollback replay (rejects=%v)", seed, res.MetaRejects)
		}
		if res.MetaRejects["meta-wrong-role"] == 0 {
			t.Errorf("seed %d: no store ever rejected the forged role key (rejects=%v)", seed, res.MetaRejects)
		}
		if res.Injected["meta-attack-wave"] == 0 || res.Injected["meta-remove"] == 0 {
			t.Errorf("seed %d: campaign injected nothing (injected=%v)", seed, res.Injected)
		}
	}
}

// TestMetadataCanaryCaught plants the verification bypass on every
// switch store and requires each metadata invariant — rollback, forgery
// (spliced/forged documents adopt), and stale-policy (the freeze: a
// bypassed store claims freshness on an expired proof) — to catch it on
// every seed.
func TestMetadataCanaryCaught(t *testing.T) {
	p := fastProfile(MetadataProfile())
	p.CanaryMetaBypass = true
	for _, seed := range Seeds(1, 5) {
		res := RunSeed(p, seed)
		if res.Err != "" {
			t.Fatalf("seed %d: run error: %s", seed, res.Err)
		}
		caught := make(map[string]bool)
		for _, v := range res.Violations {
			caught[v.Invariant] = true
			if len(v.Trace) == 0 {
				t.Errorf("seed %d: violation without a related trace: %s", seed, v)
			}
		}
		for _, inv := range []string{InvMetaRollback, InvMetaForged, InvStalePolicy} {
			if !caught[inv] {
				t.Errorf("seed %d: bypassed stores were never caught by %s (caught=%v)", seed, inv, caught)
			}
		}
	}
}

// TestMetadataDeterministic pins the campaign to its replay contract:
// the same seed reproduces the same trace bit for bit, and different
// seeds explore different schedules.
func TestMetadataDeterministic(t *testing.T) {
	p := fastProfile(MetadataProfile())
	a := RunSeed(p, 11)
	b := RunSeed(p, 11)
	if a.Err != "" || b.Err != "" {
		t.Fatalf("run errors: %q %q", a.Err, b.Err)
	}
	if a.TraceHash != b.TraceHash {
		t.Fatalf("same seed, different trace hash:\n  %s\n  %s", a.TraceHash, b.TraceHash)
	}
	if c := RunSeed(p, 12); c.TraceHash == a.TraceHash {
		t.Fatal("different seeds produced identical traces")
	}
}
