package chaos

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"cicero/internal/bft"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/simnet"
)

// injector implements the simnet filter: per-message link faults plus
// Byzantine mutation of the designated controller's outgoing traffic. It
// runs on the simulator loop and draws only from the chaos RNG, keeping
// runs seed-deterministic.
type injector struct {
	r        *run
	forgeSeq uint64
}

func newInjector(r *run) *injector { return &injector{r: r} }

// byzMutateProb is the chance the Byzantine controller tampers with one of
// its own outgoing shares or proposals.
const byzMutateProb = 0.3

func (in *injector) filter(from, to simnet.NodeID, msg simnet.Message, size int) simnet.FaultAction {
	r := in.r
	var act simnet.FaultAction

	// Byzantine mutation of the designated controller's own traffic.
	if r.byz != "" && from == r.byz {
		if replaced := in.byzMutate(to, msg); replaced != nil {
			act.Replace = replaced
			msg = replaced
		}
	}

	lf := r.p.Link
	if lf.DropProb > 0 && r.rng.Float64() < lf.DropProb {
		r.counter.Add("drop", 1)
		r.tr.Add(r.net.Sim.Now(), "inj-drop", fmt.Sprintf("%s->%s %T", from, to, msg))
		return simnet.FaultAction{Drop: true}
	}
	if lf.CorruptProb > 0 && r.rng.Float64() < lf.CorruptProb {
		if corrupted := corruptMessage(msg); corrupted != nil {
			act.Replace = corrupted
			r.counter.Add("corrupt", 1)
			r.tr.Add(r.net.Sim.Now(), "inj-corrupt", fmt.Sprintf("%s->%s %T", from, to, msg))
		}
	}
	if lf.DupProb > 0 && r.rng.Float64() < lf.DupProb {
		act.Duplicates = 1
		r.counter.Add("dup", 1)
		r.tr.Add(r.net.Sim.Now(), "inj-dup", fmt.Sprintf("%s->%s %T", from, to, msg))
	}
	if lf.DelayProb > 0 && lf.DelayMax > 0 && r.rng.Float64() < lf.DelayProb {
		act.Delay = time.Duration(r.rng.Int63n(int64(lf.DelayMax)))
		r.counter.Add("delay", 1)
		r.tr.Add(r.net.Sim.Now(), "inj-delay", fmt.Sprintf("%s->%s %T +%v", from, to, msg, act.Delay))
	}
	return act
}

// corruptMessage returns a deep-copied message with one payload byte
// flipped, or nil for message types the injector leaves alone. Only
// authenticated payloads are corrupted: events, acks, shares, and
// aggregates all carry signatures that real crypto rejects. BFT transport
// is modeled as an authenticated channel (the enclosing layer seals it),
// so flipping its bytes would simulate a broken transport, not a network
// fault, and is off-limits; so is MsgConfig (threshold-signed, but only
// sent on membership changes that campaigns do not exercise).
func corruptMessage(msg simnet.Message) simnet.Message {
	flip := func(b []byte) []byte {
		if len(b) == 0 {
			return b
		}
		out := append([]byte(nil), b...)
		out[len(out)/2] ^= 0x40
		return out
	}
	switch m := msg.(type) {
	case protocol.MsgEvent:
		m.Env.Payload = flip(m.Env.Payload)
		return m
	case protocol.MsgAck:
		m.Env.Payload = flip(m.Env.Payload)
		return m
	case protocol.MsgUpdate:
		if len(m.Share) > 0 {
			m.Share = flip(m.Share)
		} else {
			m.ShareIndex = 0 // malformed share
		}
		return m
	case protocol.MsgAggUpdate:
		m.Signature = flip(m.Signature)
		return m
	case protocol.MsgBatchUpdate:
		if len(m.Share) > 0 {
			m.Share = flip(m.Share)
		} else if len(m.Proof) > 0 {
			proof := make([][]byte, len(m.Proof))
			copy(proof, m.Proof)
			proof[0] = flip(proof[0])
			m.Proof = proof
		} else {
			m.ShareIndex = 0 // malformed share
		}
		return m
	}
	return nil
}

// byzMutate tampers with the Byzantine controller's outgoing message, or
// returns nil to send it untouched. Mutations are the paper's §2 threat
// model: bad signature shares, shares under a stale epoch, equivocating
// proposals. They must never fabricate data that would pass verification —
// the point is proving the protocol rejects them.
func (in *injector) byzMutate(to simnet.NodeID, msg simnet.Message) simnet.Message {
	r := in.r
	switch m := msg.(type) {
	case protocol.MsgUpdate:
		out, kind := byzMutateUpdate(r.rng, len(r.ctls), m)
		if kind == "" {
			return nil
		}
		r.counter.Add(kind, 1)
		r.tr.Add(r.net.Sim.Now(), kind, fmt.Sprintf("->%s %s", to, out.UpdateID))
		return out
	case protocol.MsgBatchUpdate:
		out, kind := byzMutateBatch(r.rng, m)
		if kind == "" {
			return nil
		}
		r.counter.Add(kind, 1)
		r.tr.Add(r.net.Sim.Now(), kind, fmt.Sprintf("->%s %s", to, out.UpdateID))
		return out
	case protocol.MsgBFT:
		out, kind := byzMutateBFT(r.rng, r.hosts, &in.forgeSeq, m)
		if kind == "" {
			return nil
		}
		pp := out.Inner.(bft.PrePrepare)
		r.counter.Add(kind, 1)
		r.tr.Add(r.net.Sim.Now(), kind, fmt.Sprintf("->%s seq=%d", to, pp.Seq))
		return out
	}
	return nil
}

// byzMutateUpdate applies one of the share mutations (garbage bytes, a
// stolen share index, a stale epoch), drawing the gate and the choice from
// rng in a fixed order so seeded runs stay deterministic. It returns the
// (possibly mutated) message and the mutation kind ("" = untouched).
func byzMutateUpdate(rng *rand.Rand, nctls int, m protocol.MsgUpdate) (protocol.MsgUpdate, string) {
	if rng.Float64() >= byzMutateProb {
		return m, ""
	}
	switch rng.Intn(3) {
	case 0: // garbage share bytes
		m.Share = garbageBytes(rng, len(m.Share))
		return m, "byz-bad-share"
	case 1: // claim another controller's share index
		m.ShareIndex = m.ShareIndex%uint32(nctls) + 1
		return m, "byz-wrong-index"
	default: // stale-epoch share
		m.Phase += 1000
		return m, "byz-stale-phase"
	}
}

// byzMutateBatch applies one of the batch-path mutations: a forged batch
// root (the inclusion proof can no longer verify), a content splice (the
// rule bytes change under the honest root and proof — exactly what the
// Merkle binding must reject), or a garbage root share (the per-batch
// aggregate must fail and keep the batch pending for honest shares).
func byzMutateBatch(rng *rand.Rand, m protocol.MsgBatchUpdate) (protocol.MsgBatchUpdate, string) {
	if rng.Float64() >= byzMutateProb {
		return m, ""
	}
	switch rng.Intn(3) {
	case 0: // forged batch root
		m.BatchRoot = garbageBytes(rng, len(m.BatchRoot))
		return m, "byz-forged-root"
	case 1: // splice forged rule content under the honest root+proof
		mods := append([]openflow.FlowMod(nil), m.Mods...)
		for i := range mods {
			mods[i].Rule.Action = openflow.Action{Type: openflow.ActionOutput, NextHop: "byz/blackhole"}
		}
		m.Mods = mods
		return m, "byz-batch-splice"
	default: // garbage root share
		m.Share = garbageBytes(rng, len(m.Share))
		return m, "byz-bad-root-share"
	}
}

// byzMutateBFT equivocates on a PrePrepare: it proposes a different
// (well-formed) payload to this receiver, with a digest that matches the
// forged payload so only the agreement protocol itself can catch the lie.
// The forged event names real hosts: if it ever got ordered it would
// install consistent rules, so any invariant violation it caused would be
// the protocol's fault, not malformed input.
func byzMutateBFT(rng *rand.Rand, hosts []string, forgeSeq *uint64, m protocol.MsgBFT) (protocol.MsgBFT, string) {
	pp, ok := m.Inner.(bft.PrePrepare)
	if !ok || rng.Float64() >= byzMutateProb {
		return m, ""
	}
	*forgeSeq++
	ev := protocol.Event{
		ID:   openflow.MsgID{Origin: "byz/equiv", Seq: *forgeSeq},
		Kind: protocol.EventFlowRequest,
		Src:  hosts[rng.Intn(len(hosts))],
		Dst:  hosts[rng.Intn(len(hosts))],
	}
	payload, err := json.Marshal(protocol.BroadcastItem{Event: &ev, Phase: m.Phase})
	if err != nil {
		return m, ""
	}
	pp.Payload = payload
	pp.Digest = bft.PayloadDigest(payload)
	m.Inner = pp
	return m, "byz-equivocate"
}

// garbageBytes returns n deterministic pseudo-random bytes (not a valid
// curve point with overwhelming probability).
func garbageBytes(rng *rand.Rand, n int) []byte {
	if n == 0 {
		n = 33
	}
	out := make([]byte, n)
	rng.Read(out)
	return out
}
