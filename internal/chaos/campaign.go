package chaos

import (
	"fmt"
	"runtime"
	"sync"

	"cicero/internal/metrics"
)

// Campaign is a batch of seeds run against one profile. Each seed is an
// independent deterministic simulation; workers only parallelize across
// seeds, never within one, so parallelism cannot affect results.
type Campaign struct {
	Profile Profile
	Seeds   []int64
	// Workers caps concurrent seeds; <= 0 selects GOMAXPROCS.
	Workers int
	// KeepTraces retains each seed's full trace (memory-heavy; replay and
	// debugging only). Violation sub-traces are always kept.
	KeepTraces bool
	// Progress, when set, is called after each seed completes (for CLI
	// progress output). It may be called from worker goroutines.
	Progress func(done, total int, res SeedResult)
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Profile    string
	Results    []SeedResult // in Seeds order
	Violations int
	FlowsDone  int
	FlowsTotal int
	Injected   *metrics.CounterSet
	// FailingSeeds lists seeds with at least one violation.
	FailingSeeds []int64
	// ErrSeeds lists seeds that ended with a run error (e.g. event budget).
	ErrSeeds []int64
}

// Seeds returns n consecutive seeds starting at start.
func Seeds(start int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)
	}
	return out
}

// Run executes the campaign and aggregates results.
func (c Campaign) Run() CampaignResult {
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(c.Seeds) {
		workers = len(c.Seeds)
	}
	results := make([]SeedResult, len(c.Seeds))
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				res := RunSeed(c.Profile, c.Seeds[i])
				if !c.KeepTraces {
					res.Trace = nil
				}
				results[i] = res
				if c.Progress != nil {
					mu.Lock()
					done++
					c.Progress(done, len(c.Seeds), res)
					mu.Unlock()
				}
			}
		}()
	}
	for i := range c.Seeds {
		work <- i
	}
	close(work)
	wg.Wait()

	out := CampaignResult{Profile: c.Profile.Defaulted().Name, Results: results, Injected: metrics.NewCounterSet()}
	for _, res := range results {
		out.Violations += len(res.Violations)
		out.FlowsDone += res.FlowsDone
		out.FlowsTotal += res.FlowsTotal
		for name, v := range res.Injected {
			out.Injected.Add(name, v)
		}
		if len(res.Violations) > 0 {
			out.FailingSeeds = append(out.FailingSeeds, res.Seed)
		}
		if res.Err != "" {
			out.ErrSeeds = append(out.ErrSeeds, res.Seed)
		}
	}
	return out
}

// Summary renders a one-line campaign outcome.
func (r CampaignResult) Summary() string {
	return fmt.Sprintf("profile=%s seeds=%d violations=%d flows=%d/%d injected=%d failing=%v errs=%v",
		r.Profile, len(r.Results), r.Violations, r.FlowsDone, r.FlowsTotal,
		r.Injected.Total(), r.FailingSeeds, r.ErrSeeds)
}
