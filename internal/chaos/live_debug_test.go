package chaos

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestLiveDebugSeed is a manual debugging harness: run with
// CHAOS_DEBUG_SEED=<n> to replay one live seed with CLI-default options
// and dump the trace tail. Skipped otherwise.
func TestLiveDebugSeed(t *testing.T) {
	env := os.Getenv("CHAOS_DEBUG_SEED")
	if env == "" {
		t.Skip("set CHAOS_DEBUG_SEED to run")
	}
	seed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	p := MixedProfile()
	p.RacksPerPod = 2
	p.Flows = 6
	res := RunLiveSeed(p, LiveOptions{Backend: "inproc", Seed: seed})
	t.Logf("flows=%d/%d ctl-restarts=%d recovered=%d sw-restarts=%d tableMatch=%v resyncProven=%v err=%q wall=%v",
		res.FlowsDone, res.FlowsTotal, res.CtlRestarts, res.CtlRecovered,
		res.SwitchRestarts, res.TableMatch, res.ResyncProven, res.Err, res.Wall.Round(time.Millisecond))
	for _, v := range res.Violations {
		t.Logf("violation: %s", v)
	}
	dumpBFT := os.Getenv("CHAOS_DEBUG_BFT") != ""
	for _, e := range res.Trace.Events() {
		s := e.String()
		if strings.Contains(s, "crash") || strings.Contains(s, "restart") ||
			strings.Contains(s, "recover") || strings.Contains(s, "drain") ||
			strings.Contains(s, "Recover") || strings.Contains(s, "ledger") ||
			(dumpBFT && e.Kind == "bft") {
			t.Logf("%s", s)
		}
	}
}
