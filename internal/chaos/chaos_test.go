package chaos

import (
	"testing"
)

// fastProfile shrinks a profile for unit-test latency.
func fastProfile(p Profile) Profile {
	p.Flows = 8
	return p
}

func TestDeterministicTraceHash(t *testing.T) {
	p := fastProfile(MixedProfile())
	a := RunSeed(p, 7)
	b := RunSeed(p, 7)
	if a.Err != "" || b.Err != "" {
		t.Fatalf("run errors: %q %q", a.Err, b.Err)
	}
	if a.TraceHash != b.TraceHash {
		t.Fatalf("same seed, different trace hash:\n  %s\n  %s", a.TraceHash, b.TraceHash)
	}
	if a.Trace.Len() == 0 {
		t.Fatal("empty trace")
	}
	// Different seeds must explore different schedules.
	c := RunSeed(p, 8)
	if c.TraceHash == a.TraceHash {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestMixedCampaignNoViolations(t *testing.T) {
	res := Campaign{Profile: fastProfile(MixedProfile()), Seeds: Seeds(1, 15)}.Run()
	if res.Violations != 0 {
		for _, sr := range res.Results {
			for _, v := range sr.Violations {
				t.Errorf("violation: %s", v)
			}
		}
		t.Fatalf("mixed campaign reported %d violations (seeds %v)", res.Violations, res.FailingSeeds)
	}
	if res.FlowsDone == 0 {
		t.Fatal("no flow ever completed; campaign exercised nothing")
	}
	if res.Injected.Total() == 0 {
		t.Fatal("no fault was ever injected; campaign exercised nothing")
	}
}

func TestCanaryCaughtByNoForgedRule(t *testing.T) {
	p := fastProfile(ByzantineProfile())
	p.CanarySkipVerify = true
	caught := false
	for _, seed := range Seeds(1, 5) {
		res := RunSeed(p, seed)
		for _, v := range res.Violations {
			if v.Invariant == InvNoForgedRule {
				caught = true
				if len(v.Trace) == 0 {
					t.Errorf("violation without a related trace: %s", v)
				}
			}
		}
		if caught {
			break
		}
	}
	if !caught {
		t.Fatal("canary (verification bypass) was never caught by the no-forged-rule invariant")
	}
}

func TestByzantineRejectedWithoutCanary(t *testing.T) {
	p := fastProfile(ByzantineProfile())
	var rejected uint64
	for _, seed := range Seeds(1, 3) {
		res := RunSeed(p, seed)
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: unexpected violations: %v", seed, res.Violations)
		}
		rejected += res.UpdatesRejected
	}
	if rejected == 0 {
		t.Fatal("no forged update was ever rejected; Byzantine injection exercised nothing")
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"links", "crash", "partitions", "byzantine", "mixed"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("ProfileByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile %q has Name %q", name, p.Name)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
