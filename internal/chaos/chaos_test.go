package chaos

import (
	"testing"
)

// fastProfile shrinks a profile for unit-test latency.
func fastProfile(p Profile) Profile {
	p.Flows = 8
	return p
}

func TestDeterministicTraceHash(t *testing.T) {
	p := fastProfile(MixedProfile())
	a := RunSeed(p, 7)
	b := RunSeed(p, 7)
	if a.Err != "" || b.Err != "" {
		t.Fatalf("run errors: %q %q", a.Err, b.Err)
	}
	if a.TraceHash != b.TraceHash {
		t.Fatalf("same seed, different trace hash:\n  %s\n  %s", a.TraceHash, b.TraceHash)
	}
	if a.Trace.Len() == 0 {
		t.Fatal("empty trace")
	}
	// Different seeds must explore different schedules.
	c := RunSeed(p, 8)
	if c.TraceHash == a.TraceHash {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestMixedCampaignNoViolations(t *testing.T) {
	res := Campaign{Profile: fastProfile(MixedProfile()), Seeds: Seeds(1, 15)}.Run()
	if res.Violations != 0 {
		for _, sr := range res.Results {
			for _, v := range sr.Violations {
				t.Errorf("violation: %s", v)
			}
		}
		t.Fatalf("mixed campaign reported %d violations (seeds %v)", res.Violations, res.FailingSeeds)
	}
	if res.FlowsDone == 0 {
		t.Fatal("no flow ever completed; campaign exercised nothing")
	}
	if res.Injected.Total() == 0 {
		t.Fatal("no fault was ever injected; campaign exercised nothing")
	}
}

func TestCanaryCaughtByNoForgedRule(t *testing.T) {
	p := fastProfile(ByzantineProfile())
	p.CanarySkipVerify = true
	caught := false
	for _, seed := range Seeds(1, 5) {
		res := RunSeed(p, seed)
		for _, v := range res.Violations {
			if v.Invariant == InvNoForgedRule {
				caught = true
				if len(v.Trace) == 0 {
					t.Errorf("violation without a related trace: %s", v)
				}
			}
		}
		if caught {
			break
		}
	}
	if !caught {
		t.Fatal("canary (verification bypass) was never caught by the no-forged-rule invariant")
	}
}

func TestByzantineRejectedWithoutCanary(t *testing.T) {
	p := fastProfile(ByzantineProfile())
	var rejected uint64
	for _, seed := range Seeds(1, 3) {
		res := RunSeed(p, seed)
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: unexpected violations: %v", seed, res.Violations)
		}
		rejected += res.UpdatesRejected
	}
	if rejected == 0 {
		t.Fatal("no forged update was ever rejected; Byzantine injection exercised nothing")
	}
}

// batchProfile turns on the batched hot path for a campaign profile.
func batchProfile(p Profile) Profile {
	p.BatchSize = 8
	return p
}

// TestBatchedMixedCampaignNoViolations runs the acceptance campaign with
// the batched hot path on: every fault family — including the Byzantine
// batch mutations (forged roots, content splices, garbage root shares) —
// against batch ordering and batch-amortized signing, with zero invariant
// violations and the batch path demonstrably exercised.
func TestBatchedMixedCampaignNoViolations(t *testing.T) {
	p := batchProfile(fastProfile(MixedProfile()))
	batchApplies := 0
	for _, seed := range Seeds(1, 8) {
		res := RunSeed(p, seed)
		if res.Err != "" {
			t.Fatalf("seed %d: run error: %s", seed, res.Err)
		}
		for _, v := range res.Violations {
			t.Errorf("seed %d: violation: %s", seed, v)
		}
		for _, e := range res.Trace.Events() {
			if e.Kind == "batch-apply" {
				batchApplies++
			}
		}
	}
	if batchApplies == 0 {
		t.Fatal("no batch-amortized update was ever applied; the batched path never engaged")
	}
}

// TestBatchedByzantineRejected proves the Merkle binding: with real
// verification on, every forged-root, content-splice, and fabricated batch
// quorum from the Byzantine controller is rejected and the campaign stays
// violation-free.
func TestBatchedByzantineRejected(t *testing.T) {
	p := batchProfile(fastProfile(ByzantineProfile()))
	var rejected uint64
	for _, seed := range Seeds(1, 4) {
		res := RunSeed(p, seed)
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: unexpected violations: %v", seed, res.Violations)
		}
		rejected += res.UpdatesRejected
	}
	if rejected == 0 {
		t.Fatal("no forged batch update was ever rejected; Byzantine batch injection exercised nothing")
	}
}

// TestBatchedCanaryCaught plants the verification-bypass canary under the
// batched path: forged batch content then applies, and the independent
// proof re-check must surface it as a forged-batch-proof violation.
func TestBatchedCanaryCaught(t *testing.T) {
	p := batchProfile(fastProfile(ByzantineProfile()))
	p.CanarySkipVerify = true
	caught := false
	for _, seed := range Seeds(1, 6) {
		res := RunSeed(p, seed)
		for _, v := range res.Violations {
			if v.Invariant == InvBatchProof {
				caught = true
				if len(v.Trace) == 0 {
					t.Errorf("violation without a related trace: %s", v)
				}
			}
		}
		if caught {
			break
		}
	}
	if !caught {
		t.Fatal("canary (verification bypass) was never caught by the forged-batch-proof invariant")
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"links", "crash", "partitions", "byzantine", "mixed"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("ProfileByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile %q has Name %q", name, p.Name)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
