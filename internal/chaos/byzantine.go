package chaos

import (
	"fmt"
	"time"

	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/simnet"
	"cicero/internal/tcrypto/merkle"
)

// scheduleByzantine draws timed forged-message injections from the
// Byzantine controller: fabricated share quorums, forged pre-aggregated
// updates, and bare PACKET_OUTs (the §2.2 attack). All forgeries carry
// unique "byz/forge" update ids and garbage signatures — real
// verification must reject every one; with the canary (verification
// bypassed) they apply and the no-forged-rule invariant must fire.
func (r *run) scheduleByzantine() {
	if r.byz == "" {
		return
	}
	n := r.net
	quorum := r.net.Domains[0].Controllers[0].Quorum()
	kinds := 3
	if r.p.BatchSize > 1 {
		kinds = 4 // add fabricated batch-share quorums under a forged root
	}
	const injections = 6
	for i := 0; i < injections; i++ {
		at := 10*time.Millisecond + time.Duration(r.rng.Int63n(int64(r.p.FlowWindow)))
		sw := r.switches[r.rng.Intn(len(r.switches))]
		dst := r.hosts[r.rng.Intn(len(r.hosts))]
		kind := r.rng.Intn(kinds)
		seq := uint64(i + 1)
		sig := garbageBytes(r.rng, 33)
		root := garbageBytes(r.rng, merkle.HashSize)
		shareSigs := make([][]byte, quorum)
		for j := range shareSigs {
			shareSigs[j] = garbageBytes(r.rng, 33)
		}
		n.Sim.At(at, func() {
			id := openflow.MsgID{Origin: "byz/forge", Seq: seq}
			mods := []openflow.FlowMod{{
				Op:     openflow.FlowAdd,
				Switch: sw,
				Rule: openflow.Rule{
					Priority: 50,
					Match:    openflow.Match{Src: openflow.Wildcard, Dst: dst},
					Action:   openflow.Action{Type: openflow.ActionOutput, NextHop: "byz/blackhole"},
				},
			}}
			switch kind {
			case 0:
				// A full fabricated share quorum: the switch reaches its
				// share count and must fail aggregate verification.
				for j := 0; j < quorum; j++ {
					msg := protocol.MsgUpdate{
						UpdateID:   id,
						Mods:       mods,
						Phase:      1,
						From:       "byz",
						ShareIndex: uint32(j + 1),
						Share:      shareSigs[j],
					}
					n.Net.Send(r.byz, simnet.NodeID(sw), msg, 512)
				}
				r.counter.Add("byz-forge-shares", 1)
				r.tr.Add(n.Sim.Now(), "byz-forge-shares", fmt.Sprintf("->%s %s dst=%s", sw, id, dst))
			case 1:
				// A forged pre-aggregated update.
				msg := protocol.MsgAggUpdate{UpdateID: id, Mods: mods, Phase: 1, Signature: sig}
				n.Net.Send(r.byz, simnet.NodeID(sw), msg, 512)
				r.counter.Add("byz-forge-agg", 1)
				r.tr.Add(n.Sim.Now(), "byz-forge-agg", fmt.Sprintf("->%s %s dst=%s", sw, id, dst))
			case 2:
				// A bare PACKET_OUT: switches must drop it outright.
				msg := openflow.PacketOut{Switch: sw, Src: probeSrc, Dst: dst}
				n.Net.Send(r.byz, simnet.NodeID(sw), msg, 256)
				r.counter.Add("byz-packet-out", 1)
				r.tr.Add(n.Sim.Now(), "byz-packet-out", fmt.Sprintf("->%s dst=%s", sw, dst))
			default:
				// A fabricated batch-share quorum under a forged root: the
				// inclusion proof must reject every copy before a single
				// share reaches the quorum pool; with the canary planted
				// they apply and both the no-forged-rule and the
				// forged-batch-proof invariants must fire.
				for j := 0; j < quorum; j++ {
					msg := protocol.MsgBatchUpdate{
						UpdateID:   id,
						Mods:       mods,
						Phase:      1,
						From:       "byz",
						BatchRoot:  root,
						LeafIndex:  0,
						LeafCount:  1,
						ShareIndex: uint32(j + 1),
						Share:      shareSigs[j],
					}
					n.Net.Send(r.byz, simnet.NodeID(sw), msg, 512)
				}
				r.counter.Add("byz-forge-batch", 1)
				r.tr.Add(n.Sim.Now(), "byz-forge-batch", fmt.Sprintf("->%s %s dst=%s", sw, id, dst))
			}
		})
	}
}
