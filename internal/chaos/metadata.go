package chaos

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"time"

	"cicero/internal/metarepo"
	"cicero/internal/protocol"
	"cicero/internal/simnet"
	"cicero/internal/tcrypto/pki"
)

// Metadata-plane invariants.
const (
	// InvStalePolicy: a switch store that claims its adopted policy is
	// fresh must hold a live freshness proof. The checker reads the
	// timestamp document itself and compares it against the store's own
	// Fresh verdict, so a lying (bypassed) store frozen on a withheld or
	// replayed timestamp surfaces here, while an honest store that
	// correctly reports itself stale does not (knowing you are stale is
	// the freeze defense working).
	InvStalePolicy = "stale-policy"
	// InvMetaRollback: no store's adopted versions ever regress.
	InvMetaRollback = "meta-store-rollback"
	// InvMetaForged: every envelope a switch store holds must be one an
	// honest controller signed and adopted — byte-identical at the same
	// role and version, and never a version ahead of every honest
	// controller. Forged role keys and spliced sets surface here.
	InvMetaForged = "meta-store-forged"
)

// metaTimestampTTL/metaRefreshEvery are the campaign's freshness regime:
// proofs live 40ms and the leader re-mints every 15ms, so an honest
// store is never more than one missed refresh from expiry while a
// frozen one expires well inside the run.
const (
	metaTimestampTTL  = 40 * time.Millisecond
	metaRefreshEvery  = 15 * time.Millisecond
	metaStaleGrace    = metaTimestampTTL // one extra TTL of slack for multicast latency
	metaDocumentTTL   = time.Hour
	metaCaptureAt     = 20 * time.Millisecond
	metaRemoveAt      = 30 * time.Millisecond
	metaAttackAt      = 55 * time.Millisecond
	metaRotateAt      = 65 * time.Millisecond
	metaSecondWaveAt  = 80 * time.Millisecond
	metaFirstPublish  = 8 * time.Millisecond
	metaAttackMsgSize = 768
)

// metaRefreshHorizon bounds the leader's timestamp-refresh loop: the
// whole budget normally, only the front half under the bypass canary —
// modelling a withholding attacker whose victim stores then sit on
// expired proofs while (being bypassed) still claiming freshness.
func metaRefreshHorizon(p Profile) time.Duration {
	if p.CanaryMetaBypass {
		return p.SimBudget / 2
	}
	return p.SimBudget
}

// scheduleMetadata drives the metadata-plane campaign: policy
// publications under load, a membership change whose reshare rotates
// the root and retires the removed member, and a Byzantine metadata
// attacker sourced from that retired controller — replayed old
// versions, withheld (replayed-stale) timestamps, snapshots spliced
// across sets, forged role keys, and a post-reshare retired-share
// signature against a live root rotation.
func (r *run) scheduleMetadata() {
	if !r.p.Metadata {
		return
	}
	n := r.net
	dom := n.Domains[0]
	leader := dom.Controllers[0]
	removed := dom.Members[len(dom.Members)-1]
	attacker := simnet.NodeID(removed)

	// The forger's key never touches the chaos RNG (key material stays
	// out of the trace) and is never registered anywhere: no root ever
	// delegated to it, so every signature it mints must be rejected.
	forgeKeys, err := pki.NewKeyPair(rand.Reader, "meta/forger")
	if err != nil {
		return
	}

	publish := func(tag string) {
		members := make([]string, 0, len(leader.Members()))
		for _, m := range leader.Members() {
			members = append(members, string(m))
		}
		leader.PublishPolicy(metarepo.Policy{
			Phase:   leader.Phase(),
			Members: members,
			Quorum:  leader.Quorum(),
			Flows:   []metarepo.FlowPolicy{{Src: r.hosts[0], Dst: r.hosts[len(r.hosts)-1], Allow: true}},
		})
		r.tr.Add(n.Sim.Now(), "meta-publish", tag)
	}

	n.Sim.At(metaFirstPublish, func() { publish("initial policy") })

	// Capture the pre-change metadata set for replay/splice attacks.
	var oldSet []protocol.MetaEnvelope
	n.Sim.At(metaCaptureAt, func() {
		if st := leader.MetaStore(); st != nil {
			oldSet = st.CurrentSet()
		}
	})

	// Membership change mid-campaign: proactive resharing installs fresh
	// shares, the leader rotates the root, and the removed member's role
	// key retires everywhere.
	if len(dom.Members) > 4 {
		n.Sim.At(metaRemoveAt, func() {
			if err := leader.RequestRemoveController(removed); err == nil {
				r.counter.Add("meta-remove", 1)
				r.tr.Add(n.Sim.Now(), "meta-remove", string(removed))
			}
		})
	}

	envByRole := func(set []protocol.MetaEnvelope, role string) (protocol.MetaEnvelope, bool) {
		for _, env := range set {
			if env.Role == role {
				return env, true
			}
		}
		return protocol.MetaEnvelope{}, false
	}

	attack := func(wave string) {
		if len(oldSet) == 0 {
			return
		}
		for _, swID := range r.switches {
			sw := simnet.NodeID(swID)
			// Replayed old versions: the full pre-change set.
			n.Net.Send(attacker, sw, protocol.MsgMetaSet{Envs: oldSet}, metaAttackMsgSize)
			// Withheld timestamps, actively: keep re-serving the stale
			// freshness proof so a broken store stays frozen on it.
			if ts, ok := envByRole(oldSet, protocol.MetaRoleTimestamp); ok {
				n.Net.Send(attacker, sw, protocol.MsgMeta{Env: ts}, metaAttackMsgSize)
			}
			// Spliced snapshot: the old snapshot crossed with whatever
			// targets the victim currently trusts.
			if sn, ok := envByRole(oldSet, protocol.MetaRoleSnapshot); ok {
				splice := []protocol.MetaEnvelope{sn}
				if st := n.Switches[swID].MetaStore(); st != nil {
					if tg, ok := envByRole(st.CurrentSet(), protocol.MetaRoleTargets); ok {
						splice = append(splice, tg)
					}
				}
				n.Net.Send(attacker, sw, protocol.MsgMetaSet{Envs: splice}, metaAttackMsgSize)
			}
			// Forged role key: a far-future targets document signed by a
			// key the root never delegated.
			doc := metarepo.Targets{
				Version:   1000,
				IssuedNS:  int64(n.Sim.Now()),
				ExpiresNS: int64(n.Sim.Now()) + int64(metaDocumentTTL),
			}
			signed := metarepo.Encode(doc)
			env := protocol.MetaEnvelope{
				Role:   protocol.MetaRoleTargets,
				Signed: signed,
				Sigs:   []protocol.MetaSig{metarepo.SignRole(forgeKeys, protocol.MetaRoleTargets, signed)},
			}
			n.Net.Send(attacker, sw, protocol.MsgMeta{Env: env}, metaAttackMsgSize)
		}
		r.counter.Add("meta-attack-wave", 1)
		r.tr.Add(n.Sim.Now(), "meta-attack", wave)
	}
	n.Sim.At(metaAttackAt, func() { attack("first wave") })
	n.Sim.At(metaSecondWaveAt, func() { attack("second wave") })

	// Retired-share signature: open a live root rotation and slip in a
	// BLS share minted from the pre-reshare sharing. The collector
	// verifies shares against the current Feldman commitments, so the
	// retired share must be rejected even though the group public key is
	// unchanged.
	n.Sim.At(metaRotateAt, func() {
		st := leader.MetaStore()
		if st == nil {
			return
		}
		cur := st.Root()
		if cur == nil {
			return
		}
		var keys []metarepo.RoleKey
		for _, m := range leader.Members() {
			pub, ok := n.Directory.Lookup(m)
			if !ok {
				return
			}
			keys = append(keys, metarepo.RoleKey{KeyID: string(m), Pub: append([]byte(nil), pub...)})
		}
		next := metarepo.RootAt(cur.Version+1, leader.Quorum(), keys,
			int64(n.Sim.Now()), int64(metaDocumentTTL))
		signed := metarepo.Encode(next)
		leader.RotateRoot()
		// dom.Shares is the build-time sharing; after the in-run reshare
		// it is retired. Deliver synchronously so the collector is still
		// open (only the leader's own fresh share has arrived).
		stale := r.net.Scheme.SignShare(dom.Shares[1],
			protocol.MetaSigningBytes(protocol.MetaRoleRoot, signed))
		leader.HandleMessage(attacker, protocol.MsgMetaShare{
			Version: next.Version, Signed: signed,
			ShareIndex: stale.Index,
			Share:      r.net.Scheme.Params.PointBytes(stale.Point),
		})
		r.counter.Add("meta-retired-share", 1)
		r.tr.Add(n.Sim.Now(), "meta-retired-share", fmt.Sprintf("root v%d", next.Version))
	})
}

// metaVersions is one store's adopted version vector, tracked across
// sweeps for regression detection.
type metaVersions struct {
	root, targets, snapshot, timestamp uint64
}

// checkMetadata sweeps the metadata invariant plane: per-store version
// monotonicity, switch-store content against honest controller stores,
// and freshness of every adopted policy.
func (ck *checker) checkMetadata() {
	if !ck.r.p.Metadata {
		return
	}
	n := ck.r.net
	now := int64(n.Sim.Now())

	// Reference: every (role, version) -> digest an honest controller
	// store currently holds, and the highest honest targets version.
	ref := make(map[string][32]byte)
	var maxTargets uint64
	for _, c := range ck.honestControllers() {
		st := c.MetaStore()
		if st == nil {
			continue
		}
		for _, env := range st.CurrentSet() {
			var doc struct {
				Version uint64 `json:"version"`
			}
			if json.Unmarshal(env.Signed, &doc) != nil {
				continue
			}
			ref[fmt.Sprintf("%s|%d", env.Role, doc.Version)] = sha256.Sum256(env.Signed)
		}
		_, tg, _, _ := st.Versions()
		if tg > maxTargets {
			maxTargets = tg
		}
	}

	for _, swID := range ck.r.switches {
		st := n.Switches[swID].MetaStore()
		if st == nil {
			continue
		}
		rt, tg, sn, ts := st.Versions()
		cur := metaVersions{rt, tg, sn, ts}
		prev, seen := ck.metaSeen[swID]
		if seen && (cur.root < prev.root || cur.targets < prev.targets ||
			cur.snapshot < prev.snapshot || cur.timestamp < prev.timestamp) {
			ck.report(InvMetaRollback, swID,
				fmt.Sprintf("switch %s store regressed: %+v -> %+v", swID, prev, cur), swID)
		}
		if !seen || cur.root > prev.root || cur.targets > prev.targets ||
			cur.snapshot > prev.snapshot || cur.timestamp > prev.timestamp {
			ck.metaSeen[swID] = cur
		}
		if tg > maxTargets {
			ck.report(InvMetaForged, swID+"|ahead",
				fmt.Sprintf("switch %s holds targets v%d but no honest controller is past v%d",
					swID, tg, maxTargets), swID)
		}
		for _, env := range st.CurrentSet() {
			var doc struct {
				Version uint64 `json:"version"`
			}
			if json.Unmarshal(env.Signed, &doc) != nil {
				continue
			}
			key := fmt.Sprintf("%s|%d", env.Role, doc.Version)
			want, ok := ref[key]
			if !ok {
				continue // honest stores moved on; absence proves nothing
			}
			if sha256.Sum256(env.Signed) != want {
				ck.report(InvMetaForged, swID+"|"+key,
					fmt.Sprintf("switch %s holds a %s v%d no honest controller signed", swID, env.Role, doc.Version),
					swID)
			}
		}
		// Freshness: a store claiming its policy is fresh must hold a live
		// proof — the document itself, not the store's possibly-lying Fresh
		// verdict, is what counts. An honest store past expiry reports
		// itself stale and is skipped: refusing to vouch IS the defense.
		if tg > 0 && st.Fresh(now) {
			doc := st.TimestampDoc()
			if doc == nil || now > doc.ExpiresNS+int64(metaStaleGrace) {
				ck.report(InvStalePolicy, swID,
					fmt.Sprintf("switch %s claims policy v%d is fresh without a live proof", swID, tg),
					swID)
			}
		}
	}
}
