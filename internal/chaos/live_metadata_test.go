package chaos

import "testing"

// TestLiveChaosMetadataInProc runs the metadata campaign on the
// in-process backend: a policy publication, replay/splice/forged-key
// attack waves from the soon-to-be-retired member, and a live
// membership removal whose reshare rotates the root — converging with
// zero violations while the stores visibly classify and reject the
// attacks.
func TestLiveChaosMetadataInProc(t *testing.T) {
	p := liveTestProfile(MetadataProfile(), 6)
	res := RunLiveSeed(p, liveTestOptions("inproc", 5))
	requireClean(t, res)
	if res.MetaPublished < 2 {
		t.Errorf("publications = %d, want >= 2 (initial + post-change)", res.MetaPublished)
	}
	if res.MetaRootVersion < 2 {
		t.Errorf("root version = %d, want >= 2 (genesis + post-change rotation)", res.MetaRootVersion)
	}
	if res.MetaReshares == 0 {
		t.Error("the live membership change never completed a reshare")
	}
	if res.MetaRejects["meta-rollback"] == 0 {
		t.Errorf("no store ever classified a rollback replay (rejects=%v)", res.MetaRejects)
	}
	if res.MetaRejects["meta-wrong-role"] == 0 {
		t.Errorf("no store ever rejected the forged role key (rejects=%v)", res.MetaRejects)
	}
	t.Logf("flows=%d/%d published=%d reshares=%d rootv=%d rejects=%v",
		res.FlowsDone, res.FlowsTotal, res.MetaPublished, res.MetaReshares, res.MetaRootVersion, res.MetaRejects)
}

// TestLiveChaosMetadataCanaryInProc plants the store-verification bypass
// and withholds timestamp refreshes: the post-drain replay must regress
// the bypassed stores (rollback), the forged-key document must adopt
// (forgery), and the frozen stores must be caught claiming freshness on
// expired proofs (stale-policy).
func TestLiveChaosMetadataCanaryInProc(t *testing.T) {
	p := liveTestProfile(MetadataProfile(), 4)
	p.CanaryMetaBypass = true
	res := RunLiveSeed(p, liveTestOptions("inproc", 6))
	if res.Err != "" {
		t.Fatalf("live run error: %s", res.Err)
	}
	caught := make(map[string]bool)
	for _, v := range res.Violations {
		caught[v.Invariant] = true
	}
	for _, inv := range []string{InvMetaRollback, InvMetaForged, InvStalePolicy} {
		if !caught[inv] {
			t.Errorf("bypassed stores were never caught by %s (caught=%v)", inv, caught)
		}
	}
}
