// Package chaos is a deterministic fault-injection and invariant-checking
// engine layered on simnet. It turns the simulator into a property-based
// adversarial harness for the Cicero protocol: seeded campaigns inject
// message-level faults (drop, delay, duplicate, corrupt), timed crash and
// partition schedules, and Byzantine controller behaviors, while online
// checkers verify at every step that the data plane stays consistent
// (blackhole- and loop-free, path-consistent), that honest controllers
// agree on one total order of events, and that no rule was ever installed
// without a matching quorum decision on an honest controller
// (no-forged-rule, the paper's threshold-signature safety).
//
// Determinism: every run is a pure function of (Profile, Seed). Faults are
// drawn from a chaos RNG derived from the seed but distinct from the
// simulator's RNG; both advance in simulator event order, which is itself
// deterministic, so the same seed reproduces the same fault sequence,
// message interleaving, and trace hash bit-for-bit. Anything that varies
// across runs (real key material, signature bytes, map iteration) is kept
// out of the trace.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/core"
	"cicero/internal/metrics"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/simnet"
	"cicero/internal/topology"
)

// LinkFaults sets per-message fault probabilities applied by the network
// filter. Probabilities are independent per message.
type LinkFaults struct {
	// DropProb discards the message.
	DropProb float64
	// DupProb injects one extra copy (reordering arises naturally from
	// independent jitter on the copies).
	DupProb float64
	// DelayProb adds uniform extra latency in [0, DelayMax).
	DelayProb float64
	DelayMax  time.Duration
	// CorruptProb flips a payload byte of signed messages (events, acks,
	// shares, aggregates). Requires real crypto: with fake crypto a
	// corrupted-but-unauthenticated message would be accepted, which is a
	// property of the baseline, not a protocol violation.
	CorruptProb float64
}

// Profile describes one campaign configuration: topology size, workload,
// and which fault families are active.
type Profile struct {
	Name string

	// Topology/workload (single pod, single domain: cross-domain updates
	// have no global ordering, so data-plane walk invariants only hold
	// within one domain).
	RacksPerPod  int
	HostsPerRack int
	Controllers  int
	Flows        int
	// FlowWindow spreads flow arrivals uniformly over [0, FlowWindow).
	FlowWindow time.Duration

	// Fault families.
	Link LinkFaults
	// ControllerCrash schedules crash–recover windows on controllers.
	ControllerCrash bool
	// SwitchCrash schedules crash–recover windows on switches.
	SwitchCrash bool
	// Partitions schedules controller isolation and asymmetric
	// switch-to-controller partitions.
	Partitions bool
	// Byzantine designates the last controller of the domain as Byzantine:
	// its outgoing shares are mutated (garbage, wrong index, stale phase),
	// its PrePrepares equivocate, and it injects forged updates and bare
	// PACKET_OUTs at switches.
	Byzantine bool

	// Metadata enables the signed-metadata plane and its campaign: policy
	// publications under load, a mid-run membership change whose reshare
	// rotates the root of trust, and a Byzantine metadata attacker sourced
	// from the retired controller (replayed old versions, withheld
	// timestamps, spliced snapshots, forged role keys, and a retired-share
	// signature against a live rotation). The stale-policy, store-rollback
	// and store-forgery invariants sweep every store. Needs >= 5
	// controllers for the mid-run removal to stay above Cicero's floor.
	Metadata bool

	// CryptoReal runs real BLS/Ed25519 end to end. Forced on by Byzantine
	// faults, payload corruption, and the canary (they are only meaningful
	// against real verification).
	CryptoReal bool
	// CanarySkipVerify disables signature verification at every switch —
	// the built-in mutation the no-forged-rule invariant must catch.
	CanarySkipVerify bool
	// CanaryMetaBypass disables metadata verification at every switch
	// store — the built-in mutation the metadata invariants must catch:
	// the attacker's rollbacks, freezes, splices and forged keys then
	// adopt, and the stale-policy / meta-store sweeps must fire.
	CanaryMetaBypass bool

	// Budgets.
	SimBudget     time.Duration
	EventBudget   uint64
	CheckInterval time.Duration

	ViewChangeTimeout time.Duration

	// BatchSize > 1 runs the batched hot path (batched BFT ordering plus
	// batch-amortized signing with Merkle inclusion proofs) under the same
	// fault families; the Byzantine controller additionally forges batch
	// roots and splices rule content under honest proofs, and the
	// batch-proof invariant re-verifies every batched apply.
	BatchSize  int
	BatchDelay time.Duration
}

// Defaulted fills zero fields and enforces cross-field requirements.
func (p Profile) Defaulted() Profile {
	if p.RacksPerPod == 0 {
		p.RacksPerPod = 4
	}
	if p.HostsPerRack == 0 {
		p.HostsPerRack = 2
	}
	if p.Controllers == 0 {
		p.Controllers = 4
	}
	if p.Flows == 0 {
		p.Flows = 15
	}
	if p.FlowWindow == 0 {
		p.FlowWindow = 120 * time.Millisecond
	}
	if p.SimBudget == 0 {
		p.SimBudget = 400 * time.Millisecond
	}
	if p.EventBudget == 0 {
		p.EventBudget = 2_000_000
	}
	if p.CheckInterval == 0 {
		p.CheckInterval = 20 * time.Millisecond
	}
	if p.ViewChangeTimeout == 0 {
		p.ViewChangeTimeout = 15 * time.Millisecond
	}
	if p.Byzantine || p.CanarySkipVerify || p.Link.CorruptProb > 0 {
		p.CryptoReal = true
	}
	if p.Metadata && p.Controllers < 5 {
		p.Controllers = 5
	}
	return p
}

// LinksProfile exercises message-level faults only.
func LinksProfile() Profile {
	return Profile{
		Name: "links",
		Link: LinkFaults{DropProb: 0.03, DupProb: 0.03, DelayProb: 0.08, DelayMax: 2 * time.Millisecond},
	}
}

// CrashProfile exercises crash–recover schedules.
func CrashProfile() Profile {
	return Profile{Name: "crash", ControllerCrash: true, SwitchCrash: true}
}

// PartitionsProfile exercises set and asymmetric partitions.
func PartitionsProfile() Profile {
	return Profile{Name: "partitions", Partitions: true}
}

// ByzantineProfile exercises a Byzantine controller against real crypto.
func ByzantineProfile() Profile {
	return Profile{Name: "byzantine", Byzantine: true, CryptoReal: true}
}

// MetadataProfile exercises the signed-metadata plane against its
// Byzantine attacker: rollback replays, withheld timestamps, spliced
// snapshots, forged role keys, and retired-share signatures across a
// mid-run membership change.
func MetadataProfile() Profile {
	return Profile{Name: "metadata", Metadata: true, Controllers: 5}
}

// MixedProfile combines every fault family (the acceptance campaign).
func MixedProfile() Profile {
	return Profile{
		Name: "mixed",
		Link: LinkFaults{
			DropProb: 0.02, DupProb: 0.02, DelayProb: 0.05,
			DelayMax: 2 * time.Millisecond, CorruptProb: 0.01,
		},
		ControllerCrash: true,
		SwitchCrash:     true,
		Partitions:      true,
		Byzantine:       true,
		CryptoReal:      true,
	}
}

// ProfileByName resolves a named profile.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "links":
		return LinksProfile(), nil
	case "crash":
		return CrashProfile(), nil
	case "partitions":
		return PartitionsProfile(), nil
	case "byzantine":
		return ByzantineProfile(), nil
	case "metadata":
		return MetadataProfile(), nil
	case "mixed":
		return MixedProfile(), nil
	}
	return Profile{}, fmt.Errorf("chaos: unknown profile %q (want links, crash, partitions, byzantine, metadata, mixed)", name)
}

// SeedResult reports one seed's outcome.
type SeedResult struct {
	Seed      int64
	Profile   string
	TraceHash string
	// Violations that survived dedup, in detection order.
	Violations []Violation
	FlowsDone  int
	FlowsTotal int
	// Injected counts faults by kind (drop, dup, delay, corrupt, crash,
	// partition, byz-*).
	Injected map[string]uint64
	Net      simnet.Stats
	// Aggregate switch counters.
	UpdatesApplied  uint64
	UpdatesRejected uint64
	// Metadata-plane counters (zero unless the profile enables it):
	// completed publications and refreshes at the leader, retired shares
	// the root collector rejected, classified store rejections summed over
	// every controller and switch store, and config pushes the switches'
	// metadata gate refused.
	MetaPublished     uint64
	MetaRefreshes     uint64
	MetaReshares      uint64
	MetaRootVersion   uint64
	MetaStaleShares   uint64
	MetaRejects       map[string]uint64
	MetaConfigRejects uint64
	SimEvents         uint64
	SimEnd            simnet.Time
	Err               string
	// Trace is the full retained event trace (campaigns drop it unless
	// asked to keep; replay keeps it).
	Trace *Trace
}

// chaosSeedSalt splits the chaos RNG stream from the simulator's.
const chaosSeedSalt = 0x5eedc4a05

// run holds one seed's live state.
type run struct {
	p       Profile
	seed    int64
	net     *core.Network
	rng     *rand.Rand
	tr      *Trace
	ck      *checker
	inj     *injector
	counter *metrics.CounterSet

	hosts    []string // sorted host ids
	switches []string // sorted switch ids
	ctls     []simnet.NodeID
	byz      simnet.NodeID

	flowsDone  int
	flowsTotal int
}

// RunSeed executes one seed of the profile and returns its result.
func RunSeed(p Profile, seed int64) SeedResult {
	p = p.Defaulted()
	res := SeedResult{Seed: seed, Profile: p.Name}

	fab := topology.DefaultFabricConfig()
	fab.RacksPerPod = p.RacksPerPod
	fab.HostsPerRack = p.HostsPerRack
	g, err := topology.BuildSinglePod(fab)
	if err != nil {
		res.Err = err.Error()
		return res
	}

	r := &run{
		p:       p,
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed ^ chaosSeedSalt)),
		tr:      NewTrace(0),
		counter: metrics.NewCounterSet(),
	}

	// The apply hooks are wired before the checker exists; late-bind them.
	hook := func(sw string, id openflow.MsgID, phase uint64, mods []openflow.FlowMod, valid bool) {
		if r.ck != nil {
			r.ck.onApply(sw, id, phase, mods, valid)
		}
	}
	batchHook := func(sw string, m protocol.MsgBatchUpdate, valid bool) {
		if r.ck != nil {
			r.ck.onBatchApply(sw, m, valid)
		}
	}
	n, err := core.Build(core.Config{
		Graph:                g,
		Protocol:             controlplane.ProtoCicero,
		Aggregation:          controlplane.AggSwitch,
		ControllersPerDomain: p.Controllers,
		Cost:                 protocol.Calibrated(),
		CryptoReal:           p.CryptoReal,
		Seed:                 seed,
		Jitter:               0.1,
		ViewChangeTimeout:    p.ViewChangeTimeout,
		SwitchApplyHook:      hook,
		SwitchBatchHook:      batchHook,
		BatchSize:            p.BatchSize,
		BatchDelay:           p.BatchDelay,
		Metadata:             p.Metadata,
		MetadataTTL:          metaDocumentTTL,
		MetadataTimestampTTL: metaTimestampTTL,
		MetadataRefresh:      metaRefreshEvery,
		// Refresh to the end of the budget so freshness is a live
		// obligation for the whole run. The bypass canary withholds
		// refreshes for the back half instead (the freeze attack): the
		// bypassed stores keep claiming freshness after their proofs
		// expire, which the stale-policy sweep must catch.
		MetadataRefreshHorizon: metaRefreshHorizon(p),
	})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	r.net = n
	n.Sim.MaxEvents = p.EventBudget

	for _, node := range g.NodesOfKind(topology.KindHost) {
		r.hosts = append(r.hosts, node.ID)
	}
	for id := range n.Switches {
		r.switches = append(r.switches, id)
	}
	sort.Strings(r.switches)
	dom := n.Domains[0]
	for _, m := range dom.Members {
		r.ctls = append(r.ctls, simnet.NodeID(m))
	}
	if p.Byzantine {
		r.byz = simnet.NodeID(dom.Members[len(dom.Members)-1])
	}

	r.ck = newChecker(r)
	if p.CanarySkipVerify {
		for _, id := range r.switches {
			n.Switches[id].SetVerifyBypass(true)
		}
		r.tr.Add(0, "canary", "switch verification bypassed on all switches")
	}
	if p.CanaryMetaBypass {
		for _, id := range r.switches {
			if st := n.Switches[id].MetaStore(); st != nil {
				st.SetVerifyBypass(true)
			}
		}
		r.tr.Add(0, "canary", "metadata verification bypassed on all switch stores")
	}

	// Draw the deterministic timeline before the run starts: flows first,
	// then fault schedules, then Byzantine injections — a fixed consumption
	// order on the chaos RNG.
	r.scheduleFlows()
	r.scheduleCrashes()
	r.schedulePartitions()
	r.scheduleByzantine()
	r.scheduleMetadata()

	r.inj = newInjector(r)
	n.Net.SetFilter(r.inj.filter)

	// Online invariant sweep.
	var tick func()
	tick = func() {
		r.ck.checkDataPlane()
		r.ck.checkAgreement()
		r.ck.checkMetadata()
		if n.Sim.Now()+p.CheckInterval <= p.SimBudget {
			n.Sim.Schedule(p.CheckInterval, tick)
		}
	}
	n.Sim.Schedule(p.CheckInterval, tick)

	if _, err := n.Sim.RunUntil(p.SimBudget); err != nil {
		res.Err = err.Error()
	}
	// Final sweep over the quiesced (or budget-bounded) state.
	r.ck.checkDataPlane()
	r.ck.checkAgreement()
	r.ck.checkMetadata()

	res.TraceHash = r.tr.Hash()
	res.Violations = r.ck.violations
	res.FlowsDone = r.flowsDone
	res.FlowsTotal = r.flowsTotal
	res.Injected = r.counter.Map()
	res.Net = n.Net.Stats()
	for _, id := range r.switches {
		sw := n.Switches[id]
		res.UpdatesApplied += sw.UpdatesApplied
		res.UpdatesRejected += sw.UpdatesRejected
	}
	if p.Metadata {
		res.MetaRejects = make(map[string]uint64)
		sumRejects := func(m map[string]int) {
			for reason, count := range m {
				res.MetaRejects[reason] += uint64(count)
			}
		}
		for _, c := range n.Domains[0].Controllers {
			res.MetaPublished += c.MetaPublished
			res.MetaRefreshes += c.MetaRefreshes
			res.MetaReshares += c.Reshares
			res.MetaStaleShares += c.MetaStaleShares
			if st := c.MetaStore(); st != nil {
				sumRejects(st.Rejections())
				if rt := st.Root(); rt != nil && rt.Version > res.MetaRootVersion {
					res.MetaRootVersion = rt.Version
				}
			}
		}
		for _, id := range r.switches {
			sw := n.Switches[id]
			res.MetaConfigRejects += sw.MetaConfigRejects
			if st := sw.MetaStore(); st != nil {
				sumRejects(st.Rejections())
			}
		}
	}
	res.SimEvents = n.Sim.Processed()
	res.SimEnd = n.Sim.Now()
	res.Trace = r.tr
	return res
}

// scheduleFlows draws the workload: random host pairs arriving uniformly
// over the flow window, driven through the ingress switch exactly like the
// core driver, with completion observed via rule-install subscriptions.
func (r *run) scheduleFlows() {
	n := r.net
	for i := 0; i < r.p.Flows; i++ {
		src := r.hosts[r.rng.Intn(len(r.hosts))]
		dst := r.hosts[r.rng.Intn(len(r.hosts))]
		for dst == src {
			dst = r.hosts[r.rng.Intn(len(r.hosts))]
		}
		at := time.Duration(r.rng.Int63n(int64(r.p.FlowWindow)))
		id := i
		r.flowsTotal++
		n.Sim.At(at, func() { r.startFlow(id, src, dst) })
	}
}

// startFlow fires one flow at its arrival time.
func (r *run) startFlow(id int, src, dst string) {
	n := r.net
	path := n.Graph.ShortestPath(src, dst)
	if path == nil {
		r.tr.Add(n.Sim.Now(), "flow-unroutable", fmt.Sprintf("flow=%d %s->%s", id, src, dst))
		return
	}
	switches := n.Graph.SwitchesOnPath(path)
	if len(switches) == 0 {
		// Same-host/rack short circuit: no updates needed.
		r.flowsDone++
		r.tr.Add(n.Sim.Now(), "flow-done", fmt.Sprintf("flow=%d %s->%s local", id, src, dst))
		return
	}
	ingress := n.Switches[switches[0]]
	r.tr.Add(n.Sim.Now(), "flow-start", fmt.Sprintf("flow=%d %s->%s ingress=%s", id, src, dst, switches[0]))
	if n.Net.Crashed(simnet.NodeID(switches[0])) {
		// The ingress is down; the packet never reaches the data plane.
		r.tr.Add(n.Sim.Now(), "flow-lost", fmt.Sprintf("flow=%d ingress %s crashed", id, switches[0]))
		return
	}
	ingress.Subscribe(src, dst, func(at simnet.Time) {
		r.flowsDone++
		r.tr.Add(at, "flow-done", fmt.Sprintf("flow=%d %s->%s", id, src, dst))
	})
	ingress.PacketArrival(src, dst)
}

// scheduleCrashes draws non-overlapping controller crash windows and
// switch crash windows (distinct switches may overlap each other).
// Crashes are benign faults: safety must hold for any number of them; only
// liveness needs a quorum, and the run reports incomplete flows rather
// than asserting completion.
func (r *run) scheduleCrashes() {
	if r.p.ControllerCrash {
		// Two sequential windows, each crashing one non-Byzantine
		// controller (the Byzantine node's faults are its own family).
		at := 20*time.Millisecond + time.Duration(r.rng.Int63n(int64(20*time.Millisecond)))
		for i := 0; i < 2; i++ {
			victim := r.ctls[r.rng.Intn(len(r.ctls))]
			for victim == r.byz {
				victim = r.ctls[r.rng.Intn(len(r.ctls))]
			}
			dur := 10*time.Millisecond + time.Duration(r.rng.Int63n(int64(20*time.Millisecond)))
			r.crashWindow(victim, at, dur, "controller")
			at += dur + 10*time.Millisecond + time.Duration(r.rng.Int63n(int64(30*time.Millisecond)))
		}
	}
	if r.p.SwitchCrash {
		picks := r.rng.Perm(len(r.switches))[:2]
		for _, pi := range picks {
			victim := simnet.NodeID(r.switches[pi])
			at := 15*time.Millisecond + time.Duration(r.rng.Int63n(int64(60*time.Millisecond)))
			dur := 5*time.Millisecond + time.Duration(r.rng.Int63n(int64(15*time.Millisecond)))
			r.crashWindow(victim, at, dur, "switch")
		}
	}
}

// crashWindow schedules a crash at `at` and recovery at `at+dur`.
func (r *run) crashWindow(victim simnet.NodeID, at, dur time.Duration, kind string) {
	n := r.net
	n.Sim.At(at, func() {
		n.Net.Crash(victim)
		r.counter.Add("crash", 1)
		r.tr.Add(n.Sim.Now(), "crash", fmt.Sprintf("%s %s for %v", kind, victim, dur))
	})
	n.Sim.At(at+dur, func() {
		n.Net.Recover(victim)
		r.tr.Add(n.Sim.Now(), "recover", fmt.Sprintf("%s %s", kind, victim))
	})
}

// schedulePartitions draws one controller-isolation window (set partition)
// and one asymmetric switch->controller window (acks lost one way).
func (r *run) schedulePartitions() {
	if !r.p.Partitions {
		return
	}
	n := r.net

	// Isolate one controller from everyone else for a while. If a
	// Byzantine controller exists, isolate that one — total faultiness
	// stays within f.
	victim := r.byz
	if victim == "" {
		victim = r.ctls[r.rng.Intn(len(r.ctls))]
	}
	var others []simnet.NodeID
	for _, c := range r.ctls {
		if c != victim {
			others = append(others, c)
		}
	}
	for _, s := range r.switches {
		others = append(others, simnet.NodeID(s))
	}
	at := 25*time.Millisecond + time.Duration(r.rng.Int63n(int64(40*time.Millisecond)))
	dur := 15*time.Millisecond + time.Duration(r.rng.Int63n(int64(30*time.Millisecond)))
	n.Sim.At(at, func() {
		n.Net.PartitionSet([]simnet.NodeID{victim}, others)
		r.counter.Add("partition", 1)
		r.tr.Add(n.Sim.Now(), "partition", fmt.Sprintf("isolate %s for %v", victim, dur))
	})
	n.Sim.At(at+dur, func() {
		n.Net.HealSet([]simnet.NodeID{victim}, others)
		r.tr.Add(n.Sim.Now(), "heal", fmt.Sprintf("isolate %s", victim))
	})

	// One-way: a switch loses its path TO one controller (its events and
	// acks vanish) while updates still flow in.
	sw := simnet.NodeID(r.switches[r.rng.Intn(len(r.switches))])
	ctl := r.ctls[r.rng.Intn(len(r.ctls))]
	at2 := 25*time.Millisecond + time.Duration(r.rng.Int63n(int64(40*time.Millisecond)))
	dur2 := 15*time.Millisecond + time.Duration(r.rng.Int63n(int64(30*time.Millisecond)))
	n.Sim.At(at2, func() {
		n.Net.PartitionOneWay(sw, ctl)
		r.counter.Add("partition-oneway", 1)
		r.tr.Add(n.Sim.Now(), "partition-1w", fmt.Sprintf("%s -> %s for %v", sw, ctl, dur2))
	})
	n.Sim.At(at2+dur2, func() {
		n.Net.HealOneWay(sw, ctl)
		r.tr.Add(n.Sim.Now(), "heal-1w", fmt.Sprintf("%s -> %s", sw, ctl))
	})
}
