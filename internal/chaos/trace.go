package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"strings"

	"cicero/internal/simnet"
)

// TraceEvent is one entry in a run's event trace: a flow milestone, a
// fault injection, an update apply, or a violation.
type TraceEvent struct {
	T      simnet.Time
	Kind   string
	Detail string
}

// String renders one entry for replay output.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%12v  %-14s %s", e.T, e.Kind, e.Detail)
}

// Trace accumulates a run's events and an incremental hash over all of
// them. The hash covers every Add ever made — including entries evicted
// from the in-memory ring — so two runs with the same seed must produce
// byte-identical event streams to hash equal. Entries must therefore never
// contain run-varying data (wall time, signature bytes, map order).
type Trace struct {
	h      hash.Hash
	total  int
	events []TraceEvent
	cap    int
}

// defaultTraceCap bounds retained entries; the hash still covers all.
const defaultTraceCap = 200_000

// NewTrace returns an empty trace retaining at most capEvents entries
// (<= 0 selects the default).
func NewTrace(capEvents int) *Trace {
	if capEvents <= 0 {
		capEvents = defaultTraceCap
	}
	return &Trace{h: sha256.New(), cap: capEvents}
}

// Add appends an entry, folding it into the running hash.
func (tr *Trace) Add(t simnet.Time, kind, detail string) {
	fmt.Fprintf(tr.h, "%d|%s|%s\n", int64(t), kind, detail)
	tr.total++
	if len(tr.events) < tr.cap {
		tr.events = append(tr.events, TraceEvent{T: t, Kind: kind, Detail: detail})
	}
}

// Len returns the number of entries added (including any not retained).
func (tr *Trace) Len() int { return tr.total }

// Hash returns the hex digest over every entry added so far. It does not
// reset the running state, so it can be sampled mid-run.
func (tr *Trace) Hash() string {
	return hex.EncodeToString(tr.h.Sum(nil))
}

// Events returns the retained entries.
func (tr *Trace) Events() []TraceEvent { return tr.events }

// Related returns up to max retained entries whose kind or detail contains
// token — the minimal sub-trace reported with a violation.
func (tr *Trace) Related(token string, max int) []TraceEvent {
	var out []TraceEvent
	for _, e := range tr.events {
		if strings.Contains(e.Detail, token) || strings.Contains(e.Kind, token) {
			out = append(out, e)
		}
	}
	if len(out) > max {
		// Keep the earliest and the most recent context around the token.
		head := out[:max/2]
		tail := out[len(out)-(max-len(head)):]
		out = append(append([]TraceEvent(nil), head...), tail...)
	}
	return out
}
