package chaos

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"time"

	"cicero/internal/fabric"
	"cicero/internal/metarepo"
	"cicero/internal/protocol"
	"cicero/internal/tcrypto/pki"
)

// Wall-clock metadata regime for live campaigns: freshness proofs live
// two seconds and the leader re-mints well inside that, so an honest
// store never expires while a frozen one does within the drain budget.
const (
	liveMetaTimestampTTL = 2 * time.Second
	liveMetaRefreshEvery = 700 * time.Millisecond
	liveMetaDocumentTTL  = time.Hour
	liveMetaAttackSize   = 768
	// Canary runs withhold refreshes and shorten the proof lifetime so
	// the freeze becomes observable before the post-drain sweep: the
	// probe sleep (500ms) strictly exceeds TTL + grace, so a frozen
	// store is always past expiry by the time the sweep reads it.
	liveMetaCanaryTTL   = 300 * time.Millisecond
	liveMetaStaleGrace  = 100 * time.Millisecond
	liveMetaProbeSettle = 500 * time.Millisecond
)

// scheduleLiveMetadata lays the metadata campaign onto the wall-clock
// timeline: an initial policy publication, a captured pre-change set,
// replay/splice/forged-key attack waves sourced from the member that is
// about to be retired, and a mid-run membership removal whose reshare
// rotates the root of trust.
func (lr *liveRun) scheduleLiveMetadata() {
	if !lr.p.Metadata {
		return
	}
	dom := lr.net.Domains[0]
	leader := dom.Controllers[0]
	attacker := fabric.NodeID(dom.Members[len(dom.Members)-1])
	fw := lr.opt.FlowWindow

	forgeKeys, err := pki.NewKeyPair(rand.Reader, "meta/forger")
	if err != nil {
		return
	}
	lr.metaForge = forgeKeys
	lr.metaAttacker = attacker

	publish := func(tag string) {
		lr.invokeWait(fabric.NodeID(leader.ID()), func() {
			members := make([]string, 0, len(leader.Members()))
			for _, m := range leader.Members() {
				members = append(members, string(m))
			}
			leader.PublishPolicy(metarepo.Policy{
				Phase:   leader.Phase(),
				Members: members,
				Quorum:  leader.Quorum(),
				Flows:   []metarepo.FlowPolicy{{Src: lr.hosts[0], Dst: lr.hosts[len(lr.hosts)-1], Allow: true}},
			})
		})
		lr.rec.trace("meta-publish", tag)
	}

	lr.events = append(lr.events, liveEvent{at: 2 * time.Millisecond, fn: func() {
		publish("initial policy")
	}})

	// Capture the pre-change set once the publication has propagated.
	lr.events = append(lr.events, liveEvent{at: fw / 3, fn: func() {
		lr.invokeWait(fabric.NodeID(leader.ID()), func() {
			if st := leader.MetaStore(); st != nil {
				lr.metaOldSet = st.CurrentSet()
			}
		})
	}})

	lr.events = append(lr.events, liveEvent{at: fw / 2, fn: func() {
		lr.metaAttackWave("first wave", false)
	}})

	// Membership removal mid-campaign: the reshare installs fresh shares,
	// the leader rotates the root, and the removed member's role key
	// retires everywhere — after which its replayed envelopes classify as
	// retired-key rejections.
	if len(dom.Members) > 4 {
		removed := dom.Members[len(dom.Members)-1]
		lr.events = append(lr.events, liveEvent{at: 2 * fw / 3, fn: func() {
			lr.invokeWait(fabric.NodeID(leader.ID()), func() {
				if err := leader.RequestRemoveController(removed); err == nil {
					lr.rec.count("meta-remove", 1)
					lr.rec.trace("meta-remove", string(removed))
				}
			})
		}})
	}

	lr.events = append(lr.events, liveEvent{at: fw, fn: func() {
		lr.metaAttackWave("second wave", false)
	}})
}

// metaAttackWave sends one round of metadata attacks to every switch:
// the replayed pre-change set, the stale freshness proof, a spliced
// snapshot, and a far-future targets document signed by a key no root
// ever delegated. replayOnly restricts the wave to the replayed set —
// the post-drain rollback probe, which must not also hand a bypassed
// store a fresh high-version document that would mask the regression.
func (lr *liveRun) metaAttackWave(tag string, replayOnly bool) {
	if len(lr.metaOldSet) == 0 || lr.metaForge == nil {
		return
	}
	nowNS := int64(lr.fab.Now())
	for _, swID := range lr.switches {
		sw := fabric.NodeID(swID)
		lr.fab.Send(lr.metaAttacker, sw, protocol.MsgMetaSet{Envs: lr.metaOldSet}, liveMetaAttackSize)
		if replayOnly {
			continue
		}
		for _, env := range lr.metaOldSet {
			if env.Role == protocol.MetaRoleTimestamp {
				lr.fab.Send(lr.metaAttacker, sw, protocol.MsgMeta{Env: env}, liveMetaAttackSize)
			}
		}
		var splice []protocol.MetaEnvelope
		for _, env := range lr.metaOldSet {
			if env.Role == protocol.MetaRoleSnapshot {
				splice = append(splice, env)
			}
		}
		swRef := lr.net.Switches[swID]
		lr.invokeWait(sw, func() {
			if st := swRef.MetaStore(); st != nil {
				for _, env := range st.CurrentSet() {
					if env.Role == protocol.MetaRoleTargets {
						splice = append(splice, env)
					}
				}
			}
		})
		if len(splice) > 1 {
			lr.fab.Send(lr.metaAttacker, sw, protocol.MsgMetaSet{Envs: splice}, liveMetaAttackSize)
		}
		doc := metarepo.Targets{
			Version:   1000,
			IssuedNS:  nowNS,
			ExpiresNS: nowNS + int64(liveMetaDocumentTTL),
		}
		signed := metarepo.Encode(doc)
		env := protocol.MetaEnvelope{
			Role:   protocol.MetaRoleTargets,
			Signed: signed,
			Sigs:   []protocol.MetaSig{metarepo.SignRole(lr.metaForge, protocol.MetaRoleTargets, signed)},
		}
		lr.fab.Send(lr.metaAttacker, sw, protocol.MsgMeta{Env: env}, liveMetaAttackSize)
	}
	lr.rec.count("meta-attack-wave", 1)
	lr.rec.trace("meta-attack", tag)
}

// liveMetaSnapshot is one store's version vector at a probe point.
type liveMetaSnapshot struct {
	root, targets, snapshot, timestamp uint64
}

// finishLiveMetadata runs the metadata convergence checks after the
// drain: a first sweep records every switch store's adopted versions, a
// final attack wave replays the pre-change set against the settled
// system, and the second sweep must find no store rolled back, nothing
// adopted that honest controllers never signed, and no store claiming
// freshness on an expired proof. It also folds the metadata counters
// into the result.
func (lr *liveRun) finishLiveMetadata(res *LiveResult) {
	if !lr.p.Metadata {
		return
	}
	dom := lr.net.Domains[0]

	// Reference digests and counters from the controllers.
	ref := make(map[string][32]byte)
	var maxTargets uint64
	res.MetaRejects = make(map[string]uint64)
	for _, ctl := range dom.Controllers {
		ctl := ctl
		lr.invokeWait(fabric.NodeID(ctl.ID()), func() {
			res.MetaPublished += ctl.MetaPublished
			res.MetaReshares += ctl.Reshares
			res.MetaStaleShares += ctl.MetaStaleShares
			st := ctl.MetaStore()
			if st == nil {
				return
			}
			for reason, count := range st.Rejections() {
				res.MetaRejects[reason] += uint64(count)
			}
			if rt := st.Root(); rt != nil && rt.Version > res.MetaRootVersion {
				res.MetaRootVersion = rt.Version
			}
			for _, env := range st.CurrentSet() {
				var doc struct {
					Version uint64 `json:"version"`
				}
				if json.Unmarshal(env.Signed, &doc) != nil {
					continue
				}
				ref[fmt.Sprintf("%s|%d", env.Role, doc.Version)] = sha256.Sum256(env.Signed)
			}
			_, tg, _, _ := st.Versions()
			if tg > maxTargets {
				maxTargets = tg
			}
		})
	}

	// Sweep 1: record the settled version vectors and run the forgery
	// checks against the settled state — before the replay probe below
	// rewrites a bypassed store's contents.
	before := make(map[string]liveMetaSnapshot, len(lr.switches))
	for _, swID := range lr.switches {
		sw := lr.net.Switches[swID]
		swID := swID
		lr.invokeWait(fabric.NodeID(swID), func() {
			st := sw.MetaStore()
			if st == nil {
				return
			}
			rt, tg, sn, ts := st.Versions()
			before[swID] = liveMetaSnapshot{rt, tg, sn, ts}
			if tg > maxTargets {
				lr.report(InvMetaForged, swID+"|ahead",
					fmt.Sprintf("switch %s holds targets v%d but no controller is past v%d", swID, tg, maxTargets), swID)
			}
			for _, env := range st.CurrentSet() {
				var doc struct {
					Version uint64 `json:"version"`
				}
				if json.Unmarshal(env.Signed, &doc) != nil {
					continue
				}
				key := fmt.Sprintf("%s|%d", env.Role, doc.Version)
				want, ok := ref[key]
				if !ok {
					continue
				}
				if sha256.Sum256(env.Signed) != want {
					lr.report(InvMetaForged, swID+"|"+key,
						fmt.Sprintf("switch %s holds a %s v%d no controller signed", swID, env.Role, doc.Version), swID)
				}
			}
		})
	}

	// Final replay against the settled system, then let it land.
	lr.metaAttackWave("post-drain wave", true)
	time.Sleep(liveMetaProbeSettle)

	// Sweep 2: regression and freshness checks.
	nowNS := int64(lr.fab.Now())
	for _, swID := range lr.switches {
		sw := lr.net.Switches[swID]
		swID := swID
		lr.invokeWait(fabric.NodeID(swID), func() {
			st := sw.MetaStore()
			if st == nil {
				return
			}
			res.MetaConfigRejects += sw.MetaConfigRejects
			for reason, count := range st.Rejections() {
				res.MetaRejects[reason] += uint64(count)
			}
			rt, tg, sn, ts := st.Versions()
			cur := liveMetaSnapshot{rt, tg, sn, ts}
			if prev, ok := before[swID]; ok &&
				(cur.root < prev.root || cur.targets < prev.targets ||
					cur.snapshot < prev.snapshot || cur.timestamp < prev.timestamp) {
				lr.report(InvMetaRollback, swID,
					fmt.Sprintf("switch %s store regressed after the post-drain replay: %+v -> %+v", swID, prev, cur), swID)
			}
			// A store claiming freshness must hold a live proof; an honest
			// store past expiry reports itself stale and is skipped.
			if tg > 0 && st.Fresh(nowNS) {
				doc := st.TimestampDoc()
				if doc == nil || nowNS > doc.ExpiresNS+int64(liveMetaStaleGrace) {
					lr.report(InvStalePolicy, swID,
						fmt.Sprintf("switch %s claims policy v%d is fresh without a live proof", swID, tg), swID)
				}
			}
		})
	}
}
