// Wall-clock chaos: the campaign profiles executed on the live backends
// (internal/livenet) instead of the simulator. The same fault families —
// message drop/delay/duplication/corruption, crash windows, partitions,
// and a Byzantine controller — inject through the fabric fault plane
// (fabric.FaultInjector), so one filter implementation adjudicates
// messages identically on simnet, in-process channels, and TCP sockets.
//
// Live runs are not deterministic (goroutine scheduling and real sockets
// interleave freely), so the invariant plane shifts from the simulator's
// online per-step checks to convergence checks: faults are injected for a
// bounded wall-clock window, every fault is then healed (crashed machines
// restart via the fabric, crashed processes rebuild via
// core.RestartController / core.RestartSwitch and run the protocol's
// recovery paths), a drain phase re-drives stalled flows until the network
// quiesces, and the final state must converge:
//
//   - the data-plane walk invariants (blackhole freedom, loop freedom,
//     path consistency) hold on a quiesced snapshot of every flow table;
//   - honest controllers' event ledgers agree (pairwise prefix);
//   - every update any switch applied as valid appears in an honest
//     controller's audit ledger (no-forged-rule — with the verification
//     canary planted, this is the check that must fire);
//   - restarted controllers' rebuilt ledgers are prefix-consistent with
//     their never-crashed peers' (recovery never installs forged or
//     reordered history), and byte-identical under benign fault profiles
//     (recovery really resynchronized);
//   - the final flow tables match a fault-free simnet reference run of the
//     same workload (crashed switches provably rebuilt their tables).
package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"cicero/internal/audit"
	"cicero/internal/bft"
	"cicero/internal/controlplane"
	"cicero/internal/core"
	"cicero/internal/fabric"
	"cicero/internal/livenet"
	"cicero/internal/metrics"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/tcrypto/merkle"
	"cicero/internal/tcrypto/pki"
	"cicero/internal/topology"
)

// Live-only invariant names (the convergence checks).
const (
	// InvResync: a restarted controller's rebuilt event ledger must be
	// prefix-consistent with its never-crashed honest peers' (recovery
	// must never install forged or reordered history).
	InvResync = "resync-divergence"
	// InvReference: the quiesced flow tables must match the fault-free
	// simnet reference of the same workload (checked when every flow
	// completed; meaningless under the canary, which plants forged rules).
	InvReference = "reference-divergence"
)

// liveFabric is what the runner needs beyond fabric.Fabric: the fault
// plane, the resilience counters, and teardown. Both livenet backends
// satisfy it.
type liveFabric interface {
	fabric.Fabric
	fabric.FaultInjector
	Crash(fabric.NodeID)
	Restart(fabric.NodeID)
	Partition(a, b fabric.NodeID)
	Heal(a, b fabric.NodeID)
	PartitionOneWay(from, to fabric.NodeID)
	HealOneWay(from, to fabric.NodeID)
	Resilience() livenet.ResilienceStats
	Close()
}

// LiveOptions tunes a wall-clock campaign run.
type LiveOptions struct {
	// Backend selects "inproc" or "tcp".
	Backend string
	// Seed drives workload and fault-schedule drawing (and the simnet
	// reference). Live runs are not bit-reproducible — the seed fixes what
	// is injected, not how it interleaves.
	Seed int64
	// FlowWindow spreads flow arrivals over [0, FlowWindow) wall time;
	// fault windows scale from it.
	FlowWindow time.Duration
	// DrainTimeout bounds the post-fault drain phase (re-driving stalled
	// flows, awaiting recoveries and quiescence).
	DrainTimeout time.Duration
	// OpTimeout bounds each serialized node access (Invoke round trip).
	OpTimeout time.Duration
	// ViewChangeTimeout for the live controllers. Wall-clock runs share
	// cores with the whole harness (and the race detector in CI), so this
	// must dwarf scheduling hiccups; it still has to be small enough that
	// a crashed primary is replaced within the drain budget.
	ViewChangeTimeout time.Duration
}

// Defaulted fills zero fields.
func (o LiveOptions) Defaulted() LiveOptions {
	if o.Backend == "" {
		o.Backend = "inproc"
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FlowWindow == 0 {
		o.FlowWindow = 400 * time.Millisecond
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 45 * time.Second
	}
	if o.OpTimeout == 0 {
		o.OpTimeout = 10 * time.Second
	}
	if o.ViewChangeTimeout == 0 {
		o.ViewChangeTimeout = 2 * time.Second
	}
	return o
}

// LiveResult is one live campaign run's outcome.
type LiveResult struct {
	Profile string
	Backend string
	Seed    int64

	FlowsDone  int
	FlowsTotal int
	// Violations are the convergence-check failures (empty on a healthy
	// run; non-empty expected under the canary).
	Violations []Violation
	// Injected counts injected faults plus transport-resilience events
	// under the canonical metrics names.
	Injected map[string]uint64
	Net      fabric.Stats
	// Resilience snapshots the backend's retry/reconnect/breaker layer.
	Resilience livenet.ResilienceStats

	// CtlRestarts / CtlRecovered: controller processes rebuilt after a
	// crash window, and how many completed peer-state recovery.
	CtlRestarts  int
	CtlRecovered int
	// SwitchRestarts: switch processes rebuilt (empty table + resync).
	SwitchRestarts int
	// ResyncProven: every restarted controller's event ledger was
	// byte-identical to some never-crashed honest peer's at quiescence.
	// Expected true for benign fault profiles; under Byzantine message
	// loss a lawful delivery lag can leave it false (prefix consistency,
	// the safety property, is still enforced via InvResync).
	ResyncProven bool
	// TableMatch: final flow tables matched the fault-free simnet
	// reference (only meaningful when FlowsDone == FlowsTotal and no
	// canary is planted).
	TableMatch  bool
	TableDigest string

	UpdatesApplied  uint64
	UpdatesRejected uint64

	// Metadata-plane outcome (zero unless the profile enables it).
	MetaPublished     uint64
	MetaReshares      uint64
	MetaRootVersion   uint64
	MetaStaleShares   uint64
	MetaRejects       map[string]uint64
	MetaConfigRejects uint64

	Wall  time.Duration
	Err   string
	Trace *Trace
}

// liveFlowSpec is one drawn workload entry.
type liveFlowSpec struct {
	id       int
	src, dst string
	ingress  string // "" for local (switchless) flows
	at       time.Duration
}

// liveFlow tracks one flow's completion.
type liveFlow struct {
	liveFlowSpec
	once sync.Once
	done chan struct{}
}

func (f *liveFlow) complete() { f.once.Do(func() { close(f.done) }) }

func (f *liveFlow) isDone() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// liveRecorder is the concurrency-safe observation plane: the trace, the
// fault counters, and the apply log all take writes from mailbox and
// sender goroutines.
type liveRecorder struct {
	mu           sync.Mutex
	tr           *Trace
	counter      *metrics.CounterSet
	now          func() fabric.Time
	applies      []liveApply
	batchApplies []liveBatchApply
}

// liveApply is one switch apply decision, reduced for the forged-rule
// convergence check.
type liveApply struct {
	sw     string
	id     openflow.MsgID
	phase  uint64
	digest [32]byte
	valid  bool
}

func (rec *liveRecorder) trace(kind, detail string) {
	rec.mu.Lock()
	rec.tr.Add(rec.now(), kind, detail)
	rec.mu.Unlock()
}

func (rec *liveRecorder) count(name string, n uint64) {
	rec.mu.Lock()
	rec.counter.Add(name, n)
	rec.mu.Unlock()
}

// violation records a violation trace event and returns the related
// sub-trace under one critical section (injector goroutines may still be
// appending when the convergence sweep runs).
func (rec *liveRecorder) violation(invariant, detail, token string) []TraceEvent {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.tr.Add(rec.now(), "violation", invariant+": "+detail)
	return rec.tr.Related(token, 12)
}

// liveBatchApply is one batch-amortized apply decision. The Merkle
// inclusion proof is re-verified at record time (pure hashing, cheap, and
// the message's backing arrays may be reused once the mailbox moves on);
// the convergence sweep judges the stored verdicts.
type liveBatchApply struct {
	sw      string
	id      openflow.MsgID
	phase   uint64
	valid   bool
	proofOK bool
}

// onBatchApply observes batch-amortized applies (dataplane BatchApplyHook),
// re-running the inclusion proof independently of the switch's verdict.
func (rec *liveRecorder) onBatchApply(sw string, m protocol.MsgBatchUpdate, valid bool) {
	leaf := openflow.CanonicalUpdateBytes(m.UpdateID, m.Phase, m.Mods)
	proofOK := merkle.Verify(m.BatchRoot, leaf, m.LeafIndex, m.LeafCount, m.Proof)
	rec.mu.Lock()
	rec.tr.Add(rec.now(), "batch-apply", fmt.Sprintf("sw=%s update=%s phase=%d leaf=%d/%d valid=%v proof=%v",
		sw, m.UpdateID, m.Phase, m.LeafIndex, m.LeafCount, valid, proofOK))
	rec.batchApplies = append(rec.batchApplies, liveBatchApply{
		sw: sw, id: m.UpdateID, phase: m.Phase, valid: valid, proofOK: proofOK,
	})
	rec.mu.Unlock()
}

func (rec *liveRecorder) onApply(sw string, id openflow.MsgID, phase uint64, mods []openflow.FlowMod, valid bool) {
	digest := sha256.Sum256(openflow.CanonicalUpdateBytes(id, phase, mods))
	rec.mu.Lock()
	rec.tr.Add(rec.now(), "apply", fmt.Sprintf("sw=%s update=%s phase=%d mods=%d valid=%v", sw, id, phase, len(mods), valid))
	rec.applies = append(rec.applies, liveApply{sw: sw, id: id, phase: phase, digest: digest, valid: valid})
	rec.mu.Unlock()
}

// liveInjector adjudicates every admitted message on the live fabric. It
// runs on whatever goroutine called Send, so all its draws go through one
// locked RNG; the mutation logic is shared with the simnet injector.
type liveInjector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	link     LinkFaults
	byz      fabric.NodeID
	hosts    []string
	nctls    int
	forgeSeq uint64
	rec      *liveRecorder
	debugBFT bool // CHAOS_DEBUG_BFT: trace every broadcast message
}

func (in *liveInjector) filter(from, to fabric.NodeID, msg fabric.Message, size int) fabric.FaultAction {
	in.mu.Lock()
	defer in.mu.Unlock()
	var act fabric.FaultAction

	if in.debugBFT {
		if m, ok := msg.(protocol.MsgBFT); ok {
			in.rec.trace("bft", fmt.Sprintf("%s->%s %s", from, to, bftDebugString(m)))
		}
	}
	if in.byz != "" && from == in.byz {
		if replaced, kind := in.byzMutate(msg); kind != "" {
			act.Replace = replaced
			msg = replaced
			in.rec.count(kind, 1)
			in.rec.trace(kind, fmt.Sprintf("->%s", to))
		}
	}
	lf := in.link
	if lf.DropProb > 0 && in.rng.Float64() < lf.DropProb {
		in.rec.count("drop", 1)
		in.rec.trace("inj-drop", fmt.Sprintf("%s->%s %T", from, to, msg))
		return fabric.FaultAction{Drop: true}
	}
	if lf.CorruptProb > 0 && in.rng.Float64() < lf.CorruptProb {
		if corrupted := corruptMessage(msg); corrupted != nil {
			act.Replace = corrupted
			in.rec.count("corrupt", 1)
			in.rec.trace("inj-corrupt", fmt.Sprintf("%s->%s %T", from, to, msg))
		}
	}
	if lf.DupProb > 0 && in.rng.Float64() < lf.DupProb {
		act.Duplicates = 1
		in.rec.count("dup", 1)
		in.rec.trace("inj-dup", fmt.Sprintf("%s->%s %T", from, to, msg))
	}
	if lf.DelayProb > 0 && lf.DelayMax > 0 && in.rng.Float64() < lf.DelayProb {
		act.Delay = time.Duration(in.rng.Int63n(int64(lf.DelayMax)))
		in.rec.count("delay", 1)
		in.rec.trace("inj-delay", fmt.Sprintf("%s->%s %T +%v", from, to, msg, act.Delay))
	}
	return act
}

// bftDebugString renders a broadcast message compactly for the
// CHAOS_DEBUG_BFT trace tap.
func bftDebugString(m protocol.MsgBFT) string {
	switch in := m.Inner.(type) {
	case bft.Request:
		return fmt.Sprintf("Request origin=%d len=%d", in.Origin, len(in.Payload))
	case bft.PrePrepare:
		return fmt.Sprintf("PrePrepare v=%d seq=%d d=%x", in.View, in.Seq, in.Digest[:4])
	case bft.Prepare:
		return fmt.Sprintf("Prepare v=%d seq=%d r=%d d=%x", in.View, in.Seq, in.Replica, in.Digest[:4])
	case bft.Commit:
		return fmt.Sprintf("Commit v=%d seq=%d r=%d d=%x", in.View, in.Seq, in.Replica, in.Digest[:4])
	case bft.ViewChange:
		return fmt.Sprintf("ViewChange nv=%d r=%d prep=%d ld=%d", in.NewView, in.Replica, len(in.Prepared), in.LastDelivered)
	case bft.NewView:
		return fmt.Sprintf("NewView v=%d pps=%d", in.View, len(in.PrePrepares))
	default:
		return fmt.Sprintf("%T", m.Inner)
	}
}

// byzMutate shares the simnet injector's mutation cores (caller holds
// in.mu).
func (in *liveInjector) byzMutate(msg fabric.Message) (fabric.Message, string) {
	switch m := msg.(type) {
	case protocol.MsgUpdate:
		out, kind := byzMutateUpdate(in.rng, in.nctls, m)
		if kind == "" {
			return nil, ""
		}
		return out, kind
	case protocol.MsgBatchUpdate:
		out, kind := byzMutateBatch(in.rng, m)
		if kind == "" {
			return nil, ""
		}
		return out, kind
	case protocol.MsgBFT:
		out, kind := byzMutateBFT(in.rng, in.hosts, &in.forgeSeq, m)
		if kind == "" {
			return nil, ""
		}
		return out, kind
	}
	return nil, ""
}

// liveEvent is one entry of the wall-clock fault/workload timeline.
type liveEvent struct {
	at time.Duration
	fn func()
}

// liveRun holds one live campaign's state. All orchestration (timeline,
// drain, restarts, snapshots) happens on the single driver goroutine;
// node state is only touched through the fabric's serial contexts.
type liveRun struct {
	p   Profile
	opt LiveOptions
	fab liveFabric
	net *core.Network
	rec *liveRecorder
	rng *rand.Rand

	hosts    []string
	hostSet  map[string]bool
	switches []string
	byz      fabric.NodeID

	flows  []*liveFlow
	events []liveEvent

	ctlRestarted map[int]bool
	swRestarted  map[string]bool

	seen       map[string]bool
	violations []Violation

	// Metadata campaign state (only set when the profile enables it).
	metaOldSet   []protocol.MetaEnvelope
	metaForge    *pki.KeyPair
	metaAttacker fabric.NodeID
}

// report records a deduplicated convergence violation.
func (lr *liveRun) report(invariant, dedupKey, detail, traceToken string) {
	key := invariant + "|" + dedupKey
	if lr.seen[key] {
		return
	}
	lr.seen[key] = true
	lr.violations = append(lr.violations, Violation{
		Seed:      lr.opt.Seed,
		T:         lr.fab.Now(),
		Invariant: invariant,
		Detail:    detail,
		Trace:     lr.rec.violation(invariant, detail, traceToken),
	})
}

// invokeWait runs fn in the node's serial context and waits for it.
func (lr *liveRun) invokeWait(id fabric.NodeID, fn func()) error {
	done := make(chan struct{})
	lr.fab.Invoke(id, func() {
		fn()
		close(done)
	})
	select {
	case <-done:
		return nil
	case <-time.After(lr.opt.OpTimeout):
		return fmt.Errorf("chaos live: node %s did not run invoke within %v", id, lr.opt.OpTimeout)
	}
}

// newLiveChaosFabric constructs the selected backend.
func newLiveChaosFabric(backend string) (liveFabric, error) {
	codec := protocol.NewWireCodec(nil)
	switch backend {
	case "inproc":
		return livenet.NewInProc(codec), nil
	case "tcp":
		return livenet.NewTCP(codec)
	default:
		return nil, fmt.Errorf("chaos live: unknown backend %q (have inproc, tcp)", backend)
	}
}

// liveCoreConfig is the deployment both the live run and its simnet
// reference share: Cicero with switch aggregation, like the simulated
// campaigns. Live runs pay for real crypto; the reference does not need to
// (the compared digests are crypto-independent).
func liveCoreConfig(p Profile, g *topology.Graph, fab fabric.Fabric, seed int64) core.Config {
	cfg := core.Config{
		Graph:                g,
		Protocol:             controlplane.ProtoCicero,
		Aggregation:          controlplane.AggSwitch,
		ControllersPerDomain: p.Controllers,
		Cost:                 protocol.Calibrated(),
		Seed:                 seed,
		Fabric:               fab,
		CryptoReal:           fab != nil,
		BatchSize:            p.BatchSize,
		BatchDelay:           p.BatchDelay,
	}
	if fab == nil {
		cfg.Jitter = 0.1
		cfg.ViewChangeTimeout = p.ViewChangeTimeout
	}
	// The metadata plane only runs on the live deployment (the fault-free
	// reference compares crypto-independent table digests). Refresh
	// forever normally; the bypass canary disables the refresh loop
	// entirely — the withholding freeze — so bypassed stores end up
	// claiming freshness on expired proofs.
	if p.Metadata && fab != nil {
		cfg.Metadata = true
		cfg.MetadataTTL = liveMetaDocumentTTL
		cfg.MetadataTimestampTTL = liveMetaTimestampTTL
		cfg.MetadataRefresh = liveMetaRefreshEvery
		cfg.MetadataRefreshHorizon = -1
		if p.CanaryMetaBypass {
			cfg.MetadataRefreshHorizon = 0
			// Short-lived proofs so the freeze is observable within the
			// run: the last mint expires before the post-drain sweep.
			cfg.MetadataTimestampTTL = liveMetaCanaryTTL
		}
	}
	return cfg
}

// tableDigestOf canonicalizes a set of flow tables: sorted rule lines,
// hashed. Insertion order varies across backends and fault schedules;
// content must not.
func tableDigestOf(tables map[string]*openflow.FlowTable) string {
	var lines []string
	for id, t := range tables {
		for _, r := range t.Rules() {
			lines = append(lines, fmt.Sprintf("%s|%d|%s|%s|%d", id, r.Priority, r.Match, r.Action, r.Cookie))
		}
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, line := range lines {
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// liveReference runs the drawn workload fault-free on the simulator and
// returns the canonical table digest the live run must converge to.
func liveReference(p Profile, g *topology.Graph, specs []liveFlowSpec, seed int64) (string, error) {
	n, err := core.Build(liveCoreConfig(p, g, nil, seed))
	if err != nil {
		return "", err
	}
	for i, spec := range specs {
		if spec.ingress == "" {
			continue
		}
		spec := spec
		ingress := n.Switches[spec.ingress]
		n.Sim.At(time.Duration(i)*time.Millisecond, func() {
			ingress.PacketArrival(spec.src, spec.dst)
		})
	}
	if _, err := n.Sim.RunUntil(5 * time.Second); err != nil {
		return "", err
	}
	tables := make(map[string]*openflow.FlowTable, len(n.Switches))
	for id, sw := range n.Switches {
		tables[id] = sw.Table()
	}
	return tableDigestOf(tables), nil
}

// RunLiveSeed executes one wall-clock campaign of the profile on a live
// backend: inject over the fault window, heal and restart everything,
// drain, then run the convergence checks.
func RunLiveSeed(p Profile, opt LiveOptions) (res LiveResult) {
	p = p.Defaulted()
	p.CryptoReal = true // live runs always pay for real crypto
	opt = opt.Defaulted()
	res = LiveResult{Profile: p.Name, Backend: opt.Backend, Seed: opt.Seed}
	wallStart := time.Now()
	defer func() { res.Wall = time.Since(wallStart) }()

	fabCfg := topology.DefaultFabricConfig()
	fabCfg.RacksPerPod = p.RacksPerPod
	fabCfg.HostsPerRack = p.HostsPerRack
	g, err := topology.BuildSinglePod(fabCfg)
	if err != nil {
		res.Err = err.Error()
		return res
	}

	lr := &liveRun{
		p:            p,
		opt:          opt,
		rng:          rand.New(rand.NewSource(opt.Seed ^ chaosSeedSalt)),
		ctlRestarted: make(map[int]bool),
		swRestarted:  make(map[string]bool),
		seen:         make(map[string]bool),
	}
	lr.hostSet = make(map[string]bool)
	for _, node := range g.NodesOfKind(topology.KindHost) {
		lr.hosts = append(lr.hosts, node.ID)
		lr.hostSet[node.ID] = true
	}

	// Draw the workload first (fixed RNG consumption order, like the
	// simulated campaigns), so the fault-free reference sees the exact
	// same flows.
	specs := lr.drawFlows(g)
	refDigest, err := liveReference(p, g, specs, opt.Seed)
	if err != nil {
		res.Err = fmt.Sprintf("simnet reference: %v", err)
		return res
	}

	fab, err := newLiveChaosFabric(opt.Backend)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	defer fab.Close()
	lr.fab = fab
	lr.rec = &liveRecorder{tr: NewTrace(0), counter: metrics.NewCounterSet(), now: fab.Now}

	cfg := liveCoreConfig(p, g, fab, opt.Seed)
	cfg.ViewChangeTimeout = opt.ViewChangeTimeout
	cfg.SwitchApplyHook = lr.rec.onApply
	cfg.SwitchBatchHook = lr.rec.onBatchApply
	net, err := core.Build(cfg)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	lr.net = net
	for id := range net.Switches {
		lr.switches = append(lr.switches, id)
	}
	sort.Strings(lr.switches)
	dom := net.Domains[0]
	if p.Byzantine {
		lr.byz = fabric.NodeID(dom.Members[len(dom.Members)-1])
	}

	if p.CanarySkipVerify {
		for _, id := range lr.switches {
			sw := net.Switches[id]
			if err := lr.invokeWait(fabric.NodeID(id), func() { sw.SetVerifyBypass(true) }); err != nil {
				res.Err = err.Error()
				return res
			}
		}
		lr.rec.trace("canary", "switch verification bypassed on all switches")
	}
	if p.CanaryMetaBypass {
		for _, id := range lr.switches {
			sw := net.Switches[id]
			if err := lr.invokeWait(fabric.NodeID(id), func() {
				if st := sw.MetaStore(); st != nil {
					st.SetVerifyBypass(true)
				}
			}); err != nil {
				res.Err = err.Error()
				return res
			}
		}
		lr.rec.trace("canary", "metadata verification bypassed on all switch stores")
	}

	// Install the live injector before any traffic, then lay out the
	// wall-clock timeline: flows, crash windows, partitions, Byzantine
	// injections — the same draw order as the simulated campaigns.
	inj := &liveInjector{
		rng:   rand.New(rand.NewSource(opt.Seed ^ chaosSeedSalt ^ 0x11fe)),
		link:  p.Link,
		byz:   lr.byz,
		hosts: lr.hosts,
		nctls: len(dom.Members),
		rec:   lr.rec,

		debugBFT: os.Getenv("CHAOS_DEBUG_BFT") != "",
	}
	fab.SetFilter(inj.filter)
	defer fab.SetFilter(nil)

	lr.scheduleLiveFlows(specs)
	lr.scheduleLiveCrashes()
	lr.scheduleLivePartitions()
	lr.scheduleLiveByzantine()
	lr.scheduleLiveMetadata()
	lr.runTimeline()

	// Every fault is now healed and every crashed node restarted: drain.
	drainDeadline := time.Now().Add(opt.DrainTimeout)
	lr.drainFlows(drainDeadline)
	lr.awaitRecoveries(drainDeadline, &res)
	if err := lr.awaitQuiescence(drainDeadline); err != nil {
		res.Err = err.Error()
	}

	lr.converge(refDigest, &res)
	lr.finishLiveMetadata(&res)

	res.FlowsTotal = len(lr.flows)
	for _, f := range lr.flows {
		if f.isDone() {
			res.FlowsDone++
		}
	}
	res.Violations = lr.violations
	res.CtlRestarts = len(lr.ctlRestarted)
	res.SwitchRestarts = len(lr.swRestarted)
	res.Net = fab.Stats()
	res.Resilience = fab.Resilience()
	lr.rec.mu.Lock()
	res.Trace = lr.rec.tr
	lr.rec.counter.Add(metrics.CounterRetry, res.Resilience.Retries)
	lr.rec.counter.Add(metrics.CounterReconnect, res.Resilience.Reconnects)
	lr.rec.counter.Add(metrics.CounterBreakerTrip, res.Resilience.BreakerTrips)
	res.Injected = lr.rec.counter.Map()
	lr.rec.mu.Unlock()
	return res
}

// drawFlows draws the workload: random host pairs arriving uniformly over
// the flow window.
func (lr *liveRun) drawFlows(g *topology.Graph) []liveFlowSpec {
	specs := make([]liveFlowSpec, 0, lr.p.Flows)
	for i := 0; i < lr.p.Flows; i++ {
		src := lr.hosts[lr.rng.Intn(len(lr.hosts))]
		dst := lr.hosts[lr.rng.Intn(len(lr.hosts))]
		for dst == src {
			dst = lr.hosts[lr.rng.Intn(len(lr.hosts))]
		}
		spec := liveFlowSpec{
			id:  i,
			src: src, dst: dst,
			at: time.Duration(lr.rng.Int63n(int64(lr.opt.FlowWindow))),
		}
		if path := g.ShortestPath(src, dst); path != nil {
			if switches := g.SwitchesOnPath(path); len(switches) > 0 {
				spec.ingress = switches[0]
			}
		}
		specs = append(specs, spec)
	}
	return specs
}

// scheduleLiveFlows turns the drawn specs into timeline events.
func (lr *liveRun) scheduleLiveFlows(specs []liveFlowSpec) {
	for _, spec := range specs {
		f := &liveFlow{liveFlowSpec: spec, done: make(chan struct{})}
		lr.flows = append(lr.flows, f)
		lr.events = append(lr.events, liveEvent{at: spec.at, fn: func() {
			lr.rec.trace("flow-start", fmt.Sprintf("flow=%d %s->%s ingress=%s", f.id, f.src, f.dst, f.ingress))
			lr.driveFlow(f)
		}})
	}
}

// driveFlow (re)injects one flow at its ingress: completion is observed
// via a rule-install subscription, exactly like the core driver. Safe to
// call repeatedly — table-miss events deduplicate per endpoint pair while
// outstanding, and completion is once-only.
func (lr *liveRun) driveFlow(f *liveFlow) {
	if f.ingress == "" {
		// Same-rack short circuit: no updates needed.
		f.complete()
		return
	}
	sw := lr.net.Switches[f.ingress]
	if sw == nil || lr.fab.Crashed(fabric.NodeID(f.ingress)) {
		// The ingress is down; the packet never reaches the data plane.
		// The drain phase re-drives after restart.
		lr.rec.trace("flow-lost", fmt.Sprintf("flow=%d ingress %s crashed", f.id, f.ingress))
		return
	}
	src, dst := f.src, f.dst
	lr.fab.Invoke(fabric.NodeID(f.ingress), func() {
		if _, ok := sw.Lookup(src, dst); ok {
			f.complete()
			return
		}
		sw.Subscribe(src, dst, func(fabric.Time) { f.complete() })
		sw.PacketArrival(src, dst)
	})
}

// scheduleLiveCrashes lays crash–restart windows on the timeline. A crash
// fails the machine on the fabric (mailbox purged, sockets severed); the
// restart revives the machine and rebuilds the process with empty volatile
// state, kicking off recovery (controllers: peer state transfer; switches:
// table resync).
func (lr *liveRun) scheduleLiveCrashes() {
	fw := lr.opt.FlowWindow
	dom := lr.net.Domains[0]
	if lr.p.ControllerCrash {
		at := fw/8 + time.Duration(lr.rng.Int63n(int64(fw/8)))
		for i := 0; i < 2; i++ {
			slot := lr.rng.Intn(len(dom.Members))
			for lr.byz != "" && fabric.NodeID(dom.Members[slot]) == lr.byz {
				slot = lr.rng.Intn(len(dom.Members))
			}
			dur := fw/4 + time.Duration(lr.rng.Int63n(int64(fw/4)))
			lr.crashCtlWindow(slot, at, dur)
			at += dur + fw/8 + time.Duration(lr.rng.Int63n(int64(fw/4)))
		}
	}
	if lr.p.SwitchCrash {
		picks := lr.rng.Perm(len(lr.switches))[:2]
		for _, pi := range picks {
			victim := lr.switches[pi]
			at := fw/8 + time.Duration(lr.rng.Int63n(int64(fw/2)))
			dur := fw/8 + time.Duration(lr.rng.Int63n(int64(fw/4)))
			lr.crashSwitchWindow(victim, at, dur)
		}
	}
}

// crashCtlWindow schedules one controller crash–restart window.
func (lr *liveRun) crashCtlWindow(slot int, at, dur time.Duration) {
	id := lr.net.Domains[0].Members[slot]
	lr.events = append(lr.events, liveEvent{at: at, fn: func() {
		lr.rec.count(metrics.CounterCrash, 1)
		lr.rec.trace("crash", fmt.Sprintf("controller %s for %v", id, dur))
		lr.fab.Crash(fabric.NodeID(id))
	}})
	lr.events = append(lr.events, liveEvent{at: at + dur, fn: func() {
		lr.fab.Restart(fabric.NodeID(id))
		if _, err := lr.net.RestartController(0, slot); err != nil {
			lr.rec.trace("restart-error", err.Error())
			return
		}
		lr.ctlRestarted[slot] = true
		lr.rec.count(metrics.CounterRestart, 1)
		lr.rec.trace("restart", fmt.Sprintf("controller %s", id))
	}})
}

// crashSwitchWindow schedules one switch crash–restart window.
func (lr *liveRun) crashSwitchWindow(id string, at, dur time.Duration) {
	lr.events = append(lr.events, liveEvent{at: at, fn: func() {
		lr.rec.count(metrics.CounterCrash, 1)
		lr.rec.trace("crash", fmt.Sprintf("switch %s for %v", id, dur))
		lr.fab.Crash(fabric.NodeID(id))
	}})
	lr.events = append(lr.events, liveEvent{at: at + dur, fn: func() {
		lr.fab.Restart(fabric.NodeID(id))
		if _, err := lr.net.RestartSwitch(id); err != nil {
			lr.rec.trace("restart-error", err.Error())
			return
		}
		lr.swRestarted[id] = true
		lr.rec.count(metrics.CounterRestart, 1)
		lr.rec.trace("restart", fmt.Sprintf("switch %s", id))
	}})
}

// scheduleLivePartitions draws one controller-isolation window and one
// asymmetric switch->controller window, mirroring the simulated schedule.
func (lr *liveRun) scheduleLivePartitions() {
	if !lr.p.Partitions {
		return
	}
	fw := lr.opt.FlowWindow
	dom := lr.net.Domains[0]
	ctls := make([]fabric.NodeID, len(dom.Members))
	for i, m := range dom.Members {
		ctls[i] = fabric.NodeID(m)
	}

	// Isolate one controller (the Byzantine one when present, keeping
	// total faultiness within f).
	victim := lr.byz
	if victim == "" {
		victim = ctls[lr.rng.Intn(len(ctls))]
	}
	var others []fabric.NodeID
	for _, c := range ctls {
		if c != victim {
			others = append(others, c)
		}
	}
	for _, s := range lr.switches {
		others = append(others, fabric.NodeID(s))
	}
	at := fw/4 + time.Duration(lr.rng.Int63n(int64(fw/4)))
	dur := fw/8 + time.Duration(lr.rng.Int63n(int64(fw/4)))
	lr.events = append(lr.events, liveEvent{at: at, fn: func() {
		for _, o := range others {
			lr.fab.Partition(victim, o)
		}
		lr.rec.count("partition", 1)
		lr.rec.trace("partition", fmt.Sprintf("isolate %s for %v", victim, dur))
	}})
	lr.events = append(lr.events, liveEvent{at: at + dur, fn: func() {
		for _, o := range others {
			lr.fab.Heal(victim, o)
		}
		lr.rec.trace("heal", fmt.Sprintf("isolate %s", victim))
	}})

	// One-way: a switch loses its path TO one controller (its events and
	// acks vanish) while updates still flow in.
	sw := fabric.NodeID(lr.switches[lr.rng.Intn(len(lr.switches))])
	ctl := ctls[lr.rng.Intn(len(ctls))]
	at2 := fw/4 + time.Duration(lr.rng.Int63n(int64(fw/4)))
	dur2 := fw/8 + time.Duration(lr.rng.Int63n(int64(fw/4)))
	lr.events = append(lr.events, liveEvent{at: at2, fn: func() {
		lr.fab.PartitionOneWay(sw, ctl)
		lr.rec.count("partition-oneway", 1)
		lr.rec.trace("partition-1w", fmt.Sprintf("%s -> %s for %v", sw, ctl, dur2))
	}})
	lr.events = append(lr.events, liveEvent{at: at2 + dur2, fn: func() {
		lr.fab.HealOneWay(sw, ctl)
		lr.rec.trace("heal-1w", fmt.Sprintf("%s -> %s", sw, ctl))
	}})
}

// scheduleLiveByzantine draws timed forged-message injections from the
// Byzantine controller: fabricated share quorums, forged pre-aggregated
// updates, and bare PACKET_OUTs (the §2.2 attack). Real verification must
// reject every one; with the canary planted they apply and the forged-rule
// convergence check must fire.
func (lr *liveRun) scheduleLiveByzantine() {
	if lr.byz == "" {
		return
	}
	quorum := lr.net.Domains[0].Controllers[0].Quorum()
	kinds := 3
	if lr.p.BatchSize > 1 {
		kinds = 4 // add fabricated batch-share quorums under a forged root
	}
	const injections = 6
	for i := 0; i < injections; i++ {
		at := 10*time.Millisecond + time.Duration(lr.rng.Int63n(int64(lr.opt.FlowWindow)))
		sw := lr.switches[lr.rng.Intn(len(lr.switches))]
		dst := lr.hosts[lr.rng.Intn(len(lr.hosts))]
		kind := lr.rng.Intn(kinds)
		seq := uint64(i + 1)
		sig := garbageBytes(lr.rng, 33)
		root := garbageBytes(lr.rng, merkle.HashSize)
		shareSigs := make([][]byte, quorum)
		for j := range shareSigs {
			shareSigs[j] = garbageBytes(lr.rng, 33)
		}
		lr.events = append(lr.events, liveEvent{at: at, fn: func() {
			id := openflow.MsgID{Origin: "byz/forge", Seq: seq}
			mods := []openflow.FlowMod{{
				Op:     openflow.FlowAdd,
				Switch: sw,
				Rule: openflow.Rule{
					Priority: 50,
					Match:    openflow.Match{Src: openflow.Wildcard, Dst: dst},
					Action:   openflow.Action{Type: openflow.ActionOutput, NextHop: "byz/blackhole"},
				},
			}}
			switch kind {
			case 0:
				for j := 0; j < quorum; j++ {
					msg := protocol.MsgUpdate{
						UpdateID:   id,
						Mods:       mods,
						Phase:      1,
						From:       "byz",
						ShareIndex: uint32(j + 1),
						Share:      shareSigs[j],
					}
					lr.fab.Send(lr.byz, fabric.NodeID(sw), msg, 512)
				}
				lr.rec.count("byz-forge-shares", 1)
				lr.rec.trace("byz-forge-shares", fmt.Sprintf("->%s %s dst=%s", sw, id, dst))
			case 1:
				msg := protocol.MsgAggUpdate{UpdateID: id, Mods: mods, Phase: 1, Signature: sig}
				lr.fab.Send(lr.byz, fabric.NodeID(sw), msg, 512)
				lr.rec.count("byz-forge-agg", 1)
				lr.rec.trace("byz-forge-agg", fmt.Sprintf("->%s %s dst=%s", sw, id, dst))
			case 2:
				msg := openflow.PacketOut{Switch: sw, Src: probeSrc, Dst: dst}
				lr.fab.Send(lr.byz, fabric.NodeID(sw), msg, 256)
				lr.rec.count("byz-packet-out", 1)
				lr.rec.trace("byz-packet-out", fmt.Sprintf("->%s dst=%s", sw, dst))
			default:
				// A fabricated batch-share quorum under a forged root (only
				// drawn when the batched hot path is on): the inclusion
				// proof must reject every copy; with the canary planted
				// they apply and the forged-batch-proof check must fire.
				for j := 0; j < quorum; j++ {
					msg := protocol.MsgBatchUpdate{
						UpdateID:   id,
						Mods:       mods,
						Phase:      1,
						From:       "byz",
						BatchRoot:  root,
						LeafIndex:  0,
						LeafCount:  1,
						ShareIndex: uint32(j + 1),
						Share:      shareSigs[j],
					}
					lr.fab.Send(lr.byz, fabric.NodeID(sw), msg, 512)
				}
				lr.rec.count("byz-forge-batch", 1)
				lr.rec.trace("byz-forge-batch", fmt.Sprintf("->%s %s dst=%s", sw, id, dst))
			}
		}})
	}
}

// runTimeline executes the scheduled events in wall-clock order on the
// driver goroutine.
func (lr *liveRun) runTimeline() {
	sort.SliceStable(lr.events, func(i, j int) bool { return lr.events[i].at < lr.events[j].at })
	start := time.Now()
	for _, ev := range lr.events {
		if wait := ev.at - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		ev.fn()
	}
}

// drainFlows re-drives stalled flows until all complete or the deadline
// passes. Re-driving is cheap and idempotent; every few rounds it also
// nudges the protocol layers — switches re-emit pending table-miss events
// (covering events that died with a crashed controller) and controllers
// retransmit released-but-unacknowledged updates (covering dispatches and
// acks that died in a fault window).
func (lr *liveRun) drainFlows(deadline time.Time) {
	round := 0
	for time.Now().Before(deadline) {
		stalled := 0
		for _, f := range lr.flows {
			if !f.isDone() {
				stalled++
				lr.driveFlow(f)
			}
		}
		if stalled == 0 {
			return
		}
		round++
		if round%30 == 0 && os.Getenv("CHAOS_DEBUG_LEDGERS") != "" {
			for _, ctl := range lr.net.Domains[0].Controllers {
				ctl := ctl
				lr.fab.Invoke(fabric.NodeID(ctl.ID()), func() {
					view, ld := ctl.BroadcastCoords()
					lr.rec.trace("ctl-state", fmt.Sprintf("%s view=%d ld=%d delivered=%d recovering=%v recovered=%v",
						ctl.ID(), view, ld, ctl.EventsDelivered, ctl.Recovering(), ctl.Recovered()))
				})
			}
		}
		if round%3 == 0 {
			for _, id := range lr.switches {
				sw := lr.net.Switches[id]
				lr.fab.Invoke(fabric.NodeID(id), sw.ResendPendingEvents)
			}
			for _, ctl := range lr.net.Domains[0].Controllers {
				ctl := ctl
				lr.fab.Invoke(fabric.NodeID(ctl.ID()), func() { ctl.RedispatchUnacked() })
			}
			lr.rec.trace("drain-nudge", fmt.Sprintf("round=%d stalled=%d", round, stalled))
		}
		time.Sleep(150 * time.Millisecond)
	}
}

// awaitRecoveries waits for every restarted controller to finish peer
// state transfer, counting completions.
func (lr *liveRun) awaitRecoveries(deadline time.Time, res *LiveResult) {
	for slot := range lr.ctlRestarted {
		ctl := lr.net.Domains[0].Controllers[slot]
		recovered := false
		// Poll at least once even if the drain phase exhausted the deadline:
		// a controller that already finished state transfer during the drain
		// must still be counted.
		for {
			if err := lr.invokeWait(fabric.NodeID(ctl.ID()), func() { recovered = ctl.Recovered() }); err != nil {
				break
			}
			if recovered {
				res.CtlRecovered++
				lr.rec.count(metrics.CounterRecovery, 1)
				lr.rec.trace("recovered", fmt.Sprintf("controller %s", ctl.ID()))
				break
			}
			if !time.Now().Before(deadline) {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if !recovered {
			lr.rec.trace("recovery-timeout", fmt.Sprintf("controller %s", ctl.ID()))
		}
	}
}

// honest returns the current controller instances minus the Byzantine one.
func (lr *liveRun) honest() []*controlplane.Controller {
	dom := lr.net.Domains[0]
	out := make([]*controlplane.Controller, 0, len(dom.Controllers))
	for _, c := range dom.Controllers {
		if fabric.NodeID(c.ID()) == lr.byz {
			continue
		}
		out = append(out, c)
	}
	return out
}

// awaitQuiescence polls honest controllers' ledger lengths until they are
// stable across consecutive polls — trailing deliveries, resync
// retransmissions, and recovery replays drain before snapshots are taken.
// Stability, not cross-controller equality: a restarted controller's
// ledger legitimately differs in total length from a never-crashed peer's
// (recovery replays delivered events, not the per-update bookkeeping lost
// with the crash), and under Byzantine message loss one honest replica
// can lawfully trail another — the convergence sweep's prefix checks
// judge the content.
func (lr *liveRun) awaitQuiescence(deadline time.Time) error {
	var prev []int
	stable := 0
	for time.Now().Before(deadline) {
		honest := lr.honest()
		cur := make([]int, 0, len(honest))
		for _, ctl := range honest {
			ctl := ctl
			var ln int
			if err := lr.invokeWait(fabric.NodeID(ctl.ID()), func() { ln = len(ctl.AuditRecords()) }); err != nil {
				return err
			}
			cur = append(cur, ln)
		}
		same := prev != nil && len(cur) == len(prev)
		if same {
			for i := range cur {
				if cur[i] != prev[i] {
					same = false
					break
				}
			}
		}
		if same {
			stable++
			if stable >= 3 {
				return nil
			}
		} else {
			stable = 0
		}
		prev = cur
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("chaos live: controllers did not quiesce before the drain deadline")
}

// converge takes quiesced snapshots of every switch table and controller
// ledger and runs the convergence checks.
func (lr *liveRun) converge(refDigest string, res *LiveResult) {
	// Snapshot switch state through each node's serial context.
	tables := make(map[string]*openflow.FlowTable, len(lr.switches))
	for _, id := range lr.switches {
		sw := lr.net.Switches[id]
		snap := openflow.NewFlowTable()
		if err := lr.invokeWait(fabric.NodeID(id), func() {
			for _, r := range sw.Table().Rules() {
				snap.Add(r)
			}
			res.UpdatesApplied += sw.UpdatesApplied
			res.UpdatesRejected += sw.UpdatesRejected
		}); err != nil {
			if res.Err == "" {
				res.Err = err.Error()
			}
			return
		}
		tables[id] = snap
	}
	// Snapshot controller ledgers.
	honest := lr.honest()
	ids := make([]string, len(honest))
	records := make([][]audit.Record, len(honest))
	for i, ctl := range honest {
		ctl := ctl
		i := i
		if err := lr.invokeWait(fabric.NodeID(ctl.ID()), func() {
			records[i] = append([]audit.Record(nil), ctl.AuditRecords()...)
		}); err != nil {
			if res.Err == "" {
				res.Err = err.Error()
			}
			return
		}
		ids[i] = string(ctl.ID())
	}

	if os.Getenv("CHAOS_DEBUG_LEDGERS") != "" {
		for i, recs := range records {
			for pos, rec := range recs {
				if rec.Kind != audit.KindEvent {
					continue
				}
				sum := sha256.Sum256(rec.Canonical)
				lr.rec.trace("ledger", fmt.Sprintf("%s[%d] %s %x", ids[i], pos, rec.Subject, sum[:6]))
			}
		}
	}

	// Data-plane walk invariants on the quiesced tables.
	walkTables(tables, lr.hostSet, lr.report)

	// Honest controllers must agree on the event order.
	ledgers := make([][]ledgerEntry, len(honest))
	for i := range records {
		ledgers[i] = eventLedger(records[i])
	}
	compareEventLedgers(ids, ledgers, lr.report)

	// No-forged-rule: every update applied as valid must be committed in
	// some honest ledger by quiescence.
	legit := make(map[[32]byte]bool)
	for _, recs := range records {
		for _, rec := range recs {
			if rec.Kind == audit.KindUpdate {
				legit[sha256.Sum256(rec.Canonical)] = true
			}
		}
	}
	lr.rec.mu.Lock()
	applies := append([]liveApply(nil), lr.rec.applies...)
	lr.rec.mu.Unlock()
	for _, ap := range applies {
		if !ap.valid || legit[ap.digest] {
			continue
		}
		lr.report(InvNoForgedRule, fmt.Sprintf("%s|%s", ap.sw, ap.id),
			fmt.Sprintf("switch %s applied update %s (phase %d) that no honest controller committed", ap.sw, ap.id, ap.phase),
			ap.id.String())
	}

	// Batch-proof: every batch-amortized update applied as valid must have
	// carried a verifying Merkle inclusion proof (re-checked at record
	// time, independent of the switch's — possibly bypassed — verdict).
	lr.rec.mu.Lock()
	batchApplies := append([]liveBatchApply(nil), lr.rec.batchApplies...)
	lr.rec.mu.Unlock()
	for _, ap := range batchApplies {
		if !ap.valid || ap.proofOK {
			continue
		}
		lr.report(InvBatchProof, fmt.Sprintf("%s|%s", ap.sw, ap.id),
			fmt.Sprintf("switch %s applied batched update %s (phase %d) whose inclusion proof does not verify", ap.sw, ap.id, ap.phase),
			ap.id.String())
	}

	// Resync: each restarted controller's rebuilt event ledger must be
	// prefix-consistent with every never-crashed honest peer's (content
	// divergence inside the common prefix means recovery installed forged
	// or reordered history — a safety violation). ResyncProven is the
	// stricter claim — byte-identical to some never-crashed peer — which
	// holds at quiescence for benign fault profiles; under Byzantine
	// message loss a lawful delivery lag can leave it false without any
	// invariant being violated.
	restartedIdx := make(map[int]bool)
	dom := lr.net.Domains[0]
	for slot := range lr.ctlRestarted {
		id := string(dom.Members[slot])
		for i, hid := range ids {
			if hid == id {
				restartedIdx[i] = true
			}
		}
	}
	res.ResyncProven = true
	for i := range restartedIdx {
		exact := false
		for j := range ids {
			if restartedIdx[j] {
				continue
			}
			if !prefixConsistent(ledgers[i], ledgers[j]) {
				lr.report(InvResync, ids[i]+"|"+ids[j],
					fmt.Sprintf("restarted controller %s's rebuilt ledger (%d events) diverges in content from never-crashed %s's (%d events)",
						ids[i], len(ledgers[i]), ids[j], len(ledgers[j])),
					ids[i])
			}
			if equalLedgers(ledgers[i], ledgers[j]) {
				exact = true
			}
		}
		if !exact {
			res.ResyncProven = false
		}
	}

	// Reference convergence: with every flow completed and no canary, the
	// final tables must match the fault-free simnet run bit for bit.
	res.TableDigest = tableDigestOf(tables)
	res.TableMatch = res.TableDigest == refDigest
	allDone := true
	for _, f := range lr.flows {
		if !f.isDone() {
			allDone = false
			break
		}
	}
	if allDone && !lr.p.CanarySkipVerify && !res.TableMatch {
		lr.report(InvReference, "tables",
			fmt.Sprintf("quiesced tables (digest %s) diverge from the fault-free simnet reference (%s)",
				res.TableDigest[:12], refDigest[:12]),
			"reference")
	}
}

// equalLedgers reports exact (length and content) ledger equality.
func equalLedgers(a, b []ledgerEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// prefixConsistent reports whether the shorter ledger is a prefix of the
// longer — the safety shape of two honest replicas at different delivery
// points.
func prefixConsistent(a, b []ledgerEntry) bool {
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	for i := 0; i < m; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
