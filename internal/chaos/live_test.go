package chaos

import (
	"testing"
	"time"
)

// liveTestProfile shrinks a profile so a wall-clock run with real crypto
// stays CI-friendly.
func liveTestProfile(p Profile, flows int) Profile {
	p.RacksPerPod = 2
	p.HostsPerRack = 2
	p.Flows = flows
	return p
}

func liveTestOptions(backend string, seed int64) LiveOptions {
	return LiveOptions{
		Backend:      backend,
		Seed:         seed,
		FlowWindow:   300 * time.Millisecond,
		DrainTimeout: 60 * time.Second,
	}
}

// requireClean asserts a live run converged with no invariant violations.
func requireClean(t *testing.T, res LiveResult) {
	t.Helper()
	if res.Err != "" {
		t.Fatalf("live run error: %s", res.Err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.CtlRestarts > 0 && res.CtlRecovered != res.CtlRestarts {
		t.Errorf("only %d of %d restarted controllers recovered", res.CtlRecovered, res.CtlRestarts)
	}
	if res.FlowsDone == res.FlowsTotal && !res.TableMatch {
		t.Errorf("all %d flows done but tables diverge from the fault-free reference", res.FlowsTotal)
	}
	t.Logf("flows=%d/%d ctl-restarts=%d sw-restarts=%d tableMatch=%v injected=%v resilience=%+v",
		res.FlowsDone, res.FlowsTotal, res.CtlRestarts, res.SwitchRestarts, res.TableMatch, res.Injected, res.Resilience)
}

// TestLiveChaosMixedInProc is the acceptance campaign on the in-process
// backend: every fault family at once — link faults, controller and switch
// crash/restart windows, partitions, a Byzantine controller — against real
// crypto, converging with zero invariant violations.
func TestLiveChaosMixedInProc(t *testing.T) {
	p := liveTestProfile(MixedProfile(), 6)
	res := RunLiveSeed(p, liveTestOptions("inproc", 7))
	requireClean(t, res)
	if res.CtlRestarts == 0 || res.SwitchRestarts == 0 {
		t.Errorf("expected both controller and switch restarts, got ctl=%d sw=%d", res.CtlRestarts, res.SwitchRestarts)
	}
}

// TestLiveChaosCrashRecoveryInProc isolates the crash/restart machinery:
// no link noise, no Byzantine controller — every flow must complete and
// the rebuilt state must match the fault-free reference exactly.
func TestLiveChaosCrashRecoveryInProc(t *testing.T) {
	p := liveTestProfile(CrashProfile(), 6)
	res := RunLiveSeed(p, liveTestOptions("inproc", 11))
	requireClean(t, res)
	if res.FlowsDone != res.FlowsTotal {
		t.Errorf("only %d of %d flows completed", res.FlowsDone, res.FlowsTotal)
	}
	if !res.TableMatch {
		t.Errorf("tables diverge from fault-free reference (digest %s)", res.TableDigest)
	}
	if res.CtlRecovered == 0 {
		t.Errorf("no controller completed crash recovery")
	}
	if res.CtlRestarts > 0 && !res.ResyncProven {
		t.Errorf("restarted controllers did not rebuild byte-identical ledgers under benign faults")
	}
}

// TestLiveChaosCanaryInProc plants the verification-bypass canary: with
// switch signature verification disabled, the Byzantine controller's
// forged updates must surface as no-forged-rule violations on the live
// backend too.
func TestLiveChaosCanaryInProc(t *testing.T) {
	p := liveTestProfile(ByzantineProfile(), 4)
	p.CanarySkipVerify = true
	res := RunLiveSeed(p, liveTestOptions("inproc", 5))
	if res.Err != "" {
		t.Fatalf("live run error: %s", res.Err)
	}
	forged := 0
	for _, v := range res.Violations {
		if v.Invariant == InvNoForgedRule {
			forged++
		}
	}
	if forged == 0 {
		t.Fatalf("canary not caught: expected no-forged-rule violations, got %v", res.Violations)
	}
	t.Logf("canary caught: %d no-forged-rule violations", forged)
}

// TestLiveChaosBatchedMixedInProc is the acceptance campaign with the
// batched hot path on: every fault family at once against batched BFT
// ordering and batch-amortized signing on the in-process backend, with
// real crypto, converging with zero invariant violations (including the
// forged-batch-proof re-check over every batched apply).
func TestLiveChaosBatchedMixedInProc(t *testing.T) {
	p := liveTestProfile(MixedProfile(), 6)
	p.BatchSize = 8
	res := RunLiveSeed(p, liveTestOptions("inproc", 7))
	requireClean(t, res)
	batched := false
	for _, e := range res.Trace.Events() {
		if e.Kind == "batch-apply" {
			batched = true
			break
		}
	}
	if !batched {
		t.Error("no batch-amortized update was ever applied; the batched path never engaged")
	}
}

// TestLiveChaosBatchedCanaryInProc plants the verification-bypass canary
// under the batched path on the live backend: the Byzantine controller's
// forged batch roots and spliced contents then apply, and the recorder's
// independent Merkle re-check must surface them.
func TestLiveChaosBatchedCanaryInProc(t *testing.T) {
	p := liveTestProfile(ByzantineProfile(), 4)
	p.BatchSize = 8
	p.CanarySkipVerify = true
	caught := 0
	for seed := int64(5); seed < 8 && caught == 0; seed++ {
		res := RunLiveSeed(p, liveTestOptions("inproc", seed))
		if res.Err != "" {
			t.Fatalf("live run error: %s", res.Err)
		}
		for _, v := range res.Violations {
			if v.Invariant == InvBatchProof || v.Invariant == InvNoForgedRule {
				caught++
			}
		}
	}
	if caught == 0 {
		t.Fatal("canary not caught: expected forged-batch-proof or no-forged-rule violations")
	}
	t.Logf("canary caught: %d violations", caught)
}

// TestLiveChaosTCPCrashRestart runs crash/restart windows over real TCP
// sockets: crashes sever connections mid-workload, restarts re-listen and
// redial, and delivery must resume until every flow completes.
func TestLiveChaosTCPCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP chaos run skipped in -short mode")
	}
	p := liveTestProfile(CrashProfile(), 5)
	res := RunLiveSeed(p, liveTestOptions("tcp", 3))
	requireClean(t, res)
	if res.FlowsDone != res.FlowsTotal {
		t.Errorf("only %d of %d flows completed over TCP", res.FlowsDone, res.FlowsTotal)
	}
	if !res.TableMatch {
		t.Errorf("tables diverge from fault-free reference (digest %s)", res.TableDigest)
	}
}
