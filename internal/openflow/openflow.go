// Package openflow models the southbound API between the control plane
// and data-plane switches: flow-table matches and actions, the standard
// message vocabulary (FlowMod, PacketIn, PacketOut, Barrier, Bundle, Role),
// and the Cicero extension of signed messages with unique identifiers
// (§5.1 of the paper: "We extend the OpenFlow message protocol to add new
// message types for signed messages, and add a unique identifier to each
// message to prevent duplicate processing of events and updates").
//
// As in the paper's motivation (§2.2), bundles provide transactional
// application of multiple mods on a *single* switch only — cross-switch
// consistency is exactly what the Cicero protocol adds on top.
package openflow

import (
	"fmt"
	"strings"
)

// Wildcard matches any value in a match field.
const Wildcard = "*"

// Match selects packets by flow endpoints. Cicero's simulation routes at
// host granularity, so a match is a (src, dst) pair where either side may
// be the Wildcard.
type Match struct {
	Src string
	Dst string
}

// Covers reports whether the match selects a packet from src to dst.
func (m Match) Covers(src, dst string) bool {
	return (m.Src == Wildcard || m.Src == src) && (m.Dst == Wildcard || m.Dst == dst)
}

// String renders the match for logs.
func (m Match) String() string { return m.Src + "->" + m.Dst }

// ActionType distinguishes forwarding from dropping.
type ActionType int

// Action types. Start at 1 so the zero value is invalid.
const (
	ActionOutput ActionType = iota + 1
	ActionDrop
)

// Action is what a switch does with a matching packet.
type Action struct {
	Type ActionType
	// NextHop is the neighbor node the packet is forwarded to when Type
	// is ActionOutput. The simulation uses next-hop node ids in place of
	// physical port numbers.
	NextHop string
}

// String renders the action for logs.
func (a Action) String() string {
	if a.Type == ActionDrop {
		return "drop"
	}
	return "output:" + a.NextHop
}

// Rule is one flow-table entry.
type Rule struct {
	Priority int
	Match    Match
	Action   Action
	// Cookie tags the rule with the update that installed it, easing
	// deletion and audit.
	Cookie uint64
}

// String renders the rule for logs.
func (r Rule) String() string {
	return fmt.Sprintf("[prio=%d %s %s cookie=%d]", r.Priority, r.Match, r.Action, r.Cookie)
}

// FlowModOp is the operation of a FlowMod.
type FlowModOp int

// FlowMod operations. Start at 1 so the zero value is invalid.
const (
	FlowAdd FlowModOp = iota + 1
	FlowDelete
)

// String names the operation.
func (op FlowModOp) String() string {
	switch op {
	case FlowAdd:
		return "add"
	case FlowDelete:
		return "del"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// FlowMod installs or removes a rule on one switch.
type FlowMod struct {
	Op     FlowModOp
	Switch string
	Rule   Rule
}

// String renders the mod canonically; it doubles as the byte payload that
// gets threshold-signed, so it must be deterministic across controllers.
func (fm FlowMod) String() string {
	return fmt.Sprintf("%s@%s%s", fm.Op, fm.Switch, fm.Rule)
}

// MsgID uniquely identifies an event or update to prevent duplicate
// processing. Origin disambiguates counters kept by different sources.
type MsgID struct {
	Origin string
	Seq    uint64
}

// String renders the id for logs and signatures.
func (id MsgID) String() string { return fmt.Sprintf("%s#%d", id.Origin, id.Seq) }

// PacketIn reports a packet that matched no flow-table rule (a table
// miss), the event that triggers route computation.
type PacketIn struct {
	ID     MsgID
	Switch string
	Src    string
	Dst    string
	// SizeBytes is the triggering packet's size.
	SizeBytes int
}

// PacketOut injects a packet into the data plane — the primitive a
// malicious controller can abuse (§2.2), which Cicero's quorum
// authentication neutralizes.
type PacketOut struct {
	ID      MsgID
	Switch  string
	Src     string
	Dst     string
	Payload string
}

// BarrierRequest asks a switch to finish all preceding messages before
// answering.
type BarrierRequest struct{ ID MsgID }

// BarrierReply acknowledges a barrier.
type BarrierReply struct{ ID MsgID }

// BundleOpen starts collecting mods for atomic single-switch application.
type BundleOpen struct{ Bundle MsgID }

// BundleAdd appends a mod to an open bundle.
type BundleAdd struct {
	Bundle MsgID
	Mod    FlowMod
}

// BundleCommit atomically applies an open bundle.
type BundleCommit struct{ Bundle MsgID }

// Role is a controller's role toward a switch, used for aggregator
// assignment via the OpenFlow master/slave mechanism.
type Role int

// Roles. Start at 1 so the zero value is invalid.
const (
	RoleMaster Role = iota + 1
	RoleSlave
)

// RoleRequest assigns the sending controller's role on the switch.
type RoleRequest struct {
	ID   MsgID
	Role Role
}

// CanonicalUpdateBytes serializes an update (its id, phase and mods) into
// the deterministic byte string that controllers threshold-sign and
// switches verify. All correct controllers must produce identical bytes
// for the same logical update.
func CanonicalUpdateBytes(id MsgID, phase uint64, mods []FlowMod) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "update|%s|phase=%d", id, phase)
	for _, m := range mods {
		b.WriteByte('|')
		b.WriteString(m.String())
	}
	return []byte(b.String())
}
