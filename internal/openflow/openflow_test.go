package openflow

import (
	"testing"
	"testing/quick"
)

func TestMatchCovers(t *testing.T) {
	cases := []struct {
		m        Match
		src, dst string
		want     bool
	}{
		{Match{"h1", "h2"}, "h1", "h2", true},
		{Match{"h1", "h2"}, "h1", "h3", false},
		{Match{Wildcard, "h2"}, "anything", "h2", true},
		{Match{"h1", Wildcard}, "h1", "anything", true},
		{Match{Wildcard, Wildcard}, "a", "b", true},
	}
	for _, c := range cases {
		if got := c.m.Covers(c.src, c.dst); got != c.want {
			t.Errorf("%v.Covers(%s,%s) = %v, want %v", c.m, c.src, c.dst, got, c.want)
		}
	}
}

func TestFlowTablePriority(t *testing.T) {
	ft := NewFlowTable()
	ft.Add(Rule{Priority: 10, Match: Match{Wildcard, "h2"}, Action: Action{Type: ActionOutput, NextHop: "s2"}})
	ft.Add(Rule{Priority: 100, Match: Match{"h1", "h2"}, Action: Action{Type: ActionDrop}})

	// Specific high-priority (firewall) rule wins.
	r, ok := ft.Lookup("h1", "h2")
	if !ok || r.Action.Type != ActionDrop {
		t.Fatalf("lookup h1->h2 = %v (%v), want drop rule", r, ok)
	}
	// Other sources use the wildcard forward rule.
	r, ok = ft.Lookup("h9", "h2")
	if !ok || r.Action.NextHop != "s2" {
		t.Fatalf("lookup h9->h2 = %v (%v), want forward to s2", r, ok)
	}
	// Miss.
	if _, ok := ft.Lookup("h9", "h3"); ok {
		t.Fatal("unexpected match for unknown destination")
	}
}

func TestFlowTableEqualPriorityFIFO(t *testing.T) {
	ft := NewFlowTable()
	ft.Add(Rule{Priority: 5, Match: Match{Wildcard, "h2"}, Action: Action{Type: ActionOutput, NextHop: "first"}})
	ft.Add(Rule{Priority: 5, Match: Match{"h1", Wildcard}, Action: Action{Type: ActionOutput, NextHop: "second"}})
	r, ok := ft.Lookup("h1", "h2")
	if !ok || r.Action.NextHop != "first" {
		t.Fatalf("equal-priority tie should go to first-installed, got %v", r)
	}
}

func TestFlowTableReplaceOnExactDuplicate(t *testing.T) {
	ft := NewFlowTable()
	m := Match{"h1", "h2"}
	ft.Add(Rule{Priority: 5, Match: m, Action: Action{Type: ActionOutput, NextHop: "a"}})
	ft.Add(Rule{Priority: 5, Match: m, Action: Action{Type: ActionOutput, NextHop: "b"}})
	if ft.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (replacement)", ft.Len())
	}
	r, _ := ft.Lookup("h1", "h2")
	if r.Action.NextHop != "b" {
		t.Fatalf("replacement did not take effect: %v", r)
	}
}

func TestFlowTableDelete(t *testing.T) {
	ft := NewFlowTable()
	ft.Add(Rule{Priority: 5, Match: Match{"h1", "h2"}, Action: Action{Type: ActionOutput, NextHop: "a"}, Cookie: 7})
	ft.Add(Rule{Priority: 5, Match: Match{"h1", "h3"}, Action: Action{Type: ActionOutput, NextHop: "a"}, Cookie: 8})
	ft.Add(Rule{Priority: 5, Match: Match{"h2", "h3"}, Action: Action{Type: ActionOutput, NextHop: "a"}, Cookie: 9})

	// Delete all flows from h1 using a wildcard dst.
	if n := ft.Delete(Match{"h1", Wildcard}, 0); n != 2 {
		t.Fatalf("deleted %d, want 2", n)
	}
	if ft.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ft.Len())
	}
	// Cookie-scoped delete does not touch other cookies.
	if n := ft.Delete(Match{Wildcard, Wildcard}, 999); n != 0 {
		t.Fatalf("cookie-mismatched delete removed %d rules", n)
	}
	if n := ft.Delete(Match{Wildcard, Wildcard}, 9); n != 1 {
		t.Fatalf("cookie-scoped delete removed %d, want 1", n)
	}
}

func TestFlowTableApply(t *testing.T) {
	ft := NewFlowTable()
	add := FlowMod{Op: FlowAdd, Switch: "s1",
		Rule: Rule{Priority: 1, Match: Match{"a", "b"}, Action: Action{Type: ActionOutput, NextHop: "s2"}}}
	ft.Apply(add)
	if ft.Len() != 1 {
		t.Fatal("FlowAdd not applied")
	}
	del := FlowMod{Op: FlowDelete, Switch: "s1", Rule: Rule{Match: Match{"a", "b"}}}
	ft.Apply(del)
	if ft.Len() != 0 {
		t.Fatal("FlowDelete not applied")
	}
}

func TestCanonicalUpdateBytesDeterministic(t *testing.T) {
	id := MsgID{Origin: "ctl-1", Seq: 42}
	mods := []FlowMod{
		{Op: FlowAdd, Switch: "s1", Rule: Rule{Priority: 1, Match: Match{"a", "b"}, Action: Action{Type: ActionOutput, NextHop: "s2"}}},
		{Op: FlowDelete, Switch: "s2", Rule: Rule{Match: Match{"a", "b"}}},
	}
	x := CanonicalUpdateBytes(id, 3, mods)
	y := CanonicalUpdateBytes(id, 3, mods)
	if string(x) != string(y) {
		t.Fatal("canonical bytes differ across calls")
	}
	// Any change to phase or content must change the bytes.
	if string(x) == string(CanonicalUpdateBytes(id, 4, mods)) {
		t.Fatal("phase not bound into signed bytes")
	}
	mods2 := append([]FlowMod(nil), mods...)
	mods2[0].Rule.Action.NextHop = "s3"
	if string(x) == string(CanonicalUpdateBytes(id, 3, mods2)) {
		t.Fatal("rule content not bound into signed bytes")
	}
}

func TestMsgIDString(t *testing.T) {
	id := MsgID{Origin: "sw-3", Seq: 17}
	if id.String() != "sw-3#17" {
		t.Fatalf("MsgID.String() = %q", id.String())
	}
}

// TestLookupNeverReturnsLowerPriorityOverride property-checks that the
// winning rule always has the maximum priority among covering rules.
func TestLookupNeverReturnsLowerPriorityOverride(t *testing.T) {
	f := func(prios []uint8) bool {
		ft := NewFlowTable()
		for i, p := range prios {
			nh := "a"
			if i%2 == 0 {
				nh = "b"
			}
			ft.Add(Rule{Priority: int(p), Match: Match{Wildcard, "h2"},
				Action: Action{Type: ActionOutput, NextHop: nh}, Cookie: uint64(i)})
		}
		r, ok := ft.Lookup("x", "h2")
		if !ok {
			return len(prios) == 0
		}
		for _, other := range ft.Rules() {
			if other.Priority > r.Priority {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFlowTableLookup(b *testing.B) {
	ft := NewFlowTable()
	for i := 0; i < 1000; i++ {
		ft.Add(Rule{Priority: i % 16, Match: Match{Src: "h" + string(rune('a'+i%26)), Dst: "d" + string(rune('a'+i%26))},
			Action: Action{Type: ActionOutput, NextHop: "s"}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Lookup("hq", "dq")
	}
}
