package openflow

import (
	"sort"
	"strings"
)

// FlowTable is a switch's rule store with priority matching. It is not
// concurrency-safe; in the discrete-event simulation each switch's table
// is only touched from its own handlers.
type FlowTable struct {
	rules []Rule
	// insertion preserves arrival order among equal priorities.
	insertion []uint64
	nextSeq   uint64
}

// NewFlowTable returns an empty table.
func NewFlowTable() *FlowTable { return &FlowTable{} }

// Len returns the number of installed rules.
func (t *FlowTable) Len() int { return len(t.rules) }

// Add installs a rule. A rule with an identical (priority, match) replaces
// the previous one, mirroring OpenFlow's overlap semantics for exact
// duplicates.
func (t *FlowTable) Add(r Rule) {
	for i := range t.rules {
		if t.rules[i].Priority == r.Priority && t.rules[i].Match == r.Match {
			t.rules[i] = r
			return
		}
	}
	t.rules = append(t.rules, r)
	t.insertion = append(t.insertion, t.nextSeq)
	t.nextSeq++
	t.sortRules()
}

// sortRules keeps rules in (priority desc, insertion asc) order so Lookup
// is a linear scan returning the winning entry.
func (t *FlowTable) sortRules() {
	idx := make([]int, len(t.rules))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if t.rules[idx[a]].Priority != t.rules[idx[b]].Priority {
			return t.rules[idx[a]].Priority > t.rules[idx[b]].Priority
		}
		return t.insertion[idx[a]] < t.insertion[idx[b]]
	})
	rules := make([]Rule, len(t.rules))
	ins := make([]uint64, len(t.rules))
	for i, j := range idx {
		rules[i] = t.rules[j]
		ins[i] = t.insertion[j]
	}
	t.rules = rules
	t.insertion = ins
}

// Delete removes all rules covered by the given match (and matching cookie
// when cookie != 0), returning how many were removed. A Wildcard field in
// the match deletes regardless of that field.
func (t *FlowTable) Delete(m Match, cookie uint64) int {
	kept := t.rules[:0]
	keptIns := t.insertion[:0]
	removed := 0
	for i, r := range t.rules {
		drop := matchSubsumes(m, r.Match) && (cookie == 0 || cookie == r.Cookie)
		if drop {
			removed++
			continue
		}
		kept = append(kept, r)
		keptIns = append(keptIns, t.insertion[i])
	}
	t.rules = kept
	t.insertion = keptIns
	return removed
}

// matchSubsumes reports whether outer covers every packet inner covers.
func matchSubsumes(outer, inner Match) bool {
	srcOK := outer.Src == Wildcard || outer.Src == inner.Src
	dstOK := outer.Dst == Wildcard || outer.Dst == inner.Dst
	return srcOK && dstOK
}

// Lookup returns the highest-priority rule covering a packet from src to
// dst, or ok=false on a table miss.
func (t *FlowTable) Lookup(src, dst string) (Rule, bool) {
	for _, r := range t.rules {
		if r.Match.Covers(src, dst) {
			return r, true
		}
	}
	return Rule{}, false
}

// Apply executes a FlowMod against the table.
func (t *FlowTable) Apply(m FlowMod) {
	switch m.Op {
	case FlowAdd:
		t.Add(m.Rule)
	case FlowDelete:
		t.Delete(m.Rule.Match, m.Rule.Cookie)
	}
}

// Rules returns a copy of the installed rules in match order.
func (t *FlowTable) Rules() []Rule {
	return append([]Rule(nil), t.rules...)
}

// String renders the table for debugging.
func (t *FlowTable) String() string {
	var b strings.Builder
	b.WriteString("flowtable{")
	for i, r := range t.rules {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(r.String())
	}
	b.WriteByte('}')
	return b.String()
}
