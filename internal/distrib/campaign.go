package distrib

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/core"
	"cicero/internal/netprop"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/topology"
)

// CampaignOptions configures one multi-process chaos campaign.
type CampaignOptions struct {
	// Bin is the cicero-node binary; Dir the working directory for
	// bundles, address map, logs and traces.
	Bin string
	Dir string
	// Controllers sizes the control plane (default 4).
	Controllers int
	// Flows is the workload size (default 8).
	Flows int
	// Seed drives workload draw; the simnet reference uses the same draw.
	Seed int64
	// KillController SIGKILLs a non-bootstrap controller mid-update and
	// restarts it through crash recovery; KillSwitch does the same to a
	// switch (fresh boot epoch + resync).
	KillController bool
	KillSwitch     bool
	// Partition imposes and heals a socket-level two-way partition
	// between two controllers mid-campaign.
	Partition bool
	// Timeout bounds the whole campaign (default 2 minutes).
	Timeout time.Duration
}

// CampaignResult is the campaign's verdict.
type CampaignResult struct {
	// Violations are invariant failures; empty means the run is clean.
	Violations []string
	// Flow completion.
	FlowsDone, FlowsTotal int
	// Reference convergence: quiesced multi-process tables vs the
	// fault-free simnet run of the same workload.
	TableDigest, RefDigest string
	TableMatch             bool
	// ChainDigests maps each controller to its order-sensitive audit
	// hash-chain digest at convergence (equal only between byte-identical
	// replicas); DigestAgreement means every controller quiesced on the
	// same order-insensitive ledger content digest — same decisions on
	// every process.
	ChainDigests    map[string]string
	DigestAgreement bool
	// Recovered reports the killed controller finished state transfer.
	Recovered bool
	// Trace merge across all per-process files.
	TraceEvents  int
	CausalErrors []string
	// ProcsLeaked counts node processes still alive after Close.
	ProcsLeaked int
}

func (o CampaignOptions) defaulted() CampaignOptions {
	if o.Controllers == 0 {
		o.Controllers = 4
	}
	if o.Flows == 0 {
		o.Flows = 8
	}
	if o.Timeout == 0 {
		o.Timeout = 2 * time.Minute
	}
	return o
}

// SmokeGraph is the campaign's data plane: a line of four switches with
// one host each. The line keeps shortest paths unique, so the simnet
// reference digest is deterministic.
func SmokeGraph() *topology.Graph {
	g := topology.NewGraph()
	for i := 1; i <= 4; i++ {
		sw := fmt.Sprintf("s%d", i)
		host := fmt.Sprintf("h%d", i)
		g.AddNode(topology.Node{ID: sw, Kind: topology.KindToR})
		g.AddNode(topology.Node{ID: host, Kind: topology.KindHost})
		g.AddLink(sw, host, time.Millisecond, 10)
		if i > 1 {
			g.AddLink(fmt.Sprintf("s%d", i-1), sw, time.Millisecond, 10)
		}
	}
	return g
}

// campaignFlow is one drawn workload entry.
type campaignFlow struct {
	id       uint64
	src, dst string
	ingress  string
}

// drawFlows picks host pairs deterministically from the seed; the
// ingress switch is the source host's attachment point.
func drawFlows(g *topology.Graph, n int, seed int64) []campaignFlow {
	var hosts []string
	attach := make(map[string]string)
	for _, node := range g.Nodes() {
		if node.Kind != topology.KindHost {
			continue
		}
		hosts = append(hosts, node.ID)
		for _, e := range g.Neighbors(node.ID) {
			attach[node.ID] = e.To
		}
	}
	sort.Strings(hosts)
	rng := rand.New(rand.NewSource(seed))
	flows := make([]campaignFlow, 0, n)
	for i := 0; i < n; i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		flows = append(flows, campaignFlow{
			id: uint64(i + 1), src: src, dst: dst, ingress: attach[src],
		})
	}
	return flows
}

// campaignReference runs the same workload fault-free on the simulator
// and returns the canonical table digest the processes must converge to.
func campaignReference(opt CampaignOptions, g *topology.Graph, flows []campaignFlow) (string, error) {
	n, err := core.Build(core.Config{
		Graph:                g,
		Protocol:             controlplane.ProtoCicero,
		Aggregation:          controlplane.AggSwitch,
		ControllersPerDomain: opt.Controllers,
		Cost:                 protocol.Calibrated(),
		Seed:                 opt.Seed,
		Jitter:               0.1,
	})
	if err != nil {
		return "", err
	}
	for i, f := range flows {
		f := f
		ingress := n.Switches[f.ingress]
		n.Sim.At(time.Duration(i)*time.Millisecond, func() {
			ingress.PacketArrival(f.src, f.dst)
		})
	}
	if _, err := n.Sim.RunUntil(5 * time.Second); err != nil {
		return "", err
	}
	tables := make(map[string]*openflow.FlowTable, len(n.Switches))
	for id, sw := range n.Switches {
		tables[id] = sw.Table()
	}
	return tableDigest(tables), nil
}

// tableDigest canonicalizes a set of flow tables exactly as the chaos
// plane does: sorted rule lines, hashed.
func tableDigest(tables map[string]*openflow.FlowTable) string {
	var lines []string
	for id, t := range tables {
		for _, r := range t.Rules() {
			lines = append(lines, fmt.Sprintf("%s|%d|%s|%s|%d", id, r.Priority, r.Match, r.Action, r.Cookie))
		}
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, line := range lines {
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RunCampaign executes one multi-process chaos campaign: plan, launch
// one process per node, inject the workload, SIGKILL and partition per
// options, restart through the recovery paths, drain, then verify every
// invariant across the process boundaries.
func RunCampaign(opt CampaignOptions) (*CampaignResult, error) {
	opt = opt.defaulted()
	res := &CampaignResult{ChainDigests: make(map[string]string)}
	deadline := time.Now().Add(opt.Timeout)

	g := SmokeGraph()
	flows := drawFlows(g, opt.Flows, opt.Seed)
	res.FlowsTotal = len(flows)
	refDigest, err := campaignReference(opt, g, flows)
	if err != nil {
		return nil, fmt.Errorf("distrib: simnet reference: %w", err)
	}
	res.RefDigest = refDigest

	dep, err := Plan(Spec{Controllers: opt.Controllers, Graph: g, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	sup, err := NewSupervisor(dep, opt.Bin, opt.Dir)
	if err != nil {
		return nil, err
	}
	defer sup.Close()

	for _, id := range dep.NodeIDs() {
		if err := sup.Start(id); err != nil {
			return nil, err
		}
	}
	if err := sup.WaitReady(dep.NodeIDs(), 30*time.Second); err != nil {
		return nil, err
	}

	// First half of the workload, then faults mid-update.
	half := len(flows) / 2
	for _, f := range flows[:half] {
		sup.InjectFlow(f.ingress, f.id, f.src, f.dst)
	}
	killedCtl, killedSw := "", ""
	if opt.KillController {
		killedCtl = string(dep.Members[1])
		if err := sup.Kill(killedCtl); err != nil {
			return nil, err
		}
	}
	if opt.KillSwitch {
		killedSw = dep.Switches[1]
		if err := sup.Kill(killedSw); err != nil {
			return nil, err
		}
	}
	if opt.Partition {
		a, b := string(dep.Members[2]), string(dep.Members[3])
		sup.Partition(a, b)
		time.Sleep(500 * time.Millisecond)
		sup.Heal(a, b)
	}
	for _, f := range flows[half:] {
		sup.InjectFlow(f.ingress, f.id, f.src, f.dst)
	}

	// Restart the victims through the protocol recovery paths.
	if killedCtl != "" {
		if err := sup.Restart(killedCtl); err != nil {
			return nil, err
		}
	}
	if killedSw != "" {
		if err := sup.Restart(killedSw); err != nil {
			return nil, err
		}
	}
	restarted := []string{}
	if killedCtl != "" {
		restarted = append(restarted, killedCtl)
	}
	if killedSw != "" {
		restarted = append(restarted, killedSw)
	}
	if len(restarted) > 0 {
		if err := sup.WaitReady(restarted, 30*time.Second); err != nil {
			return nil, err
		}
	}

	// Drain: re-inject incomplete flows (a killed switch lost its pending
	// events) and nudge the liveness paths until everything lands.
	round := 0
	for time.Now().Before(deadline) {
		done := 0
		for _, f := range flows {
			if sup.FlowDone(f.id) {
				done++
			}
		}
		res.FlowsDone = done
		if done == len(flows) {
			break
		}
		if round%3 == 2 {
			for _, f := range flows {
				if !sup.FlowDone(f.id) {
					sup.InjectFlow(f.ingress, f.id, f.src, f.dst)
				}
			}
			for _, m := range dep.Members {
				sup.Nudge(string(m), protocol.NudgeRedispatch)
			}
			for _, sw := range dep.Switches {
				sup.Nudge(sw, protocol.NudgeResendEvents)
			}
		}
		round++
		time.Sleep(300 * time.Millisecond)
	}
	if res.FlowsDone != res.FlowsTotal {
		res.Violations = append(res.Violations,
			fmt.Sprintf("liveness: only %d/%d flows completed before the deadline", res.FlowsDone, res.FlowsTotal))
	}

	// The restarted controller must finish peer state transfer.
	res.Recovered = killedCtl == ""
	if killedCtl != "" {
		for time.Now().Before(deadline) {
			snap, err := sup.Snapshot(killedCtl, 5*time.Second)
			if err == nil && snap.Recovered {
				res.Recovered = true
				break
			}
			time.Sleep(200 * time.Millisecond)
		}
		if !res.Recovered {
			res.Violations = append(res.Violations,
				fmt.Sprintf("recovery: restarted controller %s never reported Recovered", killedCtl))
		}
	}

	restartedSet := make(map[string]bool)
	for _, id := range restarted {
		restartedSet[id] = true
	}

	// Quiescence: controller ledger lengths stable across three polls AND
	// equal across every never-restarted controller. Stability alone is
	// not enough: a replica that lost the pre-fault broadcasts to the
	// partition window can sit wedged with an empty — but perfectly
	// stable — ledger while the quorum makes progress. Waiting for
	// agreement gives the retransmission paths time; if a replica still
	// trails after ~2s of continuous disagreement it is wedged below a
	// delivery gap the group already garbage-collected (sequential
	// delivery can never fill it), so the supervisor pushes it through
	// peer state transfer — the same authenticated f+1 path a restarted
	// controller uses — and from then on treats it like one: prefix
	// consistency still gates, the order-insensitive content digest does
	// not (replayed processing may lawfully reuse installed rules).
	transferred := make(map[string]bool, len(restartedSet))
	for id := range restartedSet {
		transferred[id] = true
	}
	stable, lagRounds := 0, 0
	var lastLens []int
	for stable < 3 && time.Now().Before(deadline) {
		lens := make([]int, 0, len(dep.Members))
		counts := make(map[string]int, len(dep.Members))
		agreed, most := -1, 0
		agree := true
		for _, m := range dep.Members {
			snap, err := sup.Snapshot(string(m), 5*time.Second)
			if err != nil {
				lens = nil
				break
			}
			lens = append(lens, len(snap.Records))
			counts[string(m)] = len(snap.Records)
			if len(snap.Records) > most {
				most = len(snap.Records)
			}
			if transferred[string(m)] {
				continue
			}
			if agreed == -1 {
				agreed = len(snap.Records)
			} else if len(snap.Records) != agreed {
				agree = false
			}
		}
		if lens != nil && agree && equalInts(lens, lastLens) {
			stable++
		} else {
			stable = 0
		}
		if lens != nil && !agree {
			lagRounds++
			if lagRounds >= 8 {
				for _, m := range dep.Members {
					id := string(m)
					if !transferred[id] && counts[id] < most {
						sup.Nudge(id, protocol.NudgeRecover)
						transferred[id] = true
					}
				}
				lagRounds = 0
			}
		} else {
			lagRounds = 0
		}
		lastLens = lens
		if stable < 3 {
			time.Sleep(250 * time.Millisecond)
		}
	}

	// Convergence checks across the process boundaries.
	converge(sup, dep, res, refDigest, transferred)

	// Tear down, then merge every per-process trace into one causally
	// ordered timeline.
	sup.Close()
	res.ProcsLeaked = len(sup.LiveProcs())
	merged, err := MergeTraces(sup.TracePaths())
	if err != nil {
		return res, err
	}
	res.TraceEvents = len(merged)
	res.CausalErrors = CheckCausal(merged)
	res.Violations = append(res.Violations, res.CausalErrors...)
	return res, nil
}

// converge cross-checks final state over snapshot messages: data-plane
// walk invariants, ledger prefix consistency, hash-chain digest
// agreement, no-forged-rule, and the simnet reference digest.
// transferred marks controllers whose history came from peer state
// transfer (crash restart or a recover nudge).
func converge(sup *Supervisor, dep *Deployment, res *CampaignResult, refDigest string, transferred map[string]bool) {
	report := func(property, dedupKey, detail, traceToken string) {
		res.Violations = append(res.Violations, property+": "+detail)
		_, _ = dedupKey, traceToken
	}

	// Switch snapshots: tables and apply records.
	tables := make(map[string]*openflow.FlowTable, len(dep.Switches))
	var applies []protocol.SnapshotApply
	applySwitch := make(map[int]string)
	for _, sw := range dep.Switches {
		snap, err := sup.Snapshot(sw, 10*time.Second)
		if err != nil {
			report("snapshot", sw, fmt.Sprintf("switch %s: %v", sw, err), sw)
			continue
		}
		t := openflow.NewFlowTable()
		for _, r := range snap.Rules {
			t.Add(r)
		}
		tables[sw] = t
		for _, ap := range snap.Applies {
			applySwitch[len(applies)] = sw
			applies = append(applies, ap)
		}
	}
	hosts := make(map[string]bool)
	for _, n := range dep.Spec.Graph.Nodes() {
		if n.Kind == topology.KindHost {
			hosts[n.ID] = true
		}
	}
	netprop.WalkTables(tables, hosts, report)

	// Controller snapshots: event ledgers and audit digests.
	type ledgerEntry struct {
		subject string
		digest  string
	}
	ids := make([]string, 0, len(dep.Members))
	ledgers := make([][]ledgerEntry, 0, len(dep.Members))
	contents := make([]string, 0, len(dep.Members))
	legit := make(map[string]bool)
	for _, m := range dep.Members {
		id := string(m)
		snap, err := sup.Snapshot(id, 10*time.Second)
		if err != nil {
			report("snapshot", id, fmt.Sprintf("controller %s: %v", id, err), id)
			continue
		}
		var ledger []ledgerEntry
		for _, rec := range snap.Records {
			switch rec.Kind {
			case "event":
				ledger = append(ledger, ledgerEntry{rec.Subject, hex.EncodeToString(rec.Digest)})
			case "update":
				legit[hex.EncodeToString(rec.Digest)] = true
			}
		}
		ids = append(ids, id)
		ledgers = append(ledgers, ledger)
		contents = append(contents, hex.EncodeToString(snap.ContentDigest))
		res.ChainDigests[id] = hex.EncodeToString(snap.ChainDigest)
	}

	// Honest controllers must agree on the event order (prefix shape —
	// gated for every pair, including state-transferred controllers,
	// mirroring the chaos plane's resync invariant). Controllers that
	// never went through peer state transfer must additionally quiesce
	// on the same order-insensitive ledger content digest: same
	// decisions on every process, even though concurrent flows
	// interleave event and update records in timing-dependent order (so
	// the order-sensitive hash-chain digest only matches between
	// byte-identical replicas, and a lawfully lagging transferred
	// replica may hold a shorter — but prefix-identical — history, with
	// update records re-derived during replay).
	res.DigestAgreement = len(ids) >= 2
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			m := len(ledgers[i])
			if len(ledgers[j]) < m {
				m = len(ledgers[j])
			}
			for k := 0; k < m; k++ {
				if ledgers[i][k] != ledgers[j][k] {
					report("event-order", ids[i]+"|"+ids[j],
						fmt.Sprintf("controllers %s and %s diverge at event %d: %q vs %q",
							ids[i], ids[j], k, ledgers[i][k].subject, ledgers[j][k].subject), "")
					break
				}
			}
			if transferred[ids[i]] || transferred[ids[j]] {
				continue
			}
			if contents[i] != contents[j] {
				res.DigestAgreement = false
				report("content-digest", ids[i]+"|"+ids[j],
					fmt.Sprintf("controllers %s and %s quiesced on different audit ledger contents (%.12s vs %.12s)",
						ids[i], ids[j], contents[i], contents[j]), "")
			}
		}
	}

	// No forged rule: every update a switch applied as valid must be
	// committed in some controller's ledger.
	for i, ap := range applies {
		if !ap.Valid || legit[hex.EncodeToString(ap.Digest)] {
			continue
		}
		report("no-forged-rule", fmt.Sprintf("%d", i),
			fmt.Sprintf("switch %s applied update %s/%d phase %d that no controller committed",
				applySwitch[i], ap.Origin, ap.Seq, ap.Phase), "")
	}

	// Reference convergence when the workload fully landed.
	res.TableDigest = tableDigest(tables)
	res.TableMatch = res.TableDigest == refDigest
	if res.FlowsDone == res.FlowsTotal && !res.TableMatch {
		report("reference", "tables",
			fmt.Sprintf("quiesced tables (digest %.12s) diverge from the fault-free simnet reference (%.12s)",
				res.TableDigest, refDigest), "")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
