package distrib

import (
	"context"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"cicero/internal/audit"
	"cicero/internal/controlplane"
	"cicero/internal/dataplane"
	"cicero/internal/fabric"
	"cicero/internal/livenet"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/routing"
	"cicero/internal/scheduler"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/pairing"
	"cicero/internal/tcrypto/pki"
)

// NodeOptions boots one node process (the runtime behind cmd/cicero-node,
// kept here so tests can drive it in-process).
type NodeOptions struct {
	// BundlePath is the signed provisioning bundle; DeployPub the trust
	// anchor its signature must verify against.
	BundlePath string
	DeployPub  ed25519.PublicKey
	// AddrsPath is the static address map: JSON object of node id ->
	// dial address (proxy fronts for node peers, the driver directly).
	AddrsPath string
	// TracePath, when non-empty, enables structured tracing.
	TracePath string
	// BootEpoch is the switch's event-id namespace; the supervisor bumps
	// it on every restart.
	BootEpoch uint32
	// CrashRecovery marks a controller replacing a SIGKILLed instance:
	// it boots mute and runs peer state transfer before participating.
	CrashRecovery bool
	// Resync makes a rebooted switch request a full table resync.
	Resync bool
}

// RunNode boots the node a bundle provisions, announces itself to the
// driver, and serves until ctx is cancelled. The returned error is nil
// on a clean shutdown.
func RunNode(ctx context.Context, opts NodeOptions) error {
	codec := protocol.NewWireCodec(pairing.Fast254())
	bundle, err := LoadBundle(opts.BundlePath, codec, opts.DeployPub)
	if err != nil {
		return err
	}
	addrData, err := os.ReadFile(opts.AddrsPath)
	if err != nil {
		return err
	}
	var addrs map[string]string
	if err := json.Unmarshal(addrData, &addrs); err != nil {
		return fmt.Errorf("distrib: address map %s: %w", opts.AddrsPath, err)
	}
	remotes := make(map[fabric.NodeID]string, len(addrs))
	for id, addr := range addrs {
		if id == bundle.ID {
			continue // self is served locally
		}
		remotes[fabric.NodeID(id)] = addr
	}

	clock := livenet.NewLamportClock()
	fab, err := livenet.NewTCPNode(livenet.TCPOptions{
		Codec:   codec,
		Remotes: remotes,
		Clock:   clock,
	})
	if err != nil {
		return err
	}
	defer fab.Close()

	var tracer *Tracer
	if opts.TracePath != "" {
		// Each boot is its own trace process: a restarted node starts a
		// fresh Lamport clock and sequence, and CheckCausal's per-process
		// monotonicity is a per-boot property.
		proc := fmt.Sprintf("%s#%d", bundle.ID, opts.BootEpoch)
		tracer, err = NewTracer(opts.TracePath, proc, clock)
		if err != nil {
			return err
		}
		defer tracer.Close()
	}

	rt := &nodeRuntime{
		bundle: bundle,
		opts:   opts,
		fab:    fab,
		tracer: tracer,
	}
	if err := rt.build(); err != nil {
		return err
	}
	tracer.Emit(TraceBoot, fmt.Sprintf("%s epoch=%d recovery=%v", bundle.Role, opts.BootEpoch, opts.CrashRecovery), "")
	if err := rt.hello(); err != nil {
		return err
	}

	<-ctx.Done()
	tracer.Emit(TraceShutdown, "", "")
	rt.stop()
	return nil
}

// nodeRuntime is one booted node: its fabric, its protocol object, and
// the runtime state the driver can query.
type nodeRuntime struct {
	bundle *protocol.NodeBundle
	opts   NodeOptions
	fab    *livenet.TCP
	tracer *Tracer

	ctl *controlplane.Controller
	sw  *dataplane.Switch

	// applies collects switch apply decisions for snapshots (guarded: the
	// hook runs on the switch mailbox, snapshots read on the same mailbox,
	// but Stop-time access crosses goroutines).
	amu     sync.Mutex
	applies []protocol.SnapshotApply
}

// build constructs the controller or switch from the bundle, registering
// it on the fabric behind the runtime's tracing/control wrapper.
func (rt *nodeRuntime) build() error {
	b := rt.bundle
	graph, err := GraphFromWire(b.GraphNodes, b.GraphLinks)
	if err != nil {
		return err
	}
	keys, err := pki.KeyPairFromSeed(pki.Identity(b.ID), b.KeySeed)
	if err != nil {
		return err
	}
	dir := pki.NewDirectory()
	for id, pub := range b.Directory {
		if err := dir.Register(id, pub); err != nil {
			return err
		}
	}
	scheme := bls.NewScheme(pairing.Fast254())
	tfab := &tracedFabric{Fabric: rt.fab, rt: rt}

	switch b.Role {
	case protocol.RoleController:
		cfg := controlplane.Config{
			ID:                pki.Identity(b.ID),
			Domain:            b.Domain,
			Members:           b.Members,
			Net:               tfab,
			Cost:              protocol.Calibrated(),
			Keys:              keys,
			Directory:         dir,
			Protocol:          controlplane.ProtoCicero,
			Aggregation:       controlplane.AggSwitch,
			Scheme:            scheme,
			GroupKey:          b.GroupKey,
			Share:             b.Share,
			App:               &routing.ShortestPath{Graph: graph},
			Sched:             scheduler.ReversePath{},
			PeerDomains:       b.PeerDomains,
			Switches:          b.Switches,
			CryptoReal:        true,
			Bootstrap:         b.Bootstrap && !rt.opts.CrashRecovery,
			ViewChangeTimeout: time.Duration(b.ViewChangeTimeoutNS),
			BatchSize:         b.BatchSize,
			BatchDelay:        time.Duration(b.BatchDelayNS),
			CrashRecovery:     rt.opts.CrashRecovery,
		}
		if b.MetaGenesis.Role != "" {
			// The bundle carries only the root of trust; everything below it
			// arrives through the verified distribution path.
			cfg.Metadata = &controlplane.MetadataConfig{Genesis: b.MetaGenesis}
		}
		ctl, err := controlplane.New(cfg)
		if err != nil {
			return err
		}
		rt.ctl = ctl
		if rt.opts.CrashRecovery {
			rt.fab.Invoke(fabric.NodeID(b.ID), ctl.StartRecovery)
		}
	case protocol.RoleSwitch:
		cfg := dataplane.Config{
			ID:          b.ID,
			Net:         tfab,
			Cost:        protocol.Calibrated(),
			Mode:        dataplane.ModeThreshold,
			Keys:        keys,
			Directory:   dir,
			Scheme:      scheme,
			GroupKey:    b.GroupKey,
			Quorum:      b.Quorum,
			Controllers: b.Members,
			CryptoReal:  true,
			ApplyHook:   rt.onApply,
			BootEpoch:   rt.opts.BootEpoch,
		}
		if b.MetaGenesis.Role != "" {
			cfg.Metadata = &dataplane.MetadataConfig{Genesis: b.MetaGenesis}
		}
		sw, err := dataplane.New(cfg)
		if err != nil {
			return err
		}
		rt.sw = sw
		// Bootstrap and (on reboot) resync inside the node's serial
		// context: frames may already be arriving on the fresh listener.
		rt.fab.InvokeWait(fabric.NodeID(b.ID), func() {
			sw.Bootstrap(b.Members, b.Aggregator, b.Quorum)
			if rt.opts.Resync {
				sw.RequestResync()
				sw.RequestMeta()
			}
		})
	default:
		return fmt.Errorf("distrib: bundle role %q unknown", b.Role)
	}
	return nil
}

// hello announces the fresh listener to the driver, retrying briefly (the
// driver is normally already up, but boot order is not guaranteed).
func (rt *nodeRuntime) hello() error {
	self := fabric.NodeID(rt.bundle.ID)
	msg := protocol.MsgNodeHello{
		ID:        rt.bundle.ID,
		Addr:      rt.fab.Addr(self),
		BootEpoch: rt.opts.BootEpoch,
		PID:       os.Getpid(),
	}
	var err error
	for attempt := 0; attempt < 20; attempt++ {
		if err = rt.fab.SendErr(self, fabric.NodeID(rt.bundle.Driver), msg, 0); err == nil {
			rt.tracer.Emit(TraceHello, msg.Addr, "")
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("distrib: hello to driver: %w", err)
}

// stop shuts the protocol object down inside its serial context.
func (rt *nodeRuntime) stop() {
	if rt.ctl != nil {
		rt.fab.InvokeWait(fabric.NodeID(rt.bundle.ID), rt.ctl.Stop)
	}
}

// onApply is the switch apply hook: it records the decision for
// snapshots and traces it with the update digest as causal reference.
func (rt *nodeRuntime) onApply(sw string, id openflow.MsgID, phase uint64, mods []openflow.FlowMod, valid bool) {
	digest := sha256.Sum256(openflow.CanonicalUpdateBytes(id, phase, mods))
	rt.amu.Lock()
	rt.applies = append(rt.applies, protocol.SnapshotApply{
		Origin: id.Origin, Seq: id.Seq, Phase: phase, Digest: digest[:], Valid: valid,
	})
	rt.amu.Unlock()
	rt.tracer.Emit(TraceApply, fmt.Sprintf("%s valid=%v", id, valid), hex.EncodeToString(digest[:]))
}

// handleControl intercepts driver control messages; it runs on the
// node's mailbox, so protocol state is safe to read. It reports whether
// the message was consumed.
func (rt *nodeRuntime) handleControl(from fabric.NodeID, msg fabric.Message) bool {
	self := fabric.NodeID(rt.bundle.ID)
	driver := fabric.NodeID(rt.bundle.Driver)
	switch m := msg.(type) {
	case protocol.MsgNodeQuery:
		snap := rt.snapshot()
		snap.Nonce = m.Nonce
		rt.fab.SendErr(self, driver, snap, 0)
		return true
	case protocol.MsgInjectFlow:
		if rt.sw != nil {
			sw := rt.sw
			flow := m
			sw.Subscribe(flow.Src, flow.Dst, func(fabric.Time) {
				rt.fab.SendErr(self, driver, protocol.MsgFlowDone{FlowID: flow.FlowID, Switch: rt.bundle.ID}, 0)
			})
			sw.PacketArrival(flow.Src, flow.Dst)
		}
		return true
	case protocol.MsgNudge:
		switch m.Op {
		case protocol.NudgeResendEvents:
			if rt.sw != nil {
				rt.sw.ResendPendingEvents()
			}
		case protocol.NudgeRedispatch:
			if rt.ctl != nil {
				rt.ctl.RedispatchUnacked()
			}
		case protocol.NudgeResync:
			if rt.sw != nil {
				rt.sw.RequestResync()
			}
		case protocol.NudgeRecover:
			if rt.ctl != nil {
				rt.ctl.StartRecovery()
			}
		}
		return true
	}
	_ = from
	return false
}

// snapshot builds the node's state snapshot (mailbox context).
func (rt *nodeRuntime) snapshot() protocol.MsgNodeSnapshot {
	snap := protocol.MsgNodeSnapshot{ID: rt.bundle.ID, Role: rt.bundle.Role}
	if rt.ctl != nil {
		records := rt.ctl.AuditRecords()
		snap.View, snap.LastDelivered = rt.ctl.BroadcastCoords()
		snap.Records = make([]protocol.SnapshotRecord, len(records))
		for i, rec := range records {
			digest := sha256.Sum256(rec.Canonical)
			snap.Records[i] = protocol.SnapshotRecord{
				Seq: rec.Seq, Kind: rec.Kind.String(), Subject: rec.Subject, Digest: digest[:],
			}
		}
		chain := audit.ChainDigest(records)
		snap.ChainDigest = chain[:]
		content := audit.ContentDigest(records)
		snap.ContentDigest = content[:]
		snap.Recovering = rt.ctl.Recovering()
		snap.Recovered = rt.ctl.Recovered()
	}
	if rt.sw != nil {
		snap.Rules = rt.sw.Table().Rules()
		snap.UpdatesApplied = rt.sw.UpdatesApplied
		snap.UpdatesRejected = rt.sw.UpdatesRejected
		rt.amu.Lock()
		snap.Applies = append([]protocol.SnapshotApply(nil), rt.applies...)
		rt.amu.Unlock()
	}
	return snap
}

// tracedFabric wraps the node's fabric: sends are traced (with hash
// references for updates), deliveries are traced and driver control
// messages peeled off before the protocol handler sees them.
type tracedFabric struct {
	fabric.Fabric
	rt *nodeRuntime
}

func (t *tracedFabric) Register(id fabric.NodeID, h fabric.Handler) {
	rt := t.rt
	t.Fabric.Register(id, fabric.HandlerFunc(func(from fabric.NodeID, msg fabric.Message) {
		rt.tracer.Emit(TraceRecv, fmt.Sprintf("%T from %s", msg, from), updateRef(msg))
		if rt.handleControl(from, msg) {
			return
		}
		h.HandleMessage(from, msg)
	}))
}

func (t *tracedFabric) Send(from, to fabric.NodeID, msg fabric.Message, size int) {
	t.rt.tracer.Emit(TraceSend, fmt.Sprintf("%T to %s", msg, to), updateRef(msg))
	t.Fabric.Send(from, to, msg, size)
}

// updateRef extracts the canonical update digest from update-bearing
// messages — the hash reference linking dispatch and apply across
// process trace files.
func updateRef(msg fabric.Message) string {
	var id openflow.MsgID
	var phase uint64
	var mods []openflow.FlowMod
	switch m := msg.(type) {
	case protocol.MsgUpdate:
		id, phase, mods = m.UpdateID, m.Phase, m.Mods
	case protocol.MsgAggUpdate:
		id, phase, mods = m.UpdateID, m.Phase, m.Mods
	case protocol.MsgBatchUpdate:
		id, phase, mods = m.UpdateID, m.Phase, m.Mods
	default:
		return ""
	}
	digest := sha256.Sum256(openflow.CanonicalUpdateBytes(id, phase, mods))
	return hex.EncodeToString(digest[:])
}
