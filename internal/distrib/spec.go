// Package distrib turns the livenet TCP backend into a true distributed
// deployment: one OS process per controller and switch (cmd/cicero-node),
// a supervisor that plans key material, launches and monitors the
// processes, kills them with SIGKILL, restarts them through the protocol
// recovery paths, and imposes socket-level partitions via per-node proxy
// listeners. Cross-process state is compared at convergence through
// signed snapshot messages (audit hash-chain digests, flow tables), and
// every process writes a structured trace ordered by a shared Lamport
// clock so cmd/cicero-trace can merge them into one causal timeline.
package distrib

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"sort"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/metarepo"
	"cicero/internal/protocol"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/dkg"
	"cicero/internal/tcrypto/pairing"
	"cicero/internal/tcrypto/pki"
	"cicero/internal/topology"
)

// DriverID is the supervisor's own node id on the fabric: node processes
// hello it at boot and send it snapshots and flow completions.
const DriverID = "distrib/driver"

// Spec describes the deployment to plan: a single-domain Cicero control
// plane over an explicit data-plane graph.
type Spec struct {
	// Controllers sizes the control plane (Cicero needs >= 4).
	Controllers int
	// Graph is the data-plane topology; every non-host node becomes one
	// switch process.
	Graph *topology.Graph
	// Seed drives nothing at plan time (keys come from crypto/rand) but
	// is recorded so workload generation and the simnet reference agree.
	Seed int64
	// BatchSize/BatchDelay configure batched ordering (<= 1 disables).
	BatchSize  int
	BatchDelay time.Duration
	// ViewChangeTimeout bounds broadcast stalls; zero takes the live
	// chaos plane's 2s wall-clock default.
	ViewChangeTimeout time.Duration
	// Metadata makes every bundle carry the domain's threshold-signed
	// root of trust; node processes boot their trusted-metadata stores
	// from it and verify all further metadata against it.
	Metadata bool
	// MetadataTTL bounds metadata document lifetime (0: 1 hour).
	MetadataTTL time.Duration
}

// Deployment is a planned deployment: per-node signed provisioning
// bundles plus the deployment trust anchor.
type Deployment struct {
	Spec     Spec
	Members  []pki.Identity
	Switches []string
	Quorum   int
	// Bundles maps every node id to its provisioning bundle.
	Bundles map[string]protocol.NodeBundle
	// DeployPub is the trust anchor node processes verify bundles
	// against; the private half stays with the supervisor.
	DeployPub  ed25519.PublicKey
	deployPriv ed25519.PrivateKey
}

// NodeIDs returns every planned node id, controllers first, in stable
// order.
func (d *Deployment) NodeIDs() []string {
	ids := make([]string, 0, len(d.Members)+len(d.Switches))
	for _, m := range d.Members {
		ids = append(ids, string(m))
	}
	ids = append(ids, d.Switches...)
	return ids
}

// Plan generates the deployment's key material — identity keys for every
// node, one DKG for the domain threshold key, the deployment signing key
// — and packs one bundle per node. It mirrors core.Build's assembly so a
// process booted from a bundle is indistinguishable from an in-process
// node.
func Plan(spec Spec) (*Deployment, error) {
	if spec.Graph == nil {
		return nil, fmt.Errorf("distrib: spec needs a graph")
	}
	if spec.Controllers < 4 {
		return nil, fmt.Errorf("distrib: cicero requires >= 4 controllers, got %d", spec.Controllers)
	}
	if spec.ViewChangeTimeout == 0 {
		// A zero timeout disables view changes, so one message loss during
		// a partition window would stall the atomic broadcast forever.
		// Wall-clock deployments share the live chaos plane's default.
		spec.ViewChangeTimeout = 2 * time.Second
	}
	members := make([]pki.Identity, spec.Controllers)
	for i := range members {
		members[i] = pki.Identity(fmt.Sprintf("dom0/ctl/%d", i+1))
	}
	var switches []string
	for _, n := range spec.Graph.Nodes() {
		if n.Kind != topology.KindHost {
			switches = append(switches, n.ID)
		}
	}
	sort.Strings(switches)
	if len(switches) == 0 {
		return nil, fmt.Errorf("distrib: graph has no switches")
	}

	quorum := controlplane.CiceroQuorum(spec.Controllers)
	scheme := bls.NewScheme(pairing.Fast254())
	gk, shares, err := dkg.Run(scheme, rand.Reader, quorum, spec.Controllers)
	if err != nil {
		return nil, fmt.Errorf("distrib: dkg: %w", err)
	}

	seeds := make(map[string][]byte)
	directory := make(map[pki.Identity][]byte)
	addKey := func(id pki.Identity) (*pki.KeyPair, error) {
		kp, err := pki.NewKeyPair(rand.Reader, id)
		if err != nil {
			return nil, fmt.Errorf("distrib: keygen %s: %w", id, err)
		}
		seeds[string(id)] = kp.Seed()
		directory[id] = append([]byte(nil), kp.Public...)
		return kp, nil
	}
	memberKeys := make([]*pki.KeyPair, len(members))
	for i, m := range members {
		kp, err := addKey(m)
		if err != nil {
			return nil, err
		}
		memberKeys[i] = kp
	}
	for _, sw := range switches {
		if _, err := addKey(pki.Identity(sw)); err != nil {
			return nil, err
		}
	}

	var metaGenesis protocol.MetaEnvelope
	if spec.Metadata {
		ttl := spec.MetadataTTL
		if ttl == 0 {
			ttl = time.Hour
		}
		root := metarepo.GenesisRoot(quorum, memberKeys, time.Now().UnixNano(), int64(ttl))
		metaGenesis, err = metarepo.SignRootDirect(scheme, gk, shares, root)
		if err != nil {
			return nil, fmt.Errorf("distrib: metadata genesis: %w", err)
		}
	}

	deployPub, deployPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("distrib: deployment key: %w", err)
	}

	graphNodes, graphLinks := GraphToWire(spec.Graph)
	peerDomains := map[int][]pki.Identity{0: append([]pki.Identity(nil), members...)}

	dep := &Deployment{
		Spec:       spec,
		Members:    members,
		Switches:   switches,
		Quorum:     quorum,
		Bundles:    make(map[string]protocol.NodeBundle),
		DeployPub:  deployPub,
		deployPriv: deployPriv,
	}
	common := protocol.NodeBundle{
		Driver:              DriverID,
		Members:             members,
		Switches:            switches,
		PeerDomains:         peerDomains,
		Quorum:              quorum,
		Directory:           directory,
		GroupKey:            gk,
		BatchSize:           spec.BatchSize,
		BatchDelayNS:        int64(spec.BatchDelay),
		ViewChangeTimeoutNS: int64(spec.ViewChangeTimeout),
		GraphNodes:          graphNodes,
		GraphLinks:          graphLinks,
		MetaGenesis:         metaGenesis,
	}
	for i, m := range members {
		b := common
		b.Role = protocol.RoleController
		b.ID = string(m)
		b.Slot = i
		b.KeySeed = seeds[string(m)]
		b.Share = shares[i]
		b.Bootstrap = i == 0
		dep.Bundles[string(m)] = b
	}
	for _, sw := range switches {
		b := common
		b.Role = protocol.RoleSwitch
		b.ID = sw
		b.KeySeed = seeds[sw]
		dep.Bundles[sw] = b
	}
	return dep, nil
}

// GraphToWire serializes a topology graph into the bundle's explicit
// node/link lists (each undirected link once, in stable order).
func GraphToWire(g *topology.Graph) ([]protocol.WireGraphNode, []protocol.WireGraphLink) {
	var nodes []protocol.WireGraphNode
	for _, n := range g.Nodes() {
		nodes = append(nodes, protocol.WireGraphNode{
			ID: n.ID, Kind: int(n.Kind), DC: n.DC, Pod: n.Pod, Rack: n.Rack,
		})
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	var links []protocol.WireGraphLink
	for _, n := range nodes {
		for _, e := range g.Neighbors(n.ID) {
			if n.ID >= e.To {
				continue // each undirected link once, from its lesser end
			}
			links = append(links, protocol.WireGraphLink{
				A: n.ID, B: e.To, LatencyNS: int64(e.Latency), Gbps: e.GbpsCapacity,
			})
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		return links[i].B < links[j].B
	})
	return nodes, links
}

// GraphFromWire rebuilds the topology graph a bundle describes.
func GraphFromWire(nodes []protocol.WireGraphNode, links []protocol.WireGraphLink) (*topology.Graph, error) {
	g := topology.NewGraph()
	for _, n := range nodes {
		g.AddNode(topology.Node{
			ID: n.ID, Kind: topology.Kind(n.Kind), DC: n.DC, Pod: n.Pod, Rack: n.Rack,
		})
	}
	for _, l := range links {
		if err := g.AddLink(l.A, l.B, time.Duration(l.LatencyNS), l.Gbps); err != nil {
			return nil, fmt.Errorf("distrib: graph link %s-%s: %w", l.A, l.B, err)
		}
	}
	return g, nil
}
