package distrib

import (
	"os"
	"path/filepath"
	"testing"

	"cicero/internal/livenet"
)

// TestTraceMergeCausalOrder writes two per-process traces whose clocks
// interleave and checks the merge is causally ordered and clean.
func TestTraceMergeCausalOrder(t *testing.T) {
	dir := t.TempDir()
	pa := filepath.Join(dir, "trace-a.jsonl")
	pb := filepath.Join(dir, "trace-b.jsonl")

	// Shared clock simulates the fabric threading Lamport values between
	// the two processes: a sends, b observes and applies.
	clockA := livenet.NewLamportClock()
	clockB := livenet.NewLamportClock()
	ta, err := NewTracer(pa, "a", clockA)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTracer(pb, "b", clockB)
	if err != nil {
		t.Fatal(err)
	}
	ta.Emit(TraceBoot, "", "")
	ta.Emit(TraceSend, "update to b", "digest-1")
	clockB.Observe(clockA.Now()) // the frame carries a's clock
	tb.Emit(TraceRecv, "update from a", "digest-1")
	tb.Emit(TraceApply, "update", "digest-1")
	ta.Close()
	tb.Close()

	merged, err := MergeTraces([]string{pa, pb})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 4 {
		t.Fatalf("merged %d events, want 4", len(merged))
	}
	// The apply must land after the send it references.
	sendAt, applyAt := -1, -1
	for i, ev := range merged {
		switch ev.Kind {
		case TraceSend:
			sendAt = i
		case TraceApply:
			applyAt = i
		}
	}
	if sendAt < 0 || applyAt < 0 || applyAt < sendAt {
		t.Fatalf("apply at %d did not follow send at %d", applyAt, sendAt)
	}
	if violations := CheckCausal(merged); len(violations) != 0 {
		t.Fatalf("unexpected causal violations: %v", violations)
	}
}

// TestCheckCausalDetectsOrphanApply verifies the checker flags an apply
// whose dispatch never appears in the merged timeline.
func TestCheckCausalDetectsOrphanApply(t *testing.T) {
	events := []TraceEvent{
		{Proc: "a", Seq: 1, Clock: 1, Kind: TraceBoot},
		{Proc: "b", Seq: 1, Clock: 2, Kind: TraceApply, Ref: "deadbeefdeadbeef"},
	}
	if violations := CheckCausal(events); len(violations) != 1 {
		t.Fatalf("want 1 violation for orphan apply, got %v", violations)
	}
}

// TestCheckCausalDetectsBrokenProcessOrder verifies the checker flags a
// merge that interleaves one process's events out of order.
func TestCheckCausalDetectsBrokenProcessOrder(t *testing.T) {
	events := []TraceEvent{
		{Proc: "a", Seq: 2, Clock: 5, Kind: TraceSend},
		{Proc: "a", Seq: 1, Clock: 3, Kind: TraceBoot},
	}
	violations := CheckCausal(events)
	if len(violations) != 2 { // seq regressed and clock regressed
		t.Fatalf("want 2 violations for broken process order, got %v", violations)
	}
}

// TestReadTraceToleratesTornTail simulates a SIGKILL mid-write: the
// final line is truncated and must be dropped, not fail the parse.
func TestReadTraceToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace-torn.jsonl")
	content := `{"proc":"a","seq":1,"clock":1,"kind":"boot"}
{"proc":"a","seq":2,"clock":2,"kind":"send","ref":"abc"}
{"proc":"a","seq":3,"clo`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("want 2 events with torn tail dropped, got %d", len(events))
	}
}

// TestLamportClock exercises the clock's tick/observe laws.
func TestLamportClock(t *testing.T) {
	c := livenet.NewLamportClock()
	if got := c.Tick(); got != 1 {
		t.Fatalf("first tick = %d, want 1", got)
	}
	if got := c.Observe(10); got != 11 {
		t.Fatalf("observe(10) = %d, want 11", got)
	}
	if got := c.Observe(3); got != 12 {
		t.Fatalf("observe(3) after 11 = %d, want 12 (local dominates)", got)
	}
	if got := c.Now(); got != 12 {
		t.Fatalf("now = %d, want 12", got)
	}
}
