package distrib

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/protocol"
	"cicero/internal/tcrypto/pairing"
)

// nodeBin is the cicero-node binary TestMain builds once for every
// multi-process test; empty means subprocess tests must skip.
var (
	nodeBin      string
	nodeBinErr   string
	nodeBinDir   string
	testHarnessM *testing.M
)

func TestMain(m *testing.M) {
	testHarnessM = m
	dir, err := os.MkdirTemp("", "cicero-node-bin")
	if err != nil {
		nodeBinErr = fmt.Sprintf("temp dir: %v", err)
		os.Exit(m.Run())
	}
	nodeBinDir = dir
	bin := filepath.Join(dir, "cicero-node")
	cmd := exec.Command("go", "build", "-o", bin, "cicero/cmd/cicero-node")
	if out, err := cmd.CombinedOutput(); err != nil {
		nodeBinErr = fmt.Sprintf("go build cicero-node: %v: %s", err, out)
	} else {
		nodeBin = bin
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// requireNodeBin skips tests that need to spawn real node processes when
// the harness could not build the binary (e.g. no subprocess spawning in
// the sandbox).
func requireNodeBin(t *testing.T) {
	t.Helper()
	if nodeBin == "" {
		t.Skipf("multi-process harness unavailable: %s", nodeBinErr)
	}
}

// TestPlanShape checks the planner mirrors the in-process assembly:
// member naming, quorum, per-node bundles with distinct key material.
func TestPlanShape(t *testing.T) {
	dep, err := Plan(Spec{Controllers: 4, Graph: SmokeGraph()})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(dep.Members); got != 4 {
		t.Fatalf("members = %d, want 4", got)
	}
	if got := string(dep.Members[0]); got != "dom0/ctl/1" {
		t.Fatalf("first member = %q, want dom0/ctl/1", got)
	}
	if got := len(dep.Switches); got != 4 {
		t.Fatalf("switches = %d, want 4 (hosts excluded)", got)
	}
	if dep.Quorum != controlplane.CiceroQuorum(4) {
		t.Fatalf("quorum = %d, want %d for n=4", dep.Quorum, controlplane.CiceroQuorum(4))
	}
	if got := len(dep.Bundles); got != 8 {
		t.Fatalf("bundles = %d, want 8", got)
	}
	boot := 0
	seeds := make(map[string]bool)
	for id, b := range dep.Bundles {
		if b.ID != id {
			t.Fatalf("bundle %s carries id %s", id, b.ID)
		}
		if b.Bootstrap {
			boot++
		}
		if len(b.KeySeed) == 0 {
			t.Fatalf("bundle %s has no key seed", id)
		}
		if seeds[string(b.KeySeed)] {
			t.Fatalf("bundle %s reuses another node's key seed", id)
		}
		seeds[string(b.KeySeed)] = true
		if len(b.Directory) != 8 {
			t.Fatalf("bundle %s directory has %d entries, want 8", id, len(b.Directory))
		}
	}
	if boot != 1 {
		t.Fatalf("%d bootstrap bundles, want exactly 1", boot)
	}
}

// TestGraphWireRoundTrip checks the bundle's explicit graph encoding
// reproduces the topology.
func TestGraphWireRoundTrip(t *testing.T) {
	g := SmokeGraph()
	nodes, links := GraphToWire(g)
	if len(nodes) != 8 || len(links) != 7 {
		t.Fatalf("wire graph %d nodes / %d links, want 8/7", len(nodes), len(links))
	}
	back, err := GraphFromWire(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes() {
		got := back.Neighbors(n.ID)
		want := g.Neighbors(n.ID)
		if len(got) != len(want) {
			t.Fatalf("node %s: %d neighbors after round trip, want %d", n.ID, len(got), len(want))
		}
	}
}

// TestBundleSignatureRequired checks a bundle tampered after signing, or
// verified against the wrong key, is rejected before any key material in
// it is trusted.
func TestBundleSignatureRequired(t *testing.T) {
	dep, err := Plan(Spec{Controllers: 4, Graph: SmokeGraph()})
	if err != nil {
		t.Fatal(err)
	}
	codec := protocol.NewWireCodec(pairing.Fast254())
	path := filepath.Join(t.TempDir(), "bundle.json")
	id := string(dep.Members[0])
	if err := WriteBundle(path, codec, dep.Bundles[id], dep.deployPriv); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(path, codec, dep.DeployPub); err != nil {
		t.Fatalf("genuine bundle rejected: %v", err)
	}
	wrongPub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(path, codec, wrongPub); err == nil {
		t.Fatal("bundle accepted under the wrong deployment key")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Frame []byte `json:"frame"`
		Sig   []byte `json:"sig"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	f.Frame[len(f.Frame)/2] ^= 0x01
	tampered, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, tampered, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(path, codec, dep.DeployPub); err == nil {
		t.Fatal("tampered bundle accepted")
	}
}

// campaignDir picks the campaign working directory: a throwaway temp dir
// normally, or a subdirectory of $CICERO_DISTRIB_DIR when set — CI sets
// it so per-process logs and traces survive the run and can be uploaded
// as artifacts when a campaign fails.
func campaignDir(t *testing.T) string {
	if base := os.Getenv("CICERO_DISTRIB_DIR"); base != "" {
		dir := filepath.Join(base, t.Name())
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return t.TempDir()
}

// goroutineCount waits for stray goroutines to wind down and returns the
// stable count.
func goroutineCount() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 40; i++ {
		time.Sleep(50 * time.Millisecond)
		m := runtime.NumGoroutine()
		if m >= n {
			return m
		}
		n = m
	}
	return n
}

// TestCampaignSmoke boots the full deployment as real OS processes — one
// per controller and switch — runs a small workload with no faults, and
// checks convergence, digest agreement and the merged causal trace.
func TestCampaignSmoke(t *testing.T) {
	requireNodeBin(t)
	if testing.Short() {
		t.Skip("multi-process campaign is slow")
	}
	before := goroutineCount()
	res, err := RunCampaign(CampaignOptions{
		Bin:     nodeBin,
		Dir:     campaignDir(t),
		Flows:   6,
		Seed:    7,
		Timeout: 3 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertCampaignClean(t, res)
	assertNoLeaks(t, res, before)
}

// TestCampaignKill9Recovery is the headline chaos test: SIGKILL a
// controller and a switch mid-update (no shutdown path runs), impose and
// heal a socket-level partition, restart the victims through crash
// recovery and resync, and require full convergence with identical audit
// hash chains across the surviving and recovered processes.
func TestCampaignKill9Recovery(t *testing.T) {
	requireNodeBin(t)
	if testing.Short() {
		t.Skip("multi-process campaign is slow")
	}
	before := goroutineCount()
	res, err := RunCampaign(CampaignOptions{
		Bin:            nodeBin,
		Dir:            campaignDir(t),
		Flows:          6,
		Seed:           11,
		KillController: true,
		KillSwitch:     true,
		Partition:      true,
		Timeout:        4 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Error("killed controller never finished crash recovery")
	}
	assertCampaignClean(t, res)
	assertNoLeaks(t, res, before)
}

func assertCampaignClean(t *testing.T, res *CampaignResult) {
	t.Helper()
	for _, v := range res.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if res.FlowsDone != res.FlowsTotal {
		t.Errorf("flows: %d/%d completed", res.FlowsDone, res.FlowsTotal)
	}
	if !res.TableMatch {
		t.Errorf("tables diverge from simnet reference: %.12s vs %.12s", res.TableDigest, res.RefDigest)
	}
	if !res.DigestAgreement {
		t.Errorf("audit hash-chain digests disagree across processes: %v", res.ChainDigests)
	}
	if len(res.CausalErrors) != 0 {
		t.Errorf("merged trace causal violations: %v", res.CausalErrors)
	}
	if res.TraceEvents == 0 {
		t.Error("merged trace is empty")
	}
}

func assertNoLeaks(t *testing.T, res *CampaignResult, before int) {
	t.Helper()
	if res.ProcsLeaked != 0 {
		t.Errorf("%d node processes leaked past Close", res.ProcsLeaked)
	}
	after := goroutineCount()
	if after > before+5 {
		t.Errorf("goroutine leak: %d before campaign, %d after", before, after)
	}
}
