package distrib

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"cicero/internal/fabric"
	"cicero/internal/livenet"
	"cicero/internal/protocol"
	"cicero/internal/tcrypto/pairing"
)

// procState tracks one node's OS process across its boot epochs.
type procState struct {
	cmd    *exec.Cmd
	epoch  uint32
	waitCh chan error // closed by the reaper after cmd.Wait returns
	log    *os.File
}

// Supervisor launches one OS process per planned node, monitors their
// hellos, SIGKILLs and restarts them through the protocol recovery
// paths, and imposes socket-level partitions at each node's proxy. It is
// itself a node (DriverID) on the same TCP fabric, which is how it
// queries snapshots and injects workload.
type Supervisor struct {
	dep   *Deployment
	dir   string
	bin   string
	codec *protocol.WireCodec
	fab   *livenet.TCP
	clock *livenet.LamportClock
	trace *Tracer

	mu      sync.Mutex
	proxies map[string]*proxy
	procs   map[string]*procState
	ready   map[string]uint32 // node id -> boot epoch last helloed
	pending map[uint64]chan protocol.MsgNodeSnapshot
	flows   map[uint64]map[string]bool // flow id -> switches reporting done
	nonce   uint64
	traces  []string
	closed  bool
}

// NewSupervisor plans proxies and writes the per-node bundle and address
// files into dir, but launches nothing; call Start per node. bin is the
// cicero-node binary.
func NewSupervisor(dep *Deployment, bin, dir string) (*Supervisor, error) {
	s := &Supervisor{
		dep:     dep,
		dir:     dir,
		bin:     bin,
		codec:   protocol.NewWireCodec(pairing.Fast254()),
		clock:   livenet.NewLamportClock(),
		proxies: make(map[string]*proxy),
		procs:   make(map[string]*procState),
		ready:   make(map[string]uint32),
		pending: make(map[uint64]chan protocol.MsgNodeSnapshot),
		flows:   make(map[uint64]map[string]bool),
	}
	remotes := make(map[fabric.NodeID]string)
	for _, id := range dep.NodeIDs() {
		p, err := newProxy(id)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.proxies[id] = p
		remotes[fabric.NodeID(id)] = p.Addr()
	}
	fab, err := livenet.NewTCPNode(livenet.TCPOptions{
		Codec:   s.codec,
		Remotes: remotes,
		Clock:   s.clock,
	})
	if err != nil {
		s.Close()
		return nil, err
	}
	s.fab = fab
	fab.Register(DriverID, fabric.HandlerFunc(s.handle))

	tracePath := filepath.Join(dir, "trace-driver.jsonl")
	s.trace, err = NewTracer(tracePath, DriverID, s.clock)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.traces = append(s.traces, tracePath)

	// The address map every node dials by: peers through their proxies,
	// the driver directly (the fault plane never cuts the control loop).
	addrs := make(map[string]string, len(dep.Bundles)+1)
	for id, p := range s.proxies {
		addrs[id] = p.Addr()
	}
	addrs[DriverID] = fab.Addr(DriverID)
	addrData, err := json.MarshalIndent(addrs, "", "  ")
	if err != nil {
		s.Close()
		return nil, err
	}
	if err := os.WriteFile(s.addrsPath(), addrData, 0o644); err != nil {
		s.Close()
		return nil, err
	}
	for id, b := range dep.Bundles {
		if err := WriteBundle(s.bundlePath(id), s.codec, b, dep.deployPriv); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

func sanitize(id string) string { return strings.ReplaceAll(id, "/", "_") }

func (s *Supervisor) addrsPath() string { return filepath.Join(s.dir, "addrs.json") }
func (s *Supervisor) bundlePath(id string) string {
	return filepath.Join(s.dir, "bundle-"+sanitize(id)+".json")
}

// TracePaths returns every trace file written so far (driver plus one
// per node boot).
func (s *Supervisor) TracePaths() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.traces...)
}

// handle runs on the driver's mailbox: node hellos retarget proxies,
// snapshots satisfy pending queries, flow completions accumulate.
func (s *Supervisor) handle(from fabric.NodeID, msg fabric.Message) {
	switch m := msg.(type) {
	case protocol.MsgNodeHello:
		s.trace.Emit(TraceHello, fmt.Sprintf("%s pid=%d epoch=%d", m.ID, m.PID, m.BootEpoch), "")
		s.mu.Lock()
		p := s.proxies[m.ID]
		s.ready[m.ID] = m.BootEpoch + 1 // +1 so epoch 0 reads as present
		s.mu.Unlock()
		if p != nil {
			p.SetBackend(m.Addr)
		}
	case protocol.MsgNodeSnapshot:
		s.mu.Lock()
		ch := s.pending[m.Nonce]
		delete(s.pending, m.Nonce)
		s.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	case protocol.MsgFlowDone:
		s.mu.Lock()
		set := s.flows[m.FlowID]
		if set == nil {
			set = make(map[string]bool)
			s.flows[m.FlowID] = set
		}
		set[m.Switch] = true
		s.mu.Unlock()
	}
	_ = from
}

// Start launches the node's process at boot epoch 0.
func (s *Supervisor) Start(id string) error {
	return s.launch(id, 0, false, false)
}

func (s *Supervisor) launch(id string, epoch uint32, crashRecovery, resync bool) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("distrib: supervisor closed")
	}
	if ps := s.procs[id]; ps != nil && ps.cmd != nil {
		s.mu.Unlock()
		return fmt.Errorf("distrib: %s already running", id)
	}
	tracePath := filepath.Join(s.dir, fmt.Sprintf("trace-%s-%d.jsonl", sanitize(id), epoch))
	s.traces = append(s.traces, tracePath)
	delete(s.ready, id)
	s.mu.Unlock()

	args := []string{
		"-bundle", s.bundlePath(id),
		"-addrs", s.addrsPath(),
		"-deploy-pub", hex.EncodeToString(s.dep.DeployPub),
		"-trace", tracePath,
		"-boot-epoch", fmt.Sprintf("%d", epoch),
	}
	if crashRecovery {
		args = append(args, "-crash-recovery")
	}
	if resync {
		args = append(args, "-resync")
	}
	cmd := exec.Command(s.bin, args...)
	logf, err := os.OpenFile(filepath.Join(s.dir, "log-"+sanitize(id)+".txt"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return fmt.Errorf("distrib: start %s: %w", id, err)
	}
	ps := &procState{cmd: cmd, epoch: epoch, waitCh: make(chan error, 1), log: logf}
	s.mu.Lock()
	s.procs[id] = ps
	s.mu.Unlock()
	go func() {
		ps.waitCh <- cmd.Wait()
		close(ps.waitCh)
		logf.Close()
	}()
	return nil
}

// WaitReady blocks until every listed node has helloed its current boot,
// or the deadline passes.
func (s *Supervisor) WaitReady(ids []string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		missing := ""
		s.mu.Lock()
		for _, id := range ids {
			if s.ready[id] == 0 {
				missing = id
				break
			}
		}
		s.mu.Unlock()
		if missing == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("distrib: %s not ready after %v", missing, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Kill SIGKILLs the node's process — no shutdown path runs — and clears
// its proxy backend so every peer's connection to it dies like the
// process did. It reaps the process before returning.
func (s *Supervisor) Kill(id string) error {
	s.mu.Lock()
	ps := s.procs[id]
	p := s.proxies[id]
	delete(s.ready, id)
	s.mu.Unlock()
	if ps == nil || ps.cmd == nil {
		return fmt.Errorf("distrib: %s not running", id)
	}
	s.trace.Emit("kill", id, "")
	ps.cmd.Process.Signal(syscall.SIGKILL)
	if p != nil {
		p.SetBackend("")
	}
	select {
	case <-ps.waitCh:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("distrib: %s did not die after SIGKILL", id)
	}
	s.mu.Lock()
	delete(s.procs, id)
	s.mu.Unlock()
	return nil
}

// Restart relaunches a killed node through the protocol recovery path: a
// controller boots in crash recovery (mute until peer state transfer
// completes), a switch boots into a fresh event-id epoch and requests a
// table resync.
func (s *Supervisor) Restart(id string) error {
	s.mu.Lock()
	if s.procs[id] != nil {
		s.mu.Unlock()
		return fmt.Errorf("distrib: %s still running; kill it first", id)
	}
	epoch := s.nextEpoch(id)
	s.mu.Unlock()
	if b, ok := s.dep.Bundles[id]; ok && b.Role == protocol.RoleController {
		return s.launch(id, epoch, true, false)
	}
	return s.launch(id, epoch, false, true)
}

// nextEpoch returns the next unused boot epoch for id; s.mu must be held.
func (s *Supervisor) nextEpoch(id string) uint32 {
	var next uint32
	prefix := fmt.Sprintf("trace-%s-", sanitize(id))
	for _, tr := range s.traces {
		base := filepath.Base(tr)
		if strings.HasPrefix(base, prefix) {
			next++
		}
	}
	return next
}

// Partition severs both directions between a and b at their proxies.
func (s *Supervisor) Partition(a, b string) {
	s.PartitionOneWay(a, b)
	s.PartitionOneWay(b, a)
}

// PartitionOneWay blocks frames from `from` at `to`'s proxy.
func (s *Supervisor) PartitionOneWay(from, to string) {
	s.mu.Lock()
	p := s.proxies[to]
	s.mu.Unlock()
	if p != nil {
		s.trace.Emit("partition", from+" -/-> "+to, "")
		p.Block(from)
	}
}

// Heal removes both directions of a partition.
func (s *Supervisor) Heal(a, b string) {
	s.HealOneWay(a, b)
	s.HealOneWay(b, a)
}

// HealOneWay unblocks frames from `from` at `to`'s proxy.
func (s *Supervisor) HealOneWay(from, to string) {
	s.mu.Lock()
	p := s.proxies[to]
	s.mu.Unlock()
	if p != nil {
		s.trace.Emit("heal", from+" --> "+to, "")
		p.Unblock(from)
	}
}

// Snapshot queries the node's state across the process boundary,
// retrying (fresh nonce each attempt) until the deadline.
func (s *Supervisor) Snapshot(id string, timeout time.Duration) (protocol.MsgNodeSnapshot, error) {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		s.nonce++
		nonce := s.nonce
		ch := make(chan protocol.MsgNodeSnapshot, 1)
		s.pending[nonce] = ch
		s.mu.Unlock()
		s.fab.SendErr(DriverID, fabric.NodeID(id), protocol.MsgNodeQuery{Nonce: nonce}, 0)
		select {
		case snap := <-ch:
			return snap, nil
		case <-time.After(500 * time.Millisecond):
			s.mu.Lock()
			delete(s.pending, nonce)
			s.mu.Unlock()
			if time.Now().After(deadline) {
				return protocol.MsgNodeSnapshot{}, fmt.Errorf("distrib: snapshot %s: no reply after %v", id, timeout)
			}
		}
	}
}

// InjectFlow asks the switch to raise a packet-arrival event for the
// src->dst flow; the switch reports back when its table serves the flow.
func (s *Supervisor) InjectFlow(sw string, flowID uint64, src, dst string) error {
	s.trace.Emit("inject", fmt.Sprintf("flow=%d %s->%s at %s", flowID, src, dst, sw), "")
	return s.fab.SendErr(DriverID, fabric.NodeID(sw),
		protocol.MsgInjectFlow{FlowID: flowID, Src: src, Dst: dst}, 0)
}

// FlowDone reports whether any switch has confirmed the flow installed.
func (s *Supervisor) FlowDone(flowID uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.flows[flowID]) > 0
}

// Nudge sends a liveness nudge (resend-events, redispatch, resync).
func (s *Supervisor) Nudge(id, op string) error {
	return s.fab.SendErr(DriverID, fabric.NodeID(id), protocol.MsgNudge{Op: op}, 0)
}

// LiveProcs returns the ids of nodes whose processes are still running.
func (s *Supervisor) LiveProcs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for id, ps := range s.procs {
		if ps != nil && ps.cmd != nil && ps.cmd.ProcessState == nil {
			out = append(out, id)
		}
	}
	return out
}

// Close SIGKILLs every remaining process, reaps them, and tears down
// proxies, fabric and tracer. Safe to call more than once.
func (s *Supervisor) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	procs := make(map[string]*procState, len(s.procs))
	for id, ps := range s.procs {
		procs[id] = ps
	}
	s.procs = make(map[string]*procState)
	proxies := s.proxies
	s.proxies = make(map[string]*proxy)
	s.mu.Unlock()

	for _, ps := range procs {
		if ps != nil && ps.cmd != nil && ps.cmd.Process != nil {
			ps.cmd.Process.Signal(syscall.SIGKILL)
		}
	}
	for _, ps := range procs {
		if ps != nil {
			select {
			case <-ps.waitCh:
			case <-time.After(10 * time.Second):
			}
		}
	}
	for _, p := range proxies {
		p.Close()
	}
	if s.fab != nil {
		s.fab.Close()
	}
	s.trace.Close()
}
