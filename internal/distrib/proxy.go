package distrib

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"time"
)

// proxyMaxFrame mirrors livenet's frame cap; a proxy drops a connection
// carrying anything larger (corrupted or hostile length prefix).
const proxyMaxFrame = 1 << 22

// proxyMinFrame is the smallest legal frame body (8-byte clock + 2-byte
// sender length), matching livenet's framing.
const proxyMinFrame = 10

// proxy is one node's stable inbound face. Peers dial the proxy's fixed
// front address; the proxy parses each frame far enough to learn the
// sender and relays it to the node process's current real listener. This
// indirection is what makes the fault plane socket-level: a partition
// blocks a sender by closing (and refusing) its connections at the
// victim's proxy, and a SIGKILL clears the backend so every peer's
// frames hit a dead socket until the process reboots and re-registers.
type proxy struct {
	node string
	ln   net.Listener

	mu      sync.Mutex
	backend string          // current real listener address, "" while down
	blocked map[string]bool // sender ids whose frames are severed
	fronts  map[net.Conn]string
	backs   map[net.Conn]net.Conn
	closed  bool

	wg sync.WaitGroup
}

// newProxy binds the node's stable front listener.
func newProxy(node string) (*proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &proxy{
		node:    node,
		ln:      ln,
		blocked: make(map[string]bool),
		fronts:  make(map[net.Conn]string),
		backs:   make(map[net.Conn]net.Conn),
	}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr is the stable front address peers dial.
func (p *proxy) Addr() string { return p.ln.Addr().String() }

// SetBackend points the proxy at the node's current real listener ("" =
// node down). All existing connections are severed either way: after a
// restart peers must redial (the old process is gone), and after a kill
// their sockets must die like the process did.
func (p *proxy) SetBackend(addr string) {
	p.mu.Lock()
	p.backend = addr
	conns := p.takeConnsLocked(func(string) bool { return true })
	p.mu.Unlock()
	closeAll(conns)
}

// Block severs the sender: existing connections close, new frames from
// it tear their connection down.
func (p *proxy) Block(sender string) {
	p.mu.Lock()
	p.blocked[sender] = true
	conns := p.takeConnsLocked(func(s string) bool { return s == sender })
	p.mu.Unlock()
	closeAll(conns)
}

// Unblock heals the sender's path; it reconnects on its next frame.
func (p *proxy) Unblock(sender string) {
	p.mu.Lock()
	delete(p.blocked, sender)
	p.mu.Unlock()
}

// Close shuts the proxy down and waits for its goroutines.
func (p *proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	conns := p.takeConnsLocked(func(string) bool { return true })
	p.mu.Unlock()
	p.ln.Close()
	closeAll(conns)
	p.wg.Wait()
}

// takeConnsLocked removes and returns every connection whose learned
// sender matches (front and back halves); p.mu must be held.
func (p *proxy) takeConnsLocked(match func(sender string) bool) []net.Conn {
	var out []net.Conn
	for front, sender := range p.fronts {
		if !match(sender) {
			continue
		}
		out = append(out, front)
		if back := p.backs[front]; back != nil {
			out = append(out, back)
		}
		delete(p.fronts, front)
		delete(p.backs, front)
	}
	return out
}

func closeAll(conns []net.Conn) {
	for _, c := range conns {
		c.Close()
	}
}

// accept runs the front listener.
func (p *proxy) accept() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.fronts[conn] = ""
		p.mu.Unlock()
		p.wg.Add(1)
		go p.relay(conn)
	}
}

// relay forwards frames from one front connection to the node's current
// backend, severing on block, node-down, or any framing error.
func (p *proxy) relay(front net.Conn) {
	defer p.wg.Done()
	var back net.Conn
	defer func() {
		front.Close()
		if back != nil {
			back.Close()
		}
		p.mu.Lock()
		delete(p.fronts, front)
		delete(p.backs, front)
		p.mu.Unlock()
	}()
	var header [4]byte
	for {
		if _, err := io.ReadFull(front, header[:]); err != nil {
			return
		}
		frameLen := binary.BigEndian.Uint32(header[:])
		if frameLen < proxyMinFrame || frameLen > proxyMaxFrame {
			return
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(front, frame); err != nil {
			return
		}
		fromLen := binary.BigEndian.Uint16(frame[8:10])
		if int(fromLen) > len(frame)-proxyMinFrame {
			return
		}
		sender := string(frame[10 : 10+fromLen])

		p.mu.Lock()
		if p.closed || p.blocked[sender] {
			p.mu.Unlock()
			return
		}
		p.fronts[front] = sender
		backend := p.backend
		p.mu.Unlock()
		if backend == "" {
			return // node is down: the sender's socket dies too
		}
		if back == nil {
			c, err := net.DialTimeout("tcp", backend, time.Second)
			if err != nil {
				return
			}
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				c.Close()
				return
			}
			p.backs[front] = c
			p.mu.Unlock()
			back = c
		}
		back.SetWriteDeadline(time.Now().Add(2 * time.Second))
		if _, err := back.Write(header[:]); err != nil {
			return
		}
		if _, err := back.Write(frame); err != nil {
			return
		}
	}
}
