package distrib

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"os"

	"cicero/internal/protocol"
)

// bundleFile is the on-disk form of a signed bundle: the wire-codec
// frame plus the deployment signature over those exact bytes.
type bundleFile struct {
	Frame []byte `json:"frame"`
	Sig   []byte `json:"sig"`
}

// WriteBundle encodes, signs and writes one node's provisioning bundle.
func WriteBundle(path string, codec *protocol.WireCodec, b protocol.NodeBundle, priv ed25519.PrivateKey) error {
	frame, err := codec.Encode(b)
	if err != nil {
		return fmt.Errorf("distrib: encode bundle %s: %w", b.ID, err)
	}
	data, err := json.Marshal(bundleFile{Frame: frame, Sig: ed25519.Sign(priv, frame)})
	if err != nil {
		return err
	}
	// 0600: the bundle holds the node's private key seed.
	return os.WriteFile(path, data, 0o600)
}

// LoadBundle reads a bundle file and verifies its signature against the
// deployment trust anchor before decoding it.
func LoadBundle(path string, codec *protocol.WireCodec, pub ed25519.PublicKey) (*protocol.NodeBundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f bundleFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("distrib: bundle %s: %w", path, err)
	}
	if !ed25519.Verify(pub, f.Frame, f.Sig) {
		return nil, fmt.Errorf("distrib: bundle %s: signature does not verify against the deployment key", path)
	}
	msg, err := codec.Decode(f.Frame)
	if err != nil {
		return nil, fmt.Errorf("distrib: bundle %s: %w", path, err)
	}
	b, ok := msg.(protocol.NodeBundle)
	if !ok {
		return nil, fmt.Errorf("distrib: bundle %s: frame is %T, not a node bundle", path, msg)
	}
	return &b, nil
}
