package distrib

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"cicero/internal/livenet"
)

// TraceEvent is one structured trace record from one process. Clock is
// the process's Lamport value at emit time; because the TCP fabric
// threads the same clock through every frame, any event that causally
// follows another (across any number of processes) has a strictly larger
// Clock, and sorting the union of all per-process files by Clock yields
// a causally consistent total order. Ref carries a hash reference (hex
// digest of the canonical update bytes) linking dispatches to applies.
type TraceEvent struct {
	Proc   string `json:"proc"`
	Seq    uint64 `json:"seq"`
	Clock  uint64 `json:"clock"`
	WallNS int64  `json:"wall_ns"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
	Ref    string `json:"ref,omitempty"`
}

// Trace event kinds.
const (
	TraceBoot     = "boot"
	TraceHello    = "hello"
	TraceSend     = "send"
	TraceRecv     = "recv"
	TraceApply    = "apply"
	TraceShutdown = "shutdown"
)

// Tracer appends JSONL trace events to a file, stamping each with the
// process's Lamport clock. A nil Tracer is a valid no-op, so tracing is
// strictly optional.
type Tracer struct {
	mu    sync.Mutex
	f     *os.File
	proc  string
	seq   uint64
	clock *livenet.LamportClock
}

// NewTracer opens (truncating) the trace file for one process.
func NewTracer(path, proc string, clock *livenet.LamportClock) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Tracer{f: f, proc: proc, clock: clock}, nil
}

// Emit records one event. Each line is written straight through so a
// SIGKILL loses at most the event being written.
func (t *Tracer) Emit(kind, detail, ref string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev := TraceEvent{
		Proc:   t.proc,
		Seq:    t.seq,
		Clock:  t.clock.Tick(),
		WallNS: time.Now().UnixNano(),
		Kind:   kind,
		Detail: detail,
		Ref:    ref,
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	t.f.Write(append(line, '\n'))
}

// Close closes the trace file.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.f.Close()
}

// ReadTrace parses one per-process trace file. A truncated final line
// (the process was SIGKILLed mid-write) is tolerated and dropped.
func ReadTrace(path string) ([]TraceEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []TraceEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		var ev TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // torn tail write from a killed process
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}

// MergeTraces reads every per-process trace file and merges them into
// one timeline ordered by (Lamport clock, wall clock, process, seq) —
// the Lamport component guarantees causal consistency, the remaining
// keys make the order total and deterministic.
func MergeTraces(paths []string) ([]TraceEvent, error) {
	var all []TraceEvent
	for _, path := range paths {
		evs, err := ReadTrace(path)
		if err != nil {
			return nil, fmt.Errorf("distrib: trace %s: %w", path, err)
		}
		all = append(all, evs...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Clock != b.Clock {
			return a.Clock < b.Clock
		}
		if a.WallNS != b.WallNS {
			return a.WallNS < b.WallNS
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Seq < b.Seq
	})
	return all, nil
}

// CheckCausal verifies a merged timeline's causal structure:
//
//   - per process, sequence numbers strictly increase and Lamport clocks
//     never decrease (a violated pair means the merge interleaved one
//     process's events out of order);
//   - every apply event whose Ref names an update digest appears after a
//     send of that digest (a switch can only apply an update some
//     controller dispatched causally earlier).
//
// It returns human-readable violations; empty means the timeline is
// causally ordered.
func CheckCausal(events []TraceEvent) []string {
	var violations []string
	lastSeq := make(map[string]uint64)
	lastClock := make(map[string]uint64)
	sent := make(map[string]bool)
	for i, ev := range events {
		if prev, ok := lastSeq[ev.Proc]; ok && ev.Seq <= prev {
			violations = append(violations,
				fmt.Sprintf("event %d: process %s seq went %d -> %d (out of order in merge)", i, ev.Proc, prev, ev.Seq))
		}
		lastSeq[ev.Proc] = ev.Seq
		if prev, ok := lastClock[ev.Proc]; ok && ev.Clock < prev {
			violations = append(violations,
				fmt.Sprintf("event %d: process %s clock went %d -> %d (merge broke process order)", i, ev.Proc, prev, ev.Clock))
		}
		lastClock[ev.Proc] = ev.Clock
		switch ev.Kind {
		case TraceSend:
			if ev.Ref != "" {
				sent[ev.Ref] = true
			}
		case TraceApply:
			if ev.Ref != "" && !sent[ev.Ref] {
				violations = append(violations,
					fmt.Sprintf("event %d: %s applied update %s with no causally earlier dispatch in the merged timeline", i, ev.Proc, ev.Ref[:12]))
			}
		}
	}
	return violations
}
