package protocol

import "time"

// CostModel maps protocol work to simulated time. The evaluation measures
// protocol-induced latency on the paper's testbed hardware (Xeon E5-2420,
// PBC Type-A pairings, BFT-SMaRt over a 1 Gb network); these constants are
// calibrated so that the single-flow setup costs of §6.2 land near the
// paper's reported values (≈2.9 ms centralized, ≈4.3 ms crash-tolerant,
// ≈8.3 ms Cicero, ≈11.6 ms Cicero with controller aggregation) and all
// relative shapes follow from the protocol structure rather than from
// this machine's speed.
//
// Real cryptographic operations can additionally be executed (they always
// are in the security tests); the cost model still supplies the *time*
// so runs remain hardware-independent. In particular, the crypto fast
// path (prepared pairings, product-of-pairings verification, batched
// share verification, verification caching — see DESIGN.md) accelerates
// only the real CPU work; simulated latencies stay pinned to the paper's
// PBC measurements via these constants, so making the implementation
// faster never changes an experiment's virtual-time results.
type CostModel struct {
	// Ed25519Sign/Verify cover event and ack authentication.
	Ed25519Sign   time.Duration
	Ed25519Verify time.Duration

	// BLS threshold operations (PBC Type-A scale, per the paper's setup).
	BLSSignShare         time.Duration
	BLSVerifyShare       time.Duration
	BLSAggregatePerShare time.Duration
	BLSVerifyAggregate   time.Duration

	// RouteCompute is the controller application's path computation plus
	// update-scheduler run per event.
	RouteCompute time.Duration

	// SwitchApply is the flow-table update application cost on a switch
	// (commodity switches are slow at this; see §2.2).
	SwitchApply time.Duration

	// PacketForwardPerKB is the data-plane forwarding cost charged per
	// kilobyte transiting a switch; the paper's OVS instances burn most
	// of their CPU here. Only runs that measure CPU utilization enable
	// it (core.RunOptions.ChargeForwarding).
	PacketForwardPerKB time.Duration

	// BFTCompute is per-message processing inside the atomic broadcast.
	BFTCompute time.Duration

	// MsgProcess is the fixed per-message deserialization/dispatch cost on
	// switches and controllers.
	MsgProcess time.Duration

	// AggregatorQueue is the extra queuing/processing delay at the
	// designated aggregator controller per combined update: it funnels
	// every domain update through one node (§4.2 notes this latency
	// trade-off).
	AggregatorQueue time.Duration

	// ReshareCompute is one participant's DKG/resharing computation during
	// a membership change.
	ReshareCompute time.Duration
}

// Calibrated returns the cost model used by the experiments.
func Calibrated() CostModel {
	return CostModel{
		Ed25519Sign:          50 * time.Microsecond,
		Ed25519Verify:        130 * time.Microsecond,
		BLSSignShare:         450 * time.Microsecond,
		BLSVerifyShare:       900 * time.Microsecond,
		BLSAggregatePerShare: 80 * time.Microsecond,
		BLSVerifyAggregate:   950 * time.Microsecond,
		RouteCompute:         150 * time.Microsecond,
		SwitchApply:          550 * time.Microsecond,
		PacketForwardPerKB:   1500 * time.Nanosecond,
		BFTCompute:           170 * time.Microsecond,
		AggregatorQueue:      900 * time.Microsecond,
		MsgProcess:           100 * time.Microsecond,
		ReshareCompute:       3 * time.Millisecond,
	}
}

// Zero returns a cost model with no time charges, isolating pure
// message-count effects in tests.
func Zero() CostModel { return CostModel{} }
