package protocol

import (
	"bytes"
	"crypto/rand"
	"encoding/json"
	"math/big"
	"reflect"
	"sort"
	"testing"

	"cicero/internal/bft"
	"cicero/internal/fabric"
	"cicero/internal/openflow"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/dkg"
	"cicero/internal/tcrypto/merkle"
	"cicero/internal/tcrypto/pairing"
	"cicero/internal/tcrypto/pki"
)

// wireSamples returns one representative value per registered wire type.
// TestWireCoverage asserts this list covers the registry exactly, so a new
// registered type fails tests until a sample (and thus a round-trip check)
// exists for it.
func wireSamples(t testing.TB) []fabric.Message {
	t.Helper()
	scheme := bls.NewScheme(pairing.Fast254())
	gk, shares, err := dkg.Run(scheme, rand.Reader, 2, 4)
	if err != nil {
		t.Fatalf("dkg: %v", err)
	}
	id := openflow.MsgID{Origin: "h1", Seq: 7}
	mods := []openflow.FlowMod{
		{Op: openflow.FlowAdd, Switch: "s1", Rule: openflow.Rule{
			Priority: 10,
			Match:    openflow.Match{Src: "h1", Dst: "h2"},
			Action:   openflow.Action{Type: openflow.ActionOutput, NextHop: "s2"},
			Cookie:   9,
		}},
		{Op: openflow.FlowDelete, Switch: "s2", Rule: openflow.Rule{
			Match:  openflow.Match{Src: "h1", Dst: "h2"},
			Action: openflow.Action{Type: openflow.ActionDrop},
		}},
	}
	members := []pki.Identity{"dom0/ctl/1", "dom0/ctl/2", "dom0/ctl/3", "dom0/ctl/4"}
	digest := bft.PayloadDigest([]byte("payload"))
	batchTree := merkle.NewTree([][]byte{
		openflow.CanonicalUpdateBytes(id, 3, mods[:1]),
		openflow.CanonicalUpdateBytes(openflow.MsgID{Origin: "h2", Seq: 1}, 3, mods[1:]),
	})
	batchRoot := batchTree.Root()
	return []fabric.Message{
		MsgEvent{Env: pki.Envelope{From: "s1", Payload: []byte(`{"id":1}`), Signature: []byte{1, 2, 3}}},
		MsgAck{Env: pki.Envelope{From: "s1", Payload: []byte(`{"applied":true}`), Signature: []byte{4, 5}}},
		MsgUpdate{UpdateID: id, Mods: mods, Phase: 3, From: members[1], ShareIndex: 2, Share: []byte{6, 7, 8}},
		MsgAggUpdate{UpdateID: id, Mods: mods, Phase: 3, Signature: []byte{9, 10}},
		MsgBatchUpdate{
			UpdateID: id, Mods: mods, Phase: 3, From: members[1],
			BatchRoot: batchRoot[:], LeafIndex: 0, LeafCount: 2,
			Proof: batchTree.Proof(0), ShareIndex: 2, Share: []byte{6, 7, 8},
			ReleaseSig: []byte{13, 14, 15},
		},
		MsgConfig{Phase: 4, Quorum: 2, Members: members, Aggregator: members[0], GroupKey: gk, Signature: []byte{11}},
		MsgConfigShare{Phase: 4, Quorum: 2, Members: members, Aggregator: members[0], ShareIndex: 3, Share: []byte{12}},
		MsgStateTransfer{
			Phase: 4, NewPhase: 5,
			Members:     members[:3],
			NewMembers:  members,
			GroupKey:    gk,
			PeerDomains: map[int][]pki.Identity{0: members[:2], 1: members[2:]},
		},
		MsgReshareDeal{Phase: 5, Deal: &dkg.ReshareDeal{Dealer: 1, DealerSet: []uint32{1, 2, 3}, Commitments: gk.Commitments}},
		MsgReshareSub{Phase: 5, Sub: dkg.SubShare{Dealer: 1, Recipient: 4, Value: big.NewInt(123456789)}},
		MsgHeartbeat{From: members[2], Seq: 42},
		MsgRecoverRequest{From: members[1], Phase: 4},
		MsgRecoverState{From: members[2], Phase: 4, View: 1, LastDelivered: 9,
			Events: [][]byte{[]byte(`{"id":"h1/7"}`), []byte(`{"id":"h2/1"}`)}},
		MsgResyncRequest{Switch: "s1"},
		MsgMeta{Env: MetaEnvelope{
			Role:   MetaRoleTimestamp,
			Signed: []byte(`{"version":3,"expires_ns":90}`),
			Sigs:   []MetaSig{{KeyID: string(members[0]), Sig: []byte{21, 22}}},
		}},
		MsgMetaSet{Envs: []MetaEnvelope{
			{Role: MetaRoleRoot, Signed: []byte(`{"version":1}`), Sigs: []MetaSig{{KeyID: MetaSigKeyGroup, Sig: []byte{23}}}},
			{Role: MetaRoleTargets, Signed: []byte(`{"version":2}`), Sigs: []MetaSig{{KeyID: string(members[1]), Sig: []byte{24}}}},
		}},
		MsgMetaRequest{From: "s2"},
		MsgMetaShare{Version: 2, Signed: []byte(`{"version":2}`), ShareIndex: 3, Share: []byte{25, 26}},
		MsgMetaSig{Role: MetaRoleSnapshot, Version: 2, Digest: bytes.Repeat([]byte{7}, 32),
			Signed: []byte(`{"version":2}`), KeyID: string(members[2]), Sig: []byte{27, 28}},
		MsgBFT{Phase: 4, Inner: bft.Prepare{View: 1, Seq: 2, Digest: digest, Replica: 3}},
		bft.Request{Origin: 2, Payload: []byte("payload")},
		bft.PrePrepare{View: 1, Seq: 2, Digest: digest, Payload: []byte("payload")},
		bft.Prepare{View: 1, Seq: 2, Digest: digest, Replica: 3},
		bft.Commit{View: 1, Seq: 2, Digest: digest, Replica: 3},
		bft.ViewChange{NewView: 2, Replica: 1, Prepared: []bft.PreparedEntry{{Seq: 2, Digest: digest, Payload: []byte("payload")}}},
		bft.NewView{View: 2, PrePrepares: []bft.PrePrepare{{View: 2, Seq: 2, Digest: digest, Payload: []byte("payload")}}},
		openflow.BundleOpen{Bundle: id},
		openflow.BundleAdd{Bundle: id, Mod: mods[0]},
		openflow.BundleCommit{Bundle: id},
		openflow.BarrierRequest{ID: id},
		openflow.BarrierReply{ID: id},
		openflow.PacketIn{ID: id, Switch: "s1", Src: "h1", Dst: "h2", SizeBytes: 1500},
		openflow.PacketOut{ID: id, Switch: "s1", Src: "h1", Dst: "h2", Payload: "attack"},
		openflow.RoleRequest{ID: id, Role: openflow.RoleMaster},
		NodeBundle{
			Role: RoleController, ID: string(members[1]), Domain: 0, Slot: 1,
			Driver:      "distrib/driver",
			Members:     members,
			Switches:    []string{"s1", "s2"},
			PeerDomains: map[int][]pki.Identity{0: members},
			Quorum:      2,
			KeySeed:     bytes.Repeat([]byte{7}, 32),
			Directory:   map[pki.Identity][]byte{"s1": {1, 2}, members[0]: {3, 4}},
			GroupKey:    gk,
			Share:       shares[1],
			Bootstrap:   false,
			BatchSize:   4, BatchDelayNS: 2e6, ViewChangeTimeoutNS: 5e8,
			GraphNodes: []WireGraphNode{{ID: "s1", Kind: 1, DC: -1, Pod: -1, Rack: -1}, {ID: "h1", Kind: 0, DC: -1, Pod: -1, Rack: -1}},
			GraphLinks: []WireGraphLink{{A: "h1", B: "s1", LatencyNS: 1e6, Gbps: 10}},
			MetaGenesis: MetaEnvelope{Role: MetaRoleRoot, Signed: []byte(`{"version":1}`),
				Sigs: []MetaSig{{KeyID: MetaSigKeyGroup, Sig: []byte{31, 32}}}},
		},
		MsgNodeHello{ID: "s1", Addr: "127.0.0.1:45001", BootEpoch: 2, PID: 4242},
		MsgNodeQuery{Nonce: 99},
		MsgNodeSnapshot{
			Nonce: 99, ID: string(members[1]), Role: RoleController,
			View: 1, LastDelivered: 17,
			Records: []SnapshotRecord{
				{Seq: 1, Kind: "event", Subject: "h1#7", Digest: bytes.Repeat([]byte{2}, 32)},
				{Seq: 2, Kind: "update", Subject: "h1#7", Digest: bytes.Repeat([]byte{3}, 32)},
			},
			ChainDigest:    bytes.Repeat([]byte{4}, 32),
			ContentDigest:  bytes.Repeat([]byte{6}, 32),
			Recovered:      true,
			Rules:          []openflow.Rule{mods[0].Rule},
			Applies:        []SnapshotApply{{Origin: "h1", Seq: 7, Phase: 3, Digest: bytes.Repeat([]byte{5}, 32), Valid: true}},
			UpdatesApplied: 3, UpdatesRejected: 1,
		},
		MsgInjectFlow{FlowID: 12, Src: "h1", Dst: "h2"},
		MsgFlowDone{FlowID: 12, Switch: "s1"},
		MsgNudge{Op: NudgeRedispatch},
	}
}

// TestWireRoundTrip encodes every sample, decodes it, re-encodes the
// result, and requires byte-identical frames — a canonical-form round trip
// that catches lossy field handling without needing deep-equality rules
// for pointer-heavy crypto types.
func TestWireRoundTrip(t *testing.T) {
	c := NewWireCodec(nil)
	for _, sample := range wireSamples(t) {
		first, err := c.Encode(sample)
		if err != nil {
			t.Fatalf("encode %T: %v", sample, err)
		}
		decoded, err := c.Decode(first)
		if err != nil {
			t.Fatalf("decode %T: %v", sample, err)
		}
		if reflect.TypeOf(decoded) != reflect.TypeOf(sample) {
			t.Fatalf("decode %T: got %T", sample, decoded)
		}
		second, err := c.Encode(decoded)
		if err != nil {
			t.Fatalf("re-encode %T: %v", sample, err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round trip not stable for %T:\n first: %s\nsecond: %s", sample, first, second)
		}
	}
}

// TestWireGroupKeyRoundTrip checks the crypto-bearing path semantically: a
// decoded group key must verify exactly like the original.
func TestWireGroupKeyRoundTrip(t *testing.T) {
	c := NewWireCodec(nil)
	scheme := bls.NewScheme(pairing.Fast254())
	gk, shares, err := dkg.Run(scheme, rand.Reader, 2, 4)
	if err != nil {
		t.Fatalf("dkg: %v", err)
	}
	frame, err := c.Encode(MsgConfig{Phase: 1, Quorum: 2, GroupKey: gk})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := c.Decode(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, ok := decoded.(MsgConfig).GroupKey.(*bls.GroupKey)
	if !ok || got == nil {
		t.Fatalf("decoded group key: %T", decoded.(MsgConfig).GroupKey)
	}
	msg := []byte("update bytes")
	share := scheme.SignShare(shares[0], msg)
	if !scheme.VerifyShare(got, msg, share) {
		t.Fatalf("decoded group key rejects a valid share")
	}
}

// TestWireCoverage fails when the sample list and the registry drift
// apart, in either direction.
func TestWireCoverage(t *testing.T) {
	c := NewWireCodec(nil)
	covered := make(map[string]bool)
	for _, sample := range wireSamples(t) {
		frame, err := c.Encode(sample)
		if err != nil {
			t.Fatalf("encode %T: %v", sample, err)
		}
		var f wireFrame
		if err := json.Unmarshal(frame, &f); err != nil {
			t.Fatalf("frame %T: %v", sample, err)
		}
		covered[f.T] = true
		// MsgBFT's sample also exercises its nested inner frame type, but
		// the inner types have their own top-level samples, so no extra
		// bookkeeping is needed.
	}
	registered := make(map[string]bool)
	for _, name := range c.RegisteredTypes() {
		registered[name] = true
	}
	// Name the drift explicitly in both directions: a registered type with
	// no round-trip sample is a codec test silently skipped, and a sample
	// for an unregistered name is a stale test.
	var missing, extra []string
	for name := range registered {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	for name := range covered {
		if !registered[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	if len(missing) > 0 {
		t.Errorf("registered wire types with no round-trip sample (add them to wireSamples): %v", missing)
	}
	if len(extra) > 0 {
		t.Errorf("samples for unregistered wire types (stale entries in wireSamples): %v", extra)
	}
}

// TestWireDecodeErrors checks the codec rejects (not panics on) the
// malformed-input classes a live transport can deliver.
func TestWireDecodeErrors(t *testing.T) {
	c := NewWireCodec(nil)
	cases := map[string][]byte{
		"empty":         nil,
		"not json":      []byte("\x00\x01garbage"),
		"unknown type":  []byte(`{"t":"no-such-type","b":{}}`),
		"bad body":      []byte(`{"t":"heartbeat","b":[1,2,3]}`),
		"bad point":     []byte(`{"t":"config","b":{"phase":1,"group_key":{"t":2,"n":4,"pk":"AAEC","commitments":["AAEC"]}}}`),
		"nested bomb":   []byte(`{"t":"bft","b":{"phase":1,"inner":{"t":"bft","b":{"phase":1,"inner":{"t":"bft","b":{"phase":1,"inner":{"t":"bft","b":{}}}}}}}}`),
		"inner unknown": []byte(`{"t":"bft","b":{"phase":1,"inner":{"t":"nope","b":{}}}}`),
	}
	for name, data := range cases {
		if _, err := c.Decode(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
	if _, err := c.Encode(struct{ X int }{1}); err == nil {
		t.Errorf("encode accepted an unregistered type")
	}
}

// FuzzWireDecode asserts Decode never panics: any input must yield either
// a registered message or an error. Valid frames additionally must
// re-encode (the codec never produces a value it cannot serialize).
func FuzzWireDecode(f *testing.F) {
	c := NewWireCodec(nil)
	for _, sample := range wireSamples(f) {
		frame, err := c.Encode(sample)
		if err != nil {
			f.Fatalf("seed encode %T: %v", sample, err)
		}
		f.Add(frame)
		// A corrupted variant of every seed: flip a byte in the middle.
		if len(frame) > 4 {
			bad := append([]byte(nil), frame...)
			bad[len(bad)/2] ^= 0xff
			f.Add(bad)
		}
	}
	f.Add([]byte(`{"t":"bft","b":{"phase":1,"inner":{"t":"heartbeat","b":{}}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := c.Decode(data)
		if err != nil {
			return
		}
		if _, err := c.Encode(msg); err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
	})
}
