// Package protocol defines the wire vocabulary shared by Cicero's data
// plane and control plane — events, signed updates, acknowledgements,
// aggregator assignment, membership/resharing messages, heartbeats — plus
// the calibrated cost model that maps cryptographic and processing work to
// simulated time.
package protocol

import (
	"encoding/json"
	"fmt"

	"cicero/internal/openflow"
	"cicero/internal/tcrypto/dkg"
	"cicero/internal/tcrypto/pki"
)

// EventKind distinguishes the causes of network updates.
type EventKind int

// Event kinds. Start at 1 so the zero value is invalid.
const (
	// EventFlowRequest reports an unroutable packet (OpenFlow table miss).
	EventFlowRequest EventKind = iota + 1
	// EventFlowTeardown asks for a flow's rules to be removed (the
	// unamortized setup/teardown mode of §6.2).
	EventFlowTeardown
	// EventLinkDown reports a failed link (Fig. 2 scenario).
	EventLinkDown
	// EventPolicyChange carries an administrator policy update (Fig. 1).
	EventPolicyChange
	// EventMembershipInfo informs a domain about another domain's
	// control-plane membership change (§4.3 final step).
	EventMembershipInfo
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventFlowRequest:
		return "flow-request"
	case EventFlowTeardown:
		return "flow-teardown"
	case EventLinkDown:
		return "link-down"
	case EventPolicyChange:
		return "policy-change"
	case EventMembershipInfo:
		return "membership-info"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is a network event entering the control plane.
type Event struct {
	ID   openflow.MsgID `json:"id"`
	Kind EventKind      `json:"kind"`
	// Src and Dst are flow endpoints for flow events; Src/Dst name the
	// link ends for EventLinkDown.
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
	// Cookie tags flow-scoped rules for teardown.
	Cookie uint64 `json:"cookie,omitempty"`
	// Forwarded marks an event relayed from another domain; it must be
	// processed locally and never forwarded again (§4.1).
	Forwarded bool `json:"forwarded,omitempty"`
	// Info carries opaque payload for policy/membership events.
	Info string `json:"info,omitempty"`
}

// Encode serializes the event for signing and broadcast.
func (e Event) Encode() []byte {
	b, err := json.Marshal(e)
	if err != nil {
		// Event contains only marshalable fields; this is unreachable.
		panic(fmt.Sprintf("protocol: encode event: %v", err))
	}
	return b
}

// DecodeEvent parses an encoded event.
func DecodeEvent(data []byte) (Event, error) {
	var e Event
	if err := json.Unmarshal(data, &e); err != nil {
		return Event{}, fmt.Errorf("protocol: decode event: %w", err)
	}
	return e, nil
}

// MsgEvent carries a pki-signed event from its source to a controller.
type MsgEvent struct {
	Env pki.Envelope
}

// MsgUpdate is one controller's (threshold-share-)signed network update
// sent to a switch or to the aggregator.
type MsgUpdate struct {
	UpdateID openflow.MsgID
	Mods     []openflow.FlowMod
	Phase    uint64
	// From identifies the signing controller.
	From pki.Identity
	// ShareIndex is the controller's threshold-share index; Share is its
	// BLS signature share over CanonicalUpdateBytes. Empty for the
	// centralized and crash-tolerant baselines.
	ShareIndex uint32
	Share      []byte
	// Resend marks a recovery retransmission: a switch that already
	// applied the update re-acknowledges instead of silently dropping the
	// duplicate. Ordinary quorum traffic leaves it false so late shares do
	// not amplify into ack storms.
	Resend bool
}

// MsgAggUpdate is an aggregator-combined update carrying the full
// threshold signature, verified by the switch in a single operation.
type MsgAggUpdate struct {
	UpdateID  openflow.MsgID
	Mods      []openflow.FlowMod
	Phase     uint64
	Signature []byte
	// Resend marks a recovery retransmission (see MsgUpdate.Resend).
	Resend bool
}

// MsgBatchUpdate is one controller's batch-amortized signed update: the
// update itself plus a Merkle inclusion proof tying it to a batch root.
// The signature share covers BatchBytes(Phase, BatchRoot) — one share
// computation per batch, reused across every update in it — and the switch
// combines a quorum of root shares once per batch, then admits each member
// update with pure hashing (proof verification against the verified root).
type MsgBatchUpdate struct {
	UpdateID openflow.MsgID
	Mods     []openflow.FlowMod
	Phase    uint64
	// From identifies the signing controller.
	From pki.Identity
	// BatchRoot is the Merkle root over the canonical bytes
	// (CanonicalUpdateBytes) of every update in the batch, in batch order.
	// LeafIndex and LeafCount locate this update's leaf in that tree and
	// Proof is its audit path (sibling hashes, leaf to root).
	BatchRoot []byte
	LeafIndex int
	LeafCount int
	Proof     [][]byte
	// ShareIndex is the controller's threshold-share index; Share is its
	// BLS signature share over BatchBytes(Phase, BatchRoot).
	ShareIndex uint32
	Share      []byte
	// ReleaseSig is From's Ed25519 signature over
	// BatchReleaseBytes(UpdateID, Phase, BatchRoot) — the per-update
	// release attestation. The root share only vouches for the batch's
	// content; ReleaseSig is what binds "controller From released this
	// member now" to an identity the switch can authenticate, so a
	// Byzantine controller cannot fabricate the quorum of distinct
	// senders that gates an update's apply (it holds only its own key).
	ReleaseSig []byte
	// Resend marks a recovery retransmission (see MsgUpdate.Resend).
	Resend bool
}

// BatchBytes is the canonical byte string threshold-signed for a batch of
// updates: the membership phase and the Merkle root over the batch's
// canonical update bytes. Signing the root (rather than each update)
// preserves the no-forged-rule guarantee because the root binds every
// leaf's exact content and position, and switches only act on updates with
// a valid inclusion proof against a quorum-verified root.
func BatchBytes(phase uint64, root []byte) []byte {
	return []byte(fmt.Sprintf("batch|phase=%d|root=%x", phase, root))
}

// BatchReleaseBytes is the canonical byte string a controller Ed25519-signs
// when it releases one member of a batch (MsgBatchUpdate.ReleaseSig). It
// binds the update's identity, the membership phase, and the batch root;
// the update's content is already bound to the root by the inclusion
// proof, so the triple suffices to make the release attestation
// unforgeable and non-transplantable across batches.
func BatchReleaseBytes(id openflow.MsgID, phase uint64, root []byte) []byte {
	return []byte(fmt.Sprintf("batch-release|update=%s|phase=%d|root=%x", id, phase, root))
}

// Ack is a switch's acknowledgement that an update was applied.
type Ack struct {
	UpdateID openflow.MsgID `json:"update_id"`
	Switch   string         `json:"switch"`
	// Applied is false if the update was rejected (invalid signature).
	Applied bool `json:"applied"`
}

// Encode serializes the ack for signing.
func (a Ack) Encode() []byte {
	b, err := json.Marshal(a)
	if err != nil {
		panic(fmt.Sprintf("protocol: encode ack: %v", err))
	}
	return b
}

// DecodeAck parses an encoded ack.
func DecodeAck(data []byte) (Ack, error) {
	var a Ack
	if err := json.Unmarshal(data, &a); err != nil {
		return Ack{}, fmt.Errorf("protocol: decode ack: %w", err)
	}
	return a, nil
}

// MsgAck carries a pki-signed ack from a switch to the control plane.
type MsgAck struct {
	Env pki.Envelope
}

// MsgConfig is a threshold-signed control-plane configuration pushed to
// switches after bootstrap and after every membership change: the current
// phase, the share quorum, the membership (for event multicast and acks),
// and the aggregator assignment (the OpenFlow master/slave role mechanism
// of §5.1; empty in switch-aggregation mode). The signature verifies
// against the never-changing threshold public key, so switches need no
// other key material.
type MsgConfig struct {
	Phase      uint64
	Quorum     int
	Members    []pki.Identity
	Aggregator pki.Identity
	// GroupKey carries the post-reshare public key material
	// (*bls.GroupKey: same public key, fresh Feldman commitments) so
	// switches can keep verifying signature shares. It is public
	// information whose integrity is protected by Signature, which
	// verifies against the unchanged group public key.
	GroupKey  any
	Signature []byte
}

// ConfigBytes is the canonical byte string threshold-signed for a
// control-plane configuration.
func ConfigBytes(phase uint64, quorum int, members []pki.Identity, aggregator pki.Identity) []byte {
	s := fmt.Sprintf("config|phase=%d|t=%d|agg=%s", phase, quorum, aggregator)
	for _, m := range members {
		s += "|" + string(m)
	}
	return []byte(s)
}

// MsgConfigShare is one controller's signature share over ConfigBytes,
// sent to the config leader (lowest-identifier member) for combination.
type MsgConfigShare struct {
	Phase      uint64
	Quorum     int
	Members    []pki.Identity
	Aggregator pki.Identity
	ShareIndex uint32
	Share      []byte
}

// MsgStateTransfer bootstraps a joining controller (§4.3 step iv): the
// membership, phase, group key (public material only), peer-domain view,
// and the pending change it must participate in. In the real system this
// rides an encrypted channel; the simulation passes the values directly.
type MsgStateTransfer struct {
	Phase       uint64
	NewPhase    uint64
	Members     []pki.Identity // membership before the change
	NewMembers  []pki.Identity
	GroupKey    any // *bls.GroupKey (any avoids an import cycle)
	PeerDomains map[int][]pki.Identity
}

// MembershipOp is a control-plane membership change.
type MembershipOp int

// Membership operations. Start at 1 so the zero value is invalid.
const (
	MemberAdd MembershipOp = iota + 1
	MemberRemove
)

// String names the operation.
func (op MembershipOp) String() string {
	if op == MemberAdd {
		return "add"
	}
	return "remove"
}

// MembershipChange is agreed through the atomic broadcast before any
// resharing begins (Fig. 8c).
type MembershipChange struct {
	Op MembershipOp `json:"op"`
	// Controller is the identity being added or removed.
	Controller pki.Identity `json:"controller"`
	// Phase is the membership phase this change installs (old phase + 1).
	Phase uint64 `json:"phase"`
}

// BroadcastItem is the payload the control plane atomically broadcasts:
// either an event or a membership change.
type BroadcastItem struct {
	Event      *Event            `json:"event,omitempty"`
	Membership *MembershipChange `json:"membership,omitempty"`
	// Phase tags events with the broadcaster's membership phase; events
	// from an older phase are re-queued (§4.3).
	Phase uint64 `json:"phase"`
	// Origin is the controller that broadcast the item.
	Origin pki.Identity `json:"origin"`
}

// Encode serializes the item for the atomic broadcast.
func (it BroadcastItem) Encode() []byte {
	b, err := json.Marshal(it)
	if err != nil {
		panic(fmt.Sprintf("protocol: encode broadcast item: %v", err))
	}
	return b
}

// DecodeBroadcastItem parses a broadcast payload.
func DecodeBroadcastItem(data []byte) (BroadcastItem, error) {
	var it BroadcastItem
	if err := json.Unmarshal(data, &it); err != nil {
		return BroadcastItem{}, fmt.Errorf("protocol: decode broadcast item: %w", err)
	}
	return it, nil
}

// MsgReshareDeal is a resharing dealer's broadcast to the (new) control
// plane during a membership change.
type MsgReshareDeal struct {
	Phase uint64
	Deal  *dkg.ReshareDeal
}

// MsgReshareSub is a dealer's private sub-share to one new member.
type MsgReshareSub struct {
	Phase uint64
	Sub   dkg.SubShare
}

// MsgHeartbeat is the failure detector's liveness probe.
type MsgHeartbeat struct {
	From pki.Identity
	Seq  uint64
}

// MsgRecoverRequest is a restarted controller's plea for state: it lost
// all volatile state in a crash and asks its peers for the delivered
// event history and the atomic broadcast's coordinates.
type MsgRecoverRequest struct {
	From  pki.Identity
	Phase uint64
}

// MsgRecoverState is one peer's answer to a MsgRecoverRequest: the
// canonical encodings of every event it has appended to its audit ledger,
// in broadcast delivery order, plus its broadcast coordinates. The
// recovering controller adopts only a prefix vouched for by f+1
// pairwise-consistent responses, so a single Byzantine peer cannot feed
// it fabricated history.
type MsgRecoverState struct {
	From          pki.Identity
	Phase         uint64
	View          uint64
	LastDelivered uint64
	Events        [][]byte
}

// MsgResyncRequest is a restarted switch's plea for its flow table: it
// asks every controller to retransmit (with Resend set and fresh
// signature shares) the updates previously dispatched to it. The flow
// table rebuilds through the normal quorum-authenticated path, so a
// forged resync answer is no more powerful than a forged update.
type MsgResyncRequest struct {
	Switch string
}

// MsgBFT wraps an atomic-broadcast protocol message between two
// controllers of the same domain. Phase scopes the message to a
// membership epoch: the broadcast group is rebuilt on every membership
// change, and messages from other epochs are buffered or dropped.
type MsgBFT struct {
	Phase uint64
	Inner any
}
