package protocol

import (
	"strings"
	"testing"
	"time"

	"cicero/internal/openflow"
	"cicero/internal/tcrypto/pki"
)

func TestEventEncodeDecodeRoundTrip(t *testing.T) {
	ev := Event{
		ID:        openflow.MsgID{Origin: "tor-3", Seq: 42},
		Kind:      EventFlowRequest,
		Src:       "h1",
		Dst:       "h2",
		Cookie:    7,
		Forwarded: true,
		Info:      "extra",
	}
	got, err := DecodeEvent(ev.Encode())
	if err != nil {
		t.Fatalf("DecodeEvent: %v", err)
	}
	if got != ev {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, ev)
	}
}

func TestDecodeEventRejectsGarbage(t *testing.T) {
	if _, err := DecodeEvent([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestAckEncodeDecodeRoundTrip(t *testing.T) {
	ack := Ack{UpdateID: openflow.MsgID{Origin: "e1", Seq: 3}, Switch: "s9", Applied: true}
	got, err := DecodeAck(ack.Encode())
	if err != nil {
		t.Fatalf("DecodeAck: %v", err)
	}
	if got != ack {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, ack)
	}
	if _, err := DecodeAck([]byte("{")); err == nil {
		t.Fatal("garbage ack accepted")
	}
}

func TestBroadcastItemRoundTrip(t *testing.T) {
	ev := Event{ID: openflow.MsgID{Origin: "x", Seq: 1}, Kind: EventFlowRequest, Src: "a", Dst: "b"}
	item := BroadcastItem{Event: &ev, Phase: 3, Origin: "ctl-1"}
	got, err := DecodeBroadcastItem(item.Encode())
	if err != nil {
		t.Fatalf("DecodeBroadcastItem: %v", err)
	}
	if got.Phase != 3 || got.Event == nil || got.Event.Src != "a" || got.Membership != nil {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	mc := BroadcastItem{Membership: &MembershipChange{Op: MemberAdd, Controller: "ctl-5", Phase: 4}}
	got, err = DecodeBroadcastItem(mc.Encode())
	if err != nil {
		t.Fatalf("DecodeBroadcastItem: %v", err)
	}
	if got.Membership == nil || got.Membership.Op != MemberAdd || got.Membership.Controller != "ctl-5" {
		t.Fatalf("membership round trip mismatch: %+v", got)
	}
}

func TestConfigBytesBinding(t *testing.T) {
	base := ConfigBytes(1, 2, []pki.Identity{"a", "b"}, "agg")
	if string(base) != string(ConfigBytes(1, 2, []pki.Identity{"a", "b"}, "agg")) {
		t.Fatal("ConfigBytes not deterministic")
	}
	variants := [][]byte{
		ConfigBytes(2, 2, []pki.Identity{"a", "b"}, "agg"),   // phase
		ConfigBytes(1, 3, []pki.Identity{"a", "b"}, "agg"),   // quorum
		ConfigBytes(1, 2, []pki.Identity{"a"}, "agg"),        // members
		ConfigBytes(1, 2, []pki.Identity{"a", "b"}, "other"), // aggregator
	}
	for i, v := range variants {
		if string(v) == string(base) {
			t.Errorf("variant %d not bound into signed config bytes", i)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	for _, k := range []EventKind{EventFlowRequest, EventFlowTeardown, EventLinkDown, EventPolicyChange, EventMembershipInfo} {
		if strings.Contains(k.String(), "kind(") {
			t.Errorf("kind %d lacks a name", int(k))
		}
	}
	if !strings.Contains(EventKind(99).String(), "99") {
		t.Error("unknown kind should render its number")
	}
}

func TestMembershipOpString(t *testing.T) {
	if MemberAdd.String() != "add" || MemberRemove.String() != "remove" {
		t.Fatal("bad op names")
	}
}

func TestCalibratedCostModelSane(t *testing.T) {
	c := Calibrated()
	if c.BLSVerifyAggregate < c.Ed25519Verify {
		t.Error("pairing verification should dominate Ed25519")
	}
	if c.SwitchApply <= 0 || c.RouteCompute <= 0 || c.BFTCompute <= 0 {
		t.Error("calibrated costs must be positive")
	}
	z := Zero()
	if z.SwitchApply != 0 || z.BLSSignShare != 0 {
		t.Error("Zero() must charge nothing")
	}
	// The single-flow setup relation of §6.2 depends on these bounds.
	if c.BLSSignShare > time.Millisecond || c.BLSVerifyAggregate > 2*time.Millisecond {
		t.Error("calibration drifted far from the paper's crypto scale")
	}
}
