package protocol

// Wire vocabulary for the TUF-style signed-metadata layer
// (internal/metarepo): role-tagged signed documents, the threshold-share
// and role-signature collection messages controllers exchange while
// assembling an envelope, and the set push/fetch pair switches and node
// processes use to stay current. Every message is plain JSON — the
// crypto rides inside as explicit bytes (canonical document bytes,
// Ed25519 signatures, combined BLS signatures), so registerJSON suffices
// and the documents stay byte-stable for signing.

// Metadata role names. The role set is fixed: root delegates to the
// other three and is threshold-signed under the DKG group key; targets
// carries the policy bundle; snapshot binds the targets version;
// timestamp is the short-lived freshness proof.
const (
	MetaRoleRoot      = "root"
	MetaRoleTargets   = "targets"
	MetaRoleSnapshot  = "snapshot"
	MetaRoleTimestamp = "timestamp"
)

// MetaSigKeyGroup is the KeyID of the combined BLS threshold signature a
// root envelope carries (the group key has no per-member identity).
const MetaSigKeyGroup = "group"

// MetaSig is one signature over a metadata document's signing bytes.
// For the root role it is the combined BLS threshold signature
// (KeyID=MetaSigKeyGroup); for delegated roles it is one role key's
// Ed25519 signature and KeyID names the signing identity.
type MetaSig struct {
	KeyID string `json:"key_id"`
	Sig   []byte `json:"sig"`
}

// MetaEnvelope is a signed metadata document: the role name, the
// document's canonical bytes, and the signatures over
// MetaSigningBytes(Role, Signed). Verifiers parse Signed only after the
// signatures check out against the keys the current root delegates to
// the role.
type MetaEnvelope struct {
	Role   string    `json:"role"`
	Signed []byte    `json:"signed"`
	Sigs   []MetaSig `json:"sigs,omitempty"`
}

// MetaSigningBytes is the byte string actually signed for a metadata
// document. The role tag is bound into the signature so an envelope
// cannot be transplanted across roles (a valid timestamp signature must
// not verify as a snapshot signature even if a key serves both roles).
func MetaSigningBytes(role string, signed []byte) []byte {
	out := make([]byte, 0, len(role)+len(signed)+16)
	out = append(out, "meta|role="...)
	out = append(out, role...)
	out = append(out, '|')
	return append(out, signed...)
}

// MsgMeta pushes one signed metadata envelope to a switch, controller,
// or node process.
type MsgMeta struct {
	Env MetaEnvelope
}

// MsgMetaSet pushes a consistent metadata set. Receivers apply the
// envelopes in trust order (root, timestamp, snapshot, targets); the
// store's binding checks make any spliced or partial set fail closed.
type MsgMetaSet struct {
	Envs []MetaEnvelope
}

// MsgMetaRequest asks a controller for its current verified metadata
// set (bootstrap and catch-up for switches and node processes).
type MsgMetaRequest struct {
	From string
}

// MsgMetaShare is one controller's BLS signature share over a root
// document's signing bytes, sent to the metadata leader for
// combination. The leader verifies each share against the current
// Feldman commitments, so shares from a retired sharing (pre-reshare)
// are rejected even though the group public key never changes.
type MsgMetaShare struct {
	Version    uint64
	Signed     []byte
	ShareIndex uint32
	Share      []byte
}

// MsgMetaSig is one controller's Ed25519 role signature over a
// delegated-role document, sent to the metadata leader for assembly
// into an envelope once the role's threshold is reached. Digest is the
// SHA-256 of Signed so the leader can group signatures without trusting
// the (larger) document bytes of every sender.
type MsgMetaSig struct {
	Role    string
	Version uint64
	Digest  []byte
	Signed  []byte
	KeyID   string
	Sig     []byte
}
