package protocol

// Wire codec for live transports. The discrete-event simulator passes
// messages as Go values, so pointers (BLS points, group keys, nested bft
// messages) travel for free; a live transport cannot do that. WireCodec
// turns every protocol message into a self-describing frame —
// {"t": <registered name>, "b": <body>} — and back, with explicit byte
// encodings for the crypto types (curve points via pairing.PointBytes,
// which rejects off-curve data on parse).
//
// The codec is the single serialization authority: the TCP backend frames
// Encode's output with a length prefix, and the in-process backend can
// optionally round-trip every message through it so codec bugs surface in
// fast tests. Decode never panics on corrupted input (FuzzWireDecode
// asserts this) and rejects unknown frame types, oversized nesting, and
// malformed points.

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"

	"cicero/internal/bft"
	"cicero/internal/fabric"
	"cicero/internal/openflow"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/dkg"
	"cicero/internal/tcrypto/pairing"
	"cicero/internal/tcrypto/pki"
)

// wireFrame is the self-describing envelope of every encoded message.
type wireFrame struct {
	T string          `json:"t"`
	B json.RawMessage `json:"b"`
}

// maxWireDepth bounds frame nesting on decode. Legitimate traffic nests
// exactly once (MsgBFT wraps one bft message); deeper nesting is a
// malformed or adversarial frame.
const maxWireDepth = 3

// wireEntry is one registered message type.
type wireEntry struct {
	name   string
	encode func(c *WireCodec, msg fabric.Message) (json.RawMessage, error)
	decode func(c *WireCodec, raw json.RawMessage, depth int) (fabric.Message, error)
}

// WireCodec encodes and decodes the protocol's message vocabulary.
// Encoding needs pairing parameters to serialize curve points; both sides
// of a connection must use the same parameter set.
type WireCodec struct {
	params *pairing.Params
	byName map[string]*wireEntry
	byType map[reflect.Type]*wireEntry
}

// NewWireCodec builds a codec over the given pairing parameters (nil
// defaults to Fast254, the deployment default).
func NewWireCodec(params *pairing.Params) *WireCodec {
	if params == nil {
		params = pairing.Fast254()
	}
	c := &WireCodec{
		params: params,
		byName: make(map[string]*wireEntry),
		byType: make(map[reflect.Type]*wireEntry),
	}
	registerJSON[MsgEvent](c, "event")
	registerJSON[MsgAck](c, "ack")
	registerJSON[MsgUpdate](c, "update")
	registerJSON[MsgAggUpdate](c, "agg-update")
	registerJSON[MsgBatchUpdate](c, "batch-update")
	registerJSON[MsgConfigShare](c, "config-share")
	registerJSON[MsgHeartbeat](c, "heartbeat")
	registerJSON[MsgRecoverRequest](c, "recover-request")
	registerJSON[MsgRecoverState](c, "recover-state")
	registerJSON[MsgResyncRequest](c, "resync-request")
	registerJSON[MsgReshareSub](c, "reshare-sub")
	// TUF-style metadata vocabulary (see meta.go): envelopes are plain
	// bytes+signatures, so no custom crypto encoding is needed.
	registerJSON[MsgMeta](c, "meta")
	registerJSON[MsgMetaSet](c, "meta-set")
	registerJSON[MsgMetaRequest](c, "meta-request")
	registerJSON[MsgMetaShare](c, "meta-share")
	registerJSON[MsgMetaSig](c, "meta-sig")
	c.register(reflect.TypeOf(MsgConfig{}), "config", encodeConfig, decodeConfig)
	c.register(reflect.TypeOf(MsgStateTransfer{}), "state-transfer", encodeStateTransfer, decodeStateTransfer)
	c.register(reflect.TypeOf(MsgReshareDeal{}), "reshare-deal", encodeReshareDeal, decodeReshareDeal)
	c.register(reflect.TypeOf(MsgBFT{}), "bft", encodeBFT, decodeBFT)
	// Atomic-broadcast internals (MsgBFT's Inner).
	registerJSON[bft.Request](c, "bft-request")
	registerJSON[bft.PrePrepare](c, "bft-preprepare")
	registerJSON[bft.Prepare](c, "bft-prepare")
	registerJSON[bft.Commit](c, "bft-commit")
	registerJSON[bft.ViewChange](c, "bft-viewchange")
	registerJSON[bft.NewView](c, "bft-newview")
	// Southbound OpenFlow vocabulary (bundles, barriers, packets, roles).
	registerJSON[openflow.BundleOpen](c, "bundle-open")
	registerJSON[openflow.BundleAdd](c, "bundle-add")
	registerJSON[openflow.BundleCommit](c, "bundle-commit")
	registerJSON[openflow.BarrierRequest](c, "barrier-request")
	registerJSON[openflow.BarrierReply](c, "barrier-reply")
	registerJSON[openflow.PacketIn](c, "packet-in")
	registerJSON[openflow.PacketOut](c, "packet-out")
	registerJSON[openflow.RoleRequest](c, "role-request")
	// Multi-process deployment vocabulary (bundles, hello/snapshot,
	// workload control) — see distrib.go.
	registerDistrib(c)
	return c
}

// register wires one entry into both lookup tables.
func (c *WireCodec) register(t reflect.Type, name string,
	enc func(*WireCodec, fabric.Message) (json.RawMessage, error),
	dec func(*WireCodec, json.RawMessage, int) (fabric.Message, error)) {
	e := &wireEntry{name: name, encode: enc, decode: dec}
	c.byName[name] = e
	c.byType[t] = e
}

// registerJSON registers a type whose exported fields JSON-serialize
// faithfully (no curve points, no interface fields).
func registerJSON[T any](c *WireCodec, name string) {
	var zero T
	c.register(reflect.TypeOf(zero), name,
		func(_ *WireCodec, msg fabric.Message) (json.RawMessage, error) {
			return json.Marshal(msg)
		},
		func(_ *WireCodec, raw json.RawMessage, _ int) (fabric.Message, error) {
			var out T
			if err := json.Unmarshal(raw, &out); err != nil {
				return nil, err
			}
			return out, nil
		})
}

// RegisteredTypes returns the sorted frame-type names the codec accepts
// (tests assert full coverage against this list).
func (c *WireCodec) RegisteredTypes() []string {
	names := make([]string, 0, len(c.byName))
	for name := range c.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Encode serializes msg into a self-describing frame.
func (c *WireCodec) Encode(msg fabric.Message) ([]byte, error) {
	e, ok := c.byType[reflect.TypeOf(msg)]
	if !ok {
		return nil, fmt.Errorf("protocol: wire: unregistered message type %T", msg)
	}
	body, err := e.encode(c, msg)
	if err != nil {
		return nil, fmt.Errorf("protocol: wire: encode %s: %w", e.name, err)
	}
	return json.Marshal(wireFrame{T: e.name, B: body})
}

// Decode parses a frame produced by Encode. It returns an error (never
// panics) on unknown types, malformed JSON, bad points, or over-nested
// frames.
func (c *WireCodec) Decode(data []byte) (fabric.Message, error) {
	return c.decodeFrame(data, 0)
}

// decodeFrame is Decode with nesting accounting.
func (c *WireCodec) decodeFrame(data []byte, depth int) (fabric.Message, error) {
	if depth >= maxWireDepth {
		return nil, fmt.Errorf("protocol: wire: frame nesting exceeds %d", maxWireDepth)
	}
	var f wireFrame
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("protocol: wire: bad frame: %w", err)
	}
	e, ok := c.byName[f.T]
	if !ok {
		return nil, fmt.Errorf("protocol: wire: unknown frame type %q", f.T)
	}
	msg, err := e.decode(c, f.B, depth)
	if err != nil {
		return nil, fmt.Errorf("protocol: wire: decode %s: %w", f.T, err)
	}
	return msg, nil
}

// ---- curve-point helpers ----

// pointBytes encodes a point, with nil mapping to empty bytes.
func (c *WireCodec) pointBytes(pt *pairing.Point) []byte {
	if pt == nil {
		return nil
	}
	return c.params.PointBytes(pt)
}

// parsePoint decodes a point, with empty bytes mapping to nil.
func (c *WireCodec) parsePoint(data []byte) (*pairing.Point, error) {
	if len(data) == 0 {
		return nil, nil
	}
	return c.params.ParsePoint(data)
}

// pointsBytes encodes a point slice.
func (c *WireCodec) pointsBytes(pts []*pairing.Point) [][]byte {
	if pts == nil {
		return nil
	}
	out := make([][]byte, len(pts))
	for i, pt := range pts {
		out[i] = c.pointBytes(pt)
	}
	return out
}

// parsePoints decodes a point slice.
func (c *WireCodec) parsePoints(raw [][]byte) ([]*pairing.Point, error) {
	if raw == nil {
		return nil, nil
	}
	out := make([]*pairing.Point, len(raw))
	for i, b := range raw {
		pt, err := c.parsePoint(b)
		if err != nil {
			return nil, err
		}
		out[i] = pt
	}
	return out, nil
}

// wireGroupKey is the explicit encoding of *bls.GroupKey: threshold
// parameters plus the Feldman commitments (the public key is
// Commitments[0], but it is carried redundantly so a decoded key is usable
// even if a future sharing drops that identity).
type wireGroupKey struct {
	T           int      `json:"t"`
	N           int      `json:"n"`
	PK          []byte   `json:"pk"`
	Commitments [][]byte `json:"commitments"`
}

// groupKeyWire converts a group key to its wire form (nil-safe).
func (c *WireCodec) groupKeyWire(gk *bls.GroupKey) *wireGroupKey {
	if gk == nil {
		return nil
	}
	return &wireGroupKey{
		T:           gk.T,
		N:           gk.N,
		PK:          c.pointBytes(gk.PK.Point),
		Commitments: c.pointsBytes(gk.Commitments),
	}
}

// groupKeyFromWire converts back (nil-safe).
func (c *WireCodec) groupKeyFromWire(w *wireGroupKey) (*bls.GroupKey, error) {
	if w == nil {
		return nil, nil
	}
	pk, err := c.parsePoint(w.PK)
	if err != nil {
		return nil, fmt.Errorf("group key pk: %w", err)
	}
	commitments, err := c.parsePoints(w.Commitments)
	if err != nil {
		return nil, fmt.Errorf("group key commitments: %w", err)
	}
	return &bls.GroupKey{
		T:           w.T,
		N:           w.N,
		PK:          bls.PublicKey{Point: pk},
		Commitments: commitments,
	}, nil
}

// ---- custom message encodings ----

// wireConfig mirrors MsgConfig with the group key in wire form.
type wireConfig struct {
	Phase      uint64         `json:"phase"`
	Quorum     int            `json:"quorum"`
	Members    []pki.Identity `json:"members,omitempty"`
	Aggregator pki.Identity   `json:"aggregator,omitempty"`
	GroupKey   *wireGroupKey  `json:"group_key,omitempty"`
	Signature  []byte         `json:"signature,omitempty"`
}

func encodeConfig(c *WireCodec, msg fabric.Message) (json.RawMessage, error) {
	m := msg.(MsgConfig)
	gk, _ := m.GroupKey.(*bls.GroupKey)
	return json.Marshal(wireConfig{
		Phase:      m.Phase,
		Quorum:     m.Quorum,
		Members:    m.Members,
		Aggregator: m.Aggregator,
		GroupKey:   c.groupKeyWire(gk),
		Signature:  m.Signature,
	})
}

func decodeConfig(c *WireCodec, raw json.RawMessage, _ int) (fabric.Message, error) {
	var w wireConfig
	if err := json.Unmarshal(raw, &w); err != nil {
		return nil, err
	}
	out := MsgConfig{
		Phase:      w.Phase,
		Quorum:     w.Quorum,
		Members:    w.Members,
		Aggregator: w.Aggregator,
		Signature:  w.Signature,
	}
	gk, err := c.groupKeyFromWire(w.GroupKey)
	if err != nil {
		return nil, err
	}
	if gk != nil {
		out.GroupKey = gk
	}
	return out, nil
}

// wireStateTransfer mirrors MsgStateTransfer with the group key in wire
// form.
type wireStateTransfer struct {
	Phase       uint64                 `json:"phase"`
	NewPhase    uint64                 `json:"new_phase"`
	Members     []pki.Identity         `json:"members,omitempty"`
	NewMembers  []pki.Identity         `json:"new_members,omitempty"`
	GroupKey    *wireGroupKey          `json:"group_key,omitempty"`
	PeerDomains map[int][]pki.Identity `json:"peer_domains,omitempty"`
}

func encodeStateTransfer(c *WireCodec, msg fabric.Message) (json.RawMessage, error) {
	m := msg.(MsgStateTransfer)
	gk, _ := m.GroupKey.(*bls.GroupKey)
	return json.Marshal(wireStateTransfer{
		Phase:       m.Phase,
		NewPhase:    m.NewPhase,
		Members:     m.Members,
		NewMembers:  m.NewMembers,
		GroupKey:    c.groupKeyWire(gk),
		PeerDomains: m.PeerDomains,
	})
}

func decodeStateTransfer(c *WireCodec, raw json.RawMessage, _ int) (fabric.Message, error) {
	var w wireStateTransfer
	if err := json.Unmarshal(raw, &w); err != nil {
		return nil, err
	}
	out := MsgStateTransfer{
		Phase:       w.Phase,
		NewPhase:    w.NewPhase,
		Members:     w.Members,
		NewMembers:  w.NewMembers,
		PeerDomains: w.PeerDomains,
	}
	gk, err := c.groupKeyFromWire(w.GroupKey)
	if err != nil {
		return nil, err
	}
	if gk != nil {
		out.GroupKey = gk
	}
	return out, nil
}

// wireReshareDeal mirrors MsgReshareDeal with commitments as bytes.
type wireReshareDeal struct {
	Phase       uint64   `json:"phase"`
	Dealer      uint32   `json:"dealer"`
	DealerSet   []uint32 `json:"dealer_set,omitempty"`
	Commitments [][]byte `json:"commitments,omitempty"`
}

func encodeReshareDeal(c *WireCodec, msg fabric.Message) (json.RawMessage, error) {
	m := msg.(MsgReshareDeal)
	w := wireReshareDeal{Phase: m.Phase}
	if m.Deal != nil {
		w.Dealer = m.Deal.Dealer
		w.DealerSet = m.Deal.DealerSet
		w.Commitments = c.pointsBytes(m.Deal.Commitments)
	}
	return json.Marshal(w)
}

func decodeReshareDeal(c *WireCodec, raw json.RawMessage, _ int) (fabric.Message, error) {
	var w wireReshareDeal
	if err := json.Unmarshal(raw, &w); err != nil {
		return nil, err
	}
	commitments, err := c.parsePoints(w.Commitments)
	if err != nil {
		return nil, fmt.Errorf("reshare deal commitments: %w", err)
	}
	return MsgReshareDeal{
		Phase: w.Phase,
		Deal: &dkg.ReshareDeal{
			Dealer:      w.Dealer,
			DealerSet:   w.DealerSet,
			Commitments: commitments,
		},
	}, nil
}

// wireBFT carries the epoch tag and the inner message as a nested frame.
type wireBFT struct {
	Phase uint64          `json:"phase"`
	Inner json.RawMessage `json:"inner"`
}

func encodeBFT(c *WireCodec, msg fabric.Message) (json.RawMessage, error) {
	m := msg.(MsgBFT)
	inner, err := c.Encode(m.Inner)
	if err != nil {
		return nil, fmt.Errorf("inner: %w", err)
	}
	return json.Marshal(wireBFT{Phase: m.Phase, Inner: inner})
}

func decodeBFT(c *WireCodec, raw json.RawMessage, depth int) (fabric.Message, error) {
	var w wireBFT
	if err := json.Unmarshal(raw, &w); err != nil {
		return nil, err
	}
	inner, err := c.decodeFrame(w.Inner, depth+1)
	if err != nil {
		return nil, fmt.Errorf("inner: %w", err)
	}
	return MsgBFT{Phase: w.Phase, Inner: inner}, nil
}
