package protocol

// Wire vocabulary for the multi-process deployment (internal/distrib):
// the signed provisioning bundle a cicero-node process boots from, the
// hello/snapshot handshake between node processes and the supervising
// driver, and the driver's workload-control messages. The bundle carries
// threshold-key material (group key, BLS share), so it gets a custom
// encoding like MsgConfig; everything else is plain JSON.

import (
	"encoding/json"
	"fmt"
	"math/big"
	"reflect"

	"cicero/internal/fabric"
	"cicero/internal/openflow"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/pki"
)

// WireGraphNode is one topology node in a bundle's explicit graph.
type WireGraphNode struct {
	ID   string `json:"id"`
	Kind int    `json:"kind"`
	DC   int    `json:"dc"`
	Pod  int    `json:"pod"`
	Rack int    `json:"rack"`
}

// WireGraphLink is one undirected topology link in a bundle's graph.
type WireGraphLink struct {
	A         string  `json:"a"`
	B         string  `json:"b"`
	LatencyNS int64   `json:"latency_ns"`
	Gbps      float64 `json:"gbps"`
}

// Node roles a bundle can provision.
const (
	RoleController = "controller"
	RoleSwitch     = "switch"
)

// NodeBundle is the complete provisioning for one node of a distributed
// deployment: identity key seed, the PKI directory, threshold material,
// membership, and the data-plane topology. The deployment planner signs
// the encoded bundle with the deployment key; cicero-node refuses to
// boot from a bundle whose signature does not verify against its trust
// anchor.
type NodeBundle struct {
	// Role is RoleController or RoleSwitch.
	Role string
	// ID is the node's fabric/PKI identity.
	ID string
	// Domain and Slot locate a controller (slot indexes Members).
	Domain int
	Slot   int
	// Driver is the supervising driver's node id (hello/snapshot target).
	Driver string
	// Members lists the domain's controllers; Switches its data plane.
	Members  []pki.Identity
	Switches []string
	// PeerDomains maps every domain to its controllers.
	PeerDomains map[int][]pki.Identity
	// Quorum is the threshold t; Aggregator the designated aggregator
	// ("" in switch-aggregation mode).
	Quorum     int
	Aggregator pki.Identity
	// KeySeed is the node's Ed25519 private-key seed.
	KeySeed []byte
	// Directory maps every identity to its Ed25519 public key.
	Directory map[pki.Identity][]byte
	// GroupKey and Share are the domain's threshold material (Share only
	// for controllers).
	GroupKey *bls.GroupKey
	Share    bls.KeyShare
	// Bootstrap marks the domain's initial broadcast leader.
	Bootstrap bool
	// BatchSize and BatchDelayNS configure batched ordering; timeouts in
	// nanoseconds so the bundle stays a plain byte-stable encoding.
	BatchSize           int
	BatchDelayNS        int64
	ViewChangeTimeoutNS int64
	// GraphNodes and GraphLinks serialize the data-plane topology.
	GraphNodes []WireGraphNode
	GraphLinks []WireGraphLink
	// MetaGenesis, when its Role is set, is the domain's threshold-signed
	// root of trust: the ONLY metadata the bundle carries. Everything
	// below the root (targets, snapshot, timestamp) arrives through the
	// verified distribution path and is checked against it, so a
	// compromised provisioning channel cannot pre-seed a store with
	// documents the root never delegated.
	MetaGenesis MetaEnvelope
}

// MsgNodeHello announces a booted (or rebooted) node process to the
// driver: the address its fresh listener bound, its boot epoch, and its
// OS process id.
type MsgNodeHello struct {
	ID        string
	Addr      string
	BootEpoch uint32
	PID       int
}

// MsgNodeQuery asks a node process for a state snapshot; the nonce pairs
// the reply with the request.
type MsgNodeQuery struct {
	Nonce uint64
}

// SnapshotRecord is one audit-ledger record in digest form: enough for
// cross-process prefix comparison and the no-forged-rule check without
// shipping canonical payloads.
type SnapshotRecord struct {
	Seq     uint64
	Kind    string
	Subject string
	// Digest is SHA-256 of the record's canonical bytes.
	Digest []byte
}

// SnapshotApply is one switch apply decision (valid or rejected) with
// the digest of the canonical update bytes it committed to.
type SnapshotApply struct {
	Origin string
	Seq    uint64
	Phase  uint64
	Digest []byte
	Valid  bool
}

// MsgNodeSnapshot is a node process's state snapshot, sent to the driver
// in reply to MsgNodeQuery. Controllers fill the ledger/broadcast
// fields; switches the table/apply fields.
type MsgNodeSnapshot struct {
	Nonce uint64
	ID    string
	Role  string

	// Controller state.
	View          uint64
	LastDelivered uint64
	Records       []SnapshotRecord
	// ChainDigest is the audit hash chain's final hash — the
	// order-sensitive commitment; two processes share it only when their
	// ledgers are byte- and order-identical.
	ChainDigest []byte
	// ContentDigest is the order-insensitive ledger commitment
	// (audit.ContentDigest): concurrent flows reach the atomic broadcast
	// in timing-dependent interleavings of event and update records, so
	// cross-process agreement at convergence is "same decisions, any
	// order" — this digest must be identical on every honest controller.
	ContentDigest []byte
	Recovering    bool
	Recovered     bool

	// Switch state.
	Rules           []openflow.Rule
	Applies         []SnapshotApply
	UpdatesApplied  uint64
	UpdatesRejected uint64
}

// MsgInjectFlow asks an ingress switch process to simulate a packet
// arrival for (Src, Dst); the process replies with MsgFlowDone once the
// resulting rule is installed.
type MsgInjectFlow struct {
	FlowID uint64
	Src    string
	Dst    string
}

// MsgFlowDone reports a flow's rule installed at the ingress switch.
type MsgFlowDone struct {
	FlowID uint64
	Switch string
}

// Nudge operations (MsgNudge.Op).
const (
	// NudgeResendEvents makes a switch retransmit its unconfirmed events.
	NudgeResendEvents = "resend-events"
	// NudgeRedispatch makes a controller redispatch unacked updates.
	NudgeRedispatch = "redispatch"
	// NudgeResync makes a switch request a full table resync.
	NudgeResync = "resync"
	// NudgeRecover makes a controller start peer state transfer (the
	// crash-recovery path) without having crashed: the rescue for a
	// replica whose broadcast wedged below a delivery gap — a partition
	// window can swallow the prepares for a sequence its peers then
	// deliver and garbage-collect, and sequential delivery blocks there
	// forever while the quorum moves on.
	NudgeRecover = "recover"
)

// MsgNudge is a driver liveness nudge, mirroring the in-process drain
// helpers the chaos campaigns use.
type MsgNudge struct {
	Op string
}

// registerDistrib wires the distributed-deployment vocabulary into the
// codec (called from NewWireCodec).
func registerDistrib(c *WireCodec) {
	c.register(reflect.TypeOf(NodeBundle{}), "node-bundle", encodeNodeBundle, decodeNodeBundle)
	registerJSON[MsgNodeHello](c, "node-hello")
	registerJSON[MsgNodeQuery](c, "node-query")
	registerJSON[MsgNodeSnapshot](c, "node-snapshot")
	registerJSON[MsgInjectFlow](c, "inject-flow")
	registerJSON[MsgFlowDone](c, "flow-done")
	registerJSON[MsgNudge](c, "node-nudge")
}

// wireNodeBundle mirrors NodeBundle with the crypto fields in explicit
// byte form.
type wireNodeBundle struct {
	Role                string                  `json:"role"`
	ID                  string                  `json:"id"`
	Domain              int                     `json:"domain"`
	Slot                int                     `json:"slot"`
	Driver              string                  `json:"driver,omitempty"`
	Members             []pki.Identity          `json:"members,omitempty"`
	Switches            []string                `json:"switches,omitempty"`
	PeerDomains         map[int][]pki.Identity  `json:"peer_domains,omitempty"`
	Quorum              int                     `json:"quorum"`
	Aggregator          pki.Identity            `json:"aggregator,omitempty"`
	KeySeed             []byte                  `json:"key_seed"`
	Directory           map[pki.Identity][]byte `json:"directory,omitempty"`
	GroupKey            *wireGroupKey           `json:"group_key,omitempty"`
	ShareIndex          uint32                  `json:"share_index,omitempty"`
	ShareScalar         []byte                  `json:"share_scalar,omitempty"`
	Bootstrap           bool                    `json:"bootstrap,omitempty"`
	BatchSize           int                     `json:"batch_size,omitempty"`
	BatchDelayNS        int64                   `json:"batch_delay_ns,omitempty"`
	ViewChangeTimeoutNS int64                   `json:"view_change_timeout_ns,omitempty"`
	GraphNodes          []WireGraphNode         `json:"graph_nodes,omitempty"`
	GraphLinks          []WireGraphLink         `json:"graph_links,omitempty"`
	MetaGenesis         *MetaEnvelope           `json:"meta_genesis,omitempty"`
}

func encodeNodeBundle(c *WireCodec, msg fabric.Message) (json.RawMessage, error) {
	m := msg.(NodeBundle)
	w := wireNodeBundle{
		Role:                m.Role,
		ID:                  m.ID,
		Domain:              m.Domain,
		Slot:                m.Slot,
		Driver:              m.Driver,
		Members:             m.Members,
		Switches:            m.Switches,
		PeerDomains:         m.PeerDomains,
		Quorum:              m.Quorum,
		Aggregator:          m.Aggregator,
		KeySeed:             m.KeySeed,
		Directory:           m.Directory,
		GroupKey:            c.groupKeyWire(m.GroupKey),
		ShareIndex:          m.Share.Index,
		Bootstrap:           m.Bootstrap,
		BatchSize:           m.BatchSize,
		BatchDelayNS:        m.BatchDelayNS,
		ViewChangeTimeoutNS: m.ViewChangeTimeoutNS,
		GraphNodes:          m.GraphNodes,
		GraphLinks:          m.GraphLinks,
	}
	if m.Share.Scalar != nil {
		w.ShareScalar = m.Share.Scalar.Bytes()
	}
	if m.MetaGenesis.Role != "" {
		g := m.MetaGenesis
		w.MetaGenesis = &g
	}
	return json.Marshal(w)
}

func decodeNodeBundle(c *WireCodec, raw json.RawMessage, _ int) (fabric.Message, error) {
	var w wireNodeBundle
	if err := json.Unmarshal(raw, &w); err != nil {
		return nil, err
	}
	gk, err := c.groupKeyFromWire(w.GroupKey)
	if err != nil {
		return nil, fmt.Errorf("node bundle group key: %w", err)
	}
	out := NodeBundle{
		Role:                w.Role,
		ID:                  w.ID,
		Domain:              w.Domain,
		Slot:                w.Slot,
		Driver:              w.Driver,
		Members:             w.Members,
		Switches:            w.Switches,
		PeerDomains:         w.PeerDomains,
		Quorum:              w.Quorum,
		Aggregator:          w.Aggregator,
		KeySeed:             w.KeySeed,
		Directory:           w.Directory,
		GroupKey:            gk,
		Bootstrap:           w.Bootstrap,
		BatchSize:           w.BatchSize,
		BatchDelayNS:        w.BatchDelayNS,
		ViewChangeTimeoutNS: w.ViewChangeTimeoutNS,
		GraphNodes:          w.GraphNodes,
		GraphLinks:          w.GraphLinks,
	}
	if w.ShareScalar != nil {
		out.Share = bls.KeyShare{Index: w.ShareIndex, Scalar: new(big.Int).SetBytes(w.ShareScalar)}
	}
	if w.MetaGenesis != nil {
		out.MetaGenesis = *w.MetaGenesis
	}
	return out, nil
}
