// Package metarepo is Cicero's TUF-style signed-metadata layer for
// policy, configuration, and membership distribution.
//
// Cicero threshold-signs individual flow rules, but everything around
// them — membership sets, quorum sizes, batching parameters, flow and
// waypoint policy — has historically been trusted implicitly: a single
// compromised controller (or the provisioning path) could feed switches
// stale or fabricated configuration without tripping any invariant. The
// Update Framework shows how role-separated, versioned, expiring signed
// metadata defeats exactly those attacks, and this package adapts its
// four-role design to Cicero's threshold-crypto substrate:
//
//   - root: the trust anchor. Threshold-signed under the DKG group key
//     (the one key switches already hold), it delegates each online role
//     to a set of Ed25519 keys with a per-role threshold, and rotating
//     it retires old role keys. Signing a new root requires a quorum of
//     controllers' BLS shares; after a proactive reshare the old shares
//     no longer verify against the fresh Feldman commitments, so a
//     retired sharing cannot mint roots even though the group public key
//     never changes.
//   - targets: the policy bundle — membership, quorum, aggregator,
//     batching and view-change parameters, flow and waypoint policies.
//   - snapshot: a version vector binding the exact targets version and
//     digest, so an attacker cannot mix an old targets with a new
//     snapshot (mix-and-match).
//   - timestamp: a short-lived freshness proof binding the snapshot.
//     Its brief expiry bounds how long a freeze attack (replaying a
//     stale-but-valid set) can go unnoticed.
//
// Documents are canonically encoded (encoding/json with fixed field
// order and sorted maps — Marshal output is byte-stable), and the byte
// string actually signed is protocol.MetaSigningBytes(role, doc), which
// binds the role name so signatures cannot be transplanted across roles.
// The Store in store.go enforces monotonic versions, expiry, delegation
// membership, and digest bindings before anything is adopted.
package metarepo

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"

	"cicero/internal/protocol"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/pki"
)

// RoleKey is one Ed25519 key authorized for a delegated role. The key
// bytes travel in the root document itself (TUF-style), so role trust
// derives only from the threshold-signed root, never from the PKI
// directory a provisioner could tamper with.
type RoleKey struct {
	KeyID string `json:"key_id"`
	Pub   []byte `json:"pub"`
}

// Delegation is one role's authorized key set and signature threshold.
type Delegation struct {
	Threshold int       `json:"threshold"`
	Keys      []RoleKey `json:"keys"`
}

// Key returns the delegation's key bytes for an id, or nil.
func (d Delegation) Key(id string) []byte {
	for _, k := range d.Keys {
		if k.KeyID == id {
			return k.Pub
		}
	}
	return nil
}

// Root is the trust-anchor document. Roles maps each delegated role
// name (targets, snapshot, timestamp) to its delegation.
type Root struct {
	Version   uint64                `json:"version"`
	IssuedNS  int64                 `json:"issued_ns"`
	ExpiresNS int64                 `json:"expires_ns"`
	Roles     map[string]Delegation `json:"roles"`
}

// FlowPolicy is one allow/deny policy entry over a flow pair.
type FlowPolicy struct {
	Src   string `json:"src"`
	Dst   string `json:"dst"`
	Allow bool   `json:"allow"`
}

// WaypointPolicy requires flows from Src to Dst to traverse Chain in
// order (mirrors netprop's waypoint property).
type WaypointPolicy struct {
	Src   string   `json:"src"`
	Dst   string   `json:"dst"`
	Chain []string `json:"chain"`
}

// Policy is the targets payload: everything a switch or node process
// previously accepted on faith from its provisioning bundle or an
// unauthenticated push.
type Policy struct {
	// Phase is the control-plane membership phase this bundle describes.
	Phase uint64 `json:"phase"`
	// Members, Quorum, Aggregator mirror MsgConfig's payload.
	Members    []string `json:"members,omitempty"`
	Quorum     int      `json:"quorum,omitempty"`
	Aggregator string   `json:"aggregator,omitempty"`
	// Batching and view-change parameters (nanoseconds, byte-stable).
	BatchSize           int   `json:"batch_size,omitempty"`
	BatchDelayNS        int64 `json:"batch_delay_ns,omitempty"`
	ViewChangeTimeoutNS int64 `json:"view_change_timeout_ns,omitempty"`
	// Flow-level policy.
	Flows     []FlowPolicy     `json:"flows,omitempty"`
	Waypoints []WaypointPolicy `json:"waypoints,omitempty"`
}

// Targets is the policy-bundle document.
type Targets struct {
	Version   uint64 `json:"version"`
	IssuedNS  int64  `json:"issued_ns"`
	ExpiresNS int64  `json:"expires_ns"`
	Policy    Policy `json:"policy"`
}

// Snapshot binds the exact targets version and digest.
type Snapshot struct {
	Version        uint64 `json:"version"`
	IssuedNS       int64  `json:"issued_ns"`
	ExpiresNS      int64  `json:"expires_ns"`
	TargetsVersion uint64 `json:"targets_version"`
	TargetsDigest  []byte `json:"targets_digest"`
}

// Timestamp is the short-lived freshness proof binding the snapshot.
type Timestamp struct {
	Version         uint64 `json:"version"`
	IssuedNS        int64  `json:"issued_ns"`
	ExpiresNS       int64  `json:"expires_ns"`
	SnapshotVersion uint64 `json:"snapshot_version"`
	SnapshotDigest  []byte `json:"snapshot_digest"`
}

// Encode canonically encodes a document. encoding/json emits struct
// fields in declaration order and map keys sorted, so the output is
// byte-stable across processes — every controller derives the identical
// signing bytes from the identical logical document.
func Encode(doc any) []byte {
	b, err := json.Marshal(doc)
	if err != nil {
		// Documents contain only marshalable fields; unreachable.
		panic(fmt.Sprintf("metarepo: encode: %v", err))
	}
	return b
}

// Digest is the document digest used by snapshot/timestamp bindings and
// by the leader's signature grouping: SHA-256 over the canonical bytes.
func Digest(signed []byte) []byte {
	d := sha256.Sum256(signed)
	return d[:]
}

// ---- signing helpers ----

// SignRole produces one role key's signature over a document.
func SignRole(kp *pki.KeyPair, role string, signed []byte) protocol.MetaSig {
	return protocol.MetaSig{
		KeyID: string(kp.ID),
		Sig:   kp.Sign(protocol.MetaSigningBytes(role, signed)),
	}
}

// VerifyRoleSig checks one role signature against a delegation key.
func VerifyRoleSig(pub []byte, role string, signed []byte, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(pub), protocol.MetaSigningBytes(role, signed), sig)
}

// SignRootShare produces one controller's BLS signature share over a
// root document (sent to the metadata leader as MsgMetaShare).
func SignRootShare(scheme *bls.Scheme, share bls.KeyShare, signed []byte) bls.SignatureShare {
	return scheme.SignShare(share, protocol.MetaSigningBytes(protocol.MetaRoleRoot, signed))
}

// SignRootDirect threshold-signs a root document when a quorum of
// shares is available in one place — the genesis path (core.Build, the
// distrib planner, cicero-keygen) where the DKG dealer already holds
// every share. It returns the complete envelope.
func SignRootDirect(scheme *bls.Scheme, gk *bls.GroupKey, shares []bls.KeyShare, root Root) (protocol.MetaEnvelope, error) {
	signed := Encode(root)
	msg := protocol.MetaSigningBytes(protocol.MetaRoleRoot, signed)
	if len(shares) < gk.T {
		return protocol.MetaEnvelope{}, fmt.Errorf("metarepo: root signing needs %d shares, have %d", gk.T, len(shares))
	}
	sigShares := make([]bls.SignatureShare, gk.T)
	for i := 0; i < gk.T; i++ {
		sigShares[i] = scheme.SignShare(shares[i], msg)
	}
	sig, err := scheme.Combine(gk, sigShares)
	if err != nil {
		return protocol.MetaEnvelope{}, fmt.Errorf("metarepo: combine root signature: %w", err)
	}
	return protocol.MetaEnvelope{
		Role:   protocol.MetaRoleRoot,
		Signed: signed,
		Sigs:   []protocol.MetaSig{{KeyID: protocol.MetaSigKeyGroup, Sig: sig.Bytes(scheme)}},
	}, nil
}

// GenesisRoot builds the version-1 root document delegating each online
// role to the given controllers' Ed25519 keys. The timestamp role gets
// threshold 1 (it is the high-frequency online role: any single current
// controller may refresh freshness, which keeps leader failover cheap);
// targets and snapshot require the control-plane quorum t.
func GenesisRoot(quorum int, controllers []*pki.KeyPair, issuedNS, ttlNS int64) Root {
	keys := make([]RoleKey, len(controllers))
	for i, kp := range controllers {
		keys[i] = RoleKey{KeyID: string(kp.ID), Pub: append([]byte(nil), kp.Public...)}
	}
	return RootAt(1, quorum, keys, issuedNS, ttlNS)
}

// RootAt builds a root document at an explicit version over an explicit
// role-key set (rotation reuses it with version+1 and a reduced or
// replaced key list).
func RootAt(version uint64, quorum int, keys []RoleKey, issuedNS, ttlNS int64) Root {
	if quorum < 1 {
		quorum = 1
	}
	if quorum > len(keys) {
		quorum = len(keys)
	}
	return Root{
		Version:   version,
		IssuedNS:  issuedNS,
		ExpiresNS: issuedNS + ttlNS,
		Roles: map[string]Delegation{
			protocol.MetaRoleTargets:   {Threshold: quorum, Keys: keys},
			protocol.MetaRoleSnapshot:  {Threshold: quorum, Keys: keys},
			protocol.MetaRoleTimestamp: {Threshold: 1, Keys: keys},
		},
	}
}

// BuildSet derives the consistent (targets, snapshot, timestamp)
// document triple for a policy at the given versions. Every controller
// that runs this with identical inputs derives byte-identical documents,
// which is what lets a quorum sign without further coordination.
func BuildSet(policy Policy, version uint64, issuedNS, ttlNS, timestampTTLNS int64) (Targets, Snapshot, Timestamp) {
	tg := Targets{Version: version, IssuedNS: issuedNS, ExpiresNS: issuedNS + ttlNS, Policy: policy}
	tgBytes := Encode(tg)
	sn := Snapshot{
		Version: version, IssuedNS: issuedNS, ExpiresNS: issuedNS + ttlNS,
		TargetsVersion: tg.Version, TargetsDigest: Digest(tgBytes),
	}
	snBytes := Encode(sn)
	ts := Timestamp{
		Version: version, IssuedNS: issuedNS, ExpiresNS: issuedNS + timestampTTLNS,
		SnapshotVersion: sn.Version, SnapshotDigest: Digest(snBytes),
	}
	return tg, sn, ts
}

// RefreshTimestamp derives the next freshness proof over an existing
// snapshot: same binding, next version, fresh expiry.
func RefreshTimestamp(prev Timestamp, issuedNS, timestampTTLNS int64) Timestamp {
	return Timestamp{
		Version:         prev.Version + 1,
		IssuedNS:        issuedNS,
		ExpiresNS:       issuedNS + timestampTTLNS,
		SnapshotVersion: prev.SnapshotVersion,
		SnapshotDigest:  prev.SnapshotDigest,
	}
}

// SignSet signs a document triple with every given controller key and
// assembles the three envelopes (genesis/planner path; the runtime path
// assembles envelopes from MsgMetaSig traffic instead).
func SignSet(tg Targets, sn Snapshot, ts Timestamp, signers []*pki.KeyPair) []protocol.MetaEnvelope {
	sign := func(role string, doc any) protocol.MetaEnvelope {
		signed := Encode(doc)
		env := protocol.MetaEnvelope{Role: role, Signed: signed}
		for _, kp := range signers {
			env.Sigs = append(env.Sigs, SignRole(kp, role, signed))
		}
		return env
	}
	return []protocol.MetaEnvelope{
		sign(protocol.MetaRoleTargets, tg),
		sign(protocol.MetaRoleSnapshot, sn),
		sign(protocol.MetaRoleTimestamp, ts),
	}
}

// SortSet orders envelopes in trust order — root, timestamp, snapshot,
// targets — the order Store.ApplySet verifies them in.
func SortSet(envs []protocol.MetaEnvelope) []protocol.MetaEnvelope {
	rank := map[string]int{
		protocol.MetaRoleRoot:      0,
		protocol.MetaRoleTimestamp: 1,
		protocol.MetaRoleSnapshot:  2,
		protocol.MetaRoleTargets:   3,
	}
	out := append([]protocol.MetaEnvelope(nil), envs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && rank[out[j].Role] < rank[out[j-1].Role]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// WriteGenesis serializes a genesis file: the root envelope plus the
// group public key material needed to verify it from nothing
// (cicero-keygen emits this; deployments check it into their trust
// store).
type GenesisFile struct {
	// GroupKey is the wire form of the DKG group key: threshold, size,
	// public key point, Feldman commitments (all public material).
	GroupKeyT           int      `json:"group_key_t"`
	GroupKeyN           int      `json:"group_key_n"`
	GroupKeyPK          []byte   `json:"group_key_pk"`
	GroupKeyCommitments [][]byte `json:"group_key_commitments"`
	Root                protocol.MetaEnvelope
}

// EncodeGenesis writes a genesis file for a root envelope.
func EncodeGenesis(w io.Writer, scheme *bls.Scheme, gk *bls.GroupKey, rootEnv protocol.MetaEnvelope) error {
	g := GenesisFile{
		GroupKeyT:  gk.T,
		GroupKeyN:  gk.N,
		GroupKeyPK: scheme.Params.PointBytes(gk.PK.Point),
		Root:       rootEnv,
	}
	for _, c := range gk.Commitments {
		g.GroupKeyCommitments = append(g.GroupKeyCommitments, scheme.Params.PointBytes(c))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// DecodeGenesis parses a genesis file and reconstructs the group key.
func DecodeGenesis(r io.Reader, scheme *bls.Scheme) (*bls.GroupKey, protocol.MetaEnvelope, error) {
	var g GenesisFile
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, protocol.MetaEnvelope{}, fmt.Errorf("metarepo: genesis: %w", err)
	}
	pk, err := scheme.Params.ParsePoint(g.GroupKeyPK)
	if err != nil {
		return nil, protocol.MetaEnvelope{}, fmt.Errorf("metarepo: genesis group key: %w", err)
	}
	gk := &bls.GroupKey{T: g.GroupKeyT, N: g.GroupKeyN, PK: bls.PublicKey{Point: pk}}
	for _, c := range g.GroupKeyCommitments {
		pt, err := scheme.Params.ParsePoint(c)
		if err != nil {
			return nil, protocol.MetaEnvelope{}, fmt.Errorf("metarepo: genesis commitment: %w", err)
		}
		gk.Commitments = append(gk.Commitments, pt)
	}
	return gk, g.Root, nil
}
