package metarepo

import (
	"bytes"
	"fmt"

	"cicero/internal/protocol"
	"cicero/internal/tcrypto/bls"
)

// Leader-side envelope assembly. Controllers derive role documents
// deterministically and send the metadata leader their signatures
// (MsgMetaSig) or BLS shares (MsgMetaShare, root only); the collectors
// below verify each contribution as it arrives and produce the finished
// envelope once the threshold is met. Verification at collection time is
// what makes the retired-share defense real: a share from a pre-reshare
// sharing fails VerifyShare against the fresh Feldman commitments even
// though the group public key is unchanged.

// ShareCollector assembles the threshold BLS signature for one root
// document.
type ShareCollector struct {
	scheme  *bls.Scheme
	gk      *bls.GroupKey
	version uint64
	signed  []byte
	msg     []byte
	shares  map[uint32]bls.SignatureShare
	done    bool
	// StaleRejected counts shares that failed verification against the
	// current commitments — garbage, or signatures minted with retired
	// (pre-reshare) shares.
	StaleRejected int
}

// NewShareCollector starts collecting for a root document. gk must be
// the current group key (post-reshare commitments).
func NewShareCollector(scheme *bls.Scheme, gk *bls.GroupKey, version uint64, signed []byte) *ShareCollector {
	return &ShareCollector{
		scheme:  scheme,
		gk:      gk,
		version: version,
		signed:  append([]byte(nil), signed...),
		msg:     protocol.MetaSigningBytes(protocol.MetaRoleRoot, signed),
		shares:  make(map[uint32]bls.SignatureShare),
	}
}

// Add verifies one share. When the quorum completes it returns the
// finished root envelope (done=true exactly once).
func (c *ShareCollector) Add(m protocol.MsgMetaShare) (env protocol.MetaEnvelope, done bool, err error) {
	if c.done {
		return protocol.MetaEnvelope{}, false, nil
	}
	if m.Version != c.version || !bytes.Equal(m.Signed, c.signed) {
		return protocol.MetaEnvelope{}, false, fmt.Errorf("metarepo: share for different root document")
	}
	share := bls.SignatureShare{Index: m.ShareIndex}
	pt, perr := c.scheme.Params.ParsePoint(m.Share)
	if perr != nil {
		c.StaleRejected++
		return protocol.MetaEnvelope{}, false, fmt.Errorf("metarepo: root share parse: %w", perr)
	}
	share.Point = pt
	if !c.scheme.VerifyShare(c.gk, c.msg, share) {
		c.StaleRejected++
		return protocol.MetaEnvelope{}, false, fmt.Errorf("metarepo: root share %d invalid under current commitments", m.ShareIndex)
	}
	c.shares[m.ShareIndex] = share
	if len(c.shares) < c.gk.T {
		return protocol.MetaEnvelope{}, false, nil
	}
	quorum := make([]bls.SignatureShare, 0, c.gk.T)
	for _, sh := range c.shares {
		quorum = append(quorum, sh)
		if len(quorum) == c.gk.T {
			break
		}
	}
	sig, cerr := c.scheme.Combine(c.gk, quorum)
	if cerr != nil {
		return protocol.MetaEnvelope{}, false, fmt.Errorf("metarepo: combine root shares: %w", cerr)
	}
	c.done = true
	return protocol.MetaEnvelope{
		Role:   protocol.MetaRoleRoot,
		Signed: append([]byte(nil), c.signed...),
		Sigs:   []protocol.MetaSig{{KeyID: protocol.MetaSigKeyGroup, Sig: sig.Bytes(c.scheme)}},
	}, true, nil
}

// SigCollector assembles one delegated-role envelope from individual
// role signatures.
type SigCollector struct {
	role       string
	version    uint64
	signed     []byte
	digest     []byte
	delegation Delegation
	sigs       map[string]protocol.MetaSig
	done       bool
	// Rejected counts contributions that failed verification (wrong
	// document, undelegated key, bad signature).
	Rejected int
}

// NewSigCollector starts collecting for a delegated document under the
// given delegation (taken from the leader's current verified root).
func NewSigCollector(role string, version uint64, signed []byte, delegation Delegation) *SigCollector {
	return &SigCollector{
		role:       role,
		version:    version,
		signed:     append([]byte(nil), signed...),
		digest:     Digest(signed),
		delegation: delegation,
		sigs:       make(map[string]protocol.MetaSig),
	}
}

// Add verifies one role signature. When the role threshold completes it
// returns the finished envelope (done=true exactly once).
func (c *SigCollector) Add(m protocol.MsgMetaSig) (env protocol.MetaEnvelope, done bool, err error) {
	if c.done {
		return protocol.MetaEnvelope{}, false, nil
	}
	if m.Role != c.role || m.Version != c.version || !bytes.Equal(m.Digest, c.digest) {
		c.Rejected++
		return protocol.MetaEnvelope{}, false, fmt.Errorf("metarepo: signature for different %s document", c.role)
	}
	pub := c.delegation.Key(m.KeyID)
	if pub == nil {
		c.Rejected++
		return protocol.MetaEnvelope{}, false, fmt.Errorf("metarepo: %q not delegated for %s", m.KeyID, c.role)
	}
	if !VerifyRoleSig(pub, c.role, c.signed, m.Sig) {
		c.Rejected++
		return protocol.MetaEnvelope{}, false, fmt.Errorf("metarepo: bad %s signature from %q", c.role, m.KeyID)
	}
	c.sigs[m.KeyID] = protocol.MetaSig{KeyID: m.KeyID, Sig: m.Sig}
	if len(c.sigs) < c.delegation.Threshold {
		return protocol.MetaEnvelope{}, false, nil
	}
	env = protocol.MetaEnvelope{Role: c.role, Signed: append([]byte(nil), c.signed...)}
	// Deterministic signature order (map iteration would vary run to
	// run and break bit-identical replays).
	for _, k := range c.delegation.Keys {
		if sig, ok := c.sigs[k.KeyID]; ok {
			env.Sigs = append(env.Sigs, sig)
		}
	}
	c.done = true
	return env, true, nil
}
