package metarepo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"

	"cicero/internal/protocol"
	"cicero/internal/tcrypto/bls"
)

// Rejection reasons, used as counters and as chaos invariant classes.
const (
	RejectBadEncoding = "meta-bad-encoding"
	RejectBadSig      = "meta-bad-sig"
	RejectWrongRole   = "meta-wrong-role"
	RejectRetiredKey  = "meta-retired-key"
	RejectThreshold   = "meta-threshold"
	RejectRollback    = "meta-rollback"
	RejectExpired     = "meta-expired"
	RejectMixMatch    = "meta-mix-match"
	RejectNoRoot      = "meta-no-root"
)

// RejectError is a classified verification failure.
type RejectError struct {
	Reason string
	Detail string
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("metarepo: %s: %s", e.Reason, e.Detail)
}

// Reason classifies an Apply error ("" for nil or untyped errors).
func Reason(err error) string {
	if re, ok := err.(*RejectError); ok {
		return re.Reason
	}
	return ""
}

// AdoptFunc observes every successful adoption (chaos wires an
// independent re-verifier here).
type AdoptFunc func(role string, version uint64, env protocol.MetaEnvelope)

// Store is a trusted-metadata store: it holds the latest verified
// document per role and refuses everything that fails the TUF checks —
// wrong or retired keys, sub-threshold signatures, version rollback,
// expired documents, and mix-and-match bindings. Switches, controllers,
// and cicero-node processes each keep one; nothing from the metadata
// plane is acted on unless its envelope passed this gate.
//
// The store is safe for concurrent use (live fabrics deliver from
// socket goroutines).
type Store struct {
	mu     sync.Mutex
	scheme *bls.Scheme
	// groupPK verifies root envelopes. It is the DKG group public key,
	// which proactive resharing never changes.
	groupPK bls.PublicKey
	cache   *bls.VerifyCache

	root          *Root
	rootSigned    []byte
	targets       *Targets
	targetsSigned []byte
	snapshot      *Snapshot
	timestamp     *Timestamp
	// envs retains the adopted envelope per role so the store can serve
	// metadata requests (MsgMetaRequest) from restarted peers.
	envs map[string]protocol.MetaEnvelope

	// retired remembers role-key ids a previous root delegated that the
	// current root dropped — the signal that distinguishes a
	// key-compromise replay from ordinary garbage.
	retired map[string]bool

	// now supplies the verifier's clock in nanoseconds (fabric time on
	// simnet, wall clock on live backends).
	now func() int64

	// bypass disables verification — the chaos canary proving the
	// invariant plane notices a broken store.
	bypass bool

	hook AdoptFunc

	rejected map[string]int
	adopted  int
}

// NewStore builds a store trusting the given group public key. now
// supplies the local clock in nanoseconds.
func NewStore(scheme *bls.Scheme, groupPK bls.PublicKey, now func() int64) *Store {
	return &Store{
		scheme:   scheme,
		groupPK:  groupPK,
		cache:    bls.NewVerifyCache(64),
		retired:  make(map[string]bool),
		now:      now,
		rejected: make(map[string]int),
		envs:     make(map[string]protocol.MetaEnvelope),
	}
}

// SetAdoptHook installs the adoption observer.
func (s *Store) SetAdoptHook(fn AdoptFunc) {
	s.mu.Lock()
	s.hook = fn
	s.mu.Unlock()
}

// SetVerifyBypass turns verification off (chaos canary only).
func (s *Store) SetVerifyBypass(on bool) {
	s.mu.Lock()
	s.bypass = on
	s.mu.Unlock()
}

// Rejections returns a copy of the per-reason rejection counters.
func (s *Store) Rejections() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.rejected))
	for k, v := range s.rejected {
		out[k] = v
	}
	return out
}

// Adopted returns how many envelopes were adopted.
func (s *Store) Adopted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.adopted
}

// Versions returns the current (root, targets, snapshot, timestamp)
// versions, zero where nothing is adopted yet.
func (s *Store) Versions() (root, targets, snapshot, timestamp uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.root != nil {
		root = s.root.Version
	}
	if s.targets != nil {
		targets = s.targets.Version
	}
	if s.snapshot != nil {
		snapshot = s.snapshot.Version
	}
	if s.timestamp != nil {
		timestamp = s.timestamp.Version
	}
	return
}

// PolicyTargets returns the current verified targets document (nil if
// none adopted).
func (s *Store) PolicyTargets() *Targets {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.targets == nil {
		return nil
	}
	cp := *s.targets
	return &cp
}

// Root returns the current verified root document (nil if none).
func (s *Store) Root() *Root {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.root == nil {
		return nil
	}
	cp := *s.root
	return &cp
}

// TimestampDoc returns the current freshness proof (nil if none).
func (s *Store) TimestampDoc() *Timestamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.timestamp == nil {
		return nil
	}
	cp := *s.timestamp
	return &cp
}

// Fresh reports whether the store's freshness proof covers nowNS. A
// store with no timestamp is not fresh: policy must never be acted on
// without a live freshness proof. A bypassed store lies (claims fresh
// unconditionally) — that is the freeze canary the invariant plane must
// catch.
func (s *Store) Fresh(nowNS int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bypass {
		return true
	}
	return s.timestamp != nil && nowNS <= s.timestamp.ExpiresNS
}

// CurrentSet returns the adopted envelopes in trust order (root,
// timestamp, snapshot, targets) — the full verifiable set a restarted
// peer needs to catch up.
func (s *Store) CurrentSet() []protocol.MetaEnvelope {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []protocol.MetaEnvelope
	for _, role := range []string{protocol.MetaRoleRoot, protocol.MetaRoleTimestamp,
		protocol.MetaRoleSnapshot, protocol.MetaRoleTargets} {
		if env, ok := s.envs[role]; ok {
			out = append(out, env)
		}
	}
	return out
}

// Retired reports whether a role-key id was delegated by an earlier
// root and dropped since.
func (s *Store) Retired(keyID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retired[keyID]
}

// Apply verifies one envelope and adopts it on success. The error, when
// non-nil, is a *RejectError classifying the failure.
func (s *Store) Apply(env protocol.MetaEnvelope) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked(env)
}

// ApplySet applies a metadata set in trust order (root, timestamp,
// snapshot, targets), returning the first error. Re-deliveries of
// already-current envelopes are not errors, so a full-set push is
// idempotent.
func (s *Store) ApplySet(envs []protocol.MetaEnvelope) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, env := range SortSet(envs) {
		if err := s.applyLocked(env); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) applyLocked(env protocol.MetaEnvelope) error {
	var err error
	switch env.Role {
	case protocol.MetaRoleRoot:
		err = s.applyRoot(env)
	case protocol.MetaRoleTargets, protocol.MetaRoleSnapshot, protocol.MetaRoleTimestamp:
		err = s.applyDelegated(env)
	default:
		err = &RejectError{Reason: RejectBadEncoding, Detail: fmt.Sprintf("unknown role %q", env.Role)}
	}
	if err != nil {
		if r := Reason(err); r != "" {
			s.rejected[r]++
		}
		return err
	}
	return nil
}

// adopt records an adoption and fires the hook (lock held; the hook is
// invoked without the lock so it may inspect the store).
func (s *Store) adopt(role string, version uint64, env protocol.MetaEnvelope) {
	s.adopted++
	if h := s.hook; h != nil {
		s.mu.Unlock()
		h(role, version, env)
		s.mu.Lock()
	}
}

func (s *Store) applyRoot(env protocol.MetaEnvelope) error {
	var doc Root
	if err := decodeStrictJSON(env.Signed, &doc); err != nil {
		return &RejectError{Reason: RejectBadEncoding, Detail: fmt.Sprintf("root: %v", err)}
	}
	if !s.bypass {
		if s.root != nil && doc.Version < s.root.Version {
			return &RejectError{Reason: RejectRollback,
				Detail: fmt.Sprintf("root v%d < adopted v%d", doc.Version, s.root.Version)}
		}
		if s.root != nil && doc.Version == s.root.Version {
			if bytes.Equal(env.Signed, s.rootSigned) {
				return nil // idempotent re-delivery
			}
			return &RejectError{Reason: RejectRollback,
				Detail: fmt.Sprintf("conflicting root at v%d", doc.Version)}
		}
		if s.now() > doc.ExpiresNS {
			return &RejectError{Reason: RejectExpired, Detail: fmt.Sprintf("root v%d expired", doc.Version)}
		}
		for _, role := range []string{protocol.MetaRoleTargets, protocol.MetaRoleSnapshot, protocol.MetaRoleTimestamp} {
			d, ok := doc.Roles[role]
			if !ok || d.Threshold < 1 || len(d.Keys) < d.Threshold {
				return &RejectError{Reason: RejectBadEncoding,
					Detail: fmt.Sprintf("root v%d: role %q under-delegated", doc.Version, role)}
			}
		}
		sig, err := s.rootSignature(env)
		if err != nil {
			return err
		}
		msg := protocol.MetaSigningBytes(protocol.MetaRoleRoot, env.Signed)
		if !s.scheme.VerifyCached(s.cache, s.groupPK, msg, sig) {
			return &RejectError{Reason: RejectBadSig, Detail: fmt.Sprintf("root v%d: threshold signature invalid", doc.Version)}
		}
	}
	// Retire every key id the outgoing root delegated that the incoming
	// one dropped (rotation is how compromise recovery works: a retired
	// key's signatures stop counting the instant the new root lands).
	if s.root != nil {
		current := make(map[string]bool)
		for _, d := range doc.Roles {
			for _, k := range d.Keys {
				current[k.KeyID] = true
			}
		}
		for _, d := range s.root.Roles {
			for _, k := range d.Keys {
				if !current[k.KeyID] {
					s.retired[k.KeyID] = true
				}
			}
		}
		for id := range current {
			delete(s.retired, id)
		}
	}
	s.root = &doc
	s.rootSigned = append([]byte(nil), env.Signed...)
	s.envs[protocol.MetaRoleRoot] = env
	s.adopt(protocol.MetaRoleRoot, doc.Version, env)
	return nil
}

// rootSignature extracts and parses the combined BLS signature.
func (s *Store) rootSignature(env protocol.MetaEnvelope) (bls.Signature, error) {
	for _, sig := range env.Sigs {
		if sig.KeyID != protocol.MetaSigKeyGroup {
			continue
		}
		pt, err := s.scheme.Params.ParsePoint(sig.Sig)
		if err != nil {
			return bls.Signature{}, &RejectError{Reason: RejectBadSig, Detail: fmt.Sprintf("root signature: %v", err)}
		}
		return bls.Signature{Point: pt}, nil
	}
	return bls.Signature{}, &RejectError{Reason: RejectThreshold, Detail: "root: no group signature"}
}

// delegatedDoc is the version/expiry header shared by all delegated
// documents.
type delegatedDoc struct {
	Version   uint64 `json:"version"`
	ExpiresNS int64  `json:"expires_ns"`
}

func (s *Store) applyDelegated(env protocol.MetaEnvelope) error {
	role := env.Role
	var hdr delegatedDoc
	if err := decodeStrictJSON(env.Signed, &hdr); err != nil {
		return &RejectError{Reason: RejectBadEncoding, Detail: fmt.Sprintf("%s: %v", role, err)}
	}
	if !s.bypass {
		if s.root == nil {
			return &RejectError{Reason: RejectNoRoot, Detail: fmt.Sprintf("%s v%d before any root", role, hdr.Version)}
		}
		if err := s.verifyDelegatedSigs(role, hdr.Version, env); err != nil {
			return err
		}
		cur := s.currentVersion(role)
		if hdr.Version < cur {
			return &RejectError{Reason: RejectRollback,
				Detail: fmt.Sprintf("%s v%d < adopted v%d", role, hdr.Version, cur)}
		}
		if hdr.Version == cur && cur != 0 {
			if role == protocol.MetaRoleTargets && bytes.Equal(env.Signed, s.targetsSigned) {
				return nil // idempotent re-delivery
			}
			if role != protocol.MetaRoleTargets {
				return nil // snapshot/timestamp re-delivery at same version
			}
			return &RejectError{Reason: RejectRollback, Detail: fmt.Sprintf("conflicting %s at v%d", role, hdr.Version)}
		}
		if s.now() > hdr.ExpiresNS {
			return &RejectError{Reason: RejectExpired, Detail: fmt.Sprintf("%s v%d expired", role, hdr.Version)}
		}
	}
	switch role {
	case protocol.MetaRoleTimestamp:
		var doc Timestamp
		if err := decodeStrictJSON(env.Signed, &doc); err != nil {
			return &RejectError{Reason: RejectBadEncoding, Detail: fmt.Sprintf("timestamp: %v", err)}
		}
		s.timestamp = &doc
	case protocol.MetaRoleSnapshot:
		var doc Snapshot
		if err := decodeStrictJSON(env.Signed, &doc); err != nil {
			return &RejectError{Reason: RejectBadEncoding, Detail: fmt.Sprintf("snapshot: %v", err)}
		}
		// Mix-and-match gate: the freshness proof names exactly one
		// snapshot (version + digest); anything else is a splice.
		if !s.bypass {
			if s.timestamp == nil {
				return &RejectError{Reason: RejectMixMatch, Detail: "snapshot before timestamp"}
			}
			if s.timestamp.SnapshotVersion != doc.Version ||
				!bytes.Equal(s.timestamp.SnapshotDigest, Digest(env.Signed)) {
				return &RejectError{Reason: RejectMixMatch,
					Detail: fmt.Sprintf("snapshot v%d not the one the timestamp binds (v%d)", doc.Version, s.timestamp.SnapshotVersion)}
			}
		}
		s.snapshot = &doc
	case protocol.MetaRoleTargets:
		var doc Targets
		if err := decodeStrictJSON(env.Signed, &doc); err != nil {
			return &RejectError{Reason: RejectBadEncoding, Detail: fmt.Sprintf("targets: %v", err)}
		}
		if !s.bypass {
			if s.snapshot == nil {
				return &RejectError{Reason: RejectMixMatch, Detail: "targets before snapshot"}
			}
			if s.snapshot.TargetsVersion != doc.Version ||
				!bytes.Equal(s.snapshot.TargetsDigest, Digest(env.Signed)) {
				return &RejectError{Reason: RejectMixMatch,
					Detail: fmt.Sprintf("targets v%d not the one the snapshot binds (v%d)", doc.Version, s.snapshot.TargetsVersion)}
			}
		}
		s.targets = &doc
		s.targetsSigned = append([]byte(nil), env.Signed...)
	}
	s.envs[role] = env
	s.adopt(role, hdr.Version, env)
	return nil
}

// currentVersion returns the adopted version for a delegated role.
func (s *Store) currentVersion(role string) uint64 {
	switch role {
	case protocol.MetaRoleTargets:
		if s.targets != nil {
			return s.targets.Version
		}
	case protocol.MetaRoleSnapshot:
		if s.snapshot != nil {
			return s.snapshot.Version
		}
	case protocol.MetaRoleTimestamp:
		if s.timestamp != nil {
			return s.timestamp.Version
		}
	}
	return 0
}

// verifyDelegatedSigs counts valid signatures from the role's current
// delegation and classifies the failure when the threshold is missed.
func (s *Store) verifyDelegatedSigs(role string, version uint64, env protocol.MetaEnvelope) error {
	d, ok := s.root.Roles[role]
	if !ok {
		return &RejectError{Reason: RejectWrongRole, Detail: fmt.Sprintf("root delegates no %q role", role)}
	}
	valid := 0
	seen := make(map[string]bool)
	sawRetired, sawForeign, sawBad := false, false, false
	for _, sig := range env.Sigs {
		if seen[sig.KeyID] {
			continue
		}
		seen[sig.KeyID] = true
		pub := d.Key(sig.KeyID)
		if pub == nil {
			if s.retired[sig.KeyID] {
				sawRetired = true
			} else {
				sawForeign = true
			}
			continue
		}
		if VerifyRoleSig(pub, role, env.Signed, sig.Sig) {
			valid++
		} else {
			sawBad = true
		}
	}
	if valid >= d.Threshold {
		return nil
	}
	detail := fmt.Sprintf("%s v%d: %d/%d valid role signatures", role, version, valid, d.Threshold)
	switch {
	case sawRetired:
		return &RejectError{Reason: RejectRetiredKey, Detail: detail + " (retired key offered)"}
	case sawForeign:
		return &RejectError{Reason: RejectWrongRole, Detail: detail + " (undelegated key offered)"}
	case sawBad:
		return &RejectError{Reason: RejectBadSig, Detail: detail}
	default:
		return &RejectError{Reason: RejectThreshold, Detail: detail}
	}
}

// decodeStrictJSON unmarshals a document body.
func decodeStrictJSON(data []byte, v any) error {
	return json.Unmarshal(data, v)
}
