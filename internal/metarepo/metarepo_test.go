package metarepo

import (
	"bytes"
	"crypto/rand"
	"testing"

	"cicero/internal/protocol"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/dkg"
	"cicero/internal/tcrypto/pairing"
	"cicero/internal/tcrypto/pki"
)

// fixture holds a 4-controller metadata universe.
type fixture struct {
	scheme *bls.Scheme
	gk     *bls.GroupKey
	shares []bls.KeyShare
	keys   []*pki.KeyPair
	now    int64
}

const ttl = int64(1e12) // 1000s document TTL
const tsTTL = int64(1e9)

func newFixture(t testing.TB) *fixture {
	t.Helper()
	scheme := bls.NewScheme(pairing.Fast254())
	gk, shares, err := dkg.Run(scheme, rand.Reader, 2, 4)
	if err != nil {
		t.Fatalf("dkg: %v", err)
	}
	f := &fixture{scheme: scheme, gk: gk, shares: shares, now: 1000}
	for i := 0; i < 4; i++ {
		kp, err := pki.NewKeyPair(rand.Reader, pki.Identity([]string{"c1", "c2", "c3", "c4"}[i]))
		if err != nil {
			t.Fatalf("keypair: %v", err)
		}
		f.keys = append(f.keys, kp)
	}
	return f
}

func (f *fixture) store() *Store {
	return NewStore(f.scheme, f.gk.PK, func() int64 { return f.now })
}

// genesis returns a signed root + consistent v1 set.
func (f *fixture) genesis(t testing.TB) (protocol.MetaEnvelope, []protocol.MetaEnvelope) {
	t.Helper()
	root := GenesisRoot(2, f.keys, f.now, ttl)
	rootEnv, err := SignRootDirect(f.scheme, f.gk, f.shares, root)
	if err != nil {
		t.Fatalf("sign root: %v", err)
	}
	tg, sn, ts := BuildSet(Policy{Phase: 1, Quorum: 2}, 1, f.now, ttl, tsTTL)
	return rootEnv, SignSet(tg, sn, ts, f.keys[:2])
}

func TestAdoptGenesisAndUpdate(t *testing.T) {
	f := newFixture(t)
	rootEnv, set := f.genesis(t)
	s := f.store()
	if err := s.Apply(rootEnv); err != nil {
		t.Fatalf("root: %v", err)
	}
	if err := s.ApplySet(set); err != nil {
		t.Fatalf("set v1: %v", err)
	}
	r, tgv, snv, tsv := s.Versions()
	if r != 1 || tgv != 1 || snv != 1 || tsv != 1 {
		t.Fatalf("versions = %d/%d/%d/%d, want 1/1/1/1", r, tgv, snv, tsv)
	}
	if !s.Fresh(f.now + tsTTL/2) {
		t.Fatalf("store not fresh inside timestamp TTL")
	}
	if s.Fresh(f.now + tsTTL + 1) {
		t.Fatalf("store fresh past timestamp expiry")
	}
	// v2 update adopts.
	tg2, sn2, ts2 := BuildSet(Policy{Phase: 1, Quorum: 2, BatchSize: 8}, 2, f.now+10, ttl, tsTTL)
	if err := s.ApplySet(SignSet(tg2, sn2, ts2, f.keys[1:3])); err != nil {
		t.Fatalf("set v2: %v", err)
	}
	if got := s.PolicyTargets().Policy.BatchSize; got != 8 {
		t.Fatalf("policy batch size = %d, want 8", got)
	}
	// Replaying v1 after v2 is rollback, per role.
	for _, env := range set {
		err := s.Apply(env)
		if Reason(err) != RejectRollback {
			t.Fatalf("replay %s: got %v, want rollback", env.Role, err)
		}
	}
	if s.Rejections()[RejectRollback] != 3 {
		t.Fatalf("rollback counter = %v", s.Rejections())
	}
}

func TestRejectsMixAndMatch(t *testing.T) {
	f := newFixture(t)
	rootEnv, set1 := f.genesis(t)
	tg2, sn2, ts2 := BuildSet(Policy{Phase: 1, Quorum: 2, BatchSize: 4}, 2, f.now, ttl, tsTTL)
	set2 := SignSet(tg2, sn2, ts2, f.keys[:2])

	s := f.store()
	if err := s.Apply(rootEnv); err != nil {
		t.Fatalf("root: %v", err)
	}
	// Splice: v2 timestamp + v2 snapshot, but v1 targets.
	spliced := []protocol.MetaEnvelope{set2[2], set2[1], set1[0]}
	err := s.ApplySet(spliced)
	if Reason(err) != RejectMixMatch {
		t.Fatalf("spliced set: got %v, want mix-match", err)
	}
	// Targets must not have been adopted.
	if s.PolicyTargets() != nil {
		t.Fatalf("spliced targets adopted")
	}
	// Snapshot offered without its bound timestamp also fails closed.
	s2 := f.store()
	if err := s2.Apply(rootEnv); err != nil {
		t.Fatalf("root: %v", err)
	}
	if err := s2.Apply(set1[1]); Reason(err) != RejectMixMatch {
		t.Fatalf("snapshot before timestamp: got %v, want mix-match", err)
	}
}

func TestRejectsWrongRoleAndForeignKeys(t *testing.T) {
	f := newFixture(t)
	rootEnv, set := f.genesis(t)
	s := f.store()
	if err := s.Apply(rootEnv); err != nil {
		t.Fatalf("root: %v", err)
	}
	// A signature computed for the snapshot role must not count for
	// targets even though the same keys serve both roles.
	tsEnv := set[2]
	forged := protocol.MetaEnvelope{Role: protocol.MetaRoleSnapshot, Signed: tsEnv.Signed, Sigs: tsEnv.Sigs}
	if err := s.Apply(forged); Reason(err) == "" {
		t.Fatalf("role-transplanted envelope accepted")
	}
	// An outsider key (never delegated) cannot mint a timestamp.
	outsider, err := pki.NewKeyPair(rand.Reader, "intruder")
	if err != nil {
		t.Fatal(err)
	}
	ts := Timestamp{Version: 9, IssuedNS: f.now, ExpiresNS: f.now + tsTTL, SnapshotVersion: 9}
	env := protocol.MetaEnvelope{Role: protocol.MetaRoleTimestamp, Signed: Encode(ts)}
	env.Sigs = []protocol.MetaSig{SignRole(outsider, protocol.MetaRoleTimestamp, env.Signed)}
	if err := s.Apply(env); Reason(err) != RejectWrongRole {
		t.Fatalf("outsider timestamp: got %v, want wrong-role", err)
	}
}

func TestRejectsExpiredAndUnrootedDocs(t *testing.T) {
	f := newFixture(t)
	rootEnv, set := f.genesis(t)
	s := f.store()
	// Delegated docs before any root fail closed.
	if err := s.Apply(set[2]); Reason(err) != RejectNoRoot {
		t.Fatalf("timestamp before root: got %v, want no-root", err)
	}
	if err := s.Apply(rootEnv); err != nil {
		t.Fatalf("root: %v", err)
	}
	// Freeze: a valid-but-expired timestamp is rejected.
	f.now += tsTTL + 1
	if err := s.Apply(set[2]); Reason(err) != RejectExpired {
		t.Fatalf("expired timestamp: got %v, want expired", err)
	}
}

func TestRootRotationRetiresKeys(t *testing.T) {
	f := newFixture(t)
	rootEnv, set := f.genesis(t)
	s := f.store()
	if err := s.Apply(rootEnv); err != nil {
		t.Fatalf("root: %v", err)
	}
	if err := s.ApplySet(set); err != nil {
		t.Fatalf("set: %v", err)
	}
	// Root v2 drops key c4.
	var keys []RoleKey
	for _, kp := range f.keys[:3] {
		keys = append(keys, RoleKey{KeyID: string(kp.ID), Pub: append([]byte(nil), kp.Public...)})
	}
	root2 := RootAt(2, 2, keys, f.now+1, ttl)
	root2Env, err := SignRootDirect(f.scheme, f.gk, f.shares, root2)
	if err != nil {
		t.Fatalf("sign root2: %v", err)
	}
	if err := s.Apply(root2Env); err != nil {
		t.Fatalf("root2: %v", err)
	}
	if !s.Retired("c4") {
		t.Fatalf("c4 not marked retired after rotation")
	}
	// A post-rotation document signed by the retired key is rejected as
	// retired-key, not generic garbage.
	ts2 := Timestamp{Version: 2, IssuedNS: f.now, ExpiresNS: f.now + tsTTL,
		SnapshotVersion: 1, SnapshotDigest: Digest(set[1].Signed)}
	env := protocol.MetaEnvelope{Role: protocol.MetaRoleTimestamp, Signed: Encode(ts2)}
	env.Sigs = []protocol.MetaSig{SignRole(f.keys[3], protocol.MetaRoleTimestamp, env.Signed)}
	if err := s.Apply(env); Reason(err) != RejectRetiredKey {
		t.Fatalf("retired-key timestamp: got %v, want retired-key", err)
	}
	// Root rollback to v1 rejected.
	if err := s.Apply(rootEnv); Reason(err) != RejectRollback {
		t.Fatalf("root rollback: got %v, want rollback", err)
	}
}

func TestVerifyBypassAdoptsAttacks(t *testing.T) {
	f := newFixture(t)
	rootEnv, set := f.genesis(t)
	s := f.store()
	s.SetVerifyBypass(true)
	if err := s.Apply(rootEnv); err != nil {
		t.Fatalf("root under bypass: %v", err)
	}
	// v2 then a v1 rollback: a bypassed store swallows it.
	tg2, sn2, ts2 := BuildSet(Policy{Phase: 1, Quorum: 2}, 2, f.now, ttl, tsTTL)
	if err := s.ApplySet(SignSet(tg2, sn2, ts2, f.keys[:2])); err != nil {
		t.Fatalf("v2 under bypass: %v", err)
	}
	if err := s.ApplySet(set); err != nil {
		t.Fatalf("bypassed store rejected rollback: %v", err)
	}
	if _, tgv, _, _ := s.Versions(); tgv != 1 {
		t.Fatalf("bypassed store did not adopt the rollback (targets v%d)", tgv)
	}
	if !s.Fresh(f.now + 100*tsTTL) {
		t.Fatalf("bypassed store should lie about freshness")
	}
}

func TestShareCollectorRejectsRetiredShares(t *testing.T) {
	f := newFixture(t)
	root := GenesisRoot(2, f.keys, f.now, ttl)
	signed := Encode(root)

	// Reshare: same public key, fresh commitments and shares.
	newGK, newShares, err := dkg.RunReshare(f.scheme, rand.Reader, f.gk, f.shares, 2, 4)
	if err != nil {
		t.Fatalf("reshare: %v", err)
	}
	if !newGK.PK.Point.Equal(f.gk.PK.Point) {
		t.Fatalf("reshare changed the public key")
	}
	col := NewShareCollector(f.scheme, newGK, root.Version, signed)

	// An old (pre-reshare) share signature is rejected.
	oldSig := SignRootShare(f.scheme, f.shares[0], signed)
	_, done, err := col.Add(protocol.MsgMetaShare{
		Version: root.Version, Signed: signed,
		ShareIndex: oldSig.Index, Share: f.scheme.Params.PointBytes(oldSig.Point),
	})
	if err == nil || done {
		t.Fatalf("retired share accepted (done=%v err=%v)", done, err)
	}
	if col.StaleRejected != 1 {
		t.Fatalf("StaleRejected = %d, want 1", col.StaleRejected)
	}

	// Fresh shares complete the envelope and it verifies in a store.
	var env protocol.MetaEnvelope
	for i := 0; i < 2; i++ {
		sh := SignRootShare(f.scheme, newShares[i], signed)
		env, done, err = col.Add(protocol.MsgMetaShare{
			Version: root.Version, Signed: signed,
			ShareIndex: sh.Index, Share: f.scheme.Params.PointBytes(sh.Point),
		})
		if err != nil {
			t.Fatalf("fresh share %d: %v", i, err)
		}
	}
	if !done {
		t.Fatalf("collector did not complete at quorum")
	}
	s := f.store()
	if err := s.Apply(env); err != nil {
		t.Fatalf("collected root rejected: %v", err)
	}
}

func TestSigCollectorAssemblesEnvelope(t *testing.T) {
	f := newFixture(t)
	root := GenesisRoot(2, f.keys, f.now, ttl)
	tg, _, _ := BuildSet(Policy{Phase: 1}, 1, f.now, ttl, tsTTL)
	signed := Encode(tg)
	col := NewSigCollector(protocol.MetaRoleTargets, tg.Version, signed, root.Roles[protocol.MetaRoleTargets])

	// Outsider contribution rejected.
	outsider, _ := pki.NewKeyPair(rand.Reader, "intruder")
	sig := SignRole(outsider, protocol.MetaRoleTargets, signed)
	if _, _, err := col.Add(protocol.MsgMetaSig{
		Role: protocol.MetaRoleTargets, Version: tg.Version, Digest: Digest(signed),
		Signed: signed, KeyID: sig.KeyID, Sig: sig.Sig,
	}); err == nil {
		t.Fatalf("outsider signature accepted")
	}
	if col.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", col.Rejected)
	}
	var env protocol.MetaEnvelope
	var done bool
	for _, kp := range f.keys[:2] {
		s := SignRole(kp, protocol.MetaRoleTargets, signed)
		var err error
		env, done, err = col.Add(protocol.MsgMetaSig{
			Role: protocol.MetaRoleTargets, Version: tg.Version, Digest: Digest(signed),
			Signed: signed, KeyID: s.KeyID, Sig: s.Sig,
		})
		if err != nil {
			t.Fatalf("add %s: %v", kp.ID, err)
		}
	}
	if !done || len(env.Sigs) != 2 {
		t.Fatalf("collector done=%v sigs=%d", done, len(env.Sigs))
	}
}

func TestGenesisFileRoundTrip(t *testing.T) {
	f := newFixture(t)
	rootEnv, _ := f.genesis(t)
	var buf bytes.Buffer
	if err := EncodeGenesis(&buf, f.scheme, f.gk, rootEnv); err != nil {
		t.Fatalf("encode: %v", err)
	}
	gk, env, err := DecodeGenesis(&buf, f.scheme)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !gk.PK.Point.Equal(f.gk.PK.Point) || gk.T != f.gk.T {
		t.Fatalf("group key did not round-trip")
	}
	s := NewStore(f.scheme, gk.PK, func() int64 { return f.now })
	if err := s.Apply(env); err != nil {
		t.Fatalf("decoded genesis root rejected: %v", err)
	}
	// A bit flip in the signed bytes must fail verification.
	bad := env
	bad.Signed = append([]byte(nil), env.Signed...)
	bad.Signed[len(bad.Signed)/2] ^= 1
	if err := NewStore(f.scheme, gk.PK, func() int64 { return f.now }).Apply(bad); err == nil {
		t.Fatalf("tampered genesis root accepted")
	}
}
