package bft

import "cicero/internal/fabric"

// FabricTransport adapts the fabric seam to the replica Transport: every
// replica message travels as one fabric datagram. It is the single
// transport used by the control plane on all backends (simnet, in-proc,
// TCP) — the control plane supplies Peer to map replica slots onto its
// current membership and Wrap to tag messages with its epoch.
type FabricTransport struct {
	// Fab carries the messages; Self is the sending node.
	Fab  fabric.Fabric
	Self fabric.NodeID
	// Peer resolves a replica id to its fabric node. Returning ok=false
	// drops the send (e.g. a slot beyond the current membership).
	Peer func(to ReplicaID) (fabric.NodeID, bool)
	// Wrap, when non-nil, envelopes the replica message before sending
	// (the control plane tags messages with its membership epoch). When
	// nil the bare bft message is sent.
	Wrap func(msg Message) fabric.Message
	// WireSize is the per-message size estimate charged to the fabric;
	// zero defaults to 256 bytes (the simnet cost model's BFT estimate).
	WireSize int
}

var _ Transport = (*FabricTransport)(nil)

// Send implements Transport.
func (t *FabricTransport) Send(to ReplicaID, msg Message) {
	peer, ok := t.Peer(to)
	if !ok {
		return
	}
	out := fabric.Message(msg)
	if t.Wrap != nil {
		out = t.Wrap(msg)
	}
	size := t.WireSize
	if size == 0 {
		size = 256
	}
	t.Fab.Send(t.Self, peer, out, size)
}
