package bft

import (
	"encoding/binary"
	"time"
)

// Batched ordering: with Config.BatchSize > 1 the primary accumulates
// submitted payloads and runs one three-phase agreement per batch instead
// of per payload. A batch closes when it reaches BatchSize payloads or
// when BatchDelay elapses since its first payload, whichever comes first —
// the size bound caps amortization latency under load, the delay bound
// caps it when traffic is sparse. With BatchSize <= 1 (the default) every
// code path below is skipped and the replica behaves exactly as before.
//
// A batch travels through agreement as one opaque payload (one sequence
// number, one digest, one quorum ceremony); deduplication, pending-request
// tracking, and view-change coverage all operate on the constituent
// payloads so a payload submitted into a batch that dies with a view
// change is re-proposed individually, never lost.

// batchMagic prefixes every encoded batch container. Application payloads
// are JSON objects (first byte '{') and null requests are empty, so the
// NUL-prefixed magic cannot collide with either.
const batchMagic = "\x00cbatch1"

// DefaultBatchDelay bounds how long a non-full batch may wait for more
// payloads before the primary closes it.
const DefaultBatchDelay = 5 * time.Millisecond

// EncodeBatch packs payloads into one batch container.
func EncodeBatch(payloads [][]byte) []byte {
	size := len(batchMagic) + binary.MaxVarintLen64
	for _, p := range payloads {
		size += binary.MaxVarintLen64 + len(p)
	}
	out := make([]byte, 0, size)
	out = append(out, batchMagic...)
	out = binary.AppendUvarint(out, uint64(len(payloads)))
	for _, p := range payloads {
		out = binary.AppendUvarint(out, uint64(len(p)))
		out = append(out, p...)
	}
	return out
}

// DecodeBatch unpacks a batch container, reporting ok=false for anything
// that is not one (application payloads, null requests, truncated data).
func DecodeBatch(payload []byte) ([][]byte, bool) {
	if len(payload) < len(batchMagic) || string(payload[:len(batchMagic)]) != batchMagic {
		return nil, false
	}
	rest := payload[len(batchMagic):]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count == 0 || count > uint64(len(rest)) {
		return nil, false
	}
	rest = rest[n:]
	out := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		ln, n := binary.Uvarint(rest)
		if n <= 0 || ln > uint64(len(rest)-n) {
			return nil, false
		}
		out = append(out, rest[n:n+int(ln)])
		rest = rest[n+int(ln):]
	}
	if len(rest) != 0 {
		return nil, false
	}
	return out, true
}

// batching reports whether batched ordering is enabled.
func (r *Replica) batching() bool { return r.cfg.BatchSize > 1 }

// decodeIfBatch decodes a batch container, but only when batching is
// enabled — with BatchSize <= 1 the replica treats every payload as opaque,
// exactly as before batching existed.
func (r *Replica) decodeIfBatch(payload []byte) ([][]byte, bool) {
	if !r.batching() {
		return nil, false
	}
	return DecodeBatch(payload)
}

// enqueueBatch adds a payload to the open batch (primary only), closing it
// when full. The payload's digest is marked sequenced immediately so
// retransmitted requests dedup against buffered payloads too.
func (r *Replica) enqueueBatch(payload []byte) {
	d := digestOf(payload)
	if r.sequenced[d] {
		return
	}
	r.sequenced[d] = true
	r.batchBuf = append(r.batchBuf, append([]byte(nil), payload...))
	if len(r.batchBuf) >= r.cfg.BatchSize {
		r.flushBatch()
		return
	}
	r.armBatchTimer()
}

// flushBatch closes the open batch and proposes it as one agreement slot.
func (r *Replica) flushBatch() {
	if len(r.batchBuf) == 0 {
		return
	}
	payload := EncodeBatch(r.batchBuf)
	r.batchBuf = nil
	r.proposeRaw(payload)
}

// armBatchTimer schedules the delay-bound flush for the open batch.
func (r *Replica) armBatchTimer() {
	if r.cfg.Timer == nil || r.batchTimerArmed {
		return
	}
	delay := r.cfg.BatchDelay
	if delay <= 0 {
		delay = DefaultBatchDelay
	}
	r.batchTimerArmed = true
	r.cfg.Timer(delay, func() {
		r.batchTimerArmed = false
		if r.stopped || !r.IsPrimary() {
			return
		}
		r.flushBatch()
	})
}

// markBatchSequenced records every constituent payload of a sequenced
// batch so duplicate requests are dropped and stuck-peer monitoring stops.
func (r *Replica) markBatchSequenced(payload []byte) {
	subs, ok := DecodeBatch(payload)
	if !ok {
		return
	}
	for _, sub := range subs {
		d := digestOf(sub)
		r.sequenced[d] = true
		delete(r.pendingForeign, d)
	}
}

// unmarkBatchSequenced releases constituent digests of an abandoned batch
// slot (view change) so the payloads become proposable again.
func (r *Replica) unmarkBatchSequenced(payload []byte) {
	subs, ok := DecodeBatch(payload)
	if !ok {
		return
	}
	for _, sub := range subs {
		delete(r.sequenced, digestOf(sub))
	}
}

// coveredByProposals reports whether a payload is re-proposed by any of
// the new view's pre-prepares, directly or inside a batch container.
func coveredByProposals(pps []PrePrepare, payload []byte) bool {
	d := digestOf(payload)
	for _, pp := range pps {
		if pp.Digest == d {
			return true
		}
		subs, ok := DecodeBatch(pp.Payload)
		if !ok {
			continue
		}
		for _, sub := range subs {
			if digestOf(sub) == d {
				return true
			}
		}
	}
	return false
}
