// Package bft implements the atomic broadcast (total-order broadcast) that
// Cicero's control plane uses to agree on the order of network events,
// standing in for the BFT-SMaRt library of the paper.
//
// Two modes share one replica implementation:
//
//   - ModeByzantine: PBFT-style three-phase agreement (pre-prepare,
//     prepare, commit) with quorums of 2f+1 out of n = 3f+1 replicas and a
//     view-change protocol for primary failure. This is the mode Cicero
//     runs (the paper's quorum t = ⌊(n−1)/3⌋+1 for update signatures is
//     layered above it).
//
//   - ModeCrash: the same pre-prepare/prepare skeleton with quorums of
//     f+1 out of n = 2f+1 and no commit phase — one fewer message delay,
//     modelling the paper's crash-tolerant baseline.
//
// Replicas are single-threaded message handlers driven by an external
// Transport and timer, so the package runs unchanged on the deterministic
// simulator or on channels/goroutines in unit tests.
//
// Fidelity note: view-change messages carry their prepared certificates
// without per-message signatures; within the simulation, point-to-point
// authentication is provided by the enclosing pki envelopes, and the
// Byzantine experiments attack the update layer (forged updates, equivocating
// controllers) rather than consensus-internal certificates.
package bft

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"time"
)

// ReplicaID identifies a replica within the group.
type ReplicaID uint32

// Mode selects the failure model.
type Mode int

// Modes. Start at 1 so the zero value is invalid.
const (
	ModeByzantine Mode = iota + 1
	ModeCrash
)

// Transport carries protocol messages between replicas. Send must be
// asynchronous and may drop messages (the protocol retransmits via view
// changes).
type Transport interface {
	// Send delivers msg to one replica.
	Send(to ReplicaID, msg Message)
}

// Timer schedules a callback; implementations wire this to the simulator
// or to real time.
type Timer func(d time.Duration, fn func())

// DeliverFunc receives totally-ordered payloads exactly once, in sequence
// order, on every correct replica.
type DeliverFunc func(seq uint64, payload []byte)

// DeliverBatchFunc receives a totally-ordered batch of payloads that won
// agreement together in one slot. All correct replicas observe the same
// batches with the same internal order.
type DeliverBatchFunc func(seq uint64, payloads [][]byte)

// Message is the union of protocol messages (exported fields only, so the
// enclosing layers can serialize/seal them).
type Message any

// Digest is a payload hash binding the agreement messages to content.
type Digest [32]byte

func digestOf(payload []byte) Digest { return sha256.Sum256(payload) }

// PayloadDigest exposes the digest function so test harnesses (e.g. the
// chaos engine's Byzantine injectors) can craft well-formed but equivocating
// protocol messages whose digests match their forged payloads.
func PayloadDigest(payload []byte) Digest { return digestOf(payload) }

// Request asks the primary to order a payload. Replicas forward local
// submissions to the current primary.
type Request struct {
	Origin  ReplicaID
	Payload []byte
}

// PrePrepare is the primary's sequencing proposal.
type PrePrepare struct {
	View    uint64
	Seq     uint64
	Digest  Digest
	Payload []byte
}

// Prepare echoes agreement on (view, seq, digest).
type Prepare struct {
	View    uint64
	Seq     uint64
	Digest  Digest
	Replica ReplicaID
}

// Commit finalizes agreement in Byzantine mode.
type Commit struct {
	View    uint64
	Seq     uint64
	Digest  Digest
	Replica ReplicaID
}

// PreparedEntry is a slot a replica had prepared when view-changing.
type PreparedEntry struct {
	Seq     uint64
	Digest  Digest
	Payload []byte
}

// ViewChange votes to move to a new view, carrying prepared entries that
// the new primary must re-propose and the voter's delivery watermark
// (the highest contiguously delivered sequence). The watermark keeps a
// lagging primary from re-assigning sequences its peers already
// delivered — PBFT's checkpoint high-water mark, collapsed to a single
// counter.
type ViewChange struct {
	NewView       uint64
	Replica       ReplicaID
	Prepared      []PreparedEntry
	LastDelivered uint64
}

// NewView announces the new primary's takeover with re-proposals.
type NewView struct {
	View        uint64
	PrePrepares []PrePrepare
}

// Config assembles a replica.
type Config struct {
	ID        ReplicaID
	Replicas  []ReplicaID
	Mode      Mode
	Transport Transport
	Timer     Timer
	Deliver   DeliverFunc
	// ViewChangeTimeout is how long a pending request may sit undelivered
	// before the replica votes to change views. Zero disables the timer
	// (used by tests that drive view changes manually).
	ViewChangeTimeout time.Duration
	// BatchSize > 1 enables batched ordering: the primary accumulates up
	// to BatchSize payloads per agreement slot. <= 1 orders per payload.
	BatchSize int
	// BatchDelay bounds how long a non-full batch waits before it is
	// proposed anyway. Zero means DefaultBatchDelay.
	BatchDelay time.Duration
	// DeliverBatch, when set alongside BatchSize > 1, receives whole
	// delivered batches; otherwise batch members are handed to Deliver
	// one by one in batch order.
	DeliverBatch DeliverBatchFunc
}

// Errors returned by the package.
var (
	// ErrNotEnoughReplicas reports a group too small for its mode.
	ErrNotEnoughReplicas = errors.New("bft: replica group too small for failure model")
	// ErrUnknownReplica reports a config whose ID is not in Replicas.
	ErrUnknownReplica = errors.New("bft: replica id not in group")
)

// slot tracks agreement state for one sequence number.
type slot struct {
	digest      Digest
	payload     []byte
	prePrepared bool
	prepares    map[ReplicaID]bool
	commits     map[ReplicaID]bool
	prepared    bool
	committed   bool
	delivered   bool
}

// Replica is one member of the atomic broadcast group.
type Replica struct {
	cfg  Config
	f    int
	view uint64

	nextSeq       uint64 // primary: next sequence to assign
	lastDelivered uint64
	slots         map[uint64]*slot

	pendingOwn      [][]byte          // submitted here, not yet delivered
	pendingForeign  map[Digest][]byte // rebroadcast by stuck peers, monitored for liveness
	sequenced       map[Digest]bool   // digests already proposed or delivered
	viewChanges     map[uint64]map[ReplicaID]*ViewChange
	batchBuf        [][]byte // primary: open batch awaiting size or delay bound
	batchTimerArmed bool
	timerArmed      bool
	// timeoutScale backs the view-change timeout off exponentially while
	// no progress happens, preventing view-change storms under overload;
	// it resets on every delivery.
	timeoutScale uint
	stopped      bool
}

// NewReplica validates the config and creates a replica.
func NewReplica(cfg Config) (*Replica, error) {
	n := len(cfg.Replicas)
	var f int
	switch cfg.Mode {
	case ModeByzantine:
		f = (n - 1) / 3
		if n < 4 {
			return nil, fmt.Errorf("%w: byzantine mode needs n >= 4, got %d", ErrNotEnoughReplicas, n)
		}
	case ModeCrash:
		f = (n - 1) / 2
		if n < 2 {
			return nil, fmt.Errorf("%w: crash mode needs n >= 2, got %d", ErrNotEnoughReplicas, n)
		}
	default:
		return nil, fmt.Errorf("bft: invalid mode %d", cfg.Mode)
	}
	found := false
	for _, id := range cfg.Replicas {
		if id == cfg.ID {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %d", ErrUnknownReplica, cfg.ID)
	}
	sorted := append([]ReplicaID(nil), cfg.Replicas...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	cfg.Replicas = sorted
	return &Replica{
		cfg:            cfg,
		f:              f,
		slots:          make(map[uint64]*slot),
		pendingForeign: make(map[Digest][]byte),
		sequenced:      make(map[Digest]bool),
		viewChanges:    make(map[uint64]map[ReplicaID]*ViewChange),
	}, nil
}

// F returns the number of tolerated faults.
func (r *Replica) F() int { return r.f }

// View returns the current view number.
func (r *Replica) View() uint64 { return r.view }

// Primary returns the primary replica of a view.
func (r *Replica) Primary(view uint64) ReplicaID {
	return r.cfg.Replicas[int(view)%len(r.cfg.Replicas)]
}

// IsPrimary reports whether this replica leads the current view.
func (r *Replica) IsPrimary() bool { return r.Primary(r.view) == r.cfg.ID }

// quorum returns the agreement quorum size for the mode.
func (r *Replica) quorum() int {
	if r.cfg.Mode == ModeByzantine {
		return 2*r.f + 1
	}
	return r.f + 1
}

// Stop makes the replica ignore all further input (models a crash from
// the inside; the simulator's Crash drops traffic from the outside).
func (r *Replica) Stop() { r.stopped = true }

// Submit asks the group to order payload. It can be called on any replica.
func (r *Replica) Submit(payload []byte) {
	if r.stopped {
		return
	}
	r.pendingOwn = append(r.pendingOwn, append([]byte(nil), payload...))
	r.armTimer()
	if r.IsPrimary() {
		r.propose(payload)
		return
	}
	r.cfg.Transport.Send(r.Primary(r.view), Request{Origin: r.cfg.ID, Payload: payload})
}

// propose sequences a payload (primary only). Payloads already sequenced
// (or delivered) are skipped, deduplicating retransmitted requests. With
// batching enabled the payload joins the open batch instead of getting a
// slot of its own.
func (r *Replica) propose(payload []byte) {
	if r.batching() {
		r.enqueueBatch(payload)
		return
	}
	if r.sequenced[digestOf(payload)] {
		return
	}
	r.proposeRaw(payload)
}

// proposeRaw assigns the next sequence number and broadcasts a pre-prepare.
func (r *Replica) proposeRaw(payload []byte) {
	r.nextSeq++
	seq := r.nextSeq
	pp := PrePrepare{View: r.view, Seq: seq, Digest: digestOf(payload), Payload: append([]byte(nil), payload...)}
	r.broadcast(pp)
	r.handlePrePrepare(pp) // self-delivery
}

// broadcast sends msg to every other replica.
func (r *Replica) broadcast(msg Message) {
	for _, id := range r.cfg.Replicas {
		if id != r.cfg.ID {
			r.cfg.Transport.Send(id, msg)
		}
	}
}

// Handle processes a protocol message from another replica. It must be
// called from a single goroutine (or the simulator's event loop).
func (r *Replica) Handle(from ReplicaID, msg Message) {
	if r.stopped {
		return
	}
	switch m := msg.(type) {
	case Request:
		if r.IsPrimary() {
			r.propose(m.Payload)
			return
		}
		// A request reaching a non-primary is a stuck client's
		// rebroadcast: monitor it so this replica times out too and the
		// view-change quorum can form.
		d := digestOf(m.Payload)
		if !r.sequenced[d] {
			r.pendingForeign[d] = append([]byte(nil), m.Payload...)
			r.armTimer()
		}
	case PrePrepare:
		if from != r.Primary(m.View) && from != r.cfg.ID {
			return // only the view's primary may sequence
		}
		r.handlePrePrepare(m)
	case Prepare:
		r.handlePrepare(m)
	case Commit:
		r.handleCommit(m)
	case ViewChange:
		r.handleViewChange(m)
	case NewView:
		r.handleNewView(from, m)
	}
}

// getSlot returns (creating if needed) the state for seq.
func (r *Replica) getSlot(seq uint64) *slot {
	s, ok := r.slots[seq]
	if !ok {
		s = &slot{prepares: make(map[ReplicaID]bool), commits: make(map[ReplicaID]bool)}
		r.slots[seq] = s
	}
	return s
}

func (r *Replica) handlePrePrepare(pp PrePrepare) {
	if pp.View != r.view {
		return
	}
	if digestOf(pp.Payload) != pp.Digest {
		return // malformed proposal
	}
	s := r.getSlot(pp.Seq)
	if s.prePrepared && s.digest != pp.Digest {
		return // equivocation: keep the first
	}
	s.prePrepared = true
	s.digest = pp.Digest
	s.payload = append([]byte(nil), pp.Payload...)
	r.sequenced[pp.Digest] = true
	delete(r.pendingForeign, pp.Digest)
	if r.batching() {
		r.markBatchSequenced(pp.Payload)
	}
	if pp.Seq > r.nextSeq {
		r.nextSeq = pp.Seq // keep in sync for future primariness
	}
	prep := Prepare{View: r.view, Seq: pp.Seq, Digest: pp.Digest, Replica: r.cfg.ID}
	r.broadcast(prep)
	r.handlePrepare(prep) // count own vote
}

func (r *Replica) handlePrepare(p Prepare) {
	if p.View != r.view {
		return
	}
	s := r.getSlot(p.Seq)
	if s.prePrepared && s.digest != p.Digest {
		return
	}
	s.prepares[p.Replica] = true
	r.maybeAdvance(p.Seq, s)
}

func (r *Replica) handleCommit(c Commit) {
	if c.View != r.view {
		return
	}
	s := r.getSlot(c.Seq)
	if s.prePrepared && s.digest != c.Digest {
		return
	}
	s.commits[c.Replica] = true
	r.maybeAdvance(c.Seq, s)
}

// maybeAdvance moves a slot through prepared -> committed -> delivered.
func (r *Replica) maybeAdvance(seq uint64, s *slot) {
	if !s.prePrepared {
		return
	}
	if !s.prepared && len(s.prepares) >= r.quorum() {
		s.prepared = true
		if r.cfg.Mode == ModeByzantine {
			c := Commit{View: r.view, Seq: seq, Digest: s.digest, Replica: r.cfg.ID}
			r.broadcast(c)
			s.commits[r.cfg.ID] = true
		}
	}
	if s.prepared {
		switch r.cfg.Mode {
		case ModeCrash:
			s.committed = true
		case ModeByzantine:
			if len(s.commits) >= r.quorum() {
				s.committed = true
			}
		}
	}
	r.deliverReady()
}

// deliverReady delivers committed slots in sequence order.
func (r *Replica) deliverReady() {
	for {
		next := r.lastDelivered + 1
		s, ok := r.slots[next]
		if !ok || !s.committed || s.delivered {
			return
		}
		s.delivered = true
		r.lastDelivered = next
		r.timeoutScale = 0
		r.dropPendingOwn(s.payload)
		delete(r.pendingForeign, s.digest)
		if subs, ok := r.decodeIfBatch(s.payload); ok {
			for _, sub := range subs {
				r.dropPendingOwn(sub)
				delete(r.pendingForeign, digestOf(sub))
			}
			if r.cfg.DeliverBatch != nil {
				r.cfg.DeliverBatch(next, subs)
			} else if r.cfg.Deliver != nil {
				for _, sub := range subs {
					if len(sub) > 0 {
						r.cfg.Deliver(next, sub)
					}
				}
			}
		} else if r.cfg.Deliver != nil && len(s.payload) > 0 {
			r.cfg.Deliver(next, s.payload) // null requests advance the sequence silently
		}
		r.gc()
	}
}

// dropPendingOwn clears a delivered payload from the local retry list.
func (r *Replica) dropPendingOwn(payload []byte) {
	for i, p := range r.pendingOwn {
		if bytes.Equal(p, payload) {
			r.pendingOwn = append(r.pendingOwn[:i], r.pendingOwn[i+1:]...)
			return
		}
	}
}

// gcKeep is how many delivered slots are retained before garbage
// collection (a stand-in for PBFT's checkpoint protocol).
const gcKeep = 128

// gc trims long-delivered slots.
func (r *Replica) gc() {
	if r.lastDelivered < gcKeep {
		return
	}
	cutoff := r.lastDelivered - gcKeep
	for seq := range r.slots {
		if seq <= cutoff && r.slots[seq].delivered {
			delete(r.slots, seq)
		}
	}
}

// armTimer starts the view-change timeout if configured and not running.
func (r *Replica) armTimer() {
	if r.cfg.ViewChangeTimeout <= 0 || r.cfg.Timer == nil || r.timerArmed {
		return
	}
	r.timerArmed = true
	deadline := r.lastDelivered
	timeout := r.cfg.ViewChangeTimeout << min(r.timeoutScale, 8)
	r.cfg.Timer(timeout, func() {
		r.timerArmed = false
		if r.stopped {
			return
		}
		pending := len(r.pendingOwn) > 0 || len(r.pendingForeign) > 0
		// Progress was made: rearm and keep watching.
		if r.lastDelivered > deadline {
			if pending {
				r.armTimer()
			}
			return
		}
		if !pending {
			return
		}
		// Rebroadcast stuck own requests so peers arm their timers and a
		// view-change quorum can form even when only this replica knows
		// about the request; back off exponentially so an overloaded
		// replica does not storm the group.
		r.timeoutScale++
		for _, p := range r.pendingOwn {
			r.broadcast(Request{Origin: r.cfg.ID, Payload: p})
		}
		r.startViewChange(r.view + 1)
	})
}

// startViewChange votes for newView.
func (r *Replica) startViewChange(newView uint64) {
	if newView <= r.view {
		return
	}
	vc := ViewChange{NewView: newView, Replica: r.cfg.ID, Prepared: r.preparedEntries(), LastDelivered: r.lastDelivered}
	r.broadcast(vc)
	r.handleViewChange(vc)
	r.armTimer()
}

// preparedEntries snapshots the undelivered prepared slots.
func (r *Replica) preparedEntries() []PreparedEntry {
	var out []PreparedEntry
	for seq, s := range r.slots {
		if s.prepared && !s.delivered {
			out = append(out, PreparedEntry{Seq: seq, Digest: s.digest, Payload: s.payload})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

func (r *Replica) handleViewChange(vc ViewChange) {
	if vc.NewView <= r.view {
		return
	}
	votes, ok := r.viewChanges[vc.NewView]
	if !ok {
		votes = make(map[ReplicaID]*ViewChange)
		r.viewChanges[vc.NewView] = votes
	}
	votes[vc.Replica] = &vc
	// Join a view change once f+1 peers vote (we are behind).
	if len(votes) > r.f && votes[r.cfg.ID] == nil {
		r.startViewChange(vc.NewView)
		votes = r.viewChanges[vc.NewView]
	}
	if len(votes) >= r.quorum() && r.Primary(vc.NewView) == r.cfg.ID {
		r.becomePrimary(vc.NewView, votes)
	}
}

// becomePrimary installs the new view and re-proposes surviving requests.
func (r *Replica) becomePrimary(view uint64, votes map[ReplicaID]*ViewChange) {
	if view <= r.view {
		return
	}
	r.view = view
	// Merge prepared entries from the quorum, highest seq wins per slot.
	merged := make(map[uint64]PreparedEntry)
	for _, vc := range votes {
		for _, e := range vc.Prepared {
			merged[e.Seq] = e
		}
	}
	// Never sequence below the view-change quorum's delivery watermark: a
	// primary that lags (or lost slots to gc) would otherwise re-assign
	// sequences its peers already delivered — they refuse the conflicting
	// pre-prepare and the view stalls, while replicas equally far behind
	// would accept and deliver diverging content.
	watermark := r.lastDelivered
	for _, vc := range votes {
		if vc.LastDelivered > watermark {
			watermark = vc.LastDelivered
		}
	}
	// The new view's proposals must be gap-free above the watermark:
	// delivery is strictly sequential and nextSeq only moves forward, so a
	// sequence no vote had prepared that sits below a prepared entry would
	// never be re-proposed by anyone and the group would wedge at it
	// forever (a partition can strand a proposal below quorum at exactly
	// such a sequence). Fill the holes with null requests — PBFT's
	// new-view construction — which deliver as empty payloads consumers
	// ignore.
	maxSeq := watermark
	for seq := range merged {
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	var pps []PrePrepare
	for seq := watermark + 1; seq <= maxSeq; seq++ {
		if e, ok := merged[seq]; ok {
			pps = append(pps, PrePrepare{View: view, Seq: seq, Digest: e.Digest, Payload: e.Payload})
		} else {
			pps = append(pps, PrePrepare{View: view, Seq: seq, Digest: digestOf(nil)})
		}
	}
	r.nextSeq = maxSeq
	// Reset per-view slot state for undelivered slots.
	r.resetUndelivered()
	nv := NewView{View: view, PrePrepares: pps}
	r.broadcast(nv)
	r.applyNewView(nv)
	// Re-propose our own stuck submissions not covered by the merge.
	for _, payload := range append([][]byte(nil), r.pendingOwn...) {
		if !coveredByProposals(pps, payload) {
			r.propose(payload)
		}
	}
	r.flushBatch() // don't make re-proposals wait out the batch delay
}

func (r *Replica) handleNewView(from ReplicaID, nv NewView) {
	if nv.View <= r.view || from != r.Primary(nv.View) {
		return
	}
	r.view = nv.View
	r.resetUndelivered()
	r.applyNewView(nv)
	// Resubmit our own pending requests to the new primary.
	for _, payload := range append([][]byte(nil), r.pendingOwn...) {
		if !coveredByProposals(nv.PrePrepares, payload) {
			r.cfg.Transport.Send(r.Primary(r.view), Request{Origin: r.cfg.ID, Payload: payload})
		}
	}
	r.armTimer()
}

// applyNewView processes the new primary's re-proposals.
func (r *Replica) applyNewView(nv NewView) {
	for _, pp := range nv.PrePrepares {
		r.handlePrePrepare(pp)
	}
}

// resetUndelivered clears agreement state of undelivered slots when
// entering a new view (they will be re-proposed, so their digests become
// proposable again). An open batch is abandoned the same way: its members
// survive in pendingOwn (local submissions) or at their origin replicas
// (forwarded requests) and re-enter through the new view's resubmissions.
func (r *Replica) resetUndelivered() {
	for _, p := range r.batchBuf {
		delete(r.sequenced, digestOf(p))
	}
	r.batchBuf = nil
	for seq, s := range r.slots {
		if !s.delivered {
			delete(r.sequenced, s.digest)
			if r.batching() {
				r.unmarkBatchSequenced(s.payload)
			}
			delete(r.slots, seq)
		}
	}
}

// LastDelivered returns the highest contiguously delivered sequence.
func (r *Replica) LastDelivered() uint64 { return r.lastDelivered }

// GapStalled returns how many committed-but-undeliverable slots sit
// above the delivery horizon while the slot directly at the horizon
// cannot commit. Delivery is contiguous, so this is the signature of a
// wedged replica: the group decided slots this replica can see, but the
// agreement traffic for the gap slot was lost and — once peers
// garbage-collect past it — will never be retransmitted. A zero return
// means the horizon either has nothing above it or will advance on its
// own.
func (r *Replica) GapStalled() int {
	next := r.lastDelivered + 1
	if s, ok := r.slots[next]; ok && s.committed {
		return 0 // the horizon is about to move
	}
	stalled := 0
	for seq, s := range r.slots {
		if seq > next && s.committed && !s.delivered {
			stalled++
		}
	}
	return stalled
}

// SyncTo fast-forwards a freshly restarted replica to externally learned
// coordinates: the group's view and the last sequence the caller has
// already applied through state transfer. It is monotonic — stale calls
// are no-ops — and marks the transferred payload digests as sequenced so
// a later primariness does not re-propose them. Slots at or below the new
// delivery horizon are dropped; the group's normal retransmission paths
// (view changes, pending-own rebroadcast) fill anything above it.
func (r *Replica) SyncTo(view, lastDelivered uint64, digests []Digest) {
	if view > r.view {
		r.view = view
		// Stale per-view agreement state from before the jump can never
		// complete; clear it so the digests become proposable in the new
		// view.
		r.resetUndelivered()
	}
	if lastDelivered > r.lastDelivered {
		r.lastDelivered = lastDelivered
		for seq := range r.slots {
			if seq <= lastDelivered {
				delete(r.slots, seq)
			}
		}
	}
	if lastDelivered > r.nextSeq {
		r.nextSeq = lastDelivered
	}
	for _, d := range digests {
		r.sequenced[d] = true
	}
	r.gc()
}
