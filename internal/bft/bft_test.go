package bft

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// cluster is a deterministic in-memory harness: messages go through a FIFO
// queue pumped to completion, and timers fire manually.
type cluster struct {
	t        *testing.T
	replicas map[ReplicaID]*Replica
	queue    []envelope
	crashed  map[ReplicaID]bool
	cut      map[ReplicaID]bool
	timers   []timerEntry
	// delivered[id] is the ordered payload log of each replica.
	delivered map[ReplicaID][][]byte
}

type envelope struct {
	from, to ReplicaID
	msg      Message
}

type timerEntry struct {
	owner ReplicaID
	fn    func()
}

type clusterTransport struct {
	c    *cluster
	self ReplicaID
}

func (tr *clusterTransport) Send(to ReplicaID, msg Message) {
	tr.c.queue = append(tr.c.queue, envelope{from: tr.self, to: to, msg: msg})
}

func newCluster(t *testing.T, mode Mode, n int, timeout time.Duration) *cluster {
	t.Helper()
	c := &cluster{
		t:         t,
		replicas:  make(map[ReplicaID]*Replica),
		crashed:   make(map[ReplicaID]bool),
		cut:       make(map[ReplicaID]bool),
		delivered: make(map[ReplicaID][][]byte),
	}
	ids := make([]ReplicaID, n)
	for i := range ids {
		ids[i] = ReplicaID(i + 1)
	}
	for _, id := range ids {
		id := id
		cfg := Config{
			ID:        id,
			Replicas:  ids,
			Mode:      mode,
			Transport: &clusterTransport{c: c, self: id},
			Timer: func(d time.Duration, fn func()) {
				c.timers = append(c.timers, timerEntry{owner: id, fn: fn})
			},
			Deliver: func(seq uint64, payload []byte) {
				c.delivered[id] = append(c.delivered[id], append([]byte(nil), payload...))
			},
			ViewChangeTimeout: timeout,
		}
		r, err := NewReplica(cfg)
		if err != nil {
			t.Fatalf("NewReplica(%d): %v", id, err)
		}
		c.replicas[id] = r
	}
	return c
}

// pump processes queued messages until quiescence.
func (c *cluster) pump() {
	for steps := 0; len(c.queue) > 0; steps++ {
		if steps > 1_000_000 {
			c.t.Fatal("message pump did not quiesce")
		}
		env := c.queue[0]
		c.queue = c.queue[1:]
		if c.crashed[env.to] || c.cut[env.to] || c.cut[env.from] {
			continue
		}
		c.replicas[env.to].Handle(env.from, env.msg)
	}
}

// fireTimers fires all currently armed timers once, then pumps.
func (c *cluster) fireTimers() {
	timers := c.timers
	c.timers = nil
	for _, te := range timers {
		if !c.crashed[te.owner] {
			te.fn()
		}
	}
	c.pump()
}

// isolate partitions a replica away from the group (or heals it). Unlike
// crash, the replica stays alive and keeps its state.
func (c *cluster) isolate(id ReplicaID, cut bool) {
	c.cut[id] = cut
}

// crash fails a replica.
func (c *cluster) crash(id ReplicaID) {
	c.crashed[id] = true
	c.replicas[id].Stop()
}

// checkAgreement verifies every live replica delivered the same sequence.
func (c *cluster) checkAgreement(wantLen int) {
	c.t.Helper()
	var ref [][]byte
	var refID ReplicaID
	for id, r := range c.replicas {
		if c.crashed[id] {
			continue
		}
		_ = r
		log := c.delivered[id]
		if ref == nil {
			ref = log
			refID = id
			continue
		}
		if len(log) != len(ref) {
			c.t.Fatalf("replica %d delivered %d, replica %d delivered %d", id, len(log), refID, len(ref))
		}
		for i := range log {
			if !bytes.Equal(log[i], ref[i]) {
				c.t.Fatalf("order divergence at %d: replica %d=%q, replica %d=%q",
					i, id, log[i], refID, ref[i])
			}
		}
	}
	if wantLen >= 0 && len(ref) != wantLen {
		c.t.Fatalf("delivered %d payloads, want %d", len(ref), wantLen)
	}
}

func TestByzantineTotalOrder(t *testing.T) {
	c := newCluster(t, ModeByzantine, 4, 0)
	for i := 0; i < 20; i++ {
		// Submit from rotating replicas, including non-primaries.
		id := ReplicaID(i%4 + 1)
		c.replicas[id].Submit([]byte(fmt.Sprintf("event-%d", i)))
		c.pump()
	}
	c.checkAgreement(20)
}

func TestCrashModeTotalOrder(t *testing.T) {
	c := newCluster(t, ModeCrash, 3, 0)
	for i := 0; i < 10; i++ {
		c.replicas[ReplicaID(i%3+1)].Submit([]byte(fmt.Sprintf("e%d", i)))
		c.pump()
	}
	c.checkAgreement(10)
}

func TestConcurrentSubmissions(t *testing.T) {
	c := newCluster(t, ModeByzantine, 4, 0)
	// Submit a burst before any pumping: orders must still agree.
	for i := 0; i < 12; i++ {
		c.replicas[ReplicaID(i%4+1)].Submit([]byte(fmt.Sprintf("burst-%d", i)))
	}
	c.pump()
	c.checkAgreement(12)
}

func TestMinorityCrashStillProgresses(t *testing.T) {
	c := newCluster(t, ModeByzantine, 4, 0)
	c.crash(2) // not the primary (primary of view 0 is replica 1)
	for i := 0; i < 5; i++ {
		c.replicas[1].Submit([]byte(fmt.Sprintf("e%d", i)))
		c.pump()
	}
	c.checkAgreement(5)
}

func TestPrimaryCrashTriggersViewChange(t *testing.T) {
	c := newCluster(t, ModeByzantine, 4, time.Second)
	// Deliver one normally.
	c.replicas[1].Submit([]byte("pre"))
	c.pump()
	// Crash the primary, then a non-primary submits.
	c.crash(1)
	c.replicas[2].Submit([]byte("post"))
	c.pump() // request to dead primary: no progress
	if got := len(c.delivered[2]); got != 1 {
		t.Fatalf("unexpected progress before view change: %d", got)
	}
	// Fire the view-change timers; may need a couple of rounds for
	// join-on-f+1 and the new primary's takeover.
	for i := 0; i < 4 && len(c.delivered[2]) < 2; i++ {
		c.fireTimers()
	}
	c.checkAgreement(2)
	if v := c.replicas[2].View(); v == 0 {
		t.Fatal("view did not advance")
	}
	if !bytes.Equal(c.delivered[2][1], []byte("post")) {
		t.Fatalf("wrong payload after view change: %q", c.delivered[2][1])
	}
}

func TestPrimaryCrashCrashMode(t *testing.T) {
	c := newCluster(t, ModeCrash, 3, time.Second)
	c.replicas[1].Submit([]byte("a"))
	c.pump()
	c.crash(1)
	c.replicas[3].Submit([]byte("b"))
	c.pump()
	for i := 0; i < 4 && len(c.delivered[3]) < 2; i++ {
		c.fireTimers()
	}
	c.checkAgreement(2)
}

// equivocatingTransport lets a Byzantine primary send per-destination
// payloads for the same sequence number.
func TestEquivocatingPrimaryCannotSplitOrder(t *testing.T) {
	c := newCluster(t, ModeByzantine, 4, time.Second)
	evil := c.replicas[1] // primary of view 0
	// Deliver a normal request first so everyone is in sync.
	evil.Submit([]byte("honest"))
	c.pump()
	// The evil primary equivocates on seq 2: different payloads to
	// different replicas, crafted directly on the wire.
	a := []byte("pay-alpha")
	b := []byte("pay-beta")
	c.queue = append(c.queue,
		envelope{from: 1, to: 2, msg: PrePrepare{View: 0, Seq: 2, Digest: digestOf(a), Payload: a}},
		envelope{from: 1, to: 3, msg: PrePrepare{View: 0, Seq: 2, Digest: digestOf(a), Payload: a}},
		envelope{from: 1, to: 4, msg: PrePrepare{View: 0, Seq: 2, Digest: digestOf(b), Payload: b}},
	)
	c.pump()
	// Safety: no two correct replicas may deliver different payloads at
	// the same position, whatever liveness outcome occurs.
	c.checkAgreement(-1)
	for _, id := range []ReplicaID{2, 3, 4} {
		for i, p := range c.delivered[id] {
			if i == 1 && bytes.Equal(p, b) && bytes.Equal(c.delivered[2][1], a) {
				t.Fatal("split delivery")
			}
		}
	}
}

// TestViewChangeFillsSequenceGaps reproduces a partition stranding the
// primary's first proposals below the prepare quorum: later proposals
// prepare at higher sequence numbers, gap-free delivery wedges below them,
// and no replica would ever re-propose the stranded sequences (nextSeq only
// moves forward). The next view's primary must fill the uncovered sequences
// with null requests — which advance delivery silently — or the group
// wedges forever.
func TestViewChangeFillsSequenceGaps(t *testing.T) {
	c := newCluster(t, ModeByzantine, 4, 50*time.Millisecond)
	// Partition replicas 3 and 4 away; seqs 1-2 reach only replica 2 and
	// stall at two prepares, one short of the quorum.
	c.isolate(3, true)
	c.isolate(4, true)
	c.replicas[1].Submit([]byte("a"))
	c.replicas[1].Submit([]byte("b"))
	c.pump()
	// Heal the partition. The next proposal takes seq 3 and prepares (and
	// commits) everywhere, but nothing can deliver across the gap at 1-2.
	c.isolate(3, false)
	c.isolate(4, false)
	c.replicas[1].Submit([]byte("c"))
	c.pump()
	for id := range c.replicas {
		if n := len(c.delivered[id]); n != 0 {
			t.Fatalf("replica %d delivered %d payloads across the sequence gap", id, n)
		}
	}
	// First timeout: the stuck submitter rebroadcasts its requests (arming
	// the peers' timers) and votes for a view change. Second timeout: the
	// peers vote too, the quorum forms, and the new primary re-proposes the
	// surviving seq-3 entry behind null requests for seqs 1-2. The stranded
	// payloads then resubmit through the normal request path.
	c.fireTimers()
	c.fireTimers()
	c.checkAgreement(3)
	if !bytes.Equal(c.delivered[2][0], []byte("c")) {
		t.Fatalf("first delivery %q, want the prepared entry %q", c.delivered[2][0], "c")
	}
}

func TestDeliverInSequenceDespiteReordering(t *testing.T) {
	// Feed commits/prepares for seq 2 before seq 1 completes: delivery
	// must remain in order. We simulate by submitting two payloads and
	// pumping only at the end (the FIFO still respects send order, so we
	// reverse part of the queue to force reordering).
	c := newCluster(t, ModeByzantine, 4, 0)
	c.replicas[1].Submit([]byte("first"))
	c.replicas[1].Submit([]byte("second"))
	// Reverse the queued messages to maximize disorder.
	for i, j := 0, len(c.queue)-1; i < j; i, j = i+1, j-1 {
		c.queue[i], c.queue[j] = c.queue[j], c.queue[i]
	}
	c.pump()
	c.checkAgreement(2)
	if !bytes.Equal(c.delivered[2][0], []byte("first")) {
		t.Fatalf("out-of-order delivery: %q first", c.delivered[2][0])
	}
}

func TestGCKeepsSlotMapBounded(t *testing.T) {
	c := newCluster(t, ModeCrash, 3, 0)
	for i := 0; i < 400; i++ {
		c.replicas[1].Submit([]byte(fmt.Sprintf("gc-%d", i)))
		c.pump()
	}
	c.checkAgreement(400)
	for id, r := range c.replicas {
		if len(r.slots) > gcKeep+8 {
			t.Fatalf("replica %d retains %d slots, want <= %d", id, len(r.slots), gcKeep+8)
		}
	}
}

func TestNewReplicaValidation(t *testing.T) {
	tr := &clusterTransport{}
	if _, err := NewReplica(Config{ID: 1, Replicas: []ReplicaID{1, 2, 3}, Mode: ModeByzantine, Transport: tr}); !errors.Is(err, ErrNotEnoughReplicas) {
		t.Errorf("n=3 byzantine: expected ErrNotEnoughReplicas, got %v", err)
	}
	if _, err := NewReplica(Config{ID: 1, Replicas: []ReplicaID{1}, Mode: ModeCrash, Transport: tr}); !errors.Is(err, ErrNotEnoughReplicas) {
		t.Errorf("n=1 crash: expected ErrNotEnoughReplicas, got %v", err)
	}
	if _, err := NewReplica(Config{ID: 9, Replicas: []ReplicaID{1, 2, 3, 4}, Mode: ModeByzantine, Transport: tr}); !errors.Is(err, ErrUnknownReplica) {
		t.Errorf("expected ErrUnknownReplica, got %v", err)
	}
	if _, err := NewReplica(Config{ID: 1, Replicas: []ReplicaID{1, 2, 3, 4}, Mode: 0, Transport: tr}); err == nil {
		t.Error("invalid mode accepted")
	}
}

func TestFaultToleranceThresholds(t *testing.T) {
	for _, tc := range []struct {
		mode Mode
		n, f int
	}{
		{ModeByzantine, 4, 1},
		{ModeByzantine, 7, 2},
		{ModeByzantine, 10, 3},
		{ModeCrash, 3, 1},
		{ModeCrash, 5, 2},
	} {
		ids := make([]ReplicaID, tc.n)
		for i := range ids {
			ids[i] = ReplicaID(i + 1)
		}
		r, err := NewReplica(Config{ID: 1, Replicas: ids, Mode: tc.mode, Transport: &clusterTransport{}})
		if err != nil {
			t.Fatalf("NewReplica: %v", err)
		}
		if r.F() != tc.f {
			t.Errorf("mode=%v n=%d: F=%d, want %d", tc.mode, tc.n, r.F(), tc.f)
		}
	}
}

func TestLargerGroups(t *testing.T) {
	for _, n := range []int{7, 10} {
		c := newCluster(t, ModeByzantine, n, 0)
		for i := 0; i < 8; i++ {
			c.replicas[ReplicaID(i%n+1)].Submit([]byte(fmt.Sprintf("e%d", i)))
			c.pump()
		}
		c.checkAgreement(8)
	}
}

func BenchmarkByzantineAgreement4(b *testing.B) {
	ids := []ReplicaID{1, 2, 3, 4}
	delivered := 0
	var queue []envelope
	replicas := make(map[ReplicaID]*Replica)
	for _, id := range ids {
		id := id
		r, err := NewReplica(Config{
			ID: id, Replicas: ids, Mode: ModeByzantine,
			Transport: transportFunc(func(to ReplicaID, msg Message) {
				queue = append(queue, envelope{from: id, to: to, msg: msg})
			}),
			Deliver: func(seq uint64, payload []byte) { delivered++ },
		})
		if err != nil {
			b.Fatal(err)
		}
		replicas[id] = r
	}
	pump := func() {
		for len(queue) > 0 {
			env := queue[0]
			queue = queue[1:]
			replicas[env.to].Handle(env.from, env.msg)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Unique payloads: identical ones are (correctly) deduplicated by
		// digest at the primary.
		replicas[1].Submit([]byte(fmt.Sprintf("payload-%d", i)))
		pump()
	}
	if delivered != 4*b.N {
		b.Fatalf("delivered %d, want %d", delivered, 4*b.N)
	}
}

type transportFunc func(to ReplicaID, msg Message)

func (f transportFunc) Send(to ReplicaID, msg Message) { f(to, msg) }
