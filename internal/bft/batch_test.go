package bft

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// batchCluster wraps the deterministic cluster with batched ordering: every
// replica runs BatchSize > 1 and records both the flattened payload log
// (comparable with checkAgreement) and the batch boundaries.
func newBatchCluster(t *testing.T, n, batchSize int, timeout time.Duration) (*cluster, map[ReplicaID][]int) {
	t.Helper()
	c := newCluster(t, ModeByzantine, n, timeout)
	batches := make(map[ReplicaID][]int)
	for id, r := range c.replicas {
		id := id
		r.cfg.BatchSize = batchSize
		r.cfg.DeliverBatch = func(seq uint64, payloads [][]byte) {
			batches[id] = append(batches[id], len(payloads))
			for _, p := range payloads {
				c.delivered[id] = append(c.delivered[id], append([]byte(nil), p...))
			}
		}
	}
	return c, batches
}

// TestBatchEncodeDecode round-trips containers and rejects everything else.
func TestBatchEncodeDecode(t *testing.T) {
	cases := [][][]byte{
		{[]byte("a")},
		{[]byte("a"), []byte("bb"), []byte("ccc")},
		{[]byte(""), []byte("x")}, // empty member survives
	}
	for _, payloads := range cases {
		enc := EncodeBatch(payloads)
		dec, ok := DecodeBatch(enc)
		if !ok || len(dec) != len(payloads) {
			t.Fatalf("round trip failed for %d payloads", len(payloads))
		}
		for i := range payloads {
			if !bytes.Equal(dec[i], payloads[i]) {
				t.Fatalf("payload %d corrupted", i)
			}
		}
	}
	for _, bad := range [][]byte{
		nil,
		[]byte("{}"),                           // application payload
		[]byte("\x00cbatch1"),                  // magic with no count
		EncodeBatch(nil),                       // zero-payload container
		EncodeBatch([][]byte{[]byte("a")})[:9], // truncated
		append(EncodeBatch([][]byte{[]byte("a")}), 0x7), // trailing bytes
	} {
		if _, ok := DecodeBatch(bad); ok {
			t.Fatalf("malformed container %q accepted", bad)
		}
	}
}

// TestBatchedTotalOrder pushes enough traffic through a batched group to
// close several size-bounded batches and checks every replica delivers the
// same payloads in the same order with fewer agreement slots than payloads.
func TestBatchedTotalOrder(t *testing.T) {
	const n, batchSize, total = 4, 8, 20
	c, batches := newBatchCluster(t, n, batchSize, 0)
	for i := 0; i < total; i++ {
		c.replicas[ReplicaID(i%n+1)].Submit([]byte(fmt.Sprintf("payload-%02d", i)))
	}
	c.pump()
	c.fireTimers() // delay-bound flush for the final partial batch
	c.checkAgreement(total)
	for id, sizes := range batches {
		got := 0
		for _, s := range sizes {
			if s > batchSize {
				t.Fatalf("replica %d saw a batch of %d > BatchSize %d", id, s, batchSize)
			}
			got += s
		}
		if got != total {
			t.Fatalf("replica %d delivered %d payloads via batches, want %d", id, got, total)
		}
		if len(sizes) >= total {
			t.Fatalf("replica %d used %d slots for %d payloads — no amortization", id, len(sizes), total)
		}
	}
}

// TestBatchDelayFlush checks a partial batch does not wait for the size
// bound: the delay timer closes it.
func TestBatchDelayFlush(t *testing.T) {
	c, batches := newBatchCluster(t, 4, 64, 0)
	for i := 0; i < 5; i++ {
		c.replicas[1].Submit([]byte(fmt.Sprintf("sparse-%d", i)))
	}
	c.pump()
	if len(c.delivered[1]) != 0 {
		t.Fatalf("partial batch delivered before the delay bound: %d payloads", len(c.delivered[1]))
	}
	c.fireTimers()
	c.checkAgreement(5)
	if got := batches[1]; len(got) != 1 || got[0] != 5 {
		t.Fatalf("want one 5-payload batch, got %v", got)
	}
}

// TestBatchDedup checks retransmitted requests do not enter a batch twice,
// whether the duplicate arrives while buffered or after delivery.
func TestBatchDedup(t *testing.T) {
	c, _ := newBatchCluster(t, 4, 64, 0)
	c.replicas[1].Submit([]byte("once"))
	c.replicas[1].Handle(2, Request{Origin: 2, Payload: []byte("once")}) // duplicate while buffered
	c.pump()
	c.fireTimers()
	c.checkAgreement(1)
	c.replicas[1].Handle(3, Request{Origin: 3, Payload: []byte("once")}) // duplicate after delivery
	c.pump()
	c.fireTimers()
	c.checkAgreement(1)
}

// TestBatchSurvivesViewChange crashes the primary while payloads are
// buffered in its open batch and in flight; the view change must re-propose
// them so nothing is lost.
func TestBatchSurvivesViewChange(t *testing.T) {
	c, _ := newBatchCluster(t, 4, 64, 50*time.Millisecond)
	c.replicas[2].Submit([]byte("survivor-a"))
	c.replicas[3].Submit([]byte("survivor-b"))
	c.pump() // requests reach the primary and sit in its open batch
	c.crash(1)
	for i := 0; i < 4; i++ {
		c.fireTimers() // view-change timeout, then the new primary's flush
	}
	c.checkAgreement(2)
}

// TestBatchOneMatchesUnbatched checks BatchSize=1 leaves the protocol on
// the legacy path: identical delivery log, one slot per payload, and no
// batch containers on the wire.
func TestBatchOneMatchesUnbatched(t *testing.T) {
	const n, total = 4, 9
	run := func(batchSize int) [][]byte {
		c := newCluster(t, ModeByzantine, n, 0)
		for _, r := range c.replicas {
			r.cfg.BatchSize = batchSize
		}
		for i := 0; i < total; i++ {
			c.replicas[ReplicaID(i%n+1)].Submit([]byte(fmt.Sprintf("eq-%02d", i)))
		}
		c.pump()
		c.fireTimers()
		c.checkAgreement(total)
		return c.delivered[1]
	}
	legacy, one := run(0), run(1)
	if len(legacy) != len(one) {
		t.Fatalf("BatchSize=1 delivered %d, legacy %d", len(one), len(legacy))
	}
	for i := range legacy {
		if !bytes.Equal(legacy[i], one[i]) {
			t.Fatalf("divergence at %d: %q vs %q", i, legacy[i], one[i])
		}
	}
}

// TestBatchedMatchesUnbatchedOrder checks batching changes slot packing but
// not the delivered payload order for a single-submitter stream.
func TestBatchedMatchesUnbatchedOrder(t *testing.T) {
	const total = 12
	run := func(batchSize int) [][]byte {
		var c *cluster
		if batchSize > 1 {
			c, _ = newBatchCluster(t, 4, batchSize, 0)
		} else {
			c = newCluster(t, ModeByzantine, 4, 0)
		}
		for i := 0; i < total; i++ {
			c.replicas[2].Submit([]byte(fmt.Sprintf("ord-%02d", i)))
		}
		c.pump()
		c.fireTimers()
		c.checkAgreement(total)
		return c.delivered[3]
	}
	unbatched, batched := run(1), run(4)
	for i := range unbatched {
		if !bytes.Equal(unbatched[i], batched[i]) {
			t.Fatalf("order divergence at %d: %q vs %q", i, unbatched[i], batched[i])
		}
	}
}
