// Package synthesis derives provably consistent network update plans from
// an old/new configuration pair, in the spirit of McClurg et al.'s
// "Efficient Synthesis of Network Updates": it searches for a dependency
// ordering of the individual flow-table updates such that every
// intermediate state satisfies the requested data-plane properties
// (internal/netprop), and falls back to an explicit two-phase
// break-before-make schedule when no single-phase order exists. Every plan
// is certified by per-node local verification (netprop.LocalVerify) before
// it is handed to the scheduler/execution pipeline, and every rejection
// carries a counterexample.
package synthesis

import (
	"fmt"
	"sort"

	"cicero/internal/netprop"
	"cicero/internal/openflow"
	"cicero/internal/topology"
)

// Scenario is one synthesis problem: a topology with hosts, an old and a
// new data-plane configuration (per-switch rule sets), and the property
// set both endpoint configurations must satisfy.
type Scenario struct {
	// Name tags the scenario; it becomes the update origin prefix when the
	// plan is executed through the protocol pipeline.
	Name string
	// Graph is the network topology. Every non-host node owns a flow table
	// (possibly empty).
	Graph *topology.Graph
	// Hosts is the set of end hosts (walk terminals).
	Hosts map[string]bool
	// Old and New map switch ID to its installed rules.
	Old map[string][]openflow.Rule
	New map[string][]openflow.Rule
	// Props are the properties — beyond the always-on walk invariants —
	// that old, new, and every intermediate state must satisfy.
	Props netprop.Properties
}

// Switches returns the scenario's switch IDs, sorted.
func (s *Scenario) Switches() []string {
	var out []string
	for _, n := range s.Graph.Nodes() {
		if n.Kind != topology.KindHost {
			out = append(out, n.ID)
		}
	}
	sort.Strings(out)
	return out
}

// tablesFrom builds one flow table per switch from a rule map. Switches
// absent from the map get empty tables (present but ruleless — a miss
// there is a blackhole, not an unknown node).
func tablesFrom(switches []string, rules map[string][]openflow.Rule) map[string]*openflow.FlowTable {
	tables := make(map[string]*openflow.FlowTable, len(switches))
	for _, sw := range switches {
		t := openflow.NewFlowTable()
		for _, r := range rules[sw] {
			t.Add(r)
		}
		tables[sw] = t
	}
	return tables
}

// TablesOld materializes the old configuration as flow tables.
func (s *Scenario) TablesOld() map[string]*openflow.FlowTable {
	return tablesFrom(s.Switches(), s.Old)
}

// TablesNew materializes the new configuration as flow tables.
func (s *Scenario) TablesNew() map[string]*openflow.FlowTable {
	return tablesFrom(s.Switches(), s.New)
}

// cloneTables deep-copies a table map for scratch mutation.
func cloneTables(tables map[string]*openflow.FlowTable) map[string]*openflow.FlowTable {
	out := make(map[string]*openflow.FlowTable, len(tables))
	for sw, t := range tables {
		nt := openflow.NewFlowTable()
		for _, r := range t.Rules() {
			nt.Add(r)
		}
		out[sw] = nt
	}
	return out
}

// ruleKey identifies a rule slot within one switch's table: Add replaces
// on identical (priority, match), so this is the unit of change.
type ruleKey struct {
	priority int
	match    openflow.Match
}

// Rejection explains why Synthesize refused a scenario. It always carries
// a counterexample: either the violations of a concrete reachable state
// (Violations) or the offending rule/update (Evidence).
type Rejection struct {
	// Stage names the phase that rejected: "validate", "diff", "order",
	// "teardown", or "install".
	Stage string
	// Reason is a one-line human explanation.
	Reason string
	// Evidence pinpoints the offending rule, update, or state.
	Evidence string
	// Violations are the property violations of the counterexample state,
	// when the rejection is property-driven.
	Violations []netprop.Violation
}

// Error implements error.
func (r *Rejection) Error() string {
	msg := fmt.Sprintf("synthesis rejected (%s): %s", r.Stage, r.Reason)
	if r.Evidence != "" {
		msg += " [" + r.Evidence + "]"
	}
	if len(r.Violations) > 0 {
		msg += fmt.Sprintf(" (%d violations, first: %s)", len(r.Violations), r.Violations[0])
	}
	return msg
}

// Counterexample renders the rejection's counterexample for reports.
func (r *Rejection) Counterexample() string {
	if len(r.Violations) > 0 {
		return r.Violations[0].String()
	}
	return r.Evidence
}

// validate rejects scenarios the engine cannot reason about: rules with
// zero cookies (deletes would be ambiguous), duplicate (priority, match)
// slots within one config, equal-priority rules with overlapping matches
// on one switch (lookup would depend on insertion order), and endpoint
// configurations that already violate the properties.
func validate(s *Scenario) *Rejection {
	if s.Graph == nil {
		return &Rejection{Stage: "validate", Reason: "scenario has no topology graph", Evidence: "Graph == nil"}
	}
	for _, side := range []struct {
		name  string
		rules map[string][]openflow.Rule
	}{{"old", s.Old}, {"new", s.New}} {
		for sw, rules := range side.rules {
			slots := make(map[ruleKey]bool, len(rules))
			for _, r := range rules {
				if r.Cookie == 0 {
					return &Rejection{Stage: "validate",
						Reason:   "rule without a cookie: deletes would be ambiguous",
						Evidence: fmt.Sprintf("%s config, switch %s, rule %v", side.name, sw, r)}
				}
				k := ruleKey{r.Priority, r.Match}
				if slots[k] {
					return &Rejection{Stage: "validate",
						Reason:   "duplicate (priority, match) slot in one config",
						Evidence: fmt.Sprintf("%s config, switch %s, slot prio=%d match=%v", side.name, sw, r.Priority, r.Match)}
				}
				slots[k] = true
			}
			for i := range rules {
				for j := i + 1; j < len(rules); j++ {
					a, b := rules[i], rules[j]
					if a.Priority == b.Priority && matchesOverlap(a.Match, b.Match) {
						return &Rejection{Stage: "validate",
							Reason:   "equal-priority overlapping rules: lookup would depend on insertion order",
							Evidence: fmt.Sprintf("%s config, switch %s, rules %v and %v", side.name, sw, a, b)}
					}
				}
			}
		}
	}
	for _, side := range []struct {
		name   string
		tables map[string]*openflow.FlowTable
	}{{"old", s.TablesOld()}, {"new", s.TablesNew()}} {
		if v := netprop.Check(side.tables, s.Hosts, s.Props); len(v) > 0 {
			return &Rejection{Stage: "validate",
				Reason:     fmt.Sprintf("%s configuration violates the property set", side.name),
				Violations: v}
		}
	}
	return nil
}

// matchesOverlap reports whether two matches cover a common packet.
func matchesOverlap(a, b openflow.Match) bool {
	srcOK := a.Src == openflow.Wildcard || b.Src == openflow.Wildcard || a.Src == b.Src
	dstOK := a.Dst == openflow.Wildcard || b.Dst == openflow.Wildcard || a.Dst == b.Dst
	return srcOK && dstOK
}

// probeOf returns the concrete (src, dst) probe pair used to walk a rule's
// flow, mirroring the walker's wildcard handling.
func probeOf(r openflow.Rule) (string, string) {
	src := r.Match.Src
	if src == openflow.Wildcard {
		src = netprop.ProbeSrc
	}
	return src, r.Match.Dst
}
