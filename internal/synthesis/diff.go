package synthesis

import (
	"fmt"
	"sort"

	"cicero/internal/openflow"
)

// op is one atomic table change in a candidate plan. Mod is the FlowMod as
// executed; Old is the old-config rule the op displaces — the delete
// target, or the previous occupant of a replaced (priority, match) slot —
// and is nil for a pure add.
type op struct {
	Mod openflow.FlowMod
	Old *openflow.Rule
}

// probe returns the concrete walk probe of the op's flow.
func (o op) probe() (string, string) { return probeOf(o.Mod.Rule) }

// String renders the op for reports.
func (o op) String() string {
	kind := "add"
	if o.Mod.Op == openflow.FlowDelete {
		kind = "del"
	} else if o.Old != nil {
		kind = "replace"
	}
	return fmt.Sprintf("%s@%s prio=%d match=%s->%s next=%s", kind, o.Mod.Switch,
		o.Mod.Rule.Priority, o.Mod.Rule.Match.Src, o.Mod.Rule.Match.Dst, o.Mod.Rule.Action.NextHop)
}

// exactDelete verifies a FlowDelete removes exactly its target rule:
// FlowTable.Delete removes every rule whose match the delete's match
// subsumes (filtered by cookie), so any other old- or new-config rule on
// the switch that the delete could collaterally hit makes the plan's
// semantics ambiguous.
func exactDelete(s *Scenario, sw string, target openflow.Rule) *Rejection {
	for _, side := range [][]openflow.Rule{s.Old[sw], s.New[sw]} {
		for _, r := range side {
			if r == target {
				continue
			}
			if subsumes(target.Match, r.Match) && target.Cookie == r.Cookie {
				return &Rejection{Stage: "diff",
					Reason:   "ambiguous delete: match+cookie would also remove another rule",
					Evidence: fmt.Sprintf("switch %s, delete %v would hit %v", sw, target, r)}
			}
		}
	}
	return nil
}

// subsumes reports whether outer covers every packet inner covers
// (mirrors the flow table's delete semantics).
func subsumes(outer, inner openflow.Match) bool {
	srcOK := outer.Src == openflow.Wildcard || outer.Src == inner.Src
	dstOK := outer.Dst == openflow.Wildcard || outer.Dst == inner.Dst
	return srcOK && dstOK
}

// diffOps computes the update set transforming Old into New: per switch,
// a rule slot — (priority, match) — present only in Old becomes a delete,
// present only in New becomes an add, and present in both with a changed
// action or cookie becomes a replace (a single Add, atomic at the switch).
// The op order is deterministic: switches sorted, then the config's own
// rule order.
func diffOps(s *Scenario) ([]op, *Rejection) {
	switches := map[string]bool{}
	for sw := range s.Old {
		switches[sw] = true
	}
	for sw := range s.New {
		switches[sw] = true
	}
	ids := make([]string, 0, len(switches))
	for sw := range switches {
		ids = append(ids, sw)
	}
	sort.Strings(ids)

	var ops []op
	for _, sw := range ids {
		oldByKey := make(map[ruleKey]openflow.Rule, len(s.Old[sw]))
		newByKey := make(map[ruleKey]openflow.Rule, len(s.New[sw]))
		for _, r := range s.Old[sw] {
			oldByKey[ruleKey{r.Priority, r.Match}] = r
		}
		for _, r := range s.New[sw] {
			newByKey[ruleKey{r.Priority, r.Match}] = r
		}
		// Adds and replaces, in new-config rule order.
		for _, nr := range s.New[sw] {
			k := ruleKey{nr.Priority, nr.Match}
			if or, ok := oldByKey[k]; ok {
				if or == nr {
					continue // unchanged
				}
				old := or
				ops = append(ops, op{Mod: openflow.FlowMod{Op: openflow.FlowAdd, Switch: sw, Rule: nr}, Old: &old})
				continue
			}
			ops = append(ops, op{Mod: openflow.FlowMod{Op: openflow.FlowAdd, Switch: sw, Rule: nr}})
		}
		// Deletes, in old-config rule order.
		for _, or := range s.Old[sw] {
			if _, ok := newByKey[ruleKey{or.Priority, or.Match}]; ok {
				continue
			}
			if rej := exactDelete(s, sw, or); rej != nil {
				return nil, rej
			}
			old := or
			ops = append(ops, op{Mod: openflow.FlowMod{Op: openflow.FlowDelete, Switch: sw, Rule: or}, Old: &old})
		}
	}
	return ops, nil
}

// interactionClasses groups ops into packet classes by match overlap
// (union-find, transitive): two ops whose matches can cover a common
// packet may appear on the same forwarding walk and must be ordered
// relative to each other; ops in different classes are provably
// independent — no lookup for one class's probes ever returns another
// class's rules. Classes come back as ascending op-index slices, ordered
// by their smallest member.
func interactionClasses(ops []op) [][]int {
	parent := make([]int, len(ops))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for i := 0; i < len(ops); i++ {
		for j := i + 1; j < len(ops); j++ {
			if matchesOverlap(ops[i].Mod.Rule.Match, ops[j].Mod.Rule.Match) {
				union(i, j)
			}
		}
	}
	groups := map[int][]int{}
	for i := range ops {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(a, b int) bool { return groups[roots[a]][0] < groups[roots[b]][0] })
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		sort.Ints(groups[r])
		out = append(out, groups[r])
	}
	return out
}
