package synthesis

import (
	"fmt"
	"math/rand"
	"time"

	"cicero/internal/netprop"
	"cicero/internal/openflow"
	"cicero/internal/topology"
)

// Generate builds a randomized synthesis scenario for the seed and
// synthesizes its plan. It deterministically retries sub-seeds until the
// scenario validates, synthesizes, and the bad-ordering canary is
// plantable, so every returned (scenario, plan, canary-seed) triple is
// usable by construction — the sweep then re-verifies everything
// independently. The scenario is a link-failure reroute: a random
// ring-with-chords topology, a handful of host-to-host flows routed along
// shortest paths (half pair-matched, half wildcard-source), a failed link
// forcing some flows onto new paths, and waypoint-chain policies drawn
// from the switches the old and new paths share; a fraction of seeds
// additionally carry a waypoint-detour swap that provably requires the
// two-phase fallback.
func Generate(seed int64) (*Scenario, *Plan, error) {
	for attempt := int64(0); attempt < 64; attempt++ {
		scn, ok := generateOnce(seed*1009 + attempt)
		if !ok {
			continue
		}
		plan, err := Synthesize(scn)
		if err != nil {
			continue
		}
		if len(plan.Updates) == 0 {
			continue
		}
		if _, _, ok := PlantBadOrdering(scn, plan, seed); !ok {
			continue
		}
		return scn, plan, nil
	}
	return nil, nil, fmt.Errorf("seed %d: no synthesizable scenario in 64 attempts", seed)
}

// generateOnce builds one candidate scenario; ok=false on degenerate
// draws (unreachable flows, paths too short to update).
func generateOnce(subseed int64) (*Scenario, bool) {
	rng := rand.New(rand.NewSource(subseed))
	g := topology.NewGraph()

	// Ring of switches with random chords.
	nSw := 4 + rng.Intn(5)
	sw := make([]string, nSw)
	for i := range sw {
		sw[i] = fmt.Sprintf("s%d", i)
		g.AddNode(topology.Node{ID: sw[i], Kind: topology.KindEdge})
	}
	link := func(a, b string) { _ = g.AddLink(a, b, time.Duration(50+rng.Intn(200))*time.Microsecond, 10) }
	for i := range sw {
		link(sw[i], sw[(i+1)%nSw])
	}
	for c := 0; c < nSw/2; c++ {
		a, b := rng.Intn(nSw), rng.Intn(nSw)
		if a != b {
			link(sw[a], sw[b])
		}
	}

	// Hosts, one switch each (switches may host several).
	nHosts := 3 + rng.Intn(3)
	hosts := make(map[string]bool, nHosts)
	hostSw := make(map[string]string, nHosts)
	var hostIDs []string
	for i := 0; i < nHosts; i++ {
		h := fmt.Sprintf("h%d", i)
		g.AddNode(topology.Node{ID: h, Kind: topology.KindHost})
		s := sw[rng.Intn(nSw)]
		link(h, s)
		hosts[h] = true
		hostSw[h] = s
		hostIDs = append(hostIDs, h)
	}

	// Flows with pairwise-distinct destinations.
	type flow struct {
		src, dst string
		wildcard bool
		prio     int
	}
	nFlows := 2 + rng.Intn(3)
	if nFlows > nHosts-1 {
		nFlows = nHosts - 1
	}
	usedDst := map[string]bool{}
	var flows []flow
	for tries := 0; len(flows) < nFlows && tries < 200; tries++ {
		src := hostIDs[rng.Intn(nHosts)]
		dst := hostIDs[rng.Intn(nHosts)]
		if src == dst || usedDst[dst] || hostSw[src] == hostSw[dst] {
			continue
		}
		usedDst[dst] = true
		f := flow{src: src, dst: dst, wildcard: rng.Intn(2) == 0}
		f.prio = 20
		if f.wildcard {
			f.prio = 10
		}
		flows = append(flows, f)
	}
	if len(flows) == 0 {
		return nil, false
	}

	// Old paths on the intact graph.
	oldPath := make(map[int][]string)
	for i, f := range flows {
		p := g.ShortestPath(f.src, f.dst)
		if len(p) < 4 { // src, ≥2 switches, dst — else no link to fail
			return nil, false
		}
		oldPath[i] = p
	}

	// Fail one switch-to-switch link on a random flow's old path.
	victim := rng.Intn(len(flows))
	vp := oldPath[victim]
	cut := 1 + rng.Intn(len(vp)-3) // switch-switch hop: not the host links
	failedA, failedB := vp[cut], vp[cut+1]
	g.RemoveLink(failedA, failedB)
	newPath := make(map[int][]string)
	for i, f := range flows {
		p := g.ShortestPath(f.src, f.dst)
		if len(p) < 3 {
			g.AddLink(failedA, failedB, 100*time.Microsecond, 10)
			return nil, false
		}
		newPath[i] = p
	}
	// The scenario keeps the intact topology: the failed link is the
	// event motivating the reroute, not a structural change.
	_ = g.AddLink(failedA, failedB, 100*time.Microsecond, 10)

	// Lay rules along both paths. Unchanged hops keep their cookie.
	cookie := uint64(1)
	old := map[string][]openflow.Rule{}
	neu := map[string][]openflow.Rule{}
	var policies []netprop.WaypointPolicy
	for i, f := range flows {
		match := openflow.Match{Src: f.src, Dst: f.dst}
		if f.wildcard {
			match.Src = openflow.Wildcard
		}
		newHops := pathHops(newPath[i])
		shared := map[string]uint64{} // hop -> cookie of an unchanged rule
		for _, hop := range g.SwitchesOnPath(oldPath[i]) {
			next := pathHops(oldPath[i])[hop]
			c := cookie
			cookie++
			old[hop] = append(old[hop], openflow.Rule{Priority: f.prio, Match: match,
				Action: openflow.Action{Type: openflow.ActionOutput, NextHop: next}, Cookie: c})
			if newHops[hop] == next {
				shared[hop] = c
			}
		}
		for _, hop := range g.SwitchesOnPath(newPath[i]) {
			next := newHops[hop]
			c, unchanged := shared[hop]
			if !unchanged {
				c = cookie
				cookie++
			}
			neu[hop] = append(neu[hop], openflow.Rule{Priority: f.prio, Match: match,
				Action: openflow.Action{Type: openflow.ActionOutput, NextHop: next}, Cookie: c})
		}

		// Waypoint chain: up to 2 switches both paths traverse in order.
		if rng.Intn(2) == 0 {
			common := orderedCommon(g.SwitchesOnPath(oldPath[i]), g.SwitchesOnPath(newPath[i]))
			if len(common) > 0 {
				chain := pickChain(rng, common)
				policies = append(policies, netprop.WaypointPolicy{
					Src: match.Src, Dst: f.dst, Ingress: hostSw[f.src], Waypoints: chain})
			}
		}
	}

	// A fraction of scenarios embed the waypoint-detour swap: two relay
	// switches exchange places across a waypoint, which provably rules
	// out any single-phase order and exercises the two-phase fallback.
	if nSw >= 5 && rng.Intn(10) < 3 {
		perm := rng.Perm(nSw)[:5]
		in, a, w, b, e := sw[perm[0]], sw[perm[1]], sw[perm[2]], sw[perm[3]], sw[perm[4]]
		hg := fmt.Sprintf("h%d", nHosts)
		g.AddNode(topology.Node{ID: hg, Kind: topology.KindHost})
		link(hg, e)
		hosts[hg] = true
		match := openflow.Match{Src: openflow.Wildcard, Dst: hg}
		add := func(cfg map[string][]openflow.Rule, at, next string) {
			cfg[at] = append(cfg[at], openflow.Rule{Priority: 15, Match: match,
				Action: openflow.Action{Type: openflow.ActionOutput, NextHop: next}, Cookie: cookie})
			cookie++
		}
		// Old: in→a→w→b→e; new: in→b→w→a→e; e→hg unchanged.
		add(old, in, a)
		add(old, a, w)
		add(old, w, b)
		add(old, b, e)
		ec := cookie
		cookie++
		egress := openflow.Rule{Priority: 15, Match: match,
			Action: openflow.Action{Type: openflow.ActionOutput, NextHop: hg}, Cookie: ec}
		old[e] = append(old[e], egress)
		neu[e] = append(neu[e], egress)
		add(neu, in, b)
		add(neu, b, w)
		add(neu, w, a)
		add(neu, a, e)
		policies = append(policies, netprop.WaypointPolicy{
			Src: openflow.Wildcard, Dst: hg, Ingress: in, Waypoints: []string{w}})
	}

	return &Scenario{
		Name:  fmt.Sprintf("synth-%d", subseed),
		Graph: g,
		Hosts: hosts,
		Old:   old,
		New:   neu,
		Props: netprop.Properties{Waypoints: policies},
	}, true
}

// pathHops maps each switch on a host-to-host path to its next hop.
func pathHops(path []string) map[string]string {
	hops := make(map[string]string, len(path))
	for i := 1; i < len(path)-1; i++ {
		hops[path[i]] = path[i+1]
	}
	return hops
}

// orderedCommon returns the switches of a that appear in b in the same
// relative order (greedy ordered intersection).
func orderedCommon(a, b []string) []string {
	posB := make(map[string]int, len(b))
	for i, s := range b {
		posB[s] = i
	}
	var out []string
	last := -1
	for _, s := range a {
		if p, ok := posB[s]; ok && p > last {
			out = append(out, s)
			last = p
		}
	}
	return out
}

// pickChain draws an ordered sub-chain of up to 2 waypoints.
func pickChain(rng *rand.Rand, common []string) []string {
	n := 1 + rng.Intn(2)
	if n > len(common) {
		n = len(common)
	}
	idx := rng.Perm(len(common))[:n]
	if len(idx) == 2 && idx[0] > idx[1] {
		idx[0], idx[1] = idx[1], idx[0]
	}
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = common[j]
	}
	return out
}
